// Glue-code generator tests: the Alter generator's output against the
// model it traverses, custom generator programs, and failure modes.
#include <gtest/gtest.h>

#include "apps/benchmarks.hpp"
#include "codegen/generator.hpp"
#include "codegen/generator_program.hpp"
#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"
#include "support/error.hpp"

namespace sage::codegen {
namespace {

TEST(CodegenTest, FunctionTableOrderedTopologically) {
  auto ws = apps::make_fft2d_workspace(64, 4);
  const GeneratedArtifacts artifacts = generate_glue(*ws);
  const auto& fns = artifacts.config.functions;
  ASSERT_EQ(fns.size(), 5u);
  // IDs 0..N-1 in dependency order, as the paper describes.
  EXPECT_EQ(fns[0].name, "src");
  EXPECT_EQ(fns[1].name, "fft_rows");
  EXPECT_EQ(fns[2].name, "corner_turn");
  EXPECT_EQ(fns[3].name, "fft_cols");
  EXPECT_EQ(fns[4].name, "sink");
  for (std::size_t i = 0; i < fns.size(); ++i) {
    EXPECT_EQ(fns[i].id, static_cast<int>(i));
  }
}

TEST(CodegenTest, ThreadPlacementsFollowMapping) {
  auto ws = apps::make_cornerturn_workspace(64, 4);
  const GeneratedArtifacts artifacts = generate_glue(*ws);
  for (const auto& fn : artifacts.config.functions) {
    ASSERT_EQ(fn.threads, 4);
    EXPECT_EQ(fn.thread_nodes, (std::vector<int>{0, 1, 2, 3})) << fn.name;
  }
}

TEST(CodegenTest, PortsCarryStripingAndTypes) {
  auto ws = apps::make_fft2d_workspace(64, 4);
  const GeneratedArtifacts artifacts = generate_glue(*ws);
  const auto& ct = artifacts.config.functions[2];
  EXPECT_EQ(ct.kernel, "isspl.corner_turn_local");
  const auto& in = ct.port("in");
  EXPECT_EQ(in.striping, model::Striping::kStriped);
  EXPECT_EQ(in.stripe_dim, 1);
  EXPECT_EQ(in.elem_bytes, 8u);
  EXPECT_EQ(in.dims, (std::vector<std::size_t>{64, 64}));
}

TEST(CodegenTest, BuffersMatchArcs) {
  auto ws = apps::make_fft2d_workspace(64, 4);
  const GeneratedArtifacts artifacts = generate_glue(*ws);
  ASSERT_EQ(artifacts.config.buffers.size(), 4u);
  EXPECT_EQ(artifacts.config.buffers[0].src_function, 0);
  EXPECT_EQ(artifacts.config.buffers[0].dst_function, 1);
  EXPECT_EQ(artifacts.config.buffers[3].dst_function, 4);
}

TEST(CodegenTest, SchedulesCoverEveryNode) {
  auto ws = apps::make_fft2d_workspace(64, 8);
  const GeneratedArtifacts artifacts = generate_glue(*ws);
  ASSERT_EQ(artifacts.config.schedule.size(), 8u);
  for (const auto& [rank, order] : artifacts.config.schedule) {
    EXPECT_EQ(order.size(), 5u) << "node " << rank;
    // Dependency order within the node.
    EXPECT_EQ(order.front(), 0);
    EXPECT_EQ(order.back(), 4);
  }
}

TEST(CodegenTest, ModelParamsFlowThrough) {
  auto ws = apps::make_cornerturn_workspace(64, 2);
  model::ModelObject& ct =
      model::find_function(ws->application(), "corner_turn");
  ct.set_property("param_gain", 3.5);
  const GeneratedArtifacts artifacts = generate_glue(*ws);
  EXPECT_DOUBLE_EQ(artifacts.config.functions[1].params.at("gain"), 3.5);
}

TEST(CodegenTest, IterationsDefaultFromModelAndOverride) {
  auto ws = apps::make_cornerturn_workspace(64, 2);
  ws->application().set_property("iterations", 7);
  EXPECT_EQ(generate_glue(*ws).config.iterations_default, 7);

  GenerateOptions options;
  options.iterations_default = 11;
  EXPECT_EQ(generate_glue(*ws, options).config.iterations_default, 11);
}

TEST(CodegenTest, GeneratedCSourceMentionsEveryFunction) {
  auto ws = apps::make_fft2d_workspace(64, 4);
  const GeneratedArtifacts artifacts = generate_glue(*ws);
  const std::string& c = artifacts.glue_source_text();
  for (const char* name :
       {"src", "fft_rows", "corner_turn", "fft_cols", "sink"}) {
    EXPECT_NE(c.find("\"" + std::string(name) + "\""), std::string::npos)
        << name;
  }
  EXPECT_NE(c.find("SAGE_STRIPED"), std::string::npos);
  EXPECT_NE(c.find("sage_function_count = 5"), std::string::npos);
}

TEST(CodegenTest, InvalidDesignRefusesToGenerate) {
  auto ws = apps::make_cornerturn_workspace(64, 2);
  // Break the design: sink expects a different size.
  model::ModelObject& sink = model::find_function(ws->application(), "sink");
  model::find_port(sink, "in").set_property(
      "dims",
      model::PropertyList{model::PropertyValue(32), model::PropertyValue(64)});
  EXPECT_THROW(generate_glue(*ws), ModelError);
}

TEST(CodegenTest, CustomAlterProgramRuns) {
  auto ws = apps::make_cornerturn_workspace(64, 2);
  GenerateOptions options;
  // A custom generator must still produce a parseable glue.cfg; this one
  // reuses the standard program then adds a custom report stream.
  options.program = glue_generator_source() +
                    "\n(set-output \"report.txt\")"
                    "(emit-line \"functions: \" (length (app-functions "
                    "(first (children-of-type (model-root) "
                    "\"application\")))))";
  const GeneratedArtifacts artifacts = generate_glue(*ws, options);
  EXPECT_EQ(artifacts.outputs.at("report.txt"), "functions: 3\n");
  EXPECT_EQ(artifacts.config.functions.size(), 3u);
}

TEST(CodegenTest, ProgramWithoutGlueCfgFails) {
  auto ws = apps::make_cornerturn_workspace(64, 2);
  GenerateOptions options;
  options.program = "(set-output \"other\") (emit \"nothing useful\")";
  EXPECT_THROW(generate_glue(*ws, options), ConfigError);
}

TEST(CodegenTest, BrokenAlterProgramSurfacesAlterError) {
  auto ws = apps::make_cornerturn_workspace(64, 2);
  GenerateOptions options;
  options.program = "(this-builtin-does-not-exist)";
  EXPECT_THROW(generate_glue(*ws, options), AlterError);
}

TEST(CodegenTest, ProbeFlagsBecomeProbeEntries) {
  auto ws = apps::make_fft2d_workspace(64, 2);
  model::find_function(ws->application(), "fft_rows")
      .set_property("probe", true);
  model::find_function(ws->application(), "corner_turn")
      .set_property("probe", true);
  const GeneratedArtifacts artifacts = generate_glue(*ws);
  EXPECT_EQ(artifacts.config.probes, (std::vector<int>{1, 2}));
  EXPECT_TRUE(artifacts.config.probed(1));
  EXPECT_FALSE(artifacts.config.probed(0));

  // Default: no flags, everything instrumented.
  auto plain = apps::make_fft2d_workspace(64, 2);
  EXPECT_TRUE(generate_glue(*plain).config.probes.empty());
  EXPECT_TRUE(generate_glue(*plain).config.probed(0));
}

TEST(CodegenTest, GoldenGlueConfigForTinyDesign) {
  // Format-stability guard: the exact text the generator emits for a
  // minimal corner-turn design. Update deliberately when the format
  // versions; accidental drift breaks deployed glue files.
  auto ws = apps::make_cornerturn_workspace(8, 2);
  const std::string expected =
      "# SAGE glue configuration (generated by the Alter glue-code generator)\n"
      "sage-glue 1\n"
      "application distributed_corner_turn\n"
      "hardware cspi\n"
      "nodes 2\n"
      "iterations-default 1\n"
      "\n"
      "# function table\n"
      "function 0 name=src kernel=matrix_source threads=2 role=source\n"
      "thread 0 0 node=0\n"
      "thread 0 1 node=1\n"
      "port 0 name=out dir=out striping=striped stripe_dim=0 elem_bytes=8 "
      "dims=8x8\n"
      "function 1 name=corner_turn kernel=isspl.corner_turn_local threads=2 "
      "role=compute\n"
      "thread 1 0 node=0\n"
      "thread 1 1 node=1\n"
      "port 1 name=in dir=in striping=striped stripe_dim=1 elem_bytes=8 "
      "dims=8x8\n"
      "port 1 name=out dir=out striping=striped stripe_dim=0 elem_bytes=8 "
      "dims=8x8\n"
      "function 2 name=sink kernel=matrix_sink threads=2 role=sink\n"
      "thread 2 0 node=0\n"
      "thread 2 1 node=1\n"
      "port 2 name=in dir=in striping=striped stripe_dim=0 elem_bytes=8 "
      "dims=8x8\n"
      "\n"
      "# logical buffers (one per data-flow arc)\n"
      "buffer 0 src=0.out dst=1.in\n"
      "buffer 1 src=1.out dst=2.in\n"
      "\n"
      "# per-node schedules (dependency order restricted to the node)\n"
      "schedule 0 0,1,2\n"
      "schedule 1 0,1,2\n";
  EXPECT_EQ(generate_glue(*ws).glue_config_text(), expected);
}

TEST(CodegenTest, GeneratorIsDeterministic) {
  auto ws1 = apps::make_fft2d_workspace(64, 4);
  auto ws2 = apps::make_fft2d_workspace(64, 4);
  EXPECT_EQ(generate_glue(*ws1).glue_config_text(),
            generate_glue(*ws2).glue_config_text());
}

TEST(CodegenTest, UnmappedFunctionFailsInsideAlter) {
  // Remove the mapping assignments; the workspace then fails validation
  // before Alter even runs.
  auto ws = apps::make_cornerturn_workspace(64, 2);
  model::ModelObject& mapping = ws->mapping();
  while (!mapping.children_of_type("assignment").empty()) {
    mapping.remove_child(*mapping.children_of_type("assignment").front());
  }
  EXPECT_THROW(generate_glue(*ws), ModelError);
}

}  // namespace
}  // namespace sage::codegen
