// Striping-engine tests, heavy on properties: for any legal spec the
// thread slices must cover the index space exactly once, in increasing
// offset, balanced; and any transfer plan must conserve elements and map
// global indices consistently on both sides.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "runtime/striping.hpp"
#include "support/error.hpp"

namespace sage::runtime {
namespace {

using model::Striping;

StripeSpec spec_of(std::vector<std::size_t> dims, Striping striping, int dim,
                   int threads) {
  StripeSpec spec;
  spec.dims = std::move(dims);
  spec.striping = striping;
  spec.stripe_dim = dim;
  spec.threads = threads;
  return spec;
}

// --- slice_runs unit cases ------------------------------------------------------

TEST(SliceRunsTest, Dim0IsOneContiguousRun) {
  const auto spec = spec_of({8, 4}, Striping::kStriped, 0, 4);
  const auto runs = slice_runs(spec, 1);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].global_offset, 8u);  // rows 2..3 of an 8x4
  EXPECT_EQ(runs[0].length, 8u);
}

TEST(SliceRunsTest, Dim1IsOneRunPerRow) {
  const auto spec = spec_of({4, 8}, Striping::kStriped, 1, 4);
  const auto runs = slice_runs(spec, 2);
  ASSERT_EQ(runs.size(), 4u);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(runs[r].global_offset, r * 8 + 2 * 2);
    EXPECT_EQ(runs[r].length, 2u);
  }
}

TEST(SliceRunsTest, MiddleDimOf3d) {
  // 2 x 4 x 3, striped along dim 1 over 2 threads: per outer index, a
  // 2x3-element chunk.
  const auto spec = spec_of({2, 4, 3}, Striping::kStriped, 1, 2);
  const auto runs = slice_runs(spec, 1);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].global_offset, 6u);   // outer 0, second half
  EXPECT_EQ(runs[0].length, 6u);
  EXPECT_EQ(runs[1].global_offset, 18u);  // outer 1
}

TEST(SliceRunsTest, ReplicatedIsEverything) {
  const auto spec = spec_of({4, 4}, Striping::kReplicated, 0, 3);
  for (int t = 0; t < 3; ++t) {
    const auto runs = slice_runs(spec, t);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].length, 16u);
  }
}

TEST(SliceRunsTest, Validation) {
  EXPECT_THROW(slice_runs(spec_of({}, Striping::kStriped, 0, 1), 0),
               RuntimeError);
  EXPECT_THROW(slice_runs(spec_of({7}, Striping::kStriped, 0, 2), 0),
               RuntimeError);  // uneven
  EXPECT_THROW(slice_runs(spec_of({8}, Striping::kStriped, 1, 2), 0),
               RuntimeError);  // dim out of range
  EXPECT_THROW(slice_runs(spec_of({8}, Striping::kStriped, 0, 2), 5),
               RuntimeError);  // thread out of range
  EXPECT_THROW(slice_runs(spec_of({0, 4}, Striping::kStriped, 0, 1), 0),
               RuntimeError);  // zero dim
}

// --- slice properties (parameterized) ------------------------------------------

struct SpecCase {
  std::vector<std::size_t> dims;
  Striping striping;
  int dim;
  int threads;
};

class SliceProperty : public ::testing::TestWithParam<SpecCase> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, SliceProperty,
    ::testing::Values(SpecCase{{16}, Striping::kStriped, 0, 4},
                      SpecCase{{8, 8}, Striping::kStriped, 0, 2},
                      SpecCase{{8, 8}, Striping::kStriped, 1, 8},
                      SpecCase{{4, 6, 8}, Striping::kStriped, 1, 3},
                      SpecCase{{4, 6, 8}, Striping::kStriped, 2, 4},
                      SpecCase{{2, 2, 2, 2}, Striping::kStriped, 3, 2},
                      SpecCase{{12, 5}, Striping::kStriped, 0, 6},
                      SpecCase{{64, 64}, Striping::kStriped, 1, 8}));

TEST_P(SliceProperty, SlicesPartitionTheIndexSpaceEvenly) {
  const SpecCase& param = GetParam();
  const auto spec =
      spec_of(param.dims, param.striping, param.dim, param.threads);
  std::vector<int> covered(spec.total_elems(), 0);

  for (int t = 0; t < param.threads; ++t) {
    const auto runs = slice_runs(spec, t);
    std::size_t slice_total = 0;
    std::size_t last_end = 0;
    for (const sage::runtime::Run& run : runs) {
      EXPECT_GE(run.global_offset, last_end) << "runs must be ordered";
      last_end = run.global_offset + run.length;
      slice_total += run.length;
      for (std::size_t i = 0; i < run.length; ++i) {
        ++covered[run.global_offset + i];
      }
    }
    EXPECT_EQ(slice_total, spec.elems_per_thread()) << "thread " << t;
  }
  for (std::size_t i = 0; i < covered.size(); ++i) {
    EXPECT_EQ(covered[i], 1) << "element " << i << " covered wrong";
  }
}

TEST_P(SliceProperty, LocalDimsMatchSliceSize) {
  const SpecCase& param = GetParam();
  const auto spec =
      spec_of(param.dims, param.striping, param.dim, param.threads);
  std::size_t product = 1;
  for (std::size_t d : spec.local_dims()) product *= d;
  EXPECT_EQ(product, spec.elems_per_thread());
}

// --- transfer plans -----------------------------------------------------------

struct PlanCase {
  SpecCase src;
  SpecCase dst;
};

class PlanProperty : public ::testing::TestWithParam<PlanCase> {};

INSTANTIATE_TEST_SUITE_P(
    Redistributions, PlanProperty,
    ::testing::Values(
        PlanCase{{{8, 8}, Striping::kStriped, 0, 4},
                 {{8, 8}, Striping::kStriped, 0, 4}},
        PlanCase{{{8, 8}, Striping::kStriped, 0, 2},
                 {{8, 8}, Striping::kStriped, 0, 8}},
        PlanCase{{{8, 8}, Striping::kStriped, 0, 4},
                 {{8, 8}, Striping::kStriped, 1, 4}},
        PlanCase{{{16, 4}, Striping::kStriped, 1, 4},
                 {{16, 4}, Striping::kStriped, 0, 2}},
        PlanCase{{{8, 8}, Striping::kStriped, 0, 4},
                 {{8, 8}, Striping::kReplicated, 0, 3}},
        PlanCase{{{8, 8}, Striping::kReplicated, 0, 4},
                 {{8, 8}, Striping::kStriped, 1, 2}},
        PlanCase{{{4, 6, 8}, Striping::kStriped, 1, 2},
                 {{4, 6, 8}, Striping::kStriped, 2, 4}}));

TEST_P(PlanProperty, PlanMovesEveryElementExactlyOnce) {
  const PlanCase& param = GetParam();
  const auto src = spec_of(param.src.dims, param.src.striping, param.src.dim,
                           param.src.threads);
  const auto dst = spec_of(param.dst.dims, param.dst.striping, param.dst.dim,
                           param.dst.threads);
  const auto plan = build_transfer_plan(src, dst);

  // Simulate the plan with index-valued elements and verify that each
  // destination slot receives the right global index.
  const int dst_copies =
      dst.striping == Striping::kReplicated ? dst.threads : 1;
  std::size_t delivered = 0;

  std::map<int, std::vector<long long>> dst_buffers;
  for (int d = 0; d < dst.threads; ++d) {
    dst_buffers[d].assign(dst.elems_per_thread(), -1);
  }

  for (const ThreadPairTransfer& pair : plan) {
    // Source thread-local data: value = global index.
    const auto src_runs = slice_runs(src, pair.src_thread);
    std::vector<long long> src_local;
    for (const sage::runtime::Run& run : src_runs) {
      for (std::size_t i = 0; i < run.length; ++i) {
        src_local.push_back(static_cast<long long>(run.global_offset + i));
      }
    }
    auto& dst_local = dst_buffers[pair.dst_thread];
    for (const Segment& seg : pair.segments) {
      for (std::size_t i = 0; i < seg.length; ++i) {
        ASSERT_LT(seg.src_offset + i, src_local.size());
        ASSERT_LT(seg.dst_offset + i, dst_local.size());
        EXPECT_EQ(dst_local[seg.dst_offset + i], -1)
            << "double delivery at dst " << pair.dst_thread;
        dst_local[seg.dst_offset + i] = src_local[seg.src_offset + i];
        ++delivered;
      }
    }
  }

  EXPECT_EQ(delivered, src.total_elems() * static_cast<std::size_t>(dst_copies));

  // Every destination slot holds exactly its own global index.
  for (int d = 0; d < dst.threads; ++d) {
    const auto dst_runs = slice_runs(dst, d);
    std::size_t cursor = 0;
    for (const sage::runtime::Run& run : dst_runs) {
      for (std::size_t i = 0; i < run.length; ++i, ++cursor) {
        EXPECT_EQ(dst_buffers[d][cursor],
                  static_cast<long long>(run.global_offset + i))
            << "dst thread " << d << " slot " << cursor;
      }
    }
  }
}

TEST(PlanTest, MismatchedTotalsRejected) {
  const auto a = spec_of({8, 8}, Striping::kStriped, 0, 2);
  const auto b = spec_of({8, 4}, Striping::kStriped, 0, 2);
  EXPECT_THROW(build_transfer_plan(a, b), RuntimeError);
}

TEST(PlanTest, AlignedStripesAreSingleSegments) {
  const auto src = spec_of({8, 8}, Striping::kStriped, 0, 4);
  const auto plan = build_transfer_plan(src, src);
  ASSERT_EQ(plan.size(), 4u);  // diagonal only
  for (const auto& pair : plan) {
    EXPECT_EQ(pair.src_thread, pair.dst_thread);
    ASSERT_EQ(pair.segments.size(), 1u);
    EXPECT_EQ(pair.segments[0].length, 16u);
  }
}

TEST(PlanTest, CornerTurnIsAllToAll) {
  const auto src = spec_of({8, 8}, Striping::kStriped, 0, 4);
  const auto dst = spec_of({8, 8}, Striping::kStriped, 1, 4);
  const auto plan = build_transfer_plan(src, dst);
  EXPECT_EQ(plan.size(), 16u);  // every pair participates
  for (const auto& pair : plan) {
    EXPECT_EQ(pair.total_elems(), 4u);  // (8/4) x (8/4) block
  }
}

TEST(PlanTest, ContiguousSegmentsAreMerged) {
  // Identical aligned specs but different thread counts: 2 -> 1 means
  // the single dst thread receives each src half as ONE segment.
  const auto src = spec_of({8, 8}, Striping::kStriped, 0, 2);
  const auto dst = spec_of({8, 8}, Striping::kStriped, 0, 1);
  const auto plan = build_transfer_plan(src, dst);
  ASSERT_EQ(plan.size(), 2u);
  for (const auto& pair : plan) {
    EXPECT_EQ(pair.segments.size(), 1u);
  }
}

// --- randomized property check --------------------------------------------------

/// Deterministic xorshift so failures reproduce.
std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

/// Brute-force oracle: the global index each local element of `thread`
/// maps to, in thread-local storage order.
std::vector<std::size_t> global_map(const StripeSpec& spec, int thread) {
  std::vector<std::size_t> map;
  for (const Run& run : slice_runs(spec, thread)) {
    for (std::size_t k = 0; k < run.length; ++k) {
      map.push_back(run.global_offset + k);
    }
  }
  return map;
}

TEST(PlanPropertyTest, RandomSpecPairsCoverEveryElementExactlyOnce) {
  std::uint64_t rng = 0x5a9e0001d5eedull;
  const std::vector<std::size_t> divisor_pool = {1, 2, 3, 4, 6, 8};
  for (int trial = 0; trial < 60; ++trial) {
    // Random 2-D or 3-D dims whose every dimension divides by any thread
    // count we draw (multiples of 24 keep validate() happy).
    const int rank = 2 + static_cast<int>(next_rand(rng) % 2);
    std::vector<std::size_t> dims;
    for (int i = 0; i < rank; ++i) {
      dims.push_back(24 * (1 + next_rand(rng) % 2));
    }
    const auto pick = [&] {
      StripeSpec s;
      s.dims = dims;
      s.striping = Striping::kStriped;
      s.stripe_dim = static_cast<int>(next_rand(rng) % rank);
      s.threads =
          static_cast<int>(divisor_pool[next_rand(rng) % divisor_pool.size()]);
      return s;
    };
    const StripeSpec src = pick();
    const StripeSpec dst = pick();

    const auto plan = build_transfer_plan(src, dst);

    // Per-thread local->global maps, brute force.
    std::vector<std::vector<std::size_t>> src_map;
    for (int s = 0; s < src.threads; ++s) src_map.push_back(global_map(src, s));
    std::vector<std::vector<std::size_t>> dst_map;
    for (int d = 0; d < dst.threads; ++d) dst_map.push_back(global_map(dst, d));

    // Walk every segment of every pair: the source element and the
    // destination element must be the same global index, and the union
    // over the whole plan must cover each global index exactly once.
    std::map<std::size_t, int> covered;
    for (const auto& pair : plan) {
      const auto& sm = src_map[static_cast<std::size_t>(pair.src_thread)];
      const auto& dm = dst_map[static_cast<std::size_t>(pair.dst_thread)];
      for (const Segment& seg : pair.segments) {
        ASSERT_LE(seg.src_offset + seg.length, sm.size())
            << "trial " << trial;
        ASSERT_LE(seg.dst_offset + seg.length, dm.size())
            << "trial " << trial;
        for (std::size_t k = 0; k < seg.length; ++k) {
          const std::size_t g = sm[seg.src_offset + k];
          EXPECT_EQ(g, dm[seg.dst_offset + k])
              << "trial " << trial << ": src/dst disagree on global index";
          ++covered[g];
        }
      }
    }
    ASSERT_EQ(covered.size(), src.total_elems()) << "trial " << trial;
    for (const auto& [g, count] : covered) {
      ASSERT_EQ(count, 1) << "trial " << trial << ": global index " << g
                          << " transferred " << count << " times";
    }
  }
}

}  // namespace
}  // namespace sage::runtime
