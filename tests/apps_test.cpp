// Benchmark-application tests: the hand-coded implementations against
// single-node references, alltoall-algorithm invariance, the model
// builders' guardrails, and pipelined-mapping period/latency behaviour.
#include <gtest/gtest.h>

#include "apps/benchmarks.hpp"
#include "apps/handcoded.hpp"
#include "core/project.hpp"
#include "isspl/fft.hpp"
#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"
#include "runtime/registry.hpp"
#include "support/error.hpp"

namespace sage::apps {
namespace {

TEST(HandcodedTest, Fft2dChecksumMatchesLocalReference) {
  constexpr std::size_t kN = 32;
  std::vector<isspl::Complex> reference(kN * kN);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    reference[i] = runtime::test_pattern(i, 0);
  }
  isspl::fft2d(reference, kN, kN);
  const double expected = runtime::block_checksum(reference);

  for (int nodes : {1, 2, 4}) {
    const HandcodedResult result = run_fft2d_handcoded(kN, nodes);
    ASSERT_EQ(result.checksums.size(), 1u);
    EXPECT_NEAR(result.checksums[0], expected,
                1e-3 * std::max(1.0, std::abs(expected)))
        << nodes << " nodes";
  }
}

TEST(HandcodedTest, CornerTurnChecksumPreserved) {
  constexpr std::size_t kN = 64;
  double expected = 0.0;
  for (std::size_t i = 0; i < kN * kN; ++i) {
    const auto v = runtime::test_pattern(i, 0);
    expected += v.real() + v.imag();
  }
  for (int nodes : {1, 2, 4, 8}) {
    const HandcodedResult result = run_cornerturn_handcoded(kN, nodes);
    EXPECT_NEAR(result.checksums[0], expected, 1e-6) << nodes << " nodes";
  }
}

TEST(HandcodedTest, ResultIndependentOfAlltoallAlgorithm) {
  constexpr std::size_t kN = 64;
  HandcodedOptions options;
  std::vector<double> sums;
  for (const auto algorithm :
       {mpi::AlltoallAlgorithm::kPairwise, mpi::AlltoallAlgorithm::kRing,
        mpi::AlltoallAlgorithm::kVendorDirect}) {
    options.alltoall = algorithm;
    sums.push_back(run_fft2d_handcoded(kN, 4, options).checksums[0]);
  }
  EXPECT_DOUBLE_EQ(sums[0], sums[1]);
  EXPECT_DOUBLE_EQ(sums[0], sums[2]);
}

TEST(HandcodedTest, VendorAlltoallIsFastest) {
  constexpr std::size_t kN = 512;
  HandcodedOptions options;
  options.iterations = 2;
  options.alltoall = mpi::AlltoallAlgorithm::kRing;
  const double ring =
      run_cornerturn_handcoded(kN, 8, options).latencies.back();
  options.alltoall = mpi::AlltoallAlgorithm::kVendorDirect;
  const double vendor =
      run_cornerturn_handcoded(kN, 8, options).latencies.back();
  EXPECT_LT(vendor, ring);
}

TEST(HandcodedTest, MultipleIterationsVaryData) {
  const HandcodedOptions options{.iterations = 3};
  const HandcodedResult result = run_cornerturn_handcoded(64, 2, options);
  ASSERT_EQ(result.checksums.size(), 3u);
  EXPECT_NE(result.checksums[0], result.checksums[1]);
  EXPECT_EQ(result.latencies.size(), 3u);
  EXPECT_GT(result.period, 0.0);
}

TEST(HandcodedTest, ArgumentGuards) {
  EXPECT_THROW(run_fft2d_handcoded(100, 4), Error);  // not a power of two
  EXPECT_THROW(run_fft2d_handcoded(64, 3), Error);   // does not divide
  EXPECT_THROW(run_cornerturn_handcoded(64, 0), Error);
}

TEST(BuilderTest, WorkspaceGuards) {
  EXPECT_THROW(make_fft2d_workspace(100, 4), ModelError);
  EXPECT_THROW(make_fft2d_workspace(64, 3), ModelError);
  EXPECT_THROW(make_cornerturn_workspace(64, 0), ModelError);
}

TEST(BuilderTest, WorkspacesValidateAndScaleNodes) {
  for (int nodes : {1, 2, 4, 8}) {
    auto ws = make_fft2d_workspace(64, nodes);
    EXPECT_NO_THROW(ws->validate_or_throw());
    EXPECT_EQ(model::processors(ws->hardware()).size(),
              static_cast<std::size_t>(nodes));
  }
}

TEST(PipelineMappingTest, PipelinedMappingOverlapsIterations) {
  // Two-stage chain mapped one stage per node: under load, the period
  // must be substantially below the single-set latency (pipelining),
  // while a data-parallel mapping keeps them comparable.
  auto ws = std::make_unique<model::Workspace>("pipe");
  model::ModelObject& root = ws->root();
  model::add_cspi_platform(root, 2);
  model::ModelObject& app = model::add_application(root, "pipe");
  const std::vector<std::size_t> dims{128, 128};

  model::ModelObject& src = model::add_function(app, "src", "matrix_source", 1);
  src.set_property("role", "source");
  model::add_port(src, "out", model::PortDirection::kOut,
                  model::Striping::kStriped, "cfloat", dims, 0);
  model::ModelObject& fft =
      model::add_function(app, "fft", "isspl.fft_rows", 1);
  model::add_port(fft, "in", model::PortDirection::kIn,
                  model::Striping::kStriped, "cfloat", dims, 0);
  model::add_port(fft, "out", model::PortDirection::kOut,
                  model::Striping::kStriped, "cfloat", dims, 0);
  model::ModelObject& sink = model::add_function(app, "sink", "matrix_sink", 1);
  sink.set_property("role", "sink");
  model::add_port(sink, "in", model::PortDirection::kIn,
                  model::Striping::kStriped, "cfloat", dims, 0);
  model::connect(app, "src.out", "fft.in");
  model::connect(app, "fft.out", "sink.in");
  model::ModelObject& mapping = model::add_mapping(root, "mapping", "cspi");
  model::assign_ranks(root, mapping, "src", {0});
  model::assign_ranks(root, mapping, "fft", {1});
  model::assign_ranks(root, mapping, "sink", {1});

  core::Project project(std::move(ws));
  runtime::ExecuteOptions single;
  single.iterations = 1;
  single.collect_trace = false;
  const double latency = project.execute(single).mean_latency();

  runtime::ExecuteOptions loaded;
  loaded.iterations = 8;
  loaded.collect_trace = false;
  const runtime::RunStats stats = project.execute(loaded);

  EXPECT_GT(latency, 0.0);
  EXPECT_GT(stats.period, 0.0);
  // The fabric hop (128 KiB over the modeled Myrinet, ~0.8 ms) is pure
  // latency; the period is set by per-stage work, far below it.
  EXPECT_LT(stats.period, latency * 0.8);
}

}  // namespace
}  // namespace sage::apps
