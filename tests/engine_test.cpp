// Runtime-engine tests: hand-built glue configurations exercising
// sequencing, striping delivery, replication, parameters, buffer
// policies, results aggregation, and failure modes.
#include <gtest/gtest.h>

#include <numeric>

#include "runtime/engine.hpp"
#include "runtime/glue_config.hpp"
#include "runtime/registry.hpp"
#include "support/error.hpp"

namespace sage::runtime {
namespace {

/// A float source whose element value equals its global index.
void index_source(KernelContext& ctx) {
  PortSlice& out = ctx.out("out");
  auto data = out.as<float>();
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(out.global_of_local(i));
  }
}

/// Sink reporting the sum of its slice.
void sum_sink(KernelContext& ctx) {
  const PortSlice& in = ctx.in("in");
  double acc = 0.0;
  for (float v : in.as<float>()) acc += v;
  ctx.set_result(acc);
}

/// Sink reporting sum + 1e9 if any element is wrong for an
/// index-identity pipeline (detects misdelivery, not just missing data).
void verify_identity_sink(KernelContext& ctx) {
  const PortSlice& in = ctx.in("in");
  auto data = in.as<float>();
  double acc = 0.0;
  bool ok = true;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] != static_cast<float>(in.global_of_local(i))) ok = false;
    acc += data[i];
  }
  ctx.set_result(ok ? acc : acc + 1e9);
}

FunctionRegistry test_registry() {
  FunctionRegistry registry = standard_registry();
  registry.add("test.index_source", index_source);
  registry.add("test.sum_sink", sum_sink);
  registry.add("test.verify_identity_sink", verify_identity_sink);
  return registry;
}

PortConfig make_port(const std::string& name, model::PortDirection dir,
                     model::Striping striping, int stripe_dim,
                     std::vector<std::size_t> dims,
                     std::size_t elem_bytes = sizeof(float)) {
  PortConfig port;
  port.name = name;
  port.direction = dir;
  port.striping = striping;
  port.stripe_dim = stripe_dim;
  port.elem_bytes = elem_bytes;
  port.dims = std::move(dims);
  return port;
}

/// src -> sink over `nodes` nodes with the given stripings.
GlueConfig two_stage_config(int nodes, int threads,
                            model::Striping src_striping, int src_dim,
                            model::Striping dst_striping, int dst_dim,
                            std::vector<std::size_t> dims) {
  GlueConfig config;
  config.application = "test";
  config.hardware = "test-hw";
  config.nodes = nodes;
  config.iterations_default = 1;

  FunctionConfig src;
  src.id = 0;
  src.name = "src";
  src.kernel = "test.index_source";
  src.role = "source";
  src.threads = threads;
  for (int t = 0; t < threads; ++t) src.thread_nodes.push_back(t % nodes);
  src.ports.push_back(make_port("out", model::PortDirection::kOut,
                                src_striping, src_dim, dims));
  config.functions.push_back(src);

  FunctionConfig sink;
  sink.id = 1;
  sink.name = "sink";
  sink.kernel = "test.verify_identity_sink";
  sink.role = "sink";
  sink.threads = threads;
  for (int t = 0; t < threads; ++t) sink.thread_nodes.push_back(t % nodes);
  sink.ports.push_back(make_port("in", model::PortDirection::kIn,
                                 dst_striping, dst_dim, dims));
  config.functions.push_back(sink);

  BufferConfig buf;
  buf.id = 0;
  buf.src_function = 0;
  buf.src_port = "out";
  buf.dst_function = 1;
  buf.dst_port = "in";
  config.buffers.push_back(buf);

  for (int r = 0; r < nodes; ++r) config.schedule[r] = {0, 1};
  return config;
}

double expected_index_sum(const std::vector<std::size_t>& dims) {
  std::size_t total = 1;
  for (std::size_t d : dims) total *= d;
  // Sum 0..total-1.
  return static_cast<double>(total - 1) * static_cast<double>(total) / 2.0;
}

struct RedistributionCase {
  model::Striping src_striping;
  int src_dim;
  model::Striping dst_striping;
  int dst_dim;
  int nodes;
  int threads;
};

class RedistributionTest : public ::testing::TestWithParam<RedistributionCase> {};

TEST_P(RedistributionTest, DeliversEveryElementToTheRightPlace) {
  const RedistributionCase& param = GetParam();
  const std::vector<std::size_t> dims{16, 8};
  GlueConfig config = two_stage_config(
      param.nodes, param.threads, param.src_striping, param.src_dim,
      param.dst_striping, param.dst_dim, dims);
  Engine engine(config, test_registry());
  const RunStats stats = engine.run();

  const double per_thread_total = expected_index_sum(dims);
  const int sink_threads =
      (param.dst_striping == model::Striping::kReplicated) ? param.threads : 1;
  // Striped sinks partition the data (their slice sums add to the
  // total); replicated sinks each see everything.
  const double expected =
      (param.dst_striping == model::Striping::kReplicated)
          ? per_thread_total * sink_threads
          : per_thread_total;
  ASSERT_EQ(stats.results.at("sink").size(), 1u);
  EXPECT_NEAR(stats.results.at("sink")[0], expected, 1.0)
      << "misdelivery penalty present (1e9 marker) or data missing";
}

INSTANTIATE_TEST_SUITE_P(
    StripingMatrix, RedistributionTest,
    ::testing::Values(
        // Aligned row stripes, local only (1 node).
        RedistributionCase{model::Striping::kStriped, 0,
                           model::Striping::kStriped, 0, 1, 4},
        // Aligned row stripes across nodes.
        RedistributionCase{model::Striping::kStriped, 0,
                           model::Striping::kStriped, 0, 4, 4},
        // Corner turn: rows -> columns.
        RedistributionCase{model::Striping::kStriped, 0,
                           model::Striping::kStriped, 1, 4, 4},
        // Reverse corner turn: columns -> rows.
        RedistributionCase{model::Striping::kStriped, 1,
                           model::Striping::kStriped, 0, 4, 4},
        // Columns -> columns.
        RedistributionCase{model::Striping::kStriped, 1,
                           model::Striping::kStriped, 1, 2, 2},
        // Striped -> replicated (fan-out to every thread).
        RedistributionCase{model::Striping::kStriped, 0,
                           model::Striping::kReplicated, 0, 4, 4},
        // Replicated -> striped (thread 0 feeds the stripes).
        RedistributionCase{model::Striping::kReplicated, 0,
                           model::Striping::kStriped, 0, 4, 4},
        // Replicated -> replicated.
        RedistributionCase{model::Striping::kReplicated, 0,
                           model::Striping::kReplicated, 0, 2, 2},
        // Thread counts differing from node counts (two threads/node).
        RedistributionCase{model::Striping::kStriped, 0,
                           model::Striping::kStriped, 1, 2, 4},
        // Producer wider than consumer.
        RedistributionCase{model::Striping::kStriped, 0,
                           model::Striping::kStriped, 0, 4, 2}));

TEST(EngineTest, ThreeDimensionalMiddleAxisRedistribution) {
  // {4, 8, 6} cube: produced striped along the middle axis, consumed
  // striped along the last -- the STAP-style cube corner turn.
  GlueConfig config = two_stage_config(2, 4, model::Striping::kStriped, 1,
                                       model::Striping::kStriped, 2,
                                       {4, 8, 6});
  // dims[2] = 6 doesn't divide over 4 threads; use 2 threads for dim 2.
  config.functions[1].threads = 2;
  config.functions[1].thread_nodes = {0, 1};
  Engine engine(config, test_registry());
  const RunStats stats = engine.run();
  EXPECT_NEAR(stats.results.at("sink")[0], expected_index_sum({4, 8, 6}),
              1.0);
}

TEST(EngineTest, ThreeDimensionalReplicationFanOut) {
  GlueConfig config = two_stage_config(2, 2, model::Striping::kStriped, 2,
                                       model::Striping::kReplicated, 0,
                                       {2, 3, 4});
  Engine engine(config, test_registry());
  const RunStats stats = engine.run();
  // Every sink thread sees the whole cube.
  EXPECT_NEAR(stats.results.at("sink")[0],
              2.0 * expected_index_sum({2, 3, 4}), 1.0);
}

TEST(EngineTest, ProducerConsumerThreadCountsMayDiffer) {
  // 8-thread producer feeding a 2-thread consumer: only possible when
  // the two functions declare their own thread counts.
  const std::vector<std::size_t> dims{16, 8};
  GlueConfig config;
  config.application = "test";
  config.hardware = "hw";
  config.nodes = 2;
  config.iterations_default = 1;

  FunctionConfig src;
  src.id = 0;
  src.name = "src";
  src.kernel = "test.index_source";
  src.role = "source";
  src.threads = 8;
  for (int t = 0; t < 8; ++t) src.thread_nodes.push_back(t % 2);
  src.ports.push_back(make_port("out", model::PortDirection::kOut,
                                model::Striping::kStriped, 0, dims));
  config.functions.push_back(src);

  FunctionConfig sink;
  sink.id = 1;
  sink.name = "sink";
  sink.kernel = "test.verify_identity_sink";
  sink.role = "sink";
  sink.threads = 2;
  sink.thread_nodes = {0, 1};
  sink.ports.push_back(make_port("in", model::PortDirection::kIn,
                                 model::Striping::kStriped, 0, dims));
  config.functions.push_back(sink);

  BufferConfig buf;
  buf.id = 0;
  buf.src_function = 0;
  buf.src_port = "out";
  buf.dst_function = 1;
  buf.dst_port = "in";
  config.buffers.push_back(buf);
  config.schedule[0] = {0, 1};
  config.schedule[1] = {0, 1};

  Engine engine(config, test_registry());
  const RunStats stats = engine.run();
  EXPECT_NEAR(stats.results.at("sink")[0], expected_index_sum(dims), 1.0);
}

TEST(EngineTest, MultipleIterationsProduceIndependentResults) {
  GlueConfig config = two_stage_config(2, 2, model::Striping::kStriped, 0,
                                       model::Striping::kStriped, 0, {8, 8});
  config.iterations_default = 5;
  Engine engine(config, test_registry());
  const RunStats stats = engine.run();
  ASSERT_EQ(stats.results.at("sink").size(), 5u);
  for (double v : stats.results.at("sink")) {
    EXPECT_NEAR(v, expected_index_sum({8, 8}), 1.0);
  }
  ASSERT_EQ(stats.latencies.size(), 5u);
  EXPECT_GT(stats.period, 0.0);
}

TEST(EngineTest, BothBufferPoliciesDeliverIdenticalData) {
  for (const BufferPolicy policy :
       {BufferPolicy::kUniquePerFunction, BufferPolicy::kShared}) {
    GlueConfig config = two_stage_config(4, 4, model::Striping::kStriped, 0,
                                         model::Striping::kStriped, 1,
                                         {16, 16});
    ExecuteOptions options;
    options.buffer_policy = policy;
    Engine engine(config, test_registry(), options);
    const RunStats stats = engine.run();
    EXPECT_NEAR(stats.results.at("sink")[0], expected_index_sum({16, 16}),
                1.0)
        << to_string(policy);
  }
}

TEST(EngineTest, UniquePolicyCostsMoreThanShared) {
  // The paper's 2-node corner-turn anomaly: unique logical buffers add
  // data access time. Use a large buffer so copy costs dominate noise.
  GlueConfig config = two_stage_config(2, 2, model::Striping::kStriped, 0,
                                       model::Striping::kStriped, 1,
                                       {1024, 512});
  config.iterations_default = 4;

  // Compare the busy time spent moving data through the logical buffer
  // (send-side packing + local delivery), taken from the trace. The
  // unique policy touches every byte twice, the shared policy once, so
  // the staged time must be clearly larger; comparing only the copy
  // path keeps unrelated kernel noise out of the assertion.
  auto copy_time = [&](BufferPolicy policy) {
    ExecuteOptions options;
    options.buffer_policy = policy;
    Engine engine(config, test_registry(), options);
    engine.run();  // warm-up: first-touch page faults land here
    double best = -1.0;
    for (int i = 0; i < 3; ++i) {
      const RunStats stats = engine.run();
      double total = 0.0;
      for (const viz::Event& e : stats.trace.events()) {
        if (e.kind == viz::EventKind::kSend ||
            e.kind == viz::EventKind::kBufferCopy) {
          total += e.end_vt - e.start_vt;
        }
      }
      if (best < 0 || total < best) best = total;
    }
    return best;
  };
  const double unique = copy_time(BufferPolicy::kUniquePerFunction);
  const double shared = copy_time(BufferPolicy::kShared);
  EXPECT_GT(unique, shared * 1.2);
}

TEST(EngineTest, KernelParametersReachTheKernel) {
  GlueConfig config = two_stage_config(1, 1, model::Striping::kStriped, 0,
                                       model::Striping::kStriped, 0, {4, 4});
  // Splice a threshold stage's params through a custom kernel.
  config.functions[0].params["bias"] = 2.5;

  FunctionRegistry registry = test_registry();
  registry.add("test.param_source", [](KernelContext& ctx) {
    PortSlice& out = ctx.out("out");
    const auto bias = static_cast<float>(ctx.param_or("bias", 0.0));
    for (auto& v : out.as<float>()) v = bias;
  });
  config.functions[0].kernel = "test.param_source";
  config.functions[1].kernel = "test.sum_sink";

  Engine engine(config, registry);
  const RunStats stats = engine.run();
  EXPECT_NEAR(stats.results.at("sink")[0], 2.5 * 16, 1e-3);
}

TEST(EngineTest, MissingKernelIsALoadError) {
  GlueConfig config = two_stage_config(1, 1, model::Striping::kStriped, 0,
                                       model::Striping::kStriped, 0, {4, 4});
  config.functions[0].kernel = "no.such.kernel";
  EXPECT_THROW(Engine(config, test_registry()), RuntimeError);
}

TEST(EngineTest, MismatchedBufferSizesAreAConfigError) {
  GlueConfig config = two_stage_config(1, 1, model::Striping::kStriped, 0,
                                       model::Striping::kStriped, 0, {4, 4});
  config.functions[1].ports[0].dims = {4, 8};  // consumer expects more
  EXPECT_THROW(Engine(config, test_registry()), ConfigError);
}

TEST(EngineTest, ScheduleMissingAFunctionIsAConfigError) {
  GlueConfig config = two_stage_config(2, 2, model::Striping::kStriped, 0,
                                       model::Striping::kStriped, 0, {4, 4});
  config.schedule[1] = {0};  // sink missing on node 1
  EXPECT_THROW(Engine(config, test_registry()), ConfigError);
}

TEST(EngineTest, BoundedBuffersPreserveResults) {
  GlueConfig config = two_stage_config(4, 4, model::Striping::kStriped, 0,
                                       model::Striping::kStriped, 1, {16, 16});
  config.iterations_default = 6;
  for (const int depth : {1, 2, 3}) {
    ExecuteOptions options;
    options.buffer_depth = depth;
    Engine engine(config, test_registry(), options);
    const RunStats stats = engine.run();
    for (double v : stats.results.at("sink")) {
      EXPECT_NEAR(v, expected_index_sum({16, 16}), 1.0) << "depth " << depth;
    }
    EXPECT_GT(stats.fabric_messages, 0u);
  }
}

TEST(EngineTest, BackpressureThrottlesAPipelinedProducer) {
  // Stage chain src -> sink with the two on different nodes and a slow
  // sink. Unbounded, the producer races ahead (its virtual finish time
  // is set by its own work); with depth 1 it is credit-throttled to the
  // consumer's pace, so its final virtual time grows markedly.
  const std::vector<std::size_t> dims{64, 64};
  GlueConfig config;
  config.application = "bp";
  config.hardware = "hw";
  config.nodes = 2;
  config.iterations_default = 6;

  FunctionConfig src;
  src.id = 0;
  src.name = "src";
  src.kernel = "test.index_source";
  src.role = "source";
  src.threads = 1;
  src.thread_nodes = {0};
  src.ports.push_back(make_port("out", model::PortDirection::kOut,
                                model::Striping::kStriped, 0, dims));
  config.functions.push_back(src);

  FunctionConfig sink;
  sink.id = 1;
  sink.name = "sink";
  sink.kernel = "test.slow_sink";
  sink.role = "sink";
  sink.threads = 1;
  sink.thread_nodes = {1};
  sink.ports.push_back(make_port("in", model::PortDirection::kIn,
                                 model::Striping::kStriped, 0, dims));
  config.functions.push_back(sink);

  BufferConfig buf;
  buf.id = 0;
  buf.src_function = 0;
  buf.src_port = "out";
  buf.dst_function = 1;
  buf.dst_port = "in";
  config.buffers.push_back(buf);
  config.schedule[0] = {0};
  config.schedule[1] = {1};

  FunctionRegistry registry = test_registry();
  registry.add("test.slow_sink", [](KernelContext& ctx) {
    const PortSlice& in = ctx.in("in");
    double acc = 0.0;
    // Artificially heavy consumer.
    for (int repeat = 0; repeat < 30; ++repeat) {
      for (float v : in.as<float>()) acc += v;
    }
    ctx.set_result(acc / 30.0);
  });

  auto producer_finish = [&](int depth) {
    ExecuteOptions options;
    options.buffer_depth = depth;
    options.collect_trace = false;
    Engine engine(config, registry, options);
    RunStats stats = engine.run();
    // All correctness intact either way.
    EXPECT_NEAR(stats.results.at("sink").back(),
                expected_index_sum(dims), 2.0);
    return stats;
  };

  const RunStats unbounded = producer_finish(0);
  const RunStats bounded = producer_finish(1);
  // Credits flow back through the fabric only in the bounded run.
  EXPECT_GT(bounded.fabric_messages, unbounded.fabric_messages);
}

TEST(EngineTest, KernelExceptionPropagatesToCaller) {
  GlueConfig config = two_stage_config(2, 2, model::Striping::kStriped, 0,
                                       model::Striping::kStriped, 0, {4, 4});
  FunctionRegistry registry = test_registry();
  registry.add("test.bomb", [](KernelContext& ctx) {
    if (ctx.thread() == 1) raise<RuntimeError>("kernel exploded");
  });
  config.functions[0].kernel = "test.bomb";
  ExecuteOptions options;
  options.recv_timeout_s = 2.0;  // peers stuck on the dead producer
  Engine engine(config, registry, options);
  EXPECT_THROW(engine.run(), Error);
}

TEST(EngineTest, WrongScheduleOrderIsDetectedAsDeadlock) {
  // Three corner-turning stages; node 1 runs them in reverse. Node 0's
  // mid stage waits for node 1's source while node 1's sink waits for
  // node 0's mid stage -- a cross-node cycle. The recv timeout turns
  // the hang into CommError instead of a wedged test run.
  const std::vector<std::size_t> dims{8, 8};
  GlueConfig config = two_stage_config(2, 2, model::Striping::kStriped, 0,
                                       model::Striping::kStriped, 1, dims);
  FunctionConfig mid;
  mid.id = 2;
  mid.name = "mid";
  mid.kernel = "identity";
  mid.threads = 2;
  mid.thread_nodes = {0, 1};
  mid.ports.push_back(make_port("in", model::PortDirection::kIn,
                                model::Striping::kStriped, 1, dims));
  mid.ports.push_back(make_port("out", model::PortDirection::kOut,
                                model::Striping::kStriped, 0, dims));
  config.functions.push_back(mid);
  // Re-route: src -> mid -> sink (sink keeps its dim-1 striping so the
  // second hop also crosses nodes).
  config.buffers[0].dst_function = 2;
  BufferConfig second;
  second.id = 1;
  second.src_function = 2;
  second.src_port = "out";
  second.dst_function = 1;
  second.dst_port = "in";
  config.buffers.push_back(second);
  config.schedule[0] = {0, 2, 1};
  config.schedule[1] = {1, 2, 0};  // reversed

  ExecuteOptions options;
  options.recv_timeout_s = 0.3;
  options.collect_trace = false;
  Engine engine(config, test_registry(), options);
  EXPECT_THROW(engine.run(), CommError);
}

TEST(EngineTest, ContentionFabricStillDeliversCorrectData) {
  GlueConfig config = two_stage_config(8, 8, model::Striping::kStriped, 0,
                                       model::Striping::kStriped, 1, {16, 16});
  ExecuteOptions options;
  net::FabricModel contended = net::myrinet_fabric();
  contended.model_contention = true;
  options.fabric = contended;
  Engine engine(config, test_registry(), options);
  const RunStats stats = engine.run();
  EXPECT_NEAR(stats.results.at("sink")[0], expected_index_sum({16, 16}), 1.0);
}

TEST(EngineTest, TraceCoversEveryFunctionInvocation) {
  GlueConfig config = two_stage_config(2, 2, model::Striping::kStriped, 0,
                                       model::Striping::kStriped, 0, {8, 8});
  config.iterations_default = 2;
  Engine engine(config, test_registry());
  const RunStats stats = engine.run();
  int starts = 0;
  for (const viz::Event& e : stats.trace.events()) {
    if (e.kind == viz::EventKind::kFunctionStart) ++starts;
  }
  // 2 functions x 2 threads x 2 iterations.
  EXPECT_EQ(starts, 8);
}

TEST(EngineTest, SelectiveProbesRestrictFunctionEvents) {
  GlueConfig config = two_stage_config(2, 2, model::Striping::kStriped, 0,
                                       model::Striping::kStriped, 0, {8, 8});
  config.iterations_default = 2;
  config.probes = {1};  // only the sink is instrumented
  Engine engine(config, test_registry());
  const RunStats stats = engine.run();
  int starts = 0;
  for (const viz::Event& e : stats.trace.events()) {
    if (e.kind == viz::EventKind::kFunctionStart) {
      EXPECT_EQ(e.function_id, 1);
      ++starts;
    }
  }
  EXPECT_EQ(starts, 4);  // 1 function x 2 threads x 2 iterations
  // Results and latency measurement are unaffected by probe selection.
  EXPECT_EQ(stats.latencies.size(), 2u);
  EXPECT_NEAR(stats.results.at("sink")[0], expected_index_sum({8, 8}), 1.0);
}

TEST(EngineTest, ProbeIdOutOfRangeRejected) {
  GlueConfig config = two_stage_config(1, 1, model::Striping::kStriped, 0,
                                       model::Striping::kStriped, 0, {4, 4});
  config.probes = {7};
  EXPECT_THROW(Engine(config, test_registry()), ConfigError);
}

}  // namespace
}  // namespace sage::runtime
