// Core-facade tests: Project lifecycle (generation caching,
// invalidation, registry swap), vendor platform presets, and workspace
// cloning.
#include <gtest/gtest.h>

#include "apps/benchmarks.hpp"
#include "core/platforms.hpp"
#include "core/project.hpp"
#include "model/app.hpp"
#include "model/hardware.hpp"
#include "support/error.hpp"

namespace sage::core {
namespace {

TEST(ProjectTest, GenerationIsCachedUntilInvalidated) {
  Project project(apps::make_cornerturn_workspace(64, 2));
  EXPECT_EQ(project.generate().config.iterations_default, 1);

  // Edit the model: the cached artifacts must NOT pick it up...
  project.workspace().application().set_property("iterations", 9);
  EXPECT_EQ(project.generate().config.iterations_default, 1);

  // ...until invalidated.
  project.invalidate();
  EXPECT_EQ(project.generate().config.iterations_default, 9);
}

TEST(ProjectTest, EditScopeInvalidatesAutomatically) {
  Project project(apps::make_cornerturn_workspace(64, 2));
  EXPECT_EQ(project.generate().config.iterations_default, 1);

  // One-liner form: the temporary scope ends with the statement.
  project.edit()->application().set_property("iterations", 6);
  EXPECT_EQ(project.generate().config.iterations_default, 6);

  // Block form: invalidation happens when the scope closes.
  {
    Project::EditScope ws = project.edit();
    ws->application().set_property("iterations", 3);
    (*ws).application().set_property("iterations", 5);
  }
  EXPECT_EQ(project.generate().config.iterations_default, 5);
}

TEST(ProjectTest, OpenSessionDerivesPlatformFromHardwareModel) {
  Project project(apps::make_cornerturn_workspace(64, 2));
  auto session = project.open_session();
  // Unset options were resolved from the hardware model.
  ASSERT_TRUE(session->options().fabric.has_value());
  EXPECT_EQ(session->options().fabric->name, "cspi-myrinet-160");
  EXPECT_EQ(session->options().cpu_scales.size(), 2u);
  // Explicit options pass through untouched.
  runtime::ExecuteOptions options;
  options.cpu_scales = {2.0, 2.0};
  options.buffer_depth = 1;
  auto tuned = project.open_session(options);
  EXPECT_EQ(tuned->options().cpu_scales, options.cpu_scales);
  EXPECT_EQ(tuned->options().buffer_depth, 1);
}

// The pre-session entry points must keep compiling (deprecated) and
// behave identically.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(ProjectTest, DeprecatedEntryPointsStillWork) {
  Project project(apps::make_cornerturn_workspace(64, 2));
  project.workspace().application().set_property("iterations", 4);
  EXPECT_EQ(project.generate(/*force=*/true).config.iterations_default, 4);

  core::ExecuteOptions options;  // deprecated alias of the unified struct
  options.iterations = 2;
  options.collect_trace = false;
  EXPECT_EQ(project.execute(options).iterations, 2);
}
#pragma GCC diagnostic pop

TEST(ProjectTest, ExecuteUsesHardwareModelParameters) {
  // Two projects differing only in cpu_scale: the slower platform's
  // modeled latency must be larger.
  auto fast_ws = apps::make_cornerturn_workspace(256, 2);
  auto slow_ws = apps::make_cornerturn_workspace(256, 2);
  for (model::ModelObject* cpu :
       model::processors(slow_ws->hardware())) {
    cpu->set_property("cpu_scale", 8.0);
  }
  Project fast(std::move(fast_ws));
  Project slow(std::move(slow_ws));
  runtime::ExecuteOptions options;
  options.collect_trace = false;
  options.iterations = 3;
  fast.execute(options);  // warm-up both
  slow.execute(options);
  const double fast_latency = fast.execute(options).mean_latency();
  const double slow_latency = slow.execute(options).mean_latency();
  EXPECT_GT(slow_latency, fast_latency * 2.0);
}

TEST(ProjectTest, MissingKernelSurfacesAtExecute) {
  auto ws = apps::make_cornerturn_workspace(64, 2);
  model::find_function(ws->application(), "corner_turn")
      .set_property("kernel", "no.such.kernel");
  Project project(std::move(ws));
  EXPECT_THROW(project.execute(), RuntimeError);
}

TEST(PlatformTest, PresetsResolve) {
  EXPECT_EQ(vendor_platforms().size(), 4u);
  EXPECT_EQ(vendor_platform("mercury").fabric_preset, "mercury-raceway");
  EXPECT_THROW(vendor_platform("cray"), ModelError);
}

TEST(PlatformTest, AddVendorPlatformBuildsExactNodeCount) {
  model::Workspace ws("t");
  model::ModelObject& hw = add_vendor_platform(ws.root(), "mercury", 8);
  EXPECT_EQ(model::processors(hw).size(), 8u);
  // Mercury boards carry 6 CPUs: 6 + 2.
  const auto boards = hw.descendants_of_type("board");
  ASSERT_EQ(boards.size(), 2u);
  EXPECT_EQ(boards[0]->children_of_type("processor").size(), 6u);
  EXPECT_EQ(boards[1]->children_of_type("processor").size(), 2u);
  const net::FabricModel fabric = model::to_fabric_model(hw);
  EXPECT_EQ(fabric.name, "mercury-raceway");
  EXPECT_EQ(fabric.nodes_per_board, 6);
}

TEST(PlatformTest, RetargetKeepsLayoutChangesParameters) {
  auto ws = apps::make_fft2d_workspace(64, 4);  // CSPI by default
  retarget_hardware(ws->hardware(), "sigi");
  EXPECT_EQ(ws->hardware().property("fabric").as_string(), "sigi");
  EXPECT_DOUBLE_EQ(model::processors(ws->hardware())[0]
                       ->property("cpu_scale")
                       .as_double(),
                   1.2);
  // The mapping still validates (processor names unchanged).
  EXPECT_NO_THROW(ws->validate_or_throw());
}

TEST(WorkspaceCloneTest, DeepCopyIsIndependent) {
  auto original = apps::make_cornerturn_workspace(64, 2);
  auto copy = original->clone();
  EXPECT_EQ(copy->root().dump(), original->root().dump());

  // Edits to the copy don't leak back.
  model::find_function(copy->application(), "corner_turn")
      .set_property("threads", 1);
  EXPECT_EQ(model::find_function(original->application(), "corner_turn")
                .property("threads")
                .as_int(),
            2);
  // Both still drive the full pipeline independently.
  EXPECT_NO_THROW(original->validate_or_throw());
}

}  // namespace
}  // namespace sage::core
