// Compatibility pins for the deprecated surface: the
// runtime::EngineOptions and core::ExecuteOptions aliases, the
// boolean-trap Project::generate(bool), the one-shot Engine wrapper
// over Session, and the PR-6 streaming-redesign leftovers (the
// RunRequest alias of RunOverrides and Session::run_batch). These must
// keep compiling and keep their cold-run equivalence until the aliases
// are removed.
#include <gtest/gtest.h>

#include <string>
#include <type_traits>
#include <vector>

#include "apps/benchmarks.hpp"
#include "core/project.hpp"
#include "runtime/engine.hpp"
#include "runtime/session.hpp"
#include "support/error.hpp"

// The whole point of this file is to exercise deprecated names.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

namespace sage {
namespace {

TEST(CompatTest, DeprecatedOptionAliasesAreTheUnifiedStruct) {
  static_assert(
      std::is_same_v<runtime::EngineOptions, runtime::ExecuteOptions>);
  static_assert(std::is_same_v<core::ExecuteOptions, runtime::ExecuteOptions>);

  // Old-style call sites spell the options through the aliases and pass
  // them anywhere the unified struct is accepted.
  runtime::EngineOptions engine_options;
  engine_options.iterations = 2;
  core::ExecuteOptions core_options = engine_options;
  EXPECT_EQ(core_options.iterations, 2);
}

TEST(CompatTest, EngineWrapperMatchesSessionRuns) {
  core::Project project(apps::make_cornerturn_workspace(64, 4));
  runtime::ExecuteOptions options;
  options.iterations = 2;
  const runtime::RunStats direct = project.execute(options);

  runtime::Engine engine(project.generate().config,
                         project.registry(), options);
  EXPECT_EQ(engine.options().iterations, 2);
  EXPECT_EQ(engine.config().nodes, project.generate().config.nodes);

  const runtime::RunStats first = engine.run();
  EXPECT_EQ(first.results, direct.results);
  EXPECT_EQ(first.fabric_messages, direct.fabric_messages);
  EXPECT_EQ(first.fabric_bytes, direct.fabric_bytes);

  // Repeated Engine::run() stays cold-equivalent.
  const runtime::RunStats second = engine.run();
  EXPECT_EQ(second.results, first.results);
  EXPECT_EQ(second.fabric_messages, first.fabric_messages);
}

TEST(CompatTest, DeprecatedRunRequestAliasIsRunOverrides) {
  static_assert(std::is_same_v<runtime::RunRequest, runtime::RunOverrides>);

  // Old-style call sites keep compiling: the alias spells the override
  // struct and passes anywhere run()/submit() accept it.
  runtime::RunRequest request;
  request.iterations = 3;
  core::Project project(apps::make_cornerturn_workspace(32, 2));
  auto session = project.open_session();
  EXPECT_EQ(session->run(request).iterations, 3);
}

TEST(CompatTest, DeprecatedRunBatchStillRunsAndStillThrows) {
  core::Project project(apps::make_cornerturn_workspace(32, 2));
  runtime::ExecuteOptions options;
  options.iterations = 2;
  options.collect_trace = false;
  auto session = project.open_session(options);

  // Semantics unchanged: n consecutive non-overlapped warm runs...
  const std::vector<runtime::RunStats> batch = session->run_batch(2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].results, batch[1].results);
  EXPECT_EQ(batch[0].results, session->run().results);

  // ...including the argument validation.
  EXPECT_THROW(session->run_batch(0), RuntimeError);
  EXPECT_THROW(session->run_batch(-3), RuntimeError);
}

TEST(CompatTest, DrainWithNothingInFlightIsADocumentedNoOp) {
  // Regression pin for the serve scheduler's reliance on this: a
  // drain() with zero in-flight tickets returns empty, throws nothing,
  // and leaves the session fully usable (including an active epoch).
  core::Project project(apps::make_cornerturn_workspace(32, 2));
  runtime::ExecuteOptions options;
  options.iterations = 1;
  options.collect_trace = false;
  auto session = project.open_session(options);

  EXPECT_TRUE(session->drain().empty());  // fresh session, nothing ever ran
  EXPECT_EQ(session->in_flight(), 0);

  const runtime::RunStats reference = session->run();
  EXPECT_TRUE(session->drain().empty());  // after a synchronous run

  const runtime::Ticket ticket = session->submit();
  const std::vector<runtime::RunStats> one = session->drain();
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one.front().ticket, ticket.id);
  EXPECT_TRUE(session->drain().empty());  // immediately after a drain
  EXPECT_EQ(session->in_flight(), 0);

  // The no-op drain didn't disturb the epoch: streaming resumes and
  // stays bit-identical.
  session->submit();
  const std::vector<runtime::RunStats> more = session->drain();
  ASSERT_EQ(more.size(), 1u);
  EXPECT_EQ(more.front().results, reference.results);
}

TEST(CompatTest, PollOnARedeemedTicketThrowsTheCollectedError) {
  // Pin the audited poll() semantics: once wait()/drain() redeems a
  // ticket its completion state is gone, and poll answers the same
  // typed error as wait -- "unknown or already-collected" -- rather
  // than false or a stale true.
  core::Project project(apps::make_cornerturn_workspace(32, 2));
  runtime::ExecuteOptions options;
  options.iterations = 1;
  options.collect_trace = false;
  auto session = project.open_session(options);

  const runtime::Ticket ticket = session->submit();
  session->wait(ticket);
  try {
    session->poll(ticket);
    FAIL() << "poll on a redeemed ticket must throw";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("already-collected"),
              std::string::npos)
        << e.what();
  }
  // Same pin for the drain() redemption path.
  const runtime::Ticket drained = session->submit();
  session->drain();
  EXPECT_THROW(session->poll(drained), RuntimeError);
  EXPECT_THROW(session->wait(drained), RuntimeError);
}

TEST(CompatTest, DeprecatedForceGenerateStillRegenerates) {
  core::Project project(apps::make_cornerturn_workspace(32, 2));
  const std::string before = project.generate().glue_config_text();
  const std::string after = project.generate(true).glue_config_text();
  EXPECT_EQ(after, before);  // same model -> same glue, regenerated
}

}  // namespace
}  // namespace sage
