// Model tests: the object/property graph, the Designer editors
// (application, hardware, mapping), shelves, and workspace validation.
#include <gtest/gtest.h>

#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"
#include "model/object.hpp"
#include "model/shelf.hpp"
#include "model/workspace.hpp"
#include "support/error.hpp"

namespace sage::model {
namespace {

// --- object / properties ----------------------------------------------------

TEST(ObjectTest, PropertiesRoundTrip) {
  ModelObject obj("function", "f");
  obj.set_property("threads", 4);
  obj.set_property("speed", 2.5);
  obj.set_property("kernel", "fft");
  obj.set_property("flag", true);
  obj.set_property("dims", PropertyList{PropertyValue(8), PropertyValue(16)});

  EXPECT_EQ(obj.property("threads").as_int(), 4);
  EXPECT_DOUBLE_EQ(obj.property("speed").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(obj.property("threads").as_double(), 4.0);  // int->double
  EXPECT_EQ(obj.property("kernel").as_string(), "fft");
  EXPECT_TRUE(obj.property("flag").as_bool());
  EXPECT_EQ(obj.property("dims").as_list()[1].as_int(), 16);
  EXPECT_THROW(obj.property("missing"), ModelError);
  EXPECT_EQ(obj.property_or("missing", 7).as_int(), 7);
  EXPECT_THROW(obj.property("kernel").as_int(), ModelError);
}

TEST(ObjectTest, PropertyValueToString) {
  EXPECT_EQ(PropertyValue().to_string(), "nil");
  EXPECT_EQ(PropertyValue(true).to_string(), "true");
  EXPECT_EQ(PropertyValue(42).to_string(), "42");
  EXPECT_EQ(PropertyValue("a\"b").to_string(), "\"a\\\"b\"");
  EXPECT_EQ(
      PropertyValue(PropertyList{PropertyValue(1), PropertyValue(2)}).to_string(),
      "(1 2)");
}

TEST(ObjectTest, HierarchyAndLookup) {
  ModelObject root("root", "r");
  ModelObject& a = root.add_child("block", "a");
  ModelObject& f1 = a.add_child("function", "f1");
  root.add_child("function", "f2");

  EXPECT_EQ(f1.parent(), &a);
  EXPECT_EQ(f1.path(), "r/a/f1");
  EXPECT_EQ(root.find_child("a"), &a);
  EXPECT_EQ(root.find_child("function", "f2")->name(), "f2");
  EXPECT_EQ(root.find_child("nope"), nullptr);
  EXPECT_EQ(root.children_of_type("function").size(), 1u);
  EXPECT_EQ(root.descendants_of_type("function").size(), 2u);

  int count = 0;
  root.visit([&](ModelObject&) { ++count; });
  EXPECT_EQ(count, 4);
}

TEST(ObjectTest, CloneIsDeepWithFreshIdentity) {
  ModelObject proto("function", "proto");
  proto.set_property("threads", 2);
  proto.add_child("port", "in").set_property("direction", "in");

  auto copy = proto.clone("instance");
  EXPECT_EQ(copy->name(), "instance");
  EXPECT_NE(copy->id(), proto.id());
  EXPECT_EQ(copy->property("threads").as_int(), 2);
  ASSERT_NE(copy->find_child("in"), nullptr);
  EXPECT_NE(copy->find_child("in")->id(), proto.find_child("in")->id());

  // Mutating the clone leaves the prototype untouched.
  copy->set_property("threads", 8);
  EXPECT_EQ(proto.property("threads").as_int(), 2);
}

TEST(ObjectTest, RemoveChild) {
  ModelObject root("root", "r");
  ModelObject& a = root.add_child("x", "a");
  root.remove_child(a);
  EXPECT_EQ(root.children().size(), 0u);
  ModelObject other("x", "b");
  EXPECT_THROW(root.remove_child(other), ModelError);
}

// --- application editor ----------------------------------------------------------

std::unique_ptr<Workspace> small_design() {
  auto ws = std::make_unique<Workspace>("t");
  ModelObject& root = ws->root();
  add_cspi_platform(root, 2);
  ModelObject& app = add_application(root, "app");
  ModelObject& src = add_function(app, "src", "matrix_source", 2);
  src.set_property("role", "source");
  add_port(src, "out", PortDirection::kOut, Striping::kStriped, "cfloat",
           {8, 8}, 0);
  ModelObject& sink = add_function(app, "sink", "matrix_sink", 2);
  sink.set_property("role", "sink");
  add_port(sink, "in", PortDirection::kIn, Striping::kStriped, "cfloat",
           {8, 8}, 0);
  connect(app, "src.out", "sink.in");
  ModelObject& mapping = add_mapping(root, "mapping", "cspi");
  assign_ranks(root, mapping, "src", {0, 1});
  assign_ranks(root, mapping, "sink", {0, 1});
  return ws;
}

TEST(AppTest, BuildersProduceValidDesign) {
  auto ws = small_design();
  EXPECT_NO_THROW(ws->validate_or_throw());
  EXPECT_EQ(functions(ws->application()).size(), 2u);
  EXPECT_EQ(arcs(ws->application()).size(), 1u);
}

TEST(AppTest, PortViewParsesProperties) {
  auto ws = small_design();
  const ModelObject& src = find_function(ws->application(), "src");
  const PortView view = port_view(find_port(src, "out"));
  EXPECT_EQ(view.direction, PortDirection::kOut);
  EXPECT_EQ(view.striping, Striping::kStriped);
  EXPECT_EQ(view.total_elems(), 64u);
  EXPECT_EQ(view.datatype, "cfloat");
}

TEST(AppTest, ConnectValidatesEndpointsAndDirections) {
  auto ws = small_design();
  ModelObject& app = ws->application();
  EXPECT_THROW(connect(app, "nope.out", "sink.in"), ModelError);
  EXPECT_THROW(connect(app, "src.nope", "sink.in"), ModelError);
  EXPECT_THROW(connect(app, "sink.in", "src.out"), ModelError);  // reversed
  EXPECT_THROW(connect(app, "malformed", "sink.in"), ModelError);
}

TEST(AppTest, DuplicateNamesRejected) {
  auto ws = small_design();
  ModelObject& app = ws->application();
  EXPECT_THROW(add_function(app, "src", "k", 1), ModelError);
  ModelObject& src = find_function(app, "src");
  EXPECT_THROW(add_port(src, "out", PortDirection::kOut, Striping::kStriped,
                        "cfloat", {4}, 0),
               ModelError);
}

TEST(AppTest, FunctionsInsideBlocksAreFound) {
  Workspace ws("t");
  ModelObject& app = add_application(ws.root(), "app");
  ModelObject& block = add_block(app, "stage1");
  add_function(block, "inner", "identity", 1);
  EXPECT_EQ(functions(app).size(), 1u);
  EXPECT_EQ(find_function(app, "inner").parent()->name(), "stage1");
  // Name uniqueness applies across blocks.
  EXPECT_THROW(add_function(app, "inner", "identity", 1), ModelError);
}

TEST(AppTest, TopologicalOrderRespectsArcs) {
  Workspace ws("t");
  ModelObject& app = add_application(ws.root(), "app");
  for (const char* name : {"c", "b", "a"}) {
    ModelObject& fn = add_function(app, name, "identity", 1);
    add_port(fn, "in", PortDirection::kIn, Striping::kStriped, "cfloat", {4},
             0);
    add_port(fn, "out", PortDirection::kOut, Striping::kStriped, "cfloat",
             {4}, 0);
  }
  connect(app, "a.out", "b.in");
  connect(app, "b.out", "c.in");
  const auto order = topological_order(app);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0]->name(), "a");
  EXPECT_EQ(order[1]->name(), "b");
  EXPECT_EQ(order[2]->name(), "c");
}

TEST(AppTest, CycleDetected) {
  Workspace ws("t");
  ModelObject& app = add_application(ws.root(), "app");
  for (const char* name : {"a", "b"}) {
    ModelObject& fn = add_function(app, name, "identity", 1);
    add_port(fn, "in", PortDirection::kIn, Striping::kStriped, "cfloat", {4},
             0);
    add_port(fn, "out", PortDirection::kOut, Striping::kStriped, "cfloat",
             {4}, 0);
  }
  connect(app, "a.out", "b.in");
  connect(app, "b.out", "a.in");
  EXPECT_THROW(topological_order(app), ModelError);
}

TEST(AppTest, DatatypeLookup) {
  Workspace ws("t");
  EXPECT_EQ(datatype_bytes(ws.root(), "cfloat"), 8u);
  EXPECT_EQ(datatype_bytes(ws.root(), "float"), 4u);
  EXPECT_EQ(datatype_bytes(ws.root(), "byte"), 1u);
  EXPECT_THROW(datatype_bytes(ws.root(), "quad"), ModelError);

  ModelObject& dts = *ws.root().find_child("datatypes", "datatypes");
  add_datatype(dts, "cdouble", "complex<double>", 16);
  EXPECT_EQ(datatype_bytes(ws.root(), "cdouble"), 16u);
  EXPECT_THROW(add_datatype(dts, "cdouble", "x", 16), ModelError);
}

// --- hardware editor -------------------------------------------------------------

TEST(HardwareTest, CspiPlatformShape) {
  Workspace ws("t");
  ModelObject& hw = add_cspi_platform(ws.root(), 6);
  const auto cpus = processors(hw);
  ASSERT_EQ(cpus.size(), 6u);
  EXPECT_EQ(board_of_rank(hw, 0), 0);
  EXPECT_EQ(board_of_rank(hw, 3), 0);
  EXPECT_EQ(board_of_rank(hw, 4), 1);
  EXPECT_THROW(board_of_rank(hw, 6), ModelError);
  EXPECT_EQ(processor_rank(hw, "ppc603e_5"), 5);
  EXPECT_THROW(processor_rank(hw, "nope"), ModelError);
  EXPECT_DOUBLE_EQ(cpus[0]->property("mhz").as_double(), 200.0);
}

TEST(HardwareTest, FabricModelFromPresetWithOverrides) {
  Workspace ws("t");
  ModelObject& hw = add_cspi_platform(ws.root(), 8);
  net::FabricModel m = to_fabric_model(hw);
  EXPECT_EQ(m.nodes_per_board, 4);
  EXPECT_NEAR(m.inter_board_bandwidth_Bps, 160.0 * 1024 * 1024, 1.0);

  hw.set_property("inter_board_bandwidth_Bps", 1e9);
  m = to_fabric_model(hw);
  EXPECT_DOUBLE_EQ(m.inter_board_bandwidth_Bps, 1e9);
}

TEST(HardwareTest, LinkOverridesApplyPerBoardPair) {
  Workspace ws("t");
  ModelObject& hw = add_cspi_platform(ws.root(), 12);  // 3 boards
  add_link(hw, "slow_bridge", 0, 2, 10.0 * 1024 * 1024, 50e-6);

  const net::FabricModel m = to_fabric_model(hw);
  // Boards 0<->2 use the slow bridge (nodes 0..3 vs 8..11).
  EXPECT_DOUBLE_EQ(m.bandwidth_Bps(0, 8), 10.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(m.latency_s(11, 3), 50e-6);  // symmetric
  // Boards 0<->1 keep the default fabric.
  EXPECT_DOUBLE_EQ(m.bandwidth_Bps(0, 4), 160.0 * 1024 * 1024);
  // Intra-board traffic untouched.
  EXPECT_DOUBLE_EQ(m.bandwidth_Bps(8, 9), 160.0 * 1024 * 1024);
}

TEST(HardwareTest, LinkGuards) {
  Workspace ws("t");
  ModelObject& hw = add_cspi_platform(ws.root(), 8);
  EXPECT_THROW(add_link(hw, "self", 1, 1, 1e6, 0), ModelError);
  EXPECT_THROW(add_link(hw, "nobw", 0, 1, 0, 0), ModelError);
}

TEST(HardwareTest, UnknownFabricPresetRejected) {
  Workspace ws("t");
  ModelObject& hw = add_hardware(ws.root(), "custom", "warp-drive");
  add_processor(add_board(hw, "b"), "p", 100, 1 << 20);
  EXPECT_THROW(to_fabric_model(hw), ModelError);
}

// --- mapping ----------------------------------------------------------------------

TEST(MappingTest, MultiAssignmentGivesPerThreadRanks) {
  auto ws = small_design();
  const MappingView view(ws->root(), ws->mapping());
  EXPECT_EQ(view.rank_of("src"), 0);
  EXPECT_EQ(view.ranks_of("src"), (std::vector<int>{0, 1}));
  EXPECT_TRUE(view.is_mapped("sink"));
  EXPECT_FALSE(view.is_mapped("ghost"));
  EXPECT_THROW(view.ranks_of("ghost"), ModelError);
  EXPECT_EQ(view.node_count(), 2);
  EXPECT_EQ(view.functions_on(1), (std::vector<std::string>{"src", "sink"}));
}

TEST(MappingTest, MappingToUnknownHardwareRejected) {
  Workspace ws("t");
  add_application(ws.root(), "app");
  EXPECT_THROW(add_mapping(ws.root(), "m", "ghost-hw"), ModelError);
}

// --- workspace validation -----------------------------------------------------------

TEST(ValidationTest, CleanDesignHasNoErrors) {
  auto ws = small_design();
  for (const Issue& issue : ws->validate()) {
    EXPECT_NE(issue.severity, Issue::Severity::kError) << issue.to_string();
  }
}

TEST(ValidationTest, DanglingInPortIsAnError) {
  auto ws = small_design();
  ModelObject& sink = find_function(ws->application(), "sink");
  add_port(sink, "in2", PortDirection::kIn, Striping::kStriped, "cfloat",
           {8, 8}, 0);
  EXPECT_THROW(ws->validate_or_throw(), ModelError);
}

TEST(ValidationTest, DatatypeMismatchIsAnError) {
  auto ws = small_design();
  ModelObject& sink = find_function(ws->application(), "sink");
  find_port(sink, "in").set_property("datatype", "float");
  EXPECT_THROW(ws->validate_or_throw(), ModelError);
}

TEST(ValidationTest, SizeMismatchIsAnError) {
  auto ws = small_design();
  ModelObject& sink = find_function(ws->application(), "sink");
  find_port(sink, "in").set_property(
      "dims", PropertyList{PropertyValue(8), PropertyValue(16)});
  EXPECT_THROW(ws->validate_or_throw(), ModelError);
}

TEST(ValidationTest, UnmappedFunctionIsAnError) {
  auto ws = small_design();
  ModelObject& app = ws->application();
  ModelObject& extra = add_function(app, "extra", "identity", 1);
  add_port(extra, "in", PortDirection::kIn, Striping::kStriped, "cfloat",
           {8, 8}, 0);
  add_port(extra, "out", PortDirection::kOut, Striping::kStriped, "cfloat",
           {8, 8}, 0);
  // Leave it unmapped and unconnected.
  EXPECT_THROW(ws->validate_or_throw(), ModelError);
}

TEST(ValidationTest, SourceWithInPortIsAnError) {
  auto ws = small_design();
  ModelObject& src = find_function(ws->application(), "src");
  add_port(src, "in", PortDirection::kIn, Striping::kStriped, "cfloat",
           {8, 8}, 0);
  const auto issues = ws->validate();
  bool found = false;
  for (const Issue& issue : issues) {
    if (issue.message.find("source function has in-ports") !=
        std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ValidationTest, UnevenStripingIsAWarning) {
  auto ws = small_design();
  ModelObject& src = find_function(ws->application(), "src");
  src.set_property("threads", 3);  // 8 rows over 3 threads
  ModelObject& sink = find_function(ws->application(), "sink");
  sink.set_property("threads", 3);
  bool warned = false;
  for (const Issue& issue : ws->validate()) {
    if (issue.severity == Issue::Severity::kWarning &&
        issue.message.find("does not divide evenly") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned);
}

// --- shelves -------------------------------------------------------------------------

TEST(ShelfTest, StandardShelvesHaveExpectedPrototypes) {
  const Shelf software = standard_software_shelf();
  EXPECT_TRUE(software.contains("fft_rows"));
  EXPECT_TRUE(software.contains("corner_turn"));
  EXPECT_TRUE(software.contains("matrix_source"));
  EXPECT_FALSE(software.contains("warp"));
  EXPECT_THROW(software.prototype("warp"), ModelError);

  const Shelf hardware_shelf = standard_hardware_shelf();
  EXPECT_TRUE(hardware_shelf.contains("quad_ppc603e"));
  EXPECT_EQ(hardware_shelf.prototype("quad_ppc603e")
                .children_of_type("processor")
                .size(),
            4u);
}

TEST(ShelfTest, InstantiationClonesIntoDesign) {
  Workspace ws("t");
  ModelObject& app = add_application(ws.root(), "app");
  const Shelf software = standard_software_shelf();
  ModelObject& fft = software.instantiate("fft_rows", app, "my_fft");
  EXPECT_EQ(fft.name(), "my_fft");
  EXPECT_EQ(fft.property("kernel").as_string(), "isspl.fft_rows");
  ASSERT_NE(fft.find_child("in"), nullptr);
  // Instance edits don't touch the shelf prototype.
  fft.set_property("threads", 8);
  EXPECT_EQ(software.prototype("fft_rows").property("threads").as_int(), 1);
}

TEST(ShelfTest, DuplicatePrototypeRejected) {
  Shelf shelf("s");
  shelf.put(std::make_unique<ModelObject>("function", "f"));
  EXPECT_THROW(shelf.put(std::make_unique<ModelObject>("function", "f")),
               ModelError);
}

}  // namespace
}  // namespace sage::model
