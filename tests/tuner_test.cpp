// Online-tuning tests: atot::CostModel::calibrate, the GA's seeded
// population, Session::swap_program's quiesce-and-swap, and the
// runtime::Tuner loop end to end. The contracts pinned here:
//   * calibration is an identity: a profile manufactured from
//     assignment A reproduces A's per-processor loads exactly, and
//     re-calibrating with the same snapshot is a fixpoint;
//   * Tuner::step() is deterministic -- same (seed, profile) sequence,
//     same decisions, bit-identical objectives -- across fresh sessions;
//   * a mid-stream hot-swap under depth-3 streaming keeps the sink
//     checksums bit-identical to a no-tuner sequential run, and
//     in-flight tickets survive the swap;
//   * swap_program() rejects programs with a different function table;
//   * a tuner thread racing the host thread's wait() is clean (the
//     suite runs under TSAN via scripts/run_sanitizer_tests.sh);
//   * Project::remap_on_survivors is never worse than the repaired
//     incumbent it is seeded with, and is deterministic.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/pipelines.hpp"
#include "atot/cost_model.hpp"
#include "atot/mapper.hpp"
#include "core/project.hpp"
#include "model/mapping.hpp"
#include "net/fabric_model.hpp"
#include "runtime/compiler.hpp"
#include "runtime/session.hpp"
#include "runtime/tuner.hpp"
#include "support/error.hpp"
#include "viz/metrics.hpp"

namespace sage::runtime {
namespace {

/// Small instance of the skewed tuning platform: 4-function chain
/// (src, stage0, stage1, sink) x 2 threads, 2 fast + 2 slow nodes,
/// everything parked on the slow ones.
core::Project make_tuning_project() {
  return core::Project(apps::make_tuning_workspace(64, 2));
}

ExecuteOptions quiet_options(int iterations = 2) {
  ExecuteOptions options;
  options.iterations = iterations;
  options.collect_trace = false;
  return options;
}

// --- CostModel::calibrate --------------------------------------------------

/// A profile manufactured from a known assignment must calibrate into a
/// problem that predicts that assignment's loads exactly: the emulator
/// charges host seconds x cpu_scale, so busy_f = h_f * iters *
/// sum_t scale(A[t]) inverts to per-task work of h_f host-seconds, and
/// evaluate() then charges h_f * scale(p) on processor p.
TEST(TunerCalibrationTest, CalibrateReproducesMeasuredLoadsExactly) {
  atot::MappingProblem problem;
  problem.fabric = net::myrinet_fabric();
  const std::vector<double> scales{0.25, 0.25, 4.0, 4.0};
  problem.proc_flops.assign(4, 1.0);  // overwritten by the CostModel ctor
  problem.proc_mem_bytes.assign(4, 0);
  problem.tasks.resize(4);
  const char* names[] = {"alpha", "alpha", "beta", "beta"};
  for (int i = 0; i < 4; ++i) {
    problem.tasks[static_cast<std::size_t>(i)].id = i;
    problem.tasks[static_cast<std::size_t>(i)].function = names[i];
    problem.tasks[static_cast<std::size_t>(i)].thread = i % 2;
  }

  // Ground truth: alpha costs 3 ms/iteration/thread of host time, beta
  // 1 ms. Measured under A = {0, 2, 1, 3} for 5 iterations.
  const atot::Assignment measured{0, 2, 1, 3};
  const double h_alpha = 3e-3, h_beta = 1e-3;
  const int iters = 5;
  atot::CalibrationProfile profile;
  profile.iterations = iters;
  profile.measured_assignment = measured;
  profile.functions.push_back(
      {"alpha", h_alpha * iters * (scales[0] + scales[2]), 2.0 * iters});
  profile.functions.push_back(
      {"beta", h_beta * iters * (scales[1] + scales[3]), 2.0 * iters});

  atot::CostModel model(problem, scales);
  model.calibrate(profile);

  // Per-task work is back in host seconds (x the calibrated unit).
  EXPECT_NEAR(model.problem().tasks[0].work_flops,
              h_alpha * atot::kCalibratedUnitFlops, 1e-6);
  EXPECT_NEAR(model.problem().tasks[2].work_flops,
              h_beta * atot::kCalibratedUnitFlops, 1e-6);

  // And evaluate() reproduces the measured per-processor seconds: the
  // busiest processor under A is proc 2 (alpha thread at scale 4).
  const atot::CostBreakdown cost = atot::evaluate(model.problem(), measured);
  EXPECT_NEAR(cost.max_load, h_alpha * scales[2], 1e-9);
}

TEST(TunerCalibrationTest, RepeatedCalibrationIsAFixpoint) {
  core::Project project = make_tuning_project();
  auto session = project.open_session(quiet_options());
  TunerOptions options;
  options.hysteresis = 1e9;  // hold: the incumbent attribution must not move
  Tuner tuner(*session, project.registry(), options);

  atot::CalibrationProfile profile;
  profile.iterations = 2;
  profile.functions.push_back({"stage0", 4.0, 4.0});
  profile.functions.push_back({"stage1", 4.0, 4.0});
  profile.functions.push_back({"src", 0.1, 4.0});
  profile.functions.push_back({"sink", 0.1, 4.0});

  tuner.observe(profile);
  tuner.step();
  const atot::MappingProblem first = tuner.problem();

  tuner.observe(profile);
  tuner.step();
  const atot::MappingProblem second = tuner.problem();

  ASSERT_EQ(first.tasks.size(), second.tasks.size());
  for (std::size_t i = 0; i < first.tasks.size(); ++i) {
    EXPECT_EQ(first.tasks[i].work_flops, second.tasks[i].work_flops)
        << "task " << i;
  }
  ASSERT_EQ(first.traffic.size(), second.traffic.size());
  for (std::size_t i = 0; i < first.traffic.size(); ++i) {
    EXPECT_EQ(first.traffic[i].bytes, second.traffic[i].bytes) << "edge " << i;
  }
}

/// The live loop's property test: calibrate from a real measured run,
/// then the calibrated model's load prediction for the incumbent must
/// land within generous bounds of the measured per-iteration makespan
/// (compute is exact by construction; comm/serialization make the
/// makespan an upper neighborhood, host noise blurs both sides).
TEST(TunerCalibrationTest, CalibratedModelPredictsMeasuredMakespan) {
  core::Project project = make_tuning_project();
  auto session = project.open_session(quiet_options(3));
  TunerOptions options;
  options.hysteresis = 1e9;  // measure only, never swap
  Tuner tuner(*session, project.registry(), options);

  double makespan = 0.0;
  int iterations = 0;
  for (int r = 0; r < 3; ++r) {
    const RunStats stats = session->run();
    if (r == 0 || stats.makespan < makespan) makespan = stats.makespan;
    iterations = stats.iterations;
    tuner.observe(stats);
  }
  const TuneStepReport report = tuner.step();
  ASSERT_EQ(report.outcome, "hold");
  ASSERT_GT(report.incumbent_objective, 0.0);

  const double per_iter = makespan / iterations;
  const double predicted =
      atot::evaluate(tuner.problem(), tuner.incumbent()).max_load;
  EXPECT_GT(predicted, 0.3 * per_iter);
  EXPECT_LT(predicted, 3.0 * per_iter);
}

// --- Tuner::step determinism ----------------------------------------------

TEST(TunerStepTest, DeterministicAcrossFreshSessions) {
  atot::CalibrationProfile profile;
  profile.iterations = 2;
  profile.functions.push_back({"stage0", 4.0, 4.0});
  profile.functions.push_back({"stage1", 4.0, 4.0});
  profile.functions.push_back({"src", 0.1, 4.0});
  profile.functions.push_back({"sink", 0.1, 4.0});

  auto decide = [&profile]() {
    core::Project project = make_tuning_project();
    auto session = project.open_session(quiet_options());
    Tuner tuner(*session, project.registry());
    tuner.observe(profile);
    const TuneStepReport report = tuner.step();
    return std::make_pair(report, tuner.incumbent());
  };

  const auto [first, first_map] = decide();
  const auto [second, second_map] = decide();

  EXPECT_EQ(first.outcome, second.outcome);
  EXPECT_EQ(first.incumbent_objective, second.incumbent_objective);
  EXPECT_EQ(first.candidate_objective, second.candidate_objective);
  EXPECT_EQ(first.predicted_gain_ratio, second.predicted_gain_ratio);
  EXPECT_EQ(first.moved_threads, second.moved_threads);
  EXPECT_EQ(first_map, second_map);
}

TEST(TunerStepTest, SkipsWithoutSamplesAndCountsOutcomes) {
  core::Project project = make_tuning_project();
  auto session = project.open_session(quiet_options());
  Tuner tuner(*session, project.registry());

  const TuneStepReport report = tuner.step();
  EXPECT_EQ(report.outcome, "skip");
  EXPECT_FALSE(report.swapped());
  EXPECT_EQ(tuner.steps(), 1);
  EXPECT_EQ(tuner.swaps(), 0);

  const viz::MetricsSnapshot snap = tuner.snapshot();
  const viz::MetricValue* skips =
      snap.find(viz::families::kTuneSteps, {{"outcome", "skip"}});
  ASSERT_NE(skips, nullptr);
  EXPECT_EQ(skips->value, 1.0);
  EXPECT_TRUE(skips->time_based);
  EXPECT_NE(snap.find(viz::families::kTunePredictedGain), nullptr);
  EXPECT_NE(snap.find(viz::families::kTuneSwapSeconds), nullptr);
}

// --- the end-to-end loop ---------------------------------------------------

TEST(TunerConvergenceTest, DigsOutOfTheSkewedStart) {
  core::Project project = make_tuning_project();
  auto session = project.open_session(quiet_options());
  Tuner tuner(*session, project.registry());

  TuneStepReport first_swap;
  for (int s = 0; s < 3; ++s) {
    tuner.observe(session->run());
    const TuneStepReport report = tuner.step();
    if (report.swapped() && first_swap.step == 0) first_swap = report;
  }

  // The 16x-skewed platform with idle fast processors: the first real
  // window must trigger a large-gain swap.
  ASSERT_GE(tuner.swaps(), 1);
  EXPECT_GT(first_swap.predicted_gain_ratio, 0.5);
  EXPECT_GT(first_swap.moved_threads, 0);
  bool uses_fast = false;
  for (const int node : tuner.incumbent()) {
    if (node < 2) uses_fast = true;
  }
  EXPECT_TRUE(uses_fast) << "tuned placement still ignores the fast nodes";

  // And the session still runs clean after the hot-swap.
  const RunStats after = session->run();
  EXPECT_EQ(after.iterations, 2);
  EXPECT_GT(after.makespan, 0.0);
}

// --- swap_program under streaming load -------------------------------------

atot::Assignment flipped_to_fast(const CompiledProgram& program) {
  atot::Assignment assignment(program.bindings_of.size(), 0);
  for (const FunctionConfig& fn : program.config.functions) {
    for (int t = 0; t < fn.threads; ++t) {
      const int task =
          program.fn_thread_base[static_cast<std::size_t>(fn.id)] + t;
      // slow nodes {2,3} -> fast nodes {1,0}; fast -> slow.
      const int node = fn.thread_nodes[static_cast<std::size_t>(t)];
      assignment[static_cast<std::size_t>(task)] = 3 - node;
    }
  }
  return assignment;
}

TEST(TunerSwapTest, MidStreamSwapKeepsChecksumsBitIdentical) {
  constexpr int kSets = 3;
  const ExecuteOptions options = quiet_options();

  // No-tuner reference: back-to-back synchronous runs.
  core::Project ref_project = make_tuning_project();
  auto ref = ref_project.open_session(options);
  std::vector<RunStats> sequential;
  for (int i = 0; i < 2 * kSets; ++i) sequential.push_back(ref->run());

  core::Project project = make_tuning_project();
  auto session = project.open_session(options);
  RunOverrides depth3;
  depth3.buffer_depth = 3;

  // Swap mid-stream: three tickets in flight when the program changes.
  std::vector<Ticket> tickets;
  for (int i = 0; i < kSets; ++i) tickets.push_back(session->submit(depth3));
  EXPECT_EQ(session->in_flight(), kSets);
  session->swap_program(
      compile_or_load(remapped_config(session->program(),
                                      flipped_to_fast(session->program())),
                      project.registry(), options.plan_cache_dir));

  // The in-flight tickets survive and redeem in order...
  std::vector<RunStats> streamed;
  for (const Ticket t : tickets) streamed.push_back(session->wait(t));
  EXPECT_EQ(session->in_flight(), 0);
  // ...and the swapped program serves the next window on the same
  // session.
  for (int i = 0; i < kSets; ++i) session->submit(depth3);
  for (RunStats& stats : session->drain()) {
    streamed.push_back(std::move(stats));
  }

  ASSERT_EQ(streamed.size(), sequential.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].results, sequential[i].results) << "data set " << i;
    EXPECT_EQ(streamed[i].iterations, sequential[i].iterations);
  }
}

TEST(TunerSwapTest, RejectsIncompatiblePrograms) {
  core::Project project = make_tuning_project();
  const ExecuteOptions options = quiet_options();
  auto session = project.open_session(options);

  EXPECT_THROW(session->swap_program(nullptr), Error);

  // A program with a different function table (the quickstart chain).
  core::Project other(apps::make_quickstart_workspace(64, 2));
  EXPECT_THROW(session->swap_program(other.compile_program(options)), Error);

  // remapped_config checks the gene count.
  EXPECT_THROW(remapped_config(session->program(), atot::Assignment{0, 1}),
               Error);

  // The session is untouched by the rejected swaps.
  const RunStats stats = session->run();
  EXPECT_EQ(stats.iterations, 2);
}

// --- tuner thread vs host thread (TSAN) ------------------------------------

TEST(TunerSwapRaceTest, SwapRacesStreamingHostCleanly) {
  constexpr int kSets = 4;
  const ExecuteOptions options = quiet_options();

  core::Project ref_project = make_tuning_project();
  auto ref = ref_project.open_session(options);
  std::vector<RunStats> sequential;
  for (int i = 0; i < kSets; ++i) sequential.push_back(ref->run());

  core::Project project = make_tuning_project();
  auto session = project.open_session(options);
  const std::shared_ptr<const CompiledProgram> fast = compile_or_load(
      remapped_config(session->program(), flipped_to_fast(session->program())),
      project.registry(), options.plan_cache_dir);

  RunOverrides depth3;
  depth3.buffer_depth = 3;
  std::vector<Ticket> tickets;
  for (int i = 0; i < kSets; ++i) tickets.push_back(session->submit(depth3));

  // The tuner thread swaps while the host thread blocks in wait() --
  // the by-design race the swap_program contract allows.
  std::thread tuner_thread(
      [&session, fast]() { session->swap_program(fast); });
  std::vector<RunStats> streamed;
  for (const Ticket t : tickets) streamed.push_back(session->wait(t));
  tuner_thread.join();

  ASSERT_EQ(streamed.size(), static_cast<std::size_t>(kSets));
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].results, sequential[i].results) << "data set " << i;
  }
}

// --- Project::remap_on_survivors ------------------------------------------

/// The repair rule remap_on_survivors seeds the GA with: stranded
/// threads onto the least-loaded survivor, ties to the lowest rank.
atot::Assignment repaired_incumbent(const atot::MappingProblem& problem,
                                    model::Workspace& workspace) {
  const model::MappingView view(workspace.root(), workspace.mapping());
  atot::Assignment incumbent(static_cast<std::size_t>(problem.task_count()),
                             0);
  for (const atot::Task& task : problem.tasks) {
    const std::vector<int> ranks = view.ranks_of(task.function);
    incumbent[static_cast<std::size_t>(task.id)] =
        ranks[static_cast<std::size_t>(task.thread) % ranks.size()];
  }
  std::vector<int> load(static_cast<std::size_t>(problem.proc_count()), 0);
  for (const int p : incumbent) {
    if (problem.proc_alive(p)) ++load[static_cast<std::size_t>(p)];
  }
  for (int& p : incumbent) {
    if (problem.proc_alive(p)) continue;
    int best = -1;
    for (int r = 0; r < problem.proc_count(); ++r) {
      if (!problem.proc_alive(r)) continue;
      if (best == -1 || load[static_cast<std::size_t>(r)] <
                            load[static_cast<std::size_t>(best)]) {
        best = r;
      }
    }
    p = best;
    ++load[static_cast<std::size_t>(best)];
  }
  return incumbent;
}

TEST(TunerRemapTest, SurvivorRemapNeverWorseThanRepairedIncumbent) {
  const std::vector<int> dead{3};

  core::Project project = make_tuning_project();
  atot::MappingProblem problem = atot::build_problem(project.workspace());
  problem.proc_dead = dead;
  const double repaired_objective =
      atot::evaluate(problem, repaired_incumbent(problem, project.workspace()))
          .objective;

  const atot::CostBreakdown remapped = project.remap_on_survivors(dead);
  EXPECT_LE(remapped.objective, repaired_objective);

  // The written-back mapping avoids the dead rank.
  const model::MappingView view(project.workspace().root(),
                                project.workspace().mapping());
  for (const atot::Task& task : problem.tasks) {
    for (const int rank : view.ranks_of(task.function)) {
      EXPECT_NE(rank, 3) << task.function << " still on the dead rank";
    }
  }

  // And the remap is deterministic: a second identical project lands on
  // the identical mapping.
  core::Project again = make_tuning_project();
  const atot::CostBreakdown remapped2 = again.remap_on_survivors(dead);
  const model::MappingView view2(again.workspace().root(),
                                 again.workspace().mapping());
  EXPECT_EQ(remapped.objective, remapped2.objective);
  for (const atot::Task& task : problem.tasks) {
    EXPECT_EQ(view.ranks_of(task.function), view2.ranks_of(task.function));
  }
}

}  // namespace
}  // namespace sage::runtime
