// minimpi tests: point-to-point semantics and every collective,
// parameterized over node counts (including non-powers of two).
#include <gtest/gtest.h>

#include <numeric>

#include "mpi/alltoall.hpp"
#include "mpi/comm.hpp"
#include "net/machine.hpp"
#include "support/error.hpp"

namespace sage::mpi {
namespace {

/// Runs `body(comm)` on every rank of a fresh machine.
void on_machine(int nodes, const std::function<void(Communicator&)>& body) {
  net::Machine machine(nodes, net::ideal_fabric());
  machine.run([&](net::NodeContext& node) {
    Communicator comm(node);
    body(comm);
  });
}

class CollectiveTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(NodeCounts, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(PointToPointTest, TypedSendRecv) {
  on_machine(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> data{1, 2, 3};
      comm.send<int>(data, 1, 5);
    } else {
      std::vector<int> data(3);
      const Status status = comm.recv<int>(data, 0, 5);
      EXPECT_EQ(data[2], 3);
      EXPECT_EQ(status.source, 0);
      EXPECT_EQ(status.tag, 5);
      EXPECT_EQ(status.bytes, 12u);
    }
  });
}

TEST(PointToPointTest, SendRecvValueAndAnySource) {
  on_machine(3, [](Communicator& comm) {
    if (comm.rank() != 0) {
      comm.send_value<double>(comm.rank() * 1.5, 0, 1);
    } else {
      double total = 0.0;
      for (int i = 0; i < 2; ++i) {
        total += comm.recv_value<double>(kAnySource, 1);
      }
      EXPECT_DOUBLE_EQ(total, 1.5 + 3.0);
    }
  });
}

TEST(PointToPointTest, SendrecvExchangesWithoutDeadlock) {
  on_machine(2, [](Communicator& comm) {
    const int peer = 1 - comm.rank();
    int mine = comm.rank() + 10;
    int theirs = -1;
    comm.sendrecv_bytes(
        std::as_bytes(std::span<const int>(&mine, 1)), peer, 2,
        std::as_writable_bytes(std::span<int>(&theirs, 1)), peer, 2);
    EXPECT_EQ(theirs, peer + 10);
  });
}

TEST(PointToPointTest, IrecvCompletesOnWait) {
  on_machine(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const int v = 99;
      comm.isend_bytes(std::as_bytes(std::span<const int>(&v, 1)), 1, 3);
    } else {
      int v = 0;
      Request req =
          comm.irecv_bytes(std::as_writable_bytes(std::span<int>(&v, 1)), 0, 3);
      EXPECT_FALSE(req.done());
      const Status status = req.wait();
      EXPECT_TRUE(req.done());
      EXPECT_EQ(v, 99);
      EXPECT_EQ(status.bytes, sizeof(int));
    }
  });
}

TEST(PointToPointTest, OversizedMessageRejected) {
  on_machine(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> data{1, 2, 3, 4};
      comm.send<int>(data, 1, 1);
    } else {
      std::vector<int> small(2);
      EXPECT_THROW(comm.recv<int>(small, 0, 1), CommError);
    }
  });
}

TEST(PointToPointTest, UserTagRangeEnforced) {
  on_machine(1, [](Communicator& comm) {
    std::byte b{};
    EXPECT_THROW(comm.send_bytes({&b, 1}, 0, kMaxUserTag), CommError);
    EXPECT_THROW(comm.send_bytes({&b, 1}, 0, -2), CommError);
  });
}

TEST_P(CollectiveTest, Barrier) {
  on_machine(GetParam(), [](Communicator& comm) {
    for (int i = 0; i < 3; ++i) comm.barrier();
  });
}

TEST_P(CollectiveTest, BcastFromEveryRoot) {
  const int n = GetParam();
  on_machine(n, [n](Communicator& comm) {
    for (int root = 0; root < n; ++root) {
      std::vector<int> data(4, comm.rank() == root ? root + 100 : -1);
      comm.bcast<int>(data, root);
      for (int v : data) EXPECT_EQ(v, root + 100);
    }
  });
}

TEST_P(CollectiveTest, ReduceSumToRoot) {
  const int n = GetParam();
  on_machine(n, [n](Communicator& comm) {
    const std::vector<int> mine{comm.rank(), 2 * comm.rank()};
    std::vector<int> out(2, 0);
    comm.reduce<int>(mine, out, std::plus<int>(), 0);
    if (comm.rank() == 0) {
      const int total = n * (n - 1) / 2;
      EXPECT_EQ(out[0], total);
      EXPECT_EQ(out[1], 2 * total);
    }
  });
}

TEST_P(CollectiveTest, AllreduceMax) {
  const int n = GetParam();
  on_machine(n, [n](Communicator& comm) {
    const std::vector<int> mine{comm.rank()};
    std::vector<int> out(1);
    comm.allreduce<int>(mine, out,
                        [](int a, int b) { return std::max(a, b); });
    EXPECT_EQ(out[0], n - 1);
  });
}

TEST_P(CollectiveTest, GatherCollectsInRankOrder) {
  const int n = GetParam();
  on_machine(n, [n](Communicator& comm) {
    const std::vector<int> mine{comm.rank() * 10, comm.rank() * 10 + 1};
    std::vector<int> all(comm.rank() == 0 ? 2 * static_cast<std::size_t>(n)
                                          : 0);
    comm.gather<int>(mine, all, 0);
    if (comm.rank() == 0) {
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r)], r * 10);
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r * 10 + 1);
      }
    }
  });
}

TEST_P(CollectiveTest, ScatterDistributesBlocks) {
  const int n = GetParam();
  on_machine(n, [n](Communicator& comm) {
    std::vector<int> all;
    if (comm.rank() == 0) {
      all.resize(static_cast<std::size_t>(n));
      std::iota(all.begin(), all.end(), 0);
    }
    std::vector<int> mine(1, -1);
    comm.scatter<int>(all, mine, 0);
    EXPECT_EQ(mine[0], comm.rank());
  });
}

TEST_P(CollectiveTest, GathervVariableBlocks) {
  const int n = GetParam();
  on_machine(n, [n](Communicator& comm) {
    // Rank r contributes r+1 ints (rank 0 contributes 1, etc.).
    std::vector<std::size_t> counts;
    std::size_t total = 0;
    for (int r = 0; r < n; ++r) {
      counts.push_back(static_cast<std::size_t>(r + 1) * sizeof(int));
      total += static_cast<std::size_t>(r + 1);
    }
    std::vector<int> mine(static_cast<std::size_t>(comm.rank() + 1),
                          comm.rank());
    std::vector<int> all(comm.rank() == 0 ? total : 0);
    comm.gatherv_bytes(std::as_bytes(std::span<const int>(mine)),
                       std::as_writable_bytes(std::span<int>(all)), counts, 0);
    if (comm.rank() == 0) {
      std::size_t idx = 0;
      for (int r = 0; r < n; ++r) {
        for (int i = 0; i <= r; ++i) {
          EXPECT_EQ(all[idx++], r);
        }
      }
    }
  });
}

TEST_P(CollectiveTest, ScattervVariableBlocks) {
  const int n = GetParam();
  on_machine(n, [n](Communicator& comm) {
    std::vector<std::size_t> counts;
    std::size_t total = 0;
    for (int r = 0; r < n; ++r) {
      counts.push_back(static_cast<std::size_t>(r + 1) * sizeof(int));
      total += static_cast<std::size_t>(r + 1);
    }
    std::vector<int> all;
    if (comm.rank() == 0) {
      for (int r = 0; r < n; ++r) {
        for (int i = 0; i <= r; ++i) all.push_back(r * 7);
      }
    }
    std::vector<int> mine(static_cast<std::size_t>(comm.rank() + 1), -1);
    comm.scatterv_bytes(std::as_bytes(std::span<const int>(all)),
                        std::as_writable_bytes(std::span<int>(mine)), counts,
                        0);
    for (int v : mine) EXPECT_EQ(v, comm.rank() * 7);
  });
}

TEST(GathervTest, MismatchedCountsRejected) {
  on_machine(2, [](Communicator& comm) {
    std::vector<std::size_t> counts{4};  // wrong length
    std::vector<int> mine(1), all(2);
    EXPECT_THROW(
        comm.gatherv_bytes(std::as_bytes(std::span<const int>(mine)),
                           std::as_writable_bytes(std::span<int>(all)),
                           counts, 0),
        CommError);
  });
}

TEST_P(CollectiveTest, AllgatherEveryoneSeesEverything) {
  const int n = GetParam();
  on_machine(n, [n](Communicator& comm) {
    const std::vector<int> mine{comm.rank() + 1};
    std::vector<int> all(static_cast<std::size_t>(n));
    comm.allgather<int>(mine, all);
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r + 1);
    }
  });
}

struct AlltoallCase {
  int nodes;
  AlltoallAlgorithm algorithm;
};

class AlltoallTest : public ::testing::TestWithParam<AlltoallCase> {};

INSTANTIATE_TEST_SUITE_P(
    NodeAlgorithms, AlltoallTest,
    ::testing::Values(AlltoallCase{1, AlltoallAlgorithm::kPairwise},
                      AlltoallCase{2, AlltoallAlgorithm::kPairwise},
                      AlltoallCase{4, AlltoallAlgorithm::kPairwise},
                      AlltoallCase{8, AlltoallAlgorithm::kPairwise},
                      AlltoallCase{3, AlltoallAlgorithm::kPairwise},  // ring fallback
                      AlltoallCase{2, AlltoallAlgorithm::kRing},
                      AlltoallCase{5, AlltoallAlgorithm::kRing},
                      AlltoallCase{8, AlltoallAlgorithm::kRing},
                      AlltoallCase{2, AlltoallAlgorithm::kVendorDirect},
                      AlltoallCase{6, AlltoallAlgorithm::kVendorDirect},
                      AlltoallCase{8, AlltoallAlgorithm::kVendorDirect}),
    [](const ::testing::TestParamInfo<AlltoallCase>& info) {
      std::string name = to_string(info.param.algorithm) + "_" +
                         std::to_string(info.param.nodes) + "n";
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST_P(AlltoallTest, ExchangesPersonalizedBlocks) {
  const auto [nodes, algorithm] = GetParam();
  constexpr std::size_t kBlock = 3;
  on_machine(nodes, [nodes = nodes, algorithm = algorithm](Communicator& comm) {
    // Block for rank r carries value rank*100 + r.
    std::vector<int> send(kBlock * static_cast<std::size_t>(nodes));
    for (int r = 0; r < nodes; ++r) {
      for (std::size_t i = 0; i < kBlock; ++i) {
        send[static_cast<std::size_t>(r) * kBlock + i] = comm.rank() * 100 + r;
      }
    }
    std::vector<int> recv(send.size(), -1);
    alltoall<int>(comm, send, recv, kBlock, algorithm);
    for (int r = 0; r < nodes; ++r) {
      for (std::size_t i = 0; i < kBlock; ++i) {
        EXPECT_EQ(recv[static_cast<std::size_t>(r) * kBlock + i],
                  r * 100 + comm.rank());
      }
    }
  });
}

TEST(AlltoallTest, SizeMismatchRejected) {
  on_machine(2, [](Communicator& comm) {
    std::vector<int> send(4), recv(2);
    EXPECT_THROW(alltoall<int>(comm, send, recv, 2), CommError);
  });
}

TEST(SplitTest, RowColumnCommunicators) {
  // 2x2 grid: split by row color, then by column color.
  on_machine(4, [](Communicator& comm) {
    const int row = comm.rank() / 2;
    const int col = comm.rank() % 2;
    auto row_comm = comm.split(row, col);
    ASSERT_NE(row_comm, nullptr);
    EXPECT_EQ(row_comm->size(), 2);
    EXPECT_EQ(row_comm->rank(), col);

    // Collectives work inside the sub-communicator.
    std::vector<int> mine{comm.rank()};
    std::vector<int> sum(1);
    row_comm->allreduce<int>(mine, sum, std::plus<int>());
    EXPECT_EQ(sum[0], row == 0 ? 0 + 1 : 2 + 3);
  });
}

TEST(SplitTest, SplitOfSplitStillCommunicates) {
  // 2x2x2 decomposition: split world into halves, halves into pairs.
  on_machine(8, [](Communicator& comm) {
    auto half = comm.split(comm.rank() / 4, comm.rank() % 4);
    ASSERT_NE(half, nullptr);
    ASSERT_EQ(half->size(), 4);
    auto pair = half->split(half->rank() / 2, half->rank() % 2);
    ASSERT_NE(pair, nullptr);
    ASSERT_EQ(pair->size(), 2);

    std::vector<int> mine{comm.rank()};
    std::vector<int> sum(1);
    pair->allreduce<int>(mine, sum, std::plus<int>());
    // Pairs are (0,1),(2,3),(4,5),(6,7) in world ranks.
    const int base = (comm.rank() / 2) * 2;
    EXPECT_EQ(sum[0], base + base + 1);
  });
}

TEST(SplitTest, NegativeColorYieldsNull) {
  on_machine(3, [](Communicator& comm) {
    auto sub = comm.split(comm.rank() == 0 ? -1 : 0, 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(sub, nullptr);
    } else {
      ASSERT_NE(sub, nullptr);
      EXPECT_EQ(sub->size(), 2);
    }
  });
}

TEST(VirtualTimeTest, CollectiveAdvancesAllClocks) {
  net::Machine machine(4, net::myrinet_fabric());
  machine.run([](net::NodeContext& node) {
    Communicator comm(node);
    comm.barrier();
    EXPECT_GT(node.now(), 0.0);
  });
}

}  // namespace
}  // namespace sage::mpi
