// Metrics tests: the registry (definitions, shard merging, histogram
// bucketing, reset semantics), the exporters (Prometheus exposition,
// metrics CSV, human report), and the runtime::Session always-on probes
// (per-function counters, latency monitors, per-link fabric series) --
// including the bit-identical determinism contract across warm re-runs
// and fresh sessions, mirroring session_test's warm/cold matrix.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "apps/benchmarks.hpp"
#include "apps/pipelines.hpp"
#include "core/project.hpp"
#include "runtime/session.hpp"
#include "support/error.hpp"
#include "viz/exporters.hpp"
#include "viz/metrics.hpp"

namespace sage::viz {
namespace {

// --- registry ---------------------------------------------------------------

TEST(MetricsRegistryTest, CountersSumAcrossShards) {
  MetricsRegistry registry(3);
  const int id = registry.counter("sage_test_total", "help");
  registry.add(0, id, 1.0);
  registry.add(1, id, 2.0);
  registry.add(2, id, 4.0);
  registry.add(2, id, 8.0);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.series.size(), 1u);
  EXPECT_EQ(snap.series[0].name, "sage_test_total");
  EXPECT_EQ(snap.series[0].kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(snap.series[0].value, 15.0);
}

TEST(MetricsRegistryTest, GaugeAggregations) {
  MetricsRegistry registry(3);
  const int max_id =
      registry.gauge("sage_max", "", Aggregation::kMax);
  const int min_id =
      registry.gauge("sage_min", "", Aggregation::kMin);
  registry.set(0, max_id, 5.0);
  registry.set(2, max_id, -3.0);  // shard 1 untouched: it doesn't vote
  registry.set(0, min_id, 5.0);
  registry.set(2, min_id, -3.0);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.find("sage_max")->value, 5.0);
  EXPECT_DOUBLE_EQ(snap.find("sage_min")->value, -3.0);
}

TEST(MetricsRegistryTest, HistogramBucketsAreInclusiveUpperBounds) {
  MetricsRegistry registry(2);
  const int id = registry.histogram("sage_h", "", {1.0, 2.0, 4.0});
  registry.observe(0, id, 0.5);   // le=1
  registry.observe(0, id, 2.0);   // le=2 (inclusive, Prometheus style)
  registry.observe(1, id, 3.0);   // le=4
  registry.observe(1, id, 100.0); // +Inf
  const MetricsSnapshot snap = registry.snapshot();
  const HistogramValue& h = snap.series[0].histogram;
  ASSERT_EQ(h.counts.size(), 4u);  // 3 bounds + +Inf
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 105.5);
}

TEST(MetricsRegistryTest, LabelsDistinguishSeriesOfOneFamily) {
  MetricsRegistry registry(1);
  const int a = registry.counter("sage_fam", "", {{"k", "a"}});
  const int b = registry.counter("sage_fam", "", {{"k", "b"}});
  EXPECT_NE(a, b);
  registry.add(0, a, 1.0);
  registry.add(0, b, 2.0);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.find("sage_fam", {{"k", "a"}})->value, 1.0);
  EXPECT_DOUBLE_EQ(snap.find("sage_fam", {{"k", "b"}})->value, 2.0);
  EXPECT_EQ(snap.find("sage_fam", {{"k", "c"}}), nullptr);
  EXPECT_EQ(registry.lookup("sage_fam", {{"k", "b"}}), b);
  EXPECT_EQ(registry.lookup("sage_nope", {}), std::nullopt);
}

TEST(MetricsRegistryTest, BadDefinitionsThrow) {
  MetricsRegistry registry(1);
  registry.counter("sage_dup", "", {{"k", "a"}});
  EXPECT_THROW(registry.counter("sage_dup", "", {{"k", "a"}}), Error);
  EXPECT_THROW(registry.counter("", ""), Error);
  EXPECT_THROW(registry.histogram("sage_h_bad", "", {2.0, 1.0}), Error);
  EXPECT_THROW(registry.histogram("sage_h_bad2", "", {1.0, 1.0}), Error);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsDefinitions) {
  MetricsRegistry registry(2);
  const int c = registry.counter("sage_c", "");
  const int h = registry.histogram("sage_h", "", {1.0});
  registry.add(0, c, 7.0);
  registry.observe(1, h, 0.5);
  registry.reset();
  EXPECT_EQ(registry.size(), 2);  // ids survive
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.find("sage_c")->value, 0.0);
  EXPECT_EQ(snap.find("sage_h")->histogram.count, 0u);
  // The zeroed snapshot equals a never-touched registry's snapshot.
  registry.add(0, c, 7.0);
  registry.reset();
  EXPECT_EQ(registry.snapshot(), snap);
}

TEST(MetricsSnapshotTest, DeterministicSubsetDropsTimeBasedSeries) {
  MetricsRegistry registry(1);
  registry.counter("sage_busy_seconds", "", {}, /*time_based=*/true);
  registry.counter("sage_calls", "");
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.series.size(), 2u);
  const MetricsSnapshot det = snap.deterministic_subset();
  ASSERT_EQ(det.series.size(), 1u);
  EXPECT_EQ(det.series[0].name, "sage_calls");
}

// --- exporters --------------------------------------------------------------

MetricsSnapshot exporter_sample() {
  MetricsRegistry registry(1);
  // Interleaved families, as the per-link series are defined.
  const int a0 = registry.counter("sage_a_total", "family a", {{"l", "0"}});
  const int b0 = registry.counter("sage_b_total", "family b", {{"l", "0"}});
  const int a1 = registry.counter("sage_a_total", "", {{"l", "1"}});
  const int b1 = registry.counter("sage_b_total", "", {{"l", "1"}});
  const int h = registry.histogram("sage_lat", "latency", {0.1, 1.0});
  registry.add(0, a0, 1.0);
  registry.add(0, b0, 2.0);
  registry.add(0, a1, 3.0);
  registry.add(0, b1, 4.0);
  registry.observe(0, h, 0.05);
  registry.observe(0, h, 0.5);
  registry.observe(0, h, 5.0);
  return registry.snapshot();
}

TEST(ExportersTest, PrometheusTextGroupsFamilies) {
  const std::string text = prometheus_text(exporter_sample());
  // One TYPE header per family, even though definitions interleaved.
  std::size_t type_a = 0;
  std::size_t pos = 0;
  while ((pos = text.find("# TYPE sage_a_total", pos)) != std::string::npos) {
    ++type_a;
    ++pos;
  }
  EXPECT_EQ(type_a, 1u);
  EXPECT_NE(text.find("# HELP sage_a_total family a"), std::string::npos);
  EXPECT_NE(text.find("sage_a_total{l=\"0\"} 1"), std::string::npos);
  EXPECT_NE(text.find("sage_a_total{l=\"1\"} 3"), std::string::npos);
  // Both sage_a series appear before the sage_b header (grouped).
  EXPECT_LT(text.find("sage_a_total{l=\"1\"}"), text.find("# TYPE sage_b"));
}

TEST(ExportersTest, PrometheusHistogramIsCumulative) {
  const std::string text = prometheus_text(exporter_sample());
  // Bounds print at max_digits10 (0.1 -> "0.10000000000000001").
  EXPECT_NE(text.find("sage_lat_bucket{le=\"0.100"), std::string::npos);
  EXPECT_NE(text.find("\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("sage_lat_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("sage_lat_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("sage_lat_sum 5.5"), std::string::npos);
  EXPECT_NE(text.find("sage_lat_count 3"), std::string::npos);
}

TEST(ExportersTest, PrometheusEscapesLabelValues) {
  MetricsRegistry registry(1);
  registry.counter("sage_esc_total", "", {{"f", "a\"b\\c\nd"}});
  const std::string text = prometheus_text(registry.snapshot());
  EXPECT_NE(text.find("f=\"a\\\"b\\\\c\\nd\""), std::string::npos) << text;
}

TEST(ExportersTest, MetricsCsvListsEverySeries) {
  const std::string csv = metrics_csv(exporter_sample());
  EXPECT_NE(csv.find("name,labels,kind,field,value"), std::string::npos);
  EXPECT_NE(csv.find("sage_a_total,l=0,counter,value,1"), std::string::npos);
  EXPECT_NE(csv.find("sage_lat,,histogram,le:0.100"), std::string::npos);
  EXPECT_NE(csv.find("sage_lat,,histogram,count,3"), std::string::npos);
}

// --- Session integration ----------------------------------------------------

runtime::ExecuteOptions fast_options(int iterations = 3) {
  runtime::ExecuteOptions options;
  options.iterations = iterations;
  options.collect_trace = false;
  return options;
}

TEST(SessionMetricsTest, RunStatsCarriesStructuralSeries) {
  core::Project project(apps::make_fft2d_workspace(64, 2));
  const runtime::RunStats stats = project.execute(fast_options());
  ASSERT_FALSE(stats.metrics.empty());

  // Every function ran 2 threads x 3 iterations.
  const MetricValue* calls = stats.metrics.find(
      families::kFunctionInvocations, {{"function", "src"}});
  ASSERT_NE(calls, nullptr);
  EXPECT_DOUBLE_EQ(calls->value, 6.0);

  EXPECT_DOUBLE_EQ(stats.metrics.find(families::kIterations)->value, 3.0);
  EXPECT_EQ(stats.metrics.find(families::kIterationLatency)->histogram.count,
            stats.latencies.size());
  EXPECT_DOUBLE_EQ(stats.metrics.find(families::kMakespan)->value,
                   stats.makespan);

  // The corner turn goes cross-node on 2 nodes: link series must exist
  // and agree with the fabric totals.
  double link_bytes = 0.0;
  for (const MetricValue& v : stats.metrics.series) {
    if (v.name == families::kLinkBytes) link_bytes += v.value;
  }
  EXPECT_DOUBLE_EQ(link_bytes, static_cast<double>(stats.fabric_bytes));

  // No fault plan: every fault series is zero.
  for (const MetricValue& v : stats.metrics.series) {
    if (v.name == families::kFaultsInjected ||
        v.name == families::kFaultRetries) {
      EXPECT_DOUBLE_EQ(v.value, 0.0);
    }
  }
}

TEST(SessionMetricsTest, CollectMetricsOffLeavesSnapshotEmpty) {
  core::Project project(apps::make_fft2d_workspace(64, 2));
  runtime::ExecuteOptions options = fast_options();
  options.collect_metrics = false;
  const runtime::RunStats stats = project.execute(options);
  EXPECT_TRUE(stats.metrics.empty());

  // And per-run override on a warm session.
  core::Project warm_project(apps::make_fft2d_workspace(64, 2));
  auto session = warm_project.open_session(fast_options());
  runtime::RunOverrides off;
  off.collect_metrics = false;
  EXPECT_TRUE(session->run(off).metrics.empty());
  EXPECT_FALSE(session->run().metrics.empty());
}

TEST(SessionMetricsTest, LatencyThresholdMonitorCounts) {
  core::Project project(apps::make_fft2d_workspace(64, 2));
  runtime::ExecuteOptions options = fast_options();
  options.latency_threshold = 1e-12;  // every iteration violates
  const runtime::RunStats stats = project.execute(options);
  EXPECT_DOUBLE_EQ(stats.metrics.find(families::kLatencyViolations)->value,
                   static_cast<double>(stats.latencies.size()));
  EXPECT_DOUBLE_EQ(stats.metrics.find(families::kLatencyThreshold)->value,
                   1e-12);

  // A generous threshold records zero violations.
  options.latency_threshold = 1e6;
  const runtime::RunStats calm = project.execute(options);
  EXPECT_DOUBLE_EQ(calm.metrics.find(families::kLatencyViolations)->value,
                   0.0);
}

TEST(SessionMetricsTest, ReportRendersSessionMetrics) {
  core::Project project(apps::make_radar_workspace(64, 128, 2));
  runtime::ExecuteOptions options;
  options.iterations = 2;
  options.latency_threshold = 1e-12;
  const runtime::RunStats stats = project.execute(options);
  ReportOptions report_options;
  report_options.latency_threshold = options.latency_threshold;
  const std::string text = report(stats.trace, stats.metrics, report_options);
  EXPECT_NE(text.find("bottleneck:"), std::string::npos);
  EXPECT_NE(text.find("node utilization:"), std::string::npos);
  EXPECT_NE(text.find("latency violations"), std::string::npos);
  EXPECT_NE(text.find("fabric links"), std::string::npos);
}

// --- determinism matrix (mirrors session_test's warm/cold pattern) ----------

struct MetricsCase {
  std::string app;  // "fft2d" or "cornerturn"
  runtime::BufferPolicy policy = runtime::BufferPolicy::kUniquePerFunction;
  int buffer_depth = 0;
};

std::string metrics_case_name(
    const ::testing::TestParamInfo<MetricsCase>& info) {
  const bool shared = info.param.policy == runtime::BufferPolicy::kShared;
  return info.param.app + (shared ? "_shared_depth" : "_unique_depth") +
         std::to_string(info.param.buffer_depth);
}

std::unique_ptr<model::Workspace> metrics_workspace(const std::string& app) {
  if (app == "fft2d") return apps::make_fft2d_workspace(64, 2);
  return apps::make_cornerturn_workspace(64, 2);
}

runtime::ExecuteOptions metrics_options(const MetricsCase& param) {
  runtime::ExecuteOptions options;
  options.buffer_policy = param.policy;
  options.iterations = 3;
  options.buffer_depth = param.buffer_depth;
  options.collect_trace = false;
  return options;
}

class MetricsDeterminismTest
    : public ::testing::TestWithParam<MetricsCase> {};

TEST_P(MetricsDeterminismTest, DeterministicSubsetIsBitIdentical) {
  const MetricsCase& param = GetParam();
  constexpr int kRuns = 3;

  // Warm path: one session, kRuns runs.
  core::Project warm_project(metrics_workspace(param.app));
  auto session = warm_project.open_session(metrics_options(param));
  std::vector<runtime::RunStats> warm;
  for (int r = 0; r < kRuns; ++r) warm.push_back(session->run());

  const MetricsSnapshot reference = warm[0].metrics.deterministic_subset();
  ASSERT_FALSE(reference.empty());

  // Warm re-runs: bit-identical deterministic subset (operator== compares
  // doubles exactly).
  for (int r = 1; r < kRuns; ++r) {
    EXPECT_EQ(warm[static_cast<std::size_t>(r)].metrics.deterministic_subset(),
              reference)
        << "warm run " << r;
  }

  // Fresh sessions (the cold path): same subset again.
  core::Project cold_project(metrics_workspace(param.app));
  for (int r = 0; r < 2; ++r) {
    const runtime::RunStats cold =
        cold_project.execute(metrics_options(param));
    EXPECT_EQ(cold.metrics.deterministic_subset(), reference)
        << "cold run " << r;
  }

  // Time-based series exist and are positive -- they are excluded from
  // the subset because they jitter, not because they are missing.
  for (const runtime::RunStats& stats : warm) {
    const MetricValue* busy = stats.metrics.find(
        families::kFunctionBusySeconds);
    ASSERT_NE(busy, nullptr);
    EXPECT_TRUE(busy->time_based);
    EXPECT_GT(busy->value, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AppsPoliciesDepths, MetricsDeterminismTest,
    ::testing::Values(
        MetricsCase{"fft2d", runtime::BufferPolicy::kUniquePerFunction, 0},
        MetricsCase{"fft2d", runtime::BufferPolicy::kShared, 0},
        MetricsCase{"fft2d", runtime::BufferPolicy::kUniquePerFunction, 2},
        MetricsCase{"cornerturn", runtime::BufferPolicy::kUniquePerFunction,
                    0},
        MetricsCase{"cornerturn", runtime::BufferPolicy::kShared, 2}),
    metrics_case_name);

}  // namespace
}  // namespace sage::viz
