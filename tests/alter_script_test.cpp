// Runs the shipped Alter tool script (scripts/model_report.alt) through
// the interpreter directly -- unit-level coverage for the example the
// CLI exposes, so the script cannot rot without a test failing.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "alter/interp.hpp"
#include "apps/benchmarks.hpp"
#include "support/error.hpp"

#ifndef SAGE_SCRIPTS_DIR
#define SAGE_SCRIPTS_DIR "scripts"
#endif

namespace sage::alter {
namespace {

std::string read_script(const std::string& name) {
  const std::string path = std::string(SAGE_SCRIPTS_DIR) + "/" + name;
  std::ifstream in(path);
  if (!in) raise<Error>("cannot open script '", path, "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(AlterScriptTest, ModelReportRunsAgainstABenchmarkDesign) {
  auto ws = apps::make_fft2d_workspace(64, 4);
  Interpreter interp;
  interp.attach_model(ws->root());
  interp.eval_string(read_script("model_report.alt"));

  ASSERT_TRUE(interp.outputs().contains("report.txt"));
  const std::string& report = interp.outputs().at("report.txt");
  // Every function and arc appears in the report.
  for (const char* name :
       {"src", "fft_rows", "corner_turn", "fft_cols", "sink"}) {
    EXPECT_NE(report.find(name), std::string::npos) << name;
  }
  EXPECT_NE(report.find("parallel_fft2d"), std::string::npos);
  EXPECT_NE(report.find("4 processors"), std::string::npos);
  // Traffic sizes are computed: 64*64 cfloat = 32768 bytes per arc.
  EXPECT_NE(report.find("32768 bytes"), std::string::npos);
  // The script logs completion via (print ...).
  EXPECT_NE(interp.print_log().find("report generated"), std::string::npos);
}

TEST(AlterScriptTest, ModelReportIdenticalUnderVmAndTreeWalk) {
  // The shipped script must produce byte-identical emit streams and
  // print log from the bytecode VM and the tree-walking reference.
  const std::string script = read_script("model_report.alt");
  auto ws_vm = apps::make_fft2d_workspace(64, 4);
  auto ws_tree = apps::make_fft2d_workspace(64, 4);

  Interpreter vm;  // default mode: compiled
  vm.attach_model(ws_vm->root());
  vm.eval_string(script);

  Interpreter tree(Interpreter::Mode::kTreeWalk);
  tree.attach_model(ws_tree->root());
  tree.eval_string(script);

  EXPECT_EQ(vm.outputs(), tree.outputs());
  EXPECT_EQ(vm.print_log(), tree.print_log());
}

}  // namespace
}  // namespace sage::alter
