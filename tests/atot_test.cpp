// AToT tests: problem construction from designs, the cost model, the
// genetic mapper against its baselines, the list scheduler, and writing
// assignments back into the mapping model.
#include <gtest/gtest.h>

#include "apps/benchmarks.hpp"
#include "atot/cost_model.hpp"
#include "atot/mapper.hpp"
#include "atot/scheduler.hpp"
#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"
#include "support/error.hpp"

namespace sage::atot {
namespace {

MappingProblem fft_problem(std::size_t n = 64, int nodes = 4) {
  return build_problem(*apps::make_fft2d_workspace(n, nodes));
}

TEST(ProblemTest, TasksAreFunctionThreads) {
  const MappingProblem problem = fft_problem(64, 4);
  EXPECT_EQ(problem.task_count(), 5 * 4);
  EXPECT_EQ(problem.proc_count(), 4);
  EXPECT_EQ(problem.tasks[0].function, "src");
  EXPECT_TRUE(problem.tasks[0].is_source);
  EXPECT_TRUE(problem.tasks.back().is_sink);
  // Work is split across threads.
  const Task& fft_task = problem.tasks[4];  // first fft_rows thread
  EXPECT_EQ(fft_task.function, "fft_rows");
  EXPECT_NEAR(fft_task.work_flops, 64.0 * 64 * 10 / 4, 1e-6);
}

TEST(ProblemTest, TrafficMatchesStripingPlans) {
  const MappingProblem problem = fft_problem(64, 4);
  // Row->row arcs contribute 4 aligned edges each (3 such arcs), the
  // corner-turn arc contributes 16.
  std::size_t aligned = 0, corner = 0;
  for (const Traffic& edge : problem.traffic) {
    const Task& src = problem.tasks[static_cast<std::size_t>(edge.src_task)];
    if (src.function == "fft_rows") {
      ++corner;
      EXPECT_EQ(edge.bytes, (64 / 4) * (64 / 4) * 8u);
    } else {
      ++aligned;
    }
  }
  EXPECT_EQ(corner, 16u);
  EXPECT_EQ(aligned, 12u);
}

TEST(CostTest, ComputeScalesWithProcessorSpeed) {
  MappingProblem problem = fft_problem();
  problem.proc_flops = {1e6, 2e6, 1e6, 1e6};
  const double slow = problem.compute_seconds(4, 0);
  const double fast = problem.compute_seconds(4, 1);
  EXPECT_NEAR(slow, 2 * fast, 1e-12);
}

TEST(CostTest, CommFreeWhenColocated) {
  const MappingProblem problem = fft_problem();
  const Traffic& edge = problem.traffic.front();
  EXPECT_EQ(problem.comm_seconds(edge, 1, 1), 0.0);
  EXPECT_GT(problem.comm_seconds(edge, 0, 1), 0.0);
}

TEST(CostTest, EvaluateBreakdownConsistent) {
  const MappingProblem problem = fft_problem();
  const Assignment everything_on_zero(
      static_cast<std::size_t>(problem.task_count()), 0);
  const CostBreakdown cost = evaluate(problem, everything_on_zero);
  EXPECT_EQ(cost.total_comm, 0.0);  // all co-located
  EXPECT_GT(cost.max_load, 0.0);
  // One processor holds everything: imbalance = max - max/P.
  EXPECT_NEAR(cost.imbalance, cost.max_load * 3.0 / 4.0, 1e-12);

  const Assignment spread = round_robin_mapping(problem);
  const CostBreakdown spread_cost = evaluate(problem, spread);
  EXPECT_LT(spread_cost.max_load, cost.max_load);
  EXPECT_GT(spread_cost.total_comm, 0.0);
}

TEST(CostTest, BadAssignmentsRejected) {
  const MappingProblem problem = fft_problem();
  EXPECT_THROW(evaluate(problem, Assignment{0}), Error);  // wrong size
  Assignment bad(static_cast<std::size_t>(problem.task_count()), 0);
  bad[0] = 99;
  EXPECT_THROW(evaluate(problem, bad), Error);
}

TEST(MapperTest, BaselinesAreValid) {
  const MappingProblem problem = fft_problem();
  for (const Assignment& a :
       {round_robin_mapping(problem), greedy_mapping(problem),
        random_mapping(problem, 3)}) {
    ASSERT_EQ(static_cast<int>(a.size()), problem.task_count());
    for (int p : a) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, problem.proc_count());
    }
  }
}

TEST(MapperTest, GeneticNeverWorseThanSeededBaselines) {
  const MappingProblem problem = fft_problem(128, 8);
  GeneticOptions options;
  options.generations = 40;
  const GeneticResult result = genetic_mapping(problem, options);
  const double greedy = evaluate(problem, greedy_mapping(problem)).objective;
  const double rr = evaluate(problem, round_robin_mapping(problem)).objective;
  EXPECT_LE(result.cost.objective, greedy + 1e-12);
  EXPECT_LE(result.cost.objective, rr + 1e-12);
}

TEST(MapperTest, GeneticBeatsRandomOnLumpyProblem) {
  // Heterogeneous work: GA should clearly beat a random assignment.
  MappingProblem problem = fft_problem(128, 8);
  for (std::size_t i = 0; i < problem.tasks.size(); ++i) {
    problem.tasks[i].work_flops *= (i % 3 == 0) ? 10.0 : 1.0;
  }
  const GeneticResult ga = genetic_mapping(problem);
  const double random_obj =
      evaluate(problem, random_mapping(problem, 99)).objective;
  EXPECT_LT(ga.cost.objective, random_obj);
}

TEST(MapperTest, DeterministicForFixedSeed) {
  const MappingProblem problem = fft_problem();
  GeneticOptions options;
  options.generations = 15;
  const GeneticResult a = genetic_mapping(problem, options);
  const GeneticResult b = genetic_mapping(problem, options);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.history, b.history);
}

TEST(MapperTest, HistoryIsMonotonicallyNonIncreasing) {
  const MappingProblem problem = fft_problem(128, 8);
  const GeneticResult result = genetic_mapping(problem);
  for (std::size_t g = 1; g < result.history.size(); ++g) {
    EXPECT_LE(result.history[g], result.history[g - 1]);
  }
}

TEST(SchedulerTest, RespectsDependencies) {
  const MappingProblem problem = fft_problem();
  const Assignment assignment = round_robin_mapping(problem);
  const ScheduleResult schedule = list_schedule(problem, assignment);

  for (const Traffic& edge : problem.traffic) {
    const auto& src =
        schedule.timeline[static_cast<std::size_t>(edge.src_task)];
    const auto& dst =
        schedule.timeline[static_cast<std::size_t>(edge.dst_task)];
    EXPECT_GE(dst.start, src.finish - 1e-12)
        << "task " << edge.dst_task << " started before its producer";
  }
}

TEST(SchedulerTest, ProcessorsNeverOverlap) {
  const MappingProblem problem = fft_problem(128, 4);
  const Assignment assignment = greedy_mapping(problem);
  const ScheduleResult schedule = list_schedule(problem, assignment);

  for (int p = 0; p < problem.proc_count(); ++p) {
    std::vector<std::pair<double, double>> intervals;
    for (const ScheduledTask& slot : schedule.timeline) {
      if (slot.proc == p) intervals.emplace_back(slot.start, slot.finish);
    }
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first, intervals[i - 1].second - 1e-12);
    }
  }
}

TEST(SchedulerTest, MakespanAndLatencyPositive) {
  const MappingProblem problem = fft_problem();
  const ScheduleResult schedule =
      list_schedule(problem, round_robin_mapping(problem));
  EXPECT_GT(schedule.makespan, 0.0);
  EXPECT_GT(schedule.latency, 0.0);
  EXPECT_LE(schedule.latency, schedule.makespan + 1e-12);
  EXPECT_FALSE(schedule.to_string(problem).empty());
}

TEST(SchedulerTest, LatencyMarginSignsCorrect) {
  const MappingProblem problem = fft_problem();
  const Assignment a = round_robin_mapping(problem);
  EXPECT_GT(latency_margin(problem, a, 1e9), 0.0);
  EXPECT_LT(latency_margin(problem, a, 1e-12), 0.0);
}

TEST(CostTest, TaskMemoryDerivedFromPortSlices) {
  const MappingProblem problem = fft_problem(64, 4);
  // fft_rows thread: in + out, each (64*64/4) cfloat elements.
  const Task& fft_task = problem.tasks[4];
  ASSERT_EQ(fft_task.function, "fft_rows");
  EXPECT_EQ(fft_task.mem_bytes, 2u * (64 * 64 / 4) * 8u);
  // Capacities come from the hardware model (64 MB PowerPC nodes).
  ASSERT_EQ(problem.proc_mem_bytes.size(), 4u);
  EXPECT_EQ(problem.proc_mem_bytes[0], std::size_t{64} << 20);
}

TEST(CostTest, MemoryOverflowPenalized) {
  MappingProblem problem = fft_problem(64, 4);
  // Tiny capacity: everything on one node must overflow.
  problem.proc_mem_bytes.assign(4, 1024);
  const Assignment packed(static_cast<std::size_t>(problem.task_count()), 0);
  const CostBreakdown cost = evaluate(problem, packed);
  EXPECT_FALSE(cost.fits_memory());
  EXPECT_GT(cost.mem_overflow_bytes, 0u);

  // The penalty dominates: a spread mapping (which fits better) wins.
  const CostBreakdown spread =
      evaluate(problem, round_robin_mapping(problem));
  EXPECT_LT(spread.objective, cost.objective);
}

TEST(MapperTest, GeneticAvoidsMemoryOverflow) {
  MappingProblem problem = fft_problem(64, 4);
  // Each node can hold at most ~1/3 of the total staging memory.
  std::size_t total = 0;
  for (const Task& task : problem.tasks) total += task.mem_bytes;
  problem.proc_mem_bytes.assign(4, total / 3);
  const GeneticResult result = genetic_mapping(problem);
  EXPECT_TRUE(result.cost.fits_memory())
      << "overflow " << result.cost.mem_overflow_bytes << " bytes";
}

TEST(MapperTest, LatencyConstraintSteersTheSearch) {
  // Make communication cheap relative to compute so packing work onto
  // few processors is tempting for the comm term, then demand a latency
  // only a spread-out mapping can reach.
  MappingProblem problem = fft_problem(128, 8);
  for (Task& task : problem.tasks) task.work_flops *= 50.0;

  GeneticOptions unconstrained;
  unconstrained.weights.comm = 50.0;  // bias toward packing
  unconstrained.generations = 60;
  const GeneticResult loose = genetic_mapping(problem, unconstrained);
  const double loose_latency =
      list_schedule(problem, loose.best).latency;

  GeneticOptions constrained = unconstrained;
  constrained.latency_bound = loose_latency * 0.7;
  constrained.latency_penalty_weight = 1000.0;
  const GeneticResult tight = genetic_mapping(problem, constrained);
  const double tight_latency =
      list_schedule(problem, tight.best).latency;

  EXPECT_LE(tight_latency, loose_latency);
}

TEST(ApplyTest, AssignmentWritesBackAndValidates) {
  auto ws = apps::make_fft2d_workspace(64, 4);
  const MappingProblem problem = build_problem(*ws);
  const GeneticResult ga = genetic_mapping(problem);
  apply_assignment(*ws, problem, ga.best);
  EXPECT_NO_THROW(ws->validate_or_throw());

  // The mapping model now reflects the GA's choice, thread by thread.
  const model::MappingView view(ws->root(), ws->mapping());
  for (int t = 0; t < problem.task_count(); ++t) {
    const Task& task = problem.tasks[static_cast<std::size_t>(t)];
    const auto ranks = view.ranks_of(task.function);
    EXPECT_EQ(ranks[static_cast<std::size_t>(task.thread)],
              ga.best[static_cast<std::size_t>(t)]);
  }
}

}  // namespace
}  // namespace sage::atot
