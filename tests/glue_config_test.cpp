// Glue-configuration format tests: serialize/parse round trips, parser
// error reporting, and the validation rules the runtime relies on.
#include <gtest/gtest.h>

#include "runtime/glue_config.hpp"
#include "support/error.hpp"

namespace sage::runtime {
namespace {

GlueConfig sample_config() {
  GlueConfig config;
  config.application = "app";
  config.hardware = "hw";
  config.nodes = 2;
  config.iterations_default = 3;

  FunctionConfig src;
  src.id = 0;
  src.name = "src";
  src.kernel = "matrix_source";
  src.role = "source";
  src.threads = 2;
  src.thread_nodes = {0, 1};
  src.params["gain"] = 2.5;
  PortConfig out;
  out.name = "out";
  out.direction = model::PortDirection::kOut;
  out.striping = model::Striping::kStriped;
  out.stripe_dim = 0;
  out.elem_bytes = 8;
  out.dims = {8, 4};
  src.ports.push_back(out);
  config.functions.push_back(src);

  FunctionConfig sink;
  sink.id = 1;
  sink.name = "sink";
  sink.kernel = "matrix_sink";
  sink.role = "sink";
  sink.threads = 2;
  sink.thread_nodes = {0, 1};
  PortConfig in;
  in.name = "in";
  in.direction = model::PortDirection::kIn;
  in.striping = model::Striping::kReplicated;
  in.stripe_dim = 0;
  in.elem_bytes = 8;
  in.dims = {4, 8};
  sink.ports.push_back(in);
  config.functions.push_back(sink);

  BufferConfig buf;
  buf.id = 0;
  buf.src_function = 0;
  buf.src_port = "out";
  buf.dst_function = 1;
  buf.dst_port = "in";
  config.buffers.push_back(buf);

  config.schedule[0] = {0, 1};
  config.schedule[1] = {0, 1};
  return config;
}

TEST(GlueConfigTest, SampleValidates) {
  EXPECT_NO_THROW(sample_config().validate());
}

TEST(GlueConfigTest, SerializeParseRoundTrip) {
  const GlueConfig original = sample_config();
  const std::string text = serialize(original);
  const GlueConfig parsed = parse_glue_config(text);
  parsed.validate();

  EXPECT_EQ(parsed.application, "app");
  EXPECT_EQ(parsed.hardware, "hw");
  EXPECT_EQ(parsed.nodes, 2);
  EXPECT_EQ(parsed.iterations_default, 3);
  ASSERT_EQ(parsed.functions.size(), 2u);
  EXPECT_EQ(parsed.functions[0].kernel, "matrix_source");
  EXPECT_EQ(parsed.functions[0].thread_nodes, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(parsed.functions[0].params.at("gain"), 2.5);
  EXPECT_EQ(parsed.functions[1].ports[0].striping,
            model::Striping::kReplicated);
  EXPECT_EQ(parsed.functions[1].ports[0].dims, (std::vector<std::size_t>{4, 8}));
  ASSERT_EQ(parsed.buffers.size(), 1u);
  EXPECT_EQ(parsed.buffers[0].src_port, "out");
  EXPECT_EQ(parsed.schedule.at(1), (std::vector<int>{0, 1}));

  // Second round trip is byte-identical (canonical form).
  EXPECT_EQ(serialize(parsed), text);
}

TEST(GlueConfigTest, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# hello\n\nsage-glue 1\napplication a\nhardware h\nnodes 1\n"
      "iterations-default 1\n"
      "function 0 name=f kernel=k threads=1 role=compute\n"
      "thread 0 0 node=0\n"
      "schedule 0 0\n";
  const GlueConfig config = parse_glue_config(text);
  EXPECT_EQ(config.functions.size(), 1u);
  EXPECT_NO_THROW(config.validate());
}

TEST(GlueConfigTest, MissingHeaderRejected) {
  EXPECT_THROW(parse_glue_config("application a\n"), ConfigError);
}

TEST(GlueConfigTest, MalformedLinesReportLineNumbers) {
  const std::string text = "sage-glue 1\nnodes abc\n";
  try {
    parse_glue_config(text);
    FAIL();
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(GlueConfigTest, UnknownDirectiveRejected) {
  EXPECT_THROW(parse_glue_config("sage-glue 1\nwarp 9\n"), ConfigError);
}

TEST(GlueConfigTest, OutOfOrderIdsRejected) {
  const std::string text =
      "sage-glue 1\nfunction 1 name=f kernel=k threads=1 role=compute\n";
  EXPECT_THROW(parse_glue_config(text), ConfigError);
}

TEST(GlueConfigTest, ThreadBeforeFunctionRejected) {
  EXPECT_THROW(parse_glue_config("sage-glue 1\nthread 0 0 node=0\n"),
               ConfigError);
}

TEST(GlueConfigTest, MissingFieldRejected) {
  EXPECT_THROW(
      parse_glue_config("sage-glue 1\nfunction 0 name=f threads=1 role=c\n"),
      ConfigError);
}

// --- validation rules -----------------------------------------------------------

TEST(GlueValidationTest, ThreadCountLimits) {
  GlueConfig config = sample_config();
  config.functions[0].threads = kMaxFunctionThreads + 1;
  config.functions[0].thread_nodes.assign(kMaxFunctionThreads + 1, 0);
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(GlueValidationTest, BufferLimit) {
  GlueConfig config = sample_config();
  for (int i = 1; i <= kMaxLogicalBuffers; ++i) {
    BufferConfig buf = config.buffers[0];
    buf.id = i;
    config.buffers.push_back(buf);
  }
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(GlueValidationTest, ThreadNodeOutOfRange) {
  GlueConfig config = sample_config();
  config.functions[0].thread_nodes[1] = 7;
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(GlueValidationTest, BufferDirectionChecked) {
  GlueConfig config = sample_config();
  config.buffers[0].src_port = "out";
  config.buffers[0].src_function = 1;  // sink's port "in" is an in-port
  config.buffers[0].dst_function = 0;
  config.buffers[0].dst_port = "out";
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(GlueValidationTest, ElementSizeMismatch) {
  GlueConfig config = sample_config();
  config.functions[1].ports[0].elem_bytes = 4;
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(GlueValidationTest, DuplicateScheduleEntry) {
  GlueConfig config = sample_config();
  config.schedule[0] = {0, 0, 1};
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(GlueValidationTest, UnevenStripingRejected) {
  GlueConfig config = sample_config();
  config.functions[0].ports[0].dims = {7, 4};  // 7 rows over 2 threads
  config.functions[1].ports[0].dims = {7, 4};
  EXPECT_THROW(config.validate(), Error);
}

TEST(GlueValidationTest, AccessorsRangeChecked) {
  const GlueConfig config = sample_config();
  EXPECT_THROW(config.function(5), ConfigError);
  EXPECT_THROW(config.buffer(-1), ConfigError);
  EXPECT_THROW(config.functions[0].port("nope"), ConfigError);
  EXPECT_TRUE(config.functions[0].has_port("out"));
  EXPECT_FALSE(config.functions[0].has_port("in"));
}

}  // namespace
}  // namespace sage::runtime
