// Model repository persistence tests: round trips, literal forms,
// malformed-input reporting.
#include <gtest/gtest.h>

#include "apps/benchmarks.hpp"
#include "codegen/generator.hpp"
#include "model/app.hpp"
#include "model/serialize.hpp"
#include "support/error.hpp"

namespace sage::model {
namespace {

TEST(SerializeTest, SimpleRoundTrip) {
  ModelObject root("sage-model", "proj");
  root.set_property("note", "hello \"world\"\nline2");
  root.set_property("count", 42);
  root.set_property("ratio", 2.5);
  root.set_property("flag", true);
  root.set_property("off", false);
  root.set_property("nothing", PropertyValue());
  root.set_property("dims",
                    PropertyList{PropertyValue(8), PropertyValue("x"),
                                 PropertyValue(PropertyList{PropertyValue(1)})});
  ModelObject& child = root.add_child("block", "inner name");
  child.set_property("k", 1);

  const std::string text = save_model(root);
  const auto loaded = load_model(text);

  EXPECT_EQ(loaded->type(), "sage-model");
  EXPECT_EQ(loaded->name(), "proj");
  EXPECT_EQ(loaded->property("note").as_string(), "hello \"world\"\nline2");
  EXPECT_EQ(loaded->property("count").as_int(), 42);
  EXPECT_DOUBLE_EQ(loaded->property("ratio").as_double(), 2.5);
  EXPECT_TRUE(loaded->property("flag").as_bool());
  EXPECT_FALSE(loaded->property("off").as_bool());
  EXPECT_TRUE(loaded->property("nothing").is_nil());
  const PropertyList& dims = loaded->property("dims").as_list();
  ASSERT_EQ(dims.size(), 3u);
  EXPECT_EQ(dims[0].as_int(), 8);
  EXPECT_EQ(dims[1].as_string(), "x");
  EXPECT_EQ(dims[2].as_list()[0].as_int(), 1);
  ASSERT_NE(loaded->find_child("inner name"), nullptr);
  EXPECT_EQ(loaded->find_child("inner name")->property("k").as_int(), 1);

  // Dumps (structure + properties) must match exactly.
  EXPECT_EQ(loaded->dump(), root.dump());
}

TEST(SerializeTest, BenchmarkWorkspaceRoundTripsAndStillGenerates) {
  auto original = apps::make_fft2d_workspace(64, 4);
  const std::string text = save_workspace(*original);
  auto loaded = load_workspace(text);
  ASSERT_NE(loaded, nullptr);
  EXPECT_NO_THROW(loaded->validate_or_throw());
  EXPECT_EQ(loaded->root().dump(), original->root().dump());

  // The reloaded design drives the full generator to the same artifact.
  const auto a = codegen::generate_glue(*original);
  const auto b = codegen::generate_glue(*loaded);
  EXPECT_EQ(a.glue_config_text(), b.glue_config_text());
}

TEST(SerializeTest, SaveIsStable) {
  auto ws = apps::make_cornerturn_workspace(64, 2);
  const std::string once = save_workspace(*ws);
  const auto loaded = load_workspace(once);
  EXPECT_EQ(save_workspace(*loaded), once);
}

TEST(SerializeTest, DeepNesting) {
  ModelObject root("sage-model", "r");
  ModelObject* cursor = &root;
  for (int i = 0; i < 10; ++i) {
    cursor = &cursor->add_child("block", "level" + std::to_string(i));
  }
  cursor->set_property("leaf", true);
  const auto loaded = load_model(save_model(root));
  EXPECT_EQ(loaded->dump(), root.dump());
}

TEST(SerializeTest, MalformedInputsReportLines) {
  EXPECT_THROW(load_model(""), ModelError);
  EXPECT_THROW(load_model("garbage here\n"), ModelError);
  EXPECT_THROW(load_model("object block name-not-quoted\n"), ModelError);
  EXPECT_THROW(load_model("prop k 1\n"), ModelError);  // prop before object
  EXPECT_THROW(load_model("object a \"x\"\nobject b \"y\"\n"),
               ModelError);  // two roots
  EXPECT_THROW(load_model("object a \"x\"\n    object b \"y\"\n"),
               ModelError);  // skipped depth
  // Malformed literal.
  EXPECT_THROW(load_model("object a \"x\"\n  prop k (1 2\n"), ModelError);
  try {
    load_model("object a \"x\"\n  prop k (1 2\n");
    FAIL();
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(SerializeTest, WorkspaceRootTypeEnforced) {
  EXPECT_THROW(Workspace(load_model("object widget \"w\"\n")), ModelError);
}

}  // namespace
}  // namespace sage::model
