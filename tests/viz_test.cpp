// Visualizer tests: trace merging, per-function statistics, bottleneck
// and utilization analyses, latency/period extraction, violations, and
// the export formats.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "support/error.hpp"
#include "viz/analysis.hpp"
#include "viz/trace.hpp"

namespace sage::viz {
namespace {

Event fn_event(EventKind kind, int fn, int thread, int iter, double vt,
               const std::string& label) {
  Event e;
  e.kind = kind;
  e.function_id = fn;
  e.thread = thread;
  e.iteration = iter;
  e.start_vt = e.end_vt = vt;
  e.label = label;
  return e;
}

/// Two nodes, two iterations of [work(fn0), work(fn1)], fn1 slower.
Trace sample_trace() {
  EventBuffer node0(0), node1(1);
  for (int iter = 0; iter < 2; ++iter) {
    const double base = iter * 10.0;
    node0.record(fn_event(EventKind::kIterationStart, -1, 0, iter, base, ""));
    node0.record(fn_event(EventKind::kFunctionStart, 0, 0, iter, base, "a"));
    node0.record(fn_event(EventKind::kFunctionEnd, 0, 0, iter, base + 1, "a"));
    Event send = fn_event(EventKind::kSend, 0, 0, iter, base + 1, "a->b");
    send.bytes = 1024;
    node0.record(send);

    node1.record(fn_event(EventKind::kFunctionStart, 1, 0, iter, base + 2, "b"));
    node1.record(fn_event(EventKind::kFunctionEnd, 1, 0, iter, base + 5, "b"));
    node1.record(fn_event(EventKind::kIterationEnd, -1, 0, iter, base + 5, ""));
  }
  return Trace::merge({&node0, &node1});
}

TEST(TraceTest, MergeSortsByTime) {
  const Trace trace = sample_trace();
  ASSERT_FALSE(trace.empty());
  double last = -1.0;
  for (const Event& e : trace.events()) {
    EXPECT_GE(e.start_vt, last);
    last = e.start_vt;
  }
}

TEST(TraceTest, NodeTagAssigned) {
  EventBuffer buffer(3);
  buffer.record(fn_event(EventKind::kMarker, -1, 0, 0, 0.0, "m"));
  EXPECT_EQ(buffer.events()[0].node, 3);
}

TEST(TraceTest, EventsOfKindFilters) {
  const Trace trace = sample_trace();
  EXPECT_EQ(trace.events_of_kind(EventKind::kSend).size(), 2u);
  EXPECT_EQ(trace.events_of_kind(EventKind::kFunctionStart).size(), 4u);
}

TEST(AnalysisTest, FunctionStatsAggregate) {
  const auto stats = function_stats(sample_trace());
  ASSERT_EQ(stats.size(), 2u);
  const FunctionStats& a = stats[0];
  const FunctionStats& b = stats[1];
  EXPECT_EQ(a.name, "a");
  EXPECT_EQ(a.invocations, 2);
  EXPECT_NEAR(a.total_time, 2.0, 1e-12);
  EXPECT_NEAR(a.mean_time(), 1.0, 1e-12);
  EXPECT_NEAR(b.total_time, 6.0, 1e-12);
  EXPECT_NEAR(b.max_time, 3.0, 1e-12);
}

TEST(AnalysisTest, BottleneckIsLargestTotal) {
  const auto bn = bottleneck(sample_trace());
  ASSERT_TRUE(bn.has_value());
  EXPECT_EQ(bn->name, "b");
}

TEST(AnalysisTest, BottleneckEmptyWithoutFunctionEvents) {
  // Regression: an empty trace -- or one that carries only non-function
  // events (marker/fault-only traces) -- used to raise instead of
  // reporting "no bottleneck".
  EXPECT_EQ(bottleneck(Trace{}), std::nullopt);
  EventBuffer node0(0);
  node0.record(fn_event(EventKind::kMarker, -1, 0, 0, 1.0, "m"));
  node0.record(fn_event(EventKind::kFault, -1, 0, 0, 2.0, "stall"));
  EXPECT_EQ(bottleneck(Trace::merge({&node0})), std::nullopt);
}

TEST(AnalysisTest, UtilizationMergesOverlappingThreadIntervals) {
  // Regression: two threads of one node executing concurrently used to
  // have their busy intervals summed independently, reporting >100%
  // utilization. Busy time is the union of the intervals.
  EventBuffer node0(0);
  node0.record(fn_event(EventKind::kFunctionStart, 0, 0, 0, 0.0, "a"));
  node0.record(fn_event(EventKind::kFunctionEnd, 0, 0, 0, 10.0, "a"));
  node0.record(fn_event(EventKind::kFunctionStart, 0, 1, 0, 5.0, "a"));
  node0.record(fn_event(EventKind::kFunctionEnd, 0, 1, 0, 15.0, "a"));
  const auto util = node_utilization(Trace::merge({&node0}));
  ASSERT_EQ(util.size(), 1u);
  EXPECT_NEAR(util[0].span, 15.0, 1e-12);
  EXPECT_NEAR(util[0].busy, 15.0, 1e-12);  // union of [0,10] and [5,15]
  EXPECT_LE(util[0].utilization(), 1.0);
  EXPECT_NEAR(util[0].utilization(), 1.0, 1e-12);
}

TEST(AnalysisTest, UtilizationCountsDisjointIntervalsSeparately) {
  EventBuffer node0(0);
  node0.record(fn_event(EventKind::kFunctionStart, 0, 0, 0, 0.0, "a"));
  node0.record(fn_event(EventKind::kFunctionEnd, 0, 0, 0, 2.0, "a"));
  node0.record(fn_event(EventKind::kFunctionStart, 0, 1, 0, 6.0, "a"));
  node0.record(fn_event(EventKind::kFunctionEnd, 0, 1, 0, 10.0, "a"));
  const auto util = node_utilization(Trace::merge({&node0}));
  ASSERT_EQ(util.size(), 1u);
  EXPECT_NEAR(util[0].busy, 6.0, 1e-12);  // 2 + 4, gap not counted
}

TEST(AnalysisTest, DegenerateTracesDoNotThrow) {
  // Every analysis handles an empty trace gracefully.
  const Trace empty;
  EXPECT_TRUE(function_stats(empty).empty());
  EXPECT_EQ(bottleneck(empty), std::nullopt);
  EXPECT_TRUE(node_utilization(empty).empty());
  EXPECT_TRUE(iteration_latencies(empty).empty());
  EXPECT_TRUE(latency_violations(empty, 1.0).empty());
  EXPECT_EQ(mean_period(empty), 0.0);
  EXPECT_EQ(total_transfer_bytes(empty), 0u);
  EXPECT_TRUE(transfer_stats(empty).empty());
  EXPECT_FALSE(summary_report(empty).empty());

  // A start without a matching end (truncated trace) must not blow up.
  EventBuffer node0(0);
  node0.record(fn_event(EventKind::kFunctionStart, 0, 0, 0, 1.0, "a"));
  node0.record(fn_event(EventKind::kIterationStart, -1, 0, 0, 0.0, ""));
  const Trace truncated = Trace::merge({&node0});
  EXPECT_NO_THROW(function_stats(truncated));
  EXPECT_NO_THROW(node_utilization(truncated));
  // A start-only iteration reports zero latency, not garbage.
  const auto latencies = iteration_latencies(truncated);
  ASSERT_EQ(latencies.size(), 1u);
  EXPECT_EQ(latencies[0].latency(), 0.0);
  EXPECT_NO_THROW(summary_report(truncated));
}

TEST(AnalysisTest, UtilizationPerNode) {
  const auto util = node_utilization(sample_trace());
  ASSERT_EQ(util.size(), 2u);
  // Span is 0..15 across both nodes.
  EXPECT_NEAR(util[0].span, 15.0, 1e-12);
  EXPECT_NEAR(util[0].busy, 2.0, 1e-12);
  EXPECT_NEAR(util[1].busy, 6.0, 1e-12);
  EXPECT_NEAR(util[1].utilization(), 0.4, 1e-12);
}

TEST(AnalysisTest, IterationLatenciesAndPeriod) {
  const auto latencies = iteration_latencies(sample_trace());
  ASSERT_EQ(latencies.size(), 2u);
  EXPECT_NEAR(latencies[0].latency(), 5.0, 1e-12);
  EXPECT_NEAR(latencies[1].latency(), 5.0, 1e-12);
  EXPECT_NEAR(mean_period(sample_trace()), 10.0, 1e-12);
}

TEST(AnalysisTest, LatencyViolations) {
  EXPECT_EQ(latency_violations(sample_trace(), 6.0).size(), 0u);
  EXPECT_EQ(latency_violations(sample_trace(), 4.0).size(), 2u);
}

TEST(AnalysisTest, TransferBytes) {
  EXPECT_EQ(total_transfer_bytes(sample_trace()), 2048u);
}

TEST(AnalysisTest, TransferStatsGroupByBuffer) {
  EventBuffer node0(0);
  Event send = fn_event(EventKind::kSend, 0, 0, 0, 1.0, "a->b");
  send.end_vt = 1.5;
  send.bytes = 100;
  node0.record(send);
  Event send2 = send;
  send2.start_vt = 2.0;
  send2.end_vt = 2.25;
  send2.bytes = 300;
  node0.record(send2);
  Event copy = fn_event(EventKind::kBufferCopy, 0, 0, 0, 3.0, "b->c");
  copy.end_vt = 3.1;
  copy.bytes = 5000;
  node0.record(copy);

  const auto stats = transfer_stats(Trace::merge({&node0}));
  ASSERT_EQ(stats.size(), 2u);
  // Sorted by total bytes: b->c (5000) first.
  EXPECT_EQ(stats[0].label, "b->c");
  EXPECT_EQ(stats[0].local_copies, 1);
  EXPECT_EQ(stats[0].local_bytes, 5000u);
  EXPECT_EQ(stats[1].label, "a->b");
  EXPECT_EQ(stats[1].fabric_messages, 2);
  EXPECT_EQ(stats[1].fabric_bytes, 400u);
  EXPECT_NEAR(stats[1].total_time, 0.75, 1e-12);
}

TEST(ExportTest, CsvHasHeaderAndRows) {
  const std::string csv = sample_trace().to_csv();
  EXPECT_NE(csv.find("kind,node,function_id"), std::string::npos);
  EXPECT_NE(csv.find("function_start,0,0"), std::string::npos);
  // Header + 14 events.
  std::size_t lines = 0;
  for (char c : csv) lines += (c == '\n');
  EXPECT_EQ(lines, 15u);
}

TEST(ExportTest, CsvRoundTripsThroughFromCsv) {
  const Trace original = sample_trace();
  const Trace reloaded = Trace::from_csv(original.to_csv());
  ASSERT_EQ(reloaded.events().size(), original.events().size());
  for (std::size_t i = 0; i < original.events().size(); ++i) {
    const Event& a = original.events()[i];
    const Event& b = reloaded.events()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.node, b.node);
    EXPECT_EQ(a.function_id, b.function_id);
    EXPECT_EQ(a.iteration, b.iteration);
    EXPECT_DOUBLE_EQ(a.start_vt, b.start_vt);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.label, b.label);
  }
  // The analyses agree on the reloaded trace.
  EXPECT_EQ(bottleneck(reloaded)->name, bottleneck(original)->name);
  EXPECT_DOUBLE_EQ(mean_period(reloaded), mean_period(original));
}

/// Round-trips `original` through CSV and checks field-for-field
/// equality (bit-identical doubles included).
void expect_csv_round_trip(const Trace& original) {
  const Trace reloaded = Trace::from_csv(original.to_csv());
  ASSERT_EQ(reloaded.events().size(), original.events().size());
  for (std::size_t i = 0; i < original.events().size(); ++i) {
    const Event& a = original.events()[i];
    const Event& b = reloaded.events()[i];
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.node, b.node) << "event " << i;
    EXPECT_EQ(a.function_id, b.function_id) << "event " << i;
    EXPECT_EQ(a.thread, b.thread) << "event " << i;
    EXPECT_EQ(a.iteration, b.iteration) << "event " << i;
    EXPECT_EQ(a.start_vt, b.start_vt) << "event " << i;  // bit-exact
    EXPECT_EQ(a.end_vt, b.end_vt) << "event " << i;
    EXPECT_EQ(a.bytes, b.bytes) << "event " << i;
    EXPECT_EQ(a.label, b.label) << "event " << i;
  }
}

TEST(ExportTest, CsvRoundTripsAwkwardLabels) {
  // Regression: labels with embedded commas used to shift the column
  // split and get rejected (or silently truncated).
  EventBuffer node0(0);
  for (const std::string& label :
       {std::string("a,b->c,d"), std::string("fft.out->sink.in"),
        std::string("quoted \"label\""), std::string("tab\there"),
        std::string("newline\nhere"), std::string("back\\slash"),
        std::string("  padded  "), std::string("trailing,"),
        std::string(",leading"), std::string("")}) {
    node0.record(fn_event(EventKind::kSend, 0, 0, 0, 1.0, label));
  }
  expect_csv_round_trip(Trace::merge({&node0}));
}

TEST(ExportTest, CsvRoundTripsHugeByteCounts) {
  // Regression: bytes >= 2^63 used to go through a signed parse and come
  // back mangled.
  EventBuffer node0(0);
  for (const std::uint64_t bytes :
       {std::uint64_t{0}, std::uint64_t{1} << 62, std::uint64_t{1} << 63,
        (std::uint64_t{1} << 63) + 12345,
        std::numeric_limits<std::uint64_t>::max()}) {
    Event e = fn_event(EventKind::kSend, 0, 0, 0, 1.0, "big");
    e.bytes = bytes;
    node0.record(e);
  }
  expect_csv_round_trip(Trace::merge({&node0}));
}

TEST(ExportTest, CsvRoundTripsFullPrecisionTimes) {
  EventBuffer node0(0);
  Event e = fn_event(EventKind::kFunctionStart, 0, 0, 0, 0.0, "p");
  e.start_vt = 1.0 + std::numeric_limits<double>::epsilon();  // 17 digits
  e.end_vt = 1e6 + 1e-7;  // collapses at default 6-digit precision
  node0.record(e);
  expect_csv_round_trip(Trace::merge({&node0}));
}

TEST(ExportTest, FromCsvRejectsNegativeBytes) {
  EXPECT_THROW(Trace::from_csv("marker,0,-1,0,0,0,0,-1,x\n"), Error);
}

TEST(ExportTest, FromCsvRejectsGarbage) {
  EXPECT_THROW(Trace::from_csv("not,a,trace\n"), Error);
  EXPECT_THROW(Trace::from_csv("warp,0,0,0,0,0,0,0,x\n"), Error);
  EXPECT_TRUE(Trace::from_csv("").empty());
}

TEST(ExportTest, ChromeJsonWellFormedish) {
  const std::string json = sample_trace().to_chrome_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  // Balanced braces.
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
  }
  EXPECT_EQ(depth, 0);
}

TEST(ExportTest, ChromeJsonKeepsFullTimestampPrecision) {
  // Regression: the default 6-significant-digit stream precision
  // collapsed distinct timestamps once they passed ~1 virtual second
  // (1e6 microseconds).
  EventBuffer node0(0);
  // 2.0000001 s = 2000000.1 us: the .1 vanishes at 6 significant digits.
  Event a = fn_event(EventKind::kFunctionStart, 0, 0, 0, 2.0000001, "p");
  node0.record(a);
  const std::string json = Trace::merge({&node0}).to_chrome_json();
  // Full precision: the fractional microsecond survives (the exact
  // digits are the double's shortest round-trip form).
  EXPECT_NE(json.find("\"ts\":2000000.0999999999"), std::string::npos)
      << json;
}

TEST(ExportTest, AsciiTimelineShowsBusyCells) {
  const std::string timeline = ascii_timeline(sample_trace(), 30);
  EXPECT_NE(timeline.find("node 0"), std::string::npos);
  EXPECT_NE(timeline.find("node 1"), std::string::npos);
  EXPECT_NE(timeline.find('#'), std::string::npos);
  EXPECT_EQ(ascii_timeline(Trace{}), "(empty trace)\n");
}

TEST(ExportTest, SummaryReportMentionsEverything) {
  const std::string report = summary_report(sample_trace());
  EXPECT_NE(report.find("bottleneck: b"), std::string::npos);
  EXPECT_NE(report.find("utilization"), std::string::npos);
  EXPECT_NE(report.find("iterations: 2"), std::string::npos);
  EXPECT_NE(report.find("fabric bytes: 2.0 KiB"), std::string::npos);
}

}  // namespace
}  // namespace sage::viz
