#include <gtest/gtest.h>

#include <cstring>

#include "net/fabric.hpp"
#include "net/fabric_model.hpp"
#include "net/machine.hpp"
#include "support/error.hpp"

namespace sage::net {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string string_of(std::span<const std::byte> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

// --- fabric model -----------------------------------------------------------

TEST(FabricModelTest, BoardTopology) {
  FabricModel m = myrinet_fabric();
  ASSERT_EQ(m.nodes_per_board, 4);
  EXPECT_TRUE(m.same_board(0, 3));
  EXPECT_FALSE(m.same_board(3, 4));
  EXPECT_LT(m.latency_s(0, 1), m.latency_s(0, 4));
}

TEST(FabricModelTest, TransferCostScalesWithBytes) {
  FabricModel m = myrinet_fabric();
  const double small = m.transfer_seconds(0, 5, 1024);
  const double large = m.transfer_seconds(0, 5, 1024 * 1024);
  EXPECT_GT(large, small);
  // 160 MB/s: 1 MiB takes ~6.25 ms + latency.
  EXPECT_NEAR(large, 1024.0 * 1024 / (160.0 * 1024 * 1024) + 10e-6, 1e-6);
}

TEST(FabricModelTest, PresetsDiffer) {
  EXPECT_GT(raceway_fabric().intra_board_bandwidth_Bps,
            myrinet_fabric().intra_board_bandwidth_Bps);
  EXPECT_LT(ideal_fabric().transfer_seconds(0, 9, 1 << 20), 1e-9);
}

// --- fabric ------------------------------------------------------------------

TEST(FabricTest, DeliversPayloadByTag) {
  Fabric fabric(2, ideal_fabric());
  fabric.send(0, 1, 7, bytes_of("hello"), 0.0);
  fabric.send(0, 1, 8, bytes_of("world"), 0.0);
  // Receive out of order by tag.
  Message m8 = fabric.recv(1, 0, 8);
  Message m7 = fabric.recv(1, 0, 7);
  EXPECT_EQ(string_of(m8.payload), "world");
  EXPECT_EQ(string_of(m7.payload), "hello");
}

TEST(FabricTest, WildcardsMatchAnything) {
  Fabric fabric(3, ideal_fabric());
  fabric.send(2, 1, 5, bytes_of("x"), 0.0);
  Message m = fabric.recv(1, kAnySource, kAnyTag);
  EXPECT_EQ(m.src, 2);
  EXPECT_EQ(m.tag, 5);
}

TEST(FabricTest, FifoPerSourceAndTag) {
  Fabric fabric(2, ideal_fabric());
  fabric.send(0, 1, 3, bytes_of("first"), 0.0);
  fabric.send(0, 1, 3, bytes_of("second"), 0.0);
  EXPECT_EQ(string_of(fabric.recv(1, 0, 3).payload), "first");
  EXPECT_EQ(string_of(fabric.recv(1, 0, 3).payload), "second");
}

TEST(FabricTest, ArrivalTimeIncludesTransferCost) {
  FabricModel model = myrinet_fabric();
  Fabric fabric(8, model);
  const double sent_vt = 1.0;
  fabric.send(0, 5, 1, bytes_of(std::string(1024, 'a')), sent_vt);
  Message m = fabric.recv(5, 0, 1);
  const double expected = sent_vt + model.send_overhead_s +
                          model.transfer_seconds(0, 5, 1024) +
                          model.recv_overhead_s;
  EXPECT_NEAR(m.arrival_vt, expected, 1e-12);
}

TEST(FabricTest, VendorBulkReducesOverhead) {
  FabricModel model = myrinet_fabric();
  Fabric fabric(8, model);
  fabric.send(0, 5, 1, bytes_of("x"), 0.0, {.vendor_bulk = false});
  fabric.send(0, 5, 2, bytes_of("x"), 0.0, {.vendor_bulk = true});
  const double normal = fabric.recv(5, 0, 1).arrival_vt;
  const double bulk = fabric.recv(5, 0, 2).arrival_vt;
  EXPECT_LT(bulk, normal);
}

TEST(FabricTest, TryRecvDoesNotBlock) {
  Fabric fabric(2, ideal_fabric());
  EXPECT_FALSE(fabric.try_recv(0).has_value());
  fabric.send(1, 0, 1, bytes_of("y"), 0.0);
  auto m = fabric.try_recv(0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(string_of(m->payload), "y");
}

TEST(FabricTest, RecvTimesOutIntoCommError) {
  Fabric fabric(2, ideal_fabric());
  EXPECT_THROW(fabric.recv(0, kAnySource, kAnyTag, /*timeout_wall_s=*/0.05),
               CommError);
}

TEST(FabricTest, StatsAccumulate) {
  Fabric fabric(2, ideal_fabric());
  fabric.send(0, 1, 1, bytes_of("abcd"), 0.0);
  fabric.send(1, 0, 1, bytes_of("ef"), 0.0);
  EXPECT_EQ(fabric.total_messages(), 2u);
  EXPECT_EQ(fabric.total_bytes(), 6u);
  EXPECT_EQ(fabric.pending(1), 1u);
}

TEST(FabricTest, BadRanksRejected) {
  Fabric fabric(2, ideal_fabric());
  EXPECT_THROW(fabric.send(0, 5, 1, bytes_of("x"), 0.0), CommError);
  EXPECT_THROW(fabric.recv(-1), CommError);
}

// --- machine ------------------------------------------------------------------

TEST(MachineTest, RunsProgramOnEveryNode) {
  Machine machine(4, ideal_fabric());
  std::vector<int> visited(4, 0);
  machine.run([&](NodeContext& node) {
    visited[static_cast<std::size_t>(node.rank())] = 1;
    EXPECT_EQ(node.size(), 4);
  });
  for (int v : visited) EXPECT_EQ(v, 1);
}

TEST(MachineTest, NodeExceptionPropagates) {
  Machine machine(3, ideal_fabric());
  EXPECT_THROW(machine.run([&](NodeContext& node) {
                 if (node.rank() == 2) raise<CommError>("boom");
               }),
               CommError);
}

TEST(MachineTest, VirtualTimePropagatesThroughMessages) {
  // Rank 0 computes 10ms (modeled), sends to rank 1; rank 1's clock must
  // land at least at 10ms + transfer.
  Machine machine(2, myrinet_fabric());
  std::vector<double> finish(2, 0.0);
  machine.run([&](NodeContext& node) {
    if (node.rank() == 0) {
      node.clock().advance(0.010);
      std::byte token{};
      const auto after = node.fabric().send(
          0, 1, 1, std::span<const std::byte>(&token, 1), node.now());
      node.clock().join(after);
    } else {
      Message m = node.fabric().recv(1, 0, 1);
      node.clock().join(m.arrival_vt);
    }
    finish[static_cast<std::size_t>(node.rank())] = node.now();
  });
  EXPECT_GT(finish[1], 0.010);
  EXPECT_GT(machine.run([](NodeContext&) {}).makespan(), -1.0);  // no throw
}

TEST(MachineTest, MakespanIsMaxOfNodeTimes) {
  Machine machine(3, ideal_fabric());
  const MachineReport report = machine.run([](NodeContext& node) {
    node.clock().advance(0.001 * (node.rank() + 1));
  });
  EXPECT_NEAR(report.makespan(), 0.003, 1e-12);
}

TEST(MachineTest, HeterogeneousScales) {
  Machine machine(ideal_fabric(), {1.0, 4.0});
  EXPECT_EQ(machine.node_count(), 2);
  EXPECT_DOUBLE_EQ(machine.cpu_scale(0), 1.0);
  EXPECT_DOUBLE_EQ(machine.cpu_scale(1), 4.0);
  machine.run([&](NodeContext& node) {
    EXPECT_DOUBLE_EQ(node.cpu_scale(), node.rank() == 0 ? 1.0 : 4.0);
  });
}

TEST(FabricTest, ContentionSerializesSharedLinks) {
  FabricModel model = myrinet_fabric();
  model.model_contention = true;
  Fabric fabric(8, model);
  const std::size_t bytes = 1 << 20;
  const std::vector<std::byte> payload(bytes);

  // Two inter-board messages issued at vt=0 on the same board pair:
  // the second must queue behind the first.
  fabric.send(0, 4, 1, payload, 0.0);
  fabric.send(1, 5, 1, payload, 0.0);
  const double first = fabric.recv(4, 0, 1).arrival_vt;
  const double second = fabric.recv(5, 1, 1).arrival_vt;
  const double serialization = bytes / model.inter_board_bandwidth_Bps;
  EXPECT_GT(second, first + serialization * 0.9);

  // Intra-board traffic does not touch the link.
  fabric.send(0, 1, 2, payload, 0.0);
  fabric.send(2, 3, 2, payload, 0.0);
  const double intra_a = fabric.recv(1, 0, 2).arrival_vt;
  const double intra_b = fabric.recv(3, 2, 2).arrival_vt;
  EXPECT_NEAR(intra_a, intra_b, 1e-9);
}

TEST(FabricTest, ContentionOffKeepsTransfersIndependent) {
  Fabric fabric(8, myrinet_fabric());  // contention off by default
  const std::vector<std::byte> payload(1 << 20);
  fabric.send(0, 4, 1, payload, 0.0);
  fabric.send(1, 5, 1, payload, 0.0);
  const double first = fabric.recv(4, 0, 1).arrival_vt;
  const double second = fabric.recv(5, 1, 1).arrival_vt;
  EXPECT_NEAR(first, second, 1e-9);
}

TEST(MachineTest, RejectsBadConfig) {
  EXPECT_THROW(Machine(0, ideal_fabric()), CommError);
  EXPECT_THROW(Machine(2, ideal_fabric(), -1.0), CommError);
}

TEST(FabricTest, ResetDrainsMailboxesAndZeroesStats) {
  Fabric fabric(2, ideal_fabric());
  fabric.send(0, 1, 1, bytes_of("abcd"), 0.0);
  fabric.send(1, 0, 2, bytes_of("ef"), 0.0);
  ASSERT_EQ(fabric.pending(1), 1u);

  fabric.reset();
  EXPECT_EQ(fabric.pending(0), 0u);
  EXPECT_EQ(fabric.pending(1), 0u);
  EXPECT_EQ(fabric.total_messages(), 0u);
  EXPECT_EQ(fabric.total_bytes(), 0u);
  // The fabric stays usable after a reset.
  fabric.send(0, 1, 1, bytes_of("xy"), 0.0);
  EXPECT_EQ(fabric.recv(1, 0, 1).payload.size(), 2u);
  EXPECT_EQ(fabric.total_messages(), 1u);
}

TEST(FabricTest, ResetClearsLinkContentionHistory) {
  FabricModel model = myrinet_fabric();
  model.model_contention = true;
  Fabric fabric(8, model);
  const std::vector<std::byte> payload(1 << 20);

  fabric.send(0, 4, 1, payload, 0.0);
  const double first = fabric.recv(4, 0, 1).arrival_vt;
  fabric.reset();
  // Without the reset this message would queue behind the first one's
  // link reservation; after it, arrival matches a fresh fabric.
  fabric.send(0, 4, 1, payload, 0.0);
  EXPECT_NEAR(fabric.recv(4, 0, 1).arrival_vt, first, 1e-9);
}

TEST(MachineTest, ParkedWorkersServeRepeatedRuns) {
  Machine machine(3, ideal_fabric());
  EXPECT_FALSE(machine.started());
  machine.start();
  EXPECT_TRUE(machine.started());
  machine.start();  // idempotent

  std::vector<int> runs_by_rank(3, 0);
  for (int run = 0; run < 5; ++run) {
    machine.run([&](NodeContext& node) {
      ++runs_by_rank[static_cast<std::size_t>(node.rank())];
      // Each run gets a fresh clock.
      EXPECT_DOUBLE_EQ(node.now(), 0.0);
      node.clock().advance(0.001);
    });
  }
  EXPECT_EQ(machine.runs_completed(), 5u);
  for (int count : runs_by_rank) EXPECT_EQ(count, 5);
}

TEST(MachineTest, RecoversAfterNodeException) {
  Machine machine(2, ideal_fabric());
  EXPECT_THROW(machine.run([&](NodeContext& node) {
                 if (node.rank() == 1) raise<CommError>("boom");
               }),
               CommError);
  // The parked pool survives a failed run and serves the next one.
  const MachineReport report = machine.run(
      [](NodeContext& node) { node.clock().advance(0.002); });
  EXPECT_NEAR(report.makespan(), 0.002, 1e-12);
}

}  // namespace
}  // namespace sage::net
