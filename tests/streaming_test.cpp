// Streaming-executor tests: Session::submit/poll/wait/drain, the
// pipelined epoch machinery behind them, and the contracts the redesign
// pins down:
//   * overlapped submissions produce *bit-identical* sink checksums to
//     the same data sets run back to back (warm and fresh), for
//     explicit depths and for the compiler's per-channel ring bounds;
//   * credit flow control bounds the producers (and the pipeline still
//     completes when every channel is squeezed to depth 1);
//   * an active fault plan composes with overlap -- frames, ARQ, and
//     stalls keep the clean checksums under depth-3 streaming;
//   * recover() quiesces mid-stream and later submissions run degraded;
//   * on a pipelined stage chain the steady-state period drops below
//     the single-data-set latency (period != latency, paper Table 1).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "apps/benchmarks.hpp"
#include "core/project.hpp"
#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"
#include "net/fault.hpp"
#include "runtime/session.hpp"
#include "support/error.hpp"
#include "viz/exporters.hpp"

namespace sage::runtime {
namespace {

std::unique_ptr<model::Workspace> make_workspace(const std::string& app) {
  if (app == "fft2d") return apps::make_fft2d_workspace(64, 2);
  return apps::make_cornerturn_workspace(64, 2);
}

/// The paper's period-vs-latency shape: a 4-stage chain with stage i
/// mapped to node i, so consecutive data sets overlap across stages.
std::unique_ptr<model::Workspace> make_pipelined_chain(std::size_t n = 64) {
  constexpr int kStages = 4;
  auto ws = std::make_unique<model::Workspace>("chain");
  model::ModelObject& root = ws->root();
  model::add_cspi_platform(root, kStages);
  model::ModelObject& app = model::add_application(root, "stage_chain");
  const std::vector<std::size_t> dims{n, n};

  model::ModelObject& src = model::add_function(app, "src", "matrix_source", 1);
  src.set_property("role", "source");
  model::add_port(src, "out", model::PortDirection::kOut,
                  model::Striping::kStriped, "cfloat", dims, 0);
  std::string prev = "src";
  for (int s = 0; s < kStages - 2; ++s) {
    const std::string name = "fft_stage" + std::to_string(s);
    model::ModelObject& fn =
        model::add_function(app, name, "isspl.fft_rows", 1);
    model::add_port(fn, "in", model::PortDirection::kIn,
                    model::Striping::kStriped, "cfloat", dims, 0);
    model::add_port(fn, "out", model::PortDirection::kOut,
                    model::Striping::kStriped, "cfloat", dims, 0);
    model::connect(app, prev + ".out", name + ".in");
    prev = name;
  }
  model::ModelObject& sink = model::add_function(app, "sink", "matrix_sink", 1);
  sink.set_property("role", "sink");
  model::add_port(sink, "in", model::PortDirection::kIn,
                  model::Striping::kStriped, "cfloat", dims, 0);
  model::connect(app, prev + ".out", "sink.in");

  model::ModelObject& mapping = model::add_mapping(root, "mapping", "cspi");
  const std::vector<std::string> fns = {"src", "fft_stage0", "fft_stage1",
                                        "sink"};
  for (int i = 0; i < kStages; ++i) {
    model::assign_ranks(root, mapping, fns[static_cast<std::size_t>(i)], {i});
  }
  ws->validate_or_throw();
  return ws;
}

std::shared_ptr<const net::FaultPlan> chaos_plan(std::uint64_t seed) {
  auto plan = std::make_shared<net::FaultPlan>();
  plan->seed = seed;
  net::LinkFaultRule drop;
  drop.kind = net::FaultKind::kDrop;
  drop.probability = 0.05;
  plan->link_rules.push_back(drop);
  net::LinkFaultRule corrupt;
  corrupt.kind = net::FaultKind::kCorrupt;
  corrupt.probability = 0.05;
  corrupt.corrupt_bytes = 4;
  plan->link_rules.push_back(corrupt);
  net::StallRule stall;
  stall.node = 1;
  stall.iteration = 0;
  stall.stall_vt = 1e-3;
  plan->stall_rules.push_back(stall);
  return plan;
}

// --- overlapped vs sequential bit-identity ---------------------------------

struct StreamCase {
  std::string app;
  int depth = 0;  // 0 = the compiler's per-channel ring bounds
};

std::string stream_case_name(
    const ::testing::TestParamInfo<StreamCase>& info) {
  return info.param.app +
         (info.param.depth == 0 ? std::string("_ring")
                                : "_depth" + std::to_string(info.param.depth));
}

class StreamingDeterminismTest : public ::testing::TestWithParam<StreamCase> {
};

TEST_P(StreamingDeterminismTest, OverlappedMatchesSequentialBitExactly) {
  const StreamCase& param = GetParam();
  constexpr int kSets = 4;
  ExecuteOptions options;
  options.iterations = 2;
  options.collect_trace = false;

  // Sequential reference: back-to-back synchronous runs.
  core::Project seq_project(make_workspace(param.app));
  auto seq = seq_project.open_session(options);
  std::vector<RunStats> sequential;
  for (int i = 0; i < kSets; ++i) sequential.push_back(seq->run());

  // Fresh-session stream: k overlapped submissions on one epoch.
  core::Project stream_project(make_workspace(param.app));
  auto session = stream_project.open_session(options);
  RunOverrides request;
  if (param.depth > 0) request.buffer_depth = param.depth;
  std::vector<Ticket> tickets;
  for (int i = 0; i < kSets; ++i) tickets.push_back(session->submit(request));
  EXPECT_EQ(session->in_flight(), kSets);
  std::vector<RunStats> fresh;
  for (const Ticket t : tickets) fresh.push_back(session->wait(t));
  EXPECT_EQ(session->in_flight(), 0);

  // Warm stream: a second epoch on the same session.
  tickets.clear();
  for (int i = 0; i < kSets; ++i) tickets.push_back(session->submit(request));
  const std::vector<RunStats> warm = session->drain();
  ASSERT_EQ(warm.size(), static_cast<std::size_t>(kSets));

  for (int i = 0; i < kSets; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    // The tentpole contract: overlap may reshape traffic and virtual
    // times, but the sink checksums are bit-identical to the
    // sequential schedule -- for the fresh epoch and the warm one.
    EXPECT_EQ(fresh[idx].results, sequential[idx].results);
    EXPECT_EQ(warm[idx].results, sequential[idx].results);
    EXPECT_EQ(fresh[idx].iterations, sequential[idx].iterations);
    EXPECT_GT(fresh[idx].makespan, 0.0);
  }
  // Tickets collect in submission order and say which run they answer.
  for (int i = 1; i < kSets; ++i) {
    EXPECT_GT(warm[static_cast<std::size_t>(i)].ticket,
              warm[static_cast<std::size_t>(i - 1)].ticket);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DepthsByApp, StreamingDeterminismTest,
    ::testing::Values(StreamCase{"fft2d", 0}, StreamCase{"fft2d", 1},
                      StreamCase{"fft2d", 2}, StreamCase{"fft2d", 3},
                      StreamCase{"cornerturn", 0},
                      StreamCase{"cornerturn", 2}),
    stream_case_name);

// --- ticket API semantics --------------------------------------------------

TEST(StreamingTest, TicketLifecycleAndErrors) {
  core::Project project(make_workspace("cornerturn"));
  ExecuteOptions options;
  options.iterations = 1;
  options.collect_trace = false;
  auto session = project.open_session(options);

  EXPECT_THROW(session->poll(Ticket{9999}), RuntimeError);
  EXPECT_THROW(session->wait(Ticket{9999}), RuntimeError);
  EXPECT_EQ(session->in_flight(), 0);
  EXPECT_TRUE(session->drain().empty());

  const Ticket ticket = session->submit();
  EXPECT_EQ(session->in_flight(), 1);
  const RunStats stats = session->wait(ticket);
  EXPECT_EQ(stats.ticket, ticket.id);
  EXPECT_EQ(stats.iterations, 1);
  // A ticket redeems exactly once.
  EXPECT_THROW(session->wait(ticket), RuntimeError);
  EXPECT_THROW(session->poll(ticket), RuntimeError);

  // poll() flips to true without collecting.
  const Ticket second = session->submit();
  while (!session->poll(second)) {
  }
  EXPECT_EQ(session->in_flight(), 1);
  EXPECT_EQ(session->wait(second).ticket, second.id);

  // A synchronous run() between streams quiesces and stays correct.
  const RunStats sync = session->run();
  EXPECT_EQ(sync.stream_period, 0.0);  // sync runs open a private epoch
  EXPECT_EQ(session->runs_completed(), 3);
}

TEST(StreamingTest, TicketsSurviveEpochBoundaries) {
  // Uncollected tickets stay redeemable after their epoch closes --
  // here forced shut by a depth change and by a synchronous run().
  core::Project project(make_workspace("fft2d"));
  ExecuteOptions options;
  options.iterations = 1;
  options.collect_trace = false;
  auto session = project.open_session(options);

  const Ticket a = session->submit();
  RunOverrides deeper;
  deeper.buffer_depth = 2;
  const Ticket b = session->submit(deeper);  // incompatible: new epoch
  const RunStats sync = session->run();      // quiesces again

  const RunStats stats_a = session->wait(a);
  const RunStats stats_b = session->wait(b);
  EXPECT_EQ(stats_a.results, stats_b.results);
  EXPECT_EQ(stats_a.results, sync.results);
}

// --- credit flow control ---------------------------------------------------

TEST(StreamingTest, CreditExhaustionStillDrainsAtDepthOne) {
  // Depth 1 exhausts every channel's credits immediately: each producer
  // must block until its consumer drains the single slot. The stream
  // must still complete (no deadlock), bit-identical to depth 3.
  core::Project squeezed_project(make_pipelined_chain());
  ExecuteOptions options;
  options.iterations = 2;
  options.collect_trace = false;
  auto squeezed = squeezed_project.open_session(options);
  RunOverrides one;
  one.buffer_depth = 1;
  std::vector<Ticket> tickets;
  for (int i = 0; i < 4; ++i) tickets.push_back(squeezed->submit(one));
  const std::vector<RunStats> tight = squeezed->drain();

  core::Project roomy_project(make_pipelined_chain());
  auto roomy = roomy_project.open_session(options);
  RunOverrides three;
  three.buffer_depth = 3;
  for (int i = 0; i < 4; ++i) roomy->submit(three);
  const std::vector<RunStats> loose = roomy->drain();

  ASSERT_EQ(tight.size(), loose.size());
  for (std::size_t i = 0; i < tight.size(); ++i) {
    EXPECT_EQ(tight[i].results, loose[i].results);
  }
  // Credits are real traffic: the bounded stream carries flow-control
  // messages a synchronous unbounded run does not.
  core::Project sync_project(make_pipelined_chain());
  const RunStats unbounded = sync_project.execute(options);
  EXPECT_GT(tight.back().fabric_messages,
            4 * unbounded.fabric_messages - 1);
}

TEST(StreamingTest, PipelinedSteadyStatePeriodBeatsLatency) {
  // Paper Table 1: period != latency once stages pipeline. Stream
  // enough data sets for a steady state and compare the achieved
  // period (virtual time between consecutive completions) against the
  // single-data-set latency. Both are virtual times, so the ratio is
  // deterministic; the 0.6x bound is the PR's acceptance criterion at
  // depth >= 2 (the default submit resolves to the compiled ring
  // bounds, all >= 2), and bench/pipeline_period measures ~0.15x.
  core::Project project(make_pipelined_chain(128));
  ExecuteOptions options;
  options.iterations = 1;
  options.collect_trace = false;
  auto session = project.open_session(options);

  const RunStats single = session->run();
  const double latency = single.mean_latency();
  ASSERT_GT(latency, 0.0);

  constexpr int kSets = 8;
  std::vector<Ticket> tickets;
  for (int i = 0; i < kSets; ++i) tickets.push_back(session->submit());
  const std::vector<RunStats> stream = session->drain();
  ASSERT_EQ(stream.size(), static_cast<std::size_t>(kSets));

  EXPECT_EQ(stream.front().stream_period, 0.0);  // primed the pipeline
  double period_sum = 0.0;
  int period_count = 0;
  for (std::size_t i = kSets / 2; i < stream.size(); ++i) {
    EXPECT_GT(stream[i].stream_period, 0.0);
    period_sum += stream[i].stream_period;
    ++period_count;
  }
  const double period = period_sum / period_count;
  EXPECT_LT(period, 0.6 * latency);

  // Per-stage occupancy surfaces in the stats and in the metrics.
  const RunStats& last = stream.back();
  ASSERT_EQ(last.occupancy.size(), 4u);
  for (const auto& [fn, ratio] : last.occupancy) {
    EXPECT_GE(ratio, 0.0) << fn;
    EXPECT_LE(ratio, 1.0) << fn;
  }
  const viz::MetricValue* occupancy = last.metrics.find(
      viz::families::kStageOccupancy, {{"function", "fft_stage0"}});
  ASSERT_NE(occupancy, nullptr);
  EXPECT_DOUBLE_EQ(occupancy->value, last.occupancy.at("fft_stage0"));
  const viz::MetricValue* period_metric =
      last.metrics.find(viz::families::kStreamPeriod);
  ASSERT_NE(period_metric, nullptr);
  EXPECT_DOUBLE_EQ(period_metric->value, last.stream_period);

  // And the human report grows its streaming section.
  const std::string report = viz::report(last.trace, last.metrics);
  EXPECT_NE(report.find("streaming: achieved period"), std::string::npos);
  EXPECT_NE(report.find("period set by"), std::string::npos);
}

// --- faults and recovery under overlap -------------------------------------

TEST(StreamingTest, FaultChaosUnderDepthThreeKeepsCleanChecksums) {
  ExecuteOptions options;
  options.iterations = 2;
  options.collect_trace = false;

  core::Project clean_project(make_workspace("cornerturn"));
  auto clean_session = clean_project.open_session(options);
  const RunStats baseline = clean_session->run();

  ExecuteOptions chaotic = options;
  chaotic.fault_plan = chaos_plan(0xC0FFEE);
  chaotic.buffer_depth = 3;
  core::Project chaos_project(make_workspace("cornerturn"));
  auto session = chaos_project.open_session(chaotic);
  constexpr int kSets = 4;
  for (int i = 0; i < kSets; ++i) session->submit();
  const std::vector<RunStats> stream = session->drain();
  ASSERT_EQ(stream.size(), static_cast<std::size_t>(kSets));

  std::uint64_t injected = 0;
  for (const RunStats& stats : stream) {
    // ARQ under overlap: every data frame eventually landed clean, so
    // each overlapped data set still answers the fault-free checksums.
    EXPECT_EQ(stats.results, baseline.results);
    EXPECT_EQ(stats.faults.stalls, 1u);  // node 1, iteration 0, per set
  }
  // Injected-fault counters are epoch-cumulative at collection; the
  // last ticket sees the whole epoch's chaos, and there was some.
  injected = stream.back().faults.injected_drops +
             stream.back().faults.injected_corruptions;
  EXPECT_GT(injected, 0u);
}

TEST(StreamingTest, RecoverQuiescesMidStream) {
  ExecuteOptions options;
  options.iterations = 2;
  options.collect_trace = false;
  core::Project project(make_pipelined_chain());
  auto session = project.open_session(options);

  std::vector<Ticket> before;
  for (int i = 0; i < 3; ++i) before.push_back(session->submit());
  // recover() lands every in-flight ticket, then remaps; the earlier
  // tickets stay redeemable and answer full-strength results.
  const RecoveryReport report = session->recover({3});
  EXPECT_EQ(report.dead_nodes, std::vector<int>{3});
  EXPECT_GT(report.moved_threads, 0);

  std::vector<RunStats> healthy;
  for (const Ticket t : before) healthy.push_back(session->wait(t));
  for (const RunStats& stats : healthy) {
    EXPECT_EQ(stats.faults.degraded_nodes, 1);  // collected post-remap
    EXPECT_EQ(stats.results, healthy.front().results);
  }

  // Streaming resumes on the remapped program.
  for (int i = 0; i < 3; ++i) session->submit();
  const std::vector<RunStats> degraded = session->drain();
  ASSERT_EQ(degraded.size(), 3u);
  const RunStats reference = session->run();
  for (const RunStats& stats : degraded) {
    EXPECT_EQ(stats.results, reference.results);
    EXPECT_EQ(stats.faults.degraded_nodes, 1);
  }
  EXPECT_EQ(degraded.front().results, healthy.front().results);
}

// --- deterministic soak: seeded op interleavings ----------------------------

/// Property soak for the ticket API: a seeded stream of
/// submit/poll/wait/drain/recover operations interleaved across two
/// sessions sharing one CompiledProgram. Invariants checked throughout:
///   * no ticket is lost -- every submission is redeemed exactly once
///     by the end;
///   * no ticket double-redeems -- a collected id throws on re-wait and
///     re-poll;
///   * no reordering within a stream -- collection in submission order
///     answers strictly increasing ticket ids, and drain() preserves
///     submission order;
///   * every collected result stays bit-identical to the solo
///     reference, before and after a mid-soak recover().
class StreamingSoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingSoakTest, SeededInterleavingsPreserveTicketContracts) {
  ExecuteOptions options;
  options.iterations = 1;
  options.collect_trace = false;
  core::Project project(make_pipelined_chain());
  const std::shared_ptr<const CompiledProgram> program =
      project.compile_program(options);

  // Two executors, one immutable program.
  std::array<std::unique_ptr<Session>, 2> sessions = {
      project.open_session(options), project.open_session(options)};
  ASSERT_EQ(sessions[0]->program_ptr().get(), sessions[1]->program_ptr().get());
  ASSERT_EQ(sessions[0]->program_ptr().get(), program.get());

  // Results are mapping-independent checksums, so one solo reference
  // covers full-strength and post-recover collections alike.
  const auto reference = sessions[0]->run().results;

  struct PerSession {
    std::deque<Ticket> outstanding;  // submission order
    std::uint64_t collected = 0;
    std::uint64_t submitted = 0;
    std::uint64_t last_collected_id = 0;
    bool recovered = false;
  };
  std::array<PerSession, 2> state;

  std::mt19937 gen(static_cast<std::uint32_t>(GetParam()));
  auto collect_one = [&](int s, const RunStats& stats, std::uint64_t want_id) {
    // In-stream order: collecting in submission order must answer
    // strictly increasing ids, specifically the oldest outstanding.
    EXPECT_EQ(stats.ticket, want_id);
    EXPECT_GT(stats.ticket, state[static_cast<std::size_t>(s)]
                                .last_collected_id);
    state[static_cast<std::size_t>(s)].last_collected_id = stats.ticket;
    EXPECT_EQ(stats.results, reference);
    ++state[static_cast<std::size_t>(s)].collected;
  };

  constexpr int kOps = 80;
  for (int op = 0; op < kOps; ++op) {
    const int s = static_cast<int>(gen() % 2);
    PerSession& mine = state[static_cast<std::size_t>(s)];
    Session& session = *sessions[static_cast<std::size_t>(s)];
    const std::uint32_t dice = gen() % 100;
    if (op == kOps / 2 && !mine.recovered) {
      // Mid-soak recovery with work in flight: earlier tickets stay
      // redeemable, later submissions run degraded, same checksums.
      const RecoveryReport report = session.recover({3});
      EXPECT_EQ(report.dead_nodes, std::vector<int>{3});
      mine.recovered = true;
      // The recovered session forked a private recompile; its twin
      // still runs the shared program.
      EXPECT_NE(session.program_ptr().get(),
                sessions[static_cast<std::size_t>(1 - s)]->program_ptr().get());
    } else if (dice < 45 || mine.outstanding.empty()) {
      RunOverrides request;
      if (gen() % 4 == 0) request.buffer_depth = 2;  // epoch boundary
      mine.outstanding.push_back(session.submit(request));
      ++mine.submitted;
    } else if (dice < 65) {
      // poll never collects: in_flight is unchanged whatever it says.
      const int before = session.in_flight();
      session.poll(mine.outstanding.front());
      EXPECT_EQ(session.in_flight(), before);
    } else if (dice < 85) {
      const Ticket oldest = mine.outstanding.front();
      mine.outstanding.pop_front();
      collect_one(s, session.wait(oldest), oldest.id);
      // Exactly-once: the collected id is dead for wait and poll.
      EXPECT_THROW(session.wait(oldest), RuntimeError);
      EXPECT_THROW(session.poll(oldest), RuntimeError);
    } else {
      const std::vector<RunStats> all = session.drain();
      ASSERT_EQ(all.size(), mine.outstanding.size());
      for (const RunStats& stats : all) {
        const Ticket oldest = mine.outstanding.front();
        mine.outstanding.pop_front();
        collect_one(s, stats, oldest.id);
      }
      EXPECT_EQ(session.in_flight(), 0);
    }
  }

  // Final drain: nothing lost, everything redeemed exactly once.
  for (int s = 0; s < 2; ++s) {
    PerSession& mine = state[static_cast<std::size_t>(s)];
    Session& session = *sessions[static_cast<std::size_t>(s)];
    const std::vector<RunStats> rest = session.drain();
    ASSERT_EQ(rest.size(), mine.outstanding.size());
    for (const RunStats& stats : rest) {
      const Ticket oldest = mine.outstanding.front();
      mine.outstanding.pop_front();
      collect_one(s, stats, oldest.id);
    }
    EXPECT_TRUE(mine.outstanding.empty());
    EXPECT_EQ(session.in_flight(), 0);
    EXPECT_EQ(mine.collected, mine.submitted);
    EXPECT_GT(mine.submitted, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingSoakTest,
                         ::testing::Values(0xDEADBEEFull, 0x5EEDull,
                                           0xA5A5A5A5ull));

}  // namespace
}  // namespace sage::runtime
