// serve::Server tests: the multi-tenant session service and its
// deterministic load harness. The contracts pinned here:
//   * results served by a fleet are *bit-identical* to solo
//     Session::run -- fresh fleets and warm ones, under K caller
//     threads x M programs;
//   * admission-control rejects surface as typed verdicts on the
//     ticket, never as blocked callers or exceptions from submit();
//   * per-tenant quota accounting is exact under contention: K
//     concurrent same-arrival submissions admit exactly quota-many
//     regardless of thread interleaving;
//   * with a pinned calibration, two servers driven by one seeded
//     arrival schedule agree bit-for-bit on every verdict and latency
//     (the replay property the load bench rides);
//   * the serve metric families land in MetricsRegistry snapshots and
//     viz::report.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/benchmarks.hpp"
#include "core/project.hpp"
#include "runtime/session.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "support/error.hpp"
#include "viz/exporters.hpp"

namespace sage::serve {
namespace {

std::unique_ptr<model::Workspace> make_workspace(const std::string& app) {
  if (app == "fft2d") return apps::make_fft2d_workspace(64, 2);
  return apps::make_cornerturn_workspace(64, 2);
}

runtime::ExecuteOptions quiet_options() {
  runtime::ExecuteOptions options;
  options.iterations = 1;
  options.collect_trace = false;
  return options;
}

/// A project plus the solo-session reference results every serve test
/// compares against.
struct AppFixture {
  explicit AppFixture(const std::string& app)
      : project(make_workspace(app)) {
    options = project.resolved_options(quiet_options());
    program = project.compile_program(options);
    auto solo = project.open_session(options);
    reference = solo->run().results;
  }

  core::Project project;
  runtime::ExecuteOptions options;
  std::shared_ptr<const runtime::CompiledProgram> program;
  std::map<std::string, std::vector<double>> reference;
};

// --- solo equivalence ------------------------------------------------------

TEST(ServeTest, ServedResultsMatchSoloRunBitExactly) {
  AppFixture app("fft2d");
  ServerOptions options;
  options.execute = app.options;
  Server server(options);
  const std::uint64_t key =
      server.add_program("fft2d", app.program, app.project.registry());
  EXPECT_EQ(key, app.program->fingerprint);

  // Fresh fleet, then warm (second request reuses the calibrated
  // session): both serve the solo checksums bit-identically.
  const Response fresh = server.run(key);
  const Response warm = server.run(key);
  EXPECT_TRUE(fresh.ok()) << fresh.error;
  EXPECT_TRUE(warm.ok()) << warm.error;
  EXPECT_EQ(fresh.stats.results, app.reference);
  EXPECT_EQ(warm.stats.results, app.reference);
  EXPECT_EQ(fresh.tenant, "default");

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.shed_total(), 0u);

  // Re-registering the same fingerprint is idempotent.
  EXPECT_EQ(server.add_program("fft2d-again", app.program,
                               app.project.registry()),
            key);
  EXPECT_EQ(server.programs().size(), 1u);
}

TEST(ServeTest, CalibrationExposesTheVirtualTimeModel) {
  AppFixture app("fft2d");
  ServerOptions options;
  options.execute = app.options;
  Server server(options);
  const std::uint64_t key =
      server.add_program("fft2d", app.program, app.project.registry());

  const ProgramInfo info = server.program_info(key);
  EXPECT_EQ(info.key, key);
  EXPECT_EQ(info.name, "fft2d");
  EXPECT_GT(info.solo_latency_vt, 0.0);
  EXPECT_GT(info.stream_period_vt, 0.0);
  // Streaming never models slower than solo; saturation follows.
  EXPECT_LE(info.stream_period_vt, info.solo_latency_vt);
  EXPECT_GT(info.saturation_rate(), 0.0);
  EXPECT_THROW(server.program_info(key + 1), RuntimeError);
}

// --- concurrency matrix: K caller threads x M programs ---------------------

TEST(ServeTest, ConcurrencyMatrixServesEveryTenantBitExactly) {
  AppFixture fft("fft2d");
  AppFixture corner("cornerturn");
  ServerOptions options;
  options.execute = fft.options;  // same 4-node platform for both apps
  options.workers = 3;
  options.max_sessions_per_program = 2;
  options.max_queue_depth = 256;
  Server server(options);
  const std::uint64_t fft_key =
      server.add_program("fft2d", fft.program, fft.project.registry());
  const std::uint64_t corner_key = server.add_program(
      "cornerturn", corner.program, corner.project.registry());
  ASSERT_NE(fft_key, corner_key);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 4;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  callers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    callers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const bool use_fft = (t + i) % 2 == 0;
        RunRequest request;
        request.tenant = "tenant-" + std::to_string(t);
        const Response response =
            server.run(use_fft ? fft_key : corner_key, request);
        if (!response.ok()) failures.fetch_add(1);
        const auto& want = use_fft ? fft.reference : corner.reference;
        if (response.stats.results != want) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& caller : callers) caller.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.admitted, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.completed, stats.admitted);
  EXPECT_EQ(stats.shed_total(), 0u);
  EXPECT_EQ(stats.tenants.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tenant, per_tenant] : stats.tenants) {
    EXPECT_EQ(per_tenant.admitted, static_cast<std::uint64_t>(kPerThread))
        << tenant;
    EXPECT_EQ(per_tenant.completed, per_tenant.admitted) << tenant;
    EXPECT_EQ(per_tenant.errors, 0u) << tenant;
  }
  EXPECT_EQ(server.in_flight(), 0);
}

// --- admission control: typed sheds, never blocked callers -----------------

TEST(ServeTest, BoundedQueueShedsWithTypedVerdicts) {
  AppFixture app("cornerturn");
  ServerOptions options;
  options.execute = app.options;
  options.max_sessions_per_program = 1;
  options.max_queue_depth = 0;  // nothing may wait: admit-or-shed
  Server server(options);
  const std::uint64_t key =
      server.add_program("cornerturn", app.program, app.project.registry());

  // One burst instant: the first request starts immediately on the one
  // session; every other would have to wait and is shed, typed.
  RunRequest burst;
  burst.arrival_vt = 0.0;
  const ServeTicket first = server.submit(key, burst);
  EXPECT_TRUE(first.admitted());
  for (int i = 0; i < 4; ++i) {
    const ServeTicket shed = server.submit(key, burst);
    EXPECT_FALSE(shed.admitted());
    EXPECT_EQ(shed.admission, Admission::kQueueFull);
    EXPECT_STREQ(to_string(shed.admission), "queue-full");
    // Shed tickets are not redeemable -- and say so, typed.
    EXPECT_THROW(server.wait(shed), RuntimeError);
    EXPECT_THROW(server.poll(shed), RuntimeError);
  }
  // An unknown program is its own verdict, not a crash.
  const ServeTicket unknown = server.submit(key + 1, burst);
  EXPECT_EQ(unknown.admission, Admission::kUnknownProgram);

  const Response served = server.wait(first);
  EXPECT_TRUE(served.ok()) << served.error;
  EXPECT_EQ(served.stats.results, app.reference);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.shed_queue, 4u);
  EXPECT_EQ(stats.shed_unknown, 1u);
  EXPECT_EQ(stats.shed_total(), 5u);

  // After shutdown the verdict is kShutdown -- still typed, still
  // instant.
  server.shutdown();
  const ServeTicket late = server.submit(key, burst);
  EXPECT_EQ(late.admission, Admission::kShutdown);
}

TEST(ServeTest, TenantQuotaExactUnderContention) {
  AppFixture app("cornerturn");
  ServerOptions options;
  options.execute = app.options;
  options.max_sessions_per_program = 2;
  options.max_queue_depth = 256;
  Server server(options);
  const std::uint64_t key =
      server.add_program("cornerturn", app.program, app.project.registry());
  TenantQuota quota;
  quota.max_in_flight = 2;
  server.set_quota("metered", quota);

  // K threads race same-instant submissions. Virtual-time quota
  // accounting makes the outcome independent of interleaving: exactly
  // max_in_flight admissions, the rest shed kTenantQuota.
  constexpr int kThreads = 8;
  std::atomic<int> admitted{0};
  std::atomic<int> quota_shed{0};
  std::atomic<int> other{0};
  std::vector<ServeTicket> tickets(kThreads);
  std::vector<std::thread> callers;
  callers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    callers.emplace_back([&, t] {
      RunRequest request;
      request.tenant = "metered";
      request.arrival_vt = 0.0;
      tickets[static_cast<std::size_t>(t)] = server.submit(key, request);
      const Admission verdict =
          tickets[static_cast<std::size_t>(t)].admission;
      if (verdict == Admission::kAdmitted) {
        admitted.fetch_add(1);
      } else if (verdict == Admission::kTenantQuota) {
        quota_shed.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
    });
  }
  for (std::thread& caller : callers) caller.join();

  EXPECT_EQ(admitted.load(), quota.max_in_flight);
  EXPECT_EQ(quota_shed.load(), kThreads - quota.max_in_flight);
  EXPECT_EQ(other.load(), 0);
  const ServerStats mid = server.stats();
  EXPECT_EQ(mid.tenants.at("metered").admitted,
            static_cast<std::uint64_t>(quota.max_in_flight));
  EXPECT_EQ(mid.tenants.at("metered").shed,
            static_cast<std::uint64_t>(kThreads - quota.max_in_flight));

  for (const ServeTicket& ticket : tickets) {
    if (ticket.admitted()) {
      EXPECT_EQ(server.wait(ticket).stats.results, app.reference);
    }
  }

  // Lifetime cap: at most max_requests ever admitted for the tenant.
  TenantQuota lifetime;
  lifetime.max_requests = 3;
  server.set_quota("capped", lifetime);
  int capped_admitted = 0;
  for (int i = 0; i < 5; ++i) {
    RunRequest request;
    request.tenant = "capped";
    const ServeTicket ticket = server.submit(key, request);
    if (ticket.admitted()) {
      ++capped_admitted;
      server.wait(ticket);
    } else {
      EXPECT_EQ(ticket.admission, Admission::kTenantQuota);
    }
  }
  EXPECT_EQ(capped_admitted, 3);
}

// --- coalescing and fleet growth -------------------------------------------

TEST(ServeTest, BurstCoalescesOntoOneStreamingEpoch) {
  AppFixture app("fft2d");
  ServerOptions options;
  options.execute = app.options;
  options.max_sessions_per_program = 1;
  options.max_queue_depth = 16;
  Server server(options);
  const std::uint64_t key =
      server.add_program("fft2d", app.program, app.project.registry());
  const ProgramInfo info = server.program_info(key);

  constexpr int kBurst = 5;
  RunRequest burst;
  burst.arrival_vt = 0.0;
  std::vector<ServeTicket> tickets;
  for (int i = 0; i < kBurst; ++i) tickets.push_back(server.submit(key, burst));
  std::vector<Response> responses;
  for (const ServeTicket& ticket : tickets) {
    responses.push_back(server.wait(ticket));
  }

  // First request opens the pipeline at the solo latency; the rest ride
  // the shared epoch, spaced by exactly the calibrated period.
  EXPECT_FALSE(responses.front().coalesced);
  EXPECT_DOUBLE_EQ(responses.front().finish_vt, info.solo_latency_vt);
  for (int i = 1; i < kBurst; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_TRUE(responses[idx].coalesced) << i;
    EXPECT_EQ(responses[idx].session_index, 0) << i;
    EXPECT_DOUBLE_EQ(
        responses[idx].finish_vt - responses[idx - 1].finish_vt,
        info.stream_period_vt)
        << i;
    EXPECT_EQ(responses[idx].stats.results, app.reference) << i;
  }
  EXPECT_EQ(server.stats().coalesced, static_cast<std::uint64_t>(kBurst - 1));
}

TEST(ServeTest, FleetGrowsLazilyToTheCap) {
  AppFixture app("fft2d");
  ServerOptions options;
  options.execute = app.options;
  options.max_sessions_per_program = 2;
  options.max_queue_depth = 16;
  Server server(options);
  const std::uint64_t key =
      server.add_program("fft2d", app.program, app.project.registry());
  EXPECT_EQ(server.program_info(key).sessions, 1);

  // Same-instant pair: the second request finds session 0 busy and
  // grows the fleet instead of queueing behind it.
  RunRequest burst;
  burst.arrival_vt = 0.0;
  const ServeTicket a = server.submit(key, burst);
  const ServeTicket b = server.submit(key, burst);
  const Response ra = server.wait(a);
  const Response rb = server.wait(b);
  EXPECT_EQ(ra.session_index, 0);
  EXPECT_EQ(rb.session_index, 1);
  EXPECT_FALSE(rb.coalesced);  // its own fresh pipeline, not a queue
  EXPECT_EQ(server.program_info(key).sessions, 2);

  // At the cap the next same-instant request coalesces onto the
  // least-loaded session instead of growing further.
  const ServeTicket c = server.submit(key, burst);
  const Response rc = server.wait(c);
  EXPECT_TRUE(rc.coalesced);
  EXPECT_EQ(server.program_info(key).sessions, 2);
  EXPECT_EQ(ra.stats.results, app.reference);
  EXPECT_EQ(rb.stats.results, app.reference);
  EXPECT_EQ(rc.stats.results, app.reference);
}

// --- deterministic replay ---------------------------------------------------

/// Two fresh servers with a pinned virtual-time calibration, one seeded
/// arrival schedule: every admission verdict, latency, and aggregate
/// must agree bit-for-bit. This is the property that makes the load
/// bench's reported curve a pure function of (schedule, calibration).
TEST(ServeTest, PinnedCalibrationReplaysBitForBit) {
  const std::vector<support::VirtualSeconds> arrivals =
      poisson_arrivals(48, 6.0, 0x5EED);
  ASSERT_EQ(arrivals.size(), 48u);
  // Deterministic generator: same seed, same schedule.
  EXPECT_EQ(poisson_arrivals(48, 6.0, 0x5EED), arrivals);
  EXPECT_NE(poisson_arrivals(48, 6.0, 0x5EED + 1), arrivals);

  auto run_once = [&](AppFixture& app) {
    ServerOptions options;
    options.execute = app.options;
    options.workers = 2;
    options.max_sessions_per_program = 2;
    options.max_queue_depth = 4;
    options.calibration_latency = 0.5;
    options.calibration_period = 0.125;
    Server server(options);
    const std::uint64_t key =
        server.add_program("fft2d", app.program, app.project.registry());
    const LoadPoint point = drive_load(server, key, arrivals, 6.0);
    return std::make_pair(point, server.stats());
  };

  AppFixture app("fft2d");
  const auto [first, first_stats] = run_once(app);
  const auto [second, second_stats] = run_once(app);

  EXPECT_EQ(first.admitted, second.admitted);
  EXPECT_EQ(first.shed, second.shed);
  EXPECT_EQ(first.errors, 0);
  EXPECT_EQ(first.coalesced, second.coalesced);
  EXPECT_EQ(first.p50_latency_vt, second.p50_latency_vt);
  EXPECT_EQ(first.p99_latency_vt, second.p99_latency_vt);
  EXPECT_EQ(first.mean_latency_vt, second.mean_latency_vt);
  EXPECT_EQ(first.span_vt, second.span_vt);
  EXPECT_EQ(first.throughput, second.throughput);
  EXPECT_EQ(first_stats.admitted, second_stats.admitted);
  EXPECT_EQ(first_stats.shed_queue, second_stats.shed_queue);
  EXPECT_EQ(first_stats.peak_queue_depth, second_stats.peak_queue_depth);
  EXPECT_EQ(first_stats.tenants.at("default"),
            second_stats.tenants.at("default"));
  // The tiny queue at 0.75x the pinned saturation (16/s) sheds some of
  // the 6/s burst structure's clumps -- the point exercises both paths.
  EXPECT_GT(first.admitted, 0);
}

/// The acceptance-criterion shape, in miniature and exactly: at half
/// the saturation rate, p99 latency stays within 3x the solo latency.
TEST(ServeTest, HalfSaturationP99WithinThreeSoloLatencies) {
  AppFixture app("fft2d");
  ServerOptions options;
  options.execute = app.options;
  options.workers = 2;
  options.max_sessions_per_program = 2;
  options.max_queue_depth = 64;
  options.calibration_latency = 1.0;
  options.calibration_period = 0.25;
  Server server(options);
  const std::uint64_t key =
      server.add_program("fft2d", app.program, app.project.registry());
  const ProgramInfo info = server.program_info(key);
  ASSERT_DOUBLE_EQ(info.saturation_rate(), 8.0);  // 2 sessions / 0.25s

  const double rate = 0.5 * info.saturation_rate();
  const LoadPoint point =
      drive_load(server, key, poisson_arrivals(64, rate, 0xCAFE), rate);
  EXPECT_EQ(point.shed, 0);
  EXPECT_EQ(point.errors, 0);
  EXPECT_LE(point.p99_latency_vt, 3.0 * info.solo_latency_vt);
  EXPECT_GE(point.p50_latency_vt, info.stream_period_vt);
}

// --- metrics surface --------------------------------------------------------

TEST(ServeTest, MetricFamiliesLandInSnapshotsAndReport) {
  AppFixture app("cornerturn");
  ServerOptions options;
  options.execute = app.options;
  options.max_sessions_per_program = 1;
  options.max_queue_depth = 0;
  Server server(options);
  const std::uint64_t key =
      server.add_program("cornerturn", app.program, app.project.registry());

  RunRequest request;
  request.tenant = "acme";
  request.arrival_vt = 0.0;
  const ServeTicket admitted = server.submit(key, request);
  const ServeTicket shed = server.submit(key, request);
  ASSERT_TRUE(admitted.admitted());
  ASSERT_FALSE(shed.admitted());
  server.wait(admitted);

  const viz::MetricsSnapshot snapshot = server.metrics();
  const viz::MetricValue* admitted_series = snapshot.find(
      viz::families::kServeAdmitted, {{"tenant", "acme"}});
  ASSERT_NE(admitted_series, nullptr);
  EXPECT_DOUBLE_EQ(admitted_series->value, 1.0);
  const viz::MetricValue* shed_series = snapshot.find(
      viz::families::kServeShed,
      {{"tenant", "acme"}, {"reason", "queue-full"}});
  ASSERT_NE(shed_series, nullptr);
  EXPECT_DOUBLE_EQ(shed_series->value, 1.0);
  const viz::MetricValue* completed =
      snapshot.find(viz::families::kServeCompleted);
  ASSERT_NE(completed, nullptr);
  EXPECT_DOUBLE_EQ(completed->value, 1.0);
  const viz::MetricValue* latency =
      snapshot.find(viz::families::kServeLatency);
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->histogram.count, 1u);
  EXPECT_GT(latency->histogram.sum, 0.0);
  const viz::MetricValue* sessions =
      snapshot.find(viz::families::kServeSessions, {});
  ASSERT_NE(sessions, nullptr);
  EXPECT_DOUBLE_EQ(sessions->value, 1.0);

  // The human report gains its serve section.
  const std::string text = viz::report(viz::Trace(), snapshot);
  EXPECT_NE(text.find("serve: 1 admitted, 1 shed, 1 completed"),
            std::string::npos);
  EXPECT_NE(text.find("tenant acme: 1 admitted"), std::string::npos);
  // And the Prometheus exposition carries the families.
  const std::string prom = viz::prometheus_text(snapshot);
  EXPECT_NE(prom.find("sage_serve_admitted_total"), std::string::npos);
  EXPECT_NE(prom.find("sage_serve_latency_seconds"), std::string::npos);
}

// --- lifecycle --------------------------------------------------------------

TEST(ServeTest, DrainCollectsEverythingInSubmissionOrder) {
  AppFixture app("fft2d");
  ServerOptions options;
  options.execute = app.options;
  options.max_queue_depth = 16;
  Server server(options);
  const std::uint64_t key =
      server.add_program("fft2d", app.program, app.project.registry());

  EXPECT_TRUE(server.drain().empty());  // zero in flight: a no-op
  std::vector<ServeTicket> tickets;
  for (int i = 0; i < 4; ++i) tickets.push_back(server.submit(key));
  EXPECT_EQ(server.in_flight(), 4);
  const std::vector<Response> responses = server.drain();
  ASSERT_EQ(responses.size(), 4u);
  for (std::size_t i = 1; i < responses.size(); ++i) {
    EXPECT_GT(responses[i].id, responses[i - 1].id);
  }
  EXPECT_EQ(server.in_flight(), 0);
  for (const Response& response : responses) {
    EXPECT_EQ(response.stats.results, app.reference);
  }
  // poll flips to done-ness; a collected ticket is gone.
  EXPECT_THROW(server.poll(tickets.front()), RuntimeError);
  server.shutdown();
  server.shutdown();  // idempotent
}

}  // namespace
}  // namespace sage::serve
