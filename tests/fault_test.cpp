// Chaos suite for the deterministic fault-injection and recovery
// subsystem: FaultPlan parsing and counter-mode determinism, fabric
// injection and the analytic-ARQ reliable path, the bit-identical
// empty-plan contract, seeded chaos over the integration pipeline,
// credit-path recovery, and degraded-mode (dead node) execution.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "apps/benchmarks.hpp"
#include "core/project.hpp"
#include "mpi/comm.hpp"
#include "net/fabric.hpp"
#include "net/fault.hpp"
#include "net/machine.hpp"
#include "support/error.hpp"

namespace sage {
namespace {

using net::FaultKind;
using net::FaultPlan;
using net::LinkFaultRule;

// --- plan parsing and determinism ------------------------------------------

TEST(FaultPlanTest, ParseReadsEveryDirective) {
  const FaultPlan plan = FaultPlan::parse(
      "# comment\n"
      "fault-plan 1\n"
      "seed 42\n"
      "detect-timeout 2e-4\n"
      "backoff 3\n"
      "max-attempts 5\n"
      "drop link=0->1 p=0.25\n"
      "drop link=* at=3\n"
      "corrupt link=*->2 p=0.1 bytes=8\n"
      "delay link=2->0 p=0.5 vt=2e-3\n"
      "stall node=1 iter=2 vt=0.01\n"
      "dead node=3\n");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.detect_timeout_vt, 2e-4);
  EXPECT_DOUBLE_EQ(plan.backoff_factor, 3.0);
  EXPECT_EQ(plan.max_attempts, 5);
  ASSERT_EQ(plan.link_rules.size(), 4u);
  EXPECT_EQ(plan.link_rules[0].kind, FaultKind::kDrop);
  EXPECT_EQ(plan.link_rules[0].src, 0);
  EXPECT_EQ(plan.link_rules[0].dst, 1);
  EXPECT_EQ(plan.link_rules[1].at_index, 3);
  EXPECT_EQ(plan.link_rules[1].src, -1);
  EXPECT_EQ(plan.link_rules[2].kind, FaultKind::kCorrupt);
  EXPECT_EQ(plan.link_rules[2].dst, 2);
  EXPECT_EQ(plan.link_rules[2].corrupt_bytes, 8u);
  EXPECT_EQ(plan.link_rules[3].kind, FaultKind::kDelay);
  EXPECT_DOUBLE_EQ(plan.link_rules[3].delay_vt, 2e-3);
  ASSERT_EQ(plan.stall_rules.size(), 1u);
  EXPECT_EQ(plan.stall_rules[0].node, 1);
  EXPECT_EQ(plan.stall_rules[0].iteration, 2);
  ASSERT_EQ(plan.dead_nodes.size(), 1u);
  EXPECT_TRUE(plan.node_dead(3));
  EXPECT_FALSE(plan.node_dead(2));
  EXPECT_TRUE(plan.active());
}

TEST(FaultPlanTest, SerializeRoundTrips) {
  const FaultPlan plan = FaultPlan::parse(
      "fault-plan 1\n"
      "seed 7\n"
      "drop link=0->1 p=0.25\n"
      "corrupt link=* p=0.125 bytes=4\n"
      "delay link=*->2 p=0.5 vt=0.001\n"
      "stall node=* iter=1 vt=0.25\n"
      "dead node=2\n");
  const FaultPlan again = FaultPlan::parse(plan.serialize());
  EXPECT_EQ(again.serialize(), plan.serialize());
  EXPECT_EQ(again.link_rules.size(), plan.link_rules.size());
  EXPECT_EQ(again.dead_nodes, plan.dead_nodes);
}

TEST(FaultPlanTest, ParseRejectsMalformedInput) {
  EXPECT_THROW(FaultPlan::parse("seed 1\n"), ConfigError);  // no header
  EXPECT_THROW(FaultPlan::parse("fault-plan 2\n"), ConfigError);
  EXPECT_THROW(FaultPlan::parse("fault-plan 1\ndrop link=0->1 p=1.5\n"),
               ConfigError);
  EXPECT_THROW(FaultPlan::parse("fault-plan 1\ndrop link=0->1\n"),
               ConfigError);  // needs p or at
  EXPECT_THROW(FaultPlan::parse("fault-plan 1\ndelay link=* p=0.5\n"),
               ConfigError);  // delay needs vt
  EXPECT_THROW(FaultPlan::parse("fault-plan 1\nstall node=0 iter=0\n"),
               ConfigError);  // stall needs vt
  EXPECT_THROW(FaultPlan::parse("fault-plan 1\nexplode link=*\n"),
               ConfigError);
  EXPECT_THROW(FaultPlan::parse("fault-plan 1\ndrop link=01 p=0.5\n"),
               ConfigError);  // bad link spec
}

TEST(FaultPlanTest, InactivePlanReportsInactive) {
  EXPECT_FALSE(FaultPlan{}.active());
  EXPECT_FALSE(FaultPlan::parse("fault-plan 1\nseed 9\n").active());
}

TEST(FaultPlanTest, LinkOutcomeIsAPureFunction) {
  FaultPlan plan;
  LinkFaultRule rule;
  rule.kind = FaultKind::kDrop;
  rule.probability = 0.5;
  plan.link_rules.push_back(rule);

  // Identical arguments give identical verdicts, in any call order.
  std::vector<FaultKind> forward;
  std::vector<FaultKind> backward;
  for (int seq = 0; seq < 64; ++seq) {
    forward.push_back(plan.link_outcome(0, 1, seq).kind);
  }
  for (int seq = 63; seq >= 0; --seq) {
    backward.push_back(plan.link_outcome(0, 1, seq).kind);
  }
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);

  // Both verdicts occur at p=0.5 over 64 draws (probability of a
  // one-sided run is 2^-63).
  EXPECT_TRUE(std::count(forward.begin(), forward.end(), FaultKind::kDrop) >
              0);
  EXPECT_TRUE(std::count(forward.begin(), forward.end(), FaultKind::kNone) >
              0);

  // Different links see different draw streams.
  std::vector<FaultKind> other_link;
  for (int seq = 0; seq < 64; ++seq) {
    other_link.push_back(plan.link_outcome(1, 0, seq).kind);
  }
  EXPECT_NE(forward, other_link);
}

TEST(FaultPlanTest, AtIndexFiresExactlyOnce) {
  FaultPlan plan;
  LinkFaultRule rule;
  rule.kind = FaultKind::kDrop;
  rule.at_index = 3;
  plan.link_rules.push_back(rule);
  for (int seq = 0; seq < 8; ++seq) {
    EXPECT_EQ(plan.link_outcome(0, 1, seq).kind,
              seq == 3 ? FaultKind::kDrop : FaultKind::kNone);
  }
}

TEST(FaultPlanTest, StallsSumOverMatchingRules) {
  const FaultPlan plan = FaultPlan::parse(
      "fault-plan 1\n"
      "stall node=1 iter=* vt=0.5\n"
      "stall node=* iter=2 vt=0.25\n");
  EXPECT_DOUBLE_EQ(plan.stall_vt(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(plan.stall_vt(1, 2), 0.75);
  EXPECT_DOUBLE_EQ(plan.stall_vt(0, 2), 0.25);
  EXPECT_DOUBLE_EQ(plan.stall_vt(0, 0), 0.0);
}

// --- fabric injection and the reliable path --------------------------------

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST(FabricFaultTest, PlainSendMarksFaultedDeliveries) {
  net::Fabric fabric(2, net::myrinet_fabric());
  auto plan = std::make_shared<FaultPlan>();
  LinkFaultRule rule;
  rule.kind = FaultKind::kDrop;
  rule.at_index = 1;
  plan->link_rules.push_back(rule);
  fabric.set_fault_plan(plan);

  const auto payload = bytes_of("hello");
  fabric.send(0, 1, 7, payload, 0.0);
  fabric.send(0, 1, 7, payload, 1.0);
  fabric.send(0, 1, 7, payload, 2.0);

  const net::Message first = fabric.recv(1, 0, 7);
  EXPECT_EQ(first.fault, FaultKind::kNone);
  EXPECT_EQ(first.payload, payload);

  const net::Message dropped = fabric.recv(1, 0, 7);
  EXPECT_EQ(dropped.fault, FaultKind::kDrop);
  EXPECT_TRUE(dropped.payload.empty());  // tombstone
  // The tombstone arrives only after the modeled detection timeout.
  EXPECT_GT(dropped.arrival_vt, 1.0 + plan->detect_timeout_vt);

  const net::Message third = fabric.recv(1, 0, 7);
  EXPECT_EQ(third.fault, FaultKind::kNone);

  const net::FaultCounters counters = fabric.fault_counters();
  EXPECT_EQ(counters.drops, 1u);
  EXPECT_EQ(counters.retransmits, 0u);
}

TEST(FabricFaultTest, CorruptionFlipsPayloadBytes) {
  net::Fabric fabric(2, net::myrinet_fabric());
  auto plan = std::make_shared<FaultPlan>();
  LinkFaultRule rule;
  rule.kind = FaultKind::kCorrupt;
  rule.at_index = 0;
  rule.corrupt_bytes = 1;
  plan->link_rules.push_back(rule);
  fabric.set_fault_plan(plan);

  const auto payload = bytes_of("abcdefgh");
  fabric.send(0, 1, 3, payload, 0.0);
  const net::Message msg = fabric.recv(1, 0, 3);
  EXPECT_EQ(msg.fault, FaultKind::kCorrupt);
  ASSERT_EQ(msg.payload.size(), payload.size());
  int flipped = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (msg.payload[i] != payload[i]) ++flipped;
  }
  EXPECT_EQ(flipped, 1);
  EXPECT_EQ(fabric.fault_counters().corruptions, 1u);
}

TEST(FabricFaultTest, FaultExemptSendsBypassThePlan) {
  net::Fabric fabric(2, net::myrinet_fabric());
  auto plan = std::make_shared<FaultPlan>();
  LinkFaultRule rule;
  rule.kind = FaultKind::kDrop;
  rule.probability = 1.0;
  plan->link_rules.push_back(rule);
  fabric.set_fault_plan(plan);

  net::SendOptions exempt;
  exempt.fault_exempt = true;
  fabric.send(0, 1, 1, bytes_of("x"), 0.0, exempt);
  EXPECT_EQ(fabric.recv(1, 0, 1).fault, FaultKind::kNone);
  EXPECT_EQ(fabric.fault_counters().drops, 0u);
}

TEST(FabricFaultTest, SendReliableRetransmitsUntilClean) {
  net::Fabric fabric(2, net::myrinet_fabric());
  auto plan = std::make_shared<FaultPlan>();
  for (const int at : {0, 1}) {  // first two attempts on the link fail
    LinkFaultRule rule;
    rule.kind = FaultKind::kDrop;
    rule.at_index = at;
    plan->link_rules.push_back(rule);
  }
  fabric.set_fault_plan(plan);

  const auto payload = bytes_of("payload");
  const net::SendReceipt receipt =
      fabric.send_reliable(0, 1, 9, payload, 0.0);
  EXPECT_EQ(receipt.attempts, 3);
  // Two detection timeouts plus exponential backoff are charged to the
  // sender's virtual time.
  EXPECT_GT(receipt.sender_after,
            plan->detect_timeout_vt * (1.0 + plan->backoff_factor));

  // The receiver observes both tombstones, then the clean retransmit.
  EXPECT_EQ(fabric.recv(1, 0, 9).fault, FaultKind::kDrop);
  EXPECT_EQ(fabric.recv(1, 0, 9).fault, FaultKind::kDrop);
  const net::Message clean = fabric.recv(1, 0, 9);
  EXPECT_EQ(clean.fault, FaultKind::kNone);
  EXPECT_EQ(clean.attempt, 2);
  EXPECT_EQ(clean.payload, payload);

  const net::FaultCounters counters = fabric.fault_counters();
  EXPECT_EQ(counters.drops, 2u);
  EXPECT_EQ(counters.retransmits, 2u);
}

TEST(FabricFaultTest, SendReliableThrowsWhenAttemptsExhausted) {
  net::Fabric fabric(2, net::myrinet_fabric());
  auto plan = std::make_shared<FaultPlan>();
  plan->max_attempts = 3;
  LinkFaultRule rule;
  rule.kind = FaultKind::kDrop;
  rule.probability = 1.0;
  plan->link_rules.push_back(rule);
  fabric.set_fault_plan(plan);

  EXPECT_THROW(fabric.send_reliable(0, 1, 2, bytes_of("x"), 0.0), CommError);
}

TEST(FabricFaultTest, ResetClearsFaultStateAndLinkSequences) {
  net::Fabric fabric(2, net::myrinet_fabric());
  auto plan = std::make_shared<FaultPlan>();
  LinkFaultRule rule;
  rule.kind = FaultKind::kDrop;
  rule.at_index = 0;  // only the first message on each link drops
  plan->link_rules.push_back(rule);
  fabric.set_fault_plan(plan);

  fabric.send(0, 1, 1, bytes_of("a"), 0.0);
  EXPECT_EQ(fabric.fault_counters().drops, 1u);
  fabric.reset();
  EXPECT_EQ(fabric.fault_counters().drops, 0u);
  // Link sequences restart, so the at=0 rule fires again after reset --
  // the property warm-session determinism relies on.
  fabric.send(0, 1, 1, bytes_of("a"), 0.0);
  EXPECT_EQ(fabric.recv(1, 0, 1).fault, FaultKind::kDrop);
}

TEST(MpiFaultTest, UnreliablePathRejectsFaultedMessages) {
  net::Machine machine(2, net::myrinet_fabric());
  auto plan = std::make_shared<FaultPlan>();
  LinkFaultRule rule;
  rule.kind = FaultKind::kDrop;
  rule.at_index = 0;
  plan->link_rules.push_back(rule);
  machine.fabric().set_fault_plan(plan);

  EXPECT_THROW(machine.run([](net::NodeContext& node) {
    mpi::Communicator comm(node);
    if (node.rank() == 0) {
      comm.send_value(1.0f, 1, 7);
    } else {
      (void)comm.recv_value<float>(0, 7);
    }
  }),
               CommError);
}

// --- end-to-end: the integration pipeline under fault plans ----------------

/// Order-insensitive structural projection of a trace: virtual
/// timestamps jitter run to run (they are measured thread CPU time), so
/// the determinism contract covers event content, not times.
std::vector<std::tuple<int, int, int, int, std::uint64_t, std::string>>
trace_shape(const viz::Trace& trace) {
  std::vector<std::tuple<int, int, int, int, std::uint64_t, std::string>>
      shape;
  shape.reserve(trace.events().size());
  for (const viz::Event& e : trace.events()) {
    shape.emplace_back(static_cast<int>(e.kind), e.node, e.function_id,
                       e.iteration, e.bytes, e.label);
  }
  std::sort(shape.begin(), shape.end());
  return shape;
}

runtime::RunStats run_cornerturn(const runtime::ExecuteOptions& options,
                                 int runs = 1) {
  core::Project project(apps::make_cornerturn_workspace(64, 4));
  auto session = project.open_session(options);
  runtime::RunStats stats = session->run();
  for (int r = 1; r < runs; ++r) stats = session->run();
  return stats;
}

TEST(FaultPipelineTest, EmptyPlanIsBitIdenticalAcrossBufferPolicies) {
  for (const runtime::BufferPolicy policy :
       {runtime::BufferPolicy::kUniquePerFunction,
        runtime::BufferPolicy::kShared}) {
    runtime::ExecuteOptions options;
    options.iterations = 2;
    options.buffer_policy = policy;

    const runtime::RunStats baseline = run_cornerturn(options);

    runtime::ExecuteOptions with_plan = options;
    with_plan.fault_plan = std::make_shared<const FaultPlan>();  // inactive
    const runtime::RunStats planned = run_cornerturn(with_plan);

    EXPECT_EQ(planned.results, baseline.results)
        << "policy " << runtime::to_string(policy);
    EXPECT_EQ(planned.fabric_messages, baseline.fabric_messages);
    EXPECT_EQ(planned.fabric_bytes, baseline.fabric_bytes);
    EXPECT_EQ(trace_shape(planned.trace), trace_shape(baseline.trace));
    EXPECT_EQ(planned.faults, runtime::FaultStats());
  }
}

std::shared_ptr<const FaultPlan> chaos_plan(std::uint64_t seed) {
  auto plan = std::make_shared<FaultPlan>();
  plan->seed = seed;
  LinkFaultRule drop;
  drop.kind = FaultKind::kDrop;
  drop.probability = 0.05;
  plan->link_rules.push_back(drop);
  LinkFaultRule corrupt;
  corrupt.kind = FaultKind::kCorrupt;
  corrupt.probability = 0.05;
  corrupt.corrupt_bytes = 4;
  plan->link_rules.push_back(corrupt);
  LinkFaultRule delay;
  delay.kind = FaultKind::kDelay;
  delay.probability = 0.1;
  delay.delay_vt = 1e-4;
  plan->link_rules.push_back(delay);
  net::StallRule stall;
  stall.node = 1;
  stall.iteration = 0;
  stall.stall_vt = 1e-3;
  plan->stall_rules.push_back(stall);
  return plan;
}

TEST(FaultPipelineTest, ChaosRunsRecoverTheCleanChecksums) {
  runtime::ExecuteOptions clean;
  clean.iterations = 3;
  const runtime::RunStats baseline = run_cornerturn(clean);

  runtime::ExecuteOptions chaotic = clean;
  chaotic.fault_plan = chaos_plan(0xC0FFEE);
  const runtime::RunStats stats = run_cornerturn(chaotic);

  // Every transfer eventually delivered a clean frame, so the sink
  // checksums equal the fault-free run's exactly.
  EXPECT_EQ(stats.results, baseline.results);
  // And the plan actually did something.
  const runtime::FaultStats& f = stats.faults;
  EXPECT_GT(f.injected_drops + f.injected_corruptions + f.injected_delays,
            0u);
  EXPECT_EQ(f.retries, f.injected_drops + f.injected_corruptions);
  EXPECT_EQ(f.timeouts, f.injected_drops);
  EXPECT_EQ(f.stalls, 1u);  // node 1, iteration 0
  EXPECT_GT(stats.trace.events_of_kind(viz::EventKind::kFault).size(), 0u);
  EXPECT_GT(stats.trace.events_of_kind(viz::EventKind::kRetry).size(), 0u);
}

TEST(FaultPipelineTest, SameSeedIsDeterministicAcrossFreshSessions) {
  runtime::ExecuteOptions options;
  options.iterations = 3;
  options.fault_plan = chaos_plan(1234);

  const runtime::RunStats a = run_cornerturn(options);
  const runtime::RunStats b = run_cornerturn(options);
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.fabric_messages, b.fabric_messages);
  EXPECT_EQ(a.fabric_bytes, b.fabric_bytes);
  EXPECT_EQ(trace_shape(a.trace), trace_shape(b.trace));
}

TEST(FaultPipelineTest, WarmRerunRepeatsTheSameFaults) {
  runtime::ExecuteOptions options;
  options.iterations = 2;
  options.fault_plan = chaos_plan(777);

  core::Project project(apps::make_cornerturn_workspace(64, 4));
  auto session = project.open_session(options);
  const runtime::RunStats first = session->run();
  const runtime::RunStats second = session->run();
  // Fabric::reset() restarts the per-link sequence counters, so a warm
  // re-run replays the identical fault schedule.
  EXPECT_EQ(second.results, first.results);
  EXPECT_EQ(second.faults, first.faults);
  EXPECT_EQ(second.fabric_messages, first.fabric_messages);
}

TEST(FaultPipelineTest, PerRunPlanOverridesSessionPlan) {
  runtime::ExecuteOptions options;
  options.iterations = 2;
  options.fault_plan = chaos_plan(42);

  core::Project project(apps::make_cornerturn_workspace(64, 4));
  auto session = project.open_session(options);
  const runtime::RunStats faulted = session->run();
  EXPECT_GT(faulted.faults.retries + faulted.faults.injected_delays, 0u);

  runtime::RunOverrides no_faults;
  no_faults.fault_plan = std::shared_ptr<const FaultPlan>();  // disable
  const runtime::RunStats clean = session->run(no_faults);
  EXPECT_EQ(clean.faults, runtime::FaultStats());
  EXPECT_EQ(clean.results, faulted.results);
}

TEST(FaultPipelineTest, CreditFlowPathRecoversUnderFaults) {
  runtime::ExecuteOptions clean;
  clean.iterations = 4;
  clean.buffer_depth = 1;  // credits in play on every remote channel
  const runtime::RunStats baseline = run_cornerturn(clean);

  runtime::ExecuteOptions chaotic = clean;
  chaotic.fault_plan = chaos_plan(0xFEED);
  const runtime::RunStats stats = run_cornerturn(chaotic);
  EXPECT_EQ(stats.results, baseline.results);
  EXPECT_GT(stats.faults.retries + stats.faults.injected_delays, 0u);
}

// --- degraded mode ---------------------------------------------------------

TEST(DegradedModeTest, DeadNodeRunCompletesOnSurvivors) {
  runtime::ExecuteOptions clean;
  clean.iterations = 2;
  const runtime::RunStats baseline = run_cornerturn(clean);

  auto plan = std::make_shared<FaultPlan>();
  plan->dead_nodes.push_back(3);
  runtime::ExecuteOptions degraded = clean;
  degraded.fault_plan = plan;

  core::Project project(apps::make_cornerturn_workspace(64, 4));
  auto session = project.open_session(degraded);
  const runtime::RunStats stats = session->run();

  // The computation is placement-independent: survivors produce the
  // exact fault-free checksums.
  EXPECT_EQ(stats.results, baseline.results);
  EXPECT_EQ(stats.faults.degraded_nodes, 1);
  ASSERT_EQ(session->dead_nodes().size(), 1u);
  EXPECT_EQ(session->dead_nodes()[0], 3);
  // No function thread remains on the dead node.
  for (const runtime::FunctionConfig& fn : session->config().functions) {
    for (const int node : fn.thread_nodes) EXPECT_NE(node, 3);
  }
  EXPECT_EQ(stats.trace.events_of_kind(viz::EventKind::kRecovery).size(),
            1u);

  // Warm re-run in degraded mode stays deterministic.
  const runtime::RunStats again = session->run();
  EXPECT_EQ(again.results, stats.results);
  EXPECT_EQ(again.faults, stats.faults);
}

TEST(DegradedModeTest, ExplicitRecoverIsIdempotent) {
  core::Project project(apps::make_cornerturn_workspace(64, 4));
  runtime::ExecuteOptions options;
  options.iterations = 2;
  auto session = project.open_session(options);
  const runtime::RunStats baseline = session->run();

  const runtime::RecoveryReport first = session->recover({1});
  EXPECT_EQ(first.dead_nodes, std::vector<int>{1});
  EXPECT_GT(first.moved_threads, 0);
  const runtime::RecoveryReport second = session->recover({1});
  EXPECT_TRUE(second.dead_nodes.empty());
  EXPECT_EQ(second.moved_threads, 0);

  const runtime::RunStats degraded = session->run();
  EXPECT_EQ(degraded.results, baseline.results);
  EXPECT_EQ(degraded.faults.degraded_nodes, 1);
}

TEST(DegradedModeTest, RecoverRejectsKillingEveryNode) {
  core::Project project(apps::make_cornerturn_workspace(32, 2));
  auto session = project.open_session();
  EXPECT_THROW(session->recover({0, 1}), RuntimeError);
  EXPECT_THROW(session->recover({5}), RuntimeError);
}

TEST(DegradedModeTest, ProjectRemapOnSurvivorsAvoidsDeadRanks) {
  core::Project project(apps::make_cornerturn_workspace(64, 4));
  runtime::ExecuteOptions options;
  options.iterations = 2;
  const runtime::RunStats baseline = project.execute(options);

  const atot::CostBreakdown cost = project.remap_on_survivors({0});
  EXPECT_GT(cost.max_load, 0.0);
  EXPECT_LT(cost.objective, 1e6);  // no dead-task penalty incurred

  // The regenerated glue places nothing on the dead rank and still
  // reproduces the baseline checksums.
  auto session = project.open_session(options);
  for (const runtime::FunctionConfig& fn : session->config().functions) {
    for (const int node : fn.thread_nodes) EXPECT_NE(node, 0);
  }
  const runtime::RunStats remapped = session->run();
  EXPECT_EQ(remapped.results, baseline.results);
}

}  // namespace
}  // namespace sage
