// Randomized end-to-end property test: generate random data-flow chains
// (random stage counts, stripings, thread counts, node counts), push
// them through the whole pipeline -- model, validation, Alter glue
// generation, runtime execution -- and verify that every element of an
// identity chain arrives at the sink with exactly its global index.
// Also covers fan-out/fan-in (diamond) topologies.
#include <gtest/gtest.h>

#include <memory>

#include "codegen/generator.hpp"
#include "core/project.hpp"
#include "net/fault.hpp"
#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"
#include "runtime/registry.hpp"
#include "support/rng.hpp"

namespace sage {
namespace {

using model::ModelObject;
using model::PortDirection;
using model::Striping;

/// Source whose element value is its global index.
void index_source(runtime::KernelContext& ctx) {
  runtime::PortSlice& out = ctx.out("out");
  auto data = out.as<float>();
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(out.global_of_local(i));
  }
}

/// Sink reporting slice sum + 1e9 penalty on any misplaced element.
void verify_sink(runtime::KernelContext& ctx) {
  const runtime::PortSlice& in = ctx.in("in");
  auto data = in.as<float>();
  double acc = 0.0;
  bool ok = true;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] != static_cast<float>(in.global_of_local(i))) ok = false;
    acc += data[i];
  }
  ctx.set_result(ok ? acc : acc + 1e9);
}

/// out = a + b element-wise (diamond join).
void join_sum(runtime::KernelContext& ctx) {
  auto a = ctx.in("a").as<float>();
  auto b = ctx.in("b").as<float>();
  auto out = ctx.out("out").as<float>();
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] + b[i];
}

runtime::FunctionRegistry test_registry() {
  runtime::FunctionRegistry registry = runtime::standard_registry();
  registry.add("test.index_source", index_source);
  registry.add("test.verify_sink", verify_sink);
  registry.add("test.join_sum", join_sum);
  return registry;
}

double expected_index_sum(std::size_t total) {
  return static_cast<double>(total - 1) * static_cast<double>(total) / 2.0;
}

void add_float_port(ModelObject& fn, const char* name, PortDirection dir,
                    int stripe_dim, const std::vector<std::size_t>& dims) {
  model::add_port(fn, name, dir, Striping::kStriped, "float", dims,
                  stripe_dim);
}

class RandomChainTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChainTest, ::testing::Range(0, 12));

TEST_P(RandomChainTest, IdentityChainDeliversEveryElement) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);

  const int nodes = rng.chance(0.5) ? 2 : 4;
  const int stages = 1 + static_cast<int>(rng.below(4));  // identity stages
  const std::vector<std::size_t> dims{16, 16};
  auto pick_threads = [&] {
    const int options[] = {1, 2, 4};
    return options[rng.below(3)];
  };
  auto pick_dim = [&] { return static_cast<int>(rng.below(2)); };

  auto ws = std::make_unique<model::Workspace>("random");
  ModelObject& root = ws->root();
  model::add_cspi_platform(root, nodes);
  ModelObject& app = model::add_application(root, "chain");
  ModelObject& mapping = model::add_mapping(root, "mapping", "cspi");

  auto assign_all = [&](const std::string& fn, int threads) {
    std::vector<int> ranks;
    for (int t = 0; t < threads; ++t) ranks.push_back(t % nodes);
    model::assign_ranks(root, mapping, fn, ranks);
  };

  const int src_threads = pick_threads();
  ModelObject& src =
      model::add_function(app, "src", "test.index_source", src_threads);
  src.set_property("role", "source");
  add_float_port(src, "out", PortDirection::kOut, pick_dim(), dims);
  assign_all("src", src_threads);

  std::string prev = "src";
  for (int s = 0; s < stages; ++s) {
    const std::string name = "stage" + std::to_string(s);
    const int threads = pick_threads();
    ModelObject& fn = model::add_function(app, name, "identity", threads);
    // An identity kernel copies its slice verbatim, so both of its
    // ports must declare the same striping; redistribution happens on
    // the arcs, where adjacent stages pick different dims.
    const int dim = pick_dim();
    add_float_port(fn, "in", PortDirection::kIn, dim, dims);
    add_float_port(fn, "out", PortDirection::kOut, dim, dims);
    model::connect(app, prev + ".out", name + ".in");
    assign_all(name, threads);
    prev = name;
  }

  const int sink_threads = pick_threads();
  ModelObject& sink =
      model::add_function(app, "sink", "test.verify_sink", sink_threads);
  sink.set_property("role", "sink");
  add_float_port(sink, "in", PortDirection::kIn, pick_dim(), dims);
  model::connect(app, prev + ".out", "sink.in");
  assign_all("sink", sink_threads);

  ws->validate_or_throw();

  core::Project project(std::move(ws));
  project.set_registry(test_registry());
  runtime::ExecuteOptions options;
  options.iterations = 2;
  options.collect_trace = false;
  const runtime::RunStats stats = project.execute(options);

  for (double v : stats.results.at("sink")) {
    EXPECT_NEAR(v, expected_index_sum(16 * 16), 1.0)
        << "seed " << GetParam() << " nodes " << nodes << " stages "
        << stages;
  }

  // Bit-identity contract: the same graph run with an inactive (zero
  // fault) FaultPlan attached takes the exact unfaulted code path and
  // must reproduce the baseline checksums and fabric totals.
  runtime::ExecuteOptions with_plan = options;
  with_plan.fault_plan = std::make_shared<const net::FaultPlan>();
  const runtime::RunStats planned = project.execute(with_plan);
  EXPECT_EQ(planned.results, stats.results)
      << "zero-fault plan changed results, seed " << GetParam();
  EXPECT_EQ(planned.fabric_messages, stats.fabric_messages);
  EXPECT_EQ(planned.fabric_bytes, stats.fabric_bytes);
  EXPECT_EQ(planned.faults, runtime::FaultStats());
}

TEST(DiamondTest, FanOutAndJoinSumTwice) {
  // src feeds two parallel identity branches with different stripings;
  // a join adds them: every element arrives as exactly 2x its index.
  constexpr int kNodes = 4;
  const std::vector<std::size_t> dims{16, 16};

  auto ws = std::make_unique<model::Workspace>("diamond");
  ModelObject& root = ws->root();
  model::add_cspi_platform(root, kNodes);
  ModelObject& app = model::add_application(root, "diamond");
  ModelObject& mapping = model::add_mapping(root, "mapping", "cspi");
  const std::vector<int> all{0, 1, 2, 3};

  ModelObject& src =
      model::add_function(app, "src", "test.index_source", kNodes);
  src.set_property("role", "source");
  add_float_port(src, "out", PortDirection::kOut, 0, dims);
  model::assign_ranks(root, mapping, "src", all);

  ModelObject& left = model::add_function(app, "left", "identity", kNodes);
  add_float_port(left, "in", PortDirection::kIn, 0, dims);
  add_float_port(left, "out", PortDirection::kOut, 0, dims);
  model::assign_ranks(root, mapping, "left", all);

  ModelObject& right = model::add_function(app, "right", "identity", kNodes);
  add_float_port(right, "in", PortDirection::kIn, 1, dims);  // corner turn in
  add_float_port(right, "out", PortDirection::kOut, 1, dims);
  model::assign_ranks(root, mapping, "right", all);

  ModelObject& join = model::add_function(app, "join", "test.join_sum",
                                          kNodes);
  add_float_port(join, "a", PortDirection::kIn, 0, dims);
  add_float_port(join, "b", PortDirection::kIn, 0, dims);
  add_float_port(join, "out", PortDirection::kOut, 0, dims);
  model::assign_ranks(root, mapping, "join", all);

  ModelObject& sink = model::add_function(app, "sink", "float_sink", kNodes);
  sink.set_property("role", "sink");
  add_float_port(sink, "in", PortDirection::kIn, 0, dims);
  model::assign_ranks(root, mapping, "sink", all);

  model::connect(app, "src.out", "left.in");
  model::connect(app, "src.out", "right.in");
  model::connect(app, "left.out", "join.a");
  model::connect(app, "right.out", "join.b");
  model::connect(app, "join.out", "sink.in");
  ws->validate_or_throw();

  core::Project project(std::move(ws));
  project.set_registry(test_registry());
  const runtime::RunStats stats = project.execute();
  EXPECT_NEAR(stats.results.at("sink")[0],
              2.0 * expected_index_sum(16 * 16), 1.0);
}

}  // namespace
}  // namespace sage
