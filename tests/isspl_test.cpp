// ISSPL tests: FFT mathematical properties (parameterized over sizes),
// transpose/pack kernels, vector ops, windows, FIR.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <numeric>

#include "isspl/fft.hpp"
#include "isspl/transpose.hpp"
#include "isspl/vector_ops.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sage::isspl {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<Complex> out(n);
  for (auto& v : out) {
    v = Complex(static_cast<float>(rng.uniform(-1, 1)),
                static_cast<float>(rng.uniform(-1, 1)));
  }
  return out;
}

double energy(std::span<const Complex> x) {
  double acc = 0.0;
  for (const auto& v : x) acc += std::norm(v);
  return acc;
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(2, 4, 8, 64, 256, 1024));

TEST_P(FftSizes, ImpulseTransformsToFlatSpectrum) {
  const std::size_t n = GetParam();
  std::vector<Complex> x(n, Complex(0, 0));
  x[0] = Complex(1, 0);
  fft(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0f, 1e-4f);
    EXPECT_NEAR(v.imag(), 0.0f, 1e-4f);
  }
}

TEST_P(FftSizes, DcTransformsToSingleBin) {
  const std::size_t n = GetParam();
  std::vector<Complex> x(n, Complex(1, 0));
  fft(x);
  EXPECT_NEAR(x[0].real(), static_cast<float>(n), n * 1e-5f);
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_NEAR(std::abs(x[i]), 0.0f, n * 1e-5f) << "bin " << i;
  }
}

TEST_P(FftSizes, InverseRecoversSignal) {
  const std::size_t n = GetParam();
  const std::vector<Complex> original = random_signal(n, 17);
  std::vector<Complex> x = original;
  fft(x);
  ifft(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i].real(), original[i].real(), 1e-3f);
    EXPECT_NEAR(x[i].imag(), original[i].imag(), 1e-3f);
  }
}

TEST_P(FftSizes, ParsevalHolds) {
  const std::size_t n = GetParam();
  std::vector<Complex> x = random_signal(n, 23);
  const double time_energy = energy(x);
  fft(x);
  const double freq_energy = energy(x) / static_cast<double>(n);
  EXPECT_NEAR(freq_energy, time_energy, time_energy * 1e-4);
}

TEST_P(FftSizes, Linearity) {
  const std::size_t n = GetParam();
  auto a = random_signal(n, 5);
  auto b = random_signal(n, 6);
  std::vector<Complex> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = a[i] + 2.0f * b[i];
  fft(a);
  fft(b);
  fft(sum);
  for (std::size_t i = 0; i < n; ++i) {
    const Complex expected = a[i] + 2.0f * b[i];
    EXPECT_NEAR(sum[i].real(), expected.real(),
                1e-3f * (1.0f + std::abs(expected)));
    EXPECT_NEAR(sum[i].imag(), expected.imag(),
                1e-3f * (1.0f + std::abs(expected)));
  }
}

TEST(FftTest, SingleToneLandsInRightBin) {
  constexpr std::size_t kN = 128;
  constexpr std::size_t kBin = 5;
  std::vector<Complex> x(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const double phase =
        2.0 * std::numbers::pi * kBin * i / static_cast<double>(kN);
    x[i] = Complex(static_cast<float>(std::cos(phase)),
                   static_cast<float>(std::sin(phase)));
  }
  fft(x);
  EXPECT_NEAR(std::abs(x[kBin]), static_cast<float>(kN), 1e-2f);
  for (std::size_t i = 0; i < kN; ++i) {
    if (i != kBin) {
      EXPECT_LT(std::abs(x[i]), 1e-2f) << "bin " << i;
    }
  }
}

TEST(FftRadix4Test, AutoSelectsRadixBydSize) {
  EXPECT_EQ(FftPlan(256, FftDirection::kForward).algorithm(),
            FftAlgorithm::kRadix4);  // 4^4
  EXPECT_EQ(FftPlan(512, FftDirection::kForward).algorithm(),
            FftAlgorithm::kMixed42);  // 2^9: radix-4 ladder over a
                                      // radix-2 seed stage
  EXPECT_EQ(FftPlan(4, FftDirection::kForward).algorithm(),
            FftAlgorithm::kRadix4);
  EXPECT_EQ(FftPlan(2, FftDirection::kForward).algorithm(),
            FftAlgorithm::kRadix2);
}

TEST(FftRadix4Test, RejectsNonPowerOfFour) {
  EXPECT_THROW(FftPlan(8, FftDirection::kForward, FftAlgorithm::kRadix4),
               Error);
  EXPECT_NO_THROW(FftPlan(8, FftDirection::kForward, FftAlgorithm::kRadix2));
}

TEST(FftMixed42Test, RejectsUnsuitedSizes) {
  // Powers of four should use kRadix4; tiny sizes have no radix-4 stage.
  EXPECT_THROW(FftPlan(16, FftDirection::kForward, FftAlgorithm::kMixed42),
               Error);
  EXPECT_THROW(FftPlan(2, FftDirection::kForward, FftAlgorithm::kMixed42),
               Error);
  EXPECT_NO_THROW(FftPlan(8, FftDirection::kForward, FftAlgorithm::kMixed42));
}

TEST(FftMixed42Test, MatchesRadix2AcrossSizes) {
  for (const std::size_t n : {8u, 32u, 128u, 512u, 2048u}) {
    const auto input = random_signal(n, n);
    std::vector<Complex> r2 = input;
    std::vector<Complex> mixed = input;
    FftPlan(n, FftDirection::kForward, FftAlgorithm::kRadix2).execute(r2);
    FftPlan(n, FftDirection::kForward, FftAlgorithm::kMixed42).execute(mixed);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(r2[i].real(), mixed[i].real(),
                  1e-3f * (1.0f + std::abs(r2[i])))
          << "n=" << n << " bin " << i;
      EXPECT_NEAR(r2[i].imag(), mixed[i].imag(),
                  1e-3f * (1.0f + std::abs(r2[i])))
          << "n=" << n << " bin " << i;
    }
  }
}

TEST(FftMixed42Test, OutOfPlaceMatchesInPlace) {
  // The mixed-radix permutation is not an involution; the in-place swap
  // sequence and the out-of-place gather must agree exactly.
  for (const std::size_t n : {8u, 32u, 512u}) {
    for (const auto dir : {FftDirection::kForward, FftDirection::kInverse}) {
      const auto input = random_signal(n, n + 1);
      const FftPlan plan(n, dir, FftAlgorithm::kMixed42);
      std::vector<Complex> in_place = input;
      plan.execute(in_place);
      std::vector<Complex> out(n);
      plan.execute(std::span<const Complex>(input), std::span<Complex>(out));
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(in_place[i], out[i]) << "n=" << n << " bin " << i;
      }
    }
  }
}

TEST(FftRadix4Test, MatchesRadix2AcrossSizes) {
  for (const std::size_t n : {4u, 16u, 64u, 256u, 1024u}) {
    const auto input = random_signal(n, n);
    std::vector<Complex> r2 = input;
    std::vector<Complex> r4 = input;
    FftPlan(n, FftDirection::kForward, FftAlgorithm::kRadix2).execute(r2);
    FftPlan(n, FftDirection::kForward, FftAlgorithm::kRadix4).execute(r4);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(r2[i].real(), r4[i].real(),
                  1e-3f * (1.0f + std::abs(r2[i])))
          << "n=" << n << " bin " << i;
      EXPECT_NEAR(r2[i].imag(), r4[i].imag(),
                  1e-3f * (1.0f + std::abs(r2[i])))
          << "n=" << n << " bin " << i;
    }
  }
}

TEST(FftRadix4Test, InverseRecoversSignal) {
  constexpr std::size_t kN = 256;
  const auto original = random_signal(kN, 77);
  std::vector<Complex> x = original;
  FftPlan(kN, FftDirection::kForward, FftAlgorithm::kRadix4).execute(x);
  FftPlan(kN, FftDirection::kInverse, FftAlgorithm::kRadix4).execute(x);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(x[i].real(), original[i].real(), 1e-3f);
    EXPECT_NEAR(x[i].imag(), original[i].imag(), 1e-3f);
  }
}

TEST(FftRadix4Test, SingleToneLandsInRightBin) {
  constexpr std::size_t kN = 64;
  constexpr std::size_t kBin = 9;
  std::vector<Complex> x(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const double phase =
        2.0 * std::numbers::pi * kBin * i / static_cast<double>(kN);
    x[i] = Complex(static_cast<float>(std::cos(phase)),
                   static_cast<float>(std::sin(phase)));
  }
  FftPlan(kN, FftDirection::kForward, FftAlgorithm::kRadix4).execute(x);
  EXPECT_NEAR(std::abs(x[kBin]), static_cast<float>(kN), 1e-2f);
  for (std::size_t i = 0; i < kN; ++i) {
    if (i != kBin) {
      EXPECT_LT(std::abs(x[i]), 1e-2f) << "bin " << i;
    }
  }
}

TEST(FftTest, RejectsBadSizes) {
  EXPECT_THROW(FftPlan(0, FftDirection::kForward), Error);
  EXPECT_THROW(FftPlan(1, FftDirection::kForward), Error);
  EXPECT_THROW(FftPlan(12, FftDirection::kForward), Error);
  FftPlan plan(8, FftDirection::kForward);
  std::vector<Complex> wrong(4);
  EXPECT_THROW(plan.execute(wrong), Error);
}

TEST(FftTest, ExecuteRowsMatchesRowwise) {
  constexpr std::size_t kRows = 4, kCols = 64;
  auto data = random_signal(kRows * kCols, 31);
  auto expected = data;
  FftPlan plan(kCols, FftDirection::kForward);
  plan.execute_rows(data, kRows);
  for (std::size_t r = 0; r < kRows; ++r) {
    plan.execute(std::span<Complex>(expected).subspan(r * kCols, kCols));
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i], expected[i]);
  }
}

TEST(Fft2dTest, SeparableToneLandsInRightCell) {
  constexpr std::size_t kN = 32;
  std::vector<Complex> x(kN * kN);
  for (std::size_t r = 0; r < kN; ++r) {
    for (std::size_t c = 0; c < kN; ++c) {
      const double phase =
          2.0 * std::numbers::pi * (3.0 * r + 7.0 * c) / kN;
      x[r * kN + c] = Complex(static_cast<float>(std::cos(phase)),
                              static_cast<float>(std::sin(phase)));
    }
  }
  fft2d(x, kN, kN);
  EXPECT_NEAR(std::abs(x[3 * kN + 7]), static_cast<float>(kN * kN), 0.5f);
}

// --- real-input FFT --------------------------------------------------------------

TEST(RfftTest, MatchesComplexFftOnRealSignals) {
  for (const std::size_t n : {4u, 16u, 64u, 256u, 512u}) {
    support::Rng rng(n);
    std::vector<float> real_signal(n);
    std::vector<Complex> as_complex(n);
    for (std::size_t i = 0; i < n; ++i) {
      real_signal[i] = static_cast<float>(rng.uniform(-1, 1));
      as_complex[i] = Complex(real_signal[i], 0.0f);
    }

    std::vector<Complex> reference = as_complex;
    fft(reference);

    RfftPlan plan(n);
    std::vector<Complex> spectrum(plan.bins());
    plan.execute(real_signal, spectrum);

    for (std::size_t k = 0; k <= n / 2; ++k) {
      EXPECT_NEAR(spectrum[k].real(), reference[k].real(),
                  1e-3f * (1.0f + std::abs(reference[k])))
          << "n=" << n << " bin " << k;
      EXPECT_NEAR(spectrum[k].imag(), reference[k].imag(),
                  1e-3f * (1.0f + std::abs(reference[k])))
          << "n=" << n << " bin " << k;
    }
  }
}

TEST(RfftTest, DcAndNyquistAreReal) {
  constexpr std::size_t kN = 128;
  support::Rng rng(5);
  std::vector<float> signal(kN);
  for (auto& v : signal) v = static_cast<float>(rng.uniform(-1, 1));
  RfftPlan plan(kN);
  std::vector<Complex> spectrum(plan.bins());
  plan.execute(signal, spectrum);
  EXPECT_NEAR(spectrum[0].imag(), 0.0f, 1e-4f);
  EXPECT_NEAR(spectrum[kN / 2].imag(), 0.0f, 1e-4f);
}

TEST(RfftTest, Guards) {
  EXPECT_THROW(RfftPlan(6), Error);
  EXPECT_THROW(RfftPlan(2), Error);
  RfftPlan plan(8);
  std::vector<float> in(8);
  std::vector<Complex> wrong(3);
  EXPECT_THROW(plan.execute(in, wrong), Error);
}

// --- transpose -----------------------------------------------------------------

TEST(TransposeTest, RectangularCorrect) {
  constexpr std::size_t kRows = 5, kCols = 7;
  std::vector<int> in(kRows * kCols);
  std::iota(in.begin(), in.end(), 0);
  std::vector<int> out(in.size());
  transpose<int>(in, out, kRows, kCols);
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t c = 0; c < kCols; ++c) {
      EXPECT_EQ(out[c * kRows + r], in[r * kCols + c]);
    }
  }
}

TEST(TransposeTest, DoubleTransposeIsIdentity) {
  constexpr std::size_t kRows = 33, kCols = 65;  // off-block sizes
  std::vector<int> original(kRows * kCols);
  std::iota(original.begin(), original.end(), 0);
  std::vector<int> once(original.size()), twice(original.size());
  transpose<int>(original, once, kRows, kCols);
  transpose<int>(once, twice, kCols, kRows);
  EXPECT_EQ(twice, original);
}

TEST(TransposeTest, InPlaceSquareMatchesOutOfPlace) {
  constexpr std::size_t kN = 48;
  std::vector<int> data(kN * kN);
  std::iota(data.begin(), data.end(), 0);
  std::vector<int> expected(data.size());
  transpose<int>(data, expected, kN, kN);
  transpose_square_inplace<int>(data, kN);
  EXPECT_EQ(data, expected);
}

TEST(TransposeTest, AliasAndSizeChecks) {
  std::vector<int> buf(4);
  EXPECT_THROW(
      transpose<int>(std::span<const int>(buf.data(), 4),
                     std::span<int>(buf.data(), 4), 2, 2),
      Error);
  std::vector<int> out(3);
  EXPECT_THROW(transpose<int>(buf, out, 2, 2), Error);
}

TEST(PackTest, PackUnpackRoundTrip) {
  constexpr std::size_t kRows = 8, kCols = 16, kChunk = 4;
  std::vector<int> matrix(kRows * kCols);
  std::iota(matrix.begin(), matrix.end(), 0);

  std::vector<int> rebuilt(matrix.size(), -1);
  for (std::size_t col0 = 0; col0 < kCols; col0 += kChunk) {
    std::vector<int> block(kRows * kChunk);
    pack_column_block<int>(matrix, kRows, kCols, col0, kChunk, block);
    unpack_column_block<int>(block, kRows, kCols, col0, kChunk, rebuilt);
  }
  EXPECT_EQ(rebuilt, matrix);
}

TEST(PackTest, BlockContentsAreColumnSlice) {
  constexpr std::size_t kRows = 3, kCols = 6;
  std::vector<int> matrix(kRows * kCols);
  std::iota(matrix.begin(), matrix.end(), 0);
  std::vector<int> block(kRows * 2);
  pack_column_block<int>(matrix, kRows, kCols, 2, 2, block);
  EXPECT_EQ(block[0], 2);   // row 0, col 2
  EXPECT_EQ(block[1], 3);   // row 0, col 3
  EXPECT_EQ(block[2], 8);   // row 1, col 2
  EXPECT_EQ(block[5], 15);  // row 2, col 3
}

// --- vector ops --------------------------------------------------------------------

TEST(VectorOpsTest, AddMulScaleAxpy) {
  std::vector<float> a{1, 2, 3}, b{4, 5, 6}, out(3);
  vadd(a, b, out);
  EXPECT_EQ(out[2], 9);
  vmul(a, b, out);
  EXPECT_EQ(out[1], 10);
  vscale(std::span<float>(out), 2.0f);
  EXPECT_EQ(out[1], 20);
  vaxpy(a, 3.0f, std::span<float>(b));
  EXPECT_EQ(b[0], 7);
}

TEST(VectorOpsTest, ComplexMagnitude) {
  std::vector<Complex> x{{3, 4}, {0, 0}, {-5, 12}};
  std::vector<float> mag(3), magsq(3);
  vmag(x, mag);
  vmagsq(x, magsq);
  EXPECT_NEAR(mag[0], 5.0f, 1e-6f);
  EXPECT_NEAR(mag[2], 13.0f, 1e-5f);
  EXPECT_NEAR(magsq[0], 25.0f, 1e-5f);
}

TEST(VectorOpsTest, SumDotMax) {
  std::vector<float> x{1, -2, 5, 3};
  EXPECT_NEAR(vsum(x), 7.0f, 1e-6f);
  EXPECT_NEAR(vdot(x, x), 1 + 4 + 25 + 9, 1e-5f);
  EXPECT_EQ(vmax_index(x), 2u);
  EXPECT_THROW(vmax_index({}), Error);
}

TEST(VectorOpsTest, SizeMismatchesThrow) {
  std::vector<float> a(3), b(4), out(3);
  EXPECT_THROW(vadd(a, b, out), Error);
  EXPECT_THROW(vdot(a, b), Error);
}

TEST(WindowTest, KnownShapes) {
  const auto hann = make_window(Window::kHann, 5);
  EXPECT_NEAR(hann[0], 0.0f, 1e-6f);
  EXPECT_NEAR(hann[2], 1.0f, 1e-6f);
  EXPECT_NEAR(hann[4], 0.0f, 1e-6f);

  const auto hamming = make_window(Window::kHamming, 5);
  EXPECT_NEAR(hamming[0], 0.08f, 1e-5f);
  EXPECT_NEAR(hamming[2], 1.0f, 1e-5f);

  const auto rect = make_window(Window::kRectangular, 4);
  for (float v : rect) EXPECT_EQ(v, 1.0f);

  const auto blackman = make_window(Window::kBlackman, 5);
  EXPECT_NEAR(blackman[2], 1.0f, 1e-5f);
}

TEST(WindowTest, ApplyScalesSamples) {
  std::vector<Complex> x(4, Complex(2, 2));
  const std::vector<float> w{0.0f, 0.5f, 1.0f, 2.0f};
  apply_window(x, w);
  EXPECT_EQ(x[0], Complex(0, 0));
  EXPECT_EQ(x[1], Complex(1, 1));
  EXPECT_EQ(x[3], Complex(4, 4));
}

TEST(FirTest, MovingAverage) {
  const std::vector<float> in{1, 1, 1, 1};
  const std::vector<float> taps{0.5f, 0.5f};
  std::vector<float> out(4);
  fir(in, taps, out);
  EXPECT_NEAR(out[0], 0.5f, 1e-6f);  // zero history
  EXPECT_NEAR(out[1], 1.0f, 1e-6f);
  EXPECT_NEAR(out[3], 1.0f, 1e-6f);
}

TEST(FirTest, ImpulseReproducesTaps) {
  std::vector<float> in(6, 0.0f);
  in[0] = 1.0f;
  const std::vector<float> taps{3, 2, 1};
  std::vector<float> out(6);
  fir(in, taps, out);
  EXPECT_EQ(out[0], 3);
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(out[2], 1);
  EXPECT_EQ(out[3], 0);
}

}  // namespace
}  // namespace sage::isspl
