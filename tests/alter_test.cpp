// Alter language tests: the reader, evaluator semantics (closures,
// scoping, special forms), core builtins, model-traversal builtins, the
// emit-stream interface, and the bytecode pipeline (compiler + VM
// differential against the tree-walking reference evaluator).
#include <gtest/gtest.h>

#include "alter/compiler.hpp"
#include "alter/interp.hpp"
#include "alter/reader.hpp"
#include "model/app.hpp"
#include "model/serialize.hpp"
#include "model/workspace.hpp"
#include "support/error.hpp"

namespace sage::alter {
namespace {

Value run(Interpreter& interp, const std::string& src) {
  return interp.eval_string(src);
}

Value run(const std::string& src) {
  Interpreter interp;
  return interp.eval_string(src);
}

// --- reader -------------------------------------------------------------------

TEST(ReaderTest, Atoms) {
  EXPECT_TRUE(read_one("nil").is_nil());
  EXPECT_EQ(read_one("#t").as_bool(), true);
  EXPECT_EQ(read_one("false").as_bool(), false);
  EXPECT_EQ(read_one("42").as_int(), 42);
  EXPECT_EQ(read_one("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(read_one("2.5").as_real(), 2.5);
  EXPECT_DOUBLE_EQ(read_one("-1e3").as_real(), -1000.0);
  EXPECT_EQ(read_one("foo-bar").as_symbol().name, "foo-bar");
  EXPECT_EQ(read_one("\"hi\\nthere\"").as_string(), "hi\nthere");
}

TEST(ReaderTest, ListsAndQuote) {
  const Value v = read_one("(a (b 1) \"s\")");
  ASSERT_TRUE(v.is_list());
  ASSERT_EQ(v.as_list().size(), 3u);
  EXPECT_EQ(v.as_list()[1].as_list()[1].as_int(), 1);

  const Value q = read_one("'(1 2)");
  EXPECT_EQ(q.as_list()[0].as_symbol().name, "quote");
}

TEST(ReaderTest, CommentsSkipped) {
  const ValueList program = read_program("; header\n1 ; trailing\n2\n");
  ASSERT_EQ(program.size(), 2u);
  EXPECT_EQ(program[1].as_int(), 2);
}

TEST(ReaderTest, Errors) {
  EXPECT_THROW(read_one("(unclosed"), AlterError);
  EXPECT_THROW(read_one(")"), AlterError);
  EXPECT_THROW(read_one("\"unterminated"), AlterError);
  EXPECT_THROW(read_one("1 2"), AlterError);  // trailing input
  EXPECT_THROW(read_one("\"bad \\x\""), AlterError);
}

// --- evaluator -----------------------------------------------------------------

TEST(EvalTest, ArithmeticAndComparison) {
  EXPECT_EQ(run("(+ 1 2 3)").as_int(), 6);
  EXPECT_EQ(run("(- 10 3 2)").as_int(), 5);
  EXPECT_EQ(run("(- 5)").as_int(), -5);
  EXPECT_EQ(run("(* 2 3 4)").as_int(), 24);
  EXPECT_EQ(run("(/ 12 4)").as_int(), 3);
  EXPECT_DOUBLE_EQ(run("(/ 1.0 4)").as_real(), 0.25);
  EXPECT_EQ(run("(mod 10 3)").as_int(), 1);
  EXPECT_TRUE(run("(< 1 2 3)").as_bool());
  EXPECT_FALSE(run("(< 1 3 2)").as_bool());
  EXPECT_TRUE(run("(= 2 2.0)").as_bool());
  EXPECT_EQ(run("(max 1 7 3)").as_int(), 7);
  EXPECT_EQ(run("(floor 2.9)").as_int(), 2);
  EXPECT_THROW(run("(/ 1 0)"), AlterError);
}

TEST(EvalTest, DefineSetAndScope) {
  Interpreter interp;
  run(interp, "(define x 10)");
  EXPECT_EQ(run(interp, "x").as_int(), 10);
  run(interp, "(set! x 20)");
  EXPECT_EQ(run(interp, "x").as_int(), 20);
  EXPECT_THROW(run(interp, "(set! undefined-var 1)"), AlterError);
  EXPECT_THROW(run(interp, "undefined-var"), AlterError);
}

TEST(EvalTest, LambdasAndClosures) {
  Interpreter interp;
  run(interp, "(define (make-adder n) (lambda (x) (+ x n)))");
  run(interp, "(define add5 (make-adder 5))");
  EXPECT_EQ(run(interp, "(add5 3)").as_int(), 8);
  // The closure captured its own n.
  run(interp, "(define add1 (make-adder 1))");
  EXPECT_EQ(run(interp, "(add5 0)").as_int(), 5);
  EXPECT_EQ(run(interp, "(add1 0)").as_int(), 1);
}

TEST(EvalTest, RestParameters) {
  Interpreter interp;
  run(interp, "(define (count-args a &rest more) (list a (length more)))");
  const Value v = run(interp, "(count-args 1 2 3 4)");
  EXPECT_EQ(v.as_list()[0].as_int(), 1);
  EXPECT_EQ(v.as_list()[1].as_int(), 3);
  EXPECT_THROW(run(interp, "(count-args)"), AlterError);  // too few
}

TEST(EvalTest, WrongArityReported) {
  Interpreter interp;
  run(interp, "(define (f a b) (+ a b))");
  EXPECT_THROW(run(interp, "(f 1)"), AlterError);
  EXPECT_THROW(run(interp, "(f 1 2 3)"), AlterError);
}

TEST(EvalTest, ConditionalsAndLogic) {
  EXPECT_EQ(run("(if #t 1 2)").as_int(), 1);
  EXPECT_EQ(run("(if #f 1 2)").as_int(), 2);
  EXPECT_TRUE(run("(if #f 1)").is_nil());
  EXPECT_EQ(run("(cond (#f 1) (#t 2) (else 3))").as_int(), 2);
  EXPECT_EQ(run("(cond (#f 1) (else 3))").as_int(), 3);
  EXPECT_EQ(run("(and 1 2 3)").as_int(), 3);
  EXPECT_FALSE(run("(and 1 #f 3)").truthy());
  EXPECT_EQ(run("(or #f 7)").as_int(), 7);
  EXPECT_EQ(run("(when #t 1 2)").as_int(), 2);
  EXPECT_TRUE(run("(unless #t 1)").is_nil());
  // 0 and "" are truthy (Scheme-style).
  EXPECT_EQ(run("(if 0 1 2)").as_int(), 1);
}

TEST(EvalTest, LetAndLetStar) {
  EXPECT_EQ(run("(let ((a 1) (b 2)) (+ a b))").as_int(), 3);
  EXPECT_EQ(run("(let* ((a 1) (b (+ a 1))) b)").as_int(), 2);
  // Plain let does not see sibling bindings.
  Interpreter interp;
  run(interp, "(define a 100)");
  EXPECT_EQ(run(interp, "(let ((a 1) (b a)) b)").as_int(), 100);
}

TEST(EvalTest, LoopsAccumulate) {
  Interpreter interp;
  EXPECT_EQ(run(interp,
                "(define total 0)"
                "(define i 0)"
                "(while (< i 5) (set! total (+ total i)) (set! i (+ i 1)))"
                "total")
                .as_int(),
            10);
  EXPECT_EQ(run(interp,
                "(define acc 0)"
                "(dotimes (k 4) (set! acc (+ acc k)))"
                "acc")
                .as_int(),
            6);
  EXPECT_EQ(run(interp,
                "(define acc2 0)"
                "(dolist (x (list 5 6 7)) (set! acc2 (+ acc2 x)))"
                "acc2")
                .as_int(),
            18);
}

TEST(EvalTest, RunawayRecursionCaught) {
  Interpreter interp;
  run(interp, "(define (loop x) (loop x))");
  EXPECT_THROW(run(interp, "(loop 1)"), AlterError);
}

// --- bytecode pipeline -----------------------------------------------------------

/// Runs `src` in both execution modes and requires identical results
/// and identical (print ...) logs.
void expect_modes_agree(const std::string& src) {
  Interpreter compiled;  // default mode: bytecode VM
  Interpreter tree(Interpreter::Mode::kTreeWalk);
  const Value vm_result = compiled.eval_string(src);
  const Value tree_result = tree.eval_string(src);
  EXPECT_EQ(vm_result.to_string(), tree_result.to_string()) << src;
  EXPECT_EQ(compiled.print_log(), tree.print_log()) << src;
}

TEST(VmTest, DifferentialSpecialForms) {
  expect_modes_agree("(if 0 'zero 'other)");
  expect_modes_agree("(cond (#f 1) (2) (else 3))");  // single-element clause
  expect_modes_agree("(cond)");
  expect_modes_agree("(and)");
  expect_modes_agree("(and 1 nil 3)");
  expect_modes_agree("(or)");
  expect_modes_agree("(or nil #f)");  // -> #f, not the last falsy value
  expect_modes_agree("(or nil 7 (error \"unreached\"))");
  expect_modes_agree("(begin)");
  expect_modes_agree("(while #f 1)");
  expect_modes_agree("(define i 0) (while (< i 3) (set! i (+ i 1)) (* i 10))");
  expect_modes_agree("(when 1)");
  expect_modes_agree("(unless nil 1 2)");
  expect_modes_agree("(quote (a b (c)))");
  expect_modes_agree("()");
}

TEST(VmTest, DifferentialScoping) {
  expect_modes_agree("(define a 100) (let ((a 1) (b a)) (list a b))");
  expect_modes_agree("(let* ((a 1) (b (+ a 1))) (list a b))");
  expect_modes_agree("(let ((x 1)) (define y 2) (+ x y))");
  expect_modes_agree("(let ((a 1) (a 2)) a)");  // duplicate binding: last wins
  expect_modes_agree(
      "(define (f) (define x 1) (define (g) x) (set! x 2) (g)) (f)");
  expect_modes_agree(
      "(define x 'outer) (dolist (x (list 1 2)) x) x");  // loop var is scoped
  expect_modes_agree("(dotimes (i 4) (* i i))");
  expect_modes_agree("(dolist (x (list)) (error \"unreached\")) 'done");
  expect_modes_agree("(define acc (list))"
                     "(dotimes (i 3) (set! acc (cons i acc))) acc");
}

TEST(VmTest, DifferentialFunctions) {
  expect_modes_agree("(define (fact n) (if (< n 2) 1 (* n (fact (- n 1)))))"
                     "(fact 10)");
  expect_modes_agree("(map (lambda (x) (* x x)) (list 1 2 3))");
  expect_modes_agree("(reduce + 0 (range 10))");
  expect_modes_agree("(define (f a &rest r) (list a r)) (f 1 2 3)");
  expect_modes_agree("(define (f a &rest r) (list a r)) (f 1)");
  expect_modes_agree("(apply + (list 1 2 3))");
  expect_modes_agree("(print \"side\" 1) (print \"effects\")");
}

TEST(VmTest, ClosuresOverLoopScopeShareTheFinalValue) {
  // dolist creates ONE child scope reused across iterations, so every
  // closure made in the body sees the final loop value -- in both modes.
  const std::string src =
      "(define fns (list))"
      "(dolist (i (list 1 2 3)) (set! fns (cons (lambda () i) fns)))"
      "(map (lambda (f) (f)) fns)";
  expect_modes_agree(src);
  Interpreter interp;
  EXPECT_EQ(run(interp, src).to_string(), "(3 3 3)");
}

TEST(VmTest, SetThroughCapturedFrames) {
  Interpreter interp;
  run(interp,
      "(define (make-counter)"
      "  (let ((n 0)) (lambda () (set! n (+ n 1)) n)))"
      "(define c1 (make-counter))"
      "(define c2 (make-counter))");
  EXPECT_EQ(run(interp, "(c1)").as_int(), 1);
  EXPECT_EQ(run(interp, "(c1)").as_int(), 2);
  EXPECT_EQ(run(interp, "(c2)").as_int(), 1);  // counters are independent
  EXPECT_EQ(run(interp, "(c1)").as_int(), 3);
}

TEST(VmTest, RestArityChecked) {
  Interpreter interp;
  run(interp, "(define (f a b &rest r) (list a b (length r)))");
  EXPECT_EQ(run(interp, "(f 1 2)").to_string(), "(1 2 0)");
  EXPECT_EQ(run(interp, "(f 1 2 3 4 5)").to_string(), "(1 2 3)");
  try {
    run(interp, "(f 1)");
    FAIL() << "expected arity error";
  } catch (const AlterError& e) {
    EXPECT_NE(std::string(e.what()).find("expected at least 2 args, got 1"),
              std::string::npos)
        << e.what();
  }
}

TEST(VmTest, DeepRecursionUsesVmFramesNotNativeStack) {
  // 10k-deep non-tail recursion would overflow the C++ stack under the
  // tree-walker; the VM's explicit call-frame stack handles it.
  Interpreter interp;
  run(interp, "(define (sum n acc) (if (= n 0) acc (sum (- n 1) (+ acc n))))");
  EXPECT_EQ(run(interp, "(sum 10000 0)").as_int(), 50005000);
}

TEST(VmTest, RuntimeErrorNamesSourceLine) {
  Interpreter interp;
  try {
    interp.eval_string("(define x 1)\n"
                       "(define y 2)\n"
                       "(+ x \"oops\")\n");
    FAIL() << "expected a type error";
  } catch (const AlterError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("script"), std::string::npos) << what;
  }
}

TEST(VmTest, RuntimeErrorInsideNamedFunctionNamesIt) {
  Interpreter interp;
  try {
    interp.eval_string("(define (boom n)\n"
                       "  (+ n 'not-a-number))\n"
                       "(boom 1)\n");
    FAIL() << "expected a type error";
  } catch (const AlterError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("boom line 2"), std::string::npos) << what;
  }
}

TEST(VmTest, DisassemblerListsChunkStructure) {
  const ChunkPtr chunk = compile_string(
      "(define (square x) (* x x))\n"
      "(dotimes (i 3) (square i))\n",
      "demo");
  const std::string listing = disassemble(*chunk);
  EXPECT_NE(listing.find("== demo =="), std::string::npos);
  EXPECT_NE(listing.find("== square =="), std::string::npos);
  EXPECT_NE(listing.find("def-global"), std::string::npos);
  EXPECT_NE(listing.find("range-next"), std::string::npos);
  EXPECT_NE(listing.find("params: x"), std::string::npos);
  EXPECT_NE(listing.find("; square"), std::string::npos);  // constant note
}

TEST(VmTest, ChunksAreReusableAcrossInterpreters) {
  const ChunkPtr chunk = compile_string("(+ 20 22)");
  Interpreter a;
  Interpreter b;
  EXPECT_EQ(a.execute(chunk).as_int(), 42);
  EXPECT_EQ(b.execute(chunk).as_int(), 42);
}

TEST(VmTest, TreeWalkModeStillAvailable) {
  Interpreter tree(Interpreter::Mode::kTreeWalk);
  EXPECT_EQ(tree.mode(), Interpreter::Mode::kTreeWalk);
  EXPECT_EQ(tree.eval_string("(+ 1 2)").as_int(), 3);
  Interpreter compiled;
  EXPECT_EQ(compiled.mode(), Interpreter::Mode::kCompiled);
}

// --- core builtins ---------------------------------------------------------------

TEST(BuiltinTest, ListOperations) {
  EXPECT_EQ(run("(length (list 1 2 3))").as_int(), 3);
  EXPECT_EQ(run("(first (list 9 8))").as_int(), 9);
  EXPECT_EQ(run("(last (list 9 8))").as_int(), 8);
  EXPECT_EQ(run("(nth 1 (list 4 5 6))").as_int(), 5);
  EXPECT_EQ(run("(length (rest (list 1 2 3)))").as_int(), 2);
  EXPECT_EQ(run("(first (cons 0 (list 1)))").as_int(), 0);
  EXPECT_EQ(run("(length (append (list 1) (list 2 3)))").as_int(), 3);
  EXPECT_EQ(run("(first (reverse (list 1 2 3)))").as_int(), 3);
  EXPECT_EQ(run("(length (range 5))").as_int(), 5);
  EXPECT_EQ(run("(first (range 3 6))").as_int(), 3);
  EXPECT_TRUE(run("(member? 2 (list 1 2))").as_bool());
  EXPECT_TRUE(run("(null? (list))").as_bool());
  EXPECT_FALSE(run("(null? (list 1))").as_bool());
  EXPECT_THROW(run("(nth 5 (list 1))"), AlterError);
}

TEST(BuiltinTest, HigherOrderFunctions) {
  EXPECT_EQ(run("(nth 1 (map (lambda (x) (* x x)) (list 1 2 3)))").as_int(),
            4);
  EXPECT_EQ(run("(length (filter (lambda (x) (> x 1)) (list 0 1 2 3)))")
                .as_int(),
            2);
  EXPECT_EQ(run("(reduce + 0 (list 1 2 3 4))").as_int(), 10);
  EXPECT_EQ(run("(apply + (list 1 2 3))").as_int(), 6);
  EXPECT_EQ(run("(first (sort-by (lambda (x) (- x)) (list 1 3 2)))").as_int(),
            3);
}

TEST(BuiltinTest, AssocFindsPairs) {
  Interpreter interp;
  run(interp, "(define table (list (list \"a\" 1) (list \"b\" 2)))");
  EXPECT_EQ(run(interp, "(nth 1 (assoc \"b\" table))").as_int(), 2);
  EXPECT_TRUE(run(interp, "(null? (assoc \"z\" table))").as_bool());
}

TEST(BuiltinTest, StringOperations) {
  EXPECT_EQ(run("(string-append \"a\" 1 \"b\")").as_string(), "a1b");
  EXPECT_EQ(run("(substring \"hello\" 1 3)").as_string(), "el");
  EXPECT_EQ(run("(string-upcase \"aBc\")").as_string(), "ABC");
  EXPECT_EQ(run("(string-downcase \"aBc\")").as_string(), "abc");
  EXPECT_EQ(run("(number->string 42)").as_string(), "42");
  EXPECT_EQ(run("(string->number \"3.5\")").as_real(), 3.5);
  EXPECT_EQ(run("(string->number \"12\")").as_int(), 12);
  EXPECT_EQ(run("(symbol->string 'abc)").as_string(), "abc");
  EXPECT_EQ(run("(length \"four\")").as_int(), 4);
}

TEST(BuiltinTest, StringSplitJoinReplace) {
  EXPECT_EQ(run("(length (string-split \"a,b,,c\" \",\"))").as_int(), 4);
  EXPECT_EQ(run("(nth 1 (string-split \"a,b\" \",\"))").as_string(), "b");
  EXPECT_EQ(run("(string-join (list 1 2 3) \"-\")").as_string(), "1-2-3");
  EXPECT_EQ(run("(string-join (list) \",\")").as_string(), "");
  EXPECT_TRUE(run("(string-contains? \"ell\" \"hello\")").as_bool());
  EXPECT_FALSE(run("(string-contains? \"z\" \"hello\")").as_bool());
  EXPECT_EQ(run("(string-replace \"ab\" \"X\" \"abcabd\")").as_string(),
            "XcXd");
  EXPECT_THROW(run("(string-replace \"\" \"x\" \"s\")"), AlterError);
}

TEST(BuiltinTest, Format) {
  EXPECT_EQ(run("(format \"x=~a y=~s~%\" 5 \"q\")").as_string(),
            "x=5 y=\"q\"\n");
  EXPECT_EQ(run("(format \"~~\")").as_string(), "~");
  EXPECT_THROW(run("(format \"~a\")"), AlterError);  // missing arg
  EXPECT_THROW(run("(format \"~z\" 1)"), AlterError);
}

TEST(BuiltinTest, ErrorsAndAsserts) {
  EXPECT_THROW(run("(error \"bad \" 42)"), AlterError);
  EXPECT_TRUE(run("(assert #t)").as_bool());
  EXPECT_THROW(run("(assert (= 1 2) \"math broke\")"), AlterError);
}

TEST(BuiltinTest, PrintGoesToLog) {
  Interpreter interp;
  run(interp, "(print \"hello\" 42)");
  EXPECT_EQ(interp.print_log(), "hello 42\n");
}

// --- emit streams -----------------------------------------------------------------

TEST(EmitTest, StreamsAccumulateByName) {
  Interpreter interp;
  run(interp,
      "(set-output \"a.txt\")"
      "(emit-line \"alpha\")"
      "(set-output \"b.txt\")"
      "(emit \"beta\")"
      "(set-output \"a.txt\")"
      "(emit-line \"gamma\")");
  EXPECT_EQ(interp.outputs().at("a.txt"), "alpha\ngamma\n");
  EXPECT_EQ(interp.outputs().at("b.txt"), "beta");
  EXPECT_EQ(run(interp, "(current-output)").as_string(), "a.txt");
}

// --- model builtins ----------------------------------------------------------------

class ModelBuiltinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workspace_ = std::make_unique<model::Workspace>("t");
    model::ModelObject& app =
        model::add_application(workspace_->root(), "app");
    model::ModelObject& fn = model::add_function(app, "f1", "identity", 2);
    fn.set_property("param_gain", 1.5);
    model::add_port(fn, "out", model::PortDirection::kOut,
                    model::Striping::kStriped, "cfloat", {4, 4}, 0);
    interp_.attach_model(workspace_->root());
  }

  std::unique_ptr<model::Workspace> workspace_;
  Interpreter interp_;
};

TEST_F(ModelBuiltinTest, TraversalBasics) {
  EXPECT_EQ(run(interp_, "(object-type (model-root))").as_string(),
            "sage-model");
  EXPECT_EQ(run(interp_, "(object-name (model-root))").as_string(), "t");
  EXPECT_EQ(run(interp_,
                "(length (children-of-type (model-root) \"application\"))")
                .as_int(),
            1);
  EXPECT_EQ(
      run(interp_,
          "(object-name (first (descendants-of-type (model-root) "
          "\"function\")))")
          .as_string(),
      "f1");
  EXPECT_TRUE(run(interp_, "(null? (parent (model-root)))").as_bool());
  EXPECT_EQ(run(interp_,
                "(object-type (parent (first (descendants-of-type "
                "(model-root) \"port\"))))")
                .as_string(),
            "function");
}

TEST_F(ModelBuiltinTest, PropertiesThroughAlter) {
  const std::string fn_expr =
      "(first (descendants-of-type (model-root) \"function\"))";
  EXPECT_EQ(run(interp_, "(get-property " + fn_expr + " \"threads\")").as_int(),
            2);
  EXPECT_TRUE(
      run(interp_, "(has-property? " + fn_expr + " \"kernel\")").as_bool());
  EXPECT_EQ(run(interp_, "(get-property-or " + fn_expr + " \"nope\" 9)")
                .as_int(),
            9);
  run(interp_, "(set-property! " + fn_expr + " \"threads\" 8)");
  EXPECT_EQ(run(interp_, "(get-property " + fn_expr + " \"threads\")").as_int(),
            8);
  EXPECT_THROW(run(interp_, "(get-property " + fn_expr + " \"nope\")"),
               AlterError);
  // Property lists convert both ways.
  const std::string port_expr =
      "(first (descendants-of-type (model-root) \"port\"))";
  EXPECT_EQ(
      run(interp_, "(nth 1 (get-property " + port_expr + " \"dims\"))").as_int(),
      4);
}

TEST_F(ModelBuiltinTest, AppHelpers) {
  const std::string app_expr =
      "(first (children-of-type (model-root) \"application\"))";
  EXPECT_EQ(run(interp_, "(length (app-functions " + app_expr + "))").as_int(),
            1);
  EXPECT_EQ(run(interp_,
                "(length (function-ports (find-function " + app_expr +
                    " \"f1\")))")
                .as_int(),
            1);
  EXPECT_EQ(run(interp_, "(datatype-bytes (model-root) \"cfloat\")").as_int(),
            8);
  EXPECT_EQ(run(interp_,
                "(length (filter (lambda (k) (string-prefix? \"param_\" k)) "
                "(property-names (find-function " + app_expr +
                    " \"f1\"))))")
                .as_int(),
            1);
}

TEST_F(ModelBuiltinTest, SaveModelProducesRepositoryText) {
  const Value text = run(interp_, "(save-model (model-root))");
  ASSERT_TRUE(text.is_string());
  EXPECT_NE(text.as_string().find("openSAGE model repository"),
            std::string::npos);
  // Round-trips through the loader.
  const auto loaded = model::load_model(text.as_string());
  EXPECT_EQ(loaded->dump(), workspace_->root().dump());
}

TEST(ModelBuiltinErrorTest, NoModelAttached) {
  Interpreter interp;
  EXPECT_THROW(interp.eval_string("(model-root)"), AlterError);
}

}  // namespace
}  // namespace sage::alter
