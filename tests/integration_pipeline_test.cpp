// End-to-end pipeline tests: model -> Alter glue generation -> runtime
// execution, cross-checked against the hand-coded implementations.
#include <gtest/gtest.h>

#include "apps/benchmarks.hpp"
#include "apps/handcoded.hpp"
#include "core/project.hpp"
#include "isspl/fft.hpp"
#include "runtime/registry.hpp"

namespace sage {
namespace {

TEST(PipelineTest, CornerTurnMatchesHandcodedChecksum) {
  constexpr std::size_t kN = 64;
  constexpr int kNodes = 4;

  core::Project project(apps::make_cornerturn_workspace(kN, kNodes));
  runtime::ExecuteOptions options;
  options.iterations = 2;
  const runtime::RunStats stats = project.execute(options);

  apps::HandcodedOptions hand_options;
  hand_options.iterations = 2;
  const apps::HandcodedResult hand =
      apps::run_cornerturn_handcoded(kN, kNodes, hand_options);

  ASSERT_EQ(stats.iterations, 2);
  ASSERT_TRUE(stats.results.contains("sink"));
  const auto& sums = stats.results.at("sink");
  ASSERT_EQ(sums.size(), 2u);
  ASSERT_EQ(hand.checksums.size(), 2u);
  for (int i = 0; i < 2; ++i) {
    EXPECT_NEAR(sums[i], hand.checksums[i],
                1e-6 * std::max(1.0, std::abs(hand.checksums[i])))
        << "iteration " << i;
  }
}

TEST(PipelineTest, CornerTurnIsExactTranspose) {
  // The corner turn moves data without arithmetic, so the SAGE output
  // checksum must equal the checksum of the generated input bit for bit.
  constexpr std::size_t kN = 32;
  constexpr int kNodes = 2;

  core::Project project(apps::make_cornerturn_workspace(kN, kNodes));
  const runtime::RunStats stats = project.execute();

  // Reference: the test pattern summed over all n^2 elements (a
  // transpose does not change the multiset of values).
  double expected = 0.0;
  for (std::size_t i = 0; i < kN * kN; ++i) {
    const auto v = runtime::test_pattern(i, 0);
    expected += v.real() + v.imag();
  }
  ASSERT_FALSE(stats.results.at("sink").empty());
  EXPECT_NEAR(stats.results.at("sink")[0], expected, 1e-6);
}

TEST(PipelineTest, Fft2dMatchesHandcodedChecksum) {
  constexpr std::size_t kN = 64;
  constexpr int kNodes = 4;

  core::Project project(apps::make_fft2d_workspace(kN, kNodes));
  const runtime::RunStats stats = project.execute();

  const apps::HandcodedResult hand = apps::run_fft2d_handcoded(kN, kNodes);
  ASSERT_EQ(hand.checksums.size(), 1u);
  const double expected = hand.checksums[0];
  ASSERT_FALSE(stats.results.at("sink").empty());
  EXPECT_NEAR(stats.results.at("sink")[0], expected,
              1e-4 * std::max(1.0, std::abs(expected)));
}

TEST(PipelineTest, Fft2dMatchesSingleNodeReference) {
  // Cross-check the distributed result against the plain isspl::fft2d
  // (the distributed pipeline computes the transposed 2D FFT, so the
  // checksum -- a sum over all elements -- matches the reference's).
  constexpr std::size_t kN = 32;
  constexpr int kNodes = 2;

  std::vector<isspl::Complex> reference(kN * kN);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    reference[i] = runtime::test_pattern(i, 0);
  }
  isspl::fft2d(reference, kN, kN);
  const double expected = runtime::block_checksum(reference);

  core::Project project(apps::make_fft2d_workspace(kN, kNodes));
  const runtime::RunStats stats = project.execute();
  EXPECT_NEAR(stats.results.at("sink")[0], expected,
              1e-3 * std::max(1.0, std::abs(expected)));
}

TEST(PipelineTest, GeneratedGlueArtifactsLookRight) {
  core::Project project(apps::make_fft2d_workspace(64, 4));
  const auto& artifacts = project.generate();

  EXPECT_EQ(artifacts.config.functions.size(), 5u);
  EXPECT_EQ(artifacts.config.buffers.size(), 4u);
  EXPECT_EQ(artifacts.config.nodes, 4);
  // The C rendition mentions the function table and every kernel.
  const std::string& c_source = artifacts.glue_source_text();
  EXPECT_NE(c_source.find("sage_function_table"), std::string::npos);
  EXPECT_NE(c_source.find("isspl.fft_rows"), std::string::npos);
  EXPECT_NE(c_source.find("sage_logical_buffers"), std::string::npos);
}

TEST(PipelineTest, LatencyAndPeriodArePositive) {
  core::Project project(apps::make_cornerturn_workspace(64, 4));
  runtime::ExecuteOptions options;
  options.iterations = 3;
  const runtime::RunStats stats = project.execute(options);
  ASSERT_EQ(stats.latencies.size(), 3u);
  for (const double latency : stats.latencies) {
    EXPECT_GT(latency, 0.0);
  }
  EXPECT_GT(stats.period, 0.0);
  EXPECT_GT(stats.makespan, 0.0);
}

TEST(PipelineTest, SharedBufferPolicyGivesSameResults) {
  core::Project project(apps::make_cornerturn_workspace(64, 4));
  runtime::ExecuteOptions unique_options;
  unique_options.buffer_policy = runtime::BufferPolicy::kUniquePerFunction;
  runtime::ExecuteOptions shared_options;
  shared_options.buffer_policy = runtime::BufferPolicy::kShared;

  const double a = project.execute(unique_options).results.at("sink")[0];
  const double b = project.execute(shared_options).results.at("sink")[0];
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace sage
