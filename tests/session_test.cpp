// Warm-session tests: the central invariant is that N warm runs on one
// runtime::Session are *indistinguishable in virtual-time results* from
// N cold runs on freshly constructed engines -- same sink checksums
// bit-for-bit, same fabric message/byte totals, same structure -- for
// both buffer policies and with credit flow control enabled. Virtual
// *times* are measured from host CPU time, so they vary run to run on
// both paths and are only sanity-checked here.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apps/benchmarks.hpp"
#include "core/project.hpp"
#include "runtime/engine.hpp"
#include "runtime/session.hpp"
#include "support/error.hpp"

namespace sage::runtime {
namespace {

struct DeterminismCase {
  std::string app;  // "fft2d" or "cornerturn"
  BufferPolicy policy = BufferPolicy::kUniquePerFunction;
  int buffer_depth = 0;
};

std::string case_name(const ::testing::TestParamInfo<DeterminismCase>& info) {
  const bool shared = info.param.policy == BufferPolicy::kShared;
  return info.param.app + (shared ? "_shared_depth" : "_unique_depth") +
         std::to_string(info.param.buffer_depth);
}

std::unique_ptr<model::Workspace> make_workspace(const std::string& app) {
  if (app == "fft2d") return apps::make_fft2d_workspace(64, 2);
  return apps::make_cornerturn_workspace(64, 2);
}

ExecuteOptions options_of(const DeterminismCase& param) {
  ExecuteOptions options;
  options.buffer_policy = param.policy;
  options.iterations = 3;
  options.buffer_depth = param.buffer_depth;
  options.collect_trace = false;
  return options;
}

class WarmColdDeterminismTest
    : public ::testing::TestWithParam<DeterminismCase> {};

TEST_P(WarmColdDeterminismTest, WarmRunsMatchColdRunsExactly) {
  const DeterminismCase& param = GetParam();
  constexpr int kRuns = 3;

  // Warm path: one session, kRuns runs.
  core::Project warm_project(make_workspace(param.app));
  auto session = warm_project.open_session(options_of(param));
  std::vector<RunStats> warm;
  for (int r = 0; r < kRuns; ++r) warm.push_back(session->run());
  ASSERT_EQ(warm.size(), static_cast<std::size_t>(kRuns));
  EXPECT_EQ(session->runs_completed(), kRuns);

  // Cold path: a fresh session per run (the old Engine::run shape).
  core::Project cold_project(make_workspace(param.app));
  for (int r = 0; r < kRuns; ++r) {
    const RunStats cold = cold_project.execute(options_of(param));

    EXPECT_EQ(warm[static_cast<std::size_t>(r)].iterations, cold.iterations);
    EXPECT_EQ(warm[static_cast<std::size_t>(r)].latencies.size(),
              cold.latencies.size());
    // Fabric traffic is fully deterministic: same messages, same bytes.
    EXPECT_EQ(warm[static_cast<std::size_t>(r)].fabric_messages,
              cold.fabric_messages);
    EXPECT_EQ(warm[static_cast<std::size_t>(r)].fabric_bytes,
              cold.fabric_bytes);
    // Sink checksums must be bit-identical: warm buffer reuse may not
    // leak any state between runs.
    EXPECT_EQ(warm[static_cast<std::size_t>(r)].results, cold.results);
  }

  // Every warm run must also agree with the first warm run.
  for (int r = 1; r < kRuns; ++r) {
    EXPECT_EQ(warm[static_cast<std::size_t>(r)].results, warm[0].results);
    EXPECT_EQ(warm[static_cast<std::size_t>(r)].fabric_messages,
              warm[0].fabric_messages);
    EXPECT_EQ(warm[static_cast<std::size_t>(r)].fabric_bytes,
              warm[0].fabric_bytes);
  }

  // Virtual times are measured, not synthesized: only sane, not equal.
  for (const RunStats& stats : warm) {
    EXPECT_GT(stats.makespan, 0.0);
    EXPECT_GT(stats.host_seconds, 0.0);
    for (const double lat : stats.latencies) EXPECT_GT(lat, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AppsPoliciesDepths, WarmColdDeterminismTest,
    ::testing::Values(
        DeterminismCase{"fft2d", BufferPolicy::kUniquePerFunction, 0},
        DeterminismCase{"fft2d", BufferPolicy::kShared, 0},
        DeterminismCase{"fft2d", BufferPolicy::kUniquePerFunction, 2},
        DeterminismCase{"cornerturn", BufferPolicy::kUniquePerFunction, 0},
        DeterminismCase{"cornerturn", BufferPolicy::kShared, 0},
        DeterminismCase{"cornerturn", BufferPolicy::kShared, 2}),
    case_name);

TEST(SessionTest, SteadyStateRunsAllocateNoPayloads) {
  // The construction-time prewarm plus the first couple of runs prime
  // every pool bucket; after that, payload acquisition must be served
  // entirely from the free lists -- zero heap allocations per warm run.
  for (const char* app : {"fft2d", "cornerturn"}) {
    core::Project project(make_workspace(app));
    ExecuteOptions options;
    options.iterations = 3;
    options.collect_trace = false;
    auto session = project.open_session(options);

    session->run();
    session->run();  // settle: credits/tombstones can lag one run
    for (int r = 0; r < 4; ++r) {
      const RunStats stats = session->run();
      EXPECT_EQ(stats.data_plane.pool_misses, 0u)
          << app << ": warm run " << r << " allocated payload memory";
      EXPECT_GT(stats.data_plane.pool_hits, 0u) << app;
    }
  }
}

TEST(SessionTest, DataPlaneCountersTrackTraffic) {
  core::Project project(make_workspace("cornerturn"));
  ExecuteOptions options;
  options.iterations = 2;
  options.collect_trace = false;
  auto session = project.open_session(options);
  session->run();
  const RunStats stats = session->run();

  // The corner turn stages through logical buffers (unique policy) and
  // ships remote pairs by handle: both counters must be live, and the
  // moved bytes must cover at least the fabric's wire traffic.
  EXPECT_GT(stats.data_plane.bytes_copied, 0u);
  EXPECT_GT(stats.data_plane.bytes_moved, 0u);
  EXPECT_GE(stats.data_plane.bytes_moved, stats.fabric_bytes);
  EXPECT_GT(stats.data_plane.pool_blocks, 0u);
}

TEST(SessionTest, EngineWrapperMatchesSession) {
  core::Project project(make_workspace("cornerturn"));
  ExecuteOptions options;
  options.iterations = 2;
  options.collect_trace = false;

  auto session = project.open_session(options);
  const RunStats from_session = session->run();

  const codegen::GeneratedArtifacts& artifacts = project.generate();
  Engine engine(artifacts.config, project.registry(),
                session->options());  // resolved options, same platform
  const RunStats from_engine = engine.run();

  EXPECT_EQ(from_session.results, from_engine.results);
  EXPECT_EQ(from_session.fabric_messages, from_engine.fabric_messages);
  EXPECT_EQ(from_session.fabric_bytes, from_engine.fabric_bytes);
}

TEST(SessionTest, RunOverridesApplyPerRunOnly) {
  core::Project project(make_workspace("cornerturn"));
  ExecuteOptions options;
  options.iterations = 2;
  options.collect_trace = false;
  auto session = project.open_session(options);

  RunOverrides more;
  more.iterations = 5;
  EXPECT_EQ(session->run(more).iterations, 5);
  // The next default run falls back to the session option.
  EXPECT_EQ(session->run().iterations, 2);

  // A per-run policy override matches a session configured with that
  // policy outright.
  RunOverrides shared;
  shared.buffer_policy = BufferPolicy::kShared;
  const RunStats overridden = session->run(shared);

  ExecuteOptions shared_options = options;
  shared_options.buffer_policy = BufferPolicy::kShared;
  const RunStats native = project.execute(shared_options);
  EXPECT_EQ(overridden.results, native.results);
  EXPECT_EQ(overridden.fabric_messages, native.fabric_messages);
}

TEST(SessionTest, TraceCollectionFollowsRequest) {
  core::Project project(make_workspace("cornerturn"));
  ExecuteOptions options;
  options.iterations = 1;
  options.collect_trace = false;
  auto session = project.open_session(options);

  EXPECT_TRUE(session->run().trace.events().empty());
  RunOverrides traced;
  traced.collect_trace = true;
  EXPECT_FALSE(session->run(traced).trace.events().empty());
  // And off again: the reset must clear the event buffers.
  EXPECT_TRUE(session->run().trace.events().empty());
}

TEST(SessionTest, CreateReportsErrorsWithoutThrowing) {
  core::Project project(make_workspace("cornerturn"));
  const codegen::GeneratedArtifacts& artifacts = project.generate();

  // Unknown kernels: the throwing constructor raises, create() reports.
  FunctionRegistry empty;
  EXPECT_THROW(Session(artifacts.config, empty), RuntimeError);
  auto bad = Session::create(artifacts.config, empty);
  ASSERT_FALSE(bad.ok());
  EXPECT_FALSE(static_cast<bool>(bad));
  EXPECT_NE(bad.error().find("kernel"), std::string::npos);

  auto good = Session::create(artifacts.config, standard_registry());
  ASSERT_TRUE(good.ok());
  EXPECT_GT(good.value()->run().iterations, 0);
}

TEST(SessionTest, ProjectTryOpenSessionReportsErrors) {
  core::Project project(make_workspace("fft2d"));
  project.set_registry(FunctionRegistry{});
  auto result = project.try_open_session();
  ASSERT_FALSE(result.ok());
  EXPECT_FALSE(result.error().empty());

  core::Project ok_project(make_workspace("fft2d"));
  auto ok = ok_project.try_open_session();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value()->config().nodes, 2);
}

TEST(SessionTest, ClosedSessionRefusesToRun) {
  core::Project project(make_workspace("cornerturn"));
  auto session = project.open_session();
  EXPECT_FALSE(session->closed());
  session->run();
  session->close();
  EXPECT_TRUE(session->closed());
  EXPECT_THROW(session->run(), RuntimeError);
  session->close();  // idempotent
}

}  // namespace
}  // namespace sage::runtime
