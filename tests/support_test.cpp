#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "support/clock.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace sage::support {
namespace {

// --- rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit
}

TEST(RngTest, BetweenIsInclusive) {
  Rng rng(11);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// --- strings --------------------------------------------------------------------

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitWsDropsEmpty) {
  const auto parts = split_ws("  a \t b\nc ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringsTest, PrefixSuffix) {
  EXPECT_TRUE(starts_with("param_x", "param_"));
  EXPECT_FALSE(starts_with("par", "param_"));
  EXPECT_TRUE(ends_with("file.cfg", ".cfg"));
  EXPECT_FALSE(ends_with("cfg", "file.cfg"));
}

TEST(StringsTest, IntegerParsing) {
  EXPECT_TRUE(is_integer("-42"));
  EXPECT_TRUE(is_integer("+7"));
  EXPECT_FALSE(is_integer("1.5"));
  EXPECT_FALSE(is_integer(""));
  EXPECT_FALSE(is_integer("-"));
  EXPECT_EQ(parse_int("-42"), -42);
  EXPECT_THROW(parse_int("12x"), Error);
}

TEST(StringsTest, DoubleParsing) {
  EXPECT_DOUBLE_EQ(parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e3"), -1000.0);
  EXPECT_THROW(parse_double("abc"), Error);
}

TEST(StringsTest, EscapeRoundTrip) {
  const std::string original = "a\"b\\c\nd\te";
  EXPECT_EQ(unescape(escape(original)), original);
}

TEST(StringsTest, FormatHelpers) {
  EXPECT_EQ(format_seconds(1.5), "1.500 s");
  EXPECT_EQ(format_seconds(0.0123), "12.300 ms");
  EXPECT_EQ(format_seconds(4.2e-6), "4.200 us");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(8ull << 20), "8.0 MiB");
}

// --- clock -----------------------------------------------------------------------

TEST(ClockTest, VirtualClockAdvancesAndJoins) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.advance(-1.0);  // negative durations ignored
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.join(1.0);  // join only moves forward
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.join(2.0);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(ClockTest, ComputeScopeMeasuresWork) {
  VirtualClock clock;
  {
    ComputeScope scope(clock);
    // Burn a little CPU.
    volatile double x = 1.0;
    for (int i = 0; i < 2000000; ++i) x = x * 1.0000001;
  }
  EXPECT_GT(clock.now(), 0.0);
}

TEST(ClockTest, ComputeScopeScalesTime) {
  VirtualClock base, scaled;
  auto burn = [] {
    volatile double x = 1.0;
    for (int i = 0; i < 4000000; ++i) x = x * 1.0000001;
  };
  {
    ComputeScope scope(base, 1.0);
    burn();
  }
  {
    ComputeScope scope(scaled, 10.0);
    burn();
  }
  // The scaled clock should read roughly 10x the base (loose bounds:
  // the two measurements are separate executions).
  EXPECT_GT(scaled.now(), base.now() * 3.0);
}

TEST(ClockTest, ThreadCpuTimeIsPerThread) {
  // A sleeping thread accumulates almost no CPU time.
  const double before = thread_cpu_seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const double after = thread_cpu_seconds();
  EXPECT_LT(after - before, 0.040);
}

// --- logging ---------------------------------------------------------------------

TEST(LogTest, LevelIsSettable) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Suppressed calls must be cheap and side-effect free.
  log_debug("this should be filtered: ", 42);
  log_info("filtered too");
  set_log_level(before);
}

// --- errors ----------------------------------------------------------------------

TEST(ErrorTest, CheckMacroThrowsWithContext) {
  try {
    SAGE_CHECK(1 == 2, "context ", 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

TEST(ErrorTest, TypedErrorsAreDistinct) {
  EXPECT_THROW(raise<ModelError>("m"), ModelError);
  EXPECT_THROW(raise<AlterError>("a"), AlterError);
  EXPECT_THROW(raise<ConfigError>("c"), ConfigError);
  // All derive from Error.
  EXPECT_THROW(raise<CommError>("x"), Error);
}

}  // namespace
}  // namespace sage::support
