// CompiledProgram tests: the serialized plan-blob format (byte-exact
// round trips over random graphs, versioned-header rejection of corrupt
// and truncated blobs, a committed binary golden), the content-addressed
// PlanCache (fail-soft loads, hit/miss provenance), and multi-session
// program sharing (concurrent executors on one immutable program stay
// bit-identical; recover() isolates its private recompile).
//
// Regenerate the golden after an intentional format change:
//
//   SAGE_UPDATE_GOLDEN=1 ./build/tests/program_test
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/benchmarks.hpp"
#include "core/project.hpp"
#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"
#include "runtime/compiler.hpp"
#include "runtime/program.hpp"
#include "runtime/session.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

#ifndef SAGE_GOLDEN_DIR
#error "SAGE_GOLDEN_DIR must be defined by the build"
#endif

namespace sage::runtime {
namespace {

using model::ModelObject;
using model::PortDirection;
using model::Striping;

/// Source whose element value is its global index.
void index_source(KernelContext& ctx) {
  PortSlice& out = ctx.out("out");
  auto data = out.as<float>();
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(out.global_of_local(i));
  }
}

/// Sink reporting slice sum + 1e9 penalty on any misplaced element.
void verify_sink(KernelContext& ctx) {
  const PortSlice& in = ctx.in("in");
  auto data = in.as<float>();
  double acc = 0.0;
  bool ok = true;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] != static_cast<float>(in.global_of_local(i))) ok = false;
    acc += data[i];
  }
  ctx.set_result(ok ? acc : acc + 1e9);
}

FunctionRegistry test_registry() {
  FunctionRegistry registry = standard_registry();
  registry.add("test.index_source", index_source);
  registry.add("test.verify_sink", verify_sink);
  return registry;
}

/// A random identity chain in the random_graph_test mold: random node
/// count, stage count, stripe dims, and thread counts, lowered to a
/// GlueConfig through the real generator.
GlueConfig make_random_chain_config(std::uint64_t seed) {
  support::Rng rng(seed * 7919 + 3);
  const int nodes = rng.chance(0.5) ? 2 : 4;
  const int stages = 1 + static_cast<int>(rng.below(3));
  const std::vector<std::size_t> dims{16, 16};
  auto pick_threads = [&] {
    const int options[] = {1, 2, 4};
    return options[rng.below(3)];
  };
  auto pick_dim = [&] { return static_cast<int>(rng.below(2)); };
  auto add_float_port = [&](ModelObject& fn, const char* name,
                            PortDirection dir, int stripe_dim) {
    model::add_port(fn, name, dir, Striping::kStriped, "float", dims,
                    stripe_dim);
  };

  auto ws = std::make_unique<model::Workspace>("random");
  ModelObject& root = ws->root();
  model::add_cspi_platform(root, nodes);
  ModelObject& app = model::add_application(root, "chain");
  ModelObject& mapping = model::add_mapping(root, "mapping", "cspi");
  auto assign_all = [&](const std::string& fn, int threads) {
    std::vector<int> ranks;
    for (int t = 0; t < threads; ++t) ranks.push_back(t % nodes);
    model::assign_ranks(root, mapping, fn, ranks);
  };

  const int src_threads = pick_threads();
  ModelObject& src =
      model::add_function(app, "src", "test.index_source", src_threads);
  src.set_property("role", "source");
  add_float_port(src, "out", PortDirection::kOut, pick_dim());
  assign_all("src", src_threads);

  std::string prev = "src";
  for (int s = 0; s < stages; ++s) {
    const std::string name = "stage" + std::to_string(s);
    const int threads = pick_threads();
    ModelObject& fn = model::add_function(app, name, "identity", threads);
    const int dim = pick_dim();
    add_float_port(fn, "in", PortDirection::kIn, dim);
    add_float_port(fn, "out", PortDirection::kOut, dim);
    model::connect(app, prev + ".out", name + ".in");
    assign_all(name, threads);
    prev = name;
  }

  const int sink_threads = pick_threads();
  ModelObject& sink =
      model::add_function(app, "sink", "test.verify_sink", sink_threads);
  sink.set_property("role", "sink");
  add_float_port(sink, "in", PortDirection::kIn, pick_dim());
  model::connect(app, prev + ".out", "sink.in");
  assign_all("sink", sink_threads);

  ws->validate_or_throw();
  core::Project project(std::move(ws));
  return project.generate().config;
}

GlueConfig make_cornerturn_config() {
  core::Project project(apps::make_cornerturn_workspace(64, 2));
  return project.generate().config;
}

ExecuteOptions quiet_options() {
  ExecuteOptions options;
  options.iterations = 2;
  options.collect_trace = false;
  return options;
}

/// The blob's own checksum primitive, reimplemented so reject tests can
/// re-seal a tampered blob (to prove the *field* checks fire, not just
/// the checksum).
std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Recomputes and patches the trailing whole-blob checksum.
std::string reseal(std::string blob) {
  const std::uint64_t sum = fnv1a(std::string_view(blob).substr(
      0, blob.size() - sizeof(std::uint64_t)));
  std::memcpy(blob.data() + blob.size() - sizeof sum, &sum, sizeof sum);
  return blob;
}

// --- serialization: round trip ---------------------------------------------

class ProgramSerializeTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ProgramSerializeTest, ::testing::Range(0, 8));

TEST_P(ProgramSerializeTest, RandomGraphRoundTripIsByteExact) {
  const GlueConfig config =
      make_random_chain_config(static_cast<std::uint64_t>(GetParam()));
  const FunctionRegistry registry = test_registry();
  const auto program = Compiler::compile(config, registry);
  ASSERT_NE(program, nullptr);
  EXPECT_NE(program->fingerprint, 0u);

  const std::string blob = program->serialize();
  const auto restored = CompiledProgram::deserialize(blob);
  ASSERT_NE(restored, nullptr);

  // The round-trip property the plan cache rests on: serializing the
  // deserialized program reproduces the blob byte for byte.
  EXPECT_EQ(restored->serialize(), blob) << "seed " << GetParam();

  // Structural spot checks (the byte equality already implies these,
  // but failures here localize a divergence).
  EXPECT_EQ(restored->fingerprint, program->fingerprint);
  EXPECT_EQ(serialize(restored->config), serialize(program->config));
  EXPECT_EQ(restored->buffers.size(), program->buffers.size());
  EXPECT_EQ(restored->ops.size(), program->ops.size());
  EXPECT_EQ(restored->slot_base, program->slot_base);
  EXPECT_EQ(restored->total_staging_slots, program->total_staging_slots);
  EXPECT_EQ(restored->total_logical_slots, program->total_logical_slots);
  EXPECT_EQ(restored->fn_thread_base, program->fn_thread_base);
  EXPECT_EQ(restored->recv_ops_of, program->recv_ops_of);
  EXPECT_EQ(restored->send_ops_of, program->send_ops_of);
}

TEST(ProgramSerializeTest, SerializationIsDeterministic) {
  const GlueConfig config = make_cornerturn_config();
  const FunctionRegistry registry = standard_registry();
  EXPECT_EQ(Compiler::compile(config, registry)->serialize(),
            Compiler::compile(config, registry)->serialize());
}

TEST(ProgramSerializeTest, ProvenanceIsNotPartOfTheBlob) {
  // compile_seconds / cache_outcome are process-local provenance; two
  // programs differing only there must serialize identically.
  const GlueConfig config = make_cornerturn_config();
  const auto program = Compiler::compile(config, standard_registry());
  auto stamped = std::make_shared<CompiledProgram>(*program);
  stamped->compile_seconds = 123.0;
  stamped->cache_outcome = PlanCacheOutcome::kHit;
  EXPECT_EQ(stamped->serialize(), program->serialize());
}

// --- serialization: versioned-header rejection ------------------------------

TEST(ProgramSerializeTest, RejectsTruncatedBlob) {
  const std::string blob =
      Compiler::lower(make_cornerturn_config())->serialize();
  // Every proper prefix must be rejected at one of the layers: the
  // minimum-size check, the checksum, or a bounds-checked field read.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{7}, std::size_t{15}, std::size_t{40},
        blob.size() / 2, blob.size() - 1}) {
    EXPECT_THROW(CompiledProgram::deserialize(
                     std::string_view(blob).substr(0, len)),
                 RuntimeError)
        << "prefix of " << len << " bytes was accepted";
  }
}

TEST(ProgramSerializeTest, RejectsBadMagic) {
  std::string blob = Compiler::lower(make_cornerturn_config())->serialize();
  blob[0] = 'X';
  EXPECT_THROW(CompiledProgram::deserialize(blob), RuntimeError);
}

TEST(ProgramSerializeTest, RejectsUnsupportedFormatVersion) {
  std::string blob = Compiler::lower(make_cornerturn_config())->serialize();
  // The u32 format version sits right after the 8-byte magic. Bump it
  // and re-seal the checksum so the *version* check is what fires.
  blob[8] = static_cast<char>(blob[8] + 1);
  EXPECT_THROW(CompiledProgram::deserialize(reseal(std::move(blob))),
               RuntimeError);
}

TEST(ProgramSerializeTest, RejectsFlippedByteAnywhere) {
  const std::string blob =
      Compiler::lower(make_cornerturn_config())->serialize();
  // A single flipped bit in the header, a length field, or deep inside
  // an array payload must fail the whole-blob checksum.
  for (const std::size_t pos :
       {std::size_t{9}, std::size_t{20}, blob.size() / 3, blob.size() / 2,
        blob.size() - 9}) {
    std::string corrupt = blob;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    EXPECT_THROW(CompiledProgram::deserialize(corrupt), RuntimeError)
        << "flip at offset " << pos << " was accepted";
  }
}

TEST(ProgramSerializeTest, RejectsTrailingGarbage) {
  std::string blob = Compiler::lower(make_cornerturn_config())->serialize();
  blob += "extra";
  EXPECT_THROW(CompiledProgram::deserialize(blob), RuntimeError);
}

// --- serialization: binary golden -------------------------------------------

bool update_goldens() {
  const char* env = std::getenv("SAGE_UPDATE_GOLDEN");
  return env != nullptr && *env != '\0' && *env != '0';
}

TEST(ProgramGoldenTest, CornerturnPlanBlobMatchesGolden) {
  // The blob format is host-specific (size_t width, endianness), so the
  // golden pins the layout only on the 64-bit little-endian hosts the
  // suite runs on.
  const std::uint16_t probe = 1;
  if (sizeof(std::size_t) != 8 ||
      *reinterpret_cast<const std::uint8_t*>(&probe) != 1) {
    GTEST_SKIP() << "golden is 64-bit little-endian";
  }

  // Lowered (fingerprint 0) so the golden does not depend on the
  // standard registry's kernel roster.
  const std::string actual =
      Compiler::lower(make_cornerturn_config())->serialize();
  const std::string path =
      std::string(SAGE_GOLDEN_DIR) + "/cornerturn_64x2.plan";

  if (update_goldens()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_LOG_(INFO) << "updated golden " << path;
    return;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "cannot read golden " << path
                         << " (set SAGE_UPDATE_GOLDEN=1 to (re)generate)";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();

  if (actual == expected) {
    // And the committed bytes must still deserialize + round-trip.
    EXPECT_EQ(CompiledProgram::deserialize(expected)->serialize(), expected);
    return;
  }
  std::size_t off = 0;
  while (off < actual.size() && off < expected.size() &&
         actual[off] == expected[off]) {
    ++off;
  }
  ADD_FAILURE() << "plan blob diverges from golden at byte " << off
                << " (golden " << expected.size() << " bytes, actual "
                << actual.size()
                << "); bump kPlanFormatVersion for layout changes and "
                   "regenerate with SAGE_UPDATE_GOLDEN=1";
}

// --- plan cache -------------------------------------------------------------

/// Fresh scratch directory under the build tree, removed on scope exit.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_("program_test_scratch_" + name) {
    std::filesystem::remove_all(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(PlanCacheTest, StoreThenLoadRoundTrips) {
  const ScratchDir dir("store_load");
  const GlueConfig config = make_cornerturn_config();
  const FunctionRegistry registry = standard_registry();
  const auto program = Compiler::compile(config, registry);
  const std::uint64_t key = Compiler::fingerprint(config, registry);
  EXPECT_EQ(key, program->fingerprint);

  const PlanCache cache(dir.path());
  EXPECT_EQ(cache.load(key), nullptr);  // empty cache: miss, no error
  ASSERT_TRUE(cache.store(key, *program));
  EXPECT_TRUE(std::filesystem::exists(cache.path_of(key)));

  const auto loaded = cache.load(key);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->serialize(), program->serialize());
}

TEST(PlanCacheTest, CorruptOrTruncatedEntryIsAMissNotAnError) {
  const ScratchDir dir("corrupt");
  const GlueConfig config = make_cornerturn_config();
  const FunctionRegistry registry = standard_registry();
  const auto program = Compiler::compile(config, registry);
  const std::uint64_t key = program->fingerprint;
  const PlanCache cache(dir.path());
  ASSERT_TRUE(cache.store(key, *program));

  // Truncate the entry on disk: load must fail soft.
  const std::string path = cache.path_of(key);
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  EXPECT_EQ(cache.load(key), nullptr);

  // Replace it with garbage of plausible size: still a miss.
  std::ofstream(path, std::ios::binary) << std::string(4096, 'x');
  EXPECT_EQ(cache.load(key), nullptr);
}

TEST(PlanCacheTest, MismatchedKeyIsAMiss) {
  // An entry renamed (or hash-collided) onto the wrong key must not be
  // served: the blob's own fingerprint has to match the key asked for.
  const ScratchDir dir("wrong_key");
  const GlueConfig config = make_cornerturn_config();
  const FunctionRegistry registry = standard_registry();
  const auto program = Compiler::compile(config, registry);
  const PlanCache cache(dir.path());
  const std::uint64_t wrong = program->fingerprint ^ 1u;
  ASSERT_TRUE(cache.store(wrong, *program));
  EXPECT_EQ(cache.load(wrong), nullptr);
}

TEST(PlanCacheTest, FingerprintTracksConfigAndRegistry) {
  const GlueConfig cornerturn = make_cornerturn_config();
  const FunctionRegistry registry = standard_registry();
  EXPECT_EQ(Compiler::fingerprint(cornerturn, registry),
            Compiler::fingerprint(cornerturn, registry));

  core::Project fft(apps::make_fft2d_workspace(64, 2));
  EXPECT_NE(Compiler::fingerprint(fft.generate().config, registry),
            Compiler::fingerprint(cornerturn, registry));

  EXPECT_NE(Compiler::fingerprint(cornerturn, test_registry()),
            Compiler::fingerprint(cornerturn, registry));
}

TEST(PlanCacheTest, ConcurrentCompileOrLoadStoresExactlyOnce) {
  // Two threads race compile_or_load on one key. The cache must end up
  // with exactly one entry (no temp residue -- writer-unique temp names
  // plus the already-stored pre-check make stores idempotent), and both
  // threads must hold byte-identical programs.
  const ScratchDir dir("concurrent");
  const GlueConfig config = make_cornerturn_config();
  const FunctionRegistry registry = standard_registry();
  const std::uint64_t key = Compiler::fingerprint(config, registry);

  std::array<std::shared_ptr<const CompiledProgram>, 2> programs;
  std::atomic<int> ready{0};
  std::array<std::thread, 2> racers;
  for (std::size_t t = 0; t < racers.size(); ++t) {
    racers[t] = std::thread([&, t] {
      ready.fetch_add(1);
      while (ready.load() < 2) {
      }  // line both threads up on the same race window
      programs[t] = compile_or_load(config, registry, dir.path());
    });
  }
  for (std::thread& racer : racers) racer.join();

  ASSERT_NE(programs[0], nullptr);
  ASSERT_NE(programs[1], nullptr);
  EXPECT_EQ(programs[0]->fingerprint, key);
  EXPECT_EQ(programs[1]->fingerprint, key);
  EXPECT_EQ(programs[0]->serialize(), programs[1]->serialize());

  // Exactly one store: the one .plan entry, zero temp files left over.
  int plans = 0;
  int residue = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    if (entry.path().extension() == ".plan") {
      ++plans;
    } else {
      ++residue;
    }
  }
  EXPECT_EQ(plans, 1);
  EXPECT_EQ(residue, 0);
  const auto cached = PlanCache(dir.path()).load(key);
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(cached->serialize(), programs[0]->serialize());
}

TEST(PlanCacheTest, StoreIsFailSoftAroundCorruptTempAndEntries) {
  const ScratchDir dir("fail_soft");
  const GlueConfig config = make_cornerturn_config();
  const FunctionRegistry registry = standard_registry();
  const auto program = Compiler::compile(config, registry);
  const std::uint64_t key = program->fingerprint;
  const PlanCache cache(dir.path());

  // A crashed writer's corrupted temp file (the pre-fix fixed-suffix
  // name) must not poison a later store: unique temp names never touch
  // it, and the stored entry round-trips clean.
  std::filesystem::create_directories(dir.path());
  std::ofstream(cache.path_of(key) + ".tmp", std::ios::binary)
      << std::string(512, 'x');
  ASSERT_TRUE(cache.store(key, *program));
  const auto loaded = cache.load(key);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->serialize(), program->serialize());

  // A corrupted *entry* reads as a miss, and the next compile_or_load
  // repairs it in place (the pre-check skips only *valid* entries).
  std::ofstream(cache.path_of(key), std::ios::binary | std::ios::trunc)
      << std::string(4096, 'y');
  EXPECT_EQ(cache.load(key), nullptr);
  const auto repaired = compile_or_load(config, registry, dir.path());
  EXPECT_EQ(repaired->cache_outcome, PlanCacheOutcome::kMiss);
  const auto healthy = cache.load(key);
  ASSERT_NE(healthy, nullptr);
  EXPECT_EQ(healthy->serialize(), repaired->serialize());

  // Storing over a valid entry is an idempotent no-op that reports
  // success.
  EXPECT_TRUE(cache.store(key, *program));
  EXPECT_NE(cache.load(key), nullptr);
}

TEST(PlanCacheTest, CompileOrLoadStampsProvenance) {
  const ScratchDir dir("provenance");
  const GlueConfig config = make_cornerturn_config();
  const FunctionRegistry registry = standard_registry();

  const auto direct = compile_or_load(config, registry, "");
  EXPECT_EQ(direct->cache_outcome, PlanCacheOutcome::kNotConsulted);
  EXPECT_FALSE(direct->from_cache());
  EXPECT_GT(direct->compile_seconds, 0.0);

  const auto miss = compile_or_load(config, registry, dir.path());
  EXPECT_EQ(miss->cache_outcome, PlanCacheOutcome::kMiss);
  EXPECT_TRUE(std::filesystem::exists(
      PlanCache(dir.path()).path_of(miss->fingerprint)));

  const auto hit = compile_or_load(config, registry, dir.path());
  EXPECT_EQ(hit->cache_outcome, PlanCacheOutcome::kHit);
  EXPECT_TRUE(hit->from_cache());
  EXPECT_EQ(hit->fingerprint, miss->fingerprint);
  EXPECT_EQ(hit->serialize(), miss->serialize());
}

// --- execution equivalence and sharing --------------------------------------

/// The deterministic slice of a run: sink checksums and fabric totals
/// (virtual times are measured from host time and excluded).
struct RunDigest {
  std::map<std::string, std::vector<double>> results;
  std::uint64_t fabric_messages = 0;
  std::uint64_t fabric_bytes = 0;

  bool operator==(const RunDigest&) const = default;
};

RunDigest digest(const RunStats& stats) {
  return {stats.results, stats.fabric_messages, stats.fabric_bytes};
}

TEST(ProgramSharingTest, TwoSessionsOneProgramRunConcurrentlyBitIdentical) {
  const GlueConfig config = make_cornerturn_config();
  const FunctionRegistry registry = standard_registry();
  const auto program = Compiler::compile(config, registry);

  // Reference: a solo session on a private compile of the same config.
  Session reference(config, registry, quiet_options());
  const RunDigest expected = digest(reference.run());

  Session a(program, registry, quiet_options());
  Session b(program, registry, quiet_options());
  EXPECT_EQ(a.program_ptr(), b.program_ptr());
  EXPECT_GE(program.use_count(), 3);  // both executors share, never copy

  // Each session is driven by its own host thread; the shared program
  // is read-only, which is exactly what TSan checks here.
  constexpr int kRuns = 2;
  std::vector<RunDigest> from_a(kRuns);
  std::vector<RunDigest> from_b(kRuns);
  std::thread ta([&] {
    for (int r = 0; r < kRuns; ++r) from_a[r] = digest(a.run());
  });
  std::thread tb([&] {
    for (int r = 0; r < kRuns; ++r) from_b[r] = digest(b.run());
  });
  ta.join();
  tb.join();

  for (int r = 0; r < kRuns; ++r) {
    EXPECT_EQ(from_a[r], expected) << "session a, run " << r;
    EXPECT_EQ(from_b[r], expected) << "session b, run " << r;
  }
}

TEST(ProgramSharingTest, ProgramIsImmutableAcrossRuns) {
  const GlueConfig config = make_cornerturn_config();
  const FunctionRegistry registry = standard_registry();
  const auto program = Compiler::compile(config, registry);
  const std::string before = program->serialize();

  Session session(program, registry, quiet_options());
  session.run();
  session.run();
  EXPECT_EQ(program->serialize(), before)
      << "executing a session mutated the shared program";
}

TEST(ProgramSharingTest, CacheHitSessionMatchesCacheMissSession) {
  const ScratchDir dir("hit_vs_miss");
  const GlueConfig config = make_cornerturn_config();
  const FunctionRegistry registry = standard_registry();

  ExecuteOptions options = quiet_options();
  options.plan_cache_dir = dir.path();

  Session miss(config, registry, options);
  ASSERT_EQ(miss.program().cache_outcome, PlanCacheOutcome::kMiss);
  Session hit(config, registry, options);
  ASSERT_EQ(hit.program().cache_outcome, PlanCacheOutcome::kHit);
  Session off(config, registry, quiet_options());
  ASSERT_EQ(off.program().cache_outcome, PlanCacheOutcome::kNotConsulted);

  const RunDigest from_miss = digest(miss.run());
  EXPECT_EQ(digest(hit.run()), from_miss);
  EXPECT_EQ(digest(off.run()), from_miss);
}

TEST(ProgramSharingTest, DeserializedProgramExecutesIdentically) {
  const GlueConfig config = make_cornerturn_config();
  const FunctionRegistry registry = standard_registry();
  const auto program = Compiler::compile(config, registry);

  Session original(program, registry, quiet_options());
  const RunDigest expected = digest(original.run());

  const auto restored = CompiledProgram::deserialize(program->serialize());
  Session session(restored, registry, quiet_options());
  EXPECT_EQ(digest(session.run()), expected);
}

TEST(ProgramSharingTest, RecoverCompilesAPrivateProgram) {
  const GlueConfig config = make_cornerturn_config();
  const FunctionRegistry registry = standard_registry();
  const auto program = Compiler::compile(config, registry);

  Session untouched(program, registry, quiet_options());
  const RunDigest expected = digest(untouched.run());

  Session degraded(program, registry, quiet_options());
  degraded.recover({1});

  // recover() swaps in a session-private recompile; the shared program
  // and its co-executors are unaffected.
  EXPECT_NE(degraded.program_ptr(), program);
  EXPECT_EQ(degraded.program().fingerprint, 0u);
  EXPECT_EQ(untouched.program_ptr(), program);
  EXPECT_EQ(program->serialize(),
            Compiler::compile(config, registry)->serialize());

  degraded.run();  // degraded placement still executes
  EXPECT_EQ(digest(untouched.run()), expected)
      << "co-executor drifted after a sibling's recover()";
}

TEST(ProgramSharingTest, CompileMetricsSurfaceInRunStats) {
  const ScratchDir dir("metrics");
  const GlueConfig config = make_cornerturn_config();
  const FunctionRegistry registry = standard_registry();

  ExecuteOptions options = quiet_options();
  options.plan_cache_dir = dir.path();
  Session miss(config, registry, options);
  const RunStats stats = miss.run();

  const viz::MetricValue* compile =
      stats.metrics.find(viz::families::kProgramCompileSeconds);
  ASSERT_NE(compile, nullptr);
  EXPECT_GT(compile->value, 0.0);
  EXPECT_TRUE(compile->time_based);

  const viz::MetricValue* lookup =
      stats.metrics.find(viz::families::kPlanCacheLookups,
                         {{"outcome", "miss"}});
  ASSERT_NE(lookup, nullptr);
  EXPECT_GT(lookup->value, 0.0);
  EXPECT_TRUE(lookup->time_based);

  Session hit(config, registry, options);
  const RunStats hit_stats = hit.run();
  EXPECT_NE(hit_stats.metrics.find(viz::families::kPlanCacheLookups,
                                   {{"outcome", "hit"}}),
            nullptr);

  // Cache-less sessions define no lookup series at all.
  Session off(config, registry, quiet_options());
  EXPECT_EQ(off.run().metrics.find(viz::families::kPlanCacheLookups), nullptr);

  // Both families are time-based: the deterministic subset -- the
  // cross-session bit-identity surface -- must not contain them.
  const viz::MetricsSnapshot det = stats.metrics.deterministic_subset();
  EXPECT_EQ(det.find(viz::families::kProgramCompileSeconds), nullptr);
  EXPECT_EQ(det.find(viz::families::kPlanCacheLookups), nullptr);
}

}  // namespace
}  // namespace sage::runtime
