// Golden-file tests pinning the Alter glue-code generator's output --
// the function table and logical buffer definitions (glue.cfg and the
// illustrative glue.c) -- for the quickstart and radar example
// pipelines. Any intentional change to the generator's emission must be
// reviewed by regenerating the goldens:
//
//   SAGE_UPDATE_GOLDEN=1 ./build/tests/codegen_golden_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "alter/interp.hpp"
#include "apps/benchmarks.hpp"
#include "codegen/generator.hpp"
#include "codegen/generator_program.hpp"
#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"
#include "support/error.hpp"

#ifndef SAGE_GOLDEN_DIR
#error "SAGE_GOLDEN_DIR must be defined by the build"
#endif

namespace sage {
namespace {

using model::ModelObject;

/// The quickstart example's design: src -> row FFT -> sink on a 256x256
/// complex matrix, four nodes, one thread of each function per node.
std::unique_ptr<model::Workspace> make_quickstart_workspace() {
  auto workspace = std::make_unique<model::Workspace>("quickstart");
  ModelObject& root = workspace->root();
  model::add_cspi_platform(root, 4);

  ModelObject& app = model::add_application(root, "quickstart_app");
  const std::vector<std::size_t> dims{256, 256};

  ModelObject& src = model::add_function(app, "src", "matrix_source", 4);
  src.set_property("role", "source");
  model::add_port(src, "out", model::PortDirection::kOut,
                  model::Striping::kStriped, "cfloat", dims, 0);

  ModelObject& fft =
      model::add_function(app, "fft", "isspl.fft_rows", 4, 256 * 256 * 10.0);
  model::add_port(fft, "in", model::PortDirection::kIn,
                  model::Striping::kStriped, "cfloat", dims, 0);
  model::add_port(fft, "out", model::PortDirection::kOut,
                  model::Striping::kStriped, "cfloat", dims, 0);

  ModelObject& sink = model::add_function(app, "sink", "matrix_sink", 4);
  sink.set_property("role", "sink");
  model::add_port(sink, "in", model::PortDirection::kIn,
                  model::Striping::kStriped, "cfloat", dims, 0);

  model::connect(app, "src.out", "fft.in");
  model::connect(app, "fft.out", "sink.in");

  ModelObject& mapping = model::add_mapping(root, "mapping", "cspi");
  for (const char* fn : {"src", "fft", "sink"}) {
    model::assign_ranks(root, mapping, fn, {0, 1, 2, 3});
  }
  return workspace;
}

/// The radar example's design: the eight-stage range-Doppler chain on a
/// 256x512 pulse cube over eight nodes, corner turn via port striping.
std::unique_ptr<model::Workspace> make_radar_workspace() {
  constexpr std::size_t kPulses = 256;
  constexpr std::size_t kRange = 512;
  constexpr int kNodes = 8;

  auto workspace = std::make_unique<model::Workspace>("radar");
  ModelObject& root = workspace->root();
  model::add_cspi_platform(root, kNodes);

  ModelObject& app = model::add_application(root, "range_doppler");
  const std::vector<std::size_t> cube{kPulses, kRange};
  const std::vector<std::size_t> turned{kRange, kPulses};

  auto add_stage = [&](const char* name, const char* kernel,
                       const char* in_type, const char* out_type,
                       std::vector<std::size_t> in_dims,
                       std::vector<std::size_t> out_dims, int in_stripe_dim,
                       int out_stripe_dim, double work) -> ModelObject& {
    ModelObject& fn = model::add_function(app, name, kernel, kNodes, work);
    model::add_port(fn, "in", model::PortDirection::kIn,
                    model::Striping::kStriped, in_type, std::move(in_dims),
                    in_stripe_dim);
    model::add_port(fn, "out", model::PortDirection::kOut,
                    model::Striping::kStriped, out_type, std::move(out_dims),
                    out_stripe_dim);
    return fn;
  };

  ModelObject& src = model::add_function(app, "pulses", "matrix_source",
                                         kNodes);
  src.set_property("role", "source");
  model::add_port(src, "out", model::PortDirection::kOut,
                  model::Striping::kStriped, "cfloat", cube, 0);

  ModelObject& window =
      add_stage("window", "isspl.window_rows", "cfloat", "cfloat", cube, cube,
                0, 0, kPulses * kRange * 2.0);
  window.set_property("param_window", 2.0);

  add_stage("range_fft", "isspl.fft_rows", "cfloat", "cfloat", cube, cube, 0,
            0, kPulses * kRange * 10.0);
  add_stage("corner_turn", "isspl.corner_turn_local", "cfloat", "cfloat",
            cube, turned, 1, 0, kPulses * kRange * 1.0);
  add_stage("doppler_fft", "isspl.fft_rows", "cfloat", "cfloat", turned,
            turned, 0, 0, kPulses * kRange * 10.0);
  add_stage("magnitude", "isspl.magnitude", "cfloat", "float", turned, turned,
            0, 0, kPulses * kRange * 2.0);

  ModelObject& threshold =
      add_stage("threshold", "isspl.threshold", "float", "float", turned,
                turned, 0, 0, kPulses * kRange * 1.0);
  threshold.set_property("param_cutoff", 40.0);

  ModelObject& sink =
      model::add_function(app, "detections", "float_sink", kNodes);
  sink.set_property("role", "sink");
  model::add_port(sink, "in", model::PortDirection::kIn,
                  model::Striping::kStriped, "float", turned, 0);

  model::connect(app, "pulses.out", "window.in");
  model::connect(app, "window.out", "range_fft.in");
  model::connect(app, "range_fft.out", "corner_turn.in");
  model::connect(app, "corner_turn.out", "doppler_fft.in");
  model::connect(app, "doppler_fft.out", "magnitude.in");
  model::connect(app, "magnitude.out", "threshold.in");
  model::connect(app, "threshold.out", "detections.in");

  ModelObject& mapping = model::add_mapping(root, "mapping", "cspi");
  std::vector<int> ranks;
  for (int r = 0; r < kNodes; ++r) ranks.push_back(r);
  for (const char* fn : {"pulses", "window", "range_fft", "corner_turn",
                         "doppler_fft", "magnitude", "threshold",
                         "detections"}) {
    model::assign_ranks(root, mapping, fn, ranks);
  }
  return workspace;
}

std::string golden_path(const std::string& name) {
  return std::string(SAGE_GOLDEN_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SAGE_CHECK(in.good(), "cannot read golden file ", path,
             " (set SAGE_UPDATE_GOLDEN=1 to (re)generate)");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool update_goldens() {
  const char* env = std::getenv("SAGE_UPDATE_GOLDEN");
  return env != nullptr && *env != '\0' && *env != '0';
}

/// Compares `actual` against the committed golden, or rewrites the
/// golden when SAGE_UPDATE_GOLDEN is set. Diffs are reported line by
/// line so a generator change is reviewable from the test log.
void expect_matches_golden(const std::string& actual,
                           const std::string& name) {
  const std::string path = golden_path(name);
  if (update_goldens()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_LOG_(INFO) << "updated golden " << path;
    return;
  }
  const std::string expected = read_file(path);
  if (actual == expected) return;

  std::istringstream actual_lines(actual);
  std::istringstream expected_lines(expected);
  std::string a;
  std::string e;
  int line = 0;
  while (true) {
    const bool have_a = static_cast<bool>(std::getline(actual_lines, a));
    const bool have_e = static_cast<bool>(std::getline(expected_lines, e));
    ++line;
    if (!have_a && !have_e) break;
    if (!have_a || !have_e || a != e) {
      ADD_FAILURE() << name << " diverges from golden at line " << line
                    << "\n  golden: " << (have_e ? e : "<end of file>")
                    << "\n  actual: " << (have_a ? a : "<end of file>");
      return;
    }
  }
  ADD_FAILURE() << name << " differs from golden (whitespace-only change?)";
}

TEST(CodegenGoldenTest, QuickstartGlueConfig) {
  auto ws = make_quickstart_workspace();
  const codegen::GeneratedArtifacts artifacts = codegen::generate_glue(*ws);
  expect_matches_golden(artifacts.glue_config_text(), "quickstart_glue.cfg");
}

TEST(CodegenGoldenTest, QuickstartGlueSource) {
  auto ws = make_quickstart_workspace();
  const codegen::GeneratedArtifacts artifacts = codegen::generate_glue(*ws);
  expect_matches_golden(artifacts.glue_source_text(), "quickstart_glue.c");
}

TEST(CodegenGoldenTest, RadarGlueConfig) {
  auto ws = make_radar_workspace();
  const codegen::GeneratedArtifacts artifacts = codegen::generate_glue(*ws);
  expect_matches_golden(artifacts.glue_config_text(), "radar_glue.cfg");
}

TEST(CodegenGoldenTest, RadarGlueSource) {
  auto ws = make_radar_workspace();
  const codegen::GeneratedArtifacts artifacts = codegen::generate_glue(*ws);
  expect_matches_golden(artifacts.glue_source_text(), "radar_glue.c");
}

// Differential matrix: every golden design's glue generation must emit
// byte-identical streams from the bytecode VM (the generate_glue path)
// and from the tree-walking reference evaluator. This is the contract
// that let the VM replace the tree-walker without regolding anything.
TEST(CodegenGoldenTest, VmAndTreeWalkEmitIdenticalStreams) {
  struct Case {
    const char* name;
    std::unique_ptr<model::Workspace> workspace;
  };
  std::vector<Case> cases;
  cases.push_back({"quickstart", make_quickstart_workspace()});
  cases.push_back({"radar", make_radar_workspace()});
  cases.push_back({"fft2d", apps::make_fft2d_workspace(64, 4)});
  cases.push_back({"cornerturn", apps::make_cornerturn_workspace(64, 2)});

  for (Case& c : cases) {
    // VM path (the production pipeline, memoized chunk).
    const codegen::GeneratedArtifacts artifacts =
        codegen::generate_glue(*c.workspace);

    // Reference path: the original tree-walking evaluator.
    alter::Interpreter tree(alter::Interpreter::Mode::kTreeWalk);
    tree.attach_model(c.workspace->root());
    tree.eval_string(codegen::glue_generator_source());

    ASSERT_EQ(artifacts.outputs.size(), tree.outputs().size()) << c.name;
    for (const auto& [stream, text] : artifacts.outputs) {
      ASSERT_TRUE(tree.outputs().contains(stream)) << c.name << "/" << stream;
      EXPECT_EQ(text, tree.outputs().at(stream)) << c.name << "/" << stream;
    }
  }
}

TEST(CodegenGoldenTest, GenerationIsDeterministic) {
  auto a = make_radar_workspace();
  auto b = make_radar_workspace();
  const codegen::GeneratedArtifacts first = codegen::generate_glue(*a);
  const codegen::GeneratedArtifacts second = codegen::generate_glue(*b);
  EXPECT_EQ(first.outputs, second.outputs);
}

}  // namespace
}  // namespace sage
