// Cross-backend transport suite: the same CompiledProgram must produce
// bit-identical results over the in-process fabric, the shared-memory
// rings between forked node processes, and the TCP loopback mesh --
// fresh and warm, clean and under an active FaultPlan. Plus the
// Fabric::reset() contract regression tests (a warm re-run after a
// faulted run reports zeroed counters, never carried-over ones) and the
// kill -9 drill: SIGKILL of a real shmem node process surfaces as
// CommError and hands off to the existing recover() machinery.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apps/benchmarks.hpp"
#include "core/project.hpp"
#include "net/fabric.hpp"
#include "net/fault.hpp"
#include "net/transport.hpp"
#include "runtime/session.hpp"
#include "support/error.hpp"

#ifdef __linux__
#include <signal.h>
#endif

namespace sage {
namespace {

using net::TransportKind;
using runtime::ExecuteOptions;
using runtime::RunOverrides;
using runtime::RunStats;

// --- unit coverage ----------------------------------------------------------

TEST(TransportKindTest, ParseRoundTripsEveryBackend) {
  for (const TransportKind kind :
       {TransportKind::kInProc, TransportKind::kShmem, TransportKind::kTcp}) {
    const auto parsed = net::parse_transport_kind(net::to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(net::parse_transport_kind("carrier-pigeon").has_value());
  EXPECT_FALSE(net::parse_transport_kind("").has_value());
}

TEST(TransportKindTest, ParcelMetaRoundTrips) {
  net::BufferPool pool;
  net::Parcel parcel;
  parcel.src = 3;
  parcel.tag = 0x7fff0001;
  parcel.arrival_vt = 1.25e-3;
  parcel.fault = net::FaultKind::kCorrupt;
  parcel.attempt = 2;
  const std::string body = "payload-bytes";
  parcel.payload = pool.copy_of(std::as_bytes(std::span(body)));

  std::vector<std::byte> meta(net::kParcelMetaBytes);
  const std::uint64_t h1 = net::encode_parcel_meta(parcel, meta);
  const std::uint64_t h2 =
      net::fnv1a_accum(net::kFnvOffsetBasis, meta.data(), meta.size());
  EXPECT_EQ(h1, h2);

  net::Parcel out;
  const std::size_t promised = net::decode_parcel_meta(meta, out);
  EXPECT_EQ(promised, body.size());
  EXPECT_EQ(out.src, parcel.src);
  EXPECT_EQ(out.tag, parcel.tag);
  EXPECT_EQ(out.arrival_vt, parcel.arrival_vt);
  EXPECT_EQ(out.fault, parcel.fault);
  EXPECT_EQ(out.attempt, parcel.attempt);
}

// --- cross-backend bit-identity matrix --------------------------------------
// fft2d + cornerturn x {inproc, shmem, tcp} x {fresh, warm} x {clean,
// FaultPlan}: identical sink checksums and identical deterministic
// counters everywhere. The fabric computes arrival times, fault
// verdicts, and stats before the transport moves a byte, so nothing
// may vary with the mechanism.

std::unique_ptr<model::Workspace> make_workspace(const std::string& app) {
  if (app == "fft2d") return apps::make_fft2d_workspace(64, 2);
  return apps::make_cornerturn_workspace(64, 2);
}

std::shared_ptr<const net::FaultPlan> chaos_plan() {
  return std::make_shared<const net::FaultPlan>(net::FaultPlan::parse(
      "fault-plan 1\n"
      "seed 42\n"
      "drop link=* p=0.25\n"
      "corrupt link=* p=0.25 bytes=4\n"
      "delay link=* p=0.25 vt=1e-4\n"));
}

ExecuteOptions matrix_options(TransportKind kind, bool faulty) {
  ExecuteOptions options;
  options.iterations = 3;
  options.collect_trace = false;
  options.recv_timeout_s = 30.0;
  options.transport.kind = kind;
  // Small rings force large frames (the 64x64 complex matrix payloads)
  // to stream through in chunks -- the chunking path is always on.
  options.transport.shmem_ring_bytes = 4096;
  if (faulty) options.fault_plan = chaos_plan();
  return options;
}

/// The deterministic signature of one run: everything that must be
/// bit-identical across backends.
struct RunSignature {
  std::map<std::string, std::vector<double>> results;
  std::uint64_t fabric_messages = 0;
  std::uint64_t fabric_bytes = 0;
  runtime::FaultStats faults;

  bool operator==(const RunSignature&) const = default;
};

RunSignature signature_of(const RunStats& stats) {
  return {stats.results, stats.fabric_messages, stats.fabric_bytes,
          stats.faults};
}

struct MatrixCase {
  std::string app;
  bool faulty = false;
};

std::string matrix_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  return info.param.app + (info.param.faulty ? "_faultplan" : "_clean");
}

class TransportMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(TransportMatrixTest, BackendsProduceBitIdenticalRuns) {
  const MatrixCase& param = GetParam();

  // Reference: the historical in-process path.
  std::vector<RunSignature> reference;  // fresh, warm
  for (const TransportKind kind :
       {TransportKind::kInProc, TransportKind::kShmem, TransportKind::kTcp}) {
    core::Project project(make_workspace(param.app));
    auto session =
        project.open_session(matrix_options(kind, param.faulty));
    EXPECT_EQ(session->fabric().transport_kind(), kind);
    const RunSignature fresh = signature_of(session->run());
    const RunSignature warm = signature_of(session->run());

    // Within one backend: warm == fresh (the existing session
    // invariant, now pinned per backend -- this is what breaks if
    // Fabric::reset() forgets to flush an async transport).
    EXPECT_EQ(warm, fresh) << net::to_string(kind);

    if (reference.empty()) {
      reference = {fresh, warm};
      ASSERT_FALSE(fresh.results.empty());
      if (param.faulty) {
        EXPECT_GT(fresh.faults.injected_drops + fresh.faults.retries, 0u);
      }
    } else {
      EXPECT_EQ(fresh, reference[0]) << net::to_string(kind);
      EXPECT_EQ(warm, reference[1]) << net::to_string(kind);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, TransportMatrixTest,
                         ::testing::Values(MatrixCase{"fft2d", false},
                                           MatrixCase{"fft2d", true},
                                           MatrixCase{"cornerturn", false},
                                           MatrixCase{"cornerturn", true}),
                         matrix_name);

// --- Fabric::reset() contract -----------------------------------------------

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST(FabricResetContractTest, ResetRestoresJustConstructedState) {
  net::Fabric fabric(2, net::ideal_fabric());
  fabric.set_fault_plan(std::make_shared<const net::FaultPlan>(
      net::FaultPlan::parse("fault-plan 1\n"
                            "seed 7\n"
                            "drop link=0->1 at=0\n")));

  fabric.send(0, 1, 1, bytes_of("dropped"), 0.0);   // at=0: injected drop
  fabric.send(0, 1, 2, bytes_of("clean"), 0.0);
  fabric.send_reliable(1, 0, 3, bytes_of("ok"), 0.0);
  ASSERT_GT(fabric.total_messages(), 0u);
  ASSERT_EQ(fabric.fault_counters().drops, 1u);
  ASSERT_FALSE(fabric.link_stats().empty());
  ASSERT_GT(fabric.pending(1), 0u);
  const std::uint64_t reserved_before = fabric.pool().stats().bytes_reserved;

  fabric.reset();

  // Every per-epoch counter back to zero...
  EXPECT_EQ(fabric.total_messages(), 0u);
  EXPECT_EQ(fabric.total_bytes(), 0u);
  EXPECT_EQ(fabric.fault_counters(), net::FaultCounters{});
  EXPECT_TRUE(fabric.link_stats().empty());
  EXPECT_EQ(fabric.pending(0), 0u);
  EXPECT_EQ(fabric.pending(1), 0u);
  // ...including the per-link fault sequence counters: the plan's
  // at=0 rule must fire again, exactly as on a fresh fabric.
  fabric.send(0, 1, 1, bytes_of("dropped-again"), 0.0);
  EXPECT_EQ(fabric.fault_counters().drops, 1u);
  // The payload pool deliberately survives (warm-path recycling).
  EXPECT_EQ(fabric.pool().stats().bytes_reserved, reserved_before);
}

TEST(FabricResetContractTest, WarmRunAfterFaultedRunReportsCleanCounters) {
  core::Project project(apps::make_cornerturn_workspace(64, 2));
  ExecuteOptions options;
  options.iterations = 3;
  options.collect_trace = false;

  auto session = project.open_session(options);
  RunOverrides faulted_request;
  faulted_request.fault_plan = chaos_plan();
  const RunStats faulted = session->run(faulted_request);
  ASSERT_GT(faulted.faults.injected_drops + faulted.faults.injected_corruptions +
                faulted.faults.injected_delays,
            0u);

  // The warm clean re-run must look exactly like a clean run on a
  // fresh session: no carried-over fault counters, totals, or link
  // history from the faulted epoch.
  const RunStats warm_clean = session->run();
  core::Project fresh_project(apps::make_cornerturn_workspace(64, 2));
  const RunStats fresh_clean = fresh_project.open_session(options)->run();

  EXPECT_EQ(warm_clean.faults, runtime::FaultStats{});
  EXPECT_EQ(signature_of(warm_clean), signature_of(fresh_clean));
}

// --- kill -9 a real node process --------------------------------------------

#ifdef __linux__
TEST(ShmemKillTest, KilledNodeProcessSurfacesAsCommErrorAndRecovers) {
  core::Project project(apps::make_cornerturn_workspace(64, 4));
  ExecuteOptions options;
  options.iterations = 2;
  options.collect_trace = false;
  options.recv_timeout_s = 5.0;  // the drill's failure-detection bound
  options.transport.kind = TransportKind::kShmem;

  auto session = project.open_session(options);
  const RunStats baseline = session->run();

  net::Transport& transport = session->fabric().transport();
  const long pid = transport.node_pid(3);
  ASSERT_GT(pid, 0);
  EXPECT_FALSE(transport.node_dead(3));
  ASSERT_EQ(kill(static_cast<pid_t>(pid), SIGKILL), 0);

  // The node's communication processor is gone: traffic into rank 3
  // dies on the wire, and the run surfaces it as CommError (either a
  // refused send or a receive timeout -- whichever the schedule hits
  // first).
  EXPECT_THROW(session->run(), CommError);
  EXPECT_TRUE(transport.node_dead(3));

  // The existing recovery machinery takes it from here: remap onto
  // survivors and keep producing the exact baseline checksums.
  const runtime::RecoveryReport report = session->recover({3});
  EXPECT_EQ(report.dead_nodes, std::vector<int>{3});
  EXPECT_GT(report.moved_threads, 0);
  const RunStats degraded = session->run();
  EXPECT_EQ(degraded.results, baseline.results);
  EXPECT_EQ(degraded.faults.degraded_nodes, 1);
}
#endif  // __linux__

}  // namespace
}  // namespace sage
