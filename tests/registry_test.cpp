// Function-registry and standard-kernel tests: every shelf kernel is
// checked against a direct ISSPL reference computation.
#include <gtest/gtest.h>

#include <complex>
#include <numeric>

#include "isspl/fft.hpp"
#include "isspl/transpose.hpp"
#include "isspl/vector_ops.hpp"
#include "runtime/registry.hpp"
#include "support/error.hpp"

namespace sage::runtime {
namespace {

using Complex = std::complex<float>;

/// Builds a kernel context with one in-port and one out-port over
/// caller-owned storage.
struct Harness {
  Harness(std::vector<std::size_t> in_dims, std::size_t in_elem,
          std::vector<std::size_t> out_dims, std::size_t out_elem)
      : ctx(0, 1, 0) {
    std::size_t in_total = 1;
    for (auto d : in_dims) in_total *= d;
    std::size_t out_total = 1;
    for (auto d : out_dims) out_total *= d;
    in_bytes.resize(in_total * in_elem);
    out_bytes.resize(out_total * out_elem);

    PortSlice in;
    in.name = "in";
    in.data = in_bytes;
    in.elem_bytes = in_elem;
    in.local_dims = in_dims;
    in.global_dims = in_dims;
    in.runs = {Run{0, in_total}};
    ctx.inputs.push_back(in);

    PortSlice out;
    out.name = "out";
    out.data = out_bytes;
    out.elem_bytes = out_elem;
    out.local_dims = out_dims;
    out.global_dims = out_dims;
    out.runs = {Run{0, out_total}};
    ctx.outputs.push_back(out);
  }

  std::vector<std::byte> in_bytes, out_bytes;
  KernelContext ctx;
};

TEST(RegistryTest, LookupAndErrors) {
  const FunctionRegistry registry = standard_registry();
  EXPECT_TRUE(registry.contains("isspl.fft_rows"));
  EXPECT_FALSE(registry.contains("bogus"));
  EXPECT_THROW(registry.lookup("bogus"), RuntimeError);
  EXPECT_GE(registry.names().size(), 10u);
  FunctionRegistry r2;
  EXPECT_THROW(r2.add("x", nullptr), RuntimeError);
}

TEST(RegistryTest, TestPatternDeterministicAndIterationDependent) {
  EXPECT_EQ(test_pattern(5, 0), test_pattern(5, 0));
  EXPECT_NE(test_pattern(5, 0), test_pattern(5, 1));
  EXPECT_NE(test_pattern(5, 0), test_pattern(6, 0));
  const Complex v = test_pattern(123, 4);
  EXPECT_LE(std::abs(v.real()), 1.0f);
  EXPECT_LE(std::abs(v.imag()), 1.0f);
}

TEST(KernelTest, MatrixSourceFillsGlobalPattern) {
  Harness h({4, 4}, sizeof(Complex), {4, 4}, sizeof(Complex));
  h.ctx.inputs.clear();  // sources have no inputs
  standard_registry().lookup("matrix_source")(h.ctx);
  auto out = h.ctx.out("out").as<Complex>();
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], test_pattern(i, 0));
  }
}

TEST(KernelTest, MatrixSinkReportsChecksum) {
  Harness h({2, 2}, sizeof(Complex), {2, 2}, sizeof(Complex));
  h.ctx.outputs.clear();
  auto in = h.ctx.inputs[0].as<Complex>();
  in[0] = {1, 2};
  in[1] = {3, 4};
  in[2] = {5, 6};
  in[3] = {7, 8};
  standard_registry().lookup("matrix_sink")(h.ctx);
  ASSERT_TRUE(h.ctx.has_result());
  EXPECT_DOUBLE_EQ(h.ctx.result(), 36.0);
}

TEST(KernelTest, FftRowsMatchesPlan) {
  constexpr std::size_t kRows = 4, kCols = 32;
  Harness h({kRows, kCols}, sizeof(Complex), {kRows, kCols}, sizeof(Complex));
  auto in = h.ctx.inputs[0].as<Complex>();
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = test_pattern(i, 0);

  std::vector<Complex> expected(in.begin(), in.end());
  isspl::FftPlan plan(kCols, isspl::FftDirection::kForward);
  plan.execute_rows(expected, kRows);

  standard_registry().lookup("isspl.fft_rows")(h.ctx);
  auto out = h.ctx.out("out").as<Complex>();
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], expected[i]) << i;
  }
}

TEST(KernelTest, IfftInvertsFft) {
  constexpr std::size_t kRows = 2, kCols = 16;
  Harness fwd({kRows, kCols}, sizeof(Complex), {kRows, kCols}, sizeof(Complex));
  auto in = fwd.ctx.inputs[0].as<Complex>();
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = test_pattern(i, 3);
  standard_registry().lookup("isspl.fft_rows")(fwd.ctx);

  Harness inv({kRows, kCols}, sizeof(Complex), {kRows, kCols}, sizeof(Complex));
  auto spectrum = fwd.ctx.out("out").as<Complex>();
  std::copy(spectrum.begin(), spectrum.end(),
            inv.ctx.inputs[0].as<Complex>().begin());
  standard_registry().lookup("isspl.ifft_rows")(inv.ctx);
  auto out = inv.ctx.out("out").as<Complex>();
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i].real(), in[i].real(), 1e-4f);
    EXPECT_NEAR(out[i].imag(), in[i].imag(), 1e-4f);
  }
}

TEST(KernelTest, CornerTurnLocalTransposesBlock) {
  constexpr std::size_t kRows = 6, kChunk = 3;
  Harness h({kRows, kChunk}, sizeof(Complex), {kChunk, kRows},
            sizeof(Complex));
  auto in = h.ctx.inputs[0].as<Complex>();
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = Complex(static_cast<float>(i), 0);
  }
  standard_registry().lookup("isspl.corner_turn_local")(h.ctx);
  auto out = h.ctx.out("out").as<Complex>();
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t c = 0; c < kChunk; ++c) {
      EXPECT_EQ(out[c * kRows + r], in[r * kChunk + c]);
    }
  }
}

TEST(KernelTest, CornerTurnRejectsWrongOutShape) {
  Harness h({4, 2}, sizeof(Complex), {4, 2}, sizeof(Complex));  // not swapped
  EXPECT_THROW(standard_registry().lookup("isspl.corner_turn_local")(h.ctx),
               RuntimeError);
}

TEST(KernelTest, MagnitudeConvertsTypes) {
  Harness h({1, 4}, sizeof(Complex), {1, 4}, sizeof(float));
  auto in = h.ctx.inputs[0].as<Complex>();
  in[0] = {3, 4};
  in[3] = {0, -2};
  standard_registry().lookup("isspl.magnitude")(h.ctx);
  auto out = h.ctx.out("out").as<float>();
  EXPECT_NEAR(out[0], 5.0f, 1e-6f);
  EXPECT_NEAR(out[3], 2.0f, 1e-6f);
}

TEST(KernelTest, WindowRowsUsesParameter) {
  constexpr std::size_t kCols = 8;
  Harness h({1, kCols}, sizeof(Complex), {1, kCols}, sizeof(Complex));
  auto in = h.ctx.inputs[0].as<Complex>();
  for (auto& v : in) v = Complex(1, 0);
  h.ctx.params["window"] = 1;  // Hann
  standard_registry().lookup("isspl.window_rows")(h.ctx);
  auto out = h.ctx.out("out").as<Complex>();
  const auto hann = isspl::make_window(isspl::Window::kHann, kCols);
  for (std::size_t i = 0; i < kCols; ++i) {
    EXPECT_NEAR(out[i].real(), hann[i], 1e-6f);
  }
}

TEST(KernelTest, ThresholdCutsBelowCutoff) {
  Harness h({1, 4}, sizeof(float), {1, 4}, sizeof(float));
  auto in = h.ctx.inputs[0].as<float>();
  in[0] = 0.1f;
  in[1] = 0.6f;
  in[2] = 0.5f;
  in[3] = -1.0f;
  h.ctx.params["cutoff"] = 0.5;
  standard_registry().lookup("isspl.threshold")(h.ctx);
  auto out = h.ctx.out("out").as<float>();
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], 0.6f);
  EXPECT_EQ(out[2], 0.5f);
  EXPECT_EQ(out[3], 0.0f);
}

TEST(KernelTest, FirRowsMatchesIssplFir) {
  constexpr std::size_t kRows = 2, kCols = 16;
  Harness h({kRows, kCols}, sizeof(float), {kRows, kCols}, sizeof(float));
  auto in = h.ctx.inputs[0].as<float>();
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>(i % 5);
  }
  h.ctx.params["taps"] = 4;
  standard_registry().lookup("isspl.fir_rows")(h.ctx);

  const std::vector<float> taps(4, 0.25f);
  std::vector<float> expected(in.size());
  for (std::size_t r = 0; r < kRows; ++r) {
    isspl::fir(std::span<const float>(in).subspan(r * kCols, kCols), taps,
               std::span<float>(expected).subspan(r * kCols, kCols));
  }
  auto out = h.ctx.out("out").as<float>();
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], expected[i], 1e-5f) << i;
  }
}

TEST(KernelTest, CfarDetectsIsolatedPeak) {
  constexpr std::size_t kCols = 64;
  Harness h({1, kCols}, sizeof(float), {1, kCols}, sizeof(float));
  auto in = h.ctx.inputs[0].as<float>();
  for (auto& v : in) v = 1.0f;  // uniform noise floor
  in[30] = 50.0f;               // strong target
  h.ctx.params["train"] = 4;
  h.ctx.params["guard"] = 1;
  h.ctx.params["scale"] = 4.0;
  standard_registry().lookup("isspl.cfar_rows")(h.ctx);
  auto out = h.ctx.out("out").as<float>();
  EXPECT_EQ(out[30], 50.0f);  // the peak survives
  for (std::size_t c = 0; c < kCols; ++c) {
    if (c != 30) {
      EXPECT_EQ(out[c], 0.0f) << "cell " << c;
    }
  }
}

TEST(KernelTest, CfarMasksPeakNextToStrongerInterference) {
  constexpr std::size_t kCols = 32;
  Harness h({1, kCols}, sizeof(float), {1, kCols}, sizeof(float));
  auto in = h.ctx.inputs[0].as<float>();
  for (auto& v : in) v = 1.0f;
  in[10] = 100.0f;  // interference inside the training window of cell 12
  in[12] = 5.0f;    // would be a detection in clean noise
  h.ctx.params["train"] = 4;
  h.ctx.params["guard"] = 1;
  h.ctx.params["scale"] = 3.0;
  standard_registry().lookup("isspl.cfar_rows")(h.ctx);
  auto out = h.ctx.out("out").as<float>();
  EXPECT_EQ(out[12], 0.0f);   // masked by the raised noise estimate
  EXPECT_GT(out[10], 0.0f);   // the interferer itself still detects
}

TEST(KernelTest, TransposeBatchSwapsLastTwoDims) {
  constexpr std::size_t kOuter = 3, kRows = 4, kCols = 2;
  Harness h({kOuter, kRows, kCols}, sizeof(Complex),
            {kOuter, kCols, kRows}, sizeof(Complex));
  auto in = h.ctx.inputs[0].as<Complex>();
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = Complex(static_cast<float>(i), 0);
  }
  standard_registry().lookup("isspl.transpose_batch")(h.ctx);
  auto out = h.ctx.out("out").as<Complex>();
  for (std::size_t o = 0; o < kOuter; ++o) {
    for (std::size_t r = 0; r < kRows; ++r) {
      for (std::size_t c = 0; c < kCols; ++c) {
        EXPECT_EQ(out[o * kRows * kCols + c * kRows + r],
                  in[o * kRows * kCols + r * kCols + c]);
      }
    }
  }
}

TEST(KernelTest, PowerSumOuterCollapsesChannels) {
  constexpr std::size_t kChannels = 3, kInner = 4;
  Harness h({kChannels, kInner}, sizeof(Complex), {kInner}, sizeof(float));
  auto in = h.ctx.inputs[0].as<Complex>();
  for (std::size_t ch = 0; ch < kChannels; ++ch) {
    for (std::size_t i = 0; i < kInner; ++i) {
      in[ch * kInner + i] = Complex(static_cast<float>(ch + 1), 0);
    }
  }
  standard_registry().lookup("isspl.power_sum_outer")(h.ctx);
  auto out = h.ctx.out("out").as<float>();
  for (std::size_t i = 0; i < kInner; ++i) {
    EXPECT_NEAR(out[i], 1.0f + 4.0f + 9.0f, 1e-5f);
  }
}

TEST(KernelTest, ScaleAppliesFactor) {
  Harness h({1, 2}, sizeof(Complex), {1, 2}, sizeof(Complex));
  auto in = h.ctx.inputs[0].as<Complex>();
  in[0] = {1, -1};
  h.ctx.params["factor"] = 2.0;
  standard_registry().lookup("isspl.scale")(h.ctx);
  EXPECT_EQ(h.ctx.out("out").as<Complex>()[0], Complex(2, -2));
}

TEST(KernelTest, FloatSourceSinkRoundTrip) {
  Harness src({2, 4}, sizeof(float), {2, 4}, sizeof(float));
  src.ctx.inputs.clear();
  standard_registry().lookup("float_source")(src.ctx);
  auto data = src.ctx.out("out").as<float>();

  Harness sink({2, 4}, sizeof(float), {2, 4}, sizeof(float));
  std::copy(data.begin(), data.end(), sink.ctx.inputs[0].as<float>().begin());
  sink.ctx.outputs.clear();
  standard_registry().lookup("float_sink")(sink.ctx);
  double expected = 0.0;
  for (float v : data) expected += v;
  EXPECT_DOUBLE_EQ(sink.ctx.result(), expected);
}

TEST(PortSliceTest, GlobalOfLocalWalksRuns) {
  PortSlice slice;
  slice.name = "s";
  slice.runs = {sage::runtime::Run{10, 3}, sage::runtime::Run{20, 2}};
  EXPECT_EQ(slice.global_of_local(0), 10u);
  EXPECT_EQ(slice.global_of_local(2), 12u);
  EXPECT_EQ(slice.global_of_local(3), 20u);
  EXPECT_EQ(slice.global_of_local(4), 21u);
  EXPECT_THROW(slice.global_of_local(5), RuntimeError);
}

TEST(KernelContextTest, PortLookupAndParams) {
  Harness h({1, 2}, sizeof(float), {1, 2}, sizeof(float));
  EXPECT_TRUE(h.ctx.has_in("in"));
  EXPECT_FALSE(h.ctx.has_in("out"));
  EXPECT_TRUE(h.ctx.has_out("out"));
  EXPECT_THROW(h.ctx.in("zzz"), RuntimeError);
  EXPECT_THROW(h.ctx.out("zzz"), RuntimeError);
  h.ctx.params["p"] = 1.5;
  EXPECT_DOUBLE_EQ(h.ctx.param_or("p", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(h.ctx.param_or("q", 7.0), 7.0);
}

}  // namespace
}  // namespace sage::runtime
