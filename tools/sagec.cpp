// sagec -- the openSAGE command-line tool.
//
// Drives the paper's pipeline over model repository files:
//
//   sagec demo <fft2d|cornerturn> [-n size] [-p nodes] [-o file]
//       emit a ready-made benchmark design
//   sagec info <model-file>
//       summarize a design (functions, arcs, hardware, mapping)
//   sagec validate <model-file>
//       run the Designer's full-design validation
//   sagec map <model-file> [-o file]
//       run the AToT genetic mapper and write the mapping back
//   sagec generate <model-file> [-o dir]
//       run the Alter glue-code generator; write glue.cfg and glue.c
//   sagec compile <model-file> [--plan-cache dir] [-o file.plan]
//       lower the design into an immutable CompiledProgram (the
//       Compiler layer alone: no machine is spawned); report the
//       compile cost and cache outcome, and optionally write the
//       serialized plan blob
//   sagec run <model-file> [-i iterations] [-r runs]
//             [--policy unique|shared] [--depth d] [--trace file.json]
//             [--plan-cache dir] [--transport inproc|shmem|tcp]
//             [--fault-plan plan.txt] [--fault-seed N]
//       generate and execute on the emulated platform through a warm
//       run-time session (-r N streams N-1 further data sets through
//       the warm pipeline as overlapped submissions, reporting the
//       achieved period and per-stage occupancy; --depth caps each
//       producer's lead over its consumers); print the Visualizer
//       summary and host cost. --fault-plan attaches a
//       deterministic fault schedule (see net/fault.hpp for the
//       format); --fault-seed overrides the plan's seed. --transport
//       picks the byte-moving backend (in-process queues, shared-memory
//       rings between forked node processes, or TCP loopback sockets);
//       results are bit-identical across all three.
//   sagec stats <model-file|quickstart|radar|fft2d|cornerturn>
//             [-i iterations] [--run N] [--threshold seconds]
//             [--format text|prom|csv|chrome] [-o file]
//             [--fault-plan plan.txt] [--fault-seed N]
//       run on the emulated platform and export the observability data:
//       the human report (text), Prometheus exposition (prom), flat
//       metrics CSV (csv), or the Chrome trace (chrome). --run N repeats
//       the run warm and reports the last one; --threshold feeds the
//       latency-violation monitor.
//   sagec alter <script.alt> [-m model-file] [-o dir] [--disasm]
//       run an Alter program (optionally against a model); print its
//       (print ...) log and write its emit streams. --disasm prints the
//       compiled bytecode listing instead of executing
//   sagec serve <model-file|fft2d|cornerturn|quickstart|radar>
//             [--workers N] [--sessions M] [--queue D] [--requests R]
//             [--rate r | --load f] [--seed S] [--tenants T] [--quota Q]
//             [-i iterations] [--plan-cache dir] [--format text|prom|csv]
//             [-o file]
//       stand up the multi-tenant session service on the design and
//       drive it with a bounded, seeded open-loop request schedule:
//       a warm-session fleet per program (lazily grown to --sessions),
//       admission control at --queue depth, requests spread round-robin
//       over --tenants tenants (--quota caps each tenant's in-flight
//       requests). --rate is arrivals/virtual-second; --load expresses
//       the rate as a fraction of the fleet's calibrated saturation.
//       Prints the admission/latency summary, then the serve metrics in
//       the chosen format.
#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "alter/interp.hpp"
#include "apps/benchmarks.hpp"
#include "apps/pipelines.hpp"
#include "atot/mapper.hpp"
#include "codegen/generator.hpp"
#include "core/project.hpp"
#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/serialize.hpp"
#include "net/transport.hpp"
#include "runtime/tuner.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "support/error.hpp"
#include "viz/analysis.hpp"
#include "viz/exporters.hpp"

namespace {

using namespace sage;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: sagec <command> [args]\n"
               "  demo <fft2d|cornerturn|quickstart|radar> [-n size]"
               " [-p nodes] [-o file]\n"
               "  info <model-file>\n"
               "  validate <model-file>\n"
               "  map <model-file> [-o file]\n"
               "  generate <model-file> [-o dir]\n"
               "  compile <model-file> [--plan-cache dir] [-o file.plan]\n"
               "  run <model-file> [-i iters] [-r runs] [--policy unique|shared]"
               " [--depth d] [--trace file.json] [--plan-cache dir]"
               " [--transport inproc|shmem|tcp]"
               " [--fault-plan plan.txt] [--fault-seed N]\n"
               "  stats <model-file|quickstart|radar|fft2d|cornerturn>"
               " [-i iters] [--run N]\n"
               "        [--threshold seconds] [--format text|prom|csv|chrome]"
               " [-o file]\n"
               "        [--transport inproc|shmem|tcp]"
               " [--fault-plan plan.txt] [--fault-seed N]\n"
               "  tune <model-file|hetero|quickstart|radar|fft2d|cornerturn>"
               " [--steps N] [--seed S]\n"
               "        [-i iters] [--hysteresis h] [-n size] [-p nodes]"
               " [--plan-cache dir]\n"
               "  alter <script.alt> [-m model-file] [-o dir] [--disasm]\n"
               "  analyze <trace.csv> [--latency-bound ms]\n"
               "  serve <model-file|fft2d|cornerturn|quickstart|radar>"
               " [--workers N] [--sessions M]\n"
               "        [--queue D] [--requests R] [--rate r | --load f]"
               " [--seed S]\n"
               "        [--tenants T] [--quota Q] [-i iters]"
               " [--plan-cache dir]\n"
               "        [--transport inproc|shmem|tcp]"
               " [--format text|prom|csv] [-o file]\n");
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) raise<Error>("cannot open '", path, "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) raise<Error>("cannot write '", path, "'");
  out << content;
}

/// Tiny flag scanner: collects "-k value" and "--key value" pairs plus
/// positional arguments.
struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;

  std::string flag_or(const std::string& name,
                      const std::string& fallback) const {
    for (const auto& [key, value] : flags) {
      if (key == name) return value;
    }
    return fallback;
  }

  bool has_flag(const std::string& name) const {
    for (const auto& [key, value] : flags) {
      if (key == name) return true;
    }
    return false;
  }
};

/// Flags that take no value; present means on.
bool is_bool_flag(const std::string& key) { return key == "disasm"; }

Args parse_args(int argc, char** argv, int start) {
  Args args;
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.size() > 1 && arg[0] == '-') {
      const std::string key = arg.substr(arg[1] == '-' ? 2 : 1);
      if (is_bool_flag(key)) {
        args.flags.emplace_back(key, "1");
        continue;
      }
      if (i + 1 >= argc) raise<Error>("flag '", arg, "' needs a value");
      args.flags.emplace_back(key, argv[++i]);
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

// --- checked flag parsers ---------------------------------------------------
// Every numeric flag goes through one of these instead of a raw
// std::stoi/std::stoull: the whole value must parse (no trailing junk),
// it must fit the flag's documented range, and the error names the flag
// -- `sagec run m -i banana` dies with a usable message instead of an
// uncaught std::invalid_argument.

long long parse_flag_int(const std::string& name, const std::string& value,
                         long long min, long long max) {
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() || errno == ERANGE) {
    raise<Error>("flag --", name, ": '", value, "' is not an integer");
  }
  if (parsed < min || parsed > max) {
    raise<Error>("flag --", name, ": ", parsed, " is out of range [", min, ", ",
                 max, "]");
  }
  return parsed;
}

int flag_int(const Args& args, const std::string& name,
             const std::string& fallback, long long min, long long max) {
  return static_cast<int>(
      parse_flag_int(name, args.flag_or(name, fallback), min, max));
}

std::uint64_t flag_u64(const Args& args, const std::string& name,
                       const std::string& fallback) {
  const std::string value = args.flag_or(name, fallback);
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || value[0] == '-' ||
      end != value.c_str() + value.size() || errno == ERANGE) {
    raise<Error>("flag --", name, ": '", value,
                 "' is not an unsigned integer");
  }
  return parsed;
}

double flag_double(const Args& args, const std::string& name,
                   const std::string& fallback, double min, double max) {
  const std::string value = args.flag_or(name, fallback);
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size() ||
      errno == ERANGE || !std::isfinite(parsed)) {
    raise<Error>("flag --", name, ": '", value, "' is not a number");
  }
  if (parsed < min || parsed > max) {
    raise<Error>("flag --", name, ": ", parsed, " is out of range [", min, ", ",
                 max, "]");
  }
  return parsed;
}

/// `--transport inproc|shmem|tcp`: which mechanism moves the bytes.
/// The default is the historical in-process fabric.
net::TransportOptions flag_transport(const Args& args) {
  const std::string name = args.flag_or("transport", "inproc");
  const auto kind = net::parse_transport_kind(name);
  if (!kind.has_value()) {
    raise<Error>("flag --transport: unknown backend '", name,
                 "' (want inproc, shmem, or tcp)");
  }
  net::TransportOptions transport;
  transport.kind = *kind;
  return transport;
}

/// Builds one of the ready-made designs by name, or returns nullptr.
std::unique_ptr<model::Workspace> make_demo(const std::string& which,
                                            std::size_t n, int nodes) {
  if (which == "fft2d") return apps::make_fft2d_workspace(n, nodes);
  if (which == "cornerturn") return apps::make_cornerturn_workspace(n, nodes);
  if (which == "quickstart") return apps::make_quickstart_workspace(n, nodes);
  if (which == "radar") {
    // n is the pulse count; range gates stay at the tutorial's 2n.
    return apps::make_radar_workspace(n, 2 * n, nodes);
  }
  return nullptr;
}

int cmd_demo(const Args& args) {
  if (args.positional.empty()) usage();
  const std::string& which = args.positional[0];
  const auto n = static_cast<std::size_t>(
      parse_flag_int("n", args.flag_or("n", "256"), 1, 1 << 20));
  const int nodes =
      flag_int(args, "p", which == "radar" ? "8" : "4", 1, 4096);

  std::unique_ptr<model::Workspace> ws = make_demo(which, n, nodes);
  if (ws == nullptr) {
    raise<Error>("unknown demo '", which,
                 "' (want fft2d, cornerturn, quickstart, or radar)");
  }

  const std::string out = args.flag_or("o", "");
  const std::string text = model::save_workspace(*ws);
  if (out.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    write_file(out, text);
    std::printf("wrote %s (%zu bytes)\n", out.c_str(), text.size());
  }
  return 0;
}

std::unique_ptr<model::Workspace> load(const Args& args) {
  if (args.positional.empty()) usage();
  return model::load_workspace(read_file(args.positional[0]));
}

int cmd_info(const Args& args) {
  auto ws = load(args);
  const model::ModelObject& app = ws->application();
  std::printf("project:     %s\n", ws->root().name().c_str());
  std::printf("application: %s\n", app.name().c_str());
  for (const model::ModelObject* fn : model::functions(app)) {
    std::printf("  function %-16s kernel=%-24s threads=%lld\n",
                fn->name().c_str(),
                fn->property("kernel").as_string().c_str(),
                static_cast<long long>(fn->property("threads").as_int()));
  }
  for (const model::ModelObject* arc : model::arcs(app)) {
    std::printf("  arc %s\n", arc->name().c_str());
  }
  const model::ModelObject& hw = ws->hardware();
  std::printf("hardware:    %s (%zu processors, fabric %s)\n",
              hw.name().c_str(), model::processors(hw).size(),
              hw.property("fabric").as_string().c_str());
  return 0;
}

int cmd_validate(const Args& args) {
  auto ws = load(args);
  const auto issues = ws->validate();
  int errors = 0;
  for (const model::Issue& issue : issues) {
    std::printf("%s\n", issue.to_string().c_str());
    if (issue.severity == model::Issue::Severity::kError) ++errors;
  }
  if (errors != 0) {
    std::printf("%d error(s)\n", errors);
    return 1;
  }
  // Deep check: generate glue and open a run-time session. Session
  // construction validates the glue config, resolves every kernel, and
  // builds all transfer plans; the non-throwing path reports problems
  // the structural validator cannot see.
  core::Project project(std::move(ws));
  auto session = project.try_open_session();
  if (!session.ok()) {
    std::printf("runtime check failed: %s\n", session.error().c_str());
    return 1;
  }
  std::printf("design is valid (%zu warning(s)); runtime session opens"
              " cleanly (%d nodes, %zu logical buffers)\n",
              issues.size(), session.value()->config().nodes,
              session.value()->config().buffers.size());
  return 0;
}

int cmd_map(const Args& args) {
  auto ws = load(args);
  const atot::MappingProblem problem = atot::build_problem(*ws);
  const atot::GeneticResult result = atot::genetic_mapping(problem);
  std::printf("genetic mapping: objective %.6f (max load %.6f s, comm %.6f s)"
              " after %d generations\n",
              result.cost.objective, result.cost.max_load,
              result.cost.total_comm, result.generations_run);
  atot::apply_assignment(*ws, problem, result.best);
  ws->validate_or_throw();
  const std::string out = args.flag_or("o", "");
  if (!out.empty()) {
    write_file(out, model::save_workspace(*ws));
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

int cmd_generate(const Args& args) {
  auto ws = load(args);
  const codegen::GeneratedArtifacts artifacts = codegen::generate_glue(*ws);
  const std::string dir = args.flag_or("o", ".");
  for (const auto& [name, content] : artifacts.outputs) {
    const std::string path = dir + "/" + name;
    write_file(path, content);
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
  }
  std::printf("%zu functions, %zu logical buffers, %d nodes\n",
              artifacts.config.functions.size(),
              artifacts.config.buffers.size(), artifacts.config.nodes);
  return 0;
}

int cmd_compile(const Args& args) {
  auto ws = load(args);
  core::Project project(std::move(ws));
  runtime::ExecuteOptions options;
  options.plan_cache_dir = args.flag_or("plan-cache", "");

  const std::shared_ptr<const runtime::CompiledProgram> program =
      project.compile_program(options);
  std::printf("compiled program: %zu functions, %zu logical buffers,"
              " %zu transfer ops, %d nodes\n",
              program->config.functions.size(), program->buffers.size(),
              program->ops.size(), program->config.nodes);
  std::printf("fingerprint:      %016llx\n",
              static_cast<unsigned long long>(program->fingerprint));
  std::printf("compile cost:     %.3f ms (plan cache: %s)\n",
              program->compile_seconds * 1e3,
              to_string(program->cache_outcome));

  const std::string out = args.flag_or("o", "");
  if (!out.empty()) {
    const std::string blob = program->serialize();
    write_file(out, blob);
    std::printf("wrote %s (%zu bytes)\n", out.c_str(), blob.size());
  }
  return 0;
}

int cmd_run(const Args& args) {
  auto ws = load(args);
  core::Project project(std::move(ws));
  runtime::ExecuteOptions options;
  options.plan_cache_dir = args.flag_or("plan-cache", "");
  options.iterations = flag_int(args, "i", "3", 1, 1000000);
  options.buffer_depth = flag_int(args, "depth", "0", 0, 1000000);
  options.transport = flag_transport(args);
  const std::string policy = args.flag_or("policy", "unique");
  options.buffer_policy = (policy == "shared")
                              ? runtime::BufferPolicy::kShared
                              : runtime::BufferPolicy::kUniquePerFunction;
  const int runs = flag_int(args, "r", "1", 1, 1000000);

  const std::string plan_path = args.flag_or("fault-plan", "");
  if (!plan_path.empty()) {
    net::FaultPlan plan = net::FaultPlan::parse(read_file(plan_path));
    if (!args.flag_or("fault-seed", "").empty()) {
      plan.seed = flag_u64(args, "fault-seed", "");
    }
    options.fault_plan = std::make_shared<const net::FaultPlan>(std::move(plan));
  }

  // One warm session serves every run; the first run carries the cold
  // host cost, later runs reuse the machine and buffer pool.
  auto session = project.open_session(options);
  const runtime::CompiledProgram& program = session->program();
  std::printf("program:    compiled in %.3f ms (plan cache: %s)\n",
              program.compile_seconds * 1e3,
              to_string(program.cache_outcome));
  runtime::RunStats stats = session->run();
  const double cold_host = stats.host_seconds;
  // Further data sets stream through the warm pipeline: overlapped
  // submissions on one machine epoch, so the achieved period (virtual
  // time between completions) can drop below the single-set latency.
  double stream_host = 0.0;
  double period_sum = 0.0;
  int period_count = 0;
  if (runs > 1) {
    std::vector<runtime::Ticket> tickets;
    tickets.reserve(static_cast<std::size_t>(runs - 1));
    for (int r = 1; r < runs; ++r) tickets.push_back(session->submit());
    for (const runtime::Ticket ticket : tickets) {
      stats = session->wait(ticket);
      if (stats.stream_period > 0) {
        period_sum += stats.stream_period;
        ++period_count;
      }
    }
    stream_host = stats.host_seconds;  // wall clock of the whole stream
  }
  std::printf("iterations: %d\n", stats.iterations);
  const double latency = stats.mean_latency();
  std::printf("mean latency: %.3f ms (virtual)\n", latency * 1e3);
  std::printf("period:       %.3f ms (virtual)\n", stats.period * 1e3);
  if (runs > 1) {
    std::printf("host cost:    %.3f ms cold, %.3f ms for %d streamed"
                " data sets\n",
                cold_host * 1e3, stream_host * 1e3, runs - 1);
    if (period_count > 0) {
      const double period = period_sum / period_count;
      std::printf("streaming:    achieved period %.3f ms (virtual),"
                  " overlap %.2fx\n",
                  period * 1e3, period > 0 ? latency / period : 0.0);
    }
    if (!stats.occupancy.empty()) {
      std::printf("occupancy:   ");
      for (const auto& [fn, ratio] : stats.occupancy) {
        std::printf(" %s=%.2f", fn.c_str(), ratio);
      }
      std::printf("  (fraction of stage capacity; ~1.0 sets the period)\n");
    }
  } else {
    std::printf("host cost:    %.3f ms\n", cold_host * 1e3);
  }
  const runtime::DataPlaneStats& dp = stats.data_plane;
  std::printf("data plane:   %.1f MB copied, %.1f MB moved by handle; pool"
              " %llu hits / %llu misses, %llu blocks\n",
              static_cast<double>(dp.bytes_copied) / 1e6,
              static_cast<double>(dp.bytes_moved) / 1e6,
              static_cast<unsigned long long>(dp.pool_hits),
              static_cast<unsigned long long>(dp.pool_misses),
              static_cast<unsigned long long>(dp.pool_blocks));
  for (const auto& [fn, series] : stats.results) {
    std::printf("result[%s]:", fn.c_str());
    for (double v : series) std::printf(" %.4f", v);
    std::printf("\n");
  }
  if (options.fault_plan != nullptr) {
    const runtime::FaultStats& f = stats.faults;
    std::printf("faults:       %llu drops, %llu corruptions, %llu delays"
                " injected; %llu retries, %llu timeouts, %llu corrupt"
                " frames detected, %llu stalls",
                static_cast<unsigned long long>(f.injected_drops),
                static_cast<unsigned long long>(f.injected_corruptions),
                static_cast<unsigned long long>(f.injected_delays),
                static_cast<unsigned long long>(f.retries),
                static_cast<unsigned long long>(f.timeouts),
                static_cast<unsigned long long>(f.corruptions_detected),
                static_cast<unsigned long long>(f.stalls));
    if (f.degraded_nodes > 0) {
      std::printf("; degraded (%d dead nodes)", f.degraded_nodes);
    }
    std::printf("\n");
  }
  std::printf("%s", viz::summary_report(stats.trace).c_str());

  const std::string trace_path = args.flag_or("trace", "");
  if (!trace_path.empty()) {
    write_file(trace_path, stats.trace.to_chrome_json());
    std::printf("wrote %s\n", trace_path.c_str());
  }
  const std::string csv_path = args.flag_or("trace-csv", "");
  if (!csv_path.empty()) {
    write_file(csv_path, stats.trace.to_csv());
    std::printf("wrote %s\n", csv_path.c_str());
  }
  return 0;
}

int cmd_stats(const Args& args) {
  if (args.positional.empty()) usage();
  // The target is a model-repository file, or one of the ready-made
  // designs by name (built at their tutorial sizes).
  const std::string& target = args.positional[0];
  std::unique_ptr<model::Workspace> ws =
      make_demo(target, 256, target == "radar" ? 8 : 4);
  if (ws == nullptr) ws = model::load_workspace(read_file(target));

  core::Project project(std::move(ws));
  runtime::ExecuteOptions options;
  options.iterations = flag_int(args, "i", "3", 1, 1000000);
  options.latency_threshold =
      flag_double(args, "threshold", "0", 0.0, 1e9);
  options.transport = flag_transport(args);
  const std::string plan_path = args.flag_or("fault-plan", "");
  if (!plan_path.empty()) {
    net::FaultPlan plan = net::FaultPlan::parse(read_file(plan_path));
    if (!args.flag_or("fault-seed", "").empty()) {
      plan.seed = flag_u64(args, "fault-seed", "");
    }
    options.fault_plan = std::make_shared<const net::FaultPlan>(std::move(plan));
  }

  // --run N exercises the warm path; the exported run is the last one
  // (each run's metrics restart at zero -- the warm-session contract).
  const int runs = flag_int(args, "run", "1", 1, 1000000);
  auto session = project.open_session(options);
  runtime::RunStats stats = session->run();
  for (int r = 1; r < runs; ++r) stats = session->run();

  const std::string format = args.flag_or("format", "text");
  std::string out;
  if (format == "chrome") {
    out = stats.trace.to_chrome_json();
  } else if (format == "prom") {
    out = viz::prometheus_text(stats.metrics);
  } else if (format == "csv") {
    out = viz::metrics_csv(stats.metrics);
  } else if (format == "text") {
    viz::ReportOptions report_options;
    report_options.latency_threshold = options.latency_threshold;
    out = viz::report(stats.trace, stats.metrics, report_options);
  } else {
    raise<Error>("unknown format '", format,
                 "' (want text, prom, csv, or chrome)");
  }

  const std::string path = args.flag_or("o", "");
  if (path.empty()) {
    std::fputs(out.c_str(), stdout);
  } else {
    write_file(path, out);
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), out.size());
  }
  return 0;
}

// --- tune: the online AToT loop over a live session -------------------------
// Runs the measure -> calibrate -> re-map -> hot-swap loop for --steps
// windows. The default target "hetero" is the deliberately skewed
// heterogeneous demo (fast procs idle, slow procs overloaded) whose bad
// start the loop is expected to dig out.
int cmd_tune(const Args& args) {
  const std::string target =
      args.positional.empty() ? "hetero" : args.positional[0];
  const auto n = static_cast<std::size_t>(
      parse_flag_int("n", args.flag_or("n", "128"), 1, 1 << 20));
  const int nodes = flag_int(args, "p", target == "radar" ? "8" : "4", 1, 4096);
  std::unique_ptr<model::Workspace> ws;
  if (target == "hetero") {
    ws = apps::make_tuning_workspace(n);
  } else {
    ws = make_demo(target, n, nodes);
    if (ws == nullptr) ws = model::load_workspace(read_file(target));
  }

  core::Project project(std::move(ws));
  runtime::ExecuteOptions options;
  options.plan_cache_dir = args.flag_or("plan-cache", "");
  options.iterations = flag_int(args, "i", "3", 1, 1000000);
  options.tune.enabled = true;
  if (!args.flag_or("seed", "").empty()) {
    options.tune.seed = flag_u64(args, "seed", "");
  }
  options.tune.hysteresis = flag_double(args, "hysteresis", "0.05", 0.0, 1.0);
  const int steps = flag_int(args, "steps", "4", 1, 10000);

  auto session = project.open_session(options);
  runtime::Tuner tuner(*session, project.registry(), options.tune);

  runtime::RunStats stats = session->run();
  const double start_span = stats.makespan;
  std::printf("start:    makespan %8.3f ms (virtual) per window of %d"
              " iterations\n",
              start_span * 1e3, stats.iterations);
  for (int s = 0; s < steps; ++s) {
    tuner.observe(stats);
    const runtime::TuneStepReport rep = tuner.step();
    stats = session->run();  // measure the (possibly re-mapped) placement
    std::printf("step %2d:  %-4s  predicted gain %5.1f%%  objective %.3g ->"
                " %.3g  measured makespan %8.3f ms%s\n",
                rep.step, rep.outcome.c_str(),
                rep.predicted_gain_ratio * 100.0, rep.incumbent_objective,
                rep.candidate_objective, stats.makespan * 1e3,
                rep.swapped()
                    ? (" (swap: " + std::to_string(rep.moved_threads) +
                       " threads moved)")
                          .c_str()
                    : "");
  }
  if (start_span > 0.0) {
    std::printf("tuned:    makespan %8.3f ms (virtual), %.2fx the bad"
                " start's throughput, %d swaps in %d steps\n",
                stats.makespan * 1e3,
                stats.makespan > 0.0 ? start_span / stats.makespan : 0.0,
                tuner.swaps(), tuner.steps());
  }

  // The run snapshot plus the tuner's own families drive the report's
  // "tuning" section.
  viz::MetricsSnapshot merged = stats.metrics;
  for (const viz::MetricValue& v : tuner.snapshot().series) {
    merged.series.push_back(v);
  }
  std::fputs(viz::report(stats.trace, merged).c_str(), stdout);
  return 0;
}

int cmd_analyze(const Args& args) {
  if (args.positional.empty()) usage();
  const viz::Trace trace = viz::Trace::from_csv(read_file(args.positional[0]));
  std::printf("%s", viz::summary_report(trace).c_str());
  const double threshold =
      flag_double(args, "latency-bound", "0", 0.0, 1e9) * 1e-3;  // ms -> s
  if (threshold > 0) {
    const auto violations = viz::latency_violations(trace, threshold);
    std::printf("\nlatency violations over %.3f ms: %zu\n", threshold * 1e3,
                violations.size());
    for (const auto& v : violations) {
      std::printf("  iteration %d: %.3f ms\n", v.iteration,
                  v.latency() * 1e3);
    }
  }
  return 0;
}

int cmd_alter(const Args& args) {
  if (args.positional.empty()) usage();
  const std::string program = read_file(args.positional[0]);

  alter::Interpreter interp;
  if (args.has_flag("disasm")) {
    // Compile only: print the bytecode listing instead of executing.
    const alter::ChunkPtr chunk = interp.compile(program, args.positional[0]);
    std::fputs(alter::disassemble(*chunk).c_str(), stdout);
    return 0;
  }
  std::unique_ptr<model::Workspace> ws;  // keeps the model alive
  const std::string model_path = args.flag_or("m", "");
  if (!model_path.empty()) {
    ws = model::load_workspace(read_file(model_path));
    interp.attach_model(ws->root());
  }

  const alter::Value result = interp.eval_string(program);
  if (!interp.print_log().empty()) {
    std::fputs(interp.print_log().c_str(), stdout);
  }
  std::printf("=> %s\n", result.to_string().c_str());

  const std::string dir = args.flag_or("o", "");
  for (const auto& [name, content] : interp.outputs()) {
    if (content.empty()) continue;
    if (dir.empty()) {
      std::printf("--- %s (%zu bytes, use -o to write) ---\n", name.c_str(),
                  content.size());
    } else {
      const std::string path = dir + "/" + name;
      write_file(path, content);
      std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
    }
  }
  return 0;
}

int cmd_serve(const Args& args) {
  if (args.positional.empty()) usage();
  const std::string& target = args.positional[0];
  std::unique_ptr<model::Workspace> ws =
      make_demo(target, 256, target == "radar" ? 8 : 4);
  if (ws == nullptr) ws = model::load_workspace(read_file(target));
  core::Project project(std::move(ws));

  runtime::ExecuteOptions execute;
  execute.iterations = flag_int(args, "i", "1", 1, 1000000);
  execute.collect_trace = false;
  execute.plan_cache_dir = args.flag_or("plan-cache", "");
  execute.transport = flag_transport(args);

  serve::ServerOptions options;
  options.workers = flag_int(args, "workers", "2", 1, 1024);
  options.max_sessions_per_program = flag_int(args, "sessions", "2", 1, 4096);
  options.max_queue_depth = flag_int(args, "queue", "64", 1, 1 << 20);
  options.execute = project.resolved_options(execute);
  serve::Server server(options);
  const std::uint64_t key = server.add_program(
      target, project.compile_program(execute), project.registry());

  const serve::ProgramInfo info = server.program_info(key);
  std::printf("serving %s: fingerprint %016llx, %d worker(s), fleet cap %d,"
              " queue depth %d\n",
              target.c_str(), static_cast<unsigned long long>(key),
              options.workers, options.max_sessions_per_program,
              options.max_queue_depth);
  std::printf("calibration:  solo latency %.3f ms, stream period %.3f ms,"
              " saturation %.1f req/s (virtual)\n",
              info.solo_latency_vt * 1e3, info.stream_period_vt * 1e3,
              info.saturation_rate());

  // The offered load: an explicit rate, or a fraction of saturation.
  const int requests = flag_int(args, "requests", "32", 1, 10000000);
  double rate = flag_double(args, "rate", "0", 0.0, 1e12);
  if (rate <= 0.0) {
    rate = flag_double(args, "load", "0.5", 0.0, 1e6) *
           info.saturation_rate();
  }
  const std::uint64_t seed = flag_u64(args, "seed", "42");
  const int tenants = flag_int(args, "tenants", "1", 1, 1000000);
  const int quota = flag_int(args, "quota", "0", 0, 1000000);
  if (quota > 0) {
    serve::TenantQuota tenant_quota;
    tenant_quota.max_in_flight = quota;
    for (int t = 0; t < tenants; ++t) {
      server.set_quota("tenant-" + std::to_string(t), tenant_quota);
    }
  }

  // One bounded open-loop schedule, round-robin across tenants.
  const std::vector<support::VirtualSeconds> arrivals =
      serve::poisson_arrivals(requests, rate, seed);
  std::vector<serve::ServeTicket> admitted;
  admitted.reserve(arrivals.size());
  int shed = 0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    serve::RunRequest request;
    request.tenant = "tenant-" + std::to_string(i % tenants);
    request.arrival_vt = arrivals[i];
    const serve::ServeTicket ticket = server.submit(key, request);
    if (ticket.admitted()) {
      admitted.push_back(ticket);
    } else {
      ++shed;
    }
  }
  std::vector<double> latencies;
  latencies.reserve(admitted.size());
  int errors = 0;
  for (const serve::ServeTicket& ticket : admitted) {
    const serve::Response response = server.wait(ticket);
    if (!response.ok()) ++errors;
    latencies.push_back(response.latency_vt());
  }
  std::sort(latencies.begin(), latencies.end());
  auto pct = [&](double q) {
    if (latencies.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(latencies.size())));
    return latencies[std::min(latencies.size() - 1,
                              rank == 0 ? 0 : rank - 1)];
  };
  const serve::ServerStats stats = server.stats();
  std::printf("load:         %d requests at %.1f req/s (%.2fx saturation),"
              " seed %llu, %d tenant(s)\n",
              requests, rate,
              info.saturation_rate() > 0 ? rate / info.saturation_rate() : 0.0,
              static_cast<unsigned long long>(seed), tenants);
  std::printf("admission:    %llu admitted, %d shed (%llu queue, %llu quota),"
              " peak queue depth %d\n",
              static_cast<unsigned long long>(stats.admitted), shed,
              static_cast<unsigned long long>(stats.shed_queue),
              static_cast<unsigned long long>(stats.shed_quota),
              stats.peak_queue_depth);
  std::printf("fleet:        %d warm session(s), %llu coalesced request(s),"
              " %d error(s)\n",
              stats.sessions,
              static_cast<unsigned long long>(stats.coalesced), errors);
  std::printf("latency:      p50 %.3f ms, p99 %.3f ms, max %.3f ms"
              " (virtual)\n",
              pct(0.50) * 1e3, pct(0.99) * 1e3,
              (latencies.empty() ? 0.0 : latencies.back()) * 1e3);
  server.shutdown();

  const std::string format = args.flag_or("format", "text");
  std::string out;
  if (format == "prom") {
    out = viz::prometheus_text(server.metrics());
  } else if (format == "csv") {
    out = viz::metrics_csv(server.metrics());
  } else if (format == "text") {
    out = viz::report(viz::Trace(), server.metrics());
  } else {
    raise<Error>("unknown format '", format, "' (want text, prom, or csv)");
  }
  const std::string path = args.flag_or("o", "");
  if (path.empty()) {
    std::fputs(out.c_str(), stdout);
  } else {
    write_file(path, out);
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), out.size());
  }
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  try {
    const Args args = parse_args(argc, argv, 2);
    if (command == "demo") return cmd_demo(args);
    if (command == "info") return cmd_info(args);
    if (command == "validate") return cmd_validate(args);
    if (command == "map") return cmd_map(args);
    if (command == "generate") return cmd_generate(args);
    if (command == "compile") return cmd_compile(args);
    if (command == "run") return cmd_run(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "tune") return cmd_tune(args);
    if (command == "alter") return cmd_alter(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "serve") return cmd_serve(args);
    usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sagec: %s\n", e.what());
    return 1;
  }
}
