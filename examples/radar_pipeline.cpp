// Range-Doppler radar processing chain -- the class of real-time
// application the paper's introduction motivates (radar / signal
// processing on COTS multicomputers).
//
//   pulses -> window -> range FFT -> corner turn -> Doppler FFT
//          -> magnitude -> threshold -> detections
//
// The corner turn between the range and Doppler FFTs is expressed purely
// as port striping (rows in, columns out), exactly like the Table-1
// benchmark; the magnitude stage switches the data type from complex to
// float mid-pipeline.
//
// Build & run:  ./build/examples/radar_pipeline
#include <cstdio>

#include "core/project.hpp"
#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"
#include "viz/analysis.hpp"

using namespace sage;

namespace {

constexpr std::size_t kPulses = 256;   // rows: one pulse per row
constexpr std::size_t kRange = 512;    // range gates per pulse
constexpr int kNodes = 8;

model::ModelObject& add_stage(model::ModelObject& app, const char* name,
                              const char* kernel, const char* in_type,
                              const char* out_type,
                              std::vector<std::size_t> in_dims,
                              std::vector<std::size_t> out_dims,
                              int in_stripe_dim = 0, int out_stripe_dim = 0,
                              double work = 0.0) {
  model::ModelObject& fn = model::add_function(app, name, kernel, kNodes, work);
  model::add_port(fn, "in", model::PortDirection::kIn,
                  model::Striping::kStriped, in_type, std::move(in_dims),
                  in_stripe_dim);
  model::add_port(fn, "out", model::PortDirection::kOut,
                  model::Striping::kStriped, out_type, std::move(out_dims),
                  out_stripe_dim);
  return fn;
}

}  // namespace

int main() {
  auto workspace = std::make_unique<model::Workspace>("radar");
  model::ModelObject& root = workspace->root();
  model::add_cspi_platform(root, kNodes);

  model::ModelObject& app = model::add_application(root, "range_doppler");
  const std::vector<std::size_t> cube{kPulses, kRange};      // pulse-major
  const std::vector<std::size_t> turned{kRange, kPulses};    // range-major

  model::ModelObject& src =
      model::add_function(app, "pulses", "matrix_source", kNodes);
  src.set_property("role", "source");
  model::add_port(src, "out", model::PortDirection::kOut,
                  model::Striping::kStriped, "cfloat", cube, 0);

  model::ModelObject& window =
      add_stage(app, "window", "isspl.window_rows", "cfloat", "cfloat", cube,
                cube, 0, 0, kPulses * kRange * 2.0);
  window.set_property("param_window", 2.0);  // Hamming

  add_stage(app, "range_fft", "isspl.fft_rows", "cfloat", "cfloat", cube,
            cube, 0, 0, kPulses * kRange * 10.0);

  // Corner turn: consume columns (range gates across pulses), emit the
  // turned cube striped by rows again.
  add_stage(app, "corner_turn", "isspl.corner_turn_local", "cfloat", "cfloat",
            cube, turned, /*in_stripe_dim=*/1, /*out_stripe_dim=*/0,
            kPulses * kRange * 1.0);

  add_stage(app, "doppler_fft", "isspl.fft_rows", "cfloat", "cfloat", turned,
            turned, 0, 0, kPulses * kRange * 10.0);

  add_stage(app, "magnitude", "isspl.magnitude", "cfloat", "float", turned,
            turned, 0, 0, kPulses * kRange * 2.0);

  model::ModelObject& threshold =
      add_stage(app, "threshold", "isspl.threshold", "float", "float", turned,
                turned, 0, 0, kPulses * kRange * 1.0);
  threshold.set_property("param_cutoff", 40.0);  // detection cutoff

  model::ModelObject& sink =
      model::add_function(app, "detections", "float_sink", kNodes);
  sink.set_property("role", "sink");
  model::add_port(sink, "in", model::PortDirection::kIn,
                  model::Striping::kStriped, "float", turned, 0);

  model::connect(app, "pulses.out", "window.in");
  model::connect(app, "window.out", "range_fft.in");
  model::connect(app, "range_fft.out", "corner_turn.in");
  model::connect(app, "corner_turn.out", "doppler_fft.in");
  model::connect(app, "doppler_fft.out", "magnitude.in");
  model::connect(app, "magnitude.out", "threshold.in");
  model::connect(app, "threshold.out", "detections.in");

  model::ModelObject& mapping = model::add_mapping(root, "mapping", "cspi");
  std::vector<int> ranks;
  for (int r = 0; r < kNodes; ++r) ranks.push_back(r);
  for (const char* fn : {"pulses", "window", "range_fft", "corner_turn",
                         "doppler_fft", "magnitude", "threshold",
                         "detections"}) {
    model::assign_ranks(root, mapping, fn, ranks);
  }

  core::Project project(std::move(workspace));
  runtime::ExecuteOptions options;
  options.iterations = 3;
  const runtime::RunStats stats = project.execute(options);

  std::printf("range-doppler chain: %zu pulses x %zu range gates on %d nodes\n",
              kPulses, kRange, kNodes);
  std::printf("mean latency %.3f ms, period %.3f ms (virtual)\n",
              stats.mean_latency() * 1e3, stats.period * 1e3);
  std::printf("post-threshold energy per iteration:");
  for (double v : stats.results.at("detections")) std::printf(" %.1f", v);
  std::printf("\n\n%s", viz::summary_report(stats.trace).c_str());

  // The Visualizer's bottleneck finder, as the paper describes using it.
  if (const auto bn = viz::bottleneck(stats.trace)) {
    std::printf("\nbottleneck stage: %s (%.3f ms total)\n", bn->name.c_str(),
                bn->total_time * 1e3);
  }
  return 0;
}
