// Extending the shelf: registering a user-supplied kernel and driving
// it from a model -- "custom, user-supplied software ... components
// (application code, libraries, etc.)" in the paper's terms.
//
// The kernel below is a complex conjugate-multiply ("match filter"
// against a reference waveform scaled by a model parameter); nothing in
// the SAGE toolchain knows about it beyond its registered name.
//
// Build & run:  ./build/examples/custom_kernel
#include <complex>
#include <cstdio>

#include "core/project.hpp"
#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"

using namespace sage;
using Complex = std::complex<float>;

namespace {

/// out[i] = in[i] * conj(ref(i)) * gain, with a synthetic reference.
void match_filter(runtime::KernelContext& ctx) {
  const runtime::PortSlice& in = ctx.in("in");
  runtime::PortSlice& out = ctx.out("out");
  const auto gain = static_cast<float>(ctx.param_or("gain", 1.0));
  auto src = in.as<Complex>();
  auto dst = out.as<Complex>();
  for (std::size_t i = 0; i < src.size(); ++i) {
    // Reference waveform derived from the *global* element index so
    // every thread computes a consistent slice of the same filter.
    const auto g = in.global_of_local(i);
    const Complex ref(static_cast<float>((g % 7) + 1), 0.25f);
    dst[i] = src[i] * std::conj(ref) * gain;
  }
}

}  // namespace

int main() {
  constexpr std::size_t kN = 128;
  constexpr int kNodes = 2;

  auto ws = std::make_unique<model::Workspace>("custom");
  model::ModelObject& root = ws->root();
  model::add_cspi_platform(root, kNodes);
  model::ModelObject& app = model::add_application(root, "custom_chain");
  const std::vector<std::size_t> dims{kN, kN};

  model::ModelObject& src = model::add_function(app, "src", "matrix_source",
                                                kNodes);
  src.set_property("role", "source");
  model::add_port(src, "out", model::PortDirection::kOut,
                  model::Striping::kStriped, "cfloat", dims, 0);

  // The model references the custom kernel by name, like any shelf item.
  model::ModelObject& filter =
      model::add_function(app, "filter", "user.match_filter", kNodes);
  filter.set_property("param_gain", 2.0);
  model::add_port(filter, "in", model::PortDirection::kIn,
                  model::Striping::kStriped, "cfloat", dims, 0);
  model::add_port(filter, "out", model::PortDirection::kOut,
                  model::Striping::kStriped, "cfloat", dims, 0);

  model::ModelObject& sink = model::add_function(app, "sink", "matrix_sink",
                                                 kNodes);
  sink.set_property("role", "sink");
  model::add_port(sink, "in", model::PortDirection::kIn,
                  model::Striping::kStriped, "cfloat", dims, 0);

  model::connect(app, "src.out", "filter.in");
  model::connect(app, "filter.out", "sink.in");
  model::ModelObject& mapping = model::add_mapping(root, "mapping", "cspi");
  for (const char* fn : {"src", "filter", "sink"}) {
    model::assign_ranks(root, mapping, fn, {0, 1});
  }

  core::Project project(std::move(ws));
  // Link the "function library": standard shelf + the user kernel.
  runtime::FunctionRegistry registry = runtime::standard_registry();
  registry.add("user.match_filter", match_filter);
  project.set_registry(std::move(registry));

  const runtime::RunStats stats = project.execute({.iterations = 2});
  std::printf("custom match filter over %zux%zu on %d nodes\n", kN, kN,
              kNodes);
  std::printf("mean latency %.3f ms; sink checksums:",
              stats.mean_latency() * 1e3);
  for (double v : stats.results.at("sink")) std::printf(" %.2f", v);
  std::printf("\n");

  // The generated glue references the kernel by name only:
  const std::string& cfg = project.generate().glue_config_text();
  const auto pos = cfg.find("user.match_filter");
  std::printf("glue.cfg binds it by name: ...%.60s...\n",
              cfg.c_str() + (pos == std::string::npos ? 0 : pos - 20));
  return 0;
}
