// Image-processing pipeline -- the paper's second motivating domain
// (image processing / computer vision on COTS multicomputers).
//
//   frames -> row blur (FIR) -> threshold -> sink
//
// Demonstrates float-typed data flow, kernel parameters carried as
// model properties (param_*), a *replicated* port (every sink thread
// receives the whole frame, e.g. for global statistics), and running
// the same design under both runtime buffer policies.
//
// Build & run:  ./build/examples/image_pipeline
#include <cstdio>

#include "core/project.hpp"
#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"

using namespace sage;

namespace {

constexpr std::size_t kHeight = 256;
constexpr std::size_t kWidth = 256;
constexpr int kNodes = 4;

}  // namespace

int main() {
  auto workspace = std::make_unique<model::Workspace>("imaging");
  model::ModelObject& root = workspace->root();
  model::add_cspi_platform(root, kNodes);

  model::ModelObject& app = model::add_application(root, "frame_pipeline");
  const std::vector<std::size_t> frame{kHeight, kWidth};

  model::ModelObject& src =
      model::add_function(app, "frames", "float_source", kNodes);
  src.set_property("role", "source");
  model::add_port(src, "out", model::PortDirection::kOut,
                  model::Striping::kStriped, "float", frame, 0);

  model::ModelObject& blur = model::add_function(
      app, "blur", "isspl.fir_rows", kNodes, kHeight * kWidth * 16.0);
  blur.set_property("param_taps", 8.0);
  model::add_port(blur, "in", model::PortDirection::kIn,
                  model::Striping::kStriped, "float", frame, 0);
  model::add_port(blur, "out", model::PortDirection::kOut,
                  model::Striping::kStriped, "float", frame, 0);

  model::ModelObject& detect = model::add_function(
      app, "detect", "isspl.threshold", kNodes, kHeight * kWidth * 1.0);
  // The blur averages the test pattern toward zero; 0.08 keeps the top
  // ~20% of blurred pixels.
  detect.set_property("param_cutoff", 0.08);
  model::add_port(detect, "in", model::PortDirection::kIn,
                  model::Striping::kStriped, "float", frame, 0);
  model::add_port(detect, "out", model::PortDirection::kOut,
                  model::Striping::kStriped, "float", frame, 0);

  // The statistics sink sees the *whole* frame on every thread: a
  // replicated in-port, so the runtime fans each stripe out to all
  // threads.
  model::ModelObject& stats_fn =
      model::add_function(app, "stats", "float_sink", kNodes);
  stats_fn.set_property("role", "sink");
  model::add_port(stats_fn, "in", model::PortDirection::kIn,
                  model::Striping::kReplicated, "float", frame, 0);

  model::connect(app, "frames.out", "blur.in");
  model::connect(app, "blur.out", "detect.in");
  model::connect(app, "detect.out", "stats.in");

  model::ModelObject& mapping = model::add_mapping(root, "mapping", "cspi");
  for (const char* fn : {"frames", "blur", "detect", "stats"}) {
    model::assign_ranks(root, mapping, fn, {0, 1, 2, 3});
  }

  core::Project project(std::move(workspace));
  for (const runtime::BufferPolicy policy :
       {runtime::BufferPolicy::kUniquePerFunction,
        runtime::BufferPolicy::kShared}) {
    runtime::ExecuteOptions options;
    options.iterations = 3;
    options.buffer_policy = policy;
    const runtime::RunStats stats = project.execute(options);
    // Every sink thread sums the whole frame, so the reported result is
    // nodes x the frame energy.
    std::printf("policy %-20s mean latency %.3f ms, frame energy %.1f\n",
                runtime::to_string(policy).c_str(),
                stats.mean_latency() * 1e3,
                stats.results.at("stats")[0] / kNodes);
  }
  std::printf("\n(%zux%zu frames on %d nodes; 'frame energy' is the "
              "post-threshold pixel sum)\n",
              kHeight, kWidth, kNodes);
  return 0;
}
