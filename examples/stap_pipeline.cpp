// Space-Time Adaptive Processing (STAP)-style chain over a 3-D data
// cube -- the workload family the embedded-HPC community of the paper's
// era benchmarked (see the MITRE/Rome Labs references).
//
//   cube[channels][pulses][range]
//     -> range FFT        (pulse compression, striped along pulses)
//     -> cube re-stripe   (pulses -> range, a 3-D corner turn done
//                          entirely by port striping declarations)
//     -> batched transpose (make the pulse axis contiguous per channel)
//     -> Doppler FFT      (along pulses)
//     -> channel power sum (collapse the channel dimension)
//     -> detection map sink
//
// Demonstrates n-dimensional striping: the cube is striped along its
// *middle* dimension, redistributed along the last one, and the channel
// dimension stays node-local throughout.
//
// Build & run:  ./build/examples/stap_pipeline
#include <cstdio>

#include "core/project.hpp"
#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"
#include "viz/analysis.hpp"

using namespace sage;

namespace {

constexpr std::size_t kChannels = 4;
constexpr std::size_t kPulses = 128;
constexpr std::size_t kRange = 256;
constexpr int kNodes = 4;

}  // namespace

int main() {
  auto workspace = std::make_unique<model::Workspace>("stap");
  model::ModelObject& root = workspace->root();
  model::add_cspi_platform(root, kNodes);

  model::ModelObject& app = model::add_application(root, "stap_chain");
  const std::vector<std::size_t> cube{kChannels, kPulses, kRange};
  const std::vector<std::size_t> turned{kChannels, kRange, kPulses};
  const std::vector<std::size_t> map2d{kRange, kPulses};

  auto striped_fn = [&](const char* name, const char* kernel,
                        const std::vector<std::size_t>& in_dims,
                        int in_stripe, const std::vector<std::size_t>& out_dims,
                        int out_stripe, const char* in_type = "cfloat",
                        const char* out_type = "cfloat",
                        double work = 0.0) -> model::ModelObject& {
    model::ModelObject& fn =
        model::add_function(app, name, kernel, kNodes, work);
    model::add_port(fn, "in", model::PortDirection::kIn,
                    model::Striping::kStriped, in_type, in_dims, in_stripe);
    model::add_port(fn, "out", model::PortDirection::kOut,
                    model::Striping::kStriped, out_type, out_dims,
                    out_stripe);
    return fn;
  };

  model::ModelObject& src =
      model::add_function(app, "cube_source", "matrix_source", kNodes);
  src.set_property("role", "source");
  model::add_port(src, "out", model::PortDirection::kOut,
                  model::Striping::kStriped, "cfloat", cube, 1);

  // Pulse compression: FFT along range; the cube stays striped by pulses.
  striped_fn("range_fft", "isspl.fft_rows", cube, 1, cube, 1, "cfloat",
             "cfloat",
             static_cast<double>(kChannels * kPulses * kRange) * 10.0);

  // The 3-D corner turn happens on this arc: range_fft.out is striped
  // along pulses (dim 1), transpose_batch.in along range (dim 2).
  striped_fn("pulse_to_range", "isspl.transpose_batch", cube, 2, turned, 1,
             "cfloat", "cfloat",
             static_cast<double>(kChannels * kPulses * kRange));

  striped_fn("doppler_fft", "isspl.fft_rows", turned, 1, turned, 1, "cfloat",
             "cfloat",
             static_cast<double>(kChannels * kPulses * kRange) * 10.0);

  striped_fn("beamform", "isspl.power_sum_outer", turned, 1, map2d, 0,
             "cfloat", "float",
             static_cast<double>(kChannels * kPulses * kRange) * 2.0);

  model::ModelObject& sink =
      model::add_function(app, "detection_map", "float_sink", kNodes);
  sink.set_property("role", "sink");
  model::add_port(sink, "in", model::PortDirection::kIn,
                  model::Striping::kStriped, "float", map2d, 0);

  model::connect(app, "cube_source.out", "range_fft.in");
  model::connect(app, "range_fft.out", "pulse_to_range.in");
  model::connect(app, "pulse_to_range.out", "doppler_fft.in");
  model::connect(app, "doppler_fft.out", "beamform.in");
  model::connect(app, "beamform.out", "detection_map.in");

  model::ModelObject& mapping = model::add_mapping(root, "mapping", "cspi");
  std::vector<int> ranks;
  for (int r = 0; r < kNodes; ++r) ranks.push_back(r);
  for (const char* fn : {"cube_source", "range_fft", "pulse_to_range",
                         "doppler_fft", "beamform", "detection_map"}) {
    model::assign_ranks(root, mapping, fn, ranks);
  }

  core::Project project(std::move(workspace));
  runtime::ExecuteOptions options;
  options.iterations = 3;
  const runtime::RunStats stats = project.execute(options);

  std::printf("STAP chain: %zu channels x %zu pulses x %zu range gates on "
              "%d nodes\n",
              kChannels, kPulses, kRange, kNodes);
  std::printf("mean latency %.3f ms, period %.3f ms (virtual)\n",
              stats.mean_latency() * 1e3, stats.period * 1e3);
  std::printf("detection-map energy per iteration:");
  for (double v : stats.results.at("detection_map")) std::printf(" %.3e", v);
  std::printf("\n\n%s", viz::summary_report(stats.trace).c_str());
  return 0;
}
