// openSAGE quickstart: the whole paper pipeline in one small program.
//
//  1. Capture an application + hardware + mapping design (the Designer).
//  2. Generate glue code from the model with the Alter generator.
//  3. Execute the generated configuration on the emulated platform.
//  4. Inspect the run with the Visualizer.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/project.hpp"
#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"
#include "model/shelf.hpp"
#include "viz/analysis.hpp"

using namespace sage;

int main() {
  // --- 1. Design capture ----------------------------------------------------
  auto workspace = std::make_unique<model::Workspace>("quickstart");
  model::ModelObject& root = workspace->root();

  // Hardware: one quad-PowerPC board from the hardware shelf idiom.
  model::add_cspi_platform(root, /*nodes=*/4);

  // Application: source -> row FFT -> sink on a 256x256 complex matrix,
  // every function running one thread per node.
  model::ModelObject& app = model::add_application(root, "quickstart_app");
  const std::vector<std::size_t> dims{256, 256};

  model::ModelObject& src = model::add_function(app, "src", "matrix_source",
                                                /*threads=*/4);
  src.set_property("role", "source");
  model::add_port(src, "out", model::PortDirection::kOut,
                  model::Striping::kStriped, "cfloat", dims, 0);

  model::ModelObject& fft =
      model::add_function(app, "fft", "isspl.fft_rows", 4, 256 * 256 * 10.0);
  model::add_port(fft, "in", model::PortDirection::kIn,
                  model::Striping::kStriped, "cfloat", dims, 0);
  model::add_port(fft, "out", model::PortDirection::kOut,
                  model::Striping::kStriped, "cfloat", dims, 0);

  model::ModelObject& sink = model::add_function(app, "sink", "matrix_sink", 4);
  sink.set_property("role", "sink");
  model::add_port(sink, "in", model::PortDirection::kIn,
                  model::Striping::kStriped, "cfloat", dims, 0);

  model::connect(app, "src.out", "fft.in");
  model::connect(app, "fft.out", "sink.in");

  // Mapping: one thread of each function on each of the four nodes.
  model::ModelObject& mapping = model::add_mapping(root, "mapping", "cspi");
  for (const char* fn : {"src", "fft", "sink"}) {
    model::assign_ranks(root, mapping, fn, {0, 1, 2, 3});
  }

  // --- 2. Glue generation -----------------------------------------------------
  core::Project project(std::move(workspace));
  const codegen::GeneratedArtifacts& artifacts = project.generate();
  std::printf("=== generated glue.cfg (first lines) ===\n");
  const std::string& cfg = artifacts.glue_config_text();
  std::printf("%.*s...\n\n", 360, cfg.c_str());

  // --- 3. Execution -------------------------------------------------------------
  // A warm session keeps the emulated machine and all buffers alive, so
  // repeated runs only pay a per-run reset (the one-shot equivalent is
  // project.execute(options)).
  runtime::ExecuteOptions options;
  options.iterations = 4;
  auto session = project.open_session(options);
  const runtime::RunStats stats = session->run();
  std::printf("=== run ===\n");
  std::printf("iterations: %d, mean latency %.3f ms, period %.3f ms\n",
              stats.iterations, stats.mean_latency() * 1e3,
              stats.period * 1e3);
  const runtime::RunStats warm = session->run();
  std::printf("warm rerun: host %.3f ms (cold was %.3f ms)\n",
              warm.host_seconds * 1e3, stats.host_seconds * 1e3);
  std::printf("sink checksum (iteration 0): %.3f\n\n",
              stats.results.at("sink")[0]);

  // --- 4. Visualizer --------------------------------------------------------------
  std::printf("%s", viz::summary_report(stats.trace).c_str());
  return 0;
}
