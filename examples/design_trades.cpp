// Architecture trades with AToT -- "the engineer can use AToT for total
// design optimization, which includes load balancing of CPU resources,
// optimizing over latency constraints, communication minimization and
// scheduling of CPUs and busses."
//
// This example explores node counts for the 2D FFT design: for each
// candidate platform it runs the genetic mapper, estimates latency with
// the list scheduler, checks a latency constraint, then executes the
// best design for real (generated glue + runtime) and compares the
// estimate with the measurement.
//
// Build & run:  ./build/examples/design_trades
#include <cstdio>

#include "apps/benchmarks.hpp"
#include "atot/mapper.hpp"
#include "atot/scheduler.hpp"
#include "core/project.hpp"

using namespace sage;

int main() {
  constexpr std::size_t kSize = 512;
  constexpr double kLatencyBoundSeconds = 0.020;  // 20 ms requirement

  std::printf("AToT design trades: 2D FFT %zux%zu, latency bound %.1f ms\n\n",
              kSize, kSize, kLatencyBoundSeconds * 1e3);
  std::printf("%-8s %14s %14s %10s\n", "Nodes", "GA objective",
              "est.latency", "meets?");

  int best_nodes = 0;
  double best_latency = 0.0;
  for (int nodes : {2, 4, 8}) {
    auto workspace = apps::make_fft2d_workspace(kSize, nodes);
    const atot::MappingProblem problem = atot::build_problem(*workspace);
    const atot::GeneticResult ga = atot::genetic_mapping(problem);
    const atot::ScheduleResult sched =
        atot::list_schedule(problem, ga.best);
    const bool meets = sched.latency <= kLatencyBoundSeconds;
    std::printf("%-8d %14.6f %11.3f ms %10s\n", nodes, ga.cost.objective,
                sched.latency * 1e3, meets ? "yes" : "no");
    if (meets && (best_nodes == 0 || sched.latency < best_latency)) {
      best_nodes = nodes;
      best_latency = sched.latency;
    }
  }

  if (best_nodes == 0) {
    std::printf("\nno candidate met the latency bound; relax the "
                "constraint or add hardware\n");
    return 1;
  }

  std::printf("\nselected platform: %d nodes (estimated %.3f ms)\n",
              best_nodes, best_latency * 1e3);

  // Apply the GA mapping to the selected design and run it for real.
  auto workspace = apps::make_fft2d_workspace(kSize, best_nodes);
  const atot::MappingProblem problem = atot::build_problem(*workspace);
  const atot::GeneticResult ga = atot::genetic_mapping(problem);
  atot::apply_assignment(*workspace, problem, ga.best);
  workspace->validate_or_throw();

  core::Project project(std::move(workspace));
  runtime::ExecuteOptions options;
  options.iterations = 3;
  options.collect_trace = false;
  const runtime::RunStats stats = project.execute(options);

  std::printf("measured on the emulated platform: %.3f ms mean latency\n",
              stats.mean_latency() * 1e3);
  std::printf("(estimate/measured = %.2f; the cost model prices compute at\n"
              " the modeled 200 MHz PowerPC while the emulated run measures\n"
              " host-speed kernels, so estimates run conservative)\n",
              stats.mean_latency() > 0 ? best_latency / stats.mean_latency()
                                       : 0.0);
  return 0;
}
