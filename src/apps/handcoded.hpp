// openSAGE -- hand-coded benchmark implementations.
//
// These are the comparison baselines of the paper's Table 1.0: the same
// Parallel 2D FFT and Distributed Corner Turn written directly against
// minimpi and ISSPL by "hand", the way the CSPI reference versions were
// written against vendor MPI and ISSPL -- no model, no glue code, no
// SAGE runtime, buffers managed manually and the vendor alltoall used
// for the corner turn.
#pragma once

#include <cstddef>
#include <vector>

#include "mpi/alltoall.hpp"
#include "net/fabric_model.hpp"
#include "support/clock.hpp"

namespace sage::apps {

struct HandcodedOptions {
  int iterations = 1;
  net::FabricModel fabric = net::myrinet_fabric();
  /// The vendor-tuned alltoall is the paper's default baseline.
  mpi::AlltoallAlgorithm alltoall = mpi::AlltoallAlgorithm::kVendorDirect;
  double cpu_scale = 1.0;
};

struct HandcodedResult {
  std::vector<support::VirtualSeconds> latencies;  // per iteration
  support::VirtualSeconds period = 0.0;
  support::VirtualSeconds makespan = 0.0;
  std::vector<double> checksums;  // per iteration, global sum
};

/// n x n complex 2D FFT over `nodes` ranks: row FFTs, corner turn
/// (pack + alltoall + block transpose), column FFTs, checksum.
HandcodedResult run_fft2d_handcoded(std::size_t n, int nodes,
                                    const HandcodedOptions& options = {});

/// n x n distributed corner turn over `nodes` ranks.
HandcodedResult run_cornerturn_handcoded(std::size_t n, int nodes,
                                         const HandcodedOptions& options = {});

}  // namespace sage::apps
