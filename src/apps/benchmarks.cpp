#include "apps/benchmarks.hpp"

#include <numeric>
#include <vector>

#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"
#include "support/error.hpp"

namespace sage::apps {

namespace {

using model::ModelObject;
using model::PortDirection;
using model::Striping;

std::vector<int> all_ranks(int nodes) {
  std::vector<int> ranks(static_cast<std::size_t>(nodes));
  std::iota(ranks.begin(), ranks.end(), 0);
  return ranks;
}

void check_benchmark_args(std::size_t n, int nodes) {
  SAGE_CHECK_AS(ModelError, nodes >= 1, "benchmark needs >= 1 node");
  SAGE_CHECK_AS(ModelError, n >= 2 && (n & (n - 1)) == 0,
                "benchmark matrix size must be a power of two, got ", n);
  SAGE_CHECK_AS(ModelError, n % static_cast<std::size_t>(nodes) == 0,
                "matrix size ", n, " must divide over ", nodes, " nodes");
}

}  // namespace

std::unique_ptr<model::Workspace> make_fft2d_workspace(std::size_t n,
                                                       int nodes) {
  check_benchmark_args(n, nodes);
  auto ws = std::make_unique<model::Workspace>("fft2d-project");
  ModelObject& root = ws->root();

  model::add_cspi_platform(root, nodes);
  ModelObject& app = model::add_application(root, "parallel_fft2d");

  const std::vector<std::size_t> dims{n, n};
  const double fft_work =
      static_cast<double>(n) * static_cast<double>(n) * 10.0;  // ~5n^2 log n

  ModelObject& src =
      model::add_function(app, "src", "matrix_source", nodes, 1.0);
  src.set_property("role", "source");
  model::add_port(src, "out", PortDirection::kOut, Striping::kStriped,
                  "cfloat", dims, 0);

  ModelObject& fft_rows =
      model::add_function(app, "fft_rows", "isspl.fft_rows", nodes, fft_work);
  model::add_port(fft_rows, "in", PortDirection::kIn, Striping::kStriped,
                  "cfloat", dims, 0);
  model::add_port(fft_rows, "out", PortDirection::kOut, Striping::kStriped,
                  "cfloat", dims, 0);

  // The distributed corner turn: in-port striped along columns (dim 1)
  // makes the runtime deliver packed column blocks; the kernel transposes
  // them, so the out-port carries the transposed matrix striped by rows.
  ModelObject& ct = model::add_function(app, "corner_turn",
                                        "isspl.corner_turn_local", nodes,
                                        static_cast<double>(n * n));
  model::add_port(ct, "in", PortDirection::kIn, Striping::kStriped, "cfloat",
                  dims, 1);
  model::add_port(ct, "out", PortDirection::kOut, Striping::kStriped,
                  "cfloat", dims, 0);

  ModelObject& fft_cols =
      model::add_function(app, "fft_cols", "isspl.fft_rows", nodes, fft_work);
  model::add_port(fft_cols, "in", PortDirection::kIn, Striping::kStriped,
                  "cfloat", dims, 0);
  model::add_port(fft_cols, "out", PortDirection::kOut, Striping::kStriped,
                  "cfloat", dims, 0);

  ModelObject& sink =
      model::add_function(app, "sink", "matrix_sink", nodes, 1.0);
  sink.set_property("role", "sink");
  model::add_port(sink, "in", PortDirection::kIn, Striping::kStriped,
                  "cfloat", dims, 0);

  model::connect(app, "src.out", "fft_rows.in");
  model::connect(app, "fft_rows.out", "corner_turn.in");
  model::connect(app, "corner_turn.out", "fft_cols.in");
  model::connect(app, "fft_cols.out", "sink.in");

  ModelObject& mapping = model::add_mapping(root, "mapping", "cspi");
  const std::vector<int> ranks = all_ranks(nodes);
  for (const char* fn :
       {"src", "fft_rows", "corner_turn", "fft_cols", "sink"}) {
    model::assign_ranks(root, mapping, fn, ranks);
  }

  ws->validate_or_throw();
  return ws;
}

std::unique_ptr<model::Workspace> make_cornerturn_workspace(std::size_t n,
                                                            int nodes) {
  check_benchmark_args(n, nodes);
  auto ws = std::make_unique<model::Workspace>("cornerturn-project");
  ModelObject& root = ws->root();

  model::add_cspi_platform(root, nodes);
  ModelObject& app = model::add_application(root, "distributed_corner_turn");

  const std::vector<std::size_t> dims{n, n};

  ModelObject& src =
      model::add_function(app, "src", "matrix_source", nodes, 1.0);
  src.set_property("role", "source");
  model::add_port(src, "out", PortDirection::kOut, Striping::kStriped,
                  "cfloat", dims, 0);

  ModelObject& ct = model::add_function(app, "corner_turn",
                                        "isspl.corner_turn_local", nodes,
                                        static_cast<double>(n * n));
  model::add_port(ct, "in", PortDirection::kIn, Striping::kStriped, "cfloat",
                  dims, 1);
  model::add_port(ct, "out", PortDirection::kOut, Striping::kStriped,
                  "cfloat", dims, 0);

  ModelObject& sink =
      model::add_function(app, "sink", "matrix_sink", nodes, 1.0);
  sink.set_property("role", "sink");
  model::add_port(sink, "in", PortDirection::kIn, Striping::kStriped,
                  "cfloat", dims, 0);

  model::connect(app, "src.out", "corner_turn.in");
  model::connect(app, "corner_turn.out", "sink.in");

  ModelObject& mapping = model::add_mapping(root, "mapping", "cspi");
  const std::vector<int> ranks = all_ranks(nodes);
  for (const char* fn : {"src", "corner_turn", "sink"}) {
    model::assign_ranks(root, mapping, fn, ranks);
  }

  ws->validate_or_throw();
  return ws;
}

}  // namespace sage::apps
