// openSAGE -- the two tutorial pipelines (the quickstart FFT chain and
// the range-Doppler radar chain) as reusable workspace builders, so the
// CLI (`sagec demo quickstart|radar`, `sagec stats`) and the tests can
// instantiate them without duplicating the examples' model-building
// code. The examples stay standalone as narrated tutorials.
#pragma once

#include <cstddef>
#include <memory>

#include "model/workspace.hpp"

namespace sage::apps {

/// Quickstart pipeline: src -> row FFT -> sink over an n x n complex
/// matrix, one thread of every function per node.
std::unique_ptr<model::Workspace> make_quickstart_workspace(
    std::size_t n = 256, int nodes = 4);

/// Range-Doppler radar chain (the paper's motivating application class):
///   pulses -> window -> range FFT -> corner turn -> Doppler FFT
///          -> magnitude -> threshold -> detections
/// over a pulses x range complex cube. The corner turn is expressed
/// purely as port striping (rows in, columns out); the magnitude stage
/// switches the data type from complex to float mid-pipeline.
std::unique_ptr<model::Workspace> make_radar_workspace(
    std::size_t pulses = 256, std::size_t range = 512, int nodes = 8);

}  // namespace sage::apps
