// openSAGE -- the two tutorial pipelines (the quickstart FFT chain and
// the range-Doppler radar chain) as reusable workspace builders, so the
// CLI (`sagec demo quickstart|radar`, `sagec stats`) and the tests can
// instantiate them without duplicating the examples' model-building
// code. The examples stay standalone as narrated tutorials.
#pragma once

#include <cstddef>
#include <memory>

#include "model/workspace.hpp"

namespace sage::apps {

/// Quickstart pipeline: src -> row FFT -> sink over an n x n complex
/// matrix, one thread of every function per node.
std::unique_ptr<model::Workspace> make_quickstart_workspace(
    std::size_t n = 256, int nodes = 4);

/// Range-Doppler radar chain (the paper's motivating application class):
///   pulses -> window -> range FFT -> corner turn -> Doppler FFT
///          -> magnitude -> threshold -> detections
/// over a pulses x range complex cube. The corner turn is expressed
/// purely as port striping (rows in, columns out); the magnitude stage
/// switches the data type from complex to float mid-pipeline.
std::unique_ptr<model::Workspace> make_radar_workspace(
    std::size_t pulses = 256, std::size_t range = 512, int nodes = 8);

/// Online-tuning demo: a deliberately skewed heterogeneous platform --
/// `fast_procs` quick processors (400 MHz, cpu_scale 0.25) next to
/// `slow_procs` processors 16x slower (100 MHz, cpu_scale 4.0) --
/// running a source -> `stages` row-FFT stages -> sink chain of
/// two-threaded functions over an n x n complex matrix. The baked-in
/// mapping is deliberately bad: every function sits on the slow
/// processors, the fast ones idle. `sagec tune` and
/// bench/tune_convergence start here and let the online AToT loop dig
/// the placement out (ROADMAP: "metrics-driven re-mapping").
std::unique_ptr<model::Workspace> make_tuning_workspace(
    std::size_t n = 128, int stages = 4, int fast_procs = 2,
    int slow_procs = 2);

}  // namespace sage::apps
