// openSAGE -- the two MITRE/Rome-Labs benchmark applications as SAGE
// designs: the Parallel 2D FFT and the Distributed Corner Turn, each
// over an n x n complex matrix on a CSPI-like platform.
//
// The corner turn appears in both designs as a pair of port striping
// declarations: an in-port striped along dim 1 receives the packed
// column blocks (the runtime's transfer plan becomes the all-to-all),
// and the corner_turn_local kernel transposes the local block.
#pragma once

#include <cstddef>
#include <memory>

#include "model/workspace.hpp"

namespace sage::apps {

/// Parallel 2D FFT:
///   src -> fft_rows -> corner_turn -> fft_cols -> sink
/// Every function runs one thread per node (ranks 0..nodes-1); matrices
/// are striped by rows except the corner turn input (columns).
std::unique_ptr<model::Workspace> make_fft2d_workspace(std::size_t n,
                                                       int nodes);

/// Distributed corner turn:
///   src -> corner_turn -> sink
std::unique_ptr<model::Workspace> make_cornerturn_workspace(std::size_t n,
                                                            int nodes);

}  // namespace sage::apps
