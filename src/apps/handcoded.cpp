#include "apps/handcoded.hpp"

#include <complex>
#include <cstring>
#include <memory>

#include "isspl/fft.hpp"
#include "isspl/transpose.hpp"
#include "mpi/comm.hpp"
#include "net/machine.hpp"
#include "runtime/registry.hpp"
#include "support/error.hpp"

namespace sage::apps {

namespace {

using Complex = std::complex<float>;

struct PerNodeTimes {
  std::vector<double> starts;  // per iteration
  std::vector<double> ends;
  std::vector<double> checksums;
};

HandcodedResult aggregate(const std::vector<PerNodeTimes>& times,
                          int iterations, double makespan) {
  HandcodedResult result;
  result.makespan = makespan;
  for (int i = 0; i < iterations; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    double start = times.front().starts[idx];
    double end = times.front().ends[idx];
    double checksum = 0.0;
    for (const PerNodeTimes& t : times) {
      start = std::min(start, t.starts[idx]);
      end = std::max(end, t.ends[idx]);
      checksum += t.checksums[idx];
    }
    result.latencies.push_back(end - start);
    result.checksums.push_back(checksum);
  }
  if (iterations > 1) {
    double first_end = times.front().ends[0];
    double last_end =
        times.front().ends[static_cast<std::size_t>(iterations - 1)];
    for (const PerNodeTimes& t : times) {
      first_end = std::max(first_end, t.ends[0]);
      last_end = std::max(
          last_end, t.ends[static_cast<std::size_t>(iterations - 1)]);
    }
    result.period = (last_end - first_end) / (iterations - 1);
  } else if (!result.latencies.empty()) {
    result.period = result.latencies.front();
  }
  return result;
}

void check_args(std::size_t n, int nodes, const HandcodedOptions& options) {
  SAGE_CHECK(nodes >= 1, "need >= 1 node");
  SAGE_CHECK(n >= 2 && (n & (n - 1)) == 0, "n must be a power of two");
  SAGE_CHECK(n % static_cast<std::size_t>(nodes) == 0,
             "n must divide over the nodes");
  SAGE_CHECK(options.iterations >= 1, "need >= 1 iteration");
}

/// Fills this rank's row block with the shared test pattern.
void generate_rows(std::span<Complex> local, std::size_t n, std::size_t row0,
                   int iteration) {
  const std::size_t rows = local.size() / n;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      local[r * n + c] =
          runtime::test_pattern((row0 + r) * n + c, iteration);
    }
  }
}

/// Corner turn, send side: pack my R x n row block into P blocks of
/// R x R (one per destination's column range).
void pack_blocks(std::span<const Complex> local, std::size_t n, int nodes,
                 std::span<Complex> send_buf) {
  const std::size_t r_block = local.size() / n;  // my rows
  const std::size_t c_block = n / static_cast<std::size_t>(nodes);
  for (int dst = 0; dst < nodes; ++dst) {
    isspl::pack_column_block(
        local, r_block, n, static_cast<std::size_t>(dst) * c_block, c_block,
        send_buf.subspan(static_cast<std::size_t>(dst) * r_block * c_block,
                         r_block * c_block));
  }
}

/// Corner turn, receive side: each received R x R block holds src's rows
/// of my columns; transpose each into my rows of the transposed matrix.
void assemble_transposed(std::span<const Complex> recv_buf, std::size_t n,
                         int nodes, std::span<Complex> transposed,
                         std::span<Complex> scratch) {
  const std::size_t block = n / static_cast<std::size_t>(nodes);  // R
  for (int src = 0; src < nodes; ++src) {
    auto in = recv_buf.subspan(static_cast<std::size_t>(src) * block * block,
                               block * block);
    auto tmp = scratch.subspan(0, block * block);
    isspl::transpose(in, tmp, block, block);
    // tmp is (my cols) x (src rows); scatter rows into the full R x n.
    for (std::size_t c = 0; c < block; ++c) {
      std::memcpy(transposed.data() + c * n +
                      static_cast<std::size_t>(src) * block,
                  tmp.data() + c * block, block * sizeof(Complex));
    }
  }
}

HandcodedResult run_benchmark(std::size_t n, int nodes,
                              const HandcodedOptions& options,
                              bool with_ffts) {
  check_args(n, nodes, options);
  const std::size_t block = n / static_cast<std::size_t>(nodes);  // R

  net::Machine machine(nodes, options.fabric, options.cpu_scale);
  std::vector<PerNodeTimes> times(static_cast<std::size_t>(nodes));

  machine.run([&](net::NodeContext& node) {
    const int rank = node.rank();
    mpi::Communicator comm(node);
    PerNodeTimes& my_times = times[static_cast<std::size_t>(rank)];

    std::vector<Complex> local(block * n);       // my rows
    std::vector<Complex> send_buf(block * n);    // packed blocks
    std::vector<Complex> recv_buf(block * n);
    std::vector<Complex> transposed(block * n);  // my rows of X^T
    std::vector<Complex> scratch(block * block);

    // Plans are built once outside the timed loop, as a tuned
    // hand-coded version would.
    std::unique_ptr<isspl::FftPlan> plan;
    if (with_ffts) {
      plan = std::make_unique<isspl::FftPlan>(n, isspl::FftDirection::kForward);
    }

    for (int iter = 0; iter < options.iterations; ++iter) {
      my_times.starts.push_back(node.now());

      node.compute([&] {
        generate_rows(local, n, static_cast<std::size_t>(rank) * block, iter);
        if (with_ffts) {
          plan->execute_rows(local, block);  // row FFTs in place
        }
        pack_blocks(local, n, nodes, send_buf);
      });

      mpi::alltoall<Complex>(comm, send_buf, recv_buf, block * block,
                             options.alltoall);

      double checksum = 0.0;
      node.compute([&] {
        assemble_transposed(recv_buf, n, nodes, transposed, scratch);
        if (with_ffts) {
          plan->execute_rows(transposed, block);  // column FFTs
        }
        checksum = runtime::block_checksum(transposed);
      });

      my_times.checksums.push_back(checksum);
      my_times.ends.push_back(node.now());
    }
  });

  double makespan = 0.0;
  for (const PerNodeTimes& t : times) {
    if (!t.ends.empty()) makespan = std::max(makespan, t.ends.back());
  }
  return aggregate(times, options.iterations, makespan);
}

}  // namespace

HandcodedResult run_fft2d_handcoded(std::size_t n, int nodes,
                                    const HandcodedOptions& options) {
  return run_benchmark(n, nodes, options, /*with_ffts=*/true);
}

HandcodedResult run_cornerturn_handcoded(std::size_t n, int nodes,
                                         const HandcodedOptions& options) {
  return run_benchmark(n, nodes, options, /*with_ffts=*/false);
}

}  // namespace sage::apps
