#include "apps/pipelines.hpp"

#include <numeric>
#include <vector>

#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"
#include "support/error.hpp"

namespace sage::apps {

namespace {

using model::ModelObject;
using model::PortDirection;
using model::Striping;

std::vector<int> all_ranks(int nodes) {
  std::vector<int> ranks(static_cast<std::size_t>(nodes));
  std::iota(ranks.begin(), ranks.end(), 0);
  return ranks;
}

void check_pipeline_args(std::size_t rows, int nodes) {
  SAGE_CHECK_AS(ModelError, nodes >= 1, "pipeline needs >= 1 node");
  SAGE_CHECK_AS(ModelError, rows >= 1, "pipeline needs >= 1 row");
  SAGE_CHECK_AS(ModelError, rows % static_cast<std::size_t>(nodes) == 0,
                "row count ", rows, " must divide over ", nodes, " nodes");
}

ModelObject& add_stage(ModelObject& app, const char* name, const char* kernel,
                       int threads, const char* in_type, const char* out_type,
                       std::vector<std::size_t> in_dims,
                       std::vector<std::size_t> out_dims,
                       int in_stripe_dim = 0, int out_stripe_dim = 0,
                       double work = 0.0) {
  ModelObject& fn = model::add_function(app, name, kernel, threads, work);
  model::add_port(fn, "in", PortDirection::kIn, Striping::kStriped, in_type,
                  std::move(in_dims), in_stripe_dim);
  model::add_port(fn, "out", PortDirection::kOut, Striping::kStriped,
                  out_type, std::move(out_dims), out_stripe_dim);
  return fn;
}

}  // namespace

std::unique_ptr<model::Workspace> make_quickstart_workspace(std::size_t n,
                                                            int nodes) {
  check_pipeline_args(n, nodes);
  auto ws = std::make_unique<model::Workspace>("quickstart");
  ModelObject& root = ws->root();
  model::add_cspi_platform(root, nodes);

  ModelObject& app = model::add_application(root, "quickstart_app");
  const std::vector<std::size_t> dims{n, n};
  const double fft_work =
      static_cast<double>(n) * static_cast<double>(n) * 10.0;

  ModelObject& src =
      model::add_function(app, "src", "matrix_source", nodes);
  src.set_property("role", "source");
  model::add_port(src, "out", PortDirection::kOut, Striping::kStriped,
                  "cfloat", dims, 0);

  add_stage(app, "fft", "isspl.fft_rows", nodes, "cfloat", "cfloat", dims,
            dims, 0, 0, fft_work);

  ModelObject& sink =
      model::add_function(app, "sink", "matrix_sink", nodes);
  sink.set_property("role", "sink");
  model::add_port(sink, "in", PortDirection::kIn, Striping::kStriped,
                  "cfloat", dims, 0);

  model::connect(app, "src.out", "fft.in");
  model::connect(app, "fft.out", "sink.in");

  ModelObject& mapping = model::add_mapping(root, "mapping", "cspi");
  for (const char* fn : {"src", "fft", "sink"}) {
    model::assign_ranks(root, mapping, fn, all_ranks(nodes));
  }
  return ws;
}

std::unique_ptr<model::Workspace> make_radar_workspace(std::size_t pulses,
                                                       std::size_t range,
                                                       int nodes) {
  check_pipeline_args(pulses, nodes);
  check_pipeline_args(range, nodes);
  auto ws = std::make_unique<model::Workspace>("radar");
  ModelObject& root = ws->root();
  model::add_cspi_platform(root, nodes);

  ModelObject& app = model::add_application(root, "range_doppler");
  const std::vector<std::size_t> cube{pulses, range};    // pulse-major
  const std::vector<std::size_t> turned{range, pulses};  // range-major
  const double cells = static_cast<double>(pulses) * static_cast<double>(range);

  ModelObject& src =
      model::add_function(app, "pulses", "matrix_source", nodes);
  src.set_property("role", "source");
  model::add_port(src, "out", PortDirection::kOut, Striping::kStriped,
                  "cfloat", cube, 0);

  ModelObject& window =
      add_stage(app, "window", "isspl.window_rows", nodes, "cfloat", "cfloat",
                cube, cube, 0, 0, cells * 2.0);
  window.set_property("param_window", 2.0);  // Hamming

  add_stage(app, "range_fft", "isspl.fft_rows", nodes, "cfloat", "cfloat",
            cube, cube, 0, 0, cells * 10.0);

  // Corner turn: consume columns (range gates across pulses), emit the
  // turned cube striped by rows again.
  add_stage(app, "corner_turn", "isspl.corner_turn_local", nodes, "cfloat",
            "cfloat", cube, turned, /*in_stripe_dim=*/1, /*out_stripe_dim=*/0,
            cells * 1.0);

  add_stage(app, "doppler_fft", "isspl.fft_rows", nodes, "cfloat", "cfloat",
            turned, turned, 0, 0, cells * 10.0);

  add_stage(app, "magnitude", "isspl.magnitude", nodes, "cfloat", "float",
            turned, turned, 0, 0, cells * 2.0);

  ModelObject& threshold =
      add_stage(app, "threshold", "isspl.threshold", nodes, "float", "float",
                turned, turned, 0, 0, cells * 1.0);
  threshold.set_property("param_cutoff", 40.0);  // detection cutoff

  ModelObject& sink =
      model::add_function(app, "detections", "float_sink", nodes);
  sink.set_property("role", "sink");
  model::add_port(sink, "in", PortDirection::kIn, Striping::kStriped, "float",
                  turned, 0);

  model::connect(app, "pulses.out", "window.in");
  model::connect(app, "window.out", "range_fft.in");
  model::connect(app, "range_fft.out", "corner_turn.in");
  model::connect(app, "corner_turn.out", "doppler_fft.in");
  model::connect(app, "doppler_fft.out", "magnitude.in");
  model::connect(app, "magnitude.out", "threshold.in");
  model::connect(app, "threshold.out", "detections.in");

  ModelObject& mapping = model::add_mapping(root, "mapping", "cspi");
  for (const char* fn : {"pulses", "window", "range_fft", "corner_turn",
                         "doppler_fft", "magnitude", "threshold",
                         "detections"}) {
    model::assign_ranks(root, mapping, fn, all_ranks(nodes));
  }
  return ws;
}

std::unique_ptr<model::Workspace> make_tuning_workspace(std::size_t n,
                                                        int stages,
                                                        int fast_procs,
                                                        int slow_procs) {
  constexpr int kThreads = 2;  // per function
  SAGE_CHECK_AS(ModelError, stages >= 1, "tuning pipeline needs >= 1 stage");
  SAGE_CHECK_AS(ModelError, fast_procs >= 1 && slow_procs >= 1,
                "tuning platform needs >= 1 fast and >= 1 slow processor");
  check_pipeline_args(n, kThreads);

  auto ws = std::make_unique<model::Workspace>("tuning");
  ModelObject& root = ws->root();

  // The skewed machine: the fast board's processors run 16x quicker
  // than the slow board's (cpu_scale 0.25 vs 4.0). Fast processors take
  // ranks [0, fast_procs), slow ones the rest.
  ModelObject& hw = model::add_hardware(root, "hetero");
  ModelObject& fast_board = model::add_board(hw, "fast_board");
  for (int p = 0; p < fast_procs; ++p) {
    model::add_processor(fast_board, "fast" + std::to_string(p), 400.0,
                         256ull << 20, /*cpu_scale=*/0.25);
  }
  ModelObject& slow_board = model::add_board(hw, "slow_board");
  for (int p = 0; p < slow_procs; ++p) {
    model::add_processor(slow_board, "slow" + std::to_string(p), 100.0,
                         256ull << 20, /*cpu_scale=*/4.0);
  }

  ModelObject& app = model::add_application(root, "tuning_chain");
  const std::vector<std::size_t> dims{n, n};
  const double fft_work =
      static_cast<double>(n) * static_cast<double>(n) * 10.0;

  ModelObject& src = model::add_function(app, "src", "matrix_source",
                                         kThreads);
  src.set_property("role", "source");
  model::add_port(src, "out", PortDirection::kOut, Striping::kStriped,
                  "cfloat", dims, 0);

  std::vector<std::string> chain{"src"};
  for (int s = 0; s < stages; ++s) {
    const std::string name = "stage" + std::to_string(s);
    add_stage(app, name.c_str(), "isspl.fft_rows", kThreads, "cfloat",
              "cfloat", dims, dims, 0, 0, fft_work);
    chain.push_back(name);
  }

  ModelObject& sink = model::add_function(app, "sink", "matrix_sink",
                                          kThreads);
  sink.set_property("role", "sink");
  model::add_port(sink, "in", PortDirection::kIn, Striping::kStriped,
                  "cfloat", dims, 0);
  chain.push_back("sink");

  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    model::connect(app, chain[i] + ".out", chain[i + 1] + ".in");
  }

  // The deliberately bad start: every function's threads cycle over the
  // slow ranks only; the fast processors sit idle until a tuner moves
  // work onto them.
  std::vector<int> slow_ranks(static_cast<std::size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    slow_ranks[static_cast<std::size_t>(t)] = fast_procs + (t % slow_procs);
  }
  ModelObject& mapping = model::add_mapping(root, "mapping", "hetero");
  for (const std::string& fn : chain) {
    model::assign_ranks(root, mapping, fn, slow_ranks);
  }
  return ws;
}

}  // namespace sage::apps
