// openSAGE -- the glue-code generation driver.
//
// Runs the Alter glue-code generator (or a caller-supplied Alter
// program) against a validated workspace and returns the generated
// artifacts: the runtime configuration (parsed and validated) plus every
// emitted source stream. This is Figure 1.0 of the paper as code:
// SAGE models -> Alter glue-code generator -> source files.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "model/workspace.hpp"
#include "runtime/glue_config.hpp"

namespace sage::codegen {

struct GenerateOptions {
  /// Overrides the model's iterations-default when > 0.
  int iterations_default = 0;
  /// Alter program to run; empty uses the standard generator.
  std::string program;
};

struct GeneratedArtifacts {
  /// Every stream the generator emitted, keyed by output name.
  std::map<std::string, std::string> outputs;
  /// The parsed, validated runtime configuration (from "glue.cfg").
  runtime::GlueConfig config;
  /// Wall-clock generation time (host seconds; tooling cost, not
  /// modeled application time). Split into the bytecode-compile and
  /// VM-execute stages; compile_seconds is ~0 on warm calls because the
  /// builtin generator program's chunk is compiled once per process.
  double generation_seconds = 0.0;
  double compile_seconds = 0.0;
  double execute_seconds = 0.0;

  const std::string& glue_config_text() const { return outputs.at("glue.cfg"); }
  const std::string& glue_source_text() const { return outputs.at("glue.c"); }
};

/// Validates the workspace, runs the generator, parses and validates the
/// resulting configuration. Throws sage::ModelError / sage::AlterError /
/// sage::ConfigError on failure.
GeneratedArtifacts generate_glue(model::Workspace& workspace,
                                 const GenerateOptions& options = {});

}  // namespace sage::codegen
