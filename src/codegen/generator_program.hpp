// openSAGE -- source text of the Alter glue-code generator program.
#pragma once

#include <string>

namespace sage::codegen {

/// The Alter program that generates glue.cfg and glue.c from an attached
/// model (see generator_program.cpp for the program itself).
const std::string& glue_generator_source();

}  // namespace sage::codegen
