#include "codegen/generator.hpp"

#include "alter/interp.hpp"
#include "codegen/generator_program.hpp"
#include "support/clock.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace sage::codegen {

GeneratedArtifacts generate_glue(model::Workspace& workspace,
                                 const GenerateOptions& options) {
  workspace.validate_or_throw();

  const double start = support::wall_seconds();

  alter::Interpreter interp;
  interp.attach_model(workspace.root());
  const std::string& program =
      options.program.empty() ? glue_generator_source() : options.program;
  interp.eval_string(program);

  GeneratedArtifacts artifacts;
  artifacts.outputs = interp.outputs();

  auto it = artifacts.outputs.find("glue.cfg");
  SAGE_CHECK_AS(ConfigError, it != artifacts.outputs.end(),
                "generator produced no 'glue.cfg' stream");
  artifacts.config = runtime::parse_glue_config(it->second);
  if (options.iterations_default > 0) {
    artifacts.config.iterations_default = options.iterations_default;
  }
  artifacts.config.validate();

  artifacts.generation_seconds = support::wall_seconds() - start;
  support::log_info("generated glue for application '",
                    artifacts.config.application, "': ",
                    artifacts.config.functions.size(), " functions, ",
                    artifacts.config.buffers.size(), " buffers, ",
                    artifacts.config.nodes, " nodes in ",
                    artifacts.generation_seconds, "s");
  return artifacts;
}

}  // namespace sage::codegen
