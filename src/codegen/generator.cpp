#include "codegen/generator.hpp"

#include "alter/compiler.hpp"
#include "alter/interp.hpp"
#include "codegen/generator_program.hpp"
#include "support/clock.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace sage::codegen {

namespace {

/// The builtin glue generator program never changes within a process,
/// so its bytecode chunk is compiled exactly once and shared by every
/// generate_glue call (chunks are immutable and safe to re-execute).
const alter::ChunkPtr& builtin_generator_chunk() {
  static const alter::ChunkPtr chunk =
      alter::compile_string(glue_generator_source(), "glue-generator");
  return chunk;
}

}  // namespace

GeneratedArtifacts generate_glue(model::Workspace& workspace,
                                 const GenerateOptions& options) {
  workspace.validate_or_throw();

  const double start = support::wall_seconds();

  alter::Interpreter interp;
  interp.attach_model(workspace.root());
  alter::ChunkPtr chunk;
  if (options.program.empty()) {
    chunk = builtin_generator_chunk();
  } else {
    chunk = interp.compile(options.program);
  }
  const double compiled = support::wall_seconds();
  interp.execute(chunk);
  const double executed = support::wall_seconds();

  GeneratedArtifacts artifacts;
  artifacts.outputs = interp.outputs();

  auto it = artifacts.outputs.find("glue.cfg");
  SAGE_CHECK_AS(ConfigError, it != artifacts.outputs.end(),
                "generator produced no 'glue.cfg' stream");
  artifacts.config = runtime::parse_glue_config(it->second);
  if (options.iterations_default > 0) {
    artifacts.config.iterations_default = options.iterations_default;
  }
  artifacts.config.validate();

  artifacts.compile_seconds = compiled - start;
  artifacts.execute_seconds = executed - compiled;
  artifacts.generation_seconds = support::wall_seconds() - start;
  support::log_info("generated glue for application '",
                    artifacts.config.application, "': ",
                    artifacts.config.functions.size(), " functions, ",
                    artifacts.config.buffers.size(), " buffers, ",
                    artifacts.config.nodes, " nodes in ",
                    artifacts.generation_seconds, "s");
  return artifacts;
}

}  // namespace sage::codegen
