// Core (model-independent) Alter builtins: arithmetic, comparison,
// lists, strings, formatted output, and the emit-stream interface the
// glue-code generator writes files through.
#include <algorithm>
#include <cmath>

#include "alter/interp.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace sage::alter {

namespace {

void expect_args(const std::string& name, const ValueList& args,
                 std::size_t count) {
  SAGE_CHECK_AS(AlterError, args.size() == count, "(", name, " ...) takes ",
                count, " args, got ", args.size());
}

void expect_min_args(const std::string& name, const ValueList& args,
                     std::size_t count) {
  SAGE_CHECK_AS(AlterError, args.size() >= count, "(", name,
                " ...) takes at least ", count, " args, got ", args.size());
}

bool all_ints(const ValueList& args) {
  return std::all_of(args.begin(), args.end(),
                     [](const Value& v) { return v.is_int(); });
}

Value numeric_fold(const std::string& name, const ValueList& args,
                   std::int64_t int_init,
                   std::int64_t (*ifold)(std::int64_t, std::int64_t),
                   double (*dfold)(double, double)) {
  expect_min_args(name, args, 1);
  if (all_ints(args)) {
    std::int64_t acc = args.size() == 1 ? int_init : args[0].as_int();
    const std::size_t start = args.size() == 1 ? 0 : 1;
    for (std::size_t i = start; i < args.size(); ++i) {
      acc = ifold(acc, args[i].as_int());
    }
    return Value(acc);
  }
  double acc =
      args.size() == 1 ? static_cast<double>(int_init) : args[0].as_real();
  const std::size_t start = args.size() == 1 ? 0 : 1;
  for (std::size_t i = start; i < args.size(); ++i) {
    acc = dfold(acc, args[i].as_real());
  }
  return Value(acc);
}

Value compare_chain(const std::string& name, const ValueList& args,
                    bool (*cmp)(double, double)) {
  expect_min_args(name, args, 2);
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (!cmp(args[i].as_real(), args[i + 1].as_real())) return Value(false);
  }
  return Value(true);
}

std::string format_impl(Interpreter&, const ValueList& args) {
  expect_min_args("format", args, 1);
  const std::string& spec = args[0].as_string();
  std::string out;
  std::size_t arg_index = 1;
  for (std::size_t i = 0; i < spec.size(); ++i) {
    if (spec[i] != '~' || i + 1 == spec.size()) {
      out += spec[i];
      continue;
    }
    const char directive = spec[++i];
    switch (directive) {
      case 'a':  // display form
      case 'A':
        SAGE_CHECK_AS(AlterError, arg_index < args.size(),
                      "format: not enough arguments for directives");
        out += args[arg_index++].display();
        break;
      case 's':  // write form
      case 'S':
        SAGE_CHECK_AS(AlterError, arg_index < args.size(),
                      "format: not enough arguments for directives");
        out += args[arg_index++].to_string();
        break;
      case '%':
        out += '\n';
        break;
      case '~':
        out += '~';
        break;
      default:
        raise<AlterError>("format: unknown directive '~", directive, "'");
    }
  }
  return out;
}

void def(const EnvPtr& env, const std::string& name,
         std::function<Value(Interpreter&, ValueList&)> fn) {
  env->define(name, Value::builtin(name, std::move(fn)));
}

}  // namespace

void install_core_builtins(Interpreter& interp, const EnvPtr& env) {
  (void)interp;

  // --- arithmetic ------------------------------------------------------------
  def(env, "+", [](Interpreter&, ValueList& args) {
    return numeric_fold(
        "+", args, 0, [](std::int64_t a, std::int64_t b) { return a + b; },
        [](double a, double b) { return a + b; });
  });
  def(env, "-", [](Interpreter&, ValueList& args) {
    if (args.size() == 1) {
      if (args[0].is_int()) return Value(-args[0].as_int());
      return Value(-args[0].as_real());
    }
    return numeric_fold(
        "-", args, 0, [](std::int64_t a, std::int64_t b) { return a - b; },
        [](double a, double b) { return a - b; });
  });
  def(env, "*", [](Interpreter&, ValueList& args) {
    return numeric_fold(
        "*", args, 1, [](std::int64_t a, std::int64_t b) { return a * b; },
        [](double a, double b) { return a * b; });
  });
  def(env, "/", [](Interpreter&, ValueList& args) {
    expect_min_args("/", args, 2);
    if (all_ints(args)) {
      std::int64_t acc = args[0].as_int();
      for (std::size_t i = 1; i < args.size(); ++i) {
        const std::int64_t d = args[i].as_int();
        SAGE_CHECK_AS(AlterError, d != 0, "division by zero");
        acc /= d;
      }
      return Value(acc);
    }
    double acc = args[0].as_real();
    for (std::size_t i = 1; i < args.size(); ++i) acc /= args[i].as_real();
    return Value(acc);
  });
  def(env, "mod", [](Interpreter&, ValueList& args) {
    expect_args("mod", args, 2);
    const std::int64_t d = args[1].as_int();
    SAGE_CHECK_AS(AlterError, d != 0, "mod by zero");
    return Value(args[0].as_int() % d);
  });
  def(env, "abs", [](Interpreter&, ValueList& args) {
    expect_args("abs", args, 1);
    if (args[0].is_int()) return Value(std::abs(args[0].as_int()));
    return Value(std::fabs(args[0].as_real()));
  });
  def(env, "min", [](Interpreter&, ValueList& args) {
    return numeric_fold(
        "min", args, 0,
        [](std::int64_t a, std::int64_t b) { return std::min(a, b); },
        [](double a, double b) { return std::min(a, b); });
  });
  def(env, "max", [](Interpreter&, ValueList& args) {
    return numeric_fold(
        "max", args, 0,
        [](std::int64_t a, std::int64_t b) { return std::max(a, b); },
        [](double a, double b) { return std::max(a, b); });
  });
  def(env, "floor", [](Interpreter&, ValueList& args) {
    expect_args("floor", args, 1);
    return Value(static_cast<std::int64_t>(std::floor(args[0].as_real())));
  });
  def(env, "ceiling", [](Interpreter&, ValueList& args) {
    expect_args("ceiling", args, 1);
    return Value(static_cast<std::int64_t>(std::ceil(args[0].as_real())));
  });

  // --- comparison / logic -------------------------------------------------------
  def(env, "=", [](Interpreter&, ValueList& args) {
    return compare_chain("=", args, [](double a, double b) { return a == b; });
  });
  def(env, "<", [](Interpreter&, ValueList& args) {
    return compare_chain("<", args, [](double a, double b) { return a < b; });
  });
  def(env, ">", [](Interpreter&, ValueList& args) {
    return compare_chain(">", args, [](double a, double b) { return a > b; });
  });
  def(env, "<=", [](Interpreter&, ValueList& args) {
    return compare_chain("<=", args, [](double a, double b) { return a <= b; });
  });
  def(env, ">=", [](Interpreter&, ValueList& args) {
    return compare_chain(">=", args, [](double a, double b) { return a >= b; });
  });
  def(env, "not", [](Interpreter&, ValueList& args) {
    expect_args("not", args, 1);
    return Value(!args[0].truthy());
  });
  def(env, "equal?", [](Interpreter&, ValueList& args) {
    expect_args("equal?", args, 2);
    return Value(args[0].equals(args[1]));
  });

  // --- predicates ---------------------------------------------------------------
  def(env, "null?", [](Interpreter&, ValueList& args) {
    expect_args("null?", args, 1);
    return Value(args[0].is_nil() ||
                 (args[0].is_list() && args[0].as_list().empty()));
  });
  def(env, "list?", [](Interpreter&, ValueList& args) {
    expect_args("list?", args, 1);
    return Value(args[0].is_list());
  });
  def(env, "number?", [](Interpreter&, ValueList& args) {
    expect_args("number?", args, 1);
    return Value(args[0].is_number());
  });
  def(env, "string?", [](Interpreter&, ValueList& args) {
    expect_args("string?", args, 1);
    return Value(args[0].is_string());
  });
  def(env, "symbol?", [](Interpreter&, ValueList& args) {
    expect_args("symbol?", args, 1);
    return Value(args[0].is_symbol());
  });
  def(env, "object?", [](Interpreter&, ValueList& args) {
    expect_args("object?", args, 1);
    return Value(args[0].is_object());
  });
  def(env, "procedure?", [](Interpreter&, ValueList& args) {
    expect_args("procedure?", args, 1);
    return Value(args[0].is_callable());
  });

  // --- lists ------------------------------------------------------------------
  def(env, "list", [](Interpreter&, ValueList& args) {
    return Value::list(std::move(args));
  });
  def(env, "cons", [](Interpreter&, ValueList& args) {
    expect_args("cons", args, 2);
    ValueList out;
    out.push_back(std::move(args[0]));
    for (const Value& v : args[1].as_list()) out.push_back(v);
    return Value::list(std::move(out));
  });
  def(env, "first", [](Interpreter&, ValueList& args) {
    expect_args("first", args, 1);
    const ValueList& items = args[0].as_list();
    return items.empty() ? Value::nil() : items.front();
  });
  def(env, "rest", [](Interpreter&, ValueList& args) {
    expect_args("rest", args, 1);
    const ValueList& items = args[0].as_list();
    if (items.empty()) return Value::list({});
    return Value::list(ValueList(items.begin() + 1, items.end()));
  });
  def(env, "last", [](Interpreter&, ValueList& args) {
    expect_args("last", args, 1);
    const ValueList& items = args[0].as_list();
    return items.empty() ? Value::nil() : items.back();
  });
  def(env, "nth", [](Interpreter&, ValueList& args) {
    expect_args("nth", args, 2);
    const std::int64_t n = args[0].as_int();
    const ValueList& items = args[1].as_list();
    SAGE_CHECK_AS(AlterError,
                  n >= 0 && n < static_cast<std::int64_t>(items.size()),
                  "nth: index ", n, " out of range for list of ",
                  items.size());
    return items[static_cast<std::size_t>(n)];
  });
  def(env, "length", [](Interpreter&, ValueList& args) {
    expect_args("length", args, 1);
    if (args[0].is_string()) {
      return Value(static_cast<std::int64_t>(args[0].as_string().size()));
    }
    return Value(static_cast<std::int64_t>(args[0].as_list().size()));
  });
  def(env, "append", [](Interpreter&, ValueList& args) {
    ValueList out;
    for (const Value& arg : args) {
      for (const Value& v : arg.as_list()) out.push_back(v);
    }
    return Value::list(std::move(out));
  });
  def(env, "reverse", [](Interpreter&, ValueList& args) {
    expect_args("reverse", args, 1);
    ValueList out = args[0].as_list();
    std::reverse(out.begin(), out.end());
    return Value::list(std::move(out));
  });
  def(env, "range", [](Interpreter&, ValueList& args) {
    expect_min_args("range", args, 1);
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    if (args.size() == 1) {
      hi = args[0].as_int();
    } else {
      lo = args[0].as_int();
      hi = args[1].as_int();
    }
    ValueList out;
    for (std::int64_t i = lo; i < hi; ++i) out.emplace_back(i);
    return Value::list(std::move(out));
  });
  def(env, "map", [](Interpreter& in, ValueList& args) {
    expect_args("map", args, 2);
    ValueList out;
    for (const Value& v : args[1].as_list()) {
      out.push_back(in.apply(args[0], {v}));
    }
    return Value::list(std::move(out));
  });
  def(env, "filter", [](Interpreter& in, ValueList& args) {
    expect_args("filter", args, 2);
    ValueList out;
    for (const Value& v : args[1].as_list()) {
      if (in.apply(args[0], {v}).truthy()) out.push_back(v);
    }
    return Value::list(std::move(out));
  });
  def(env, "reduce", [](Interpreter& in, ValueList& args) {
    expect_args("reduce", args, 3);  // (reduce fn init list)
    Value acc = args[1];
    for (const Value& v : args[2].as_list()) {
      acc = in.apply(args[0], {acc, v});
    }
    return acc;
  });
  def(env, "apply", [](Interpreter& in, ValueList& args) {
    expect_args("apply", args, 2);
    return in.apply(args[0], args[1].as_list());
  });
  def(env, "sort-by", [](Interpreter& in, ValueList& args) {
    expect_args("sort-by", args, 2);  // (sort-by keyfn list)
    ValueList items = args[1].as_list();
    std::stable_sort(items.begin(), items.end(),
                     [&](const Value& a, const Value& b) {
                       return in.apply(args[0], {a}).as_real() <
                              in.apply(args[0], {b}).as_real();
                     });
    return Value::list(std::move(items));
  });
  def(env, "member?", [](Interpreter&, ValueList& args) {
    expect_args("member?", args, 2);
    for (const Value& v : args[1].as_list()) {
      if (v.equals(args[0])) return Value(true);
    }
    return Value(false);
  });
  def(env, "assoc", [](Interpreter&, ValueList& args) {
    expect_args("assoc", args, 2);  // (assoc key alist) -> (key value) | nil
    for (const Value& pair : args[1].as_list()) {
      const ValueList& kv = pair.as_list();
      if (!kv.empty() && kv[0].equals(args[0])) return pair;
    }
    return Value::nil();
  });

  // --- strings -------------------------------------------------------------------
  def(env, "string-append", [](Interpreter&, ValueList& args) {
    std::string out;
    for (const Value& v : args) out += v.display();
    return Value(std::move(out));
  });
  def(env, "substring", [](Interpreter&, ValueList& args) {
    expect_args("substring", args, 3);
    const std::string& s = args[0].as_string();
    const auto from = static_cast<std::size_t>(args[1].as_int());
    const auto to = static_cast<std::size_t>(args[2].as_int());
    SAGE_CHECK_AS(AlterError, from <= to && to <= s.size(),
                  "substring: bad range");
    return Value(s.substr(from, to - from));
  });
  def(env, "string-upcase", [](Interpreter&, ValueList& args) {
    expect_args("string-upcase", args, 1);
    std::string out = args[0].as_string();
    for (auto& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return Value(std::move(out));
  });
  def(env, "string-downcase", [](Interpreter&, ValueList& args) {
    expect_args("string-downcase", args, 1);
    return Value(support::to_lower(args[0].as_string()));
  });
  def(env, "number->string", [](Interpreter&, ValueList& args) {
    expect_args("number->string", args, 1);
    return Value(args[0].display());
  });
  def(env, "string->number", [](Interpreter&, ValueList& args) {
    expect_args("string->number", args, 1);
    const std::string& s = args[0].as_string();
    if (support::is_integer(s)) {
      return Value(static_cast<std::int64_t>(support::parse_int(s)));
    }
    return Value(support::parse_double(s));
  });
  def(env, "symbol->string", [](Interpreter&, ValueList& args) {
    expect_args("symbol->string", args, 1);
    return Value(args[0].as_symbol().name);
  });
  def(env, "string->symbol", [](Interpreter&, ValueList& args) {
    expect_args("string->symbol", args, 1);
    return Value::symbol(args[0].as_string());
  });
  def(env, "string-split", [](Interpreter&, ValueList& args) {
    expect_args("string-split", args, 2);  // (string-split s sep-char)
    const std::string& sep = args[1].as_string();
    SAGE_CHECK_AS(AlterError, sep.size() == 1,
                  "string-split: separator must be one character");
    ValueList out;
    for (const std::string& part :
         support::split(args[0].as_string(), sep[0])) {
      out.emplace_back(part);
    }
    return Value::list(std::move(out));
  });
  def(env, "string-join", [](Interpreter&, ValueList& args) {
    expect_args("string-join", args, 2);  // (string-join list sep)
    std::string out;
    const ValueList& items = args[0].as_list();
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i) out += args[1].as_string();
      out += items[i].display();
    }
    return Value(std::move(out));
  });
  def(env, "string-contains?", [](Interpreter&, ValueList& args) {
    expect_args("string-contains?", args, 2);  // (string-contains? needle s)
    return Value(args[1].as_string().find(args[0].as_string()) !=
                 std::string::npos);
  });
  def(env, "string-replace", [](Interpreter&, ValueList& args) {
    expect_args("string-replace", args, 3);  // (string-replace from to s)
    const std::string& from = args[0].as_string();
    const std::string& to = args[1].as_string();
    SAGE_CHECK_AS(AlterError, !from.empty(),
                  "string-replace: empty pattern");
    std::string s = args[2].as_string();
    std::size_t pos = 0;
    while ((pos = s.find(from, pos)) != std::string::npos) {
      s.replace(pos, from.size(), to);
      pos += to.size();
    }
    return Value(std::move(s));
  });
  def(env, "format", [](Interpreter& in, ValueList& args) {
    return Value(format_impl(in, args));
  });

  // --- diagnostics -----------------------------------------------------------------
  def(env, "print", [](Interpreter& in, ValueList& args) {
    std::string line;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i) line += " ";
      line += args[i].display();
    }
    line += "\n";
    in.print(line);
    return Value::nil();
  });
  def(env, "error", [](Interpreter&, ValueList& args) -> Value {
    std::string message;
    for (const Value& v : args) message += v.display();
    raise<AlterError>("alter error: ", message);
  });
  def(env, "assert", [](Interpreter&, ValueList& args) {
    expect_min_args("assert", args, 1);
    if (!args[0].truthy()) {
      std::string message = "assertion failed";
      if (args.size() > 1) message += ": " + args[1].display();
      raise<AlterError>(message);
    }
    return Value(true);
  });

  // --- emit streams ------------------------------------------------------------------
  def(env, "set-output", [](Interpreter& in, ValueList& args) {
    expect_args("set-output", args, 1);
    in.set_output(args[0].as_string());
    return Value::nil();
  });
  def(env, "current-output", [](Interpreter& in, ValueList& args) {
    expect_args("current-output", args, 0);
    return Value(in.current_output_name());
  });
  def(env, "emit", [](Interpreter& in, ValueList& args) {
    for (const Value& v : args) in.emit(v.display());
    return Value::nil();
  });
  def(env, "emit-line", [](Interpreter& in, ValueList& args) {
    for (const Value& v : args) in.emit(v.display());
    in.emit("\n");
    return Value::nil();
  });
}

}  // namespace sage::alter
