// openSAGE -- the Alter resolver + bytecode compiler.
//
// Lowers a read program into an executable Chunk in one structured
// pass per scope:
//   1. classify -- each list form's head is classified as a special
//      form or an application (the same fixed set the tree-walking
//      reference evaluator dispatches on);
//   2. resolve  -- lexical scopes become slot-indexed frames: binding
//      names (params, let bindings, loop variables, body defines) are
//      assigned slots up front, and every variable reference is
//      resolved to a (depth, slot) coordinate or falls back to a
//      late-bound global-by-name access;
//   3. emit     -- special forms lower to jumps and dedicated loop
//      opcodes, constants and symbols are interned into the chunk's
//      pool, and every instruction is tagged with the source line the
//      reader recorded for error attribution.
//
// Semantics match the tree-walking evaluator (alter::Interpreter in
// tree-walk mode); the differential test matrix in tests/ pins the two
// against each other. The one documented divergence: variable
// references resolve lexically at compile time, so a nested lambda
// cannot see a (define ...) or let* binding introduced *after* it in a
// scope the way the dynamic environment walk allowed (no shipped
// script relies on that).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "alter/chunk.hpp"
#include "alter/reader.hpp"

namespace sage::alter {

/// Compiles a read program. `map` (optional) supplies per-form source
/// lines for the chunk's line table; `name` labels the chunk in
/// disassembly and runtime error attribution.
ChunkPtr compile_program(const ValueList& program, const SourceMap* map,
                         std::string name);

/// Reads and compiles `source` in one step, threading reader source
/// positions into the chunk line table.
ChunkPtr compile_string(std::string_view source, std::string name = "script");

/// Splits a lambda parameter list into fixed parameters plus an
/// optional &rest tail. Shared by the compiler and the tree-walking
/// reference evaluator; throws sage::AlterError on malformed lists.
void parse_params(const ValueList& param_list, std::vector<std::string>& params,
                  std::string& rest_param);

}  // namespace sage::alter
