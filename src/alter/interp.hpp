// openSAGE -- the Alter evaluator.
//
// A tree-walking interpreter with lexical closures. Special forms:
//   (quote x) / 'x          (if c a b?)          (cond (c e...)... (else e...))
//   (define name expr)      (define (f a b) ...) (set! name expr)
//   (lambda (a b) ...)      (lambda (a &rest r) ...)
//   (let ((a 1) (b 2)) ...) (let* (...) ...)     (begin e...)
//   (while cond e...)       (and e...) (or e...) (when c e...) (unless c e...)
//   (dolist (x list) e...)  (dotimes (i n) e...)
//
// The interpreter also owns the emit-stream table the glue-code
// generator writes source files into: (set-output "file.c") selects the
// current stream, (emit ...) / (emit-line ...) append to it. A model
// root can be attached so (model-root) and the traversal builtins work.
//
// Since the bytecode pipeline landed, this class is a facade over two
// execution strategies: eval_string compiles to a Chunk and runs it on
// the stack VM (the default), while tree-walk mode keeps the original
// recursive evaluator alive as the reference implementation the
// differential tests pin the VM against.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "alter/chunk.hpp"
#include "alter/env.hpp"
#include "alter/value.hpp"

namespace sage::model {
class ModelObject;
}

namespace sage::alter {

class Interpreter {
 public:
  /// Execution strategy for eval_string: bytecode compilation + stack
  /// VM (default), or the original tree-walking evaluator (kept as the
  /// reference implementation for differential testing).
  enum class Mode { kCompiled, kTreeWalk };

  /// Creates an interpreter with all core and model builtins installed.
  Interpreter();
  explicit Interpreter(Mode mode);

  Mode mode() const { return mode_; }

  EnvPtr global_env() { return global_; }

  /// Attaches the model the traversal builtins operate on. The object
  /// must outlive the interpreter's use of it.
  void attach_model(model::ModelObject& root) { model_root_ = &root; }
  model::ModelObject* model_root() const { return model_root_; }

  // --- evaluation -----------------------------------------------------------
  // Tree-walking reference evaluator (always available, regardless of mode).
  Value eval(const Value& expr, const EnvPtr& env);
  Value eval_program(const ValueList& program, const EnvPtr& env);
  /// Reads and evaluates `source` in the global environment; returns the
  /// last expression's value. Compiles to bytecode and runs on the VM in
  /// kCompiled mode, tree-walks in kTreeWalk mode.
  Value eval_string(std::string_view source);

  // Bytecode pipeline (reader -> resolver/compiler -> VM).
  /// Compiles `source` to a chunk without executing it.
  ChunkPtr compile(std::string_view source, std::string name = "script") const;
  /// Runs a compiled chunk on the stack VM against the global environment.
  Value execute(const ChunkPtr& chunk);

  /// Calls a callable value (builtin, tree-walk lambda, or compiled
  /// closure) with arguments.
  Value apply(const Value& callable, ValueList args);

  // --- emit streams -----------------------------------------------------------
  /// Selects (creating if needed) the current output stream.
  void set_output(std::string name);
  const std::string& current_output_name() const { return current_output_; }
  void emit(std::string_view text);
  /// All streams written during evaluation, keyed by name.
  const std::map<std::string, std::string>& outputs() const { return outputs_; }
  void clear_outputs();

  /// Values printed by (print ...) -- captured for tests and tools.
  const std::string& print_log() const { return print_log_; }
  void print(std::string_view text) { print_log_ += text; }

 private:
  Value eval_list(const ValueList& form, const EnvPtr& env);
  Value eval_body(const ValueList& body, std::size_t start, const EnvPtr& env);

  EnvPtr global_;
  Mode mode_ = Mode::kCompiled;
  model::ModelObject* model_root_ = nullptr;
  std::map<std::string, std::string> outputs_;
  std::string current_output_ = "default";
  std::string print_log_;
  int depth_ = 0;
};

/// Installs the arithmetic/list/string builtins (called by the
/// constructor; exposed for tests that build custom interpreters).
void install_core_builtins(Interpreter& interp, const EnvPtr& env);

/// Installs the model-traversal and emit builtins.
void install_model_builtins(Interpreter& interp, const EnvPtr& env);

}  // namespace sage::alter
