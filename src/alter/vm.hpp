// openSAGE -- the Alter stack VM.
//
// Executes chunks produced by alter/compiler.hpp against slot-indexed
// Frame chains. Calls between compiled closures push entries on an
// explicit call-frame stack (no C++ recursion), so Alter-level
// recursion depth is bounded by kMaxCallFrames rather than the native
// stack. Builtins run as direct native calls and may re-enter the
// interpreter (map/filter/reduce apply their callbacks through
// Interpreter::apply, which spins up a nested VM for compiled
// closures).
//
// Runtime AlterErrors are re-raised annotated with the raising chunk's
// name and source line, so a failing script names the line it died on.
#pragma once

#include <vector>

#include "alter/chunk.hpp"

namespace sage::alter {

class Interpreter;

class VM {
 public:
  /// Alter call-frame budget: deep enough for real recursive scripts
  /// (tests pin 10k frames) while catching runaway recursion with an
  /// AlterError instead of exhausting memory.
  static constexpr std::size_t kMaxCallFrames = 50000;

  explicit VM(Interpreter& interp) : interp_(interp) {}

  /// Runs a top-level chunk; locals resolve to frames, free names to the
  /// interpreter's global environment.
  Value execute(const ChunkPtr& chunk);

  /// Applies a compiled closure to arguments (the Interpreter::apply
  /// path for callbacks handed to builtins).
  Value call_closure(const std::shared_ptr<const Closure>& closure,
                     ValueList args);

 private:
  struct CallFrame {
    ChunkPtr chunk;
    std::size_t ip = 0;
    FramePtr env;
    std::size_t stack_base = 0;  // value-stack height to restore on return
  };

  Value run();
  void do_call(std::int32_t argc);

  Interpreter& interp_;
  std::vector<Value> stack_;
  std::vector<CallFrame> frames_;
};

}  // namespace sage::alter
