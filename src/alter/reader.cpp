#include "alter/reader.hpp"

#include <cctype>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace sage::alter {

namespace {

class Reader {
 public:
  explicit Reader(std::string_view source, SourceMap* map = nullptr)
      : src_(source), map_(map) {}

  bool at_end() {
    skip_ws();
    return pos_ >= src_.size();
  }

  Value read_expr() {
    skip_ws();
    if (pos_ >= src_.size()) fail("unexpected end of input");
    const char c = src_[pos_];
    if (c == '(') return read_list();
    if (c == ')') fail("unbalanced ')'");
    if (c == '\'') {
      ++pos_;
      const int line = line_;
      return record(Value::list({Value::symbol("quote"), read_expr()}), line);
    }
    if (c == '"') return read_string();
    return read_atom();
  }

 private:
  void skip_ws() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == ';') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        if (c == '\n') ++line_;
        ++pos_;
      } else {
        break;
      }
    }
  }

  [[noreturn]] void fail(const std::string& message) {
    raise<AlterError>("alter read error (line ", line_, "): ", message);
  }

  Value read_list() {
    const int line = line_;
    ++pos_;  // consume '('
    ValueList items;
    for (;;) {
      skip_ws();
      if (pos_ >= src_.size()) fail("unterminated list");
      if (src_[pos_] == ')') {
        ++pos_;
        return record(Value::list(std::move(items)), line);
      }
      items.push_back(read_expr());
    }
  }

  Value record(Value list, int line) {
    if (map_ != nullptr) map_->list_lines.emplace(&list.as_list(), line);
    return list;
  }

  Value read_string() {
    ++pos_;  // consume opening quote
    std::string out;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      char c = src_[pos_++];
      if (c == '\\') {
        if (pos_ >= src_.size()) fail("dangling escape in string");
        const char esc = src_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          default: fail(format_msg("bad escape '\\", esc, "'"));
        }
      } else if (c == '\n') {
        ++line_;
      }
      out += c;
    }
    if (pos_ >= src_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return Value(std::move(out));
  }

  static bool is_delimiter(char c) {
    return c == '(' || c == ')' || c == '"' || c == ';' || c == ' ' ||
           c == '\t' || c == '\r' || c == '\n';
  }

  Value read_atom() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() && !is_delimiter(src_[pos_])) ++pos_;
    std::string_view token = src_.substr(start, pos_ - start);
    if (token.empty()) fail("empty token");

    if (token == "nil") return Value::nil();
    if (token == "#t" || token == "true") return Value(true);
    if (token == "#f" || token == "false") return Value(false);

    // Numeric? Integers first, then reals.
    if (support::is_integer(token)) {
      return Value(static_cast<std::int64_t>(support::parse_int(token)));
    }
    const char first = token[0];
    if (std::isdigit(static_cast<unsigned char>(first)) ||
        ((first == '-' || first == '+' || first == '.') && token.size() > 1 &&
         (std::isdigit(static_cast<unsigned char>(token[1])) ||
          token[1] == '.'))) {
      try {
        return Value(support::parse_double(token));
      } catch (const Error&) {
        // fall through to symbol
      }
    }
    return Value::symbol(std::string(token));
  }

  std::string_view src_;
  SourceMap* map_ = nullptr;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

Value read_one(std::string_view source) {
  Reader reader(source);
  Value value = reader.read_expr();
  if (!reader.at_end()) {
    raise<AlterError>("alter read error: trailing input after expression");
  }
  return value;
}

ValueList read_program(std::string_view source, SourceMap* map) {
  Reader reader(source, map);
  ValueList program;
  while (!reader.at_end()) {
    program.push_back(reader.read_expr());
  }
  return program;
}

}  // namespace sage::alter
