#include "alter/compiler.hpp"

#include <optional>
#include <set>
#include <unordered_map>
#include <utility>

#include "support/error.hpp"

namespace sage::alter {

void parse_params(const ValueList& param_list, std::vector<std::string>& params,
                  std::string& rest_param) {
  bool rest_next = false;
  for (const Value& p : param_list) {
    const std::string& name = p.as_symbol().name;
    if (name == "&rest") {
      SAGE_CHECK_AS(AlterError, !rest_next, "duplicate &rest");
      rest_next = true;
      continue;
    }
    if (rest_next) {
      SAGE_CHECK_AS(AlterError, rest_param.empty(),
                    "only one &rest parameter allowed");
      rest_param = name;
    } else {
      params.push_back(name);
    }
  }
  SAGE_CHECK_AS(AlterError, !rest_next || !rest_param.empty(),
                "&rest without a parameter name");
}

namespace {

class Compiler {
 public:
  explicit Compiler(const SourceMap* map) : map_(map) {}

  ChunkPtr compile_toplevel(const ValueList& program, std::string name) {
    Chunk chunk;
    chunk.name = std::move(name);
    chunk_ = &chunk;
    compile_body(program, 0);
    emit(Op::kReturn);
    return std::make_shared<const Chunk>(std::move(chunk));
  }

 private:
  // --- scopes ---------------------------------------------------------------

  /// One lexical scope; becomes exactly one runtime frame.
  struct Scope {
    std::unordered_map<std::string, int> slots;
    int next_slot = 0;
  };

  struct Local {
    int depth;
    int slot;
  };

  void push_scope() { scopes_.emplace_back(); }

  int pop_scope() {
    const int slots = scopes_.back().next_slot;
    scopes_.pop_back();
    return slots;
  }

  /// Declares `name` in the innermost scope (reusing the slot when the
  /// name is already bound there, matching redefinition in the
  /// tree-walker's per-scope map).
  int declare_local(const std::string& name) {
    Scope& scope = scopes_.back();
    auto it = scope.slots.find(name);
    if (it != scope.slots.end()) return it->second;
    const int slot = scope.next_slot++;
    scope.slots.emplace(name, slot);
    return slot;
  }

  /// Reserves an anonymous slot (loop bookkeeping).
  int declare_hidden() { return scopes_.back().next_slot++; }

  std::optional<Local> resolve(const std::string& name) const {
    for (std::size_t i = scopes_.size(); i-- > 0;) {
      auto it = scopes_[i].slots.find(name);
      if (it != scopes_[i].slots.end()) {
        return Local{static_cast<int>(scopes_.size() - 1 - i), it->second};
      }
    }
    return std::nullopt;
  }

  // --- define hoisting ------------------------------------------------------

  /// Pre-scans a scope body for (define ...) forms so their slots exist
  /// before the body compiles -- this is what lets mutually recursive
  /// local functions and later-in-body definitions resolve. The scan
  /// recurses through forms that introduce no scope of their own
  /// (begin/if/cond/when/unless/while/and/or and call arguments) and
  /// stops at lambda bodies and let/dolist/dotimes bodies, which hoist
  /// into their own scopes when compiled.
  void hoist_defines(const ValueList& body, std::size_t start) {
    for (std::size_t i = start; i < body.size(); ++i) collect_defines(body[i]);
  }

  void collect_defines(const Value& form) {
    if (!form.is_list()) return;
    const ValueList& list = form.as_list();
    if (list.empty()) return;
    if (list[0].is_symbol()) {
      const std::string& head = list[0].as_symbol().name;
      if (head == "quote" || head == "lambda") return;
      if (head == "define") {
        if (list.size() >= 2 && list[1].is_list()) {
          const ValueList& sig = list[1].as_list();
          if (!sig.empty() && sig[0].is_symbol()) {
            declare_local(sig[0].as_symbol().name);
          }
          return;  // sugar body is the lambda's own scope
        }
        if (list.size() >= 2 && list[1].is_symbol()) {
          declare_local(list[1].as_symbol().name);
        }
        for (std::size_t i = 2; i < list.size(); ++i) collect_defines(list[i]);
        return;
      }
      if (head == "let" || head == "let*") {
        // The body hoists into the let's own scope; plain-let binding
        // initialisers evaluate in this scope, so scan those.
        if (head == "let" && list.size() >= 2 && list[1].is_list()) {
          for (const Value& b : list[1].as_list()) {
            if (b.is_list() && b.as_list().size() == 2) {
              collect_defines(b.as_list()[1]);
            }
          }
        }
        return;
      }
      if (head == "dolist" || head == "dotimes") {
        // The iterated expression evaluates in this scope.
        if (list.size() >= 2 && list[1].is_list() &&
            list[1].as_list().size() == 2) {
          collect_defines(list[1].as_list()[1]);
        }
        return;
      }
    }
    for (const Value& sub : list) collect_defines(sub);
  }

  // --- chunk emission -------------------------------------------------------

  std::size_t emit(Op op, std::int32_t a = 0, std::int32_t b = 0,
                   std::int32_t c = 0) {
    chunk_->code.push_back(Instruction{op, a, b, c});
    chunk_->lines.push_back(line_);
    return chunk_->code.size() - 1;
  }

  std::size_t here() const { return chunk_->code.size(); }

  void patch(std::size_t at, std::size_t target) {
    chunk_->code[at].a = static_cast<std::int32_t>(target);
  }

  /// Interns a constant, deduplicating simple values by same-typed
  /// equality (equals() alone would merge 1 and 1.0).
  std::int32_t intern(const Value& v) {
    const bool simple = v.is_nil() || v.is_bool() || v.is_int() ||
                        v.is_real() || v.is_string() || v.is_symbol();
    if (simple) {
      for (std::size_t i = 0; i < chunk_->constants.size(); ++i) {
        const Value& c = chunk_->constants[i];
        const bool same_type =
            (c.is_nil() && v.is_nil()) || (c.is_bool() && v.is_bool()) ||
            (c.is_int() && v.is_int()) || (c.is_real() && v.is_real()) ||
            (c.is_string() && v.is_string()) ||
            (c.is_symbol() && v.is_symbol());
        if (same_type && c.equals(v)) return static_cast<std::int32_t>(i);
      }
    }
    chunk_->constants.push_back(v);
    return static_cast<std::int32_t>(chunk_->constants.size() - 1);
  }

  std::int32_t intern_symbol(const std::string& name) {
    return intern(Value::symbol(name));
  }

  // --- expression compilation -----------------------------------------------

  void compile_expr(const Value& expr) {
    if (expr.is_symbol()) {
      compile_variable(expr.as_symbol().name);
      return;
    }
    if (expr.is_nil()) {
      emit(Op::kNil);
      return;
    }
    if (!expr.is_list()) {
      emit(Op::kConst, intern(expr));
      return;
    }
    const int saved_line = line_;
    if (map_ != nullptr) {
      const int line = map_->line_of(expr);
      if (line > 0) line_ = line;
    }
    compile_list(expr.as_list());
    line_ = saved_line;
  }

  void compile_variable(const std::string& name) {
    if (const auto local = resolve(name)) {
      emit(Op::kGetLocal, local->depth, local->slot);
    } else {
      emit(Op::kGetGlobal, intern_symbol(name));
    }
  }

  /// Statement sequence: each expression's value is dropped except the
  /// last; an empty body yields nil. Net stack effect is +1.
  void compile_body(const ValueList& body, std::size_t start) {
    if (start >= body.size()) {
      emit(Op::kNil);
      return;
    }
    for (std::size_t i = start; i < body.size(); ++i) {
      if (i > start) emit(Op::kPop);
      compile_expr(body[i]);
    }
  }

  void compile_list(const ValueList& form) {
    if (form.empty()) {
      emit(Op::kConst, intern(Value::list({})));
      return;
    }

    if (form[0].is_symbol()) {
      const std::string& head = form[0].as_symbol().name;

      if (head == "quote") {
        SAGE_CHECK_AS(AlterError, form.size() == 2, "(quote x) takes one arg");
        emit(Op::kConst, intern(form[1]));
        return;
      }
      if (head == "if") {
        compile_if(form);
        return;
      }
      if (head == "cond") {
        compile_cond(form);
        return;
      }
      if (head == "define") {
        compile_define(form);
        return;
      }
      if (head == "set!") {
        compile_set(form);
        return;
      }
      if (head == "lambda") {
        SAGE_CHECK_AS(AlterError, form.size() >= 3, "(lambda (args) body...)");
        compile_lambda("", form[1].as_list(), form, 2);
        return;
      }
      if (head == "let") {
        compile_let(form);
        return;
      }
      if (head == "let*") {
        compile_let_star(form);
        return;
      }
      if (head == "begin") {
        compile_body(form, 1);
        return;
      }
      if (head == "while") {
        compile_while(form);
        return;
      }
      if (head == "and") {
        compile_and(form);
        return;
      }
      if (head == "or") {
        compile_or(form);
        return;
      }
      if (head == "when") {
        compile_when(form);
        return;
      }
      if (head == "unless") {
        compile_unless(form);
        return;
      }
      if (head == "dolist") {
        compile_dolist(form);
        return;
      }
      if (head == "dotimes") {
        compile_dotimes(form);
        return;
      }
    }

    // Function application: callee, then arguments left to right.
    compile_expr(form[0]);
    for (std::size_t i = 1; i < form.size(); ++i) {
      compile_expr(form[i]);
    }
    emit(Op::kCall, static_cast<std::int32_t>(form.size() - 1));
  }

  // --- special forms --------------------------------------------------------

  void compile_if(const ValueList& form) {
    SAGE_CHECK_AS(AlterError, form.size() == 3 || form.size() == 4,
                  "(if c then else?)");
    compile_expr(form[1]);
    const std::size_t to_else = emit(Op::kJumpIfFalse);
    compile_expr(form[2]);
    const std::size_t to_end = emit(Op::kJump);
    patch(to_else, here());
    if (form.size() == 4) {
      compile_expr(form[3]);
    } else {
      emit(Op::kNil);
    }
    patch(to_end, here());
  }

  void compile_cond(const ValueList& form) {
    std::vector<std::size_t> end_jumps;
    bool saw_else = false;
    for (std::size_t i = 1; i < form.size() && !saw_else; ++i) {
      const ValueList& clause = form[i].as_list();
      SAGE_CHECK_AS(AlterError, !clause.empty(), "empty cond clause");
      const bool is_else =
          clause[0].is_symbol() && clause[0].as_symbol().name == "else";
      if (is_else) {
        saw_else = true;
        // A bare (else) clause evaluates the symbol `else` itself,
        // which (matching the reference evaluator) is an unbound
        // variable unless the script defined one.
        if (clause.size() == 1) {
          compile_expr(clause[0]);
        } else {
          compile_body(clause, 1);
        }
        end_jumps.push_back(emit(Op::kJump));
        break;
      }
      compile_expr(clause[0]);
      const std::size_t to_next = emit(Op::kJumpIfFalse);
      if (clause.size() == 1) {
        // Reference-evaluator quirk: a single-element clause returns
        // eval(test) -- the test is evaluated a second time.
        compile_expr(clause[0]);
      } else {
        compile_body(clause, 1);
      }
      end_jumps.push_back(emit(Op::kJump));
      patch(to_next, here());
    }
    if (!saw_else) emit(Op::kNil);
    for (const std::size_t j : end_jumps) patch(j, here());
  }

  void compile_define(const ValueList& form) {
    SAGE_CHECK_AS(AlterError, form.size() >= 3, "(define name expr)");
    if (form[1].is_list()) {
      // (define (f a b) body...) sugar.
      const ValueList& sig = form[1].as_list();
      SAGE_CHECK_AS(AlterError, !sig.empty(), "define: empty signature");
      const std::string name = sig[0].as_symbol().name;
      if (scopes_.empty()) {
        compile_lambda(name, ValueList(sig.begin() + 1, sig.end()), form, 2);
        emit(Op::kDefGlobal, intern_symbol(name));
      } else {
        const int slot = declare_local(name);
        compile_lambda(name, ValueList(sig.begin() + 1, sig.end()), form, 2);
        emit(Op::kSetLocal, 0, slot);
      }
      emit(Op::kNil);
      return;
    }
    SAGE_CHECK_AS(AlterError, form.size() == 3, "(define name expr)");
    const std::string& name = form[1].as_symbol().name;
    if (scopes_.empty()) {
      compile_expr(form[2]);
      emit(Op::kDefGlobal, intern_symbol(name));
    } else {
      const int slot = declare_local(name);
      compile_expr(form[2]);
      emit(Op::kSetLocal, 0, slot);
    }
    emit(Op::kNil);
  }

  void compile_set(const ValueList& form) {
    SAGE_CHECK_AS(AlterError, form.size() == 3, "(set! name expr)");
    const std::string& name = form[1].as_symbol().name;
    compile_expr(form[2]);
    if (const auto local = resolve(name)) {
      emit(Op::kSetLocal, local->depth, local->slot);
    } else {
      emit(Op::kSetGlobal, intern_symbol(name));
    }
    emit(Op::kNil);
  }

  void compile_lambda(const std::string& name, const ValueList& param_list,
                      const ValueList& body, std::size_t start) {
    Chunk proto;
    proto.name = name;
    parse_params(param_list, proto.params, proto.rest_param);

    push_scope();
    for (const std::string& p : proto.params) {
      proto.param_slots.push_back(declare_local(p));
    }
    if (!proto.rest_param.empty()) {
      proto.rest_slot = declare_local(proto.rest_param);
    }
    hoist_defines(body, start);

    Chunk* const enclosing = chunk_;
    chunk_ = &proto;
    compile_body(body, start);
    emit(Op::kReturn);
    chunk_ = enclosing;

    proto.slot_count = pop_scope();
    chunk_->protos.push_back(std::make_shared<const Chunk>(std::move(proto)));
    emit(Op::kClosure,
         static_cast<std::int32_t>(chunk_->protos.size() - 1));
  }

  void compile_let(const ValueList& form) {
    SAGE_CHECK_AS(AlterError, form.size() >= 3, "(let ((a 1)...) body...)");
    // Plain let: initialisers evaluate in the enclosing scope, pushed
    // left to right before the frame exists.
    std::vector<std::string> names;
    for (const Value& binding : form[1].as_list()) {
      const ValueList& pair = binding.as_list();
      SAGE_CHECK_AS(AlterError, pair.size() == 2, "let binding (name expr)");
      names.push_back(pair[0].as_symbol().name);
      compile_expr(pair[1]);
    }
    push_scope();
    std::vector<int> slots;
    slots.reserve(names.size());
    for (const std::string& n : names) slots.push_back(declare_local(n));
    hoist_defines(form, 2);
    const std::size_t frame_at = emit(Op::kPushFrame);
    // Pop the stacked initialiser values into their slots in reverse.
    // Duplicate binding names share a slot; the rightmost binding wins
    // (stored first from the top of the stack), earlier ones are dropped.
    std::set<int> stored;
    for (std::size_t i = slots.size(); i-- > 0;) {
      if (stored.insert(slots[i]).second) {
        emit(Op::kSetLocal, 0, slots[i]);
      } else {
        emit(Op::kPop);
      }
    }
    compile_body(form, 2);
    emit(Op::kPopFrame);
    chunk_->code[frame_at].a = pop_scope();
  }

  void compile_let_star(const ValueList& form) {
    SAGE_CHECK_AS(AlterError, form.size() >= 3, "(let ((a 1)...) body...)");
    // let*: the frame exists up front; each initialiser sees the
    // bindings declared before it.
    push_scope();
    const std::size_t frame_at = emit(Op::kPushFrame);
    for (const Value& binding : form[1].as_list()) {
      const ValueList& pair = binding.as_list();
      SAGE_CHECK_AS(AlterError, pair.size() == 2, "let binding (name expr)");
      compile_expr(pair[1]);
      emit(Op::kSetLocal, 0, declare_local(pair[0].as_symbol().name));
    }
    hoist_defines(form, 2);
    compile_body(form, 2);
    emit(Op::kPopFrame);
    chunk_->code[frame_at].a = pop_scope();
  }

  void compile_while(const ValueList& form) {
    SAGE_CHECK_AS(AlterError, form.size() >= 2, "(while cond body...)");
    emit(Op::kNil);  // result of zero iterations
    const std::size_t loop = here();
    compile_expr(form[1]);
    const std::size_t to_exit = emit(Op::kJumpIfFalse);
    emit(Op::kPop);  // drop the previous iteration's value
    compile_body(form, 2);
    emit(Op::kJump, static_cast<std::int32_t>(loop));
    patch(to_exit, here());
  }

  void compile_and(const ValueList& form) {
    if (form.size() == 1) {
      emit(Op::kConst, intern(Value(true)));
      return;
    }
    std::vector<std::size_t> exits;
    for (std::size_t i = 1; i < form.size(); ++i) {
      compile_expr(form[i]);
      if (i + 1 < form.size()) {
        exits.push_back(emit(Op::kJumpIfFalsePeek));
        emit(Op::kPop);
      }
    }
    for (const std::size_t j : exits) patch(j, here());
  }

  void compile_or(const ValueList& form) {
    if (form.size() == 1) {
      emit(Op::kConst, intern(Value(false)));
      return;
    }
    std::vector<std::size_t> exits;
    for (std::size_t i = 1; i < form.size(); ++i) {
      compile_expr(form[i]);
      exits.push_back(emit(Op::kJumpIfTruePeek));
      emit(Op::kPop);
    }
    // No truthy operand: the result is #f, not the last falsy value.
    emit(Op::kConst, intern(Value(false)));
    for (const std::size_t j : exits) patch(j, here());
  }

  void compile_when(const ValueList& form) {
    SAGE_CHECK_AS(AlterError, form.size() >= 2, "(when cond body...)");
    compile_expr(form[1]);
    const std::size_t to_nil = emit(Op::kJumpIfFalse);
    compile_body(form, 2);
    const std::size_t to_end = emit(Op::kJump);
    patch(to_nil, here());
    emit(Op::kNil);
    patch(to_end, here());
  }

  void compile_unless(const ValueList& form) {
    SAGE_CHECK_AS(AlterError, form.size() >= 2, "(unless cond body...)");
    compile_expr(form[1]);
    const std::size_t to_body = emit(Op::kJumpIfFalse);
    emit(Op::kNil);
    const std::size_t to_end = emit(Op::kJump);
    patch(to_body, here());
    compile_body(form, 2);
    patch(to_end, here());
  }

  void compile_dolist(const ValueList& form) {
    SAGE_CHECK_AS(AlterError, form.size() >= 2, "(dolist (x list) body...)");
    const ValueList& spec = form[1].as_list();
    SAGE_CHECK_AS(AlterError, spec.size() == 2, "(dolist (x list) body...)");
    const std::string& var = spec[0].as_symbol().name;
    compile_expr(spec[1]);  // the list, in the enclosing scope

    push_scope();
    const int var_slot = declare_local(var);
    const int list_slot = declare_hidden();
    declare_hidden();  // iteration index at list_slot + 1
    hoist_defines(form, 2);

    const std::size_t frame_at = emit(Op::kPushFrame);
    emit(Op::kSetLocal, 0, list_slot);
    emit(Op::kConst, intern(Value(0)));
    emit(Op::kSetLocal, 0, list_slot + 1);
    emit(Op::kNil);  // result of zero iterations
    const std::size_t loop = here();
    const std::size_t iter = emit(Op::kIterNext, 0, list_slot, var_slot);
    emit(Op::kPop);
    compile_body(form, 2);
    emit(Op::kJump, static_cast<std::int32_t>(loop));
    patch(iter, here());
    emit(Op::kPopFrame);
    chunk_->code[frame_at].a = pop_scope();
  }

  void compile_dotimes(const ValueList& form) {
    SAGE_CHECK_AS(AlterError, form.size() >= 2, "(dotimes (i n) body...)");
    const ValueList& spec = form[1].as_list();
    SAGE_CHECK_AS(AlterError, spec.size() == 2, "(dotimes (i n) body...)");
    const std::string& var = spec[0].as_symbol().name;
    compile_expr(spec[1]);  // the count, in the enclosing scope

    push_scope();
    const int var_slot = declare_local(var);
    const int ctr_slot = declare_hidden();
    declare_hidden();  // loop limit at ctr_slot + 1
    hoist_defines(form, 2);

    const std::size_t frame_at = emit(Op::kPushFrame);
    emit(Op::kSetLocal, 0, ctr_slot + 1);  // limit
    emit(Op::kConst, intern(Value(0)));
    emit(Op::kSetLocal, 0, ctr_slot);  // counter
    emit(Op::kNil);  // result of zero iterations
    const std::size_t loop = here();
    const std::size_t iter = emit(Op::kRangeNext, 0, ctr_slot, var_slot);
    emit(Op::kPop);
    compile_body(form, 2);
    emit(Op::kJump, static_cast<std::int32_t>(loop));
    patch(iter, here());
    emit(Op::kPopFrame);
    chunk_->code[frame_at].a = pop_scope();
  }

  const SourceMap* map_;
  std::vector<Scope> scopes_;
  Chunk* chunk_ = nullptr;
  int line_ = 0;
};

}  // namespace

ChunkPtr compile_program(const ValueList& program, const SourceMap* map,
                         std::string name) {
  Compiler compiler(map);
  return compiler.compile_toplevel(program, std::move(name));
}

ChunkPtr compile_string(std::string_view source, std::string name) {
  SourceMap map;
  const ValueList program = read_program(source, &map);
  return compile_program(program, &map, std::move(name));
}

}  // namespace sage::alter
