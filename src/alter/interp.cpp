#include "alter/interp.hpp"

#include "alter/compiler.hpp"
#include "alter/reader.hpp"
#include "alter/vm.hpp"
#include "support/error.hpp"

namespace sage::alter {

namespace {

constexpr int kMaxDepth = 4000;

struct DepthGuard {
  explicit DepthGuard(int& depth) : depth_(depth) {
    if (++depth_ > kMaxDepth) {
      --depth_;
      raise<AlterError>("evaluation too deep (", kMaxDepth,
                        " nested evals); runaway recursion?");
    }
  }
  ~DepthGuard() { --depth_; }
  int& depth_;
};

}  // namespace

Interpreter::Interpreter() : Interpreter(Mode::kCompiled) {}

Interpreter::Interpreter(Mode mode)
    : global_(Environment::make_root()), mode_(mode) {
  install_core_builtins(*this, global_);
  install_model_builtins(*this, global_);
}

Value Interpreter::eval_string(std::string_view source) {
  if (mode_ == Mode::kTreeWalk) {
    const ValueList program = read_program(source);
    return eval_program(program, global_);
  }
  return execute(compile(source));
}

ChunkPtr Interpreter::compile(std::string_view source, std::string name) const {
  return compile_string(source, std::move(name));
}

Value Interpreter::execute(const ChunkPtr& chunk) {
  VM vm(*this);
  return vm.execute(chunk);
}

Value Interpreter::eval_program(const ValueList& program, const EnvPtr& env) {
  Value result;
  for (const Value& expr : program) {
    result = eval(expr, env);
  }
  return result;
}

Value Interpreter::eval(const Value& expr, const EnvPtr& env) {
  DepthGuard guard(depth_);
  if (expr.is_symbol()) return env->lookup(expr.as_symbol().name);
  if (!expr.is_list()) return expr;  // self-evaluating
  return eval_list(expr.as_list(), env);
}

Value Interpreter::eval_body(const ValueList& body, std::size_t start,
                             const EnvPtr& env) {
  Value result;
  for (std::size_t i = start; i < body.size(); ++i) {
    result = eval(body[i], env);
  }
  return result;
}

Value Interpreter::eval_list(const ValueList& form, const EnvPtr& env) {
  if (form.empty()) return Value::list({});

  if (form[0].is_symbol()) {
    const std::string& head = form[0].as_symbol().name;

    if (head == "quote") {
      SAGE_CHECK_AS(AlterError, form.size() == 2, "(quote x) takes one arg");
      return form[1];
    }
    if (head == "if") {
      SAGE_CHECK_AS(AlterError, form.size() == 3 || form.size() == 4,
                    "(if c then else?)");
      if (eval(form[1], env).truthy()) return eval(form[2], env);
      return form.size() == 4 ? eval(form[3], env) : Value::nil();
    }
    if (head == "cond") {
      for (std::size_t i = 1; i < form.size(); ++i) {
        const ValueList& clause = form[i].as_list();
        SAGE_CHECK_AS(AlterError, !clause.empty(), "empty cond clause");
        const bool is_else =
            clause[0].is_symbol() && clause[0].as_symbol().name == "else";
        if (is_else || eval(clause[0], env).truthy()) {
          if (clause.size() == 1) return eval(clause[0], env);
          return eval_body(clause, 1, env);
        }
      }
      return Value::nil();
    }
    if (head == "define") {
      SAGE_CHECK_AS(AlterError, form.size() >= 3, "(define name expr)");
      if (form[1].is_list()) {
        // (define (f a b) body...) sugar.
        const ValueList& sig = form[1].as_list();
        SAGE_CHECK_AS(AlterError, !sig.empty(), "define: empty signature");
        Lambda lam;
        lam.name = sig[0].as_symbol().name;
        parse_params(ValueList(sig.begin() + 1, sig.end()), lam.params,
                     lam.rest_param);
        lam.body.assign(form.begin() + 2, form.end());
        lam.closure = env;
        const std::string name = lam.name;
        env->define(name, Value::lambda(std::move(lam)));
        return Value::nil();
      }
      SAGE_CHECK_AS(AlterError, form.size() == 3, "(define name expr)");
      env->define(form[1].as_symbol().name, eval(form[2], env));
      return Value::nil();
    }
    if (head == "set!") {
      SAGE_CHECK_AS(AlterError, form.size() == 3, "(set! name expr)");
      env->set(form[1].as_symbol().name, eval(form[2], env));
      return Value::nil();
    }
    if (head == "lambda") {
      SAGE_CHECK_AS(AlterError, form.size() >= 3, "(lambda (args) body...)");
      Lambda lam;
      parse_params(form[1].as_list(), lam.params, lam.rest_param);
      lam.body.assign(form.begin() + 2, form.end());
      lam.closure = env;
      return Value::lambda(std::move(lam));
    }
    if (head == "let" || head == "let*") {
      SAGE_CHECK_AS(AlterError, form.size() >= 3, "(let ((a 1)...) body...)");
      EnvPtr scope = Environment::make_child(env);
      const EnvPtr& binding_env = (head == "let*") ? scope : env;
      for (const Value& binding : form[1].as_list()) {
        const ValueList& pair = binding.as_list();
        SAGE_CHECK_AS(AlterError, pair.size() == 2, "let binding (name expr)");
        scope->define(pair[0].as_symbol().name, eval(pair[1], binding_env));
      }
      return eval_body(form, 2, scope);
    }
    if (head == "begin") {
      return eval_body(form, 1, env);
    }
    if (head == "while") {
      SAGE_CHECK_AS(AlterError, form.size() >= 2, "(while cond body...)");
      Value result;
      while (eval(form[1], env).truthy()) {
        result = eval_body(form, 2, env);
      }
      return result;
    }
    if (head == "and") {
      Value result(true);
      for (std::size_t i = 1; i < form.size(); ++i) {
        result = eval(form[i], env);
        if (!result.truthy()) return result;
      }
      return result;
    }
    if (head == "or") {
      for (std::size_t i = 1; i < form.size(); ++i) {
        Value result = eval(form[i], env);
        if (result.truthy()) return result;
      }
      return Value(false);
    }
    if (head == "when") {
      SAGE_CHECK_AS(AlterError, form.size() >= 2, "(when cond body...)");
      if (!eval(form[1], env).truthy()) return Value::nil();
      return eval_body(form, 2, env);
    }
    if (head == "unless") {
      SAGE_CHECK_AS(AlterError, form.size() >= 2, "(unless cond body...)");
      if (eval(form[1], env).truthy()) return Value::nil();
      return eval_body(form, 2, env);
    }
    if (head == "dolist") {
      // (dolist (x list) body...)
      SAGE_CHECK_AS(AlterError, form.size() >= 2, "(dolist (x list) body...)");
      const ValueList& spec = form[1].as_list();
      SAGE_CHECK_AS(AlterError, spec.size() == 2, "(dolist (x list) body...)");
      const std::string& var = spec[0].as_symbol().name;
      const Value items = eval(spec[1], env);
      Value result;
      EnvPtr scope = Environment::make_child(env);
      for (const Value& item : items.as_list()) {
        scope->define(var, item);
        result = eval_body(form, 2, scope);
      }
      return result;
    }
    if (head == "dotimes") {
      // (dotimes (i n) body...)
      SAGE_CHECK_AS(AlterError, form.size() >= 2, "(dotimes (i n) body...)");
      const ValueList& spec = form[1].as_list();
      SAGE_CHECK_AS(AlterError, spec.size() == 2, "(dotimes (i n) body...)");
      const std::string& var = spec[0].as_symbol().name;
      const std::int64_t n = eval(spec[1], env).as_int();
      Value result;
      EnvPtr scope = Environment::make_child(env);
      for (std::int64_t i = 0; i < n; ++i) {
        scope->define(var, Value(i));
        result = eval_body(form, 2, scope);
      }
      return result;
    }
  }

  // Function application.
  Value callable = eval(form[0], env);
  ValueList args;
  args.reserve(form.size() - 1);
  for (std::size_t i = 1; i < form.size(); ++i) {
    args.push_back(eval(form[i], env));
  }
  return apply(callable, std::move(args));
}

Value Interpreter::apply(const Value& callable, ValueList args) {
  if (callable.is_builtin()) {
    const Builtin& fn = callable.as_builtin();
    try {
      return fn.fn(*this, args);
    } catch (const AlterError&) {
      throw;
    } catch (const Error& e) {
      raise<AlterError>("in builtin '", fn.name, "': ", e.what());
    }
  }
  if (callable.is_lambda()) {
    const Lambda& lam = callable.as_lambda();
    const std::string who = lam.name.empty() ? "lambda" : lam.name;
    if (lam.rest_param.empty()) {
      SAGE_CHECK_AS(AlterError, args.size() == lam.params.size(),
                    who, ": expected ", lam.params.size(), " args, got ",
                    args.size());
    } else {
      SAGE_CHECK_AS(AlterError, args.size() >= lam.params.size(),
                    who, ": expected at least ", lam.params.size(),
                    " args, got ", args.size());
    }
    EnvPtr scope = Environment::make_child(lam.closure);
    for (std::size_t i = 0; i < lam.params.size(); ++i) {
      scope->define(lam.params[i], std::move(args[i]));
    }
    if (!lam.rest_param.empty()) {
      ValueList rest(args.begin() + static_cast<std::ptrdiff_t>(lam.params.size()),
                     args.end());
      scope->define(lam.rest_param, Value::list(std::move(rest)));
    }
    DepthGuard guard(depth_);
    return eval_body(lam.body, 0, scope);
  }
  if (callable.is_closure()) {
    // Compiled closure handed back through a builtin (map/filter/...):
    // run it on a nested VM. The depth guard bounds native re-entrancy.
    DepthGuard guard(depth_);
    VM vm(*this);
    return vm.call_closure(callable.as_closure(), std::move(args));
  }
  raise<AlterError>("not callable: ", callable.to_string());
}

void Interpreter::set_output(std::string name) {
  current_output_ = std::move(name);
  outputs_.try_emplace(current_output_);
}

void Interpreter::emit(std::string_view text) {
  outputs_[current_output_] += text;
}

void Interpreter::clear_outputs() {
  outputs_.clear();
  current_output_ = "default";
}

}  // namespace sage::alter
