#include <iomanip>
#include <sstream>
#include <string>

#include "alter/chunk.hpp"

namespace sage::alter {

namespace {

const char* op_name(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kNil: return "nil";
    case Op::kPop: return "pop";
    case Op::kGetLocal: return "get-local";
    case Op::kSetLocal: return "set-local";
    case Op::kGetGlobal: return "get-global";
    case Op::kSetGlobal: return "set-global";
    case Op::kDefGlobal: return "def-global";
    case Op::kJump: return "jump";
    case Op::kJumpIfFalse: return "jump-if-false";
    case Op::kJumpIfFalsePeek: return "jump-if-false*";
    case Op::kJumpIfTruePeek: return "jump-if-true*";
    case Op::kPushFrame: return "push-frame";
    case Op::kPopFrame: return "pop-frame";
    case Op::kClosure: return "closure";
    case Op::kCall: return "call";
    case Op::kReturn: return "return";
    case Op::kIterNext: return "iter-next";
    case Op::kRangeNext: return "range-next";
  }
  return "?";
}

std::string constant_note(const Chunk& chunk, std::int32_t index) {
  const std::size_t i = static_cast<std::size_t>(index);
  if (i >= chunk.constants.size()) return "?";
  return chunk.constants[i].to_string();
}

void disassemble_into(const Chunk& chunk, const std::string& label,
                      std::ostringstream& os) {
  os << "== " << (chunk.name.empty() ? label : chunk.name) << " ==\n";
  if (!chunk.params.empty() || !chunk.rest_param.empty()) {
    os << "params:";
    for (const std::string& p : chunk.params) os << ' ' << p;
    if (!chunk.rest_param.empty()) os << " &rest " << chunk.rest_param;
    os << '\n';
  }
  os << "slots: " << chunk.slot_count << '\n';

  int last_line = -1;
  for (std::size_t ip = 0; ip < chunk.code.size(); ++ip) {
    const Instruction& in = chunk.code[ip];
    os << std::setw(4) << ip << "  ";
    const int line = chunk.line_at(ip);
    if (line != last_line && line > 0) {
      os << std::setw(4) << line;
      last_line = line;
    } else {
      os << "   |";
    }
    os << "  " << std::left << std::setw(15) << op_name(in.op) << std::right;
    switch (in.op) {
      case Op::kConst:
      case Op::kGetGlobal:
      case Op::kSetGlobal:
      case Op::kDefGlobal:
        os << ' ' << in.a << "  ; " << constant_note(chunk, in.a);
        break;
      case Op::kGetLocal:
      case Op::kSetLocal:
        os << ' ' << in.a << ' ' << in.b << "  ; depth slot";
        break;
      case Op::kJump:
      case Op::kJumpIfFalse:
      case Op::kJumpIfFalsePeek:
      case Op::kJumpIfTruePeek:
        os << " -> " << in.a;
        break;
      case Op::kPushFrame:
        os << ' ' << in.a << "  ; slots";
        break;
      case Op::kClosure: {
        os << ' ' << in.a;
        const std::size_t i = static_cast<std::size_t>(in.a);
        if (i < chunk.protos.size() && !chunk.protos[i]->name.empty()) {
          os << "  ; " << chunk.protos[i]->name;
        }
        break;
      }
      case Op::kCall:
        os << ' ' << in.a << "  ; argc";
        break;
      case Op::kIterNext:
        os << " -> " << in.a << "  ; list@" << in.b << " var@" << in.c;
        break;
      case Op::kRangeNext:
        os << " -> " << in.a << "  ; ctr@" << in.b << " var@" << in.c;
        break;
      case Op::kNil:
      case Op::kPop:
      case Op::kPopFrame:
      case Op::kReturn:
        break;
    }
    os << '\n';
  }

  for (std::size_t i = 0; i < chunk.protos.size(); ++i) {
    os << '\n';
    std::ostringstream fallback;
    fallback << label << ".lambda" << i;
    disassemble_into(*chunk.protos[i], fallback.str(), os);
  }
}

}  // namespace

std::string disassemble(const Chunk& chunk) {
  std::ostringstream os;
  disassemble_into(chunk, chunk.name.empty() ? "chunk" : chunk.name, os);
  return os.str();
}

}  // namespace sage::alter
