// openSAGE -- Alter values.
//
// Alter is the paper's Lisp-like tool-developer language: it traverses
// the DoME model object graph, reads attributes, and writes out source
// files. Values are s-expression data (nil, booleans, numbers, strings,
// symbols, lists), callables (builtins and lambdas), and handles to
// model objects.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace sage::model {
class ModelObject;
}

namespace sage::alter {

class Value;
class Interpreter;
class Environment;
struct Closure;  // compiled lambda: (chunk, captured frame), see chunk.hpp

using EnvPtr = std::shared_ptr<Environment>;
using ValueList = std::vector<Value>;

/// A symbol, distinct from a string.
struct Symbol {
  std::string name;
  bool operator==(const Symbol& other) const { return name == other.name; }
};

/// Native function exposed to Alter.
struct Builtin {
  std::string name;
  std::function<Value(Interpreter&, ValueList&)> fn;
};

/// User-defined function (closure).
struct Lambda {
  std::vector<std::string> params;
  /// Optional trailing &rest parameter capturing extra arguments.
  std::string rest_param;
  ValueList body;
  EnvPtr closure;
  std::string name;  // for error messages; "" when anonymous
};

class Value {
 public:
  using Storage =
      std::variant<std::monostate,                  // nil
                   bool,                            //
                   std::int64_t,                    //
                   double,                          //
                   std::string,                     //
                   Symbol,                          //
                   std::shared_ptr<ValueList>,      // list
                   std::shared_ptr<const Builtin>,  //
                   std::shared_ptr<const Lambda>,   //
                   std::shared_ptr<const Closure>,  // compiled lambda
                   model::ModelObject*>;            // model handle

  Value() : storage_(std::monostate{}) {}
  Value(bool b) : storage_(b) {}
  Value(std::int64_t i) : storage_(i) {}
  Value(int i) : storage_(static_cast<std::int64_t>(i)) {}
  Value(double d) : storage_(d) {}
  Value(std::string s) : storage_(std::move(s)) {}
  Value(const char* s) : storage_(std::string(s)) {}
  Value(Symbol s) : storage_(std::move(s)) {}
  Value(model::ModelObject* obj) : storage_(obj) {}

  static Value nil() { return Value(); }
  static Value list(ValueList items) {
    Value v;
    v.storage_ = std::make_shared<ValueList>(std::move(items));
    return v;
  }
  static Value builtin(std::string name,
                       std::function<Value(Interpreter&, ValueList&)> fn) {
    Value v;
    v.storage_ =
        std::make_shared<const Builtin>(Builtin{std::move(name), std::move(fn)});
    return v;
  }
  static Value lambda(Lambda lam) {
    Value v;
    v.storage_ = std::make_shared<const Lambda>(std::move(lam));
    return v;
  }
  static Value closure(std::shared_ptr<const Closure> c) {
    Value v;
    v.storage_ = std::move(c);
    return v;
  }
  static Value symbol(std::string name) { return Value(Symbol{std::move(name)}); }

  bool is_nil() const { return std::holds_alternative<std::monostate>(storage_); }
  bool is_bool() const { return std::holds_alternative<bool>(storage_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(storage_); }
  bool is_real() const { return std::holds_alternative<double>(storage_); }
  bool is_number() const { return is_int() || is_real(); }
  bool is_string() const { return std::holds_alternative<std::string>(storage_); }
  bool is_symbol() const { return std::holds_alternative<Symbol>(storage_); }
  bool is_list() const {
    return std::holds_alternative<std::shared_ptr<ValueList>>(storage_);
  }
  bool is_builtin() const {
    return std::holds_alternative<std::shared_ptr<const Builtin>>(storage_);
  }
  bool is_lambda() const {
    return std::holds_alternative<std::shared_ptr<const Lambda>>(storage_);
  }
  bool is_closure() const {
    return std::holds_alternative<std::shared_ptr<const Closure>>(storage_);
  }
  bool is_callable() const {
    return is_builtin() || is_lambda() || is_closure();
  }
  bool is_object() const {
    return std::holds_alternative<model::ModelObject*>(storage_);
  }

  /// Truthiness: nil and false are falsy; everything else (including 0
  /// and "" and the empty list) is truthy, per Lisp convention for nil --
  /// we follow Scheme in keeping 0 truthy.
  bool truthy() const { return !is_nil() && !(is_bool() && !as_bool()); }

  // Checked accessors; throw sage::AlterError on mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_real() const;           // accepts int
  const std::string& as_string() const;
  const Symbol& as_symbol() const;
  const ValueList& as_list() const;
  ValueList& as_list_mut();
  const Builtin& as_builtin() const;
  const Lambda& as_lambda() const;
  const std::shared_ptr<const Closure>& as_closure() const;
  model::ModelObject* as_object() const;

  /// Structural equality (objects by identity, callables by identity).
  bool equals(const Value& other) const;

  /// Printable, reader-compatible representation.
  std::string to_string() const;
  /// Display form: strings without quotes (used by emit/print).
  std::string display() const;

 private:
  Storage storage_;
};

}  // namespace sage::alter
