// openSAGE -- compiled Alter: the bytecode chunk.
//
// The resolver/compiler (alter/compiler.hpp) lowers a read program into
// a Chunk -- a flat opcode stream plus a constant pool, a parallel line
// table for error attribution, and the prototypes of nested lambdas.
// The stack VM (alter/vm.hpp) executes chunks against slot-indexed
// environment frames; a closure is a (chunk, captured frame) pair.
//
// Variable coordinates: lexically resolved variables are addressed as
// (depth, slot), where depth counts environment frames outward from the
// innermost one and slot indexes into that frame. Names that resolve to
// no lexical scope compile to by-name global accesses against the
// interpreter's global Environment, which is how builtins and
// top-level (define ...)s keep their late-bound map semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "alter/value.hpp"

namespace sage::alter {

enum class Op : std::uint8_t {
  kConst,        // a: constant index             -> push constants[a]
  kNil,          //                               -> push nil
  kPop,          //                               -> drop top of stack
  kGetLocal,     // a: depth, b: slot             -> push frame value
  kSetLocal,     // a: depth, b: slot             -> pop into frame slot
  kGetGlobal,    // a: constant index (symbol)    -> push global lookup
  kSetGlobal,    // a: constant index (symbol)    -> pop, set! semantics
  kDefGlobal,    // a: constant index (symbol)    -> pop, define semantics
  kJump,         // a: target ip
  kJumpIfFalse,  // a: target ip                  -> pop, jump when falsy
  kJumpIfFalsePeek,  // a: target ip              -> peek, jump when falsy
  kJumpIfTruePeek,   // a: target ip              -> peek, jump when truthy
  kPushFrame,    // a: slot count                 -> enter a child frame
  kPopFrame,     //                               -> leave to parent frame
  kClosure,      // a: proto index                -> push closure over env
  kCall,         // a: argc; stack: callee args...-> push call result
  kReturn,       //                               -> pop VM call frame
  kIterNext,     // a: exit ip, b: list slot, c: var slot (index at b+1)
  kRangeNext,    // a: exit ip, b: counter slot (limit at b+1), c: var slot
};

/// One fixed-width instruction. 32-bit operands keep jump targets and
/// pool indices unbounded by script size.
struct Instruction {
  Op op;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
};

/// A compiled program unit: the top-level script or one lambda body.
struct Chunk {
  std::string name;  // "script", lambda name, "" when anonymous

  // Callable shape (top-level chunks take no parameters).
  std::vector<std::string> params;
  std::string rest_param;  // empty when no &rest tail
  // Frame slots the arguments land in. Usually param_slots[i] == i, but
  // duplicate parameter names share a slot (later binding wins, as in
  // the tree-walker's per-scope map).
  std::vector<int> param_slots;
  int rest_slot = -1;      // slot of the &rest list; -1 when absent
  int slot_count = 0;      // frame size: params + rest + hoisted defines

  std::vector<Instruction> code;
  std::vector<int> lines;  // parallel to code; 0 = unknown
  ValueList constants;
  std::vector<std::shared_ptr<const Chunk>> protos;  // nested lambdas

  int line_at(std::size_t ip) const {
    return ip < lines.size() ? lines[ip] : 0;
  }
};

using ChunkPtr = std::shared_ptr<const Chunk>;

/// A slot-indexed environment frame. Frames chain to their parent, are
/// heap-shared, and stay alive while any closure captures them -- which
/// is exactly how (set!) through a captured frame stays visible to
/// every closure over the same scope.
struct Frame {
  explicit Frame(std::shared_ptr<Frame> parent_frame, int slots)
      : parent(std::move(parent_frame)), values(static_cast<std::size_t>(slots)) {}

  std::shared_ptr<Frame> parent;
  std::vector<Value> values;
};

using FramePtr = std::shared_ptr<Frame>;

/// A compiled user function: the chunk plus the frame chain it closed
/// over (its upvalues).
struct Closure {
  ChunkPtr chunk;
  FramePtr env;
};

/// Human-readable listing of a chunk (and, recursively, its nested
/// lambda prototypes): constants, then one line per instruction with
/// resolved operand comments. Surfaced as `sagec alter --disasm`.
std::string disassemble(const Chunk& chunk);

}  // namespace sage::alter
