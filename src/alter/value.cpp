#include "alter/value.hpp"

#include <sstream>

#include "alter/chunk.hpp"
#include "model/object.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace sage::alter {

bool Value::as_bool() const {
  if (const bool* b = std::get_if<bool>(&storage_)) return *b;
  raise<AlterError>("not a boolean: ", to_string());
}

std::int64_t Value::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&storage_)) return *i;
  raise<AlterError>("not an integer: ", to_string());
}

double Value::as_real() const {
  if (const auto* d = std::get_if<double>(&storage_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&storage_)) {
    return static_cast<double>(*i);
  }
  raise<AlterError>("not a number: ", to_string());
}

const std::string& Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&storage_)) return *s;
  raise<AlterError>("not a string: ", to_string());
}

const Symbol& Value::as_symbol() const {
  if (const auto* s = std::get_if<Symbol>(&storage_)) return *s;
  raise<AlterError>("not a symbol: ", to_string());
}

const ValueList& Value::as_list() const {
  if (const auto* l = std::get_if<std::shared_ptr<ValueList>>(&storage_)) {
    return **l;
  }
  raise<AlterError>("not a list: ", to_string());
}

ValueList& Value::as_list_mut() {
  if (auto* l = std::get_if<std::shared_ptr<ValueList>>(&storage_)) {
    return **l;
  }
  raise<AlterError>("not a list: ", to_string());
}

const Builtin& Value::as_builtin() const {
  if (const auto* b =
          std::get_if<std::shared_ptr<const Builtin>>(&storage_)) {
    return **b;
  }
  raise<AlterError>("not a builtin: ", to_string());
}

const Lambda& Value::as_lambda() const {
  if (const auto* l = std::get_if<std::shared_ptr<const Lambda>>(&storage_)) {
    return **l;
  }
  raise<AlterError>("not a lambda: ", to_string());
}

const std::shared_ptr<const Closure>& Value::as_closure() const {
  if (const auto* c = std::get_if<std::shared_ptr<const Closure>>(&storage_)) {
    return *c;
  }
  raise<AlterError>("not a compiled lambda: ", to_string());
}

model::ModelObject* Value::as_object() const {
  if (const auto* o = std::get_if<model::ModelObject*>(&storage_)) return *o;
  raise<AlterError>("not a model object: ", to_string());
}

bool Value::equals(const Value& other) const {
  if (storage_.index() != other.storage_.index()) {
    // Allow numeric cross-type comparison (1 equals 1.0).
    if (is_number() && other.is_number()) {
      return as_real() == other.as_real();
    }
    return false;
  }
  if (is_nil()) return true;
  if (is_bool()) return as_bool() == other.as_bool();
  if (is_int()) return as_int() == other.as_int();
  if (is_real()) return as_real() == other.as_real();
  if (is_string()) return as_string() == other.as_string();
  if (is_symbol()) return as_symbol() == other.as_symbol();
  if (is_object()) return as_object() == other.as_object();
  if (is_list()) {
    const ValueList& a = as_list();
    const ValueList& b = other.as_list();
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!a[i].equals(b[i])) return false;
    }
    return true;
  }
  if (is_builtin()) return &as_builtin() == &other.as_builtin();
  if (is_lambda()) return &as_lambda() == &other.as_lambda();
  if (is_closure()) return as_closure().get() == other.as_closure().get();
  return false;
}

std::string Value::to_string() const {
  if (is_nil()) return "nil";
  if (is_bool()) return as_bool() ? "#t" : "#f";
  if (is_int()) return std::to_string(as_int());
  if (is_real()) {
    std::ostringstream os;
    os << as_real();
    return os.str();
  }
  if (is_string()) return "\"" + support::escape(as_string()) + "\"";
  if (is_symbol()) return as_symbol().name;
  if (is_builtin()) return "#<builtin " + as_builtin().name + ">";
  if (is_lambda()) {
    const std::string& name = as_lambda().name;
    return name.empty() ? "#<lambda>" : "#<lambda " + name + ">";
  }
  if (is_closure()) {
    const std::string& name = as_closure()->chunk->name;
    return name.empty() ? "#<lambda>" : "#<lambda " + name + ">";
  }
  if (is_object()) {
    const model::ModelObject* obj = as_object();
    return "#<object " + obj->type() + " " + obj->name() + ">";
  }
  std::string out = "(";
  const ValueList& items = as_list();
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += " ";
    out += items[i].to_string();
  }
  return out + ")";
}

std::string Value::display() const {
  if (is_string()) return as_string();
  return to_string();
}

}  // namespace sage::alter
