#include "alter/vm.hpp"

#include <iterator>
#include <utility>

#include "alter/env.hpp"
#include "alter/interp.hpp"
#include "support/error.hpp"

namespace sage::alter {

Value VM::execute(const ChunkPtr& chunk) {
  frames_.push_back(CallFrame{chunk, 0, nullptr, stack_.size()});
  return run();
}

Value VM::call_closure(const std::shared_ptr<const Closure>& closure,
                       ValueList args) {
  stack_.push_back(Value::closure(closure));
  const std::int32_t argc = static_cast<std::int32_t>(args.size());
  for (Value& arg : args) stack_.push_back(std::move(arg));
  do_call(argc);
  return run();
}

Value VM::run() {
  const std::size_t entry_frames = frames_.size();
  try {
    while (true) {
      CallFrame& fr = frames_.back();
      const Instruction in = fr.chunk->code[fr.ip++];
      switch (in.op) {
        case Op::kConst:
          stack_.push_back(fr.chunk->constants[static_cast<std::size_t>(in.a)]);
          break;
        case Op::kNil:
          stack_.emplace_back();
          break;
        case Op::kPop:
          stack_.pop_back();
          break;
        case Op::kGetLocal: {
          const Frame* frame = fr.env.get();
          for (std::int32_t d = in.a; d > 0; --d) frame = frame->parent.get();
          stack_.push_back(frame->values[static_cast<std::size_t>(in.b)]);
          break;
        }
        case Op::kSetLocal: {
          Frame* frame = fr.env.get();
          for (std::int32_t d = in.a; d > 0; --d) frame = frame->parent.get();
          frame->values[static_cast<std::size_t>(in.b)] =
              std::move(stack_.back());
          stack_.pop_back();
          break;
        }
        case Op::kGetGlobal: {
          const std::string& name =
              fr.chunk->constants[static_cast<std::size_t>(in.a)]
                  .as_symbol()
                  .name;
          stack_.push_back(interp_.global_env()->lookup(name));
          break;
        }
        case Op::kSetGlobal: {
          const std::string& name =
              fr.chunk->constants[static_cast<std::size_t>(in.a)]
                  .as_symbol()
                  .name;
          interp_.global_env()->set(name, std::move(stack_.back()));
          stack_.pop_back();
          break;
        }
        case Op::kDefGlobal: {
          const std::string& name =
              fr.chunk->constants[static_cast<std::size_t>(in.a)]
                  .as_symbol()
                  .name;
          interp_.global_env()->define(name, std::move(stack_.back()));
          stack_.pop_back();
          break;
        }
        case Op::kJump:
          fr.ip = static_cast<std::size_t>(in.a);
          break;
        case Op::kJumpIfFalse: {
          const bool truthy = stack_.back().truthy();
          stack_.pop_back();
          if (!truthy) fr.ip = static_cast<std::size_t>(in.a);
          break;
        }
        case Op::kJumpIfFalsePeek:
          if (!stack_.back().truthy()) fr.ip = static_cast<std::size_t>(in.a);
          break;
        case Op::kJumpIfTruePeek:
          if (stack_.back().truthy()) fr.ip = static_cast<std::size_t>(in.a);
          break;
        case Op::kPushFrame:
          fr.env = std::make_shared<Frame>(fr.env, in.a);
          break;
        case Op::kPopFrame:
          fr.env = fr.env->parent;
          break;
        case Op::kClosure:
          stack_.push_back(Value::closure(std::make_shared<const Closure>(
              Closure{fr.chunk->protos[static_cast<std::size_t>(in.a)],
                      fr.env})));
          break;
        case Op::kCall:
          do_call(in.a);
          break;
        case Op::kReturn: {
          Value result = std::move(stack_.back());
          stack_.pop_back();
          stack_.resize(fr.stack_base);
          frames_.pop_back();
          if (frames_.size() < entry_frames) return result;
          stack_.push_back(std::move(result));
          break;
        }
        case Op::kIterNext: {
          // (dolist) step: advance the hidden index over the list slot,
          // binding the loop variable, or exit the loop.
          std::vector<Value>& slots = fr.env->values;
          const ValueList& items =
              slots[static_cast<std::size_t>(in.b)].as_list();
          const std::int64_t index =
              slots[static_cast<std::size_t>(in.b) + 1].as_int();
          if (index < static_cast<std::int64_t>(items.size())) {
            slots[static_cast<std::size_t>(in.c)] =
                items[static_cast<std::size_t>(index)];
            slots[static_cast<std::size_t>(in.b) + 1] = Value(index + 1);
          } else {
            fr.ip = static_cast<std::size_t>(in.a);
          }
          break;
        }
        case Op::kRangeNext: {
          // (dotimes) step: count the hidden counter up to the limit.
          std::vector<Value>& slots = fr.env->values;
          const std::int64_t counter =
              slots[static_cast<std::size_t>(in.b)].as_int();
          const std::int64_t limit =
              slots[static_cast<std::size_t>(in.b) + 1].as_int();
          if (counter < limit) {
            slots[static_cast<std::size_t>(in.c)] = Value(counter);
            slots[static_cast<std::size_t>(in.b)] = Value(counter + 1);
          } else {
            fr.ip = static_cast<std::size_t>(in.a);
          }
          break;
        }
      }
    }
  } catch (const AlterError& e) {
    // Annotate with the instruction that raised. Nested VM entries (a
    // closure called back through a builtin) each add their own frame
    // note, producing a small traceback.
    if (frames_.empty()) throw;
    const CallFrame& fr = frames_.back();
    const std::size_t ip = fr.ip > 0 ? fr.ip - 1 : 0;
    const int line = fr.chunk->line_at(ip);
    if (line > 0) {
      raise<AlterError>(e.what(), " (",
                        fr.chunk->name.empty() ? "lambda"
                                               : fr.chunk->name.c_str(),
                        " line ", line, ")");
    }
    throw;
  }
}

void VM::do_call(std::int32_t argc) {
  const std::size_t nargs = static_cast<std::size_t>(argc);
  const std::size_t callee_index = stack_.size() - nargs - 1;
  const Value callee = stack_[callee_index];

  if (callee.is_closure()) {
    const std::shared_ptr<const Closure>& closure = callee.as_closure();
    const Chunk& chunk = *closure->chunk;
    const char* who = chunk.name.empty() ? "lambda" : chunk.name.c_str();
    if (chunk.rest_param.empty()) {
      SAGE_CHECK_AS(AlterError, nargs == chunk.params.size(), who,
                    ": expected ", chunk.params.size(), " args, got ", nargs);
    } else {
      SAGE_CHECK_AS(AlterError, nargs >= chunk.params.size(), who,
                    ": expected at least ", chunk.params.size(), " args, got ",
                    nargs);
    }
    SAGE_CHECK_AS(AlterError, frames_.size() < kMaxCallFrames,
                  "call stack too deep (", kMaxCallFrames,
                  " frames); runaway recursion?");
    auto frame = std::make_shared<Frame>(closure->env, chunk.slot_count);
    for (std::size_t i = 0; i < chunk.params.size(); ++i) {
      frame->values[static_cast<std::size_t>(chunk.param_slots[i])] =
          std::move(stack_[callee_index + 1 + i]);
    }
    if (chunk.rest_slot >= 0) {
      ValueList rest(
          std::make_move_iterator(stack_.begin() +
                                  static_cast<std::ptrdiff_t>(
                                      callee_index + 1 + chunk.params.size())),
          std::make_move_iterator(stack_.end()));
      frame->values[static_cast<std::size_t>(chunk.rest_slot)] =
          Value::list(std::move(rest));
    }
    stack_.resize(callee_index);
    frames_.push_back(
        CallFrame{closure->chunk, 0, std::move(frame), stack_.size()});
    return;
  }

  if (callee.is_builtin()) {
    const Builtin& fn = callee.as_builtin();
    ValueList args(std::make_move_iterator(
                       stack_.begin() +
                       static_cast<std::ptrdiff_t>(callee_index + 1)),
                   std::make_move_iterator(stack_.end()));
    stack_.resize(callee_index);
    try {
      stack_.push_back(fn.fn(interp_, args));
    } catch (const AlterError&) {
      throw;
    } catch (const Error& e) {
      raise<AlterError>("in builtin '", fn.name, "': ", e.what());
    }
    return;
  }

  if (callee.is_lambda()) {
    // Tree-walker lambdas (reference mode values that leaked into
    // globals) still apply through the interpreter.
    ValueList args(std::make_move_iterator(
                       stack_.begin() +
                       static_cast<std::ptrdiff_t>(callee_index + 1)),
                   std::make_move_iterator(stack_.end()));
    stack_.resize(callee_index);
    stack_.push_back(interp_.apply(callee, std::move(args)));
    return;
  }

  raise<AlterError>("not callable: ", callee.to_string());
}

}  // namespace sage::alter
