// openSAGE -- the Alter reader (s-expression tokenizer + parser).
//
// Syntax: (...) lists, 'x quote sugar, "..." strings with the escapes
// \n \t \" and backslash-backslash, ; line comments, #t/#f booleans,
// nil, integers, reals, symbols. Reports line numbers in errors.
//
// The reader can also record where each form came from: pass a
// SourceMap to read_program and every list cell is keyed (by the
// identity of its shared ValueList) to the source line its '(' sits
// on. The bytecode compiler threads those lines into the chunk's line
// table so runtime errors can name a script position.
#pragma once

#include <map>
#include <string_view>

#include "alter/value.hpp"

namespace sage::alter {

/// Per-expression source positions, keyed by list-cell identity. Value
/// copies share list cells, so the map stays valid for any copy of the
/// returned tree (atoms carry no identity and are attributed to their
/// enclosing form).
struct SourceMap {
  std::map<const ValueList*, int> list_lines;

  /// The recorded line of a form, or 0 when unknown.
  int line_of(const Value& form) const {
    if (!form.is_list()) return 0;
    auto it = list_lines.find(&form.as_list());
    return it == list_lines.end() ? 0 : it->second;
  }
};

/// Parses one complete expression; throws sage::AlterError on trailing
/// garbage or malformed input.
Value read_one(std::string_view source);

/// Parses a whole program (sequence of expressions). When `map` is
/// non-null, records the source line of every list form.
ValueList read_program(std::string_view source, SourceMap* map = nullptr);

}  // namespace sage::alter
