// openSAGE -- the Alter reader (s-expression tokenizer + parser).
//
// Syntax: (...) lists, 'x quote sugar, "..." strings with the escapes
// \n \t \" and backslash-backslash, ; line comments, #t/#f booleans,
// nil, integers, reals, symbols. Reports line numbers in errors.
#pragma once

#include <string_view>

#include "alter/value.hpp"

namespace sage::alter {

/// Parses one complete expression; throws sage::AlterError on trailing
/// garbage or malformed input.
Value read_one(std::string_view source);

/// Parses a whole program (sequence of expressions).
ValueList read_program(std::string_view source);

}  // namespace sage::alter
