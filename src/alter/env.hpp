// openSAGE -- Alter lexical environments (chained scopes).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "alter/value.hpp"
#include "support/error.hpp"

namespace sage::alter {

class Environment : public std::enable_shared_from_this<Environment> {
 public:
  static EnvPtr make_root() { return EnvPtr(new Environment(nullptr)); }
  static EnvPtr make_child(EnvPtr parent) {
    return EnvPtr(new Environment(std::move(parent)));
  }

  /// Introduces (or rebinds) a name in this scope.
  void define(std::string_view name, Value value) {
    bindings_.insert_or_assign(std::string(name), std::move(value));
  }

  /// Rebinds the nearest existing binding; throws when unbound.
  void set(std::string_view name, Value value) {
    for (Environment* env = this; env != nullptr; env = env->parent_.get()) {
      auto it = env->bindings_.find(name);
      if (it != env->bindings_.end()) {
        it->second = std::move(value);
        return;
      }
    }
    raise<AlterError>("set!: unbound variable '", std::string(name), "'");
  }

  /// Looks up the nearest binding; throws when unbound.
  const Value& lookup(std::string_view name) const {
    for (const Environment* env = this; env != nullptr;
         env = env->parent_.get()) {
      auto it = env->bindings_.find(name);
      if (it != env->bindings_.end()) return it->second;
    }
    raise<AlterError>("unbound variable '", std::string(name), "'");
  }

  bool bound(std::string_view name) const {
    for (const Environment* env = this; env != nullptr;
         env = env->parent_.get()) {
      if (env->bindings_.find(name) != env->bindings_.end()) return true;
    }
    return false;
  }

 private:
  explicit Environment(EnvPtr parent) : parent_(std::move(parent)) {}

  EnvPtr parent_;
  std::map<std::string, Value, std::less<>> bindings_;
};

}  // namespace sage::alter
