// Model-traversal Alter builtins: the "direct interface to the contents
// of a SAGE model". These let an Alter program walk the object graph,
// read and write properties, and resolve application-level concepts
// (functions, ports, arcs) without C++ help.
#include "alter/interp.hpp"
#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/object.hpp"
#include "model/serialize.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace sage::alter {

namespace {

void expect_args(const std::string& name, const ValueList& args,
                 std::size_t count) {
  SAGE_CHECK_AS(AlterError, args.size() == count, "(", name, " ...) takes ",
                count, " args, got ", args.size());
}

/// PropertyValue -> Alter value.
Value from_property(const model::PropertyValue& prop) {
  if (prop.is_nil()) return Value::nil();
  if (prop.is_bool()) return Value(prop.as_bool());
  if (prop.is_int()) return Value(prop.as_int());
  if (prop.is_double()) return Value(prop.as_double());
  if (prop.is_string()) return Value(prop.as_string());
  ValueList items;
  for (const model::PropertyValue& item : prop.as_list()) {
    items.push_back(from_property(item));
  }
  return Value::list(std::move(items));
}

/// Alter value -> PropertyValue.
model::PropertyValue to_property(const Value& value) {
  if (value.is_nil()) return model::PropertyValue();
  if (value.is_bool()) return model::PropertyValue(value.as_bool());
  if (value.is_int()) return model::PropertyValue(value.as_int());
  if (value.is_real()) return model::PropertyValue(value.as_real());
  if (value.is_string()) return model::PropertyValue(value.as_string());
  if (value.is_symbol()) return model::PropertyValue(value.as_symbol().name);
  if (value.is_list()) {
    model::PropertyList items;
    for (const Value& item : value.as_list()) {
      items.push_back(to_property(item));
    }
    return model::PropertyValue(std::move(items));
  }
  raise<AlterError>("value cannot be stored as a property: ",
                    value.to_string());
}

Value object_list(const std::vector<model::ModelObject*>& objects) {
  ValueList out;
  out.reserve(objects.size());
  for (model::ModelObject* obj : objects) out.emplace_back(obj);
  return Value::list(std::move(out));
}

void def(const EnvPtr& env, const std::string& name,
         std::function<Value(Interpreter&, ValueList&)> fn) {
  env->define(name, Value::builtin(name, std::move(fn)));
}

}  // namespace

void install_model_builtins(Interpreter& interp, const EnvPtr& env) {
  (void)interp;

  def(env, "model-root", [](Interpreter& in, ValueList& args) {
    expect_args("model-root", args, 0);
    SAGE_CHECK_AS(AlterError, in.model_root() != nullptr,
                  "no model attached to the interpreter");
    return Value(in.model_root());
  });

  def(env, "object-type", [](Interpreter&, ValueList& args) {
    expect_args("object-type", args, 1);
    return Value(args[0].as_object()->type());
  });
  def(env, "object-name", [](Interpreter&, ValueList& args) {
    expect_args("object-name", args, 1);
    return Value(args[0].as_object()->name());
  });
  def(env, "object-id", [](Interpreter&, ValueList& args) {
    expect_args("object-id", args, 1);
    return Value(static_cast<std::int64_t>(args[0].as_object()->id()));
  });
  def(env, "object-path", [](Interpreter&, ValueList& args) {
    expect_args("object-path", args, 1);
    return Value(args[0].as_object()->path());
  });
  def(env, "parent", [](Interpreter&, ValueList& args) {
    expect_args("parent", args, 1);
    model::ModelObject* p = args[0].as_object()->parent();
    return p == nullptr ? Value::nil() : Value(p);
  });
  def(env, "children", [](Interpreter&, ValueList& args) {
    expect_args("children", args, 1);
    ValueList out;
    for (const auto& c : args[0].as_object()->children()) {
      out.emplace_back(c.get());
    }
    return Value::list(std::move(out));
  });
  def(env, "children-of-type", [](Interpreter&, ValueList& args) {
    expect_args("children-of-type", args, 2);
    return object_list(
        args[0].as_object()->children_of_type(args[1].as_string()));
  });
  def(env, "descendants-of-type", [](Interpreter&, ValueList& args) {
    expect_args("descendants-of-type", args, 2);
    return object_list(
        args[0].as_object()->descendants_of_type(args[1].as_string()));
  });
  def(env, "find-child", [](Interpreter&, ValueList& args) {
    expect_args("find-child", args, 2);
    model::ModelObject* child =
        args[0].as_object()->find_child(args[1].as_string());
    return child == nullptr ? Value::nil() : Value(child);
  });

  def(env, "has-property?", [](Interpreter&, ValueList& args) {
    expect_args("has-property?", args, 2);
    return Value(args[0].as_object()->has_property(args[1].as_string()));
  });
  def(env, "get-property", [](Interpreter&, ValueList& args) {
    expect_args("get-property", args, 2);
    return from_property(
        args[0].as_object()->property(args[1].as_string()));
  });
  def(env, "get-property-or", [](Interpreter&, ValueList& args) {
    expect_args("get-property-or", args, 3);
    const model::ModelObject* obj = args[0].as_object();
    const std::string& key = args[1].as_string();
    if (!obj->has_property(key)) return args[2];
    return from_property(obj->property(key));
  });
  def(env, "set-property!", [](Interpreter&, ValueList& args) {
    expect_args("set-property!", args, 3);
    args[0].as_object()->set_property(args[1].as_string(),
                                      to_property(args[2]));
    return Value::nil();
  });

  // Application-level conveniences (thin wrappers over sage::model).
  def(env, "app-functions", [](Interpreter&, ValueList& args) {
    expect_args("app-functions", args, 1);
    return object_list(model::functions(*args[0].as_object()));
  });
  def(env, "app-arcs", [](Interpreter&, ValueList& args) {
    expect_args("app-arcs", args, 1);
    return object_list(model::arcs(*args[0].as_object()));
  });
  def(env, "app-topological-order", [](Interpreter&, ValueList& args) {
    expect_args("app-topological-order", args, 1);
    return object_list(model::topological_order(*args[0].as_object()));
  });
  def(env, "find-function", [](Interpreter&, ValueList& args) {
    expect_args("find-function", args, 2);
    return Value(
        &model::find_function(*args[0].as_object(), args[1].as_string()));
  });
  def(env, "function-ports", [](Interpreter&, ValueList& args) {
    expect_args("function-ports", args, 1);
    return object_list(args[0].as_object()->children_of_type("port"));
  });
  def(env, "find-port", [](Interpreter&, ValueList& args) {
    expect_args("find-port", args, 2);
    return Value(&model::find_port(*args[0].as_object(), args[1].as_string()));
  });
  def(env, "property-names", [](Interpreter&, ValueList& args) {
    expect_args("property-names", args, 1);
    ValueList out;
    for (const auto& [key, value] : args[0].as_object()->properties()) {
      out.emplace_back(key);
    }
    return Value::list(std::move(out));
  });
  def(env, "string-prefix?", [](Interpreter&, ValueList& args) {
    expect_args("string-prefix?", args, 2);  // (string-prefix? prefix s)
    return Value(
        support::starts_with(args[1].as_string(), args[0].as_string()));
  });
  def(env, "processor-rank", [](Interpreter&, ValueList& args) {
    expect_args("processor-rank", args, 2);  // (processor-rank hw name)
    return Value(static_cast<std::int64_t>(
        model::processor_rank(*args[0].as_object(), args[1].as_string())));
  });
  def(env, "hardware-node-count", [](Interpreter&, ValueList& args) {
    expect_args("hardware-node-count", args, 1);
    return Value(static_cast<std::int64_t>(
        model::processors(*args[0].as_object()).size()));
  });
  def(env, "save-model", [](Interpreter&, ValueList& args) {
    expect_args("save-model", args, 1);
    return Value(model::save_model(*args[0].as_object()));
  });
  def(env, "datatype-bytes", [](Interpreter& in, ValueList& args) {
    expect_args("datatype-bytes", args, 2);
    // args: root object, datatype name.
    (void)in;
    return Value(static_cast<std::int64_t>(
        model::datatype_bytes(*args[0].as_object(), args[1].as_string())));
  });
}

}  // namespace sage::alter
