#include "net/machine.hpp"

#include <algorithm>
#include <exception>

#include "support/error.hpp"

namespace sage::net {

support::VirtualSeconds MachineReport::makespan() const {
  support::VirtualSeconds worst = 0.0;
  for (const NodeReport& n : nodes) {
    if (n.final_vt > worst) worst = n.final_vt;
  }
  return worst;
}

Machine::Machine(int node_count, FabricModel fabric_model, double cpu_scale,
                 TransportOptions transport)
    : node_count_(node_count),
      scales_(static_cast<std::size_t>(std::max(node_count, 0)), cpu_scale),
      fabric_(std::make_unique<Fabric>(node_count, std::move(fabric_model),
                                       transport)) {
  SAGE_CHECK_AS(CommError, node_count > 0, "machine needs at least one node");
  SAGE_CHECK_AS(CommError, cpu_scale > 0, "cpu_scale must be positive");
}

Machine::Machine(FabricModel fabric_model, std::vector<double> per_node_scales,
                 TransportOptions transport)
    : node_count_(static_cast<int>(per_node_scales.size())),
      scales_(std::move(per_node_scales)),
      fabric_(std::make_unique<Fabric>(node_count_, std::move(fabric_model),
                                       transport)) {
  SAGE_CHECK_AS(CommError, node_count_ > 0, "machine needs at least one node");
  for (double s : scales_) {
    SAGE_CHECK_AS(CommError, s > 0, "cpu_scale must be positive");
  }
}

Machine::~Machine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Machine::start() {
  if (started()) return;
  workers_.reserve(static_cast<std::size_t>(node_count_));
  errors_.resize(static_cast<std::size_t>(node_count_));
  for (int r = 0; r < node_count_; ++r) {
    workers_.emplace_back([this, r] { worker_loop_(r); });
  }
}

void Machine::worker_loop_(int rank) {
  std::uint64_t seen = 0;
  for (;;) {
    const NodeProgram* program = nullptr;
    NodeContext* context = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      program = program_;
      context = contexts_[static_cast<std::size_t>(rank)].get();
    }

    std::exception_ptr error;
    try {
      (*program)(*context);
    } catch (...) {
      error = std::current_exception();
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      errors_[static_cast<std::size_t>(rank)] = error;
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void Machine::dispatch(const NodeProgram& program) {
  start();

  // Fresh contexts per run: virtual clocks restart at zero, exactly as
  // if the machine had been rebuilt.
  std::vector<std::unique_ptr<NodeContext>> contexts;
  contexts.reserve(static_cast<std::size_t>(node_count_));
  for (int r = 0; r < node_count_; ++r) {
    contexts.push_back(std::make_unique<NodeContext>(
        r, node_count_, *fabric_, scales_[static_cast<std::size_t>(r)]));
  }

  std::lock_guard<std::mutex> lock(mu_);
  SAGE_CHECK_AS(CommError, !dispatched_,
                "Machine::dispatch while a dispatch is already in flight");
  contexts_ = std::move(contexts);
  std::fill(errors_.begin(), errors_.end(), nullptr);
  program_ = &program;
  pending_ = node_count_;
  dispatched_ = true;
  ++generation_;
  cv_start_.notify_all();
}

MachineReport Machine::join_run() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    SAGE_CHECK_AS(CommError, dispatched_,
                  "Machine::join_run without a matching dispatch");
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    program_ = nullptr;
    dispatched_ = false;
  }

  for (const auto& err : errors_) {
    if (err) std::rethrow_exception(err);
  }

  MachineReport report;
  report.nodes.reserve(static_cast<std::size_t>(node_count_));
  for (int r = 0; r < node_count_; ++r) {
    report.nodes.push_back(
        {r, contexts_[static_cast<std::size_t>(r)]->now()});
  }
  return report;
}

bool Machine::dispatch_active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dispatched_;
}

MachineReport Machine::run(const NodeProgram& program) {
  dispatch(program);
  return join_run();
}

}  // namespace sage::net
