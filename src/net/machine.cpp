#include "net/machine.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "support/error.hpp"

namespace sage::net {

support::VirtualSeconds MachineReport::makespan() const {
  support::VirtualSeconds worst = 0.0;
  for (const NodeReport& n : nodes) {
    if (n.final_vt > worst) worst = n.final_vt;
  }
  return worst;
}

Machine::Machine(int node_count, FabricModel fabric_model, double cpu_scale)
    : node_count_(node_count),
      scales_(static_cast<std::size_t>(std::max(node_count, 0)), cpu_scale),
      fabric_(std::make_unique<Fabric>(node_count, std::move(fabric_model))) {
  SAGE_CHECK_AS(CommError, node_count > 0, "machine needs at least one node");
  SAGE_CHECK_AS(CommError, cpu_scale > 0, "cpu_scale must be positive");
}

Machine::Machine(FabricModel fabric_model, std::vector<double> per_node_scales)
    : node_count_(static_cast<int>(per_node_scales.size())),
      scales_(std::move(per_node_scales)),
      fabric_(std::make_unique<Fabric>(node_count_, std::move(fabric_model))) {
  SAGE_CHECK_AS(CommError, node_count_ > 0, "machine needs at least one node");
  for (double s : scales_) {
    SAGE_CHECK_AS(CommError, s > 0, "cpu_scale must be positive");
  }
}

MachineReport Machine::run(const NodeProgram& program) {
  std::vector<std::unique_ptr<NodeContext>> contexts;
  contexts.reserve(static_cast<std::size_t>(node_count_));
  for (int r = 0; r < node_count_; ++r) {
    contexts.push_back(std::make_unique<NodeContext>(
        r, node_count_, *fabric_, scales_[static_cast<std::size_t>(r)]));
  }

  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(node_count_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(node_count_));
  for (int r = 0; r < node_count_; ++r) {
    threads.emplace_back([&, r] {
      try {
        program(*contexts[static_cast<std::size_t>(r)]);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();

  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }

  MachineReport report;
  report.nodes.reserve(static_cast<std::size_t>(node_count_));
  for (int r = 0; r < node_count_; ++r) {
    report.nodes.push_back(
        {r, contexts[static_cast<std::size_t>(r)]->now()});
  }
  return report;
}

}  // namespace sage::net
