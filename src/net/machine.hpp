// openSAGE -- the emulated multicomputer.
//
// Machine::run spawns one host thread per emulated node, hands each a
// NodeContext (rank, fabric handle, virtual clock, CPU scale factor), and
// joins them. Exceptions thrown on node threads are captured and rethrown
// on the caller after all nodes stop. The per-node final virtual times are
// collected so harnesses can report modeled makespans.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "support/clock.hpp"

namespace sage::net {

/// Everything a node program needs: identity, its clock, and the wires.
class NodeContext {
 public:
  NodeContext(int rank, int size, Fabric& fabric, double cpu_scale)
      : rank_(rank), size_(size), fabric_(fabric), cpu_scale_(cpu_scale) {}

  int rank() const { return rank_; }
  int size() const { return size_; }
  Fabric& fabric() { return fabric_; }
  const FabricModel& fabric_model() const { return fabric_.model(); }

  support::VirtualClock& clock() { return clock_; }
  support::VirtualSeconds now() const { return clock_.now(); }

  /// Ratio modeled-CPU-time : host-CPU-time for compute segments. A value
  /// of 4.0 models a CPU four times slower than the host core.
  double cpu_scale() const { return cpu_scale_; }

  /// Measures a compute segment and advances the virtual clock.
  template <typename Fn>
  auto compute(Fn&& fn) -> decltype(fn()) {
    support::ComputeScope scope(clock_, cpu_scale_);
    return fn();
  }

 private:
  int rank_;
  int size_;
  Fabric& fabric_;
  double cpu_scale_;
  support::VirtualClock clock_;
};

/// Per-node results of a Machine::run.
struct NodeReport {
  int rank = 0;
  support::VirtualSeconds final_vt = 0.0;
};

struct MachineReport {
  std::vector<NodeReport> nodes;

  /// Modeled makespan: the latest node finish time.
  support::VirtualSeconds makespan() const;
};

/// The emulated platform: node count + fabric + CPU speed model.
class Machine {
 public:
  Machine(int node_count, FabricModel fabric_model, double cpu_scale = 1.0);
  /// Heterogeneous machine: one CPU scale per node.
  Machine(FabricModel fabric_model, std::vector<double> per_node_scales);

  int node_count() const { return node_count_; }
  Fabric& fabric() { return *fabric_; }
  double cpu_scale(int rank = 0) const {
    return scales_[static_cast<std::size_t>(rank)];
  }

  using NodeProgram = std::function<void(NodeContext&)>;

  /// Runs `program` on every node concurrently; rethrows the first node
  /// exception after all threads join.
  MachineReport run(const NodeProgram& program);

 private:
  int node_count_;
  std::vector<double> scales_;  // one per node
  std::unique_ptr<Fabric> fabric_;
};

}  // namespace sage::net
