// openSAGE -- the emulated multicomputer.
//
// Machine::run hands each emulated node a NodeContext (rank, fabric
// handle, virtual clock, CPU scale factor) and executes the node program
// on one host thread per node. The worker threads are spawned once (on
// start() or the first run) and then *parked* between runs instead of
// being joined and re-spawned, so repeated runs -- the warm
// runtime::Session path -- pay only a condition-variable handshake per
// run. Exceptions thrown on node threads are captured and rethrown on
// the caller after all nodes stop. The per-node final virtual times are
// collected so harnesses can report modeled makespans.
//
// run() may be called from one host thread at a time; the fabric and the
// dispatch state are shared across all nodes of one machine.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/fabric.hpp"
#include "support/clock.hpp"

namespace sage::net {

/// Everything a node program needs: identity, its clock, and the wires.
class NodeContext {
 public:
  NodeContext(int rank, int size, Fabric& fabric, double cpu_scale)
      : rank_(rank), size_(size), fabric_(fabric), cpu_scale_(cpu_scale) {}

  int rank() const { return rank_; }
  int size() const { return size_; }
  Fabric& fabric() { return fabric_; }
  const FabricModel& fabric_model() const { return fabric_.model(); }

  support::VirtualClock& clock() { return clock_; }
  support::VirtualSeconds now() const { return clock_.now(); }

  /// Ratio modeled-CPU-time : host-CPU-time for compute segments. A value
  /// of 4.0 models a CPU four times slower than the host core.
  double cpu_scale() const { return cpu_scale_; }

  /// Measures a compute segment and advances the virtual clock.
  template <typename Fn>
  auto compute(Fn&& fn) -> decltype(fn()) {
    support::ComputeScope scope(clock_, cpu_scale_);
    return fn();
  }

 private:
  int rank_;
  int size_;
  Fabric& fabric_;
  double cpu_scale_;
  support::VirtualClock clock_;
};

/// Per-node results of a Machine::run.
struct NodeReport {
  int rank = 0;
  support::VirtualSeconds final_vt = 0.0;
};

struct MachineReport {
  std::vector<NodeReport> nodes;

  /// Modeled makespan: the latest node finish time.
  support::VirtualSeconds makespan() const;
};

/// The emulated platform: node count + fabric + CPU speed model.
class Machine {
 public:
  Machine(int node_count, FabricModel fabric_model, double cpu_scale = 1.0,
          TransportOptions transport = {});
  /// Heterogeneous machine: one CPU scale per node.
  Machine(FabricModel fabric_model, std::vector<double> per_node_scales,
          TransportOptions transport = {});

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Signals shutdown and joins the parked worker threads.
  ~Machine();

  int node_count() const { return node_count_; }
  Fabric& fabric() { return *fabric_; }
  double cpu_scale(int rank = 0) const {
    return scales_[static_cast<std::size_t>(rank)];
  }

  using NodeProgram = std::function<void(NodeContext&)>;

  /// Spawns the per-node worker threads (parked until a run). Idempotent;
  /// run() calls it lazily. Sessions call it eagerly so the thread-spawn
  /// cost lands in construction, not the first measured run.
  void start();
  bool started() const { return !workers_.empty(); }

  /// Number of completed run() calls (diagnostics: warm-reuse counters).
  std::uint64_t runs_completed() const { return generation_; }

  /// Runs `program` on every node concurrently on the parked worker
  /// threads; rethrows the first node exception (by rank) after all
  /// nodes finish. Each run gets fresh NodeContexts (virtual clocks
  /// restart at zero); fabric state persists across runs -- call
  /// fabric().reset() for a cold-equivalent run. Equivalent to
  /// dispatch() immediately followed by join_run().
  MachineReport run(const NodeProgram& program);

  /// Non-blocking half of run(): publishes `program` to the parked
  /// workers and returns while the nodes execute. `program` must stay
  /// alive until the matching join_run(). The streaming Session uses
  /// this split to keep submitting work from the host thread while an
  /// epoch is in flight on the node threads.
  void dispatch(const NodeProgram& program);

  /// Blocking half: waits for every node of the dispatched program to
  /// finish, rethrows the first node exception (by rank), and returns
  /// the per-node final virtual times. Must pair with a dispatch().
  MachineReport join_run();

  /// True between dispatch() and the matching join_run().
  bool dispatch_active() const;

 private:
  void worker_loop_(int rank);

  int node_count_;
  std::vector<double> scales_;  // one per node
  std::unique_ptr<Fabric> fabric_;

  // Dispatch handshake: run() publishes contexts_/program_ under mu_ and
  // bumps generation_; workers execute and decrement pending_; the last
  // worker wakes the caller.
  mutable std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool dispatched_ = false;
  bool shutdown_ = false;
  const NodeProgram* program_ = nullptr;
  std::vector<std::unique_ptr<NodeContext>> contexts_;
  std::vector<std::exception_ptr> errors_;
  std::vector<std::thread> workers_;
};

}  // namespace sage::net
