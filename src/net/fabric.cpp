#include "net/fabric.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace sage::net {

Fabric::Fabric(int node_count, FabricModel model, TransportOptions transport)
    : node_count_(node_count),
      model_(std::move(model)),
      boxes_(node_count),
      link_seq_(static_cast<std::size_t>(node_count) * node_count, 0),
      link_stats_(static_cast<std::size_t>(node_count) * node_count),
      link_free_(static_cast<std::size_t>(node_count) * node_count, 0.0) {
  SAGE_CHECK_AS(CommError, node_count > 0, "fabric needs at least one node");
  // The sink every backend converges on: the destination mailbox. The
  // in-process backend calls it synchronously on the sender's thread
  // (the historical path, verbatim); shmem/tcp call it from their
  // receive threads after the bytes crossed the process boundary.
  transport_ = make_transport(transport, node_count, pool_,
                              [this](int dst, Parcel&& parcel) {
                                Mailbox& box =
                                    boxes_[static_cast<std::size_t>(dst)];
                                std::lock_guard<std::mutex> lock(box.mu);
                                box.queue.push_back(std::move(parcel));
                                box.cv.notify_all();
                              });
}

void Fabric::set_fault_plan(std::shared_ptr<const FaultPlan> plan) {
  plan_ = std::move(plan);
}

std::uint64_t Fabric::next_link_seq_(int src, int dst) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return link_seq_[link_index_(src, dst)]++;
}

Payload Fabric::deliverable_(Payload payload, const FaultOutcome& outcome) {
  if (outcome.kind == FaultKind::kDrop) {
    // Tombstone: the payload was transmitted and lost; the receiver
    // learns of the loss only after its detection timeout.
    return Payload{};
  }
  if (outcome.kind == FaultKind::kCorrupt && !payload.empty()) {
    // Copy-on-write: the corrupted attempt gets its own block, so
    // fan-out sharers and retransmits keep the clean bytes.
    Payload corrupted = pool_.copy_of(payload.bytes());
    std::span<std::byte> flip = corrupted.writable();
    std::uint64_t state = outcome.draw;
    for (std::size_t i = 0; i < outcome.corrupt_bytes; ++i) {
      const std::uint64_t pos = support::splitmix64(state);
      flip[pos % flip.size()] ^= std::byte{0xFF};
    }
    return corrupted;
  }
  return payload;
}

support::VirtualSeconds Fabric::enqueue_(int src, int dst, int tag,
                                         Payload payload,
                                         std::size_t wire_bytes,
                                         support::VirtualSeconds now_vt,
                                         const SendOptions& options,
                                         const FaultOutcome& outcome,
                                         double extra_arrival_vt,
                                         int attempt) {
  SAGE_CHECK_AS(CommError, src >= 0 && src < node_count_, "bad src rank ", src);
  SAGE_CHECK_AS(CommError, dst >= 0 && dst < node_count_, "bad dst rank ", dst);

  const double overhead_factor =
      options.vendor_bulk ? model_.vendor_bulk_overhead_factor : 1.0;
  const double send_cost = model_.send_overhead_s * overhead_factor;
  const double recv_cost = model_.recv_overhead_s * overhead_factor;
  const support::VirtualSeconds sender_after = now_vt + send_cost;

  Parcel parcel;
  parcel.src = src;
  parcel.tag = tag;
  parcel.fault = outcome.kind;
  parcel.attempt = attempt;
  parcel.payload = std::move(payload);

  if (model_.model_contention && !model_.same_board(src, dst)) {
    // The board-pair channel serializes transfers: the bytes move when
    // both the sender has issued them and the link has drained. Links
    // are granted in send-call order (host order), a conservative
    // approximation of virtual-time arbitration.
    const int board_a = src / model_.nodes_per_board;
    const int board_b = dst / model_.nodes_per_board;
    const auto key = std::minmax(board_a, board_b);
    const double serialization =
        static_cast<double>(wire_bytes) / model_.bandwidth_Bps(src, dst);
    std::lock_guard<std::mutex> lock(stats_mu_);
    double& link_free = link_free_[link_index_(key.first, key.second)];
    const double start = std::max(sender_after, link_free);
    link_free = start + serialization;
    parcel.arrival_vt =
        start + serialization + model_.latency_s(src, dst) + recv_cost;
    ++total_messages_;
    total_bytes_ += wire_bytes;
    LinkStats& link = link_stats_[link_index_(src, dst)];
    ++link.messages;
    link.bytes += wire_bytes;
    link.busy_vt += serialization;
  } else {
    parcel.arrival_vt = sender_after +
                        model_.transfer_seconds(src, dst, wire_bytes) +
                        recv_cost;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++total_messages_;
    total_bytes_ += wire_bytes;
    LinkStats& link = link_stats_[link_index_(src, dst)];
    ++link.messages;
    link.bytes += wire_bytes;
  }
  parcel.arrival_vt += extra_arrival_vt;

  if (outcome.kind != FaultKind::kNone) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    switch (outcome.kind) {
      case FaultKind::kDrop: ++fault_counters_.drops; break;
      case FaultKind::kCorrupt: ++fault_counters_.corruptions; break;
      case FaultKind::kDelay: ++fault_counters_.delays; break;
      case FaultKind::kNone: break;
    }
  }

  transport_->deliver(dst, std::move(parcel));
  return sender_after;
}

support::VirtualSeconds Fabric::send(int src, int dst, int tag,
                                     std::span<const std::byte> bytes,
                                     support::VirtualSeconds now_vt,
                                     SendOptions options) {
  return send(src, dst, tag, pool_.copy_of(bytes), now_vt, options);
}

support::VirtualSeconds Fabric::send(int src, int dst, int tag,
                                     Payload payload,
                                     support::VirtualSeconds now_vt,
                                     SendOptions options) {
  FaultOutcome outcome;
  double extra = 0.0;
  if (plan_ && plan_->active() && !options.fault_exempt) {
    outcome = plan_->link_outcome(src, dst, next_link_seq_(src, dst));
    if (outcome.kind == FaultKind::kDrop) extra = plan_->detect_timeout_vt;
    if (outcome.kind == FaultKind::kDelay) extra = outcome.delay_vt;
  }
  const std::size_t wire_bytes = payload.size();
  return enqueue_(src, dst, tag, deliverable_(std::move(payload), outcome),
                  wire_bytes, now_vt, options, outcome, extra, 0);
}

SendReceipt Fabric::send_reliable(int src, int dst, int tag,
                                  std::span<const std::byte> bytes,
                                  support::VirtualSeconds now_vt,
                                  SendOptions options) {
  return send_reliable(src, dst, tag, pool_.copy_of(bytes), now_vt, options);
}

SendReceipt Fabric::send_reliable(int src, int dst, int tag, Payload payload,
                                  support::VirtualSeconds now_vt,
                                  SendOptions options) {
  SendReceipt receipt;
  const std::size_t wire_bytes = payload.size();
  if (!plan_ || !plan_->active() || options.fault_exempt) {
    receipt.sender_after = enqueue_(src, dst, tag, std::move(payload),
                                    wire_bytes, now_vt, options, {}, 0.0, 0);
    return receipt;
  }

  // Analytic ARQ: every attempt is resolved and enqueued right now, so
  // the receiver sees the full (deterministic) sequence of faulted
  // attempts followed by the clean one, and the sender pays the
  // detection timeout plus exponential backoff in virtual time without
  // ever blocking for an acknowledgement (sends stay eager, so the
  // fault layer introduces no new deadlock modes). All attempts share
  // the payload's block; faulted attempts tombstone or clone it.
  support::VirtualSeconds t = now_vt;
  double backoff = plan_->detect_timeout_vt;
  for (int attempt = 0;; ++attempt) {
    SAGE_CHECK_AS(CommError, attempt < plan_->max_attempts, "link ", src,
                  "->", dst, " tag ", tag, ": transfer still failing after ",
                  plan_->max_attempts,
                  " attempts (unrecoverable link failure under fault plan)");
    const FaultOutcome outcome =
        plan_->link_outcome(src, dst, next_link_seq_(src, dst));
    double extra = 0.0;
    if (outcome.kind == FaultKind::kDrop) extra = plan_->detect_timeout_vt;
    if (outcome.kind == FaultKind::kDelay) extra = outcome.delay_vt;
    t = enqueue_(src, dst, tag, deliverable_(payload, outcome), wire_bytes, t,
                 options, outcome, extra, attempt);
    receipt.attempts = attempt + 1;
    if (outcome.kind == FaultKind::kDrop ||
        outcome.kind == FaultKind::kCorrupt) {
      t += backoff;
      backoff *= plan_->backoff_factor;
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++fault_counters_.retransmits;
      ++link_stats_[link_index_(src, dst)].retransmits;
      continue;
    }
    break;
  }
  receipt.sender_after = t;
  return receipt;
}

Message Fabric::recv(int dst, int src, int tag, double timeout_wall_s) {
  SAGE_CHECK_AS(CommError, dst >= 0 && dst < node_count_, "bad dst rank ", dst);
  Mailbox& box = boxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mu);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::duration<double>(timeout_wall_s));
  for (;;) {
    auto it = std::find_if(box.queue.begin(), box.queue.end(),
                           [&](const Parcel& p) { return match_(p, src, tag); });
    if (it != box.queue.end()) {
      Message out;
      out.src = it->src;
      out.tag = it->tag;
      out.payload = std::move(it->payload);
      out.arrival_vt = it->arrival_vt;
      out.fault = it->fault;
      out.attempt = it->attempt;
      box.queue.erase(it);
      return out;
    }
    if (box.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      raise<CommError>("recv timeout on rank ", dst, " waiting for src=", src,
                       " tag=", tag, " after ", timeout_wall_s,
                       "s wall time (likely emulated-network deadlock)");
    }
  }
}

std::optional<Message> Fabric::try_recv(int dst, int src, int tag) {
  SAGE_CHECK_AS(CommError, dst >= 0 && dst < node_count_, "bad dst rank ", dst);
  Mailbox& box = boxes_[static_cast<std::size_t>(dst)];
  std::lock_guard<std::mutex> lock(box.mu);
  auto it = std::find_if(box.queue.begin(), box.queue.end(),
                         [&](const Parcel& p) { return match_(p, src, tag); });
  if (it == box.queue.end()) return std::nullopt;
  Message out;
  out.src = it->src;
  out.tag = it->tag;
  out.payload = std::move(it->payload);
  out.arrival_vt = it->arrival_vt;
  out.fault = it->fault;
  out.attempt = it->attempt;
  box.queue.erase(it);
  return out;
}

std::size_t Fabric::pending(int dst) const {
  const Mailbox& box = boxes_[static_cast<std::size_t>(dst)];
  std::lock_guard<std::mutex> lock(box.mu);
  return box.queue.size();
}

std::uint64_t Fabric::total_messages() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return total_messages_;
}

std::uint64_t Fabric::total_bytes() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return total_bytes_;
}

FaultCounters Fabric::fault_counters() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return fault_counters_;
}

std::map<std::pair<int, int>, LinkStats> Fabric::link_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  std::map<std::pair<int, int>, LinkStats> out;
  for (int src = 0; src < node_count_; ++src) {
    for (int dst = 0; dst < node_count_; ++dst) {
      const LinkStats& link = link_stats_[link_index_(src, dst)];
      if (link == LinkStats{}) continue;
      out[{src, dst}] = link;
    }
  }
  return out;
}

void Fabric::reset() {
  // Settle the transport first: with an async backend (shmem rings,
  // TCP), accepted messages may still be crossing the wire, and a
  // parcel landing *after* the drain below would leak into the next
  // run's mailboxes -- breaking warm-run determinism.
  transport_->flush();
  for (Mailbox& box : boxes_) {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.clear();  // releases parcel payloads back to the pool
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  total_messages_ = 0;
  total_bytes_ = 0;
  fault_counters_ = {};
  std::fill(link_seq_.begin(), link_seq_.end(), 0);
  std::fill(link_stats_.begin(), link_stats_.end(), LinkStats{});
  std::fill(link_free_.begin(), link_free_.end(), 0.0);
}

}  // namespace sage::net
