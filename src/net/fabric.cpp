#include "net/fabric.hpp"

#include <algorithm>
#include <chrono>

#include "support/error.hpp"

namespace sage::net {

Fabric::Fabric(int node_count, FabricModel model)
    : node_count_(node_count), model_(std::move(model)), boxes_(node_count) {
  SAGE_CHECK_AS(CommError, node_count > 0, "fabric needs at least one node");
}

support::VirtualSeconds Fabric::send(int src, int dst, int tag,
                                     std::span<const std::byte> bytes,
                                     support::VirtualSeconds now_vt,
                                     SendOptions options) {
  SAGE_CHECK_AS(CommError, src >= 0 && src < node_count_, "bad src rank ", src);
  SAGE_CHECK_AS(CommError, dst >= 0 && dst < node_count_, "bad dst rank ", dst);

  const double overhead_factor =
      options.vendor_bulk ? model_.vendor_bulk_overhead_factor : 1.0;
  const double send_cost = model_.send_overhead_s * overhead_factor;
  const double recv_cost = model_.recv_overhead_s * overhead_factor;
  const support::VirtualSeconds sender_after = now_vt + send_cost;

  Parcel parcel;
  parcel.src = src;
  parcel.tag = tag;
  parcel.payload.assign(bytes.begin(), bytes.end());

  if (model_.model_contention && !model_.same_board(src, dst)) {
    // The board-pair channel serializes transfers: the bytes move when
    // both the sender has issued them and the link has drained. Links
    // are granted in send-call order (host order), a conservative
    // approximation of virtual-time arbitration.
    const int board_a = src / model_.nodes_per_board;
    const int board_b = dst / model_.nodes_per_board;
    const auto key = std::minmax(board_a, board_b);
    const double serialization =
        static_cast<double>(bytes.size()) / model_.bandwidth_Bps(src, dst);
    std::lock_guard<std::mutex> lock(stats_mu_);
    double& link_free = link_free_[{key.first, key.second}];
    const double start = std::max(sender_after, link_free);
    link_free = start + serialization;
    parcel.arrival_vt =
        start + serialization + model_.latency_s(src, dst) + recv_cost;
    ++total_messages_;
    total_bytes_ += bytes.size();
  } else {
    parcel.arrival_vt = sender_after +
                        model_.transfer_seconds(src, dst, bytes.size()) +
                        recv_cost;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++total_messages_;
    total_bytes_ += bytes.size();
  }

  {
    Mailbox& box = boxes_[static_cast<std::size_t>(dst)];
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(std::move(parcel));
    box.cv.notify_all();
  }
  return sender_after;
}

Message Fabric::recv(int dst, int src, int tag, double timeout_wall_s) {
  SAGE_CHECK_AS(CommError, dst >= 0 && dst < node_count_, "bad dst rank ", dst);
  Mailbox& box = boxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mu);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::duration<double>(timeout_wall_s));
  for (;;) {
    auto it = std::find_if(box.queue.begin(), box.queue.end(),
                           [&](const Parcel& p) { return match_(p, src, tag); });
    if (it != box.queue.end()) {
      Message out;
      out.src = it->src;
      out.tag = it->tag;
      out.payload = std::move(it->payload);
      out.arrival_vt = it->arrival_vt;
      box.queue.erase(it);
      return out;
    }
    if (box.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      raise<CommError>("recv timeout on rank ", dst, " waiting for src=", src,
                       " tag=", tag, " after ", timeout_wall_s,
                       "s wall time (likely emulated-network deadlock)");
    }
  }
}

std::optional<Message> Fabric::try_recv(int dst, int src, int tag) {
  SAGE_CHECK_AS(CommError, dst >= 0 && dst < node_count_, "bad dst rank ", dst);
  Mailbox& box = boxes_[static_cast<std::size_t>(dst)];
  std::lock_guard<std::mutex> lock(box.mu);
  auto it = std::find_if(box.queue.begin(), box.queue.end(),
                         [&](const Parcel& p) { return match_(p, src, tag); });
  if (it == box.queue.end()) return std::nullopt;
  Message out;
  out.src = it->src;
  out.tag = it->tag;
  out.payload = std::move(it->payload);
  out.arrival_vt = it->arrival_vt;
  box.queue.erase(it);
  return out;
}

std::size_t Fabric::pending(int dst) const {
  const Mailbox& box = boxes_[static_cast<std::size_t>(dst)];
  std::lock_guard<std::mutex> lock(box.mu);
  return box.queue.size();
}

std::uint64_t Fabric::total_messages() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return total_messages_;
}

std::uint64_t Fabric::total_bytes() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return total_bytes_;
}

void Fabric::reset() {
  for (Mailbox& box : boxes_) {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.clear();
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  total_messages_ = 0;
  total_bytes_ = 0;
  link_free_.clear();
}

}  // namespace sage::net
