#include "net/fault.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace sage::net {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDelay: return "delay";
  }
  return "?";
}

bool FaultPlan::node_dead(int rank) const {
  return std::find(dead_nodes.begin(), dead_nodes.end(), rank) !=
         dead_nodes.end();
}

FaultOutcome FaultPlan::link_outcome(int src, int dst,
                                     std::uint64_t link_seq) const {
  FaultOutcome outcome;
  if (link_rules.empty()) return outcome;

  // Counter-mode draws: the generator state is a hash of (seed, src,
  // dst, link_seq), so the verdict does not depend on the host-time
  // order in which links are exercised. One draw is consumed per
  // probabilistic rule considered, keeping rules independent.
  std::uint64_t state = seed;
  state ^= 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(src + 1);
  state ^= 0xBF58476D1CE4E5B9ull * static_cast<std::uint64_t>(dst + 1);
  state ^= 0x94D049BB133111EBull * (link_seq + 1);

  for (const LinkFaultRule& rule : link_rules) {
    if (rule.src != -1 && rule.src != src) continue;
    if (rule.dst != -1 && rule.dst != dst) continue;
    bool fire = false;
    if (rule.at_index >= 0) {
      fire = static_cast<std::uint64_t>(rule.at_index) == link_seq;
    }
    if (!fire && rule.probability > 0.0) {
      const std::uint64_t draw = support::splitmix64(state);
      const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
      fire = u < rule.probability;
    }
    if (!fire) continue;
    outcome.kind = rule.kind;
    outcome.delay_vt = rule.delay_vt;
    outcome.corrupt_bytes = rule.corrupt_bytes;
    outcome.draw = support::splitmix64(state);
    return outcome;
  }
  return outcome;
}

double FaultPlan::stall_vt(int node, int iteration) const {
  double total = 0.0;
  for (const StallRule& rule : stall_rules) {
    if (rule.node != -1 && rule.node != node) continue;
    if (rule.iteration != -1 && rule.iteration != iteration) continue;
    total += rule.stall_vt;
  }
  return total;
}

namespace {

/// Parses "a->b" / "*" / "*->b" / "a->*" into (src, dst); -1 = any.
void parse_link(std::string_view spec, int& src, int& dst) {
  src = dst = -1;
  if (spec == "*") return;
  const auto arrow = spec.find("->");
  SAGE_CHECK_AS(ConfigError, arrow != std::string_view::npos,
                "fault plan: bad link spec '", std::string(spec),
                "' (want 'src->dst' or '*')");
  const std::string_view a = spec.substr(0, arrow);
  const std::string_view b = spec.substr(arrow + 2);
  if (a != "*") src = static_cast<int>(support::parse_int(a));
  if (b != "*") dst = static_cast<int>(support::parse_int(b));
}

/// Splits "key=value"; throws on missing '='.
std::pair<std::string, std::string> key_value(const std::string& token,
                                              int line) {
  const auto eq = token.find('=');
  SAGE_CHECK_AS(ConfigError, eq != std::string::npos, "fault plan line ",
                line, ": expected key=value, got '", token, "'");
  return {token.substr(0, eq), token.substr(eq + 1)};
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  bool saw_header = false;
  int line_number = 0;
  for (const std::string& raw : support::split(text, '\n')) {
    ++line_number;
    std::string_view line = support::trim(raw);
    const auto hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = support::trim(line.substr(0, hash));
    }
    if (line.empty()) continue;
    const std::vector<std::string> tokens = support::split_ws(line);
    const std::string& word = tokens[0];

    if (word == "fault-plan") {
      SAGE_CHECK_AS(ConfigError,
                    tokens.size() == 2 && support::parse_int(tokens[1]) == 1,
                    "fault plan line ", line_number,
                    ": unsupported version");
      saw_header = true;
      continue;
    }
    SAGE_CHECK_AS(ConfigError, saw_header, "fault plan line ", line_number,
                  ": missing 'fault-plan 1' header");

    if (word == "seed") {
      SAGE_CHECK_AS(ConfigError, tokens.size() == 2, "fault plan line ",
                    line_number, ": seed wants one value");
      plan.seed = static_cast<std::uint64_t>(support::parse_int(tokens[1]));
    } else if (word == "detect-timeout") {
      SAGE_CHECK_AS(ConfigError, tokens.size() == 2, "fault plan line ",
                    line_number, ": detect-timeout wants one value");
      plan.detect_timeout_vt = support::parse_double(tokens[1]);
      SAGE_CHECK_AS(ConfigError, plan.detect_timeout_vt >= 0,
                    "fault plan line ", line_number,
                    ": detect-timeout must be >= 0");
    } else if (word == "backoff") {
      SAGE_CHECK_AS(ConfigError, tokens.size() == 2, "fault plan line ",
                    line_number, ": backoff wants one value");
      plan.backoff_factor = support::parse_double(tokens[1]);
      SAGE_CHECK_AS(ConfigError, plan.backoff_factor >= 1.0,
                    "fault plan line ", line_number,
                    ": backoff must be >= 1");
    } else if (word == "max-attempts") {
      SAGE_CHECK_AS(ConfigError, tokens.size() == 2, "fault plan line ",
                    line_number, ": max-attempts wants one value");
      plan.max_attempts = static_cast<int>(support::parse_int(tokens[1]));
      SAGE_CHECK_AS(ConfigError, plan.max_attempts >= 1, "fault plan line ",
                    line_number, ": max-attempts must be >= 1");
    } else if (word == "drop" || word == "corrupt" || word == "delay") {
      LinkFaultRule rule;
      rule.kind = (word == "drop")      ? FaultKind::kDrop
                  : (word == "corrupt") ? FaultKind::kCorrupt
                                        : FaultKind::kDelay;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto [key, value] = key_value(tokens[i], line_number);
        if (key == "link") {
          parse_link(value, rule.src, rule.dst);
        } else if (key == "p") {
          rule.probability = support::parse_double(value);
          SAGE_CHECK_AS(ConfigError,
                        rule.probability >= 0 && rule.probability <= 1,
                        "fault plan line ", line_number,
                        ": probability outside [0, 1]");
        } else if (key == "at") {
          rule.at_index = support::parse_int(value);
        } else if (key == "vt") {
          rule.delay_vt = support::parse_double(value);
        } else if (key == "bytes") {
          rule.corrupt_bytes =
              static_cast<std::size_t>(support::parse_int(value));
          SAGE_CHECK_AS(ConfigError, rule.corrupt_bytes > 0,
                        "fault plan line ", line_number,
                        ": corrupt bytes must be > 0");
        } else {
          raise<ConfigError>("fault plan line ", line_number,
                             ": unknown field '", key, "'");
        }
      }
      SAGE_CHECK_AS(ConfigError,
                    rule.probability > 0 || rule.at_index >= 0,
                    "fault plan line ", line_number,
                    ": rule needs p=... or at=...");
      SAGE_CHECK_AS(ConfigError,
                    rule.kind != FaultKind::kDelay || rule.delay_vt > 0,
                    "fault plan line ", line_number,
                    ": delay rule needs vt=...");
      plan.link_rules.push_back(rule);
    } else if (word == "stall") {
      StallRule rule;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto [key, value] = key_value(tokens[i], line_number);
        if (key == "node") {
          rule.node = (value == "*")
                          ? -1
                          : static_cast<int>(support::parse_int(value));
        } else if (key == "iter") {
          rule.iteration = (value == "*")
                               ? -1
                               : static_cast<int>(support::parse_int(value));
        } else if (key == "vt") {
          rule.stall_vt = support::parse_double(value);
        } else {
          raise<ConfigError>("fault plan line ", line_number,
                             ": unknown field '", key, "'");
        }
      }
      SAGE_CHECK_AS(ConfigError, rule.stall_vt > 0, "fault plan line ",
                    line_number, ": stall rule needs vt=...");
      plan.stall_rules.push_back(rule);
    } else if (word == "dead") {
      SAGE_CHECK_AS(ConfigError, tokens.size() == 2, "fault plan line ",
                    line_number, ": dead wants node=<rank>");
      const auto [key, value] = key_value(tokens[1], line_number);
      SAGE_CHECK_AS(ConfigError, key == "node", "fault plan line ",
                    line_number, ": dead wants node=<rank>");
      plan.dead_nodes.push_back(static_cast<int>(support::parse_int(value)));
    } else {
      raise<ConfigError>("fault plan line ", line_number,
                         ": unknown directive '", word, "'");
    }
  }
  SAGE_CHECK_AS(ConfigError, saw_header,
                "fault plan: missing 'fault-plan 1' header");
  return plan;
}

namespace {

std::string link_spec(int src, int dst) {
  if (src == -1 && dst == -1) return "*";
  std::ostringstream os;
  if (src == -1) {
    os << "*";
  } else {
    os << src;
  }
  os << "->";
  if (dst == -1) {
    os << "*";
  } else {
    os << dst;
  }
  return os.str();
}

}  // namespace

std::string FaultPlan::serialize() const {
  std::ostringstream os;
  os << "fault-plan 1\n";
  os << "seed " << seed << "\n";
  os << "detect-timeout " << detect_timeout_vt << "\n";
  os << "backoff " << backoff_factor << "\n";
  os << "max-attempts " << max_attempts << "\n";
  for (const LinkFaultRule& rule : link_rules) {
    os << to_string(rule.kind) << " link=" << link_spec(rule.src, rule.dst);
    if (rule.probability > 0) os << " p=" << rule.probability;
    if (rule.at_index >= 0) os << " at=" << rule.at_index;
    if (rule.kind == FaultKind::kDelay) os << " vt=" << rule.delay_vt;
    if (rule.kind == FaultKind::kCorrupt) {
      os << " bytes=" << rule.corrupt_bytes;
    }
    os << "\n";
  }
  for (const StallRule& rule : stall_rules) {
    os << "stall node=";
    if (rule.node == -1) {
      os << "*";
    } else {
      os << rule.node;
    }
    os << " iter=";
    if (rule.iteration == -1) {
      os << "*";
    } else {
      os << rule.iteration;
    }
    os << " vt=" << rule.stall_vt << "\n";
  }
  for (const int rank : dead_nodes) {
    os << "dead node=" << rank << "\n";
  }
  return os.str();
}

}  // namespace sage::net
