#include "net/shmem_transport.hpp"

#include "support/error.hpp"

#ifndef __linux__

namespace sage::net {

std::unique_ptr<Transport> make_shmem_transport(const TransportOptions&, int,
                                                BufferPool&,
                                                Transport::DeliverFn) {
  raise<CommError>(
      "the shmem transport requires Linux (futex doorbells); "
      "use --transport inproc or tcp on this platform");
}

}  // namespace sage::net

#else  // __linux__

#include <linux/futex.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/prctl.h>
#include <sys/syscall.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <climits>
#include <condition_variable>
#include <cstring>
#include <ctime>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

namespace sage::net {

namespace {

// ---------------------------------------------------------------------
// Futex doorbells. The words live in the shared segment, so the waits
// must be cross-process (no FUTEX_PRIVATE_FLAG). Every wait is bounded
// by a timeout: wakeups are a latency optimization, never a correctness
// dependency -- each waiter re-checks its predicate (and peer liveness)
// on timeout, which is what keeps a `kill -9`ed node process from
// wedging anyone.

void futex_wait(std::atomic<std::uint32_t>& word, std::uint32_t seen,
                long timeout_ns) {
  timespec ts;
  ts.tv_sec = timeout_ns / 1000000000L;
  ts.tv_nsec = timeout_ns % 1000000000L;
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word), FUTEX_WAIT,
          seen, &ts, nullptr, 0);
}

void futex_wake_all(std::atomic<std::uint32_t>& word) {
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word), FUTEX_WAKE,
          INT_MAX, nullptr, nullptr, 0);
}

/// Bumps an activity counter and wakes everyone waiting on it.
void ring_doorbell(std::atomic<std::uint32_t>& word) {
  word.fetch_add(1, std::memory_order_release);
  futex_wake_all(word);
}

// ---------------------------------------------------------------------
// SPSC byte ring in shared memory. head/tail are free-running byte
// counters (consumer owns head, producer owns tail); the data area
// follows the header in the segment. Byte-oriented so frames larger
// than the ring stream through in chunks.

struct alignas(64) RingHdr {
  std::atomic<std::uint64_t> head;  // bytes consumed
  char pad0[56];
  std::atomic<std::uint64_t> tail;  // bytes produced
  char pad1[56];
};
static_assert(sizeof(RingHdr) == 128);

struct RingView {
  RingHdr* hdr = nullptr;
  std::byte* data = nullptr;
  std::size_t cap = 0;
};

std::size_t ring_avail(const RingView& r) {
  return static_cast<std::size_t>(
      r.hdr->tail.load(std::memory_order_acquire) -
      r.hdr->head.load(std::memory_order_acquire));
}

/// Producer side: writes up to min(space, len) bytes, returns written.
std::size_t ring_push_some(const RingView& r, const std::byte* src,
                           std::size_t len) {
  const std::uint64_t head = r.hdr->head.load(std::memory_order_acquire);
  const std::uint64_t tail = r.hdr->tail.load(std::memory_order_relaxed);
  const std::size_t space = r.cap - static_cast<std::size_t>(tail - head);
  const std::size_t n = std::min(space, len);
  if (n == 0) return 0;
  const std::size_t pos = static_cast<std::size_t>(tail % r.cap);
  const std::size_t first = std::min(n, r.cap - pos);
  std::memcpy(r.data + pos, src, first);
  std::memcpy(r.data, src + first, n - first);
  r.hdr->tail.store(tail + n, std::memory_order_release);
  return n;
}

/// Consumer side: reads up to min(available, maxlen) bytes.
std::size_t ring_pop_some(const RingView& r, std::byte* dst,
                          std::size_t maxlen) {
  const std::uint64_t tail = r.hdr->tail.load(std::memory_order_acquire);
  const std::uint64_t head = r.hdr->head.load(std::memory_order_relaxed);
  const std::size_t avail = static_cast<std::size_t>(tail - head);
  const std::size_t n = std::min(avail, maxlen);
  if (n == 0) return 0;
  const std::size_t pos = static_cast<std::size_t>(head % r.cap);
  const std::size_t first = std::min(n, r.cap - pos);
  std::memcpy(dst, r.data + pos, first);
  std::memcpy(dst + first, r.data, n - first);
  r.hdr->head.store(head + n, std::memory_order_release);
  return n;
}

constexpr long kWaitNs = 50'000'000;  // 50ms predicate re-check bound
constexpr std::size_t kChunkBytes = 8192;  // child relay stack buffer

std::size_t round_up_64(std::size_t n) { return (n + 63) & ~std::size_t{63}; }

// ---------------------------------------------------------------------

class ShmemTransport final : public Transport {
 public:
  ShmemTransport(const TransportOptions& options, int node_count,
                 BufferPool& pool, DeliverFn deliver)
      : node_count_(node_count),
        ring_cap_(std::max<std::size_t>(options.shmem_ring_bytes, 4096)),
        pool_(pool),
        deliver_(std::move(deliver)),
        producer_mu_(static_cast<std::size_t>(node_count) * node_count) {
    const auto n = static_cast<std::size_t>(node_count_);
    pids_.assign(n, -1);
    dead_.reset(new std::atomic<bool>[n]);
    sent_.reset(new std::atomic<std::uint64_t>[n]);
    delivered_.reset(new std::atomic<std::uint64_t>[n]);
    drain_done_.reset(new std::atomic<bool>[n]);
    for (std::size_t i = 0; i < n; ++i) {
      dead_[i].store(false);
      sent_[i].store(0);
      delivered_[i].store(0);
      drain_done_[i].store(false);
    }
    map_segment_();
    try {
      fork_children_();
    } catch (...) {
      teardown_();
      throw;
    }
    drains_.reserve(n);
    for (int d = 0; d < node_count_; ++d) {
      drains_.emplace_back([this, d] { drain_loop_(d); });
    }
  }

  ~ShmemTransport() override { teardown_(); }

  TransportKind kind() const override { return TransportKind::kShmem; }

  void deliver(int dst, Parcel&& parcel) override {
    if (child_dead_(dst)) {
      raise<CommError>("shmem transport: node process for rank ", dst,
                       " (pid ", pids_[static_cast<std::size_t>(dst)],
                       ") is dead");
    }
    // Serialize into a per-thread scratch frame:
    //   header(16) | parcel meta(32) | payload bytes
    thread_local std::vector<std::byte> scratch;
    const std::size_t payload_len = parcel.payload.size();
    const std::size_t body = kParcelMetaBytes + payload_len;
    scratch.resize(kFrameHeaderBytes + body);
    std::span<std::byte> frame(scratch);
    std::uint64_t hash = encode_parcel_meta(
        parcel, frame.subspan(kFrameHeaderBytes, kParcelMetaBytes));
    if (payload_len != 0) {
      std::byte* at = frame.data() + kFrameHeaderBytes + kParcelMetaBytes;
      std::memcpy(at, parcel.payload.data(), payload_len);
      hash = fnv1a_accum(hash, at, payload_len);
    }
    write_frame_header(frame, body, hash);

    const int src = parcel.src;
    const RingView ring = in_ring_(src, dst);
    // One producer at a time per directed ring: Fabric::send is almost
    // always called from the source node's own thread, but the session
    // control plane may issue sends from the host thread too.
    std::lock_guard<std::mutex> lock(
        producer_mu_[static_cast<std::size_t>(src) *
                         static_cast<std::size_t>(node_count_) +
                     static_cast<std::size_t>(dst)]);
    const std::byte* at = frame.data();
    std::size_t left = frame.size();
    while (left > 0) {
      const std::uint32_t seen =
          act_in_(dst).load(std::memory_order_acquire);
      const std::size_t wrote = ring_push_some(ring, at, left);
      if (wrote > 0) {
        ring_doorbell(act_in_(dst));
        at += wrote;
        left -= wrote;
        continue;
      }
      if (child_dead_(dst)) {
        raise<CommError>("shmem transport: node process for rank ", dst,
                         " died mid-transfer");
      }
      futex_wait(act_in_(dst), seen, kWaitNs);
    }
    sent_[static_cast<std::size_t>(dst)].fetch_add(
        1, std::memory_order_release);
  }

  void flush() override {
    std::unique_lock<std::mutex> lock(flush_mu_);
    for (int d = 0; d < node_count_; ++d) {
      while (!flushed_(d)) {
        lock.unlock();
        child_dead_(d);  // a killed node unblocks its drain, then us
        lock.lock();
        flush_cv_.wait_for(lock, std::chrono::milliseconds(10),
                           [&] { return flushed_(d); });
      }
    }
  }

  long node_pid(int rank) const override {
    return pids_[static_cast<std::size_t>(rank)];
  }

  bool node_dead(int rank) const override {
    return const_cast<ShmemTransport*>(this)->child_dead_(rank);
  }

 private:
  // --- segment layout -------------------------------------------------
  //   [shutdown word][act_in x n][act_out x n]
  //   [in rings: (dst, src) x n*n][out rings x n]
  // every block 64-byte aligned.

  void map_segment_() {
    const auto n = static_cast<std::size_t>(node_count_);
    const std::size_t ring_block = round_up_64(sizeof(RingHdr) + ring_cap_);
    const std::size_t doorbells = 64 * (1 + 2 * n);
    segment_bytes_ = doorbells + ring_block * (n * n + n);
    void* mem = mmap(nullptr, segment_bytes_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    SAGE_CHECK_AS(CommError, mem != MAP_FAILED,
                  "shmem transport: mmap of ", segment_bytes_,
                  " bytes failed");
    segment_ = static_cast<std::byte*>(mem);
    std::memset(segment_, 0, segment_bytes_);
    new (segment_) std::atomic<std::uint32_t>(0);  // shutdown word
    for (std::size_t i = 0; i < 2 * n; ++i) {
      new (segment_ + 64 * (1 + i)) std::atomic<std::uint32_t>(0);
    }
    rings_base_ = segment_ + doorbells;
    ring_block_ = ring_block;
    for (std::size_t i = 0; i < n * n + n; ++i) {
      new (rings_base_ + i * ring_block_) RingHdr{};
    }
  }

  std::atomic<std::uint32_t>& shutdown_word_() {
    return *reinterpret_cast<std::atomic<std::uint32_t>*>(segment_);
  }
  std::atomic<std::uint32_t>& act_in_(int node) {
    return *reinterpret_cast<std::atomic<std::uint32_t>*>(
        segment_ + 64 * (1 + static_cast<std::size_t>(node)));
  }
  std::atomic<std::uint32_t>& act_out_(int node) {
    return *reinterpret_cast<std::atomic<std::uint32_t>*>(
        segment_ + 64 * (1 + static_cast<std::size_t>(node_count_) +
                         static_cast<std::size_t>(node)));
  }
  RingView ring_at_(std::size_t index) {
    std::byte* block = rings_base_ + index * ring_block_;
    return {reinterpret_cast<RingHdr*>(block), block + sizeof(RingHdr),
            ring_cap_};
  }
  RingView in_ring_(int src, int dst) {
    return ring_at_(static_cast<std::size_t>(dst) *
                        static_cast<std::size_t>(node_count_) +
                    static_cast<std::size_t>(src));
  }
  RingView out_ring_(int node) {
    const auto n = static_cast<std::size_t>(node_count_);
    return ring_at_(n * n + static_cast<std::size_t>(node));
  }

  // --- node communication processors (forked children) ----------------

  void fork_children_() {
    for (int r = 0; r < node_count_; ++r) {
      const pid_t pid = fork();
      SAGE_CHECK_AS(CommError, pid >= 0,
                    "shmem transport: fork for node ", r, " failed");
      if (pid == 0) {
        // The child must not outlive a crashed parent as an orphan.
        prctl(PR_SET_PDEATHSIG, SIGKILL);
        child_loop_(r);  // never returns
      }
      pids_[static_cast<std::size_t>(r)] = pid;
    }
  }

  /// The forked node process: relays frames from its n inbound rings
  /// into its one outbound ring, one WHOLE frame at a time. The out
  /// ring is a single byte stream shared by every source, so a frame,
  /// once started, must be relayed to completion before any other
  /// source's bytes may follow -- interleaving would hand the parent
  /// drain a corrupt stream. Blocking on the tail of a started frame is
  /// safe: its producer wrote (or is actively writing) the full frame,
  /// and consuming is what frees the ring space the producer may be
  /// waiting for. Uses only the shared segment, stack buffers, the
  /// futex syscall, and _exit -- safe in a child forked from a
  /// threaded parent.
  [[noreturn]] void child_loop_(int rank) {
    std::byte buf[kChunkBytes];
    std::byte hdr[kFrameHeaderBytes];
    for (;;) {
      const std::uint32_t seen = act_in_(rank).load(std::memory_order_acquire);
      bool progress = false;
      for (int s = 0; s < node_count_; ++s) {
        const RingView in = in_ring_(s, rank);
        // A parent producer may have written only part of a header;
        // consume it only once all 16 bytes are in. The stream is
        // sequential per ring, so 16 available bytes at a frame
        // boundary are exactly the next header.
        if (ring_avail(in) < kFrameHeaderBytes) continue;
        ring_pop_some(in, hdr, kFrameHeaderBytes);
        ring_doorbell(act_in_(rank));  // space freed
        std::uint32_t body = 0;
        std::memcpy(&body, hdr + 4, sizeof body);
        child_forward_(rank, hdr, kFrameHeaderBytes);
        std::uint64_t left = body;
        while (left > 0) {
          const std::uint32_t mid =
              act_in_(rank).load(std::memory_order_acquire);
          const std::size_t want = static_cast<std::size_t>(
              std::min<std::uint64_t>(left, kChunkBytes));
          const std::size_t got = ring_pop_some(in, buf, want);
          if (got > 0) {
            ring_doorbell(act_in_(rank));
            child_forward_(rank, buf, got);
            left -= got;
            continue;
          }
          if (shutdown_word_().load(std::memory_order_acquire) != 0) {
            _exit(0);
          }
          futex_wait(act_in_(rank), mid, 100'000'000);
        }
        progress = true;
      }
      if (shutdown_word_().load(std::memory_order_acquire) != 0) _exit(0);
      if (!progress) futex_wait(act_in_(rank), seen, 100'000'000);
    }
  }

  /// Child-side blocking write into the node's outbound ring.
  void child_forward_(int rank, const std::byte* data, std::size_t len) {
    const RingView out = out_ring_(rank);
    while (len > 0) {
      const std::uint32_t seen =
          act_out_(rank).load(std::memory_order_acquire);
      const std::size_t wrote = ring_push_some(out, data, len);
      if (wrote > 0) {
        ring_doorbell(act_out_(rank));
        data += wrote;
        len -= wrote;
        continue;
      }
      if (shutdown_word_().load(std::memory_order_acquire) != 0) _exit(0);
      futex_wait(act_out_(rank), seen, 100'000'000);
    }
  }

  // --- parent receive path ---------------------------------------------

  /// Blocking read of exactly `len` bytes from node `d`'s outbound ring.
  /// Returns false (abandoning the read) when the transport is stopping
  /// or the node process died with the ring drained dry.
  bool pop_exact_(int d, std::byte* dst, std::size_t len) {
    const RingView out = out_ring_(d);
    while (len > 0) {
      const std::uint32_t seen = act_out_(d).load(std::memory_order_acquire);
      const std::size_t got = ring_pop_some(out, dst, len);
      if (got > 0) {
        ring_doorbell(act_out_(d));  // space freed for the child
        dst += got;
        len -= got;
        continue;
      }
      if (stop_.load(std::memory_order_acquire)) return false;
      if (child_dead_(d) && ring_avail(out) == 0) return false;
      futex_wait(act_out_(d), seen, kWaitNs);
    }
    return true;
  }

  /// Parent drain thread for node `d`: decodes frames off the outbound
  /// ring, re-materializes pooled payloads, and hands parcels to the
  /// mailbox sink.
  void drain_loop_(int d) {
    std::byte hdr[kFrameHeaderBytes];
    std::byte meta[kParcelMetaBytes];
    for (;;) {
      if (!pop_exact_(d, hdr, kFrameHeaderBytes)) break;
      const FrameHeader h = read_frame_header({hdr, kFrameHeaderBytes});
      if (h.magic != kFrameMagic || h.length < kParcelMetaBytes) {
        mark_protocol_error_(d, "bad frame header");
        break;
      }
      if (!pop_exact_(d, meta, kParcelMetaBytes)) break;
      Parcel parcel;
      const std::size_t payload_len =
          decode_parcel_meta({meta, kParcelMetaBytes}, parcel);
      if (payload_len != h.length - kParcelMetaBytes) {
        mark_protocol_error_(d, "frame/meta length mismatch");
        break;
      }
      std::uint64_t hash =
          fnv1a_accum(kFnvOffsetBasis, meta, kParcelMetaBytes);
      if (payload_len != 0) {
        Payload payload = pool_.acquire(payload_len);
        std::span<std::byte> bytes = payload.writable();
        if (!pop_exact_(d, bytes.data(), payload_len)) break;
        hash = fnv1a_accum(hash, bytes.data(), payload_len);
        parcel.payload = std::move(payload);
      }
      if (hash != h.checksum) {
        mark_protocol_error_(d, "frame checksum mismatch");
        break;
      }
      deliver_(d, std::move(parcel));
      delivered_[static_cast<std::size_t>(d)].fetch_add(
          1, std::memory_order_release);
      flush_cv_.notify_all();
    }
    drain_done_[static_cast<std::size_t>(d)].store(
        true, std::memory_order_release);
    flush_cv_.notify_all();
  }

  // --- liveness / teardown ---------------------------------------------

  bool flushed_(int d) {
    const auto i = static_cast<std::size_t>(d);
    if (delivered_[i].load(std::memory_order_acquire) >=
        sent_[i].load(std::memory_order_acquire)) {
      return true;
    }
    // A dead node's in-flight traffic is abandoned once its drain
    // thread has gone idle -- nothing further can reach the mailboxes.
    return drain_done_[i].load(std::memory_order_acquire);
  }

  bool child_dead_(int d) {
    const auto i = static_cast<std::size_t>(d);
    if (dead_[i].load(std::memory_order_acquire)) return true;
    std::lock_guard<std::mutex> lock(reap_mu_);
    if (dead_[i].load(std::memory_order_acquire)) return true;
    int status = 0;
    if (waitpid(pids_[i], &status, WNOHANG) == pids_[i]) {
      dead_[i].store(true, std::memory_order_release);
      // Unwedge everyone parked on this node's doorbells.
      futex_wake_all(act_in_(d));
      futex_wake_all(act_out_(d));
      flush_cv_.notify_all();
      return true;
    }
    return false;
  }

  void mark_protocol_error_(int d, const char* what) {
    (void)what;
    dead_[static_cast<std::size_t>(d)].store(true, std::memory_order_release);
    futex_wake_all(act_in_(d));
    futex_wake_all(act_out_(d));
  }

  void teardown_() {
    if (torn_down_) return;
    torn_down_ = true;
    stop_.store(true, std::memory_order_release);
    if (segment_ != nullptr) {
      shutdown_word_().store(1, std::memory_order_release);
      for (int d = 0; d < node_count_; ++d) {
        futex_wake_all(act_in_(d));
        futex_wake_all(act_out_(d));
      }
    }
    for (std::thread& t : drains_) t.join();
    drains_.clear();
    reap_children_();
    if (segment_ != nullptr) {
      munmap(segment_, segment_bytes_);
      segment_ = nullptr;
    }
  }

  void reap_children_() {
    // Children _exit on the shutdown word within their next wait slice;
    // SIGKILL is the backstop for a wedged one.
    for (std::size_t i = 0; i < pids_.size(); ++i) {
      if (pids_[i] < 0 || dead_[i].load(std::memory_order_acquire)) continue;
      bool reaped = false;
      for (int tries = 0; tries < 100; ++tries) {
        int status = 0;
        if (waitpid(pids_[i], &status, WNOHANG) == pids_[i]) {
          reaped = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (!reaped) {
        kill(pids_[i], SIGKILL);
        int status = 0;
        waitpid(pids_[i], &status, 0);
      }
      dead_[i].store(true, std::memory_order_release);
    }
  }

  int node_count_;
  std::size_t ring_cap_;
  BufferPool& pool_;
  DeliverFn deliver_;

  std::byte* segment_ = nullptr;
  std::size_t segment_bytes_ = 0;
  std::byte* rings_base_ = nullptr;
  std::size_t ring_block_ = 0;

  std::vector<pid_t> pids_;
  std::unique_ptr<std::atomic<bool>[]> dead_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> sent_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> delivered_;
  std::unique_ptr<std::atomic<bool>[]> drain_done_;

  std::vector<std::mutex> producer_mu_;  // one per directed in-ring
  std::mutex reap_mu_;
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  std::atomic<bool> stop_{false};
  bool torn_down_ = false;
  std::vector<std::thread> drains_;
};

}  // namespace

std::unique_ptr<Transport> make_shmem_transport(const TransportOptions& options,
                                                int node_count,
                                                BufferPool& pool,
                                                Transport::DeliverFn deliver) {
  return std::make_unique<ShmemTransport>(options, node_count, pool,
                                          std::move(deliver));
}

}  // namespace sage::net

#endif  // __linux__
