// openSAGE -- the emulated fabric: N mailboxes, tag-matched delivery,
// virtual-time stamps on every message.
//
// Each emulated node owns one mailbox. send() copies the payload (the
// emulated nodes have private memories; nothing is shared by reference
// across node boundaries) and stamps it with the sender's virtual time
// plus the send overhead. recv() blocks on the mailbox until a matching
// message arrives and returns the timestamp at which the message is
// available at the receiver under the fabric cost model.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "net/fabric_model.hpp"
#include "support/clock.hpp"

namespace sage::net {

/// Matches any source rank / any tag in recv().
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// A delivered message, payload already copied into receiver-owned memory.
struct Message {
  int src = 0;
  int tag = 0;
  std::vector<std::byte> payload;
  /// Virtual time at which the payload is fully available at the receiver.
  support::VirtualSeconds arrival_vt = 0.0;
};

/// Delivery options for modeling differently-tuned transfer paths.
struct SendOptions {
  /// True for the vendor bulk path (DMA-aggregated, reduced overhead).
  bool vendor_bulk = false;
};

class Fabric {
 public:
  Fabric(int node_count, FabricModel model);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int node_count() const { return node_count_; }
  const FabricModel& model() const { return model_; }

  /// Copies `bytes` into a message for `dst`. `now_vt` is the sender's
  /// virtual time when the send is issued. Returns the sender's virtual
  /// time after the send call (send-side overhead added).
  support::VirtualSeconds send(int src, int dst, int tag,
                               std::span<const std::byte> bytes,
                               support::VirtualSeconds now_vt,
                               SendOptions options = {});

  /// Blocks until a message matching (src, tag) is available for `dst`
  /// (kAnySource / kAnyTag act as wildcards). Throws sage::CommError if
  /// `timeout_wall_s` of host wall time elapses first, which turns
  /// emulated-network deadlocks into test failures instead of hangs.
  Message recv(int dst, int src = kAnySource, int tag = kAnyTag,
               double timeout_wall_s = 60.0);

  /// Non-blocking variant; returns std::nullopt when no match is queued.
  std::optional<Message> try_recv(int dst, int src = kAnySource,
                                  int tag = kAnyTag);

  /// Number of messages currently queued for `dst` (diagnostics).
  std::size_t pending(int dst) const;

  /// Total messages and bytes ever accepted (diagnostics / benches).
  std::uint64_t total_messages() const;
  std::uint64_t total_bytes() const;

  /// Returns the fabric to its just-constructed state: drains every
  /// mailbox (e.g. unclaimed flow-control credits from a finished run),
  /// zeroes the message/byte totals, and clears the per-link contention
  /// history. Must not race with in-flight send/recv -- callers reset
  /// between runs, while the node threads are parked.
  void reset();

 private:
  struct Parcel {
    int src;
    int tag;
    std::vector<std::byte> payload;
    support::VirtualSeconds arrival_vt;
  };

  struct Mailbox {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<Parcel> queue;
  };

  bool match_(const Parcel& p, int src, int tag) const {
    return (src == kAnySource || p.src == src) &&
           (tag == kAnyTag || p.tag == tag);
  }

  int node_count_;
  FabricModel model_;
  std::vector<Mailbox> boxes_;
  mutable std::mutex stats_mu_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
  // Contention model: per board-pair channel, the virtual time at which
  // the link becomes free (guarded by stats_mu_).
  std::map<std::pair<int, int>, double> link_free_;
};

}  // namespace sage::net
