// openSAGE -- the emulated fabric: N mailboxes, tag-matched delivery,
// virtual-time stamps on every message.
//
// Each emulated node owns one mailbox. send() copies the payload (the
// emulated nodes have private memories; nothing is shared by reference
// across node boundaries) and stamps it with the sender's virtual time
// plus the send overhead. recv() blocks on the mailbox until a matching
// message arrives and returns the timestamp at which the message is
// available at the receiver under the fabric cost model.
//
// Fault injection: when a FaultPlan is attached, every non-exempt send
// consults it. Faulted parcels are still delivered -- marked with their
// FaultKind so the receiver can detect, count, and recover -- because a
// silently vanishing message would turn injected loss into a wall-clock
// hang instead of a testable behaviour. send_reliable() layers the
// emulated ARQ on top: it retransmits dropped/corrupted attempts with
// exponential virtual-time backoff until delivery or the plan's attempt
// bound, computing the whole exchange analytically so sends stay eager
// (no new deadlock modes) and every counter is deterministic.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "net/buffer_pool.hpp"
#include "net/fabric_model.hpp"
#include "net/fault.hpp"
#include "net/transport.hpp"
#include "support/clock.hpp"

namespace sage::net {

/// Matches any source rank / any tag in recv().
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// A delivered message. The payload is a ref-counted handle over a
/// pooled buffer (the emulated nodes still have private memories -- the
/// bytes were copied exactly once, into the pool, on the send side);
/// releasing the Message returns the buffer to the fabric's pool.
struct Message {
  int src = 0;
  int tag = 0;
  Payload payload;
  /// Virtual time at which the payload is fully available at the receiver.
  support::VirtualSeconds arrival_vt = 0.0;
  /// Injected fault carried by this delivery (kNone on clean paths).
  /// kDrop deliveries have an empty payload: they are tombstones whose
  /// arrival_vt models the receiver's loss-detection timeout.
  FaultKind fault = FaultKind::kNone;
  /// Retransmit attempt index this delivery belongs to (0 = first try).
  int attempt = 0;
};

/// Delivery options for modeling differently-tuned transfer paths.
struct SendOptions {
  /// True for the vendor bulk path (DMA-aggregated, reduced overhead).
  bool vendor_bulk = false;
  /// True to bypass the attached FaultPlan (control-plane traffic that
  /// the fault model should not touch).
  bool fault_exempt = false;
};

/// Aggregate injected-fault counters (diagnostics / RunStats).
struct FaultCounters {
  std::uint64_t drops = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t delays = 0;
  std::uint64_t retransmits = 0;

  bool operator==(const FaultCounters&) const = default;
};

/// Per-directed-link traffic totals (diagnostics / metrics export).
struct LinkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  /// Retransmit attempts issued on this link by send_reliable().
  std::uint64_t retransmits = 0;
  /// Virtual seconds the board-pair channel spent serializing this
  /// link's payloads (contention model only; 0 for same-board traffic
  /// or when contention modeling is off). Purely model-derived
  /// (bytes / bandwidth), so it is deterministic.
  double busy_vt = 0.0;

  bool operator==(const LinkStats&) const = default;
};

/// What send_reliable() settled on for one transfer.
struct SendReceipt {
  /// Sender's virtual time after the last attempt (backoff included).
  support::VirtualSeconds sender_after = 0.0;
  /// Attempts issued, first try included (1 on the clean path).
  int attempts = 1;
};

class Fabric {
 public:
  /// `transport` picks the mechanism that moves accepted messages to
  /// their mailboxes (see net/transport.hpp); the default is the
  /// historical zero-copy in-process path. The cost model, fault
  /// injection, and every deterministic counter are transport-blind:
  /// the fabric resolves them *before* the transport sees the parcel.
  Fabric(int node_count, FabricModel model, TransportOptions transport = {});

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int node_count() const { return node_count_; }
  const FabricModel& model() const { return model_; }

  /// The mechanism backend this fabric was built with.
  TransportKind transport_kind() const { return transport_->kind(); }
  /// Backend handle (test hooks: node_pid for kill -9 drills).
  Transport& transport() { return *transport_; }
  const Transport& transport() const { return *transport_; }

  /// Attaches (or clears, with nullptr) the fault plan consulted by
  /// every non-exempt send. Must not race with in-flight traffic --
  /// callers attach between runs, while the node threads are parked.
  void set_fault_plan(std::shared_ptr<const FaultPlan> plan);
  const FaultPlan* fault_plan() const { return plan_.get(); }

  /// Copies `bytes` into a message for `dst`. `now_vt` is the sender's
  /// virtual time when the send is issued. Returns the sender's virtual
  /// time after the send call (send-side overhead added). With an
  /// active fault plan the single attempt may be delivered faulted
  /// (marked on Message::fault); use send_reliable() for retransmits.
  support::VirtualSeconds send(int src, int dst, int tag,
                               std::span<const std::byte> bytes,
                               support::VirtualSeconds now_vt,
                               SendOptions options = {});

  /// Zero-copy variant: enqueues the pooled payload by handle instead
  /// of copying it. Fan-out senders pass the same Payload to several
  /// destinations and all deliveries share one block; a corrupted
  /// attempt clones the block first (copy-on-write), so sharers never
  /// observe the flipped bytes.
  support::VirtualSeconds send(int src, int dst, int tag, Payload payload,
                               support::VirtualSeconds now_vt,
                               SendOptions options = {});

  /// Fault-tolerant send: resolves the whole retransmit exchange
  /// analytically at send time. Every attempt the plan faults with
  /// kDrop/kCorrupt is enqueued as a marked delivery (so the receiver
  /// observes and counts it) followed by a clean retransmit, with the
  /// plan's detection timeout and exponential backoff charged to the
  /// sender's virtual time. Throws sage::CommError once
  /// FaultPlan::max_attempts is exhausted. Without an active plan this
  /// is exactly send().
  SendReceipt send_reliable(int src, int dst, int tag,
                            std::span<const std::byte> bytes,
                            support::VirtualSeconds now_vt,
                            SendOptions options = {});

  /// Zero-copy reliable send; all clean attempts share the payload's
  /// block, faulted attempts tombstone or clone it.
  SendReceipt send_reliable(int src, int dst, int tag, Payload payload,
                            support::VirtualSeconds now_vt,
                            SendOptions options = {});

  /// Blocks until a message matching (src, tag) is available for `dst`
  /// (kAnySource / kAnyTag act as wildcards). Throws sage::CommError if
  /// `timeout_wall_s` of host wall time elapses first, which turns
  /// emulated-network deadlocks into test failures instead of hangs.
  Message recv(int dst, int src = kAnySource, int tag = kAnyTag,
               double timeout_wall_s = 60.0);

  /// Non-blocking variant; returns std::nullopt when no match is queued.
  std::optional<Message> try_recv(int dst, int src = kAnySource,
                                  int tag = kAnyTag);

  /// Number of messages currently queued for `dst` (diagnostics).
  std::size_t pending(int dst) const;

  /// Total messages and bytes ever accepted (diagnostics / benches).
  /// Faulted attempts count too: they crossed the emulated wire.
  std::uint64_t total_messages() const;
  std::uint64_t total_bytes() const;

  /// Injected-fault totals since construction or the last reset().
  FaultCounters fault_counters() const;

  /// Per-directed-link totals since construction or the last reset(),
  /// keyed (src, dst). Only links that carried traffic appear.
  std::map<std::pair<int, int>, LinkStats> link_stats() const;

  /// The payload pool backing every message on this fabric. Callers
  /// acquire() here to fill a buffer once and send it by handle; the
  /// pool (and its counters) survives reset() -- recycling across runs
  /// is the warm-path win.
  BufferPool& pool() { return pool_; }
  const BufferPool& pool() const { return pool_; }

  /// Returns the fabric to its just-constructed state: flushes the
  /// transport (an async backend may still hold accepted messages in
  /// flight -- they must land or be abandoned *now*, not leak into the
  /// next run), drains every mailbox (e.g. unclaimed flow-control
  /// credits from a finished run), zeroes the message/byte totals, and
  /// clears the per-link contention history. Must not race with
  /// in-flight send/recv -- callers reset between runs, while the node
  /// threads are parked.
  void reset();

 private:
  struct Mailbox {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<Parcel> queue;
  };

  bool match_(const Parcel& p, int src, int tag) const {
    return (src == kAnySource || p.src == src) &&
           (tag == kAnyTag || p.tag == tag);
  }

  /// Next fault-eligible message index on (src, dst); feeds the plan's
  /// counter-mode draws.
  std::uint64_t next_link_seq_(int src, int dst);

  /// Resolves the fault outcome into the payload actually delivered:
  /// an empty tombstone for drops, a cloned-and-flipped block for
  /// corruption, the shared handle otherwise.
  Payload deliverable_(Payload payload, const FaultOutcome& outcome);

  /// Shared enqueue path: applies the fabric cost model, marks the
  /// parcel with `outcome`, and delivers it. `wire_bytes` is the
  /// logical transfer size (drops deliver an empty tombstone but the
  /// original bytes crossed the emulated wire and are costed/counted).
  /// `extra_arrival_vt` models fault-dependent lateness (detection
  /// timeout for drops, delay_vt for latency spikes). Returns the
  /// sender's post-send virtual time.
  support::VirtualSeconds enqueue_(int src, int dst, int tag, Payload payload,
                                   std::size_t wire_bytes,
                                   support::VirtualSeconds now_vt,
                                   const SendOptions& options,
                                   const FaultOutcome& outcome,
                                   double extra_arrival_vt, int attempt);

  std::size_t link_index_(int src, int dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(node_count_) +
           static_cast<std::size_t>(dst);
  }

  int node_count_;
  FabricModel model_;
  // Declared before the mailboxes: payload handles queued in a mailbox
  // release into the pool, so the pool must outlive them (members are
  // destroyed in reverse declaration order).
  BufferPool pool_;
  std::vector<Mailbox> boxes_;
  std::shared_ptr<const FaultPlan> plan_;
  mutable std::mutex stats_mu_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
  FaultCounters fault_counters_;
  // Flat src*n+dst tables (guarded by stats_mu_): dense indexing keeps
  // the per-send stats update allocation-free and cache-friendly.
  // Per-link fault-eligible message counters.
  std::vector<std::uint64_t> link_seq_;
  // Per-directed-link traffic totals.
  std::vector<LinkStats> link_stats_;
  // Contention model: per board-pair channel (minmax key), the virtual
  // time at which the link becomes free.
  std::vector<double> link_free_;
  // Declared last: the transport's receive threads push into boxes_
  // and allocate from pool_, so it must be destroyed (threads joined,
  // node processes reaped) before either of them.
  std::unique_ptr<Transport> transport_;
};

}  // namespace sage::net
