// openSAGE -- the TCP socket transport backend.
//
// A socket mesh over loopback: every node owns one listening socket on
// 127.0.0.1 (ephemeral port) plus a reader thread; senders open one TCP
// connection per directed link on first use (lazily -- an idle link
// costs nothing) and write length-prefixed frames with TCP_NODELAY set.
// The reader thread poll()s its accepted connections, reassembles the
// byte stream into frames (the shared magic/len/FNV-1a framing), and
// re-materializes pooled parcels for the mailbox sink. The loopback
// mesh is the single-host degenerate case of the cross-host topology:
// nothing below the port numbers would change with real peers.
#pragma once

#include <memory>

#include "net/transport.hpp"

namespace sage::net {

/// Builds the TCP loopback-mesh backend. Throws sage::CommError when
/// socket setup fails.
std::unique_ptr<Transport> make_tcp_transport(const TransportOptions& options,
                                              int node_count,
                                              BufferPool& pool,
                                              Transport::DeliverFn deliver);

}  // namespace sage::net
