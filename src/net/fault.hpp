// openSAGE -- deterministic fault injection for the emulated fabric.
//
// A FaultPlan is a seeded, declarative schedule of transport faults --
// link drops, message corruption, latency spikes, node stalls, and dead
// nodes -- that the Fabric consults on every send and the runtime
// consults at iteration boundaries. Every decision is a pure function
// of (plan, link endpoints, per-link message index) computed with
// counter-mode SplitMix64 draws, so a given seed + plan produces the
// same faults on every run regardless of host thread timing: failure
// behaviour is a testable property, not an accident.
//
// Virtual-time recovery parameters (detection timeout, retransmit
// backoff, attempt bound) live on the plan too, because they shape the
// deterministic retry counters the chaos tests pin.
//
// Text format (line-oriented, '#' comments):
//   fault-plan 1
//   seed 42
//   detect-timeout 1e-4          # modeled loss-detection timeout (vt s)
//   backoff 2.0                  # retransmit backoff multiplier
//   max-attempts 8               # per transfer, including the first try
//   drop link=0->1 p=0.25        # Bernoulli drop on one link
//   drop link=* at=3             # drop the 4th eligible message, every link
//   corrupt link=* p=0.1 bytes=8 # flip 8 payload bytes
//   delay link=2->0 p=0.5 vt=2e-3
//   stall node=1 iter=2 vt=0.01  # node 1 stalls 10ms at iteration 2
//   dead node=3                  # node 3 is down; run degraded
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sage::net {

/// What the plan decided for one message (or marked on a delivery).
enum class FaultKind : std::uint8_t { kNone, kDrop, kCorrupt, kDelay };

const char* to_string(FaultKind kind);

/// One link-level fault rule; rules are evaluated in declaration order
/// and the first rule that fires wins.
struct LinkFaultRule {
  int src = -1;  ///< Source rank; -1 matches any.
  int dst = -1;  ///< Destination rank; -1 matches any.
  FaultKind kind = FaultKind::kDrop;
  /// Per-message Bernoulli probability (0 disables the random trigger).
  double probability = 0.0;
  /// Fires exactly on this per-link eligible-message index (-1: off).
  std::int64_t at_index = -1;
  /// kDelay: extra arrival latency in virtual seconds.
  double delay_vt = 0.0;
  /// kCorrupt: number of payload bytes flipped.
  std::size_t corrupt_bytes = 1;
};

/// Modeled per-iteration hiccup of one emulated node.
struct StallRule {
  int node = -1;       ///< -1 matches every node.
  int iteration = -1;  ///< -1 matches every iteration.
  double stall_vt = 0.0;
};

/// The plan's verdict for one message attempt.
struct FaultOutcome {
  FaultKind kind = FaultKind::kNone;
  double delay_vt = 0.0;
  std::size_t corrupt_bytes = 0;
  /// Deterministic entropy for downstream choices (corruption offsets).
  std::uint64_t draw = 0;
};

class FaultPlan {
 public:
  std::uint64_t seed = 0x5A6E2000ull;  // matches support::Rng::kDefaultSeed
  /// Virtual seconds a receiver waits before declaring an attempt lost.
  double detect_timeout_vt = 1e-4;
  /// Backoff multiplier between retransmit attempts.
  double backoff_factor = 2.0;
  /// Attempt bound per transfer (first try included). Exceeding it is an
  /// unrecoverable link failure (sage::CommError).
  int max_attempts = 8;

  std::vector<LinkFaultRule> link_rules;
  std::vector<StallRule> stall_rules;
  std::vector<int> dead_nodes;

  /// True when any rule exists. An inactive (empty) plan attached to a
  /// session is contractually bit-identical to no plan at all.
  bool active() const {
    return !link_rules.empty() || !stall_rules.empty() || !dead_nodes.empty();
  }

  bool node_dead(int rank) const;

  /// Deterministic verdict for the `link_seq`-th fault-eligible message
  /// on (src, dst). Pure function of its arguments -- safe to call
  /// concurrently from every node thread.
  FaultOutcome link_outcome(int src, int dst, std::uint64_t link_seq) const;

  /// Total modeled stall (virtual seconds) for `node` entering
  /// `iteration`.
  double stall_vt(int node, int iteration) const;

  /// Parses the text format above; throws sage::ConfigError on
  /// malformed input.
  static FaultPlan parse(std::string_view text);

  /// Serializes to the text format (parse round-trips).
  std::string serialize() const;
};

}  // namespace sage::net
