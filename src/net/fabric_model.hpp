// openSAGE -- interconnect cost model.
//
// Models a COTS multicomputer fabric in the LogGP style: a message of n
// bytes from src to dst costs
//
//     send_overhead + latency(src,dst) + n / bandwidth(src,dst)
//
// in virtual time. The default parameters describe the paper's CSPI
// testbed: two quad-PowerPC boards in one VME chassis joined by a
// 160 MB/s Myrinet fabric, which serves both intra-board and inter-board
// traffic. Other vendor platforms from the MITRE cross-vendor study are
// modeled as presets (see sage::core::platforms).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace sage::net {

/// Static description of one fabric. All rates are bytes/second, all
/// times seconds.
struct FabricModel {
  std::string name = "myrinet-160";

  /// Per-message software overhead on the sending side (o in LogGP).
  double send_overhead_s = 5e-6;
  /// Per-message software overhead on the receiving side.
  double recv_overhead_s = 5e-6;

  /// Wire latency within one board (backplane / shared memory bridge).
  double intra_board_latency_s = 2e-6;
  /// Wire latency across boards (through the fabric switch).
  double inter_board_latency_s = 10e-6;

  /// Sustained point-to-point bandwidth within a board.
  double intra_board_bandwidth_Bps = 160.0 * 1024 * 1024;
  /// Sustained point-to-point bandwidth across boards.
  double inter_board_bandwidth_Bps = 160.0 * 1024 * 1024;

  /// Overhead discount applied by the "vendor-tuned" bulk path, modeling
  /// DMA aggregation in a vendor MPI_Alltoall (0 = free, 1 = no discount).
  double vendor_bulk_overhead_factor = 0.25;

  /// Nodes per board; node i lives on board i / nodes_per_board.
  int nodes_per_board = 4;

  /// When true, each inter-board link (board-pair channel) serializes
  /// its transfers: a message may have to wait for the link to drain
  /// before its bytes move. Off by default (pure LogGP, no contention).
  bool model_contention = false;

  /// Per-board-pair overrides for heterogeneous fabrics (e.g. one slow
  /// bridge between chassis). Keyed by (min board, max board).
  struct LinkParams {
    double bandwidth_Bps = 0.0;
    double latency_s = 0.0;
  };
  std::map<std::pair<int, int>, LinkParams> link_overrides;

  /// Adds (or replaces) an override for the given board pair.
  void set_link(int board_a, int board_b, double bandwidth_Bps,
                double latency_s) {
    const auto key = board_a < board_b ? std::make_pair(board_a, board_b)
                                       : std::make_pair(board_b, board_a);
    link_overrides[key] = LinkParams{bandwidth_Bps, latency_s};
  }

  const LinkParams* link_override(int src, int dst) const {
    const int a = src / nodes_per_board;
    const int b = dst / nodes_per_board;
    const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    const auto it = link_overrides.find(key);
    return it == link_overrides.end() ? nullptr : &it->second;
  }

  bool same_board(int a, int b) const {
    return a / nodes_per_board == b / nodes_per_board;
  }

  double latency_s(int src, int dst) const {
    if (same_board(src, dst)) return intra_board_latency_s;
    if (const LinkParams* link = link_override(src, dst)) {
      return link->latency_s;
    }
    return inter_board_latency_s;
  }

  double bandwidth_Bps(int src, int dst) const {
    if (same_board(src, dst)) return intra_board_bandwidth_Bps;
    if (const LinkParams* link = link_override(src, dst)) {
      return link->bandwidth_Bps;
    }
    return inter_board_bandwidth_Bps;
  }

  /// Virtual-time cost charged to the *receiver's* timeline for a message
  /// (latency + serialization). Sender separately pays send_overhead_s.
  double transfer_seconds(int src, int dst, std::size_t bytes) const {
    return latency_s(src, dst) +
           static_cast<double>(bytes) / bandwidth_Bps(src, dst);
  }
};

/// Built-in fabric presets used by benches and tests.
FabricModel myrinet_fabric();            // CSPI-like (the paper's testbed)
FabricModel raceway_fabric();            // Mercury RACEway-like
FabricModel sky_fabric();                // SKY SKYchannel-like
FabricModel sigi_fabric();               // SIGI-like
FabricModel ideal_fabric();              // zero-cost (unit tests)

}  // namespace sage::net
