// openSAGE -- pluggable fabric transports.
//
// The Fabric owns the *model*: virtual-time cost accounting, fault
// injection, per-link stats, and the tag-matched mailboxes receivers
// block on. A Transport owns the *mechanism*: how an accepted parcel's
// bytes travel from the sender to the destination mailbox. Three
// backends implement the seam:
//
//   kInProc -- the historical single-process fabric: the parcel (a
//              ref-counted pooled Payload handle) is pushed straight
//              into the destination mailbox. Zero-copy; fan-out sends
//              share one block. This path is byte-for-byte the
//              pre-transport behaviour.
//   kShmem  -- one forked *node communication processor* per emulated
//              node (the paper's machines hung a LANai/RACEway co-
//              processor off every compute node; the fork is its
//              moral equivalent). Parcels are serialized into fixed-
//              size SPSC byte rings in a shared mmap segment, relayed
//              through the destination node's process, and re-enter
//              the parent through a second ring -- every payload byte
//              crosses two real process boundaries, and `kill -9` of a
//              node process is a testable fault.
//   kTcp    -- a socket mesh (loopback by default): length-prefixed
//              frames over one TCP connection per directed link, read
//              back by per-node receiver threads.
//
// All three deliver the same Parcel metadata (virtual arrival time,
// fault marking, attempt index) computed by the Fabric's deterministic
// model *before* the transport is involved, so the same CompiledProgram
// produces bit-identical results on every backend. Serialization
// happens only at real process boundaries: the wire format is the
// shared 16-byte magic/len/FNV-1a framing (net/framing.hpp) followed by
// a fixed parcel-metadata block and the payload bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "net/buffer_pool.hpp"
#include "net/fault.hpp"
#include "net/framing.hpp"
#include "support/clock.hpp"

namespace sage::net {

/// Which mechanism moves accepted parcels to their mailboxes.
enum class TransportKind : std::uint8_t { kInProc, kShmem, kTcp };

const char* to_string(TransportKind kind);

/// Parses "inproc" / "shmem" / "tcp" (CLI spelling); nullopt otherwise.
std::optional<TransportKind> parse_transport_kind(std::string_view name);

/// Backend selection plus the knobs the non-trivial backends expose.
/// Defaults reproduce the historical in-process fabric exactly.
struct TransportOptions {
  TransportKind kind = TransportKind::kInProc;
  /// kShmem: capacity in bytes of each SPSC ring (one ring per directed
  /// link into a node process plus one return ring per node). Frames
  /// larger than a ring stream through it in chunks, so this bounds
  /// memory, not message size.
  std::size_t shmem_ring_bytes = std::size_t{1} << 16;

  bool operator==(const TransportOptions&) const = default;
};

/// One fabric message in flight: the payload plus the model-computed
/// delivery metadata. The Fabric resolves cost-model and fault-plan
/// decisions into this struct before handing it to the transport, so
/// every backend delivers identical parcels.
struct Parcel {
  int src = 0;
  int tag = 0;
  Payload payload;
  support::VirtualSeconds arrival_vt = 0.0;
  FaultKind fault = FaultKind::kNone;
  int attempt = 0;
};

/// Serialized size of a parcel's metadata block (follows the 16-byte
/// frame header, precedes the payload bytes):
///   i32 src | i32 tag | u32 fault | u32 attempt | f64 arrival_vt |
///   u64 payload_len
inline constexpr std::size_t kParcelMetaBytes = 32;

/// Encodes the metadata block into `meta` (exactly kParcelMetaBytes)
/// and returns the FNV-1a hash of the block (the start of the frame
/// body checksum; continue accumulating over the payload bytes).
std::uint64_t encode_parcel_meta(const Parcel& parcel,
                                 std::span<std::byte> meta);

/// Decodes a metadata block into `parcel` (payload untouched); returns
/// the payload length the block promises.
std::size_t decode_parcel_meta(std::span<const std::byte> meta,
                               Parcel& parcel);

/// The mechanism seam. deliver(dst, parcel) conveys one parcel to the
/// destination's mailbox -- synchronously (in-process) or via a
/// background receive path (shmem rings, TCP sockets); the constructor-
/// provided sink is the only way parcels re-enter the Fabric. flush()
/// blocks until every accepted parcel has reached its sink (parcels
/// addressed to a dead node process are abandoned), so Fabric::reset()
/// can guarantee no stale message leaks into the next run.
class Transport {
 public:
  /// Pushes a received parcel into `dst`'s mailbox. Thread-safe (the
  /// mailboxes are mutex-guarded); called from sender threads (inproc)
  /// or transport receiver threads (shmem/tcp).
  using DeliverFn = std::function<void(int dst, Parcel&&)>;

  virtual ~Transport() = default;

  virtual TransportKind kind() const = 0;

  /// Accepts one parcel for `dst`. Throws sage::CommError when the
  /// destination's transport endpoint is gone (dead node process,
  /// closed socket).
  virtual void deliver(int dst, Parcel&& parcel) = 0;

  /// Blocks until every accepted parcel has been handed to the sink
  /// (or its destination endpoint died). Call only while no new sends
  /// race in -- the Fabric resets between runs, node threads parked.
  virtual void flush() = 0;

  /// OS pid of the forked node process backing `rank` (kShmem), or -1
  /// when the backend has no per-node process. Test hook: `kill -9`
  /// of this pid is the real-world fault the recover() drill injects.
  virtual long node_pid(int rank) const {
    (void)rank;
    return -1;
  }

  /// True when `rank`'s transport endpoint is known dead (kShmem: the
  /// node process exited or was killed).
  virtual bool node_dead(int rank) const {
    (void)rank;
    return false;
  }
};

/// Builds the backend selected by `options`. `pool` allocates the
/// pooled payloads re-materialized on the receive side; `deliver` is
/// the fabric's mailbox sink. Throws sage::CommError when the backend
/// cannot come up (fork/mmap/socket failure).
std::unique_ptr<Transport> make_transport(const TransportOptions& options,
                                          int node_count, BufferPool& pool,
                                          Transport::DeliverFn deliver);

}  // namespace sage::net
