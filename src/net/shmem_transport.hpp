// openSAGE -- the shared-memory transport backend.
//
// One forked process per emulated node plays the node's *communication
// processor* (the paper's platforms hung a programmable NIC -- Myrinet
// LANai, RACEway adapter -- off every compute node; the fork is its
// emulation-grade equivalent). Every parcel crosses two real process
// boundaries:
//
//   sender thread (parent) --[in-ring src->dst]--> node process dst
//   node process dst       --[out-ring dst]----->  drain thread (parent)
//
// Rings are fixed-size SPSC byte rings in one MAP_SHARED|MAP_ANONYMOUS
// segment; wakeups are futexes on per-node activity counters. Frames
// larger than a ring stream through it in chunks, so the ring size
// bounds memory, not message size. The forked children touch only the
// shared segment, the futex syscall, and _exit -- no malloc, no stdio,
// no locks -- so forking from a threaded parent is safe.
//
// `kill -9` of a node process is a first-class, testable fault: sends
// into the dead node raise sage::CommError, its undelivered traffic is
// abandoned, and the session's recover() machinery takes it from there.
#pragma once

#include <memory>

#include "net/transport.hpp"

namespace sage::net {

/// Builds the forked-node-process shared-memory backend. Throws
/// sage::CommError when mmap or fork fails. Only built on Linux (the
/// futex doorbells); other platforms get a CommError.
std::unique_ptr<Transport> make_shmem_transport(const TransportOptions& options,
                                                int node_count,
                                                BufferPool& pool,
                                                Transport::DeliverFn deliver);

}  // namespace sage::net
