#include "net/buffer_pool.hpp"

#include <atomic>
#include <bit>
#include <cstring>

#include "support/error.hpp"

namespace sage::net {

/// One pooled block: bucket-sized storage plus an intrusive refcount,
/// so recycling a payload recycles the whole allocation -- no
/// control-block churn on the hot path.
struct PoolBlock {
  std::vector<std::byte> storage;  // sized to the bucket, never shrunk
  std::atomic<std::uint32_t> refs{0};
  BufferPool* pool = nullptr;
  std::uint32_t bucket = 0;
};

Payload::Payload(const Payload& other)
    : block_(other.block_), size_(other.size_) {
  if (block_ != nullptr) {
    block_->refs.fetch_add(1, std::memory_order_relaxed);
  }
}

Payload& Payload::operator=(const Payload& other) {
  if (this == &other) return *this;
  Payload copy(other);
  std::swap(block_, copy.block_);
  std::swap(size_, copy.size_);
  return *this;
}

Payload::Payload(Payload&& other) noexcept
    : block_(other.block_), size_(other.size_) {
  other.block_ = nullptr;
  other.size_ = 0;
}

Payload& Payload::operator=(Payload&& other) noexcept {
  if (this == &other) return *this;
  reset();
  block_ = other.block_;
  size_ = other.size_;
  other.block_ = nullptr;
  other.size_ = 0;
  return *this;
}

Payload::~Payload() { reset(); }

const std::byte* Payload::data() const {
  return block_ != nullptr ? block_->storage.data() : nullptr;
}

std::span<std::byte> Payload::writable() {
  return block_ != nullptr ? std::span<std::byte>{block_->storage.data(), size_}
                           : std::span<std::byte>{};
}

void Payload::reset() {
  if (block_ != nullptr &&
      block_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    block_->pool->release_(block_);
  }
  block_ = nullptr;
  size_ = 0;
}

BufferPool::BufferPool() = default;

BufferPool::~BufferPool() = default;

std::uint32_t BufferPool::bucket_of_(std::size_t size) {
  const std::size_t need = std::bit_ceil(std::max(size, kMinBlockBytes));
  const auto bucket = static_cast<std::uint32_t>(
      std::countr_zero(need / kMinBlockBytes));
  SAGE_CHECK(bucket < kBucketCount, "payload of ", size,
             " bytes exceeds the largest pool bucket");
  return bucket;
}

PoolBlock* BufferPool::allocate_block_(std::uint32_t bucket) {
  auto owned = std::make_unique<PoolBlock>();
  owned->pool = this;
  owned->bucket = bucket;
  owned->storage.resize(kMinBlockBytes << bucket);
  bytes_reserved_ += owned->storage.size();
  PoolBlock* block = owned.get();
  blocks_.push_back(std::move(owned));
  return block;
}

Payload BufferPool::acquire(std::size_t size) {
  const std::uint32_t bucket = bucket_of_(size);
  PoolBlock* block = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<PoolBlock*>& parked = free_[bucket];
    if (!parked.empty()) {
      block = parked.back();
      parked.pop_back();
      ++hits_;
    } else {
      block = allocate_block_(bucket);
      ++misses_;
    }
  }
  block->refs.store(1, std::memory_order_relaxed);
  return Payload(block, size);
}

Payload BufferPool::copy_of(std::span<const std::byte> bytes) {
  Payload payload = acquire(bytes.size());
  if (!bytes.empty()) {
    std::memcpy(payload.writable().data(), bytes.data(), bytes.size());
  }
  return payload;
}

void BufferPool::reserve(std::size_t size, std::size_t count) {
  const std::uint32_t bucket = bucket_of_(size);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PoolBlock*>& parked = free_[bucket];
  while (parked.size() < count) parked.push_back(allocate_block_(bucket));
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  BufferPoolStats out;
  out.hits = hits_;
  out.misses = misses_;
  for (const auto& parked : free_) out.blocks_pooled += parked.size();
  out.blocks_live = blocks_.size() - out.blocks_pooled;
  out.bytes_reserved = bytes_reserved_;
  return out;
}

void BufferPool::release_(PoolBlock* block) {
  std::lock_guard<std::mutex> lock(mu_);
  free_[block->bucket].push_back(block);
}

}  // namespace sage::net
