#include "net/transport.hpp"

#include <cstring>
#include <utility>

#include "net/shmem_transport.hpp"
#include "net/tcp_transport.hpp"
#include "support/error.hpp"

namespace sage::net {

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProc: return "inproc";
    case TransportKind::kShmem: return "shmem";
    case TransportKind::kTcp: return "tcp";
  }
  return "?";
}

std::optional<TransportKind> parse_transport_kind(std::string_view name) {
  if (name == "inproc") return TransportKind::kInProc;
  if (name == "shmem") return TransportKind::kShmem;
  if (name == "tcp") return TransportKind::kTcp;
  return std::nullopt;
}

std::uint64_t encode_parcel_meta(const Parcel& parcel,
                                 std::span<std::byte> meta) {
  SAGE_CHECK_AS(CommError, meta.size() >= kParcelMetaBytes,
                "parcel meta buffer too small");
  const auto src = static_cast<std::int32_t>(parcel.src);
  const auto tag = static_cast<std::int32_t>(parcel.tag);
  const auto fault = static_cast<std::uint32_t>(parcel.fault);
  const auto attempt = static_cast<std::uint32_t>(parcel.attempt);
  const double arrival = parcel.arrival_vt;
  const auto len = static_cast<std::uint64_t>(parcel.payload.size());
  std::memcpy(meta.data() + 0, &src, 4);
  std::memcpy(meta.data() + 4, &tag, 4);
  std::memcpy(meta.data() + 8, &fault, 4);
  std::memcpy(meta.data() + 12, &attempt, 4);
  std::memcpy(meta.data() + 16, &arrival, 8);
  std::memcpy(meta.data() + 24, &len, 8);
  return fnv1a_accum(kFnvOffsetBasis, meta.data(), kParcelMetaBytes);
}

std::size_t decode_parcel_meta(std::span<const std::byte> meta,
                               Parcel& parcel) {
  SAGE_CHECK_AS(CommError, meta.size() >= kParcelMetaBytes,
                "parcel meta block truncated");
  std::int32_t src = 0;
  std::int32_t tag = 0;
  std::uint32_t fault = 0;
  std::uint32_t attempt = 0;
  double arrival = 0.0;
  std::uint64_t len = 0;
  std::memcpy(&src, meta.data() + 0, 4);
  std::memcpy(&tag, meta.data() + 4, 4);
  std::memcpy(&fault, meta.data() + 8, 4);
  std::memcpy(&attempt, meta.data() + 12, 4);
  std::memcpy(&arrival, meta.data() + 16, 8);
  std::memcpy(&len, meta.data() + 24, 8);
  parcel.src = src;
  parcel.tag = tag;
  parcel.fault = static_cast<FaultKind>(fault);
  parcel.attempt = static_cast<int>(attempt);
  parcel.arrival_vt = arrival;
  return static_cast<std::size_t>(len);
}

namespace {

/// The historical single-process path: hand the parcel (still a pooled,
/// ref-counted handle -- zero-copy end to end) straight to the mailbox
/// sink on the sender's thread. flush() is trivially a no-op: delivery
/// completed before deliver() returned.
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(DeliverFn deliver) : deliver_(std::move(deliver)) {}

  TransportKind kind() const override { return TransportKind::kInProc; }

  void deliver(int dst, Parcel&& parcel) override {
    deliver_(dst, std::move(parcel));
  }

  void flush() override {}

 private:
  DeliverFn deliver_;
};

}  // namespace

std::unique_ptr<Transport> make_transport(const TransportOptions& options,
                                          int node_count, BufferPool& pool,
                                          Transport::DeliverFn deliver) {
  SAGE_CHECK_AS(CommError, node_count > 0,
                "transport needs at least one node");
  switch (options.kind) {
    case TransportKind::kInProc:
      return std::make_unique<InProcTransport>(std::move(deliver));
    case TransportKind::kShmem:
      return make_shmem_transport(options, node_count, pool,
                                  std::move(deliver));
    case TransportKind::kTcp:
      return make_tcp_transport(options, node_count, pool,
                                std::move(deliver));
  }
  raise<CommError>("unknown transport kind");
}

}  // namespace sage::net
