// openSAGE -- the shared wire framing: a 16-byte header carrying a
// magic word, the body length, and an FNV-1a checksum of the body.
//
//   magic u32 ("SGEF") | body length u32 | FNV-1a(body) u64
//
// Two layers ride this format:
//   - the fault-mode transfer frames the runtime::Session wraps around
//     every data payload and flow-control credit under an active
//     FaultPlan (the checksum -- not fabric metadata -- is the
//     receiver's integrity oracle);
//   - the transport frames the shared-memory and TCP fabric backends
//     wrap around every parcel that crosses a real process boundary
//     (length-prefixed so a byte-stream receiver can delimit messages,
//     checksummed so wire corruption surfaces as a transport bug
//     instead of silent data damage).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace sage::net {

inline constexpr std::uint32_t kFrameMagic = 0x46454753u;  // "SGEF"
inline constexpr std::size_t kFrameHeaderBytes = 16;
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Folds `len` bytes into a running FNV-1a hash.
inline std::uint64_t fnv1a_accum(std::uint64_t h, const std::byte* data,
                                 std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    h ^= std::to_integer<std::uint64_t>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

/// Writes the 16-byte header into frame[0..16). `frame` must hold at
/// least kFrameHeaderBytes.
inline void write_frame_header(std::span<std::byte> frame,
                               std::size_t body_bytes,
                               std::uint64_t checksum) {
  const std::uint32_t magic = kFrameMagic;
  const auto length = static_cast<std::uint32_t>(body_bytes);
  std::memcpy(frame.data(), &magic, sizeof magic);
  std::memcpy(frame.data() + 4, &length, sizeof length);
  std::memcpy(frame.data() + 8, &checksum, sizeof checksum);
}

/// The decoded header fields (validity is the caller's judgement).
struct FrameHeader {
  std::uint32_t magic = 0;
  std::uint32_t length = 0;  ///< body bytes following the header
  std::uint64_t checksum = 0;
};

/// Decodes a 16-byte header. `bytes` must hold at least
/// kFrameHeaderBytes.
inline FrameHeader read_frame_header(std::span<const std::byte> bytes) {
  FrameHeader h;
  std::memcpy(&h.magic, bytes.data(), sizeof h.magic);
  std::memcpy(&h.length, bytes.data() + 4, sizeof h.length);
  std::memcpy(&h.checksum, bytes.data() + 8, sizeof h.checksum);
  return h;
}

/// True when `frame` (header + body, contiguous) carries the magic, a
/// length matching the span, and a body that hashes to the checksum.
inline bool frame_valid(std::span<const std::byte> frame) {
  if (frame.size() < kFrameHeaderBytes) return false;
  const FrameHeader h = read_frame_header(frame);
  if (h.magic != kFrameMagic) return false;
  if (h.length != frame.size() - kFrameHeaderBytes) return false;
  return fnv1a_accum(kFnvOffsetBasis, frame.data() + kFrameHeaderBytes,
                     frame.size() - kFrameHeaderBytes) == h.checksum;
}

}  // namespace sage::net
