#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace sage::net {

namespace {

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void set_nodelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// Writes the whole span, absorbing partial writes and EINTR. Returns
/// false on a hard socket error (peer gone).
bool write_all(int fd, std::span<const std::byte> bytes) {
  const std::byte* at = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd, at, left, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, at, left, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    at += static_cast<std::size_t>(n);
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

class TcpTransport final : public Transport {
 public:
  TcpTransport(const TransportOptions& options, int node_count,
               BufferPool& pool, DeliverFn deliver)
      : node_count_(node_count),
        pool_(pool),
        deliver_(std::move(deliver)),
        link_mu_(static_cast<std::size_t>(node_count) * node_count),
        link_fd_(static_cast<std::size_t>(node_count) * node_count, -1) {
    (void)options;
    const auto n = static_cast<std::size_t>(node_count_);
    sent_.reset(new std::atomic<std::uint64_t>[n]);
    delivered_.reset(new std::atomic<std::uint64_t>[n]);
    for (std::size_t i = 0; i < n; ++i) {
      sent_[i].store(0);
      delivered_[i].store(0);
    }
    listen_fd_.assign(n, -1);
    ports_.assign(n, 0);
    wake_pipe_.assign(n, {-1, -1});
    try {
      for (int d = 0; d < node_count_; ++d) open_listener_(d);
    } catch (...) {
      teardown_();
      throw;
    }
    readers_.reserve(n);
    for (int d = 0; d < node_count_; ++d) {
      readers_.emplace_back([this, d] { reader_loop_(d); });
    }
  }

  ~TcpTransport() override { teardown_(); }

  TransportKind kind() const override { return TransportKind::kTcp; }

  void deliver(int dst, Parcel&& parcel) override {
    // Serialize: header(16) | parcel meta(32) | payload bytes.
    thread_local std::vector<std::byte> scratch;
    const std::size_t payload_len = parcel.payload.size();
    const std::size_t body = kParcelMetaBytes + payload_len;
    scratch.resize(kFrameHeaderBytes + body);
    std::span<std::byte> frame(scratch);
    std::uint64_t hash = encode_parcel_meta(
        parcel, frame.subspan(kFrameHeaderBytes, kParcelMetaBytes));
    if (payload_len != 0) {
      std::byte* at = frame.data() + kFrameHeaderBytes + kParcelMetaBytes;
      std::memcpy(at, parcel.payload.data(), payload_len);
      hash = fnv1a_accum(hash, at, payload_len);
    }
    write_frame_header(frame, body, hash);

    const std::size_t link =
        static_cast<std::size_t>(parcel.src) *
            static_cast<std::size_t>(node_count_) +
        static_cast<std::size_t>(dst);
    // Per-link lock: guards the lazy connect and keeps frames from
    // different sender-side threads from interleaving on one stream.
    std::lock_guard<std::mutex> lock(link_mu_[link]);
    int fd = link_fd_[link];
    if (fd < 0) {
      fd = connect_to_(dst);
      link_fd_[link] = fd;
    }
    if (!write_all(fd, frame)) {
      close_fd(link_fd_[link]);
      raise<CommError>("tcp transport: write on link ", parcel.src, "->",
                       dst, " failed (peer connection lost)");
    }
    sent_[static_cast<std::size_t>(dst)].fetch_add(
        1, std::memory_order_release);
  }

  void flush() override {
    std::unique_lock<std::mutex> lock(flush_mu_);
    for (int d = 0; d < node_count_; ++d) {
      const auto i = static_cast<std::size_t>(d);
      flush_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) ||
               reader_failed_.load(std::memory_order_acquire) ||
               delivered_[i].load(std::memory_order_acquire) >=
                   sent_[i].load(std::memory_order_acquire);
      });
    }
  }

 private:
  void open_listener_(int d) {
    const auto i = static_cast<std::size_t>(d);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    SAGE_CHECK_AS(CommError, fd >= 0, "tcp transport: socket() failed");
    listen_fd_[i] = fd;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral
    SAGE_CHECK_AS(CommError,
                  ::bind(fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof addr) == 0,
                  "tcp transport: bind on loopback failed for node ", d);
    SAGE_CHECK_AS(CommError, ::listen(fd, node_count_ + 1) == 0,
                  "tcp transport: listen failed for node ", d);
    socklen_t len = sizeof addr;
    SAGE_CHECK_AS(CommError,
                  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr),
                                &len) == 0,
                  "tcp transport: getsockname failed for node ", d);
    ports_[i] = ntohs(addr.sin_port);
    int pipefd[2];
    SAGE_CHECK_AS(CommError, ::pipe(pipefd) == 0,
                  "tcp transport: wake pipe failed for node ", d);
    fcntl(pipefd[0], F_SETFL, O_NONBLOCK);
    wake_pipe_[i] = {pipefd[0], pipefd[1]};
  }

  int connect_to_(int dst) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    SAGE_CHECK_AS(CommError, fd >= 0, "tcp transport: socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(ports_[static_cast<std::size_t>(dst)]);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      int tmp = fd;
      close_fd(tmp);
      raise<CommError>("tcp transport: connect to node ", dst, " (port ",
                       ports_[static_cast<std::size_t>(dst)], ") failed");
    }
    set_nodelay(fd);
    return fd;
  }

  /// Per-node reader: accepts link connections and reassembles the
  /// byte streams into frames. One thread per node mirrors the paper's
  /// one communication processor per node.
  void reader_loop_(int d) {
    const auto i = static_cast<std::size_t>(d);
    struct Conn {
      int fd = -1;
      std::vector<std::byte> buf;  // partial-frame reassembly
      std::size_t off = 0;         // consumed prefix of buf
    };
    std::vector<Conn> conns;
    std::vector<pollfd> fds;
    std::byte chunk[65536];
    while (!stop_.load(std::memory_order_acquire)) {
      fds.clear();
      fds.push_back({wake_pipe_[i].first, POLLIN, 0});
      fds.push_back({listen_fd_[i], POLLIN, 0});
      for (const Conn& c : conns) fds.push_back({c.fd, POLLIN, 0});
      if (::poll(fds.data(), fds.size(), 500) < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (fds[0].revents & POLLIN) {
        std::byte sink[16];
        while (::read(wake_pipe_[i].first, sink, sizeof sink) ==
               static_cast<ssize_t>(sizeof sink)) {
        }
      }
      if (fds[1].revents & POLLIN) {
        const int fd = ::accept(listen_fd_[i], nullptr, nullptr);
        if (fd >= 0) {
          set_nodelay(fd);
          conns.push_back({fd, {}, 0});
          continue;  // fds indices are stale; re-poll
        }
      }
      for (std::size_t c = 0; c < conns.size(); ++c) {
        if (!(fds[2 + c].revents & (POLLIN | POLLHUP | POLLERR))) continue;
        const ssize_t n = ::read(conns[c].fd, chunk, sizeof chunk);
        if (n <= 0) {
          if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
          int fd = conns[c].fd;
          close_fd(fd);
          conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(c));
          break;  // fds indices are stale; re-poll
        }
        Conn& conn = conns[c];
        conn.buf.insert(conn.buf.end(), chunk,
                        chunk + static_cast<std::size_t>(n));
        try {
          drain_frames_(d, conn.buf, conn.off);
        } catch (...) {
          // Protocol damage on this stream (bad magic / checksum):
          // letting the exception escape the thread would terminate
          // the process. Mark the node failed so flush() unblocks and
          // subsequent runs surface the breakage as CommError timeouts.
          reader_failed_.store(true, std::memory_order_release);
          flush_cv_.notify_all();
          for (Conn& cc : conns) close_fd(cc.fd);
          return;
        }
        // Compact once the consumed prefix dominates the buffer.
        if (conn.off > 0 && conn.off * 2 >= conn.buf.size()) {
          conn.buf.erase(conn.buf.begin(),
                         conn.buf.begin() +
                             static_cast<std::ptrdiff_t>(conn.off));
          conn.off = 0;
        }
      }
    }
    for (Conn& c : conns) close_fd(c.fd);
  }

  /// Decodes every complete frame in buf[off..) and delivers it.
  void drain_frames_(int d, std::vector<std::byte>& buf, std::size_t& off) {
    for (;;) {
      const std::size_t avail = buf.size() - off;
      if (avail < kFrameHeaderBytes) return;
      const std::span<const std::byte> at(buf.data() + off, avail);
      const FrameHeader h = read_frame_header(at);
      SAGE_CHECK_AS(CommError,
                    h.magic == kFrameMagic && h.length >= kParcelMetaBytes,
                    "tcp transport: bad frame header on node ", d);
      const std::size_t total = kFrameHeaderBytes + h.length;
      if (avail < total) return;
      const std::span<const std::byte> body =
          at.subspan(kFrameHeaderBytes, h.length);
      SAGE_CHECK_AS(CommError,
                    fnv1a_accum(kFnvOffsetBasis, body.data(), body.size()) ==
                        h.checksum,
                    "tcp transport: frame checksum mismatch on node ", d);
      Parcel parcel;
      const std::size_t payload_len =
          decode_parcel_meta(body.first(kParcelMetaBytes), parcel);
      SAGE_CHECK_AS(CommError, payload_len == h.length - kParcelMetaBytes,
                    "tcp transport: frame/meta length mismatch on node ", d);
      if (payload_len != 0) {
        parcel.payload = pool_.copy_of(body.subspan(kParcelMetaBytes));
      }
      deliver_(d, std::move(parcel));
      delivered_[static_cast<std::size_t>(d)].fetch_add(
          1, std::memory_order_release);
      {
        std::lock_guard<std::mutex> lock(flush_mu_);
      }
      flush_cv_.notify_all();
      off += total;
    }
  }

  void teardown_() {
    if (torn_down_) return;
    torn_down_ = true;
    stop_.store(true, std::memory_order_release);
    for (auto& [rd, wr] : wake_pipe_) {
      if (wr >= 0) {
        const std::byte one{1};
        [[maybe_unused]] ssize_t n = ::write(wr, &one, 1);
      }
    }
    flush_cv_.notify_all();
    for (std::thread& t : readers_) t.join();
    readers_.clear();
    for (int& fd : link_fd_) close_fd(fd);
    for (int& fd : listen_fd_) close_fd(fd);
    for (auto& [rd, wr] : wake_pipe_) {
      close_fd(rd);
      close_fd(wr);
    }
  }

  int node_count_;
  BufferPool& pool_;
  DeliverFn deliver_;

  std::vector<int> listen_fd_;
  std::vector<std::uint16_t> ports_;
  std::vector<std::pair<int, int>> wake_pipe_;  // reader wakeup (rd, wr)
  std::vector<std::mutex> link_mu_;
  std::vector<int> link_fd_;  // lazily connected, src*n+dst

  std::unique_ptr<std::atomic<std::uint64_t>[]> sent_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> delivered_;
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> reader_failed_{false};
  bool torn_down_ = false;
  std::vector<std::thread> readers_;
};

}  // namespace

std::unique_ptr<Transport> make_tcp_transport(const TransportOptions& options,
                                              int node_count,
                                              BufferPool& pool,
                                              Transport::DeliverFn deliver) {
  return std::make_unique<TcpTransport>(options, node_count, pool,
                                        std::move(deliver));
}

}  // namespace sage::net
