#include "net/fabric_model.hpp"

namespace sage::net {

FabricModel myrinet_fabric() {
  FabricModel m;
  m.name = "cspi-myrinet-160";
  return m;
}

FabricModel raceway_fabric() {
  FabricModel m;
  m.name = "mercury-raceway";
  // RACEway: 267 MB/s links, crossbar with very low latency, 6 nodes/board.
  m.send_overhead_s = 4e-6;
  m.recv_overhead_s = 4e-6;
  m.intra_board_latency_s = 1e-6;
  m.inter_board_latency_s = 6e-6;
  m.intra_board_bandwidth_Bps = 267.0 * 1024 * 1024;
  m.inter_board_bandwidth_Bps = 267.0 * 1024 * 1024;
  m.nodes_per_board = 6;
  return m;
}

FabricModel sky_fabric() {
  FabricModel m;
  m.name = "sky-skychannel";
  // SKYchannel: 320 MB/s packet bus, higher software overhead.
  m.send_overhead_s = 8e-6;
  m.recv_overhead_s = 8e-6;
  m.intra_board_latency_s = 2e-6;
  m.inter_board_latency_s = 12e-6;
  m.intra_board_bandwidth_Bps = 320.0 * 1024 * 1024;
  m.inter_board_bandwidth_Bps = 320.0 * 1024 * 1024;
  m.nodes_per_board = 4;
  return m;
}

FabricModel sigi_fabric() {
  FabricModel m;
  m.name = "sigi";
  m.send_overhead_s = 6e-6;
  m.recv_overhead_s = 6e-6;
  m.intra_board_latency_s = 3e-6;
  m.inter_board_latency_s = 15e-6;
  m.intra_board_bandwidth_Bps = 120.0 * 1024 * 1024;
  m.inter_board_bandwidth_Bps = 120.0 * 1024 * 1024;
  m.nodes_per_board = 2;
  return m;
}

FabricModel ideal_fabric() {
  FabricModel m;
  m.name = "ideal";
  m.send_overhead_s = 0;
  m.recv_overhead_s = 0;
  m.intra_board_latency_s = 0;
  m.inter_board_latency_s = 0;
  m.intra_board_bandwidth_Bps = 1e18;
  m.inter_board_bandwidth_Bps = 1e18;
  m.vendor_bulk_overhead_factor = 1.0;
  return m;
}

}  // namespace sage::net
