// openSAGE -- the data-plane buffer pool: recycled, size-bucketed byte
// buffers behind a ref-counted Payload handle.
//
// The paper's run-time kernel owns all message memory: physical buffers
// are allocated when the application loads and recycled for the life of
// the run. The emulated fabric reproduces that economy here. A
// BufferPool hands out Payload handles backed by power-of-two-bucketed
// blocks; releasing the last handle parks the block on the bucket's
// free list instead of freeing it, so a warmed-up steady state performs
// zero payload heap allocations (the `misses` counter stays flat -- the
// zero-copy acceptance test asserts exactly that).
//
// Payload is a cheap value type: copies share the same block (fan-out
// sends enqueue one buffer N times), and the block returns to its pool
// when the last copy dies. Handles must not outlive the pool that
// issued them; in practice every Payload is scoped inside the lifetime
// of the Fabric that owns the pool.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace sage::net {

class BufferPool;
struct PoolBlock;  // defined in buffer_pool.cpp

/// Pool activity counters (diagnostics / metrics export). Hit and miss
/// totals depend on host-thread interleaving (which node drains the
/// free list first), so they are exported as time-based metrics --
/// never part of the deterministic snapshot subset.
struct BufferPoolStats {
  std::uint64_t hits = 0;            ///< acquires served from a free list
  std::uint64_t misses = 0;          ///< acquires that had to allocate
  std::uint64_t blocks_live = 0;     ///< blocks currently held by payloads
  std::uint64_t blocks_pooled = 0;   ///< blocks parked on free lists
  std::uint64_t bytes_reserved = 0;  ///< total block capacity ever allocated

  bool operator==(const BufferPoolStats&) const = default;
};

/// Ref-counted handle over one pooled block. Default-constructed
/// handles are empty (the fabric's drop tombstones). The byte contents
/// are logically immutable once the payload is shared (enqueued or
/// copied); `writable()` is for filling the buffer right after
/// `acquire()`, while the handle is still unique.
class Payload {
 public:
  Payload() = default;
  Payload(const Payload& other);
  Payload& operator=(const Payload& other);
  Payload(Payload&& other) noexcept;
  Payload& operator=(Payload&& other) noexcept;
  ~Payload();

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::byte* data() const;
  std::span<const std::byte> bytes() const { return {data(), size_}; }
  operator std::span<const std::byte>() const { return bytes(); }  // NOLINT
  /// Mutable view; only meaningful while this handle is the sole owner
  /// (between acquire() and the first copy/enqueue).
  std::span<std::byte> writable();

  std::byte operator[](std::size_t i) const { return bytes()[i]; }
  const std::byte* begin() const { return data(); }
  const std::byte* end() const { return data() + size_; }

  /// Releases this handle (the block returns to its pool if this was
  /// the last reference); the payload becomes empty.
  void reset();

  friend bool operator==(const Payload& a, const Payload& b) {
    const auto sa = a.bytes();
    const auto sb = b.bytes();
    return sa.size() == sb.size() &&
           std::equal(sa.begin(), sa.end(), sb.begin());
  }
  friend bool operator==(const Payload& a, std::span<const std::byte> b) {
    const auto sa = a.bytes();
    return sa.size() == b.size() && std::equal(sa.begin(), sa.end(), b.begin());
  }
  friend bool operator==(const Payload& a, const std::vector<std::byte>& b) {
    return a == std::span<const std::byte>(b);
  }

 private:
  friend class BufferPool;
  Payload(PoolBlock* block, std::size_t size) : block_(block), size_(size) {}

  PoolBlock* block_ = nullptr;
  std::size_t size_ = 0;
};

/// Size-bucketed free-list allocator for Payload blocks. Thread-safe:
/// the emulated node threads acquire and release concurrently. The pool
/// survives Fabric::reset() -- recycling across runs is the warm-path
/// win -- so its counters are cumulative until the pool dies.
class BufferPool {
 public:
  BufferPool();
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Hands out a payload of exactly `size` bytes backed by a block of
  /// the next power-of-two bucket. Contents are unspecified (callers
  /// fill via writable()); a recycled block keeps its previous bytes.
  Payload acquire(std::size_t size);

  /// acquire() + memcpy of `bytes`.
  Payload copy_of(std::span<const std::byte> bytes);

  /// Tops the bucket serving `size` up to at least `count` parked
  /// blocks. Pre-warming does not count as misses.
  void reserve(std::size_t size, std::size_t count);

  BufferPoolStats stats() const;

 private:
  friend class Payload;

  static constexpr std::size_t kMinBlockBytes = 64;
  static constexpr std::uint32_t kBucketCount = 40;

  static std::uint32_t bucket_of_(std::size_t size);
  PoolBlock* allocate_block_(std::uint32_t bucket);  // requires mu_ held
  void release_(PoolBlock* block);

  mutable std::mutex mu_;
  std::array<std::vector<PoolBlock*>, kBucketCount> free_;
  std::vector<std::unique_ptr<PoolBlock>> blocks_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t bytes_reserved_ = 0;
};

}  // namespace sage::net
