// openSAGE -- Visualizer metrics: the numeric half of the observability
// layer (the Trace is the event half).
//
// The paper's Visualizer "allows the designer to configure the
// instrumentation probes to measure application performance"; traces
// answer *when*, metrics answer *how much*. A MetricsRegistry holds a
// fixed set of metric definitions (counters, gauges, fixed-bucket
// histograms, optionally labeled) and one value shard per emulated
// node. Node threads append to their own shard without locking --
// exactly the EventBuffer threading model -- and snapshot() merges the
// shards after the run, when the node threads are parked.
//
// Threading model: define*() before the run (single-threaded);
// add/set/observe during the run, each shard touched by exactly one
// thread; reset()/snapshot() between runs only.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sage::viz {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind kind);

/// Conventional family names emitted by the runtime's always-on probes
/// (runtime::Session) and consumed by the exporters' report().
namespace families {
inline constexpr const char* kFunctionBusySeconds =
    "sage_function_busy_seconds_total";
inline constexpr const char* kFunctionInvocations =
    "sage_function_invocations_total";
inline constexpr const char* kIterations = "sage_iterations_total";
inline constexpr const char* kIterationLatency =
    "sage_iteration_latency_seconds";
inline constexpr const char* kLatencyViolations =
    "sage_latency_violations_total";
inline constexpr const char* kLatencyThreshold =
    "sage_latency_threshold_seconds";
inline constexpr const char* kMakespan = "sage_run_makespan_seconds";
inline constexpr const char* kLinkMessages = "sage_link_messages_total";
inline constexpr const char* kLinkBytes = "sage_link_bytes_total";
inline constexpr const char* kLinkRetransmits = "sage_link_retransmits_total";
inline constexpr const char* kLinkBusySeconds = "sage_link_busy_seconds_total";
inline constexpr const char* kFaultsInjected = "sage_faults_injected_total";
inline constexpr const char* kFaultRetries = "sage_fault_retries_total";
inline constexpr const char* kFaultTimeouts = "sage_fault_timeouts_total";
inline constexpr const char* kFaultCorruptFrames =
    "sage_fault_corrupt_frames_total";
inline constexpr const char* kFaultStalls = "sage_fault_stalls_total";
inline constexpr const char* kDegradedNodes = "sage_degraded_nodes";
// Data-plane probes (zero-copy accounting; see docs/RUNTIME.md "Data
// plane"). bytes copied/moved are plan-derived and deterministic; the
// buffer-pool series depend on host-thread interleaving and are
// registered time-based.
inline constexpr const char* kDataBytesCopied = "sage_data_bytes_copied_total";
inline constexpr const char* kDataBytesMoved = "sage_data_bytes_moved_total";
inline constexpr const char* kPoolHits = "sage_buffer_pool_hits_total";
inline constexpr const char* kPoolMisses = "sage_buffer_pool_misses_total";
inline constexpr const char* kPoolBlocks = "sage_buffer_pool_blocks";
// Streaming-executor probes (see docs/RUNTIME.md "Streaming
// execution"). Occupancy and the achieved period are ratios/intervals
// of measured virtual time, so they jitter run to run and are
// registered time-based.
inline constexpr const char* kStageOccupancy = "sage_stage_occupancy_ratio";
inline constexpr const char* kStreamPeriod = "sage_stream_period_seconds";
// Multi-tenant service probes (serve::Server; see docs/SERVE.md). All
// serve accounting runs in virtual time under the server's scheduling
// model, so every family below is deterministic for a fixed arrival
// schedule.
inline constexpr const char* kServeQueueDepth = "sage_serve_queue_depth";
inline constexpr const char* kServeAdmitted = "sage_serve_admitted_total";
inline constexpr const char* kServeShed = "sage_serve_shed_total";
inline constexpr const char* kServeCompleted = "sage_serve_completed_total";
inline constexpr const char* kServeErrors = "sage_serve_errors_total";
inline constexpr const char* kServeCoalesced = "sage_serve_coalesced_total";
inline constexpr const char* kServeSessions = "sage_serve_sessions";
inline constexpr const char* kServeLatency = "sage_serve_latency_seconds";
inline constexpr const char* kServeQueueSeconds =
    "sage_serve_queue_seconds";
// Program-compilation provenance (Compiler -> Program -> Executor; see
// docs/RUNTIME.md "Lifecycle"). Both are host-wall-clock / environment
// facts (compile cost, whether a plan-cache entry existed), so they are
// registered time-based and stay out of the deterministic subset.
inline constexpr const char* kProgramCompileSeconds =
    "sage_program_compile_seconds";
inline constexpr const char* kPlanCacheLookups =
    "sage_plan_cache_lookups_total";
// Online-tuning probes (runtime::Tuner; see docs/RUNTIME.md "Online
// tuning"). Decisions are driven by measured busy seconds and the swap
// cost is host wall clock, so all three families are time-based and
// stay out of the deterministic subset.
inline constexpr const char* kTuneSteps = "sage_tune_steps_total";
inline constexpr const char* kTunePredictedGain =
    "sage_tune_predicted_gain_ratio";
inline constexpr const char* kTuneSwapSeconds = "sage_tune_swap_seconds";
}  // namespace families

/// How per-shard values fold into one series value at snapshot time.
/// Counters and histograms always sum; gauges choose.
enum class Aggregation : std::uint8_t { kSum, kMax, kMin };

/// One labeled metric series. Same name + different labels = distinct
/// series of one family (the Prometheus data model).
struct MetricSpec {
  std::string name;  // snake_case family name, e.g. sage_fabric_bytes_total
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  Aggregation aggregation = Aggregation::kSum;
  std::vector<std::pair<std::string, std::string>> labels;
  /// Histogram bucket upper bounds, strictly increasing; an implicit
  /// +Inf bucket is always appended.
  std::vector<double> buckets;
  /// True for series derived from measured host time (busy seconds,
  /// latencies): they jitter run to run and are excluded from
  /// MetricsSnapshot::deterministic_subset().
  bool time_based = false;
};

/// Merged histogram state: counts per bucket (the last entry is +Inf),
/// total count, and sum of observations.
struct HistogramValue {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;

  bool operator==(const HistogramValue&) const = default;
};

/// One merged series in a snapshot.
struct MetricValue {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<std::pair<std::string, std::string>> labels;
  bool time_based = false;
  double value = 0.0;         // counters and gauges
  HistogramValue histogram;   // histograms only

  bool operator==(const MetricValue&) const = default;
};

/// Point-in-time merged view of a registry, in definition order.
struct MetricsSnapshot {
  std::vector<MetricValue> series;

  bool empty() const { return series.empty(); }

  /// First series of the family `name` (any labels), or nullptr.
  const MetricValue* find(std::string_view name) const;
  /// Series with exactly these labels, or nullptr.
  const MetricValue* find(
      std::string_view name,
      const std::vector<std::pair<std::string, std::string>>& labels) const;

  /// The snapshot without time-based series: invocation counts, fabric
  /// traffic, fault counters... everything that must be bit-identical
  /// across cold runs, warm re-runs, and fresh sessions.
  MetricsSnapshot deterministic_subset() const;

  bool operator==(const MetricsSnapshot&) const = default;
};

class MetricsRegistry {
 public:
  /// `shards` is the number of writer threads (one per emulated node);
  /// at least one.
  explicit MetricsRegistry(int shards = 1);

  int shard_count() const { return static_cast<int>(shards_.size()); }
  int size() const { return static_cast<int>(specs_.size()); }

  /// Registers a series and returns its id. Throws sage::Error on a
  /// duplicate (name, labels) pair or non-increasing histogram buckets.
  int define(MetricSpec spec);

  /// Convenience definers.
  int counter(std::string name, std::string help,
              std::vector<std::pair<std::string, std::string>> labels = {},
              bool time_based = false);
  int gauge(std::string name, std::string help,
            Aggregation aggregation = Aggregation::kSum,
            std::vector<std::pair<std::string, std::string>> labels = {},
            bool time_based = false);
  int histogram(std::string name, std::string help,
                std::vector<double> buckets,
                std::vector<std::pair<std::string, std::string>> labels = {},
                bool time_based = false);

  /// Existing id for (name, labels), if defined.
  std::optional<int> lookup(
      std::string_view name,
      const std::vector<std::pair<std::string, std::string>>& labels) const;

  // --- hot path (lock-free: one thread per shard) --------------------------
  void add(int shard, int id, double delta);      // counters, gauges
  void set(int shard, int id, double value);      // gauges
  void observe(int shard, int id, double value);  // histograms

  /// Zeroes every shard cell; definitions persist (the warm-run reset).
  void reset();

  /// Merged view across shards. Call only while writer threads are
  /// parked.
  MetricsSnapshot snapshot() const;

 private:
  struct Cell {
    double value = 0.0;
    bool touched = false;  // gauge kMax/kMin: untouched shards don't vote
    std::vector<std::uint64_t> bucket_counts;
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  std::vector<MetricSpec> specs_;
  std::vector<std::vector<Cell>> shards_;  // [shard][metric id]
};

}  // namespace sage::viz
