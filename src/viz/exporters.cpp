#include "viz/exporters.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <map>
#include <sstream>
#include <string_view>
#include <vector>

#include "support/strings.hpp"

namespace sage::viz {

namespace {

/// Full-precision, locale-independent number formatting shared by both
/// machine formats, so exports diff cleanly across runs and platforms.
std::string fmt(double value) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << value;
  return os.str();
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string prom_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prom_labels(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + prom_escape(value) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

/// `key=value;...` with escape() on values: a newline in a label must
/// not break the CSV rows.
std::string csv_labels(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) out += ";";
    out += key + "=" + support::escape(value);
  }
  return out;
}

/// Label value of `key`, or "" when absent.
std::string label_of(const MetricValue& v, std::string_view key) {
  for (const auto& [k, value] : v.labels) {
    if (k == key) return value;
  }
  return "";
}

}  // namespace

std::string prometheus_text(const MetricsSnapshot& metrics) {
  // The exposition format requires all series of a family to be grouped
  // under one HELP/TYPE header; snapshots may interleave families (e.g.
  // the four per-link families are defined link by link), so group by
  // family in order of first appearance.
  std::vector<std::string_view> family_order;
  std::map<std::string_view, std::vector<const MetricValue*>> families;
  for (const MetricValue& v : metrics.series) {
    auto [it, inserted] = families.try_emplace(v.name);
    if (inserted) family_order.push_back(v.name);
    it->second.push_back(&v);
  }
  std::ostringstream os;
  for (const std::string_view family : family_order) {
    bool open = false;
    for (const MetricValue* vp : families[family]) {
      const MetricValue& v = *vp;
      if (!open) {
        open = true;
        if (!v.help.empty()) {
          os << "# HELP " << v.name << " " << v.help << "\n";
        }
        os << "# TYPE " << v.name << " " << to_string(v.kind) << "\n";
      }
      if (v.kind == MetricKind::kHistogram) {
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < v.histogram.counts.size(); ++b) {
          cumulative += v.histogram.counts[b];
          const std::string le =
              b < v.histogram.bounds.size()
                  ? "le=\"" + fmt(v.histogram.bounds[b]) + "\""
                  : std::string("le=\"+Inf\"");
          os << v.name << "_bucket" << prom_labels(v.labels, le) << " "
             << cumulative << "\n";
        }
        os << v.name << "_sum" << prom_labels(v.labels) << " "
           << fmt(v.histogram.sum) << "\n";
        os << v.name << "_count" << prom_labels(v.labels) << " "
           << v.histogram.count << "\n";
      } else {
        os << v.name << prom_labels(v.labels) << " " << fmt(v.value) << "\n";
      }
    }
  }
  return os.str();
}

std::string metrics_csv(const MetricsSnapshot& metrics) {
  std::ostringstream os;
  os << "name,labels,kind,field,value\n";
  for (const MetricValue& v : metrics.series) {
    const std::string labels = csv_labels(v.labels);
    if (v.kind == MetricKind::kHistogram) {
      for (std::size_t b = 0; b < v.histogram.counts.size(); ++b) {
        const std::string le = b < v.histogram.bounds.size()
                                   ? "le:" + fmt(v.histogram.bounds[b])
                                   : std::string("le:+Inf");
        os << v.name << "," << labels << ",histogram," << le << ","
           << v.histogram.counts[b] << "\n";
      }
      os << v.name << "," << labels << ",histogram,sum,"
         << fmt(v.histogram.sum) << "\n";
      os << v.name << "," << labels << ",histogram,count,"
         << v.histogram.count << "\n";
    } else {
      os << v.name << "," << labels << "," << to_string(v.kind) << ",value,"
         << fmt(v.value) << "\n";
    }
  }
  return os.str();
}

std::string report(const Trace& trace, const MetricsSnapshot& metrics,
                   const ReportOptions& options) {
  std::ostringstream os;
  os << "=== SAGE observability report ===\n";

  // --- bottleneck and per-function load ------------------------------------
  const auto stats = function_stats(trace);
  if (const auto bn = bottleneck(trace)) {
    os << "bottleneck: " << bn->name << " ("
       << support::format_seconds(bn->total_time) << " total over "
       << bn->invocations << " calls)\n";
  } else {
    os << "bottleneck: (no function events traced)\n";
  }
  for (const FunctionStats& s : stats) {
    os << "  [" << s.function_id << "] " << s.name << ": " << s.invocations
       << " calls, total " << support::format_seconds(s.total_time)
       << ", mean " << support::format_seconds(s.mean_time()) << ", max "
       << support::format_seconds(s.max_time) << "\n";
  }

  // --- node utilization ----------------------------------------------------
  const auto util = node_utilization(trace);
  if (!util.empty()) {
    os << "node utilization:\n";
    for (const NodeUtilization& u : util) {
      os << "  node " << u.node << ": "
         << static_cast<int>(u.utilization() * 100) << "% ("
         << support::format_seconds(u.busy) << " busy of "
         << support::format_seconds(u.span) << ")\n";
    }
  }

  // --- latency and threshold violations ------------------------------------
  const auto latencies = iteration_latencies(trace);
  if (!latencies.empty()) {
    double mean = 0.0;
    for (const auto& lat : latencies) mean += lat.latency();
    mean /= static_cast<double>(latencies.size());
    os << "iterations: " << latencies.size() << ", mean latency "
       << support::format_seconds(mean) << ", period "
       << support::format_seconds(mean_period(trace)) << "\n";
    if (options.latency_threshold > 0.0) {
      const auto violations =
          latency_violations(trace, options.latency_threshold);
      os << "latency violations over "
         << support::format_seconds(options.latency_threshold) << ": "
         << violations.size() << "\n";
      for (const IterationLatency& v : violations) {
        os << "  iteration " << v.iteration << ": "
           << support::format_seconds(v.latency()) << "\n";
      }
    }
  } else {
    os << "iterations: none traced\n";
  }

  // --- fabric hot links (from the metrics registry) -------------------------
  std::vector<const MetricValue*> links;
  for (const MetricValue& v : metrics.series) {
    if (v.name == families::kLinkBytes && v.value > 0.0) links.push_back(&v);
  }
  // Stable: equal-byte links keep snapshot ((src, dst)) order, so the
  // report is deterministic.
  std::stable_sort(links.begin(), links.end(),
                   [](const MetricValue* a, const MetricValue* b) {
                     return a->value > b->value;
                   });
  if (!links.empty()) {
    os << "fabric links (by bytes):\n";
    int shown = 0;
    for (const MetricValue* link : links) {
      if (shown++ >= options.max_links) {
        os << "  ... " << links.size() - options.max_links << " more\n";
        break;
      }
      const std::string src = label_of(*link, "src");
      const std::string dst = label_of(*link, "dst");
      const auto labels = link->labels;
      const MetricValue* msgs = metrics.find(families::kLinkMessages, labels);
      const MetricValue* retx =
          metrics.find(families::kLinkRetransmits, labels);
      os << "  " << src << "->" << dst << ": "
         << support::format_bytes(static_cast<std::size_t>(link->value))
         << " in " << (msgs ? static_cast<std::uint64_t>(msgs->value) : 0)
         << " msgs";
      if (retx != nullptr && retx->value > 0.0) {
        os << ", " << static_cast<std::uint64_t>(retx->value)
           << " retransmits";
      }
      os << "\n";
    }
  }

  // --- program provenance: compile cost and plan-cache outcome --------------
  const MetricValue* compile = metrics.find(families::kProgramCompileSeconds);
  if (compile != nullptr && compile->value > 0.0) {
    os << "program: compiled in "
       << support::format_seconds(compile->value);
    const MetricValue* lookup = metrics.find(families::kPlanCacheLookups);
    if (lookup != nullptr) {
      os << " (plan cache: " << label_of(*lookup, "outcome") << ")";
    }
    os << "\n";
  }

  // --- data plane: copied vs moved bytes, buffer-pool health ----------------
  const MetricValue* copied = metrics.find(families::kDataBytesCopied);
  const MetricValue* moved = metrics.find(families::kDataBytesMoved);
  if ((copied != nullptr && copied->value > 0.0) ||
      (moved != nullptr && moved->value > 0.0)) {
    const double copied_b = copied != nullptr ? copied->value : 0.0;
    const double moved_b = moved != nullptr ? moved->value : 0.0;
    const double total = copied_b + moved_b;
    os << "data plane: "
       << support::format_bytes(static_cast<std::size_t>(copied_b))
       << " copied, "
       << support::format_bytes(static_cast<std::size_t>(moved_b))
       << " moved by handle";
    if (total > 0.0) {
      os << " (" << static_cast<int>(moved_b / total * 100.0)
         << "% zero-copy)";
    }
    os << "\n";
    const MetricValue* hits = metrics.find(families::kPoolHits);
    const MetricValue* misses = metrics.find(families::kPoolMisses);
    const MetricValue* blocks = metrics.find(families::kPoolBlocks);
    if (hits != nullptr || misses != nullptr) {
      const double hit_n = hits != nullptr ? hits->value : 0.0;
      const double miss_n = misses != nullptr ? misses->value : 0.0;
      os << "buffer pool: " << static_cast<std::uint64_t>(hit_n) << " hits, "
         << static_cast<std::uint64_t>(miss_n) << " misses";
      if (blocks != nullptr && blocks->value > 0.0) {
        os << ", " << static_cast<std::uint64_t>(blocks->value) << " blocks";
      }
      if (miss_n == 0.0 && hit_n > 0.0) {
        os << " (steady state)";
      }
      os << "\n";
    }
  }

  // --- streaming: achieved period and per-stage occupancy -------------------
  // Only present once a pipeline is primed: the period gauge stays 0 for
  // synchronous runs and for the ticket that opened its epoch.
  const MetricValue* stream_period = metrics.find(families::kStreamPeriod);
  if (stream_period != nullptr && stream_period->value > 0.0) {
    os << "streaming: achieved period "
       << support::format_seconds(stream_period->value) << "\n";
    const MetricValue* busiest = nullptr;
    for (const MetricValue& v : metrics.series) {
      if (v.name != families::kStageOccupancy) continue;
      os << "  stage " << label_of(v, "function") << ": "
         << static_cast<int>(v.value * 100.0) << "% occupied\n";
      if (busiest == nullptr || v.value > busiest->value) busiest = &v;
    }
    if (busiest != nullptr && busiest->value > 0.0) {
      os << "  period set by " << label_of(*busiest, "function")
         << " (the stage nearest full occupancy)\n";
    }
  }

  // --- tuning: the online AToT loop -----------------------------------------
  // Present only when a runtime::Tuner snapshot was merged in (session
  // snapshots never define these families).
  bool tuned = false;
  double tune_steps = 0.0;
  double tune_swaps = 0.0;
  double tune_holds = 0.0;
  double tune_skips = 0.0;
  for (const MetricValue& v : metrics.series) {
    if (v.name != families::kTuneSteps) continue;
    tuned = true;
    tune_steps += v.value;
    const std::string outcome = label_of(v, "outcome");
    if (outcome == "swap") tune_swaps += v.value;
    if (outcome == "hold") tune_holds += v.value;
    if (outcome == "skip") tune_skips += v.value;
  }
  if (tuned) {
    os << "tuning: " << static_cast<std::uint64_t>(tune_steps) << " steps ("
       << static_cast<std::uint64_t>(tune_swaps) << " swaps, "
       << static_cast<std::uint64_t>(tune_holds) << " holds, "
       << static_cast<std::uint64_t>(tune_skips) << " skips)";
    const MetricValue* gain = metrics.find(families::kTunePredictedGain);
    if (gain != nullptr) {
      os << ", last predicted gain "
         << static_cast<int>(gain->value * 100.0) << "%";
    }
    const MetricValue* swap_cost = metrics.find(families::kTuneSwapSeconds);
    if (swap_cost != nullptr && swap_cost->value > 0.0) {
      os << ", " << support::format_seconds(swap_cost->value)
         << " host spent swapping";
    }
    os << "\n";
  }

  // --- serve: fleet admission / shed / latency ------------------------------
  // Present only for serve::Server snapshots (session snapshots never
  // define these families).
  const MetricValue* serve_completed = metrics.find(families::kServeCompleted);
  if (serve_completed != nullptr) {
    double serve_admitted = 0.0;
    double serve_shed = 0.0;
    for (const MetricValue& v : metrics.series) {
      if (v.name == families::kServeAdmitted) serve_admitted += v.value;
      if (v.name == families::kServeShed) serve_shed += v.value;
    }
    os << "serve: " << static_cast<std::uint64_t>(serve_admitted)
       << " admitted, " << static_cast<std::uint64_t>(serve_shed) << " shed, "
       << static_cast<std::uint64_t>(serve_completed->value) << " completed";
    const MetricValue* serve_errors = metrics.find(families::kServeErrors);
    if (serve_errors != nullptr && serve_errors->value > 0.0) {
      os << ", " << static_cast<std::uint64_t>(serve_errors->value)
         << " errors";
    }
    const MetricValue* serve_coalesced =
        metrics.find(families::kServeCoalesced);
    if (serve_coalesced != nullptr && serve_coalesced->value > 0.0) {
      os << " (" << static_cast<std::uint64_t>(serve_coalesced->value)
         << " coalesced onto streaming epochs)";
    }
    os << "\n";
    const MetricValue* serve_sessions =
        metrics.find(families::kServeSessions, {});
    const MetricValue* serve_queue = metrics.find(families::kServeQueueDepth);
    if (serve_sessions != nullptr || serve_queue != nullptr) {
      os << "  fleet: "
         << (serve_sessions != nullptr
                 ? static_cast<std::uint64_t>(serve_sessions->value)
                 : 0)
         << " warm sessions, peak queue depth "
         << (serve_queue != nullptr
                 ? static_cast<std::uint64_t>(serve_queue->value)
                 : 0)
         << "\n";
    }
    const MetricValue* serve_latency = metrics.find(families::kServeLatency);
    if (serve_latency != nullptr && serve_latency->histogram.count > 0) {
      os << "  latency: mean "
         << support::format_seconds(serve_latency->histogram.sum /
                                    static_cast<double>(
                                        serve_latency->histogram.count))
         << " over " << serve_latency->histogram.count << " requests\n";
    }
    // Per-tenant admission lines, in definition order.
    for (const MetricValue& v : metrics.series) {
      if (v.name != families::kServeAdmitted) continue;
      os << "  tenant " << label_of(v, "tenant") << ": "
         << static_cast<std::uint64_t>(v.value) << " admitted\n";
    }
  }

  // --- faults and recovery --------------------------------------------------
  double injected = 0.0;
  for (const MetricValue& v : metrics.series) {
    if (v.name == families::kFaultsInjected) injected += v.value;
  }
  const std::size_t fault_events = trace.events_of_kind(EventKind::kFault).size();
  const std::size_t retry_events = trace.events_of_kind(EventKind::kRetry).size();
  if (injected > 0.0 || fault_events > 0 || retry_events > 0) {
    os << "faults:";
    for (const MetricValue& v : metrics.series) {
      if (v.name == families::kFaultsInjected && v.value > 0.0) {
        os << " " << static_cast<std::uint64_t>(v.value) << " "
           << label_of(v, "kind");
      }
    }
    if (injected == 0.0 && fault_events > 0) {
      os << " " << fault_events << " observed";
    }
    const MetricValue* retries = metrics.find(families::kFaultRetries);
    if (retries != nullptr && retries->value > 0.0) {
      os << ", " << static_cast<std::uint64_t>(retries->value) << " retries";
    } else if (retry_events > 0) {
      os << ", " << retry_events << " retries";
    }
    const MetricValue* degraded = metrics.find(families::kDegradedNodes);
    if (degraded != nullptr && degraded->value > 0.0) {
      os << "; degraded (" << static_cast<int>(degraded->value)
         << " dead nodes)";
    }
    os << "\n";
  }
  for (const Event& e : trace.events_of_kind(EventKind::kRecovery)) {
    os << "recovery: " << e.label << "\n";
  }

  if (options.timeline_columns > 0) {
    os << ascii_timeline(trace, options.timeline_columns);
  }
  return os.str();
}

}  // namespace sage::viz
