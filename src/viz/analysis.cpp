#include "viz/analysis.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace sage::viz {

namespace {

/// Paired (start, end) interval of one function invocation.
struct Interval {
  int node;
  int function_id;
  std::string label;
  support::VirtualSeconds start;
  support::VirtualSeconds end;
};

/// Pairs kFunctionStart / kFunctionEnd events per (node, function,
/// thread, iteration).
std::vector<Interval> function_intervals(const Trace& trace) {
  std::vector<Interval> out;
  std::map<std::tuple<int, int, int, int>, Event> open;
  for (const Event& e : trace.events()) {
    const auto key = std::make_tuple(e.node, e.function_id, e.thread,
                                     e.iteration);
    if (e.kind == EventKind::kFunctionStart) {
      open[key] = e;
    } else if (e.kind == EventKind::kFunctionEnd) {
      auto it = open.find(key);
      if (it != open.end()) {
        out.push_back({e.node, e.function_id, e.label, it->second.start_vt,
                       e.start_vt});
        open.erase(it);
      }
    }
  }
  return out;
}

}  // namespace

std::vector<FunctionStats> function_stats(const Trace& trace) {
  std::map<int, FunctionStats> by_id;
  for (const Interval& iv : function_intervals(trace)) {
    FunctionStats& stats = by_id[iv.function_id];
    stats.function_id = iv.function_id;
    stats.name = iv.label;
    ++stats.invocations;
    const double dt = iv.end - iv.start;
    stats.total_time += dt;
    stats.max_time = std::max(stats.max_time, dt);
  }
  std::vector<FunctionStats> out;
  out.reserve(by_id.size());
  for (auto& [id, stats] : by_id) out.push_back(std::move(stats));
  return out;
}

std::optional<FunctionStats> bottleneck(const Trace& trace) {
  const auto stats = function_stats(trace);
  if (stats.empty()) return std::nullopt;
  return *std::max_element(stats.begin(), stats.end(),
                           [](const FunctionStats& a, const FunctionStats& b) {
                             return a.total_time < b.total_time;
                           });
}

std::vector<NodeUtilization> node_utilization(const Trace& trace) {
  // Collect raw intervals per node, then take the union: threads of one
  // node execute concurrently, so summing their intervals directly
  // double-counts overlap and can report utilization > 1.0.
  std::map<int, std::vector<std::pair<double, double>>> by_node;
  double span_start = 0.0;
  double span_end = 0.0;
  bool any = false;
  for (const Interval& iv : function_intervals(trace)) {
    by_node[iv.node].emplace_back(iv.start, iv.end);
    if (!any || iv.start < span_start) span_start = iv.start;
    if (!any || iv.end > span_end) span_end = iv.end;
    any = true;
  }
  std::vector<NodeUtilization> out;
  for (auto& [node, intervals] : by_node) {
    std::sort(intervals.begin(), intervals.end());
    NodeUtilization u;
    u.node = node;
    u.span = span_end - span_start;
    double cur_start = 0.0;
    double cur_end = 0.0;
    bool open = false;
    for (const auto& [start, end] : intervals) {
      if (open && start <= cur_end) {
        cur_end = std::max(cur_end, end);
      } else {
        if (open) u.busy += cur_end - cur_start;
        cur_start = start;
        cur_end = end;
        open = true;
      }
    }
    if (open) u.busy += cur_end - cur_start;
    out.push_back(u);
  }
  return out;
}

std::vector<IterationLatency> iteration_latencies(const Trace& trace) {
  std::map<int, IterationLatency> by_iter;
  for (const Event& e : trace.events()) {
    if (e.kind == EventKind::kIterationStart) {
      auto it = by_iter.find(e.iteration);
      if (it == by_iter.end()) {
        by_iter[e.iteration] = {e.iteration, e.start_vt, e.start_vt};
      } else {
        it->second.start_vt = std::min(it->second.start_vt, e.start_vt);
      }
    } else if (e.kind == EventKind::kIterationEnd) {
      auto it = by_iter.find(e.iteration);
      if (it == by_iter.end()) {
        by_iter[e.iteration] = {e.iteration, e.start_vt, e.start_vt};
      } else {
        it->second.end_vt = std::max(it->second.end_vt, e.start_vt);
      }
    }
  }
  std::vector<IterationLatency> out;
  for (auto& [iter, lat] : by_iter) out.push_back(lat);
  return out;
}

std::vector<IterationLatency> latency_violations(
    const Trace& trace, support::VirtualSeconds threshold) {
  std::vector<IterationLatency> out;
  for (const IterationLatency& lat : iteration_latencies(trace)) {
    if (lat.latency() > threshold) out.push_back(lat);
  }
  return out;
}

support::VirtualSeconds mean_period(const Trace& trace) {
  auto latencies = iteration_latencies(trace);
  if (latencies.size() < 2) return 0.0;
  std::sort(latencies.begin(), latencies.end(),
            [](const IterationLatency& a, const IterationLatency& b) {
              return a.iteration < b.iteration;
            });
  return (latencies.back().end_vt - latencies.front().end_vt) /
         static_cast<double>(latencies.size() - 1);
}

std::uint64_t total_transfer_bytes(const Trace& trace) {
  std::uint64_t total = 0;
  for (const Event& e : trace.events()) {
    if (e.kind == EventKind::kSend) total += e.bytes;
  }
  return total;
}

std::vector<TransferStats> transfer_stats(const Trace& trace) {
  std::map<std::string, TransferStats> by_label;
  for (const Event& e : trace.events()) {
    if (e.kind != EventKind::kSend && e.kind != EventKind::kBufferCopy) {
      continue;
    }
    TransferStats& stats = by_label[e.label];
    stats.label = e.label;
    stats.total_time += e.end_vt - e.start_vt;
    if (e.kind == EventKind::kSend) {
      ++stats.fabric_messages;
      stats.fabric_bytes += e.bytes;
    } else {
      ++stats.local_copies;
      stats.local_bytes += e.bytes;
    }
  }
  std::vector<TransferStats> out;
  out.reserve(by_label.size());
  for (auto& [label, stats] : by_label) out.push_back(std::move(stats));
  std::sort(out.begin(), out.end(),
            [](const TransferStats& a, const TransferStats& b) {
              return a.fabric_bytes + a.local_bytes >
                     b.fabric_bytes + b.local_bytes;
            });
  return out;
}

std::string ascii_timeline(const Trace& trace, int columns) {
  const auto intervals = function_intervals(trace);
  if (intervals.empty()) return "(empty trace)\n";

  double t0 = intervals.front().start;
  double t1 = intervals.front().end;
  int max_node = 0;
  for (const Interval& iv : intervals) {
    t0 = std::min(t0, iv.start);
    t1 = std::max(t1, iv.end);
    max_node = std::max(max_node, iv.node);
  }
  const double span = std::max(t1 - t0, 1e-12);

  std::vector<std::string> rows(static_cast<std::size_t>(max_node) + 1,
                                std::string(static_cast<std::size_t>(columns), '.'));
  for (const Interval& iv : intervals) {
    int c0 = static_cast<int>((iv.start - t0) / span * columns);
    int c1 = static_cast<int>((iv.end - t0) / span * columns);
    c0 = std::clamp(c0, 0, columns - 1);
    c1 = std::clamp(c1, c0, columns - 1);
    for (int c = c0; c <= c1; ++c) {
      rows[static_cast<std::size_t>(iv.node)][static_cast<std::size_t>(c)] = '#';
    }
  }

  std::ostringstream os;
  os << "timeline over " << support::format_seconds(span) << " (virtual)\n";
  for (std::size_t n = 0; n < rows.size(); ++n) {
    os << "node " << n << " |" << rows[n] << "|\n";
  }
  return os.str();
}

std::string summary_report(const Trace& trace) {
  std::ostringstream os;
  os << "=== SAGE Visualizer summary ===\n";
  const auto stats = function_stats(trace);
  os << "functions:\n";
  for (const FunctionStats& s : stats) {
    os << "  [" << s.function_id << "] " << s.name << ": " << s.invocations
       << " calls, total " << support::format_seconds(s.total_time)
       << ", mean " << support::format_seconds(s.mean_time()) << ", max "
       << support::format_seconds(s.max_time) << "\n";
  }
  if (const auto bn = bottleneck(trace)) {
    os << "bottleneck: " << bn->name << "\n";
  }
  os << "utilization:\n";
  for (const NodeUtilization& u : node_utilization(trace)) {
    os << "  node " << u.node << ": " << static_cast<int>(u.utilization() * 100)
       << "%\n";
  }
  const auto latencies = iteration_latencies(trace);
  if (!latencies.empty()) {
    double mean = 0.0;
    for (const auto& lat : latencies) mean += lat.latency();
    mean /= static_cast<double>(latencies.size());
    os << "iterations: " << latencies.size() << ", mean latency "
       << support::format_seconds(mean) << ", period "
       << support::format_seconds(mean_period(trace)) << "\n";
  }
  os << "fabric bytes: " << support::format_bytes(total_transfer_bytes(trace))
     << "\n";
  const auto transfers = transfer_stats(trace);
  if (!transfers.empty()) {
    os << "buffers:\n";
    for (const TransferStats& t : transfers) {
      os << "  " << t.label << ": " << t.fabric_messages << " msgs ("
         << support::format_bytes(t.fabric_bytes) << " fabric), "
         << t.local_copies << " copies ("
         << support::format_bytes(t.local_bytes) << " local), "
         << support::format_seconds(t.total_time) << "\n";
    }
  }
  os << ascii_timeline(trace);
  return os.str();
}

}  // namespace sage::viz
