#include "viz/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace sage::viz {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kFunctionStart: return "function_start";
    case EventKind::kFunctionEnd: return "function_end";
    case EventKind::kSend: return "send";
    case EventKind::kReceive: return "receive";
    case EventKind::kBufferCopy: return "buffer_copy";
    case EventKind::kIterationStart: return "iteration_start";
    case EventKind::kIterationEnd: return "iteration_end";
    case EventKind::kMarker: return "marker";
    case EventKind::kFault: return "fault";
    case EventKind::kRetry: return "retry";
    case EventKind::kRecovery: return "recovery";
  }
  return "?";
}

Trace Trace::merge(const std::vector<const EventBuffer*>& buffers) {
  Trace trace;
  std::size_t total = 0;
  for (const EventBuffer* buffer : buffers) total += buffer->events().size();
  trace.events_.reserve(total);
  for (const EventBuffer* buffer : buffers) {
    trace.events_.insert(trace.events_.end(), buffer->events().begin(),
                         buffer->events().end());
  }
  std::stable_sort(trace.events_.begin(), trace.events_.end(),
                   [](const Event& a, const Event& b) {
                     return a.start_vt < b.start_vt;
                   });
  return trace;
}

std::vector<Event> Trace::events_of_kind(EventKind kind) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::string Trace::to_chrome_json() const {
  std::ostringstream os;
  // Default ostream precision is 6 significant digits, which collapses
  // distinct events once timestamps pass ~1 virtual second (1e6 us);
  // max_digits10 keeps every double exactly representable in the JSON.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) os << ",";
    first = false;
    const double us = e.start_vt * 1e6;
    const double dur = (e.end_vt - e.start_vt) * 1e6;
    os << "\n{\"name\":\"" << support::escape(e.label) << "\",\"cat\":\""
       << to_string(e.kind) << "\",\"ph\":\"X\",\"ts\":" << us
       << ",\"dur\":" << dur << ",\"pid\":0,\"tid\":" << e.node
       << ",\"args\":{\"iteration\":" << e.iteration
       << ",\"thread\":" << e.thread << ",\"bytes\":" << e.bytes << "}}";
  }
  os << "\n]\n";
  return os.str();
}

namespace {

EventKind kind_from_string(std::string_view s) {
  for (const EventKind kind :
       {EventKind::kFunctionStart, EventKind::kFunctionEnd, EventKind::kSend,
        EventKind::kReceive, EventKind::kBufferCopy,
        EventKind::kIterationStart, EventKind::kIterationEnd,
        EventKind::kMarker, EventKind::kFault, EventKind::kRetry,
        EventKind::kRecovery}) {
    if (s == to_string(kind)) return kind;
  }
  raise("unknown trace event kind '", std::string(s), "'");
}

}  // namespace

Trace Trace::from_csv(std::string_view csv) {
  Trace trace;
  int line_number = 0;
  for (const std::string& line : support::split(csv, '\n')) {
    ++line_number;
    // Only strip the line terminator: the label is the trailing field,
    // and a full trim would eat its leading/trailing whitespace.
    std::string_view row = line;
    if (!row.empty() && row.back() == '\r') row.remove_suffix(1);
    if (support::trim(row).empty() ||
        support::starts_with(support::trim(row), "kind,")) {
      continue;
    }
    const auto fields = support::split(row, ',');
    SAGE_CHECK(fields.size() >= 9, "trace CSV line ", line_number,
               ": expected at least 9 fields, got ", fields.size());
    Event e;
    e.kind = kind_from_string(fields[0]);
    e.node = static_cast<int>(support::parse_int(fields[1]));
    e.function_id = static_cast<int>(support::parse_int(fields[2]));
    e.thread = static_cast<int>(support::parse_int(fields[3]));
    e.iteration = static_cast<int>(support::parse_int(fields[4]));
    e.start_vt = support::parse_double(fields[5]);
    e.end_vt = support::parse_double(fields[6]);
    // Unsigned: byte counts >= 2^63 must not wrap through a signed parse.
    e.bytes = support::parse_uint(fields[7]);
    // The label is everything after the eighth comma: rejoin the split
    // so labels containing commas survive, then undo escape()'s
    // newline/tab/quote/backslash escapes.
    std::vector<std::string> label_fields(fields.begin() + 8, fields.end());
    e.label = support::unescape(support::join(label_fields, ","));
    trace.events_.push_back(std::move(e));
  }
  std::stable_sort(trace.events_.begin(), trace.events_.end(),
                   [](const Event& a, const Event& b) {
                     return a.start_vt < b.start_vt;
                   });
  return trace;
}

std::string Trace::to_csv() const {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "kind,node,function_id,thread,iteration,start_vt,end_vt,bytes,label\n";
  for (const Event& e : events_) {
    os << to_string(e.kind) << ',' << e.node << ',' << e.function_id << ','
       << e.thread << ',' << e.iteration << ',' << e.start_vt << ','
       << e.end_vt << ',' << e.bytes << ',' << support::escape(e.label)
       << '\n';
  }
  return os.str();
}

}  // namespace sage::viz
