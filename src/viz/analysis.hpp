// openSAGE -- Visualizer analyses.
//
// "The Visualizer allows the designer to configure the instrumentation
// probes to measure application performance, and search for problems in
// the system, such as bottlenecks or violated latency thresholds."
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "viz/trace.hpp"

namespace sage::viz {

/// Aggregated execution statistics for one function.
struct FunctionStats {
  std::string name;
  int function_id = -1;
  int invocations = 0;
  support::VirtualSeconds total_time = 0.0;
  support::VirtualSeconds max_time = 0.0;

  support::VirtualSeconds mean_time() const {
    return invocations > 0 ? total_time / invocations : 0.0;
  }
};

/// Busy-time share of one node over the traced interval.
struct NodeUtilization {
  int node = 0;
  support::VirtualSeconds busy = 0.0;
  support::VirtualSeconds span = 0.0;

  double utilization() const { return span > 0 ? busy / span : 0.0; }
};

/// One iteration's end-to-end latency (source start -> sink end).
struct IterationLatency {
  int iteration = 0;
  support::VirtualSeconds start_vt = 0.0;
  support::VirtualSeconds end_vt = 0.0;

  support::VirtualSeconds latency() const { return end_vt - start_vt; }
};

/// Per-function aggregate (from paired function start/end events).
std::vector<FunctionStats> function_stats(const Trace& trace);

/// The bottleneck: the function with the largest total busy time, or
/// std::nullopt when the trace carries no paired function events (e.g.
/// a marker- or fault-only trace).
std::optional<FunctionStats> bottleneck(const Trace& trace);

/// Busy/span per node. Busy time is the union of that node's function
/// execution intervals: overlapping per-thread intervals are merged
/// before summing, so utilization never exceeds 1.0 on multi-threaded
/// nodes.
std::vector<NodeUtilization> node_utilization(const Trace& trace);

/// Latency of each iteration, from iteration start/end markers.
std::vector<IterationLatency> iteration_latencies(const Trace& trace);

/// Iterations whose latency exceeds the threshold.
std::vector<IterationLatency> latency_violations(
    const Trace& trace, support::VirtualSeconds threshold);

/// Mean time between consecutive iteration completions (the paper's
/// "period"); 0 when fewer than two iterations were traced.
support::VirtualSeconds mean_period(const Trace& trace);

/// Total bytes moved through the fabric, from send events.
std::uint64_t total_transfer_bytes(const Trace& trace);

/// Aggregated traffic of one logical buffer (fabric sends + local
/// buffer copies, grouped by the buffer's label).
struct TransferStats {
  std::string label;
  int fabric_messages = 0;
  std::uint64_t fabric_bytes = 0;
  int local_copies = 0;
  std::uint64_t local_bytes = 0;
  support::VirtualSeconds total_time = 0.0;  // send + copy busy time
};

/// Per-buffer traffic breakdown, ordered by total bytes descending --
/// the Visualizer view for spotting communication hot spots.
std::vector<TransferStats> transfer_stats(const Trace& trace);

/// ASCII timeline: one row per node, time bucketed into `columns` cells,
/// '#' busy / '.' idle -- the terminal stand-in for the Visualizer GUI.
std::string ascii_timeline(const Trace& trace, int columns = 72);

/// Human-readable report combining the analyses above.
std::string summary_report(const Trace& trace);

}  // namespace sage::viz
