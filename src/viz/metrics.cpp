#include "viz/metrics.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace sage::viz {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

const MetricValue* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricValue& v : series) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

const MetricValue* MetricsSnapshot::find(
    std::string_view name,
    const std::vector<std::pair<std::string, std::string>>& labels) const {
  for (const MetricValue& v : series) {
    if (v.name == name && v.labels == labels) return &v;
  }
  return nullptr;
}

MetricsSnapshot MetricsSnapshot::deterministic_subset() const {
  MetricsSnapshot out;
  for (const MetricValue& v : series) {
    if (!v.time_based) out.series.push_back(v);
  }
  return out;
}

MetricsRegistry::MetricsRegistry(int shards) {
  SAGE_CHECK(shards > 0, "metrics registry needs at least one shard, got ",
             shards);
  shards_.resize(static_cast<std::size_t>(shards));
}

int MetricsRegistry::define(MetricSpec spec) {
  SAGE_CHECK(!spec.name.empty(), "metric needs a name");
  SAGE_CHECK(!lookup(spec.name, spec.labels).has_value(),
             "metric '", spec.name, "' already defined with these labels");
  if (spec.kind == MetricKind::kHistogram) {
    SAGE_CHECK(!spec.buckets.empty(), "histogram '", spec.name,
               "' needs at least one bucket bound");
    SAGE_CHECK(std::is_sorted(spec.buckets.begin(), spec.buckets.end()) &&
                   std::adjacent_find(spec.buckets.begin(),
                                      spec.buckets.end()) == spec.buckets.end(),
               "histogram '", spec.name,
               "' bucket bounds must be strictly increasing");
  } else {
    SAGE_CHECK(spec.buckets.empty(), "metric '", spec.name,
               "' is not a histogram; buckets make no sense");
  }
  const int id = static_cast<int>(specs_.size());
  for (auto& shard : shards_) {
    Cell cell;
    if (spec.kind == MetricKind::kHistogram) {
      cell.bucket_counts.assign(spec.buckets.size() + 1, 0);  // + Inf bucket
    }
    shard.push_back(std::move(cell));
  }
  specs_.push_back(std::move(spec));
  return id;
}

int MetricsRegistry::counter(
    std::string name, std::string help,
    std::vector<std::pair<std::string, std::string>> labels, bool time_based) {
  MetricSpec spec;
  spec.name = std::move(name);
  spec.help = std::move(help);
  spec.kind = MetricKind::kCounter;
  spec.labels = std::move(labels);
  spec.time_based = time_based;
  return define(std::move(spec));
}

int MetricsRegistry::gauge(
    std::string name, std::string help, Aggregation aggregation,
    std::vector<std::pair<std::string, std::string>> labels, bool time_based) {
  MetricSpec spec;
  spec.name = std::move(name);
  spec.help = std::move(help);
  spec.kind = MetricKind::kGauge;
  spec.aggregation = aggregation;
  spec.labels = std::move(labels);
  spec.time_based = time_based;
  return define(std::move(spec));
}

int MetricsRegistry::histogram(
    std::string name, std::string help, std::vector<double> buckets,
    std::vector<std::pair<std::string, std::string>> labels, bool time_based) {
  MetricSpec spec;
  spec.name = std::move(name);
  spec.help = std::move(help);
  spec.kind = MetricKind::kHistogram;
  spec.labels = std::move(labels);
  spec.buckets = std::move(buckets);
  spec.time_based = time_based;
  return define(std::move(spec));
}

std::optional<int> MetricsRegistry::lookup(
    std::string_view name,
    const std::vector<std::pair<std::string, std::string>>& labels) const {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == name && specs_[i].labels == labels) {
      return static_cast<int>(i);
    }
  }
  return std::nullopt;
}

void MetricsRegistry::add(int shard, int id, double delta) {
  Cell& cell = shards_[static_cast<std::size_t>(shard)]
                       [static_cast<std::size_t>(id)];
  cell.value += delta;
  cell.touched = true;
}

void MetricsRegistry::set(int shard, int id, double value) {
  Cell& cell = shards_[static_cast<std::size_t>(shard)]
                       [static_cast<std::size_t>(id)];
  cell.value = value;
  cell.touched = true;
}

void MetricsRegistry::observe(int shard, int id, double value) {
  const MetricSpec& spec = specs_[static_cast<std::size_t>(id)];
  Cell& cell = shards_[static_cast<std::size_t>(shard)]
                       [static_cast<std::size_t>(id)];
  const auto it =
      std::lower_bound(spec.buckets.begin(), spec.buckets.end(), value);
  ++cell.bucket_counts[static_cast<std::size_t>(
      it - spec.buckets.begin())];
  ++cell.count;
  cell.sum += value;
  cell.touched = true;
}

void MetricsRegistry::reset() {
  for (auto& shard : shards_) {
    for (Cell& cell : shard) {
      cell.value = 0.0;
      cell.touched = false;
      std::fill(cell.bucket_counts.begin(), cell.bucket_counts.end(), 0);
      cell.count = 0;
      cell.sum = 0.0;
    }
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  out.series.reserve(specs_.size());
  for (std::size_t id = 0; id < specs_.size(); ++id) {
    const MetricSpec& spec = specs_[id];
    MetricValue v;
    v.name = spec.name;
    v.help = spec.help;
    v.kind = spec.kind;
    v.labels = spec.labels;
    v.time_based = spec.time_based;
    if (spec.kind == MetricKind::kHistogram) {
      v.histogram.bounds = spec.buckets;
      v.histogram.counts.assign(spec.buckets.size() + 1, 0);
      for (const auto& shard : shards_) {
        const Cell& cell = shard[id];
        for (std::size_t b = 0; b < cell.bucket_counts.size(); ++b) {
          v.histogram.counts[b] += cell.bucket_counts[b];
        }
        v.histogram.count += cell.count;
        v.histogram.sum += cell.sum;
      }
    } else {
      bool any = false;
      for (const auto& shard : shards_) {
        const Cell& cell = shard[id];
        if (spec.aggregation == Aggregation::kSum) {
          v.value += cell.value;
          continue;
        }
        if (!cell.touched) continue;  // kMax/kMin: only written shards vote
        if (!any) {
          v.value = cell.value;
        } else if (spec.aggregation == Aggregation::kMax) {
          v.value = std::max(v.value, cell.value);
        } else {
          v.value = std::min(v.value, cell.value);
        }
        any = true;
      }
    }
    out.series.push_back(std::move(v));
  }
  return out;
}

}  // namespace sage::viz
