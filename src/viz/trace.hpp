// openSAGE -- Visualizer substrate: instrumentation probes and traces.
//
// The generated glue code places probes around function execution and
// message transfers; the Visualizer consumes the merged trace to draw
// timelines and find bottlenecks and latency violations. Event times are
// virtual seconds (see support/clock.hpp).
//
// Threading model: each emulated node owns one EventBuffer and appends
// to it without locking; TraceCollector::merge is called after the run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/clock.hpp"

namespace sage::viz {

enum class EventKind : std::uint8_t {
  kFunctionStart,
  kFunctionEnd,
  kSend,
  kReceive,
  kBufferCopy,
  kIterationStart,
  kIterationEnd,
  kMarker,
  kFault,     // injected fault observed (drop/corrupt/delay/stall)
  kRetry,     // retransmit issued after a detected loss/corruption
  kRecovery,  // degraded-mode remap (dead node, work moved to survivors)
};

const char* to_string(EventKind kind);

struct Event {
  EventKind kind = EventKind::kMarker;
  int node = 0;
  int function_id = -1;   // function-table id (-1: none)
  int thread = 0;         // thread within the function
  int iteration = 0;
  support::VirtualSeconds start_vt = 0.0;
  support::VirtualSeconds end_vt = 0.0;  // == start_vt for instant events
  std::uint64_t bytes = 0;               // transfers / copies
  std::string label;                     // function or buffer name
};

/// Per-node append-only event log.
class EventBuffer {
 public:
  explicit EventBuffer(int node) : node_(node) {}

  int node() const { return node_; }

  void record(Event event) {
    event.node = node_;
    events_.push_back(std::move(event));
  }

  const std::vector<Event>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  int node_;
  std::vector<Event> events_;
};

/// Merged, time-ordered trace of one run.
class Trace {
 public:
  Trace() = default;

  /// Merges buffers and sorts by start time (stable across equal times).
  static Trace merge(const std::vector<const EventBuffer*>& buffers);

  const std::vector<Event>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  std::vector<Event> events_of_kind(EventKind kind) const;

  /// Chrome trace-event JSON (open in a trace viewer).
  std::string to_chrome_json() const;

  /// Flat CSV: kind,node,function_id,thread,iteration,start,end,bytes,label.
  /// The label is the trailing field: embedded commas pass through
  /// verbatim (the reader rejoins everything after the eighth comma) and
  /// newlines/tabs/quotes/backslashes are escaped with support::escape so
  /// one event always stays one line. Times are written with max_digits10
  /// precision; to_csv -> from_csv round-trips bit-identically.
  std::string to_csv() const;

  /// Parses to_csv output back into a trace (offline analysis); throws
  /// sage::Error on malformed input.
  static Trace from_csv(std::string_view csv);

 private:
  std::vector<Event> events_;
};

}  // namespace sage::viz
