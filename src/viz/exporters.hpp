// openSAGE -- Visualizer exporters: the formats the observability layer
// speaks to the outside world.
//
//   - Chrome trace JSON lives on Trace::to_chrome_json() (timeline
//     viewers);
//   - prometheus_text() is the Prometheus text exposition format v0.0.4
//     (scrapers and offline diffing);
//   - metrics_csv() is a flat spreadsheet-friendly dump;
//   - report() is the human summary the paper's Visualizer GUI stood
//     for: bottleneck, node utilization, latency violations, fabric hot
//     links, and fault/recovery counters in one page.
#pragma once

#include <string>

#include "viz/analysis.hpp"
#include "viz/metrics.hpp"
#include "viz/trace.hpp"

namespace sage::viz {

/// Prometheus text exposition: one `# HELP`/`# TYPE` header per family,
/// one sample line per series (histograms expand to _bucket/_sum/_count).
/// Numbers are written with max_digits10 precision so exports diff
/// cleanly.
std::string prometheus_text(const MetricsSnapshot& metrics);

/// Flat CSV: name,labels,kind,field,value -- histograms emit one row per
/// bucket (`le:<bound>`) plus `sum` and `count` rows.
std::string metrics_csv(const MetricsSnapshot& metrics);

struct ReportOptions {
  /// Latency threshold for the violation section; 0 disables it.
  support::VirtualSeconds latency_threshold = 0.0;
  /// Columns of the ASCII timeline; 0 omits the timeline.
  int timeline_columns = 72;
  /// At most this many fabric links in the hot-link table.
  int max_links = 8;
};

/// Human-readable observability report over one run: bottleneck, node
/// utilization, iteration latencies and threshold violations, fabric
/// hot links, and the fault/recovery summary. Degenerate traces (no
/// function events, no iterations) degrade to explanatory lines instead
/// of crashing.
std::string report(const Trace& trace, const MetricsSnapshot& metrics,
                   const ReportOptions& options = {});

}  // namespace sage::viz
