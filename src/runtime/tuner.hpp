// openSAGE -- runtime::Tuner: online AToT, the closed perf loop.
//
// The paper's AToT mapper optimizes placement against *static* cost
// estimates. The Tuner closes the measure -> re-map -> hot-swap loop
// over a live Session (cf. DaCe's measure/transform/re-run discipline):
//
//   observe()  folds each run's MetricsSnapshot -- per-function busy
//              seconds, per-link bytes, invocation counts -- into the
//              current measurement window;
//   step()     turns the window into an atot::CalibrationProfile,
//              calibrates the mapping problem (replacing static
//              work_flops / traffic estimates with observed costs, see
//              atot::CostModel::calibrate), re-runs genetic_mapping
//              seeded from the incumbent placement, and -- when the
//              predicted objective gain clears TunerOptions::hysteresis
//              -- recompiles through Compiler/PlanCache and hot-swaps
//              the improved program into the Session via
//              Session::swap_program() (quiesce-and-swap: tickets
//              survive, warm buffers re-prewarmed).
//
// Determinism: the GA seed of step k is a pure function of
// (TunerOptions::seed, k), so given the same sequence of calibration
// profiles every re-mapping decision and swap point is bit-reproducible
// across fresh and warm sessions. The tuner's own metric families
// (sage_tune_steps_total{outcome=}, sage_tune_predicted_gain_ratio,
// sage_tune_swap_seconds) are all time-based -- they narrate the loop,
// they never enter the deterministic snapshot subset.
//
// Threading: drive one Tuner from one thread. That thread MAY be a
// dedicated tuner thread racing the Session's owning host thread, as
// long as the host thread limits itself to poll()/wait()/drain() while
// a step() is in flight (the Session::swap_program contract).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "atot/cost_model.hpp"
#include "atot/mapper.hpp"
#include "runtime/session.hpp"
#include "viz/metrics.hpp"

namespace sage::runtime {

/// What one Tuner::step() decided, and why.
struct TuneStepReport {
  int step = 0;
  /// "swap" (improvement cleared hysteresis, program hot-swapped),
  /// "hold" (re-mapped but kept the incumbent), or "skip" (no profile
  /// observed since the last step).
  std::string outcome = "skip";
  /// Calibrated objective of the incumbent placement.
  double incumbent_objective = 0.0;
  /// Calibrated objective of the GA's best candidate.
  double candidate_objective = 0.0;
  /// (incumbent - candidate) / incumbent; compared against hysteresis.
  double predicted_gain_ratio = 0.0;
  /// Host wall seconds of recompile + hot-swap (0 unless "swap").
  double swap_seconds = 0.0;
  /// Function threads whose node changed (0 unless "swap").
  int moved_threads = 0;
  /// Plan-cache verdict of the swap recompile.
  PlanCacheOutcome cache_outcome = PlanCacheOutcome::kNotConsulted;

  bool swapped() const { return outcome == "swap"; }
};

/// Rebuilds a program's GlueConfig for a new task placement: thread_nodes
/// from `assignment` (task order = (function id, thread), matching
/// CompiledProgram::fn_thread_base), per-node schedules re-emitted in
/// function-id order (the code generator's order, same as recover()).
/// The function table itself is untouched, so the result is
/// Session::swap_program-compatible with `program`.
GlueConfig remapped_config(const CompiledProgram& program,
                           const atot::Assignment& assignment);

class Tuner {
 public:
  /// Builds the (static-cost) mapping problem skeleton from the
  /// session's compiled program: one task per (function id, thread),
  /// staging memory from the program's port bindings, traffic from the
  /// compiled transfer program (placement-invariant thread-pair
  /// volumes), fabric and cpu_scales from the session's resolved
  /// options. `registry` is held for the hot-swap recompiles.
  Tuner(Session& session, const FunctionRegistry& registry,
        TunerOptions options = {}, atot::ObjectiveWeights weights = {});

  /// Folds one measured run into the current window (busy seconds,
  /// invocations, link bytes, iterations). Synchronous run() stats give
  /// exact per-window link profiles; overlapped-ticket stats are
  /// epoch-cumulative (see Session), so streamed drivers should observe
  /// only the last ticket of each window.
  void observe(const RunStats& stats);
  /// Test/offline hook: fold an already-built profile into the window
  /// (its measured_assignment is ignored; the incumbent's is used).
  void observe(atot::CalibrationProfile profile);

  /// One tuning decision over the accumulated window; clears the window.
  TuneStepReport step();

  /// The placement the session currently executes (task -> node),
  /// re-read from the live program each step.
  const atot::Assignment& incumbent() const { return incumbent_; }
  /// The mapping problem, calibrated as of the last step().
  const atot::MappingProblem& problem() const { return cost_.problem(); }
  atot::CostModel& cost_model() { return cost_; }

  int steps() const { return steps_; }
  int swaps() const { return swaps_; }

  /// The tuner's own metric series (the three sage_tune_* families),
  /// cumulative since construction. Merge into a run snapshot for
  /// viz::report's "tuning" section.
  viz::MetricsSnapshot snapshot() const { return metrics_.snapshot(); }

 private:
  atot::Assignment read_incumbent_() const;
  atot::CalibrationProfile window_profile_() const;

  Session* session_;
  const FunctionRegistry* registry_;
  TunerOptions options_;
  atot::ObjectiveWeights weights_;
  atot::CostModel cost_;
  atot::Assignment incumbent_;

  // Measurement window, cleared by step().
  std::map<std::string, double> window_busy_;
  std::map<std::string, double> window_calls_;
  std::map<std::pair<int, int>, double> window_link_bytes_;
  int window_iterations_ = 0;
  bool window_has_samples_ = false;

  viz::MetricsRegistry metrics_{1};
  int steps_swap_id_ = -1;
  int steps_hold_id_ = -1;
  int steps_skip_id_ = -1;
  int gain_id_ = -1;
  int swap_seconds_id_ = -1;

  int steps_ = 0;
  int swaps_ = 0;
};

}  // namespace sage::runtime
