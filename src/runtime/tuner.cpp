#include "runtime/tuner.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "net/fabric_model.hpp"
#include "runtime/compiler.hpp"
#include "support/clock.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sage::runtime {

namespace fam = viz::families;

namespace {

const std::string* label_of(const viz::MetricValue& v, const char* key) {
  for (const auto& [k, value] : v.labels) {
    if (k == key) return &value;
  }
  return nullptr;
}

/// The static problem skeleton: tasks and traffic in the flat
/// (function id, thread) order of CompiledProgram::fn_thread_base, so
/// assignments translate 1:1 into thread_nodes. Everything here is
/// placement-invariant -- the thread-pair transfer volumes come from
/// the striping plans, not from where threads currently sit.
atot::MappingProblem problem_skeleton(const Session& session) {
  const CompiledProgram& program = session.program();
  const GlueConfig& config = program.config;

  atot::MappingProblem problem;
  problem.fabric = session.options().fabric.value_or(net::myrinet_fabric());
  // CostModel's constructor immediately rewrites proc_flops scale-aware.
  problem.proc_flops.assign(static_cast<std::size_t>(config.nodes),
                            atot::kCalibratedUnitFlops);
  // The emulated nodes never bound staging memory; leave capacity
  // unconstrained (0) rather than inventing a budget calibration cannot
  // observe.
  problem.proc_mem_bytes.assign(static_cast<std::size_t>(config.nodes), 0);
  problem.proc_dead = session.dead_nodes();

  problem.tasks.resize(program.bindings_of.size());
  for (const FunctionConfig& fn : config.functions) {
    for (int t = 0; t < fn.threads; ++t) {
      const int id =
          program.fn_thread_base[static_cast<std::size_t>(fn.id)] + t;
      atot::Task& task = problem.tasks[static_cast<std::size_t>(id)];
      task.id = id;
      task.function = fn.name;
      task.thread = t;
      task.work_flops = 0.0;  // unknown until the first calibration
      std::size_t mem = 0;
      for (const PortBinding& b :
           program.bindings_of[static_cast<std::size_t>(id)]) {
        std::size_t elems = 1;
        for (const std::size_t d : b.local_dims) elems *= d;
        mem += elems * b.elem_bytes;
      }
      task.mem_bytes = mem;
      task.is_source = (fn.role == "source");
      task.is_sink = (fn.role == "sink");
    }
  }

  problem.traffic.reserve(program.ops.size());
  for (const TransferOp& op : program.ops) {
    atot::Traffic edge;
    edge.src_task =
        program.fn_thread_base[static_cast<std::size_t>(op.src_function)] +
        op.src_thread;
    edge.dst_task =
        program.fn_thread_base[static_cast<std::size_t>(op.dst_function)] +
        op.dst_thread;
    edge.bytes = op.bytes;
    problem.traffic.push_back(edge);
  }
  return problem;
}

}  // namespace

GlueConfig remapped_config(const CompiledProgram& program,
                           const atot::Assignment& assignment) {
  SAGE_CHECK(assignment.size() == program.bindings_of.size(),
             "remapped_config: assignment has ", assignment.size(),
             " genes for ", program.bindings_of.size(), " threads");
  GlueConfig config = program.config;
  for (FunctionConfig& fn : config.functions) {
    for (int t = 0; t < fn.threads; ++t) {
      fn.thread_nodes[static_cast<std::size_t>(t)] = assignment
          [static_cast<std::size_t>(
              program.fn_thread_base[static_cast<std::size_t>(fn.id)] + t)];
    }
  }
  // Re-emit the per-node schedules the way the code generator does:
  // function-table ids in id order, filtered to the node (the same rule
  // Session::recover() applies).
  config.schedule.clear();
  for (int r = 0; r < config.nodes; ++r) {
    std::vector<int> order;
    for (const FunctionConfig& fn : config.functions) {
      if (std::find(fn.thread_nodes.begin(), fn.thread_nodes.end(), r) !=
          fn.thread_nodes.end()) {
        order.push_back(fn.id);
      }
    }
    if (!order.empty()) config.schedule[r] = std::move(order);
  }
  return config;
}

Tuner::Tuner(Session& session, const FunctionRegistry& registry,
             TunerOptions options, atot::ObjectiveWeights weights)
    : session_(&session),
      registry_(&registry),
      options_(options),
      weights_(weights),
      cost_(problem_skeleton(session), session.options().cpu_scales),
      incumbent_(read_incumbent_()) {
  steps_swap_id_ =
      metrics_.counter(fam::kTuneSteps, "Tuning steps by outcome.",
                       {{"outcome", "swap"}}, /*time_based=*/true);
  steps_hold_id_ =
      metrics_.counter(fam::kTuneSteps, "Tuning steps by outcome.",
                       {{"outcome", "hold"}}, /*time_based=*/true);
  steps_skip_id_ =
      metrics_.counter(fam::kTuneSteps, "Tuning steps by outcome.",
                       {{"outcome", "skip"}}, /*time_based=*/true);
  gain_id_ = metrics_.gauge(
      fam::kTunePredictedGain,
      "Predicted objective gain ratio of the last re-mapping step.",
      viz::Aggregation::kMax, {}, /*time_based=*/true);
  swap_seconds_id_ = metrics_.counter(
      fam::kTuneSwapSeconds,
      "Host wall seconds spent recompiling and hot-swapping programs.", {},
      /*time_based=*/true);
}

atot::Assignment Tuner::read_incumbent_() const {
  const CompiledProgram& program = session_->program();
  atot::Assignment assignment(program.bindings_of.size(), 0);
  for (const FunctionConfig& fn : program.config.functions) {
    for (int t = 0; t < fn.threads; ++t) {
      assignment[static_cast<std::size_t>(
          program.fn_thread_base[static_cast<std::size_t>(fn.id)] + t)] =
          fn.thread_nodes[static_cast<std::size_t>(t)];
    }
  }
  return assignment;
}

void Tuner::observe(const RunStats& stats) {
  for (const viz::MetricValue& v : stats.metrics.series) {
    if (v.name == fam::kFunctionBusySeconds) {
      const std::string* function = label_of(v, "function");
      if (function != nullptr && v.value > 0.0) {
        window_busy_[*function] += v.value;
        window_has_samples_ = true;
      }
    } else if (v.name == fam::kFunctionInvocations) {
      const std::string* function = label_of(v, "function");
      if (function != nullptr) window_calls_[*function] += v.value;
    } else if (v.name == fam::kLinkBytes) {
      const std::string* src = label_of(v, "src");
      const std::string* dst = label_of(v, "dst");
      if (src != nullptr && dst != nullptr && v.value > 0.0) {
        window_link_bytes_[{std::atoi(src->c_str()),
                            std::atoi(dst->c_str())}] += v.value;
      }
    }
  }
  window_iterations_ += stats.iterations;
}

void Tuner::observe(atot::CalibrationProfile profile) {
  for (const atot::CalibrationProfile::FunctionSample& s : profile.functions) {
    if (s.busy_seconds > 0.0) {
      window_busy_[s.function] += s.busy_seconds;
      window_has_samples_ = true;
    }
    if (s.invocations > 0.0) window_calls_[s.function] += s.invocations;
  }
  for (const atot::CalibrationProfile::LinkSample& s : profile.links) {
    if (s.bytes > 0.0) window_link_bytes_[{s.src_node, s.dst_node}] += s.bytes;
  }
  window_iterations_ += profile.iterations;
}

atot::CalibrationProfile Tuner::window_profile_() const {
  atot::CalibrationProfile profile;
  profile.functions.reserve(window_busy_.size());
  for (const auto& [function, busy] : window_busy_) {
    atot::CalibrationProfile::FunctionSample sample;
    sample.function = function;
    sample.busy_seconds = busy;
    const auto calls = window_calls_.find(function);
    sample.invocations = calls != window_calls_.end() ? calls->second : 0.0;
    profile.functions.push_back(std::move(sample));
  }
  profile.links.reserve(window_link_bytes_.size());
  for (const auto& [key, bytes] : window_link_bytes_) {
    atot::CalibrationProfile::LinkSample sample;
    sample.src_node = key.first;
    sample.dst_node = key.second;
    sample.bytes = bytes;
    profile.links.push_back(sample);
  }
  profile.iterations = std::max(1, window_iterations_);
  return profile;
}

TuneStepReport Tuner::step() {
  TuneStepReport report;
  report.step = ++steps_;
  // Re-read the live placement: recover() (or an earlier swap) may have
  // moved threads since the last step.
  incumbent_ = read_incumbent_();

  if (!window_has_samples_) {
    report.outcome = "skip";
    metrics_.add(0, steps_skip_id_, 1.0);
    return report;
  }

  atot::CalibrationProfile profile = window_profile_();
  profile.measured_assignment = incumbent_;
  cost_.problem().proc_dead = session_->dead_nodes();
  cost_.calibrate(profile);

  report.incumbent_objective =
      atot::evaluate(cost_.problem(), incumbent_, weights_).objective;

  atot::GeneticOptions ga;
  ga.weights = weights_;
  ga.seeds.push_back(incumbent_);
  // Per-step GA seed: a pure function of (options.seed, step index), so
  // the decision sequence is bit-reproducible for a given profile
  // sequence regardless of session warmth.
  std::uint64_t state =
      options_.seed + 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(
                                                  report.step);
  ga.seed = support::splitmix64(state);
  if (options_.population > 0) ga.population = options_.population;
  if (options_.generations > 0) ga.generations = options_.generations;
  const atot::GeneticResult result = atot::genetic_mapping(cost_.problem(), ga);

  report.candidate_objective = result.cost.objective;
  report.predicted_gain_ratio =
      report.incumbent_objective > 0.0
          ? (report.incumbent_objective - report.candidate_objective) /
                report.incumbent_objective
          : 0.0;
  metrics_.set(0, gain_id_, report.predicted_gain_ratio);

  if (report.predicted_gain_ratio > options_.hysteresis &&
      result.best != incumbent_) {
    const double swap_start = support::wall_seconds();
    std::shared_ptr<const CompiledProgram> next =
        compile_or_load(remapped_config(session_->program(), result.best),
                        *registry_, session_->options().plan_cache_dir);
    report.cache_outcome = next->cache_outcome;
    for (std::size_t t = 0; t < incumbent_.size(); ++t) {
      if (incumbent_[t] != result.best[t]) ++report.moved_threads;
    }
    session_->swap_program(std::move(next));
    report.swap_seconds = support::wall_seconds() - swap_start;
    report.outcome = "swap";
    incumbent_ = result.best;
    ++swaps_;
    metrics_.add(0, steps_swap_id_, 1.0);
    metrics_.add(0, swap_seconds_id_, report.swap_seconds);
  } else {
    report.outcome = "hold";
    metrics_.add(0, steps_hold_id_, 1.0);
  }

  window_busy_.clear();
  window_calls_.clear();
  window_link_bytes_.clear();
  window_iterations_ = 0;
  window_has_samples_ = false;
  return report;
}

}  // namespace sage::runtime
