#include "runtime/compiler.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "support/clock.hpp"
#include "support/error.hpp"

namespace sage::runtime {

namespace {

constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a_accum(std::uint64_t h, std::string_view bytes) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Message tag for one (buffer, src thread, dst thread) channel. The
/// validated limits (64 buffers, 8 threads) keep this below the user-tag
/// ceiling of 4096.
int transfer_tag(int buffer_id, int src_thread, int dst_thread) {
  return buffer_id * 64 + src_thread * 8 + dst_thread;
}

int port_index(const FunctionConfig& fn, const std::string& name) {
  for (std::size_t i = 0; i < fn.ports.size(); ++i) {
    if (fn.ports[i].name == name) return static_cast<int>(i);
  }
  return -1;  // unreachable: config.validate() checked the port exists
}

/// Lowers the validated config into `program` (everything except
/// provenance): planned buffers, adjacency, interned slot ids, the flat
/// transfer program, and the kernel port bindings. Field-for-field the
/// plan the Session used to build privately -- op order, share-group
/// chaining, and slot numbering are part of the determinism contract.
void lower_into(CompiledProgram& program) {
  const GlueConfig& config = program.config;

  program.buffers.clear();
  program.in_of_fn.assign(config.functions.size(), {});
  program.out_of_fn.assign(config.functions.size(), {});
  for (const BufferConfig& buf : config.buffers) {
    const FunctionConfig& src_fn = config.function(buf.src_function);
    const FunctionConfig& dst_fn = config.function(buf.dst_function);
    const PortConfig& src_port = src_fn.port(buf.src_port);

    PlannedBuffer planned;
    planned.id = buf.id;
    planned.src_function = buf.src_function;
    planned.dst_function = buf.dst_function;
    planned.src_port = buf.src_port;
    planned.dst_port = buf.dst_port;
    planned.elem_bytes = src_port.elem_bytes;
    planned.src_spec = config.stripe_spec(src_fn, src_port);
    planned.dst_spec = config.stripe_spec(dst_fn, dst_fn.port(buf.dst_port));
    planned.plan = build_transfer_plan(planned.src_spec, planned.dst_spec);
    planned.label = src_fn.name + "." + buf.src_port + "->" + dst_fn.name +
                    "." + buf.dst_port;
    program.buffers.push_back(std::move(planned));

    program.in_of_fn[static_cast<std::size_t>(buf.dst_function)].push_back(
        buf.id);
    program.out_of_fn[static_cast<std::size_t>(buf.src_function)].push_back(
        buf.id);
  }

  const auto nfn = config.functions.size();
  program.slot_base.assign(nfn, 0);
  program.fn_thread_base.assign(nfn, 0);
  int slots = 0;
  int ftis = 0;
  for (const FunctionConfig& fn : config.functions) {
    program.slot_base[static_cast<std::size_t>(fn.id)] = slots;
    slots += fn.threads * static_cast<int>(fn.ports.size());
    program.fn_thread_base[static_cast<std::size_t>(fn.id)] = ftis;
    ftis += fn.threads;
  }
  program.total_staging_slots = slots;

  program.bindings_of.assign(static_cast<std::size_t>(ftis), {});
  for (const FunctionConfig& fn : config.functions) {
    for (int t = 0; t < fn.threads; ++t) {
      std::vector<PortBinding>& binds =
          program.bindings_of[static_cast<std::size_t>(
              program.fn_thread_base[static_cast<std::size_t>(fn.id)] + t)];
      binds.clear();
      binds.reserve(fn.ports.size());
      for (std::size_t p = 0; p < fn.ports.size(); ++p) {
        const PortConfig& port = fn.ports[p];
        const StripeSpec spec = config.stripe_spec(fn, port);
        PortBinding b;
        b.name = port.name;
        b.slot = program.slot_base[static_cast<std::size_t>(fn.id)] +
                 t * static_cast<int>(fn.ports.size()) + static_cast<int>(p);
        b.elem_bytes = port.elem_bytes;
        b.local_dims = spec.local_dims();
        b.global_dims = port.dims;
        b.runs = slice_runs(spec, t);
        b.is_input = port.direction == model::PortDirection::kIn;
        binds.push_back(std::move(b));
      }
    }
  }

  program.ops.clear();
  program.recv_ops_of.assign(static_cast<std::size_t>(ftis), {});
  program.send_ops_of.assign(static_cast<std::size_t>(ftis), {});
  int next_group = 0;
  for (const PlannedBuffer& buf : program.buffers) {
    const FunctionConfig& src_fn = config.function(buf.src_function);
    const FunctionConfig& dst_fn = config.function(buf.dst_function);
    const int src_port_idx = port_index(src_fn, buf.src_port);
    const int dst_port_idx = port_index(dst_fn, buf.dst_port);
    // Previous remote op of the current producer thread (fan-out-share
    // chaining; plan order keeps one producer's pairs adjacent).
    int chain = -1;
    int chain_thread = -1;
    for (const ThreadPairTransfer& pair : buf.plan) {
      TransferOp op;
      op.buf = buf.id;
      op.tag = transfer_tag(buf.id, pair.src_thread, pair.dst_thread);
      op.src_function = buf.src_function;
      op.dst_function = buf.dst_function;
      op.src_thread = pair.src_thread;
      op.dst_thread = pair.dst_thread;
      op.src_node =
          src_fn.thread_nodes[static_cast<std::size_t>(pair.src_thread)];
      op.dst_node =
          dst_fn.thread_nodes[static_cast<std::size_t>(pair.dst_thread)];
      op.bytes = pair.total_elems() * buf.elem_bytes;
      op.contiguous = pair.segments.size() == 1;
      op.segs.reserve(pair.segments.size());
      std::size_t cursor = 0;
      for (const Segment& seg : pair.segments) {
        ByteSeg bs;
        bs.src_off = seg.src_offset * buf.elem_bytes;
        bs.dst_off = seg.dst_offset * buf.elem_bytes;
        bs.packed_off = cursor;
        bs.len = seg.length * buf.elem_bytes;
        cursor += bs.len;
        op.segs.push_back(bs);
      }
      op.src_slot = program.slot_base[static_cast<std::size_t>(src_fn.id)] +
                    pair.src_thread * static_cast<int>(src_fn.ports.size()) +
                    src_port_idx;
      op.dst_slot = program.slot_base[static_cast<std::size_t>(dst_fn.id)] +
                    pair.dst_thread * static_cast<int>(dst_fn.ports.size()) +
                    dst_port_idx;
      op.logical_slot = static_cast<int>(program.ops.size());

      if (pair.src_thread != chain_thread) {
        chain = -1;
        chain_thread = pair.src_thread;
      }
      if (op.src_node != op.dst_node) {
        if (chain >= 0) {
          TransferOp& prev = program.ops[static_cast<std::size_t>(chain)];
          const bool same_gather =
              prev.segs.size() == op.segs.size() &&
              std::equal(prev.segs.begin(), prev.segs.end(), op.segs.begin(),
                         [](const ByteSeg& a, const ByteSeg& b) {
                           return a.src_off == b.src_off && a.len == b.len;
                         });
          if (same_gather) {
            if (prev.share_group < 0) prev.share_group = next_group++;
            op.share_group = prev.share_group;
          }
        }
        chain = static_cast<int>(program.ops.size());
      }

      const int src_fti =
          program.fn_thread_base[static_cast<std::size_t>(src_fn.id)] +
          pair.src_thread;
      const int dst_fti =
          program.fn_thread_base[static_cast<std::size_t>(dst_fn.id)] +
          pair.dst_thread;
      program.send_ops_of[static_cast<std::size_t>(src_fti)].push_back(
          static_cast<int>(program.ops.size()));
      if (op.src_node != op.dst_node) {
        program.recv_ops_of[static_cast<std::size_t>(dst_fti)].push_back(
            static_cast<int>(program.ops.size()));
      }
      program.ops.push_back(std::move(op));
    }
  }
  program.total_logical_slots = static_cast<int>(program.ops.size());

  // Static streaming buffer bound per channel (cf. the SDF-AP buffer
  // sizing results): a producer k topological levels upstream of its
  // consumer can usefully run k iterations ahead before the data would
  // just queue, so the ring depth is 1 + the level distance, clamped to
  // [2, 4] -- at least double-buffered so overlap is possible at all,
  // and bounded so staging memory stays proportional to the graph
  // depth, not the stream length.
  std::vector<int> level(nfn, 0);
  std::vector<int> indeg(nfn, 0);
  for (const PlannedBuffer& buf : program.buffers) {
    ++indeg[static_cast<std::size_t>(buf.dst_function)];
  }
  std::vector<int> ready;
  for (std::size_t f = 0; f < nfn; ++f) {
    if (indeg[f] == 0) ready.push_back(static_cast<int>(f));
  }
  // Kahn order over function ids; on a cyclic config (rejected upstream
  // by validate(), but be safe) unprocessed nodes keep level 0 and every
  // op falls back to the minimum double-buffered depth.
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const int fn = ready[head];
    for (const int buf_id : program.out_of_fn[static_cast<std::size_t>(fn)]) {
      const int dst = program.buffers[static_cast<std::size_t>(buf_id)]
                          .dst_function;
      level[static_cast<std::size_t>(dst)] =
          std::max(level[static_cast<std::size_t>(dst)],
                   level[static_cast<std::size_t>(fn)] + 1);
      if (--indeg[static_cast<std::size_t>(dst)] == 0) ready.push_back(dst);
    }
  }
  for (TransferOp& op : program.ops) {
    const int distance = level[static_cast<std::size_t>(op.dst_function)] -
                         level[static_cast<std::size_t>(op.src_function)];
    op.ring_depth = std::clamp(1 + distance, 2, 4);
  }
}

}  // namespace

std::uint64_t registry_fingerprint(const FunctionRegistry& registry) {
  std::uint64_t h = kFnvOffsetBasis;
  for (const std::string& name : registry.names()) {
    h = fnv1a_accum(h, name);
    h = fnv1a_accum(h, "\n");
  }
  return h;
}

std::uint64_t Compiler::fingerprint(const GlueConfig& config,
                                    const FunctionRegistry& registry) {
  std::uint64_t h = kFnvOffsetBasis;
  h = fnv1a_accum(h, "sage-plan-format ");
  h ^= kPlanFormatVersion;
  h *= kFnvPrime;
  h = fnv1a_accum(h, runtime::serialize(config));
  h ^= registry_fingerprint(registry);
  h *= kFnvPrime;
  return h;
}

std::shared_ptr<const CompiledProgram> Compiler::lower(GlueConfig config) {
  const double start = support::wall_seconds();
  config.validate();
  auto program = std::make_shared<CompiledProgram>();
  program->config = std::move(config);
  lower_into(*program);
  program->compile_seconds = support::wall_seconds() - start;
  return program;
}

std::shared_ptr<const CompiledProgram> Compiler::compile(
    GlueConfig config, const FunctionRegistry& registry) {
  const double start = support::wall_seconds();
  config.validate();
  for (const FunctionConfig& fn : config.functions) {
    registry.lookup(fn.kernel);  // throws when missing
  }
  const std::uint64_t key = fingerprint(config, registry);
  auto program = std::make_shared<CompiledProgram>();
  program->config = std::move(config);
  lower_into(*program);
  program->fingerprint = key;
  program->compile_seconds = support::wall_seconds() - start;
  return program;
}

PlanCache::PlanCache(std::string dir) : dir_(std::move(dir)) {
  SAGE_CHECK_AS(RuntimeError, !dir_.empty(), "PlanCache needs a directory");
}

std::string PlanCache::path_of(std::uint64_t key) const {
  std::ostringstream os;
  os << dir_ << "/" << std::hex << std::setfill('0') << std::setw(16) << key
     << ".plan";
  return os.str();
}

std::shared_ptr<const CompiledProgram> PlanCache::load(
    std::uint64_t key) const {
  std::ifstream in(path_of(key), std::ios::binary);
  if (!in) return nullptr;
  std::ostringstream os;
  os << in.rdbuf();
  const std::string blob = os.str();
  try {
    std::shared_ptr<const CompiledProgram> program =
        CompiledProgram::deserialize(blob);
    // Content addressing: the stored fingerprint must match the file's
    // key, or the entry answers a different question than it was asked.
    if (program->fingerprint != key) return nullptr;
    return program;
  } catch (const std::exception&) {
    return nullptr;  // corrupt/stale entries are misses, not failures
  }
}

bool PlanCache::store(std::uint64_t key, const CompiledProgram& program) const {
  // Content addressing makes stores idempotent: if a valid entry for
  // this key already exists (another thread or process won the race),
  // there is nothing to write -- and skipping keeps "exactly one store"
  // observable under concurrent compile_or_load of the same key.
  if (load(key) != nullptr) return true;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return false;
  const std::string path = path_of(key);
  // The temp name must be writer-unique: a fixed suffix would let two
  // concurrent stores interleave writes into one temp file and rename a
  // corrupted blob into place.
  static std::atomic<std::uint64_t> counter{0};
  std::ostringstream tmp_os;
  tmp_os << path << ".tmp." << ::getpid() << "."
         << counter.fetch_add(1, std::memory_order_relaxed);
  const std::string tmp = tmp_os.str();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    const std::string blob = program.serialize();
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out) return false;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

std::shared_ptr<const CompiledProgram> compile_or_load(
    GlueConfig config, const FunctionRegistry& registry,
    const std::string& plan_cache_dir) {
  if (plan_cache_dir.empty()) {
    return Compiler::compile(std::move(config), registry);
  }
  const double start = support::wall_seconds();
  config.validate();
  const std::uint64_t key = Compiler::fingerprint(config, registry);
  const PlanCache cache(plan_cache_dir);
  if (std::shared_ptr<const CompiledProgram> cached = cache.load(key)) {
    // shared_ptr<const T> aliases are handed out to executors, so the
    // provenance stamp must happen before anyone else sees the object.
    auto hit = std::const_pointer_cast<CompiledProgram>(cached);
    hit->cache_outcome = PlanCacheOutcome::kHit;
    hit->compile_seconds = support::wall_seconds() - start;
    return hit;
  }
  std::shared_ptr<const CompiledProgram> compiled =
      Compiler::compile(std::move(config), registry);
  cache.store(key, *compiled);
  auto miss = std::const_pointer_cast<CompiledProgram>(compiled);
  miss->cache_outcome = PlanCacheOutcome::kMiss;
  miss->compile_seconds = support::wall_seconds() - start;
  return miss;
}

}  // namespace sage::runtime
