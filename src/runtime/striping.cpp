#include "runtime/striping.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace sage::runtime {

std::size_t StripeSpec::total_elems() const {
  std::size_t total = 1;
  for (std::size_t d : dims) total *= d;
  return total;
}

std::size_t StripeSpec::elems_per_thread() const {
  if (striping == model::Striping::kReplicated) return total_elems();
  return total_elems() / static_cast<std::size_t>(threads);
}

std::vector<std::size_t> StripeSpec::local_dims() const {
  std::vector<std::size_t> out = dims;
  if (striping == model::Striping::kStriped) {
    out[static_cast<std::size_t>(stripe_dim)] /=
        static_cast<std::size_t>(threads);
  }
  return out;
}

void StripeSpec::validate() const {
  SAGE_CHECK_AS(RuntimeError, !dims.empty(), "stripe spec has no dims");
  SAGE_CHECK_AS(RuntimeError, threads >= 1, "stripe spec needs >= 1 thread");
  for (std::size_t d : dims) {
    SAGE_CHECK_AS(RuntimeError, d > 0, "stripe spec has a zero dimension");
  }
  if (striping == model::Striping::kStriped) {
    SAGE_CHECK_AS(RuntimeError,
                  stripe_dim >= 0 &&
                      stripe_dim < static_cast<int>(dims.size()),
                  "stripe_dim ", stripe_dim, " out of range");
    const std::size_t dim = dims[static_cast<std::size_t>(stripe_dim)];
    SAGE_CHECK_AS(RuntimeError,
                  dim % static_cast<std::size_t>(threads) == 0,
                  "striped dimension ", dim, " does not divide over ",
                  threads, " threads");
  }
}

std::vector<Run> slice_runs(const StripeSpec& spec, int thread) {
  spec.validate();
  SAGE_CHECK_AS(RuntimeError, thread >= 0 && thread < spec.threads,
                "thread ", thread, " out of range (", spec.threads,
                " threads)");

  if (spec.striping == model::Striping::kReplicated) {
    return {Run{0, spec.total_elems()}};
  }

  const auto k = static_cast<std::size_t>(spec.stripe_dim);
  std::size_t outer = 1;
  for (std::size_t i = 0; i < k; ++i) outer *= spec.dims[i];
  std::size_t inner = 1;
  for (std::size_t i = k + 1; i < spec.dims.size(); ++i) inner *= spec.dims[i];

  const std::size_t chunk =
      spec.dims[k] / static_cast<std::size_t>(spec.threads);
  const std::size_t stride = spec.dims[k] * inner;  // per outer index
  const std::size_t run_len = chunk * inner;
  const std::size_t base = static_cast<std::size_t>(thread) * chunk * inner;

  std::vector<Run> runs;
  runs.reserve(outer);
  for (std::size_t o = 0; o < outer; ++o) {
    runs.push_back(Run{o * stride + base, run_len});
  }
  return runs;
}

std::size_t ThreadPairTransfer::total_elems() const {
  std::size_t total = 0;
  for (const Segment& s : segments) total += s.length;
  return total;
}

namespace {

/// Intersects two sorted run lists, producing segments with thread-local
/// offsets on both sides (cumulative position within each run list).
std::vector<Segment> intersect_runs(const std::vector<Run>& src,
                                    const std::vector<Run>& dst) {
  std::vector<Segment> segments;
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t src_local = 0;  // local offset of src[i] start
  std::size_t dst_local = 0;
  while (i < src.size() && j < dst.size()) {
    const std::size_t src_begin = src[i].global_offset;
    const std::size_t src_end = src_begin + src[i].length;
    const std::size_t dst_begin = dst[j].global_offset;
    const std::size_t dst_end = dst_begin + dst[j].length;

    const std::size_t lo = std::max(src_begin, dst_begin);
    const std::size_t hi = std::min(src_end, dst_end);
    if (lo < hi) {
      Segment seg;
      seg.src_offset = src_local + (lo - src_begin);
      seg.dst_offset = dst_local + (lo - dst_begin);
      seg.length = hi - lo;
      // Merge with the previous segment when contiguous on both sides.
      if (!segments.empty()) {
        Segment& prev = segments.back();
        if (prev.src_offset + prev.length == seg.src_offset &&
            prev.dst_offset + prev.length == seg.dst_offset) {
          prev.length += seg.length;
        } else {
          segments.push_back(seg);
        }
      } else {
        segments.push_back(seg);
      }
    }

    if (src_end <= dst_end) {
      src_local += src[i].length;
      ++i;
    }
    if (dst_end <= src_end) {
      dst_local += dst[j].length;
      ++j;
    }
  }
  return segments;
}

}  // namespace

std::vector<ThreadPairTransfer> build_transfer_plan(const StripeSpec& src,
                                                    const StripeSpec& dst) {
  src.validate();
  dst.validate();
  SAGE_CHECK_AS(RuntimeError, src.total_elems() == dst.total_elems(),
                "transfer plan: element count mismatch (", src.total_elems(),
                " vs ", dst.total_elems(), ")");

  // A replicated source means every producer thread holds identical data;
  // only thread 0 actually feeds the buffer.
  const int effective_src_threads =
      (src.striping == model::Striping::kReplicated) ? 1 : src.threads;

  // Destination slices are reused across every source thread, so slice
  // them once up front instead of once per (s, d) pair.
  std::vector<std::vector<Run>> dst_runs_of(
      static_cast<std::size_t>(dst.threads));
  for (int d = 0; d < dst.threads; ++d) {
    dst_runs_of[static_cast<std::size_t>(d)] = slice_runs(dst, d);
  }

  std::vector<ThreadPairTransfer> plan;
  for (int s = 0; s < effective_src_threads; ++s) {
    const std::vector<Run> src_runs = slice_runs(src, s);
    for (int d = 0; d < dst.threads; ++d) {
      std::vector<Segment> segments =
          intersect_runs(src_runs, dst_runs_of[static_cast<std::size_t>(d)]);
      if (!segments.empty()) {
        plan.push_back(ThreadPairTransfer{s, d, std::move(segments)});
      }
    }
  }
  return plan;
}

}  // namespace sage::runtime
