#include "runtime/session.hpp"

#include <algorithm>
#include <cstring>
#include <tuple>

#include "mpi/comm.hpp"
#include "support/error.hpp"

namespace sage::runtime {

std::string to_string(BufferPolicy policy) {
  switch (policy) {
    case BufferPolicy::kUniquePerFunction: return "unique-per-function";
    case BufferPolicy::kShared: return "shared";
  }
  return "?";
}

support::VirtualSeconds RunStats::mean_latency() const {
  if (latencies.empty()) return 0.0;
  support::VirtualSeconds total = 0.0;
  for (const auto lat : latencies) total += lat;
  return total / static_cast<double>(latencies.size());
}

/// One logical buffer with its precomputed transfer plan.
struct Session::PlannedBuffer {
  int id = -1;
  int src_function = -1;
  int dst_function = -1;
  std::string src_port;
  std::string dst_port;
  std::size_t elem_bytes = 0;
  StripeSpec src_spec;
  StripeSpec dst_spec;
  std::vector<ThreadPairTransfer> plan;
  std::string label;
};

/// Node-local state, allocated once at session construction and reused
/// (reset, not reallocated) across runs.
struct Session::NodeState {
  explicit NodeState(int node) : events(node) {}

  // (function id, thread, port name) -> staging storage.
  std::map<std::tuple<int, int, std::string>, std::vector<std::byte>> staging;

  std::vector<std::byte>& staging_at(int fn, int thread,
                                     const std::string& port) {
    return staging[{fn, thread, port}];
  }
  // (buffer id, src thread, dst thread) -> logical-buffer storage
  // (kUniquePerFunction policy only).
  std::map<std::tuple<int, int, int>, std::vector<std::byte>> logical;
  // Pack buffer for outgoing fabric messages.
  std::vector<std::byte> message_scratch;
  // Frame buffer for the fault-mode reliable path (header + payload).
  std::vector<std::byte> frame_scratch;
  viz::EventBuffer events;
  std::vector<std::tuple<int, int, double>> results;  // (fn, iter, value)
  std::vector<support::VirtualSeconds> iter_start;    // source nodes
  std::vector<support::VirtualSeconds> iter_end;      // sink nodes
  bool hosts_source = false;
  std::vector<int> order;  // this node's schedule (function ids)
  // Fault-mode observations (receiver/iteration side; sender-side
  // injection counts live on the fabric).
  std::uint64_t observed_timeouts = 0;
  std::uint64_t observed_corruptions = 0;
  std::uint64_t stalls = 0;
};

namespace {

/// Message tag for one (buffer, src thread, dst thread) channel. The
/// validated limits (64 buffers, 8 threads) keep this below the user-tag
/// ceiling of 4096.
int transfer_tag(int buffer_id, int src_thread, int dst_thread) {
  return buffer_id * 64 + src_thread * 8 + dst_thread;
}

/// Copies plan segments from a source slice into a contiguous pack
/// buffer (message layout == concatenated segments in plan order).
void pack_segments(const std::vector<Segment>& segments,
                   std::span<const std::byte> src, std::size_t elem_bytes,
                   std::span<std::byte> packed) {
  std::size_t cursor = 0;
  for (const Segment& seg : segments) {
    const std::size_t bytes = seg.length * elem_bytes;
    std::memcpy(packed.data() + cursor,
                src.data() + seg.src_offset * elem_bytes, bytes);
    cursor += bytes;
  }
}

/// Scatters a contiguous pack buffer into the destination slice.
void unpack_segments(const std::vector<Segment>& segments,
                     std::span<const std::byte> packed, std::size_t elem_bytes,
                     std::span<std::byte> dst) {
  std::size_t cursor = 0;
  for (const Segment& seg : segments) {
    const std::size_t bytes = seg.length * elem_bytes;
    std::memcpy(dst.data() + seg.dst_offset * elem_bytes,
                packed.data() + cursor, bytes);
    cursor += bytes;
  }
}

/// Direct segment copy between two slices (kShared local fast path).
void copy_segments(const std::vector<Segment>& segments,
                   std::span<const std::byte> src, std::size_t elem_bytes,
                   std::span<std::byte> dst) {
  for (const Segment& seg : segments) {
    std::memcpy(dst.data() + seg.dst_offset * elem_bytes,
                src.data() + seg.src_offset * elem_bytes,
                seg.length * elem_bytes);
  }
}

// --- fault-mode transfer framing -------------------------------------------
// Under an active fault plan every remote payload (data and flow-control
// credits) travels inside a checksummed frame, so receivers can reject
// corrupted deliveries without trusting fabric metadata: a corruption
// whose byte flips happen to cancel leaves the payload intact and is
// rightly accepted. Header: magic u32 | payload length u32 | FNV-1a u64.

constexpr std::uint32_t kFrameMagic = 0x46454753u;  // "SGEF"
constexpr std::size_t kFrameHeaderBytes = 16;

std::uint64_t fnv1a_hash(std::span<const std::byte> data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::byte b : data) {
    h ^= std::to_integer<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

void build_frame(std::span<const std::byte> payload,
                 std::vector<std::byte>& frame) {
  frame.resize(kFrameHeaderBytes + payload.size());
  const std::uint32_t magic = kFrameMagic;
  const auto length = static_cast<std::uint32_t>(payload.size());
  const std::uint64_t checksum = fnv1a_hash(payload);
  std::memcpy(frame.data(), &magic, sizeof magic);
  std::memcpy(frame.data() + 4, &length, sizeof length);
  std::memcpy(frame.data() + 8, &checksum, sizeof checksum);
  if (!payload.empty()) {
    std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
}

bool frame_valid(std::span<const std::byte> frame) {
  if (frame.size() < kFrameHeaderBytes) return false;
  std::uint32_t magic = 0;
  std::uint32_t length = 0;
  std::uint64_t checksum = 0;
  std::memcpy(&magic, frame.data(), sizeof magic);
  std::memcpy(&length, frame.data() + 4, sizeof length);
  std::memcpy(&checksum, frame.data() + 8, sizeof checksum);
  if (magic != kFrameMagic) return false;
  if (length != frame.size() - kFrameHeaderBytes) return false;
  return fnv1a_hash(frame.subspan(kFrameHeaderBytes)) == checksum;
}

}  // namespace

Session::Session(GlueConfig config, const FunctionRegistry& registry,
                 ExecuteOptions options)
    : config_(std::move(config)), options_(std::move(options)) {
  config_.validate();

  kernels_.reserve(config_.functions.size());
  for (const FunctionConfig& fn : config_.functions) {
    kernels_.push_back(registry.lookup(fn.kernel));  // throws when missing
  }

  in_of_fn_.resize(config_.functions.size());
  out_of_fn_.resize(config_.functions.size());
  for (const BufferConfig& buf : config_.buffers) {
    const FunctionConfig& src_fn = config_.function(buf.src_function);
    const FunctionConfig& dst_fn = config_.function(buf.dst_function);
    const PortConfig& src_port = src_fn.port(buf.src_port);

    PlannedBuffer planned;
    planned.id = buf.id;
    planned.src_function = buf.src_function;
    planned.dst_function = buf.dst_function;
    planned.src_port = buf.src_port;
    planned.dst_port = buf.dst_port;
    planned.elem_bytes = src_port.elem_bytes;
    planned.src_spec = config_.stripe_spec(src_fn, src_port);
    planned.dst_spec = config_.stripe_spec(dst_fn, dst_fn.port(buf.dst_port));
    planned.plan = build_transfer_plan(planned.src_spec, planned.dst_spec);
    planned.label = src_fn.name + "." + buf.src_port + "->" + dst_fn.name +
                    "." + buf.dst_port;
    planned_.push_back(std::move(planned));

    in_of_fn_[static_cast<std::size_t>(buf.dst_function)].push_back(buf.id);
    out_of_fn_[static_cast<std::size_t>(buf.src_function)].push_back(buf.id);
  }

  if (!options_.cpu_scales.empty()) {
    SAGE_CHECK_AS(ConfigError,
                  static_cast<int>(options_.cpu_scales.size()) ==
                      config_.nodes,
                  "cpu_scales size ", options_.cpu_scales.size(),
                  " != node count ", config_.nodes);
  }

  // Spawn the emulated machine once; its node threads park between runs.
  net::FabricModel fabric =
      options_.fabric ? *options_.fabric : net::myrinet_fabric();
  if (options_.cpu_scales.empty()) {
    machine_ = std::make_unique<net::Machine>(config_.nodes, std::move(fabric));
  } else {
    machine_ = std::make_unique<net::Machine>(std::move(fabric),
                                              options_.cpu_scales);
  }

  allocate_states_();

  metrics_ = viz::MetricsRegistry(config_.nodes);
  define_metrics_();

  machine_->start();
}

void Session::define_metrics_() {
  using viz::Aggregation;
  namespace fam = viz::families;
  // One family at a time (not one function at a time) so each family's
  // series stay contiguous in snapshot order -- the Prometheus
  // exposition groups by family.
  fn_busy_ids_.reserve(config_.functions.size());
  for (const FunctionConfig& fn : config_.functions) {
    fn_busy_ids_.push_back(metrics_.counter(
        fam::kFunctionBusySeconds,
        "Virtual seconds spent executing this function's kernel",
        {{"function", fn.name}}, /*time_based=*/true));
  }
  fn_calls_ids_.reserve(config_.functions.size());
  for (const FunctionConfig& fn : config_.functions) {
    fn_calls_ids_.push_back(metrics_.counter(
        fam::kFunctionInvocations,
        "Kernel invocations (every thread of every iteration)",
        {{"function", fn.name}}));
  }
  iterations_id_ =
      metrics_.counter(fam::kIterations, "Iterations completed by the run");
  latency_hist_id_ = metrics_.histogram(
      fam::kIterationLatency,
      "End-to-end iteration latency (source start to sink end)",
      {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0}, {},
      /*time_based=*/true);
  violations_id_ = metrics_.counter(
      fam::kLatencyViolations,
      "Iterations whose latency exceeded the configured threshold", {},
      /*time_based=*/true);
  threshold_id_ = metrics_.gauge(
      fam::kLatencyThreshold, "Configured latency threshold (0 = disabled)");
  makespan_id_ =
      metrics_.gauge(fam::kMakespan, "Modeled end-to-end run time",
                     Aggregation::kSum, {}, /*time_based=*/true);
  fault_drop_id_ = metrics_.counter(
      fam::kFaultsInjected, "Faults injected by the fabric, by kind",
      {{"kind", "drop"}});
  fault_corrupt_id_ = metrics_.counter(fam::kFaultsInjected, "",
                                       {{"kind", "corrupt"}});
  fault_delay_id_ =
      metrics_.counter(fam::kFaultsInjected, "", {{"kind", "delay"}});
  fault_retries_id_ = metrics_.counter(
      fam::kFaultRetries, "Retransmit attempts after a detected loss");
  fault_timeouts_id_ = metrics_.counter(
      fam::kFaultTimeouts, "Loss-detection timeouts waited out by receivers");
  fault_frames_id_ = metrics_.counter(
      fam::kFaultCorruptFrames, "Frames rejected by receiver checksums");
  fault_stalls_id_ = metrics_.counter(
      fam::kFaultStalls, "Modeled node stalls at iteration boundaries");
  degraded_id_ = metrics_.gauge(
      fam::kDegradedNodes, "Nodes the session is running without");
}

const std::array<int, 4>& Session::link_metric_ids_(int src, int dst) {
  const auto key = std::make_pair(src, dst);
  auto it = link_ids_.find(key);
  if (it != link_ids_.end()) return it->second;
  namespace fam = viz::families;
  const std::vector<std::pair<std::string, std::string>> labels = {
      {"src", std::to_string(src)}, {"dst", std::to_string(dst)}};
  std::array<int, 4> ids = {
      metrics_.counter(fam::kLinkMessages,
                       "Messages accepted on this directed link", labels),
      metrics_.counter(fam::kLinkBytes,
                       "Payload bytes accepted on this directed link", labels),
      metrics_.counter(fam::kLinkRetransmits,
                       "Retransmit attempts issued on this directed link",
                       labels),
      metrics_.counter(
          fam::kLinkBusySeconds,
          "Virtual seconds the board-pair channel spent serializing this "
          "link's payloads (contention model)",
          labels),
  };
  return link_ids_.emplace(key, ids).first->second;
}

void Session::export_metrics_(RunStats& stats) {
  metrics_.add(0, iterations_id_, static_cast<double>(stats.iterations));
  for (const auto lat : stats.latencies) {
    metrics_.observe(0, latency_hist_id_, lat);
    if (run_threshold_ > 0.0 && lat > run_threshold_) {
      metrics_.add(0, violations_id_, 1.0);
    }
  }
  metrics_.set(0, threshold_id_, run_threshold_);
  metrics_.set(0, makespan_id_, stats.makespan);

  metrics_.add(0, fault_drop_id_,
               static_cast<double>(stats.faults.injected_drops));
  metrics_.add(0, fault_corrupt_id_,
               static_cast<double>(stats.faults.injected_corruptions));
  metrics_.add(0, fault_delay_id_,
               static_cast<double>(stats.faults.injected_delays));
  metrics_.add(0, fault_retries_id_,
               static_cast<double>(stats.faults.retries));
  metrics_.add(0, fault_timeouts_id_,
               static_cast<double>(stats.faults.timeouts));
  metrics_.add(0, fault_frames_id_,
               static_cast<double>(stats.faults.corruptions_detected));
  metrics_.add(0, fault_stalls_id_, static_cast<double>(stats.faults.stalls));
  metrics_.set(0, degraded_id_,
               static_cast<double>(stats.faults.degraded_nodes));

  // std::map iteration -> (src, dst) order, so first-sight definition
  // order (and with it snapshot order) matches across warm runs and
  // fresh sessions with the same traffic pattern.
  for (const auto& [key, link] : machine_->fabric().link_stats()) {
    const std::array<int, 4>& ids = link_metric_ids_(key.first, key.second);
    metrics_.add(0, ids[0], static_cast<double>(link.messages));
    metrics_.add(0, ids[1], static_cast<double>(link.bytes));
    metrics_.add(0, ids[2], static_cast<double>(link.retransmits));
    metrics_.add(0, ids[3], link.busy_vt);
  }

  stats.metrics = metrics_.snapshot();
}

void Session::allocate_states_() {
  // Pre-allocate every staging buffer and the logical-buffer pool, so
  // warm runs reuse memory instead of reallocating it. Also called by
  // recover(), which changes thread->node placements.
  states_.clear();
  states_.reserve(static_cast<std::size_t>(config_.nodes));
  for (int r = 0; r < config_.nodes; ++r) {
    auto state = std::make_unique<NodeState>(r);
    auto schedule_it = config_.schedule.find(r);
    if (schedule_it != config_.schedule.end()) {
      state->order = schedule_it->second;
    }
    for (const FunctionConfig& fn : config_.functions) {
      for (int t = 0; t < fn.threads; ++t) {
        if (fn.thread_nodes[static_cast<std::size_t>(t)] != r) continue;
        if (fn.role == "source") state->hosts_source = true;
        for (const PortConfig& port : fn.ports) {
          StripeSpec spec = config_.stripe_spec(fn, port);
          state->staging_at(fn.id, t, port.name)
              .resize(spec.elems_per_thread() * port.elem_bytes);
        }
      }
    }
    states_.push_back(std::move(state));
  }
  for (const PlannedBuffer& buf : planned_) {
    const FunctionConfig& src_fn = config_.function(buf.src_function);
    const FunctionConfig& dst_fn = config_.function(buf.dst_function);
    for (const ThreadPairTransfer& pair : buf.plan) {
      const std::size_t bytes = pair.total_elems() * buf.elem_bytes;
      const int src_node =
          src_fn.thread_nodes[static_cast<std::size_t>(pair.src_thread)];
      const int dst_node =
          dst_fn.thread_nodes[static_cast<std::size_t>(pair.dst_thread)];
      for (const int node : {src_node, dst_node}) {
        states_[static_cast<std::size_t>(node)]
            ->logical[{buf.id, pair.src_thread, pair.dst_thread}]
            .resize(bytes);
      }
    }
  }
}

RecoveryReport Session::recover(const std::vector<int>& dead_ranks) {
  SAGE_CHECK_AS(RuntimeError, !closed(),
                "Session::recover on a closed session");
  RecoveryReport report;
  for (const int rank : dead_ranks) {
    SAGE_CHECK_AS(RuntimeError, rank >= 0 && rank < config_.nodes,
                  "recover: rank ", rank, " outside machine of ",
                  config_.nodes, " nodes");
    if (std::find(dead_nodes_.begin(), dead_nodes_.end(), rank) ==
        dead_nodes_.end()) {
      dead_nodes_.push_back(rank);
      report.dead_nodes.push_back(rank);
    }
  }
  if (report.dead_nodes.empty()) return report;  // idempotent per rank
  std::sort(dead_nodes_.begin(), dead_nodes_.end());
  std::sort(report.dead_nodes.begin(), report.dead_nodes.end());
  SAGE_CHECK_AS(RuntimeError,
                static_cast<int>(dead_nodes_.size()) < config_.nodes,
                "recover: no surviving node left");

  const auto is_dead = [&](int rank) {
    return std::binary_search(dead_nodes_.begin(), dead_nodes_.end(), rank);
  };

  // Deterministic greedy remap: move each stranded thread, in function-id
  // then thread order, to the survivor with the fewest assigned threads
  // (ties to the lowest rank). Mirrors the atot greedy mapper's
  // tie-breaking so remapped placements stay reproducible.
  std::vector<int> load(static_cast<std::size_t>(config_.nodes), 0);
  for (const FunctionConfig& fn : config_.functions) {
    for (const int node : fn.thread_nodes) {
      if (!is_dead(node)) ++load[static_cast<std::size_t>(node)];
    }
  }
  for (FunctionConfig& fn : config_.functions) {
    for (int& node : fn.thread_nodes) {
      if (!is_dead(node)) continue;
      int best = -1;
      for (int r = 0; r < config_.nodes; ++r) {
        if (is_dead(r)) continue;
        if (best == -1 || load[static_cast<std::size_t>(r)] <
                              load[static_cast<std::size_t>(best)]) {
          best = r;
        }
      }
      node = best;
      ++load[static_cast<std::size_t>(best)];
      ++report.moved_threads;
    }
  }

  // Rebuild the per-node schedules the way the code generator emits
  // them: function-table ids in id order, filtered to the node.
  config_.schedule.clear();
  for (int r = 0; r < config_.nodes; ++r) {
    std::vector<int> order;
    for (const FunctionConfig& fn : config_.functions) {
      if (std::find(fn.thread_nodes.begin(), fn.thread_nodes.end(), r) !=
          fn.thread_nodes.end()) {
        order.push_back(fn.id);
      }
    }
    if (!order.empty()) config_.schedule[r] = std::move(order);
  }
  config_.validate();
  allocate_states_();
  pending_recoveries_.push_back(report);
  return report;
}

Session::~Session() = default;

Result<std::unique_ptr<Session>> Session::create(GlueConfig config,
                                                 const FunctionRegistry& registry,
                                                 ExecuteOptions options) {
  try {
    return Result<std::unique_ptr<Session>>::success(std::make_unique<Session>(
        std::move(config), registry, std::move(options)));
  } catch (const std::exception& e) {
    return Result<std::unique_ptr<Session>>::failure(e.what());
  }
}

void Session::close() { machine_.reset(); }

void Session::reset_between_runs_() {
  // The fabric may hold unclaimed flow-control credits from the previous
  // run, accumulated totals, and link contention history; a cold engine
  // would start from scratch.
  machine_->fabric().reset();
  // Metric values restart at zero; definitions (and ids) persist.
  metrics_.reset();
  for (const auto& state : states_) {
    state->events.clear();
    state->results.clear();
    state->iter_start.clear();
    state->iter_end.clear();
    state->observed_timeouts = 0;
    state->observed_corruptions = 0;
    state->stalls = 0;
    // Staging starts zeroed on a cold run (vector value-init); match it
    // so a kernel that reads-before-write sees identical bytes.
    for (auto& [key, storage] : state->staging) {
      std::fill(storage.begin(), storage.end(), std::byte{0});
    }
  }
}

RunStats Session::run(const RunRequest& request) {
  SAGE_CHECK_AS(RuntimeError, !closed(), "Session::run on a closed session");
  const double host_start = support::wall_seconds();

  int iterations = request.iterations;
  if (iterations <= 0) iterations = options_.iterations;
  if (iterations <= 0) iterations = config_.iterations_default;
  SAGE_CHECK_AS(RuntimeError, iterations > 0, "nothing to run: ", iterations,
                " iterations");
  run_iterations_ = iterations;
  run_policy_ = request.buffer_policy.value_or(options_.buffer_policy);
  run_trace_ = request.collect_trace.value_or(options_.collect_trace);
  run_metrics_ = request.collect_metrics.value_or(options_.collect_metrics);
  run_threshold_ =
      request.latency_threshold.value_or(options_.latency_threshold);
  run_plan_ = request.fault_plan.value_or(options_.fault_plan);
  const bool faulty = run_plan_ != nullptr && run_plan_->active();

  // A plan naming dead nodes runs degraded: remap before dispatch
  // (idempotent -- already-applied ranks are skipped).
  if (faulty && !run_plan_->dead_nodes.empty()) {
    recover(run_plan_->dead_nodes);
  }

  reset_between_runs_();
  // An inactive plan must leave the fabric on the exact fault-free code
  // path (bit-identical contract), so only an active plan is attached.
  machine_->fabric().set_fault_plan(faulty ? run_plan_ : nullptr);

  // Surface recoveries applied since the last run on this run's trace.
  if (run_trace_) {
    for (const RecoveryReport& recovery : pending_recoveries_) {
      for (int r = 0; r < config_.nodes; ++r) {
        if (std::binary_search(dead_nodes_.begin(), dead_nodes_.end(), r)) {
          continue;
        }
        viz::Event e;
        e.kind = viz::EventKind::kRecovery;
        e.label = "recover: moved " +
                  std::to_string(recovery.moved_threads) + " threads off " +
                  std::to_string(recovery.dead_nodes.size()) + " dead nodes";
        states_[static_cast<std::size_t>(r)]->events.record(e);
        break;  // one event, attributed to the lowest surviving rank
      }
    }
  }
  pending_recoveries_.clear();

  const net::MachineReport report =
      machine_->run([this](net::NodeContext& node) { node_program_(node); });

  // --- aggregate -----------------------------------------------------------
  RunStats stats;
  stats.iterations = iterations;
  stats.makespan = report.makespan();
  stats.fabric_messages = machine_->fabric().total_messages();
  stats.fabric_bytes = machine_->fabric().total_bytes();

  const net::FaultCounters fault_counters = machine_->fabric().fault_counters();
  stats.faults.injected_drops = fault_counters.drops;
  stats.faults.injected_corruptions = fault_counters.corruptions;
  stats.faults.injected_delays = fault_counters.delays;
  stats.faults.retries = fault_counters.retransmits;
  for (const auto& state : states_) {
    stats.faults.timeouts += state->observed_timeouts;
    stats.faults.corruptions_detected += state->observed_corruptions;
    stats.faults.stalls += state->stalls;
  }
  stats.faults.degraded_nodes = static_cast<int>(dead_nodes_.size());

  // Latency: min source start / max sink end per iteration.
  std::vector<double> starts(static_cast<std::size_t>(iterations), 0.0);
  std::vector<double> ends(static_cast<std::size_t>(iterations), 0.0);
  std::vector<bool> has_start(static_cast<std::size_t>(iterations), false);
  std::vector<bool> has_end(static_cast<std::size_t>(iterations), false);
  for (const auto& state : states_) {
    for (std::size_t i = 0; i < state->iter_start.size() &&
                            i < static_cast<std::size_t>(iterations);
         ++i) {
      if (!has_start[i] || state->iter_start[i] < starts[i]) {
        starts[i] = state->iter_start[i];
        has_start[i] = true;
      }
    }
    // Sinks may record several ends per iteration (multiple threads);
    // they are appended in iteration order per node, so fold by index
    // modulo the per-node count per iteration.
    const std::size_t per_iter =
        state->iter_end.empty()
            ? 0
            : state->iter_end.size() / static_cast<std::size_t>(iterations);
    for (std::size_t i = 0; i < state->iter_end.size(); ++i) {
      if (per_iter == 0) break;
      const std::size_t iter = i / per_iter;
      if (iter >= static_cast<std::size_t>(iterations)) break;
      if (!has_end[iter] || state->iter_end[i] > ends[iter]) {
        ends[iter] = state->iter_end[i];
        has_end[iter] = true;
      }
    }
  }
  for (int i = 0; i < iterations; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (has_start[idx] && has_end[idx]) {
      stats.latencies.push_back(ends[idx] - starts[idx]);
    }
  }
  // Period: mean distance between consecutive completion times.
  int completed = 0;
  double first_end = 0.0;
  double last_end = 0.0;
  for (int i = 0; i < iterations; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (has_end[idx]) {
      if (completed == 0) first_end = ends[idx];
      last_end = ends[idx];
      ++completed;
    }
  }
  if (completed > 1) {
    stats.period = (last_end - first_end) / static_cast<double>(completed - 1);
  } else if (!stats.latencies.empty()) {
    stats.period = stats.latencies.front();
  }

  // Results: sum kernel-reported values per function per iteration.
  for (const auto& state : states_) {
    for (const auto& [fn_id, iter, value] : state->results) {
      const std::string& name = config_.function(fn_id).name;
      auto& series = stats.results[name];
      if (series.size() < static_cast<std::size_t>(iterations)) {
        series.resize(static_cast<std::size_t>(iterations), 0.0);
      }
      series[static_cast<std::size_t>(iter)] += value;
    }
  }

  if (run_trace_) {
    std::vector<const viz::EventBuffer*> buffers;
    buffers.reserve(states_.size());
    for (const auto& state : states_) buffers.push_back(&state->events);
    stats.trace = viz::Trace::merge(buffers);
  }

  if (run_metrics_) export_metrics_(stats);

  stats.host_seconds = support::wall_seconds() - host_start;
  ++runs_completed_;
  return stats;
}

std::vector<RunStats> Session::run_batch(int runs, const RunRequest& request) {
  SAGE_CHECK_AS(RuntimeError, runs > 0, "run_batch needs runs > 0, got ",
                runs);
  std::vector<RunStats> all;
  all.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) all.push_back(run(request));
  return all;
}

void Session::node_program_(net::NodeContext& node) {
  const int rank = node.rank();
  NodeState& state = *states_[static_cast<std::size_t>(rank)];
  const GlueConfig& cfg = config_;
  const int iterations = run_iterations_;
  const BufferPolicy policy = run_policy_;
  const bool trace = run_trace_;
  const bool metrics = run_metrics_;
  const int buffer_depth = options_.buffer_depth;

  mpi::Communicator comm(node);
  comm.set_recv_timeout(options_.recv_timeout_s);

  std::vector<std::byte>& message_scratch = state.message_scratch;

  // Fault mode: with an active plan, every remote transfer (data and
  // flow-control credits) switches from the mpi layer to framed
  // reliable fabric exchanges. The happy path below is untouched when
  // `faulty` is false -- that is the bit-identical contract.
  const net::FaultPlan* plan = run_plan_.get();
  const bool faulty = plan != nullptr && plan->active();
  net::Fabric& fabric = node.fabric();

  const auto record_fault = [&](int fn_id, int t, int iter, double start_vt,
                                std::uint64_t bytes, std::string label) {
    if (!trace) return;
    viz::Event e;
    e.kind = viz::EventKind::kFault;
    e.function_id = fn_id;
    e.thread = t;
    e.iteration = iter;
    e.start_vt = start_vt;
    e.end_vt = node.now();
    e.bytes = bytes;
    e.label = std::move(label);
    state.events.record(e);
  };

  /// Reliable framed send (fault mode only). The fabric resolves the
  /// whole retransmit exchange; the sender's clock joins the post-ARQ
  /// time and each retransmit is surfaced as a kRetry event.
  const auto send_framed = [&](int dst_node, int tag,
                               std::span<const std::byte> payload, int fn_id,
                               int t, int iter, const std::string& label) {
    {
      support::ComputeScope scope(node.clock(), node.cpu_scale());
      build_frame(payload, state.frame_scratch);
    }
    const double t_before = node.now();
    const net::SendReceipt receipt = fabric.send_reliable(
        rank, dst_node, tag, state.frame_scratch, node.now());
    node.clock().join(receipt.sender_after);
    if (trace) {
      for (int attempt = 1; attempt < receipt.attempts; ++attempt) {
        viz::Event e;
        e.kind = viz::EventKind::kRetry;
        e.function_id = fn_id;
        e.thread = t;
        e.iteration = iter;
        e.start_vt = t_before;
        e.end_vt = node.now();
        e.bytes = payload.size();
        e.label = label;
        state.events.record(e);
      }
    }
  };

  /// Reliable framed receive (fault mode only): consumes deliveries in
  /// arrival order, counting drop tombstones (loss-detection timeouts)
  /// and rejecting invalid frames until a clean one lands. The frame
  /// checksum -- not the fabric's fault flag -- is the integrity oracle,
  /// so corruption whose flips cancel is rightly accepted.
  const auto recv_framed = [&](int src_node, int tag, int fn_id, int t,
                               int iter,
                               const std::string& label) -> std::vector<std::byte> {
    for (;;) {
      const double t_before = node.now();
      net::Message msg =
          fabric.recv(rank, src_node, tag, options_.recv_timeout_s);
      node.clock().join(msg.arrival_vt);
      if (msg.fault == net::FaultKind::kDrop) {
        ++state.observed_timeouts;
        record_fault(fn_id, t, iter, t_before, 0, label + " [timeout]");
        continue;
      }
      bool valid = false;
      {
        support::ComputeScope scope(node.clock(), node.cpu_scale());
        valid = frame_valid(msg.payload);
      }
      if (!valid) {
        ++state.observed_corruptions;
        record_fault(fn_id, t, iter, t_before, msg.payload.size(),
                     label + " [corrupt]");
        continue;
      }
      if (msg.fault == net::FaultKind::kDelay) {
        record_fault(fn_id, t, iter, t_before, msg.payload.size(),
                     label + " [delay]");
      }
      msg.payload.erase(msg.payload.begin(),
                        msg.payload.begin() + kFrameHeaderBytes);
      return std::move(msg.payload);
    }
  };

  for (int iter = 0; iter < iterations; ++iter) {
    if (faulty) {
      // Modeled node hiccup entering this iteration (thermal event,
      // competing load, GC pause on the emulated host...).
      const double stall = plan->stall_vt(rank, iter);
      if (stall > 0) {
        const double t_before = node.now();
        node.clock().advance(stall);
        ++state.stalls;
        record_fault(-1, 0, iter, t_before, 0, "stall");
      }
    }
    if (state.hosts_source) {
      state.iter_start.push_back(node.now());
      if (trace) {
        viz::Event e;
        e.kind = viz::EventKind::kIterationStart;
        e.iteration = iter;
        e.start_vt = e.end_vt = node.now();
        e.label = "iteration";
        state.events.record(e);
      }
    }

    for (int fn_id : state.order) {
      const FunctionConfig& fn = cfg.function(fn_id);
      for (int t = 0; t < fn.threads; ++t) {
        if (fn.thread_nodes[static_cast<std::size_t>(t)] != rank) continue;

        // --- 1. receive remote inputs -----------------------------------
        for (int buf_id : in_of_fn_[static_cast<std::size_t>(fn_id)]) {
          const PlannedBuffer& buf =
              planned_[static_cast<std::size_t>(buf_id)];
          const FunctionConfig& src_fn = cfg.function(buf.src_function);
          auto& dst_staging = state.staging_at(fn_id, t, buf.dst_port);
          for (const ThreadPairTransfer& pair : buf.plan) {
            if (pair.dst_thread != t) continue;
            const int src_node =
                src_fn.thread_nodes[static_cast<std::size_t>(
                    pair.src_thread)];
            if (src_node == rank) continue;  // delivered locally already

            const int tag =
                transfer_tag(buf.id, pair.src_thread, pair.dst_thread);
            const double t_before = node.now();
            std::vector<std::byte> payload =
                faulty ? recv_framed(src_node, tag, fn_id, t, iter, buf.label)
                       : comm.recv_any_bytes(src_node, tag);
            if (trace) {
              viz::Event e;
              e.kind = viz::EventKind::kReceive;
              e.function_id = fn_id;
              e.thread = t;
              e.iteration = iter;
              e.start_vt = t_before;
              e.end_vt = node.now();
              e.bytes = payload.size();
              e.label = buf.label;
              state.events.record(e);
            }
            {
              support::ComputeScope scope(node.clock(), node.cpu_scale());
              if (policy == BufferPolicy::kUniquePerFunction) {
                // Stage through the function's own logical buffer copy.
                auto& logical = state.logical[{buf.id, pair.src_thread,
                                               pair.dst_thread}];
                logical.assign(payload.begin(), payload.end());
                unpack_segments(pair.segments, logical, buf.elem_bytes,
                                dst_staging);
              } else {
                unpack_segments(pair.segments, payload, buf.elem_bytes,
                                dst_staging);
              }
            }
            if (buffer_depth > 0) {
              // Flow control: return a credit for the drained slot.
              const std::byte credit{};
              const std::span<const std::byte> credit_span(&credit, 1);
              if (faulty) {
                send_framed(src_node, tag, credit_span, fn_id, t, iter,
                            buf.label + " credit");
              } else {
                comm.send_bytes(credit_span, src_node, tag);
              }
            }
          }
        }

        // --- 2. execute the kernel ---------------------------------------
        KernelContext kctx(t, fn.threads, iter);
        kctx.params.insert(fn.params.begin(), fn.params.end());
        for (const PortConfig& port : fn.ports) {
          PortSlice slice;
          slice.name = port.name;
          StripeSpec spec = cfg.stripe_spec(fn, port);
          slice.data = state.staging_at(fn_id, t, port.name);
          slice.elem_bytes = port.elem_bytes;
          slice.local_dims = spec.local_dims();
          slice.global_dims = port.dims;
          slice.runs = slice_runs(spec, t);
          if (port.direction == model::PortDirection::kIn) {
            kctx.inputs.push_back(std::move(slice));
          } else {
            kctx.outputs.push_back(std::move(slice));
          }
        }

        const double exec_start = node.now();
        {
          support::ComputeScope scope(node.clock(), node.cpu_scale());
          kernels_[static_cast<std::size_t>(fn_id)](kctx);
        }
        if (metrics) {
          // Two fixed-slot shard writes: far cheaper than a trace event
          // and, like the probes, charged to host time only.
          metrics_.add(rank, fn_busy_ids_[static_cast<std::size_t>(fn_id)],
                       node.now() - exec_start);
          metrics_.add(rank, fn_calls_ids_[static_cast<std::size_t>(fn_id)],
                       1.0);
        }
        if (trace && cfg.probed(fn_id)) {
          viz::Event start;
          start.kind = viz::EventKind::kFunctionStart;
          start.function_id = fn_id;
          start.thread = t;
          start.iteration = iter;
          start.start_vt = start.end_vt = exec_start;
          start.label = fn.name;
          state.events.record(start);
          viz::Event end = start;
          end.kind = viz::EventKind::kFunctionEnd;
          end.start_vt = end.end_vt = node.now();
          state.events.record(end);
        }
        if (kctx.has_result()) {
          state.results.emplace_back(fn_id, iter, kctx.result());
        }
        if (fn.role == "sink") {
          state.iter_end.push_back(node.now());
          if (trace) {
            viz::Event e;
            e.kind = viz::EventKind::kIterationEnd;
            e.iteration = iter;
            e.start_vt = e.end_vt = node.now();
            e.label = "iteration";
            state.events.record(e);
          }
        }

        // --- 3. send outputs ----------------------------------------------
        for (int buf_id : out_of_fn_[static_cast<std::size_t>(fn_id)]) {
          const PlannedBuffer& buf =
              planned_[static_cast<std::size_t>(buf_id)];
          const FunctionConfig& dst_fn = cfg.function(buf.dst_function);
          const auto& src_staging = state.staging_at(fn_id, t, buf.src_port);
          for (const ThreadPairTransfer& pair : buf.plan) {
            if (pair.src_thread != t) continue;
            const int dst_node =
                dst_fn.thread_nodes[static_cast<std::size_t>(
                    pair.dst_thread)];
            const std::size_t bytes = pair.total_elems() * buf.elem_bytes;

            if (dst_node == rank) {
              // Local delivery straight into the consumer's staging.
              auto& dst_staging = state.staging_at(buf.dst_function,
                                               pair.dst_thread, buf.dst_port);
              const double t_before = node.now();
              {
                support::ComputeScope scope(node.clock(), node.cpu_scale());
                if (policy == BufferPolicy::kUniquePerFunction) {
                  auto& logical = state.logical[{buf.id, pair.src_thread,
                                                 pair.dst_thread}];
                  logical.resize(bytes);
                  pack_segments(pair.segments, src_staging, buf.elem_bytes,
                                logical);
                  unpack_segments(pair.segments, logical, buf.elem_bytes,
                                  dst_staging);
                } else {
                  copy_segments(pair.segments, src_staging, buf.elem_bytes,
                                dst_staging);
                }
              }
              if (trace) {
                viz::Event e;
                e.kind = viz::EventKind::kBufferCopy;
                e.function_id = fn_id;
                e.thread = t;
                e.iteration = iter;
                e.start_vt = t_before;
                e.end_vt = node.now();
                e.bytes = bytes;
                e.label = buf.label;
                state.events.record(e);
              }
            } else {
              const int tag =
                  transfer_tag(buf.id, pair.src_thread, pair.dst_thread);
              if (buffer_depth > 0 && iter >= buffer_depth) {
                // Wait for a free physical-buffer slot (credit from
                // the consumer for iteration iter - depth).
                if (faulty) {
                  (void)recv_framed(dst_node, tag, fn_id, t, iter,
                                    buf.label + " credit");
                } else {
                  std::byte credit{};
                  comm.recv_bytes(std::span<std::byte>(&credit, 1), dst_node,
                                  tag);
                }
              }
              const double t_before = node.now();
              message_scratch.resize(bytes);
              {
                support::ComputeScope scope(node.clock(), node.cpu_scale());
                if (policy == BufferPolicy::kUniquePerFunction) {
                  auto& logical = state.logical[{buf.id, pair.src_thread,
                                                 pair.dst_thread}];
                  logical.resize(bytes);
                  pack_segments(pair.segments, src_staging, buf.elem_bytes,
                                logical);
                  std::memcpy(message_scratch.data(), logical.data(), bytes);
                } else {
                  pack_segments(pair.segments, src_staging, buf.elem_bytes,
                                message_scratch);
                }
              }
              if (faulty) {
                send_framed(dst_node, tag, message_scratch, fn_id, t, iter,
                            buf.label);
              } else {
                comm.send_bytes(message_scratch, dst_node, tag);
              }
              if (trace) {
                viz::Event e;
                e.kind = viz::EventKind::kSend;
                e.function_id = fn_id;
                e.thread = t;
                e.iteration = iter;
                e.start_vt = t_before;
                e.end_vt = node.now();
                e.bytes = bytes;
                e.label = buf.label;
                state.events.record(e);
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace sage::runtime
