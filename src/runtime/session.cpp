// The executor layer: drives an immutable CompiledProgram on the warm
// emulated machine. All planning lives in runtime::Compiler; nothing in
// this file builds or mutates a program (recover() asks the Compiler
// for a fresh one).
#include "runtime/session.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <map>
#include <tuple>

#include "runtime/compiler.hpp"
#include "support/error.hpp"

namespace sage::runtime {

std::string to_string(BufferPolicy policy) {
  switch (policy) {
    case BufferPolicy::kUniquePerFunction: return "unique-per-function";
    case BufferPolicy::kShared: return "shared";
  }
  return "?";
}

support::VirtualSeconds RunStats::mean_latency() const {
  if (latencies.empty()) return 0.0;
  support::VirtualSeconds total = 0.0;
  for (const auto lat : latencies) total += lat;
  return total / static_cast<double>(latencies.size());
}

/// Node-local state, allocated once at session construction and reused
/// (reset, not reallocated) across runs. During an epoch a node's state
/// is touched only by that node's worker thread; the host touches it
/// only between epochs (machine join/dispatch order the accesses).
struct Session::NodeState {
  explicit NodeState(int node) { (void)node; }

  // Staging storage by compiled slot id (dense; non-local slots empty).
  std::vector<std::vector<std::byte>> staging;
  // Logical-buffer storage by op index (kUniquePerFunction policy only).
  std::vector<std::vector<std::byte>> logical;
  bool hosts_source = false;
  std::vector<int> order;  // this node's schedule (function ids)
  // Epoch-continuous per-op send counters: how many iterations this
  // node has pushed down each channel since the epoch began. The credit
  // predicate (sends_done >= depth) generalizes the old per-run
  // `iter >= depth` across overlapped tickets.
  std::vector<std::uint32_t> sends_done;
};

/// One streamed data-set run: resolved parameters plus the per-node
/// execution record the host aggregates at collection. While a ticket
/// executes, each node worker writes only its own `nodes[rank]` share;
/// completion bookkeeping happens under Session::stream_mu_, so a
/// `done` ticket's shares are safely readable on the host.
struct Session::StreamTicket {
  std::uint64_t id = 0;
  std::size_t index = 0;  // position within its epoch
  TicketParams params;
  double submit_wall = 0.0;

  struct NodeShare {
    explicit NodeShare(int node) : events(node) {}
    viz::EventBuffer events;
    std::vector<std::tuple<int, int, double>> results;  // (fn, iter, value)
    std::vector<support::VirtualSeconds> iter_start;    // source nodes
    std::vector<support::VirtualSeconds> iter_end;      // sink nodes
    // Fault-mode observations (receiver/iteration side; sender-side
    // injection counts live on the fabric).
    std::uint64_t observed_timeouts = 0;
    std::uint64_t observed_corruptions = 0;
    std::uint64_t stalls = 0;
    // Data-plane accounting: host bytes memcpy'd (each pass counted)
    // and payload bytes handed to the fabric by pooled handle.
    std::uint64_t bytes_copied = 0;
    std::uint64_t bytes_moved = 0;
    // Kernel-busy accumulators by function id, folded into the metrics
    // registry at collection (accumulation order matches the old
    // node-thread shard writes, so snapshots stay bit-identical).
    std::vector<double> fn_busy;
    std::vector<double> fn_calls;
    // This node's virtual clock when it started / finished the ticket.
    support::VirtualSeconds start_vt = 0.0;
    support::VirtualSeconds end_vt = 0.0;
  };
  std::vector<NodeShare> nodes;  // by rank

  // Completion bookkeeping (guarded by Session::stream_mu_).
  int nodes_done = 0;
  bool done = false;
  std::exception_ptr error;  // lowest erroring rank wins
  int error_rank = -1;
  support::VirtualSeconds complete_vt = 0.0;   // max node end_vt
  support::VirtualSeconds stream_period = 0.0;  // vs previous ticket
};

namespace {

/// Gathers compiled segments from the source staging into the packed
/// wire layout.
void pack_bytes(const std::vector<ByteSeg>& segs,
                std::span<const std::byte> src, std::span<std::byte> packed) {
  for (const ByteSeg& s : segs) {
    std::memcpy(packed.data() + s.packed_off, src.data() + s.src_off, s.len);
  }
}

/// Scatters the packed wire layout into the destination staging.
void unpack_bytes(const std::vector<ByteSeg>& segs,
                  std::span<const std::byte> packed, std::span<std::byte> dst) {
  for (const ByteSeg& s : segs) {
    std::memcpy(dst.data() + s.dst_off, packed.data() + s.packed_off, s.len);
  }
}

/// Direct staging-to-staging copy (kShared local fast path: one pass,
/// no intermediate layout).
void copy_bytes(const std::vector<ByteSeg>& segs,
                std::span<const std::byte> src, std::span<std::byte> dst) {
  for (const ByteSeg& s : segs) {
    std::memcpy(dst.data() + s.dst_off, src.data() + s.src_off, s.len);
  }
}

// --- fault-mode transfer framing -------------------------------------------
// Under an active fault plan every remote payload (data and flow-control
// credits) travels inside a checksummed frame, so receivers can reject
// corrupted deliveries without trusting fabric metadata: a corruption
// whose byte flips happen to cancel leaves the payload intact and is
// rightly accepted. The format (magic u32 | payload length u32 | FNV-1a
// u64) is the shared wire framing in net/framing.hpp, the same one the
// shmem/TCP transport backends put on every cross-process parcel.

using net::fnv1a_accum;
using net::frame_valid;
using net::kFnvOffsetBasis;
using net::kFrameHeaderBytes;
using net::write_frame_header;

/// Gathers compiled segments straight into a frame body while folding
/// the FNV-1a checksum into the copy pass (each segment is hashed while
/// still cache-hot). The hash order equals the packed byte order.
std::uint64_t pack_bytes_hashed(const std::vector<ByteSeg>& segs,
                                std::span<const std::byte> src,
                                std::span<std::byte> packed) {
  std::uint64_t h = kFnvOffsetBasis;
  for (const ByteSeg& s : segs) {
    std::memcpy(packed.data() + s.packed_off, src.data() + s.src_off, s.len);
    h = fnv1a_accum(h, packed.data() + s.packed_off, s.len);
  }
  return h;
}

}  // namespace

Session::Session(GlueConfig config, const FunctionRegistry& registry,
                 ExecuteOptions options)
    : Session(compile_or_load(std::move(config), registry,
                              options.plan_cache_dir),
              registry, options) {}

Session::Session(std::shared_ptr<const CompiledProgram> program,
                 const FunctionRegistry& registry, ExecuteOptions options)
    : program_(std::move(program)), options_(std::move(options)) {
  SAGE_CHECK_AS(RuntimeError, program_ != nullptr,
                "Session needs a compiled program");
  const GlueConfig& config = program_->config;

  kernels_.reserve(config.functions.size());
  for (const FunctionConfig& fn : config.functions) {
    kernels_.push_back(registry.lookup(fn.kernel));  // throws when missing
  }

  if (!options_.cpu_scales.empty()) {
    SAGE_CHECK_AS(ConfigError,
                  static_cast<int>(options_.cpu_scales.size()) == config.nodes,
                  "cpu_scales size ", options_.cpu_scales.size(),
                  " != node count ", config.nodes);
  }

  // Spawn the emulated machine once; its node threads park between runs.
  net::FabricModel fabric =
      options_.fabric ? *options_.fabric : net::myrinet_fabric();
  if (options_.cpu_scales.empty()) {
    machine_ = std::make_unique<net::Machine>(config.nodes, std::move(fabric),
                                              1.0, options_.transport);
  } else {
    machine_ = std::make_unique<net::Machine>(
        std::move(fabric), options_.cpu_scales, options_.transport);
  }

  allocate_states_();
  prewarm_pool_();

  metrics_ = viz::MetricsRegistry(config.nodes);
  define_metrics_();

  machine_->start();
}

void Session::prewarm_pool_() {
  // Steady-state pooled working set: one payload per in-flight slot of
  // every remote channel, plus one cached flow-control credit per node.
  // With unbounded synchronous depth (0) the in-flight count is
  // workload-dependent, so prewarm each channel's streaming ring bound
  // (which also covers overlapped submissions) and let the first
  // iterations top the pool up if a run exceeds it.
  std::map<std::size_t, std::size_t> want;  // bucket size -> block count
  bool any_remote = false;
  for (const TransferOp& op : program_->ops) {
    if (op.src_node == op.dst_node) continue;
    any_remote = true;
    const std::size_t depth =
        static_cast<std::size_t>(options_.buffer_depth > 0
                                     ? options_.buffer_depth
                                     : op.ring_depth) +
        1;
    // Prewarm the fault-free size; framed fault-mode payloads land in
    // the next bucket only when bytes is within 16 of the bucket edge.
    want[std::bit_ceil(std::max<std::size_t>(op.bytes, 64))] += depth;
  }
  if (any_remote) {
    want[64] += static_cast<std::size_t>(program_->config.nodes);
  }
  net::BufferPool& pool = machine_->fabric().pool();
  for (const auto& [size, count] : want) pool.reserve(size, count);
}

void Session::define_metrics_() {
  using viz::Aggregation;
  namespace fam = viz::families;
  const GlueConfig& config = program_->config;
  // One family at a time (not one function at a time) so each family's
  // series stay contiguous in snapshot order -- the Prometheus
  // exposition groups by family.
  fn_busy_ids_.reserve(config.functions.size());
  for (const FunctionConfig& fn : config.functions) {
    fn_busy_ids_.push_back(metrics_.counter(
        fam::kFunctionBusySeconds,
        "Virtual seconds spent executing this function's kernel",
        {{"function", fn.name}}, /*time_based=*/true));
  }
  fn_calls_ids_.reserve(config.functions.size());
  for (const FunctionConfig& fn : config.functions) {
    fn_calls_ids_.push_back(metrics_.counter(
        fam::kFunctionInvocations,
        "Kernel invocations (every thread of every iteration)",
        {{"function", fn.name}}));
  }
  // Virtual times are measured from host CPU time, so occupancy and the
  // achieved streaming period jitter run to run: time-based, excluded
  // from the deterministic snapshot subset.
  fn_occupancy_ids_.reserve(config.functions.size());
  for (const FunctionConfig& fn : config.functions) {
    fn_occupancy_ids_.push_back(metrics_.gauge(
        fam::kStageOccupancy,
        "Fraction of the stage's capacity (span x threads) spent busy",
        Aggregation::kMax, {{"function", fn.name}}, /*time_based=*/true));
  }
  stream_period_id_ = metrics_.gauge(
      fam::kStreamPeriod,
      "Virtual time between consecutive ticket completions in one "
      "streaming epoch (0 outside steady state)",
      Aggregation::kMax, {}, /*time_based=*/true);
  iterations_id_ =
      metrics_.counter(fam::kIterations, "Iterations completed by the run");
  latency_hist_id_ = metrics_.histogram(
      fam::kIterationLatency,
      "End-to-end iteration latency (source start to sink end)",
      {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0}, {},
      /*time_based=*/true);
  violations_id_ = metrics_.counter(
      fam::kLatencyViolations,
      "Iterations whose latency exceeded the configured threshold", {},
      /*time_based=*/true);
  threshold_id_ = metrics_.gauge(
      fam::kLatencyThreshold, "Configured latency threshold (0 = disabled)");
  makespan_id_ =
      metrics_.gauge(fam::kMakespan, "Modeled end-to-end run time",
                     Aggregation::kSum, {}, /*time_based=*/true);
  fault_drop_id_ = metrics_.counter(
      fam::kFaultsInjected, "Faults injected by the fabric, by kind",
      {{"kind", "drop"}});
  fault_corrupt_id_ = metrics_.counter(fam::kFaultsInjected, "",
                                       {{"kind", "corrupt"}});
  fault_delay_id_ =
      metrics_.counter(fam::kFaultsInjected, "", {{"kind", "delay"}});
  fault_retries_id_ = metrics_.counter(
      fam::kFaultRetries, "Retransmit attempts after a detected loss");
  fault_timeouts_id_ = metrics_.counter(
      fam::kFaultTimeouts, "Loss-detection timeouts waited out by receivers");
  fault_frames_id_ = metrics_.counter(
      fam::kFaultCorruptFrames, "Frames rejected by receiver checksums");
  fault_stalls_id_ = metrics_.counter(
      fam::kFaultStalls, "Modeled node stalls at iteration boundaries");
  degraded_id_ = metrics_.gauge(
      fam::kDegradedNodes, "Nodes the session is running without");
  bytes_copied_id_ = metrics_.counter(
      fam::kDataBytesCopied,
      "Host bytes memcpy'd by the data plane (every pass counted)");
  bytes_moved_id_ = metrics_.counter(
      fam::kDataBytesMoved,
      "Payload bytes handed to the fabric by pooled handle");
  // Pool counters depend on host-thread interleaving (which node thread
  // allocates first), so they are time-based: reported, but excluded
  // from the deterministic snapshot subset.
  pool_hits_id_ = metrics_.counter(
      fam::kPoolHits, "Pooled-buffer acquisitions served from a free list",
      {}, /*time_based=*/true);
  pool_misses_id_ = metrics_.counter(
      fam::kPoolMisses, "Pooled-buffer acquisitions that had to allocate",
      {}, /*time_based=*/true);
  pool_blocks_id_ = metrics_.gauge(
      fam::kPoolBlocks, "Blocks owned by the fabric's buffer pool",
      Aggregation::kSum, {}, /*time_based=*/true);
  // Compile provenance: host wall-clock facts about how this session's
  // program came to be, time-based for the same reason as host_seconds.
  compile_seconds_id_ = metrics_.gauge(
      fam::kProgramCompileSeconds,
      "Wall seconds spent compiling (or cache-loading) the program",
      Aggregation::kMax, {}, /*time_based=*/true);
  if (program_->cache_outcome != PlanCacheOutcome::kNotConsulted) {
    cache_lookup_id_ = metrics_.counter(
        fam::kPlanCacheLookups,
        "Plan-cache lookups by outcome (one per program compile)",
        {{"outcome", to_string(program_->cache_outcome)}},
        /*time_based=*/true);
  }
}

const std::array<int, 4>& Session::link_metric_ids_(int src, int dst) {
  const auto key = std::make_pair(src, dst);
  auto it = link_ids_.find(key);
  if (it != link_ids_.end()) return it->second;
  namespace fam = viz::families;
  const std::vector<std::pair<std::string, std::string>> labels = {
      {"src", std::to_string(src)}, {"dst", std::to_string(dst)}};
  std::array<int, 4> ids = {
      metrics_.counter(fam::kLinkMessages,
                       "Messages accepted on this directed link", labels),
      metrics_.counter(fam::kLinkBytes,
                       "Payload bytes accepted on this directed link", labels),
      metrics_.counter(fam::kLinkRetransmits,
                       "Retransmit attempts issued on this directed link",
                       labels),
      metrics_.counter(
          fam::kLinkBusySeconds,
          "Virtual seconds the board-pair channel spent serializing this "
          "link's payloads (contention model)",
          labels),
  };
  return link_ids_.emplace(key, ids).first->second;
}

void Session::export_metrics_(RunStats& stats, const StreamTicket& ticket,
                              const CompiledProgram& program) {
  const support::VirtualSeconds threshold = ticket.params.threshold;
  metrics_.add(0, iterations_id_, static_cast<double>(stats.iterations));
  for (const auto lat : stats.latencies) {
    metrics_.observe(0, latency_hist_id_, lat);
    if (threshold > 0.0 && lat > threshold) {
      metrics_.add(0, violations_id_, 1.0);
    }
  }
  metrics_.set(0, threshold_id_, threshold);
  metrics_.set(0, makespan_id_, stats.makespan);
  metrics_.set(0, stream_period_id_, stats.stream_period);
  for (std::size_t fn = 0; fn < fn_occupancy_ids_.size(); ++fn) {
    const std::string& name = program.config.functions[fn].name;
    const auto it = stats.occupancy.find(name);
    metrics_.set(0, fn_occupancy_ids_[fn],
                 it != stats.occupancy.end() ? it->second : 0.0);
  }

  metrics_.add(0, fault_drop_id_,
               static_cast<double>(stats.faults.injected_drops));
  metrics_.add(0, fault_corrupt_id_,
               static_cast<double>(stats.faults.injected_corruptions));
  metrics_.add(0, fault_delay_id_,
               static_cast<double>(stats.faults.injected_delays));
  metrics_.add(0, fault_retries_id_,
               static_cast<double>(stats.faults.retries));
  metrics_.add(0, fault_timeouts_id_,
               static_cast<double>(stats.faults.timeouts));
  metrics_.add(0, fault_frames_id_,
               static_cast<double>(stats.faults.corruptions_detected));
  metrics_.add(0, fault_stalls_id_, static_cast<double>(stats.faults.stalls));
  metrics_.set(0, degraded_id_,
               static_cast<double>(stats.faults.degraded_nodes));

  metrics_.add(0, bytes_copied_id_,
               static_cast<double>(stats.data_plane.bytes_copied));
  metrics_.add(0, bytes_moved_id_,
               static_cast<double>(stats.data_plane.bytes_moved));
  metrics_.add(0, pool_hits_id_,
               static_cast<double>(stats.data_plane.pool_hits));
  metrics_.add(0, pool_misses_id_,
               static_cast<double>(stats.data_plane.pool_misses));
  metrics_.set(0, pool_blocks_id_,
               static_cast<double>(stats.data_plane.pool_blocks));

  metrics_.set(0, compile_seconds_id_, program.compile_seconds);
  if (cache_lookup_id_ >= 0) metrics_.add(0, cache_lookup_id_, 1.0);

  // std::map iteration -> (src, dst) order, so first-sight definition
  // order (and with it snapshot order) matches across warm runs and
  // fresh sessions with the same traffic pattern.
  for (const auto& [key, link] : machine_->fabric().link_stats()) {
    const std::array<int, 4>& ids = link_metric_ids_(key.first, key.second);
    metrics_.add(0, ids[0], static_cast<double>(link.messages));
    metrics_.add(0, ids[1], static_cast<double>(link.bytes));
    metrics_.add(0, ids[2], static_cast<double>(link.retransmits));
    metrics_.add(0, ids[3], link.busy_vt);
  }

  stats.metrics = metrics_.snapshot();
}

void Session::allocate_states_() {
  // Pre-allocate every staging buffer and the logical-buffer pool, so
  // warm runs reuse memory instead of reallocating it. Also called by
  // recover(), which changes thread->node placements.
  const CompiledProgram& program = *program_;
  const GlueConfig& config = program.config;
  states_.clear();
  states_.reserve(static_cast<std::size_t>(config.nodes));
  for (int r = 0; r < config.nodes; ++r) {
    auto state = std::make_unique<NodeState>(r);
    auto schedule_it = config.schedule.find(r);
    if (schedule_it != config.schedule.end()) {
      state->order = schedule_it->second;
    }
    state->staging.assign(
        static_cast<std::size_t>(program.total_staging_slots), {});
    state->logical.assign(
        static_cast<std::size_t>(program.total_logical_slots), {});
    state->sends_done.assign(program.ops.size(), 0);
    states_.push_back(std::move(state));
  }
  for (const FunctionConfig& fn : config.functions) {
    for (int t = 0; t < fn.threads; ++t) {
      const int r = fn.thread_nodes[static_cast<std::size_t>(t)];
      NodeState& state = *states_[static_cast<std::size_t>(r)];
      if (fn.role == "source") state.hosts_source = true;
      const auto& binds = program.bindings_of[static_cast<std::size_t>(
          program.fn_thread_base[static_cast<std::size_t>(fn.id)] + t)];
      for (const PortBinding& b : binds) {
        std::size_t elems = 1;
        for (const std::size_t d : b.local_dims) elems *= d;
        state.staging[static_cast<std::size_t>(b.slot)].resize(elems *
                                                               b.elem_bytes);
      }
    }
  }
  for (const TransferOp& op : program.ops) {
    for (const int r : {op.src_node, op.dst_node}) {
      states_[static_cast<std::size_t>(r)]
          ->logical[static_cast<std::size_t>(op.logical_slot)]
          .resize(op.bytes);
    }
  }
}

RecoveryReport Session::recover(const std::vector<int>& dead_ranks) {
  SAGE_CHECK_AS(RuntimeError, !closed(),
                "Session::recover on a closed session");
  // Quiesce: a remap swaps the program and reallocates node state, so
  // every in-flight ticket must land first (they stay redeemable).
  end_epoch_();
  const int nodes = program_->config.nodes;
  RecoveryReport report;
  for (const int rank : dead_ranks) {
    SAGE_CHECK_AS(RuntimeError, rank >= 0 && rank < nodes,
                  "recover: rank ", rank, " outside machine of ", nodes,
                  " nodes");
    if (std::find(dead_nodes_.begin(), dead_nodes_.end(), rank) ==
        dead_nodes_.end()) {
      dead_nodes_.push_back(rank);
      report.dead_nodes.push_back(rank);
    }
  }
  if (report.dead_nodes.empty()) return report;  // idempotent per rank
  std::sort(dead_nodes_.begin(), dead_nodes_.end());
  std::sort(report.dead_nodes.begin(), report.dead_nodes.end());
  SAGE_CHECK_AS(RuntimeError, static_cast<int>(dead_nodes_.size()) < nodes,
                "recover: no surviving node left");

  const auto is_dead = [&](int rank) {
    return std::binary_search(dead_nodes_.begin(), dead_nodes_.end(), rank);
  };

  // The shared program is immutable; work on a private copy of its
  // config and compile a session-private replacement at the end.
  GlueConfig config = program_->config;

  // Deterministic greedy remap: move each stranded thread, in function-id
  // then thread order, to the survivor with the fewest assigned threads
  // (ties to the lowest rank). Mirrors the atot greedy mapper's
  // tie-breaking so remapped placements stay reproducible.
  std::vector<int> load(static_cast<std::size_t>(config.nodes), 0);
  for (const FunctionConfig& fn : config.functions) {
    for (const int node : fn.thread_nodes) {
      if (!is_dead(node)) ++load[static_cast<std::size_t>(node)];
    }
  }
  for (FunctionConfig& fn : config.functions) {
    for (int& node : fn.thread_nodes) {
      if (!is_dead(node)) continue;
      int best = -1;
      for (int r = 0; r < config.nodes; ++r) {
        if (is_dead(r)) continue;
        if (best == -1 || load[static_cast<std::size_t>(r)] <
                              load[static_cast<std::size_t>(best)]) {
          best = r;
        }
      }
      node = best;
      ++load[static_cast<std::size_t>(best)];
      ++report.moved_threads;
    }
  }

  // Rebuild the per-node schedules the way the code generator emits
  // them: function-table ids in id order, filtered to the node.
  config.schedule.clear();
  for (int r = 0; r < config.nodes; ++r) {
    std::vector<int> order;
    for (const FunctionConfig& fn : config.functions) {
      if (std::find(fn.thread_nodes.begin(), fn.thread_nodes.end(), r) !=
          fn.thread_nodes.end()) {
        order.push_back(fn.id);
      }
    }
    if (!order.empty()) config.schedule[r] = std::move(order);
  }
  // Placement changed: remote/local classification, share groups, and
  // slot residency all shift, so compile a fresh (session-private,
  // uncached) program for the degraded placement. Other sessions
  // sharing the old program keep executing it untouched.
  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    program_ = Compiler::lower(std::move(config));
  }
  allocate_states_();
  prewarm_pool_();
  pending_recoveries_.push_back(report);
  return report;
}

void Session::swap_program(std::shared_ptr<const CompiledProgram> next) {
  SAGE_CHECK_AS(RuntimeError, !closed(),
                "Session::swap_program on a closed session");
  SAGE_CHECK_AS(RuntimeError, next != nullptr,
                "Session::swap_program needs a program");
  const GlueConfig& incoming = next->config;
  {
    const GlueConfig& current = program_->config;
    SAGE_CHECK_AS(RuntimeError, incoming.nodes == current.nodes,
                  "swap_program: node count changed (", current.nodes, " -> ",
                  incoming.nodes, ")");
    SAGE_CHECK_AS(RuntimeError,
                  incoming.functions.size() == current.functions.size(),
                  "swap_program: function table changed size");
    for (std::size_t i = 0; i < incoming.functions.size(); ++i) {
      const FunctionConfig& a = current.functions[i];
      const FunctionConfig& b = incoming.functions[i];
      SAGE_CHECK_AS(RuntimeError,
                    a.id == b.id && a.name == b.name && a.kernel == b.kernel &&
                        a.threads == b.threads,
                    "swap_program: function ", a.name,
                    " changed identity; only placements may differ");
    }
  }
  for (const FunctionConfig& fn : incoming.functions) {
    for (const int node : fn.thread_nodes) {
      SAGE_CHECK_AS(
          RuntimeError,
          !std::binary_search(dead_nodes_.begin(), dead_nodes_.end(), node),
          "swap_program: function ", fn.name, " placed on dead node ", node);
    }
  }
  // Quiesce-and-swap, exactly the recover() machinery: every queued
  // ticket lands first (collected or not -- uncollected tickets stay
  // redeemable), then the program pointer flips under stream_mu_ (the
  // owning host thread may be collecting a pre-swap ticket concurrently,
  // see wait()) and node-local staging plus the warm buffer pool are
  // rebuilt for the new placement. Kernel bindings and metric series
  // are keyed by function id against an unchanged table, so both carry
  // over untouched.
  end_epoch_();
  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    program_ = std::move(next);
  }
  allocate_states_();
  prewarm_pool_();
}

Session::~Session() { close(); }

Result<std::unique_ptr<Session>> Session::create(GlueConfig config,
                                                 const FunctionRegistry& registry,
                                                 ExecuteOptions options) {
  try {
    return Result<std::unique_ptr<Session>>::success(std::make_unique<Session>(
        std::move(config), registry, std::move(options)));
  } catch (const std::exception& e) {
    return Result<std::unique_ptr<Session>>::failure(e.what());
  }
}

Result<std::unique_ptr<Session>> Session::create(
    std::shared_ptr<const CompiledProgram> program,
    const FunctionRegistry& registry, ExecuteOptions options) {
  try {
    return Result<std::unique_ptr<Session>>::success(std::make_unique<Session>(
        std::move(program), registry, std::move(options)));
  } catch (const std::exception& e) {
    return Result<std::unique_ptr<Session>>::failure(e.what());
  }
}

net::Fabric& Session::fabric() {
  SAGE_CHECK_AS(RuntimeError, machine_ != nullptr,
                "Session::fabric() on a closed session");
  return machine_->fabric();
}

void Session::close() {
  if (closed()) return;
  // Land any in-flight epoch before parking the machine. Uncollected
  // tickets become unredeemable -- collect before closing.
  end_epoch_();
  machine_.reset();
  std::lock_guard<std::mutex> lock(stream_mu_);
  tickets_.clear();
}

void Session::reset_between_runs_() {
  // The fabric may hold unclaimed flow-control credits from the previous
  // epoch, accumulated totals, and link contention history; a cold
  // engine would start from scratch. The payload pool intentionally
  // survives the reset -- recycling warm buffers across runs is the
  // point.
  machine_->fabric().reset();
  // Metric values restart at zero; definitions (and ids) persist.
  metrics_.reset();
  for (const auto& state : states_) {
    std::fill(state->sends_done.begin(), state->sends_done.end(), 0u);
    // Staging starts zeroed on a cold run (vector value-init); match it
    // so a kernel that reads-before-write sees identical bytes.
    for (auto& storage : state->staging) {
      std::fill(storage.begin(), storage.end(), std::byte{0});
    }
  }
}

Session::TicketParams Session::resolve_(const RunOverrides& request) const {
  TicketParams params;
  int iterations = request.iterations;
  if (iterations <= 0) iterations = options_.iterations;
  if (iterations <= 0) iterations = program_->config.iterations_default;
  SAGE_CHECK_AS(RuntimeError, iterations > 0, "nothing to run: ", iterations,
                " iterations");
  params.iterations = iterations;
  params.policy = request.buffer_policy.value_or(options_.buffer_policy);
  params.trace = request.collect_trace.value_or(options_.collect_trace);
  params.metrics = request.collect_metrics.value_or(options_.collect_metrics);
  params.threshold =
      request.latency_threshold.value_or(options_.latency_threshold);
  params.depth = request.buffer_depth.value_or(options_.buffer_depth);
  params.plan = request.fault_plan.value_or(options_.fault_plan);
  return params;
}

void Session::begin_epoch_(const TicketParams& params, bool streaming) {
  const bool faulty = params.plan != nullptr && params.plan->active();
  reset_between_runs_();
  // An inactive plan must leave the fabric on the exact fault-free code
  // path (bit-identical contract), so only an active plan is attached.
  machine_->fabric().set_fault_plan(faulty ? params.plan : nullptr);
  pool_mark_ = machine_->fabric().pool().stats();
  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    epoch_tickets_.clear();
    epoch_active_ = true;
    epoch_closing_ = false;
    epoch_failed_ = false;
    epoch_streaming_ = streaming;
    epoch_faulty_ = faulty;
    epoch_depth_ = params.depth;
    epoch_plan_ = params.plan;
    epoch_program_ = [this](net::NodeContext& node) { stream_worker_(node); };
  }
  machine_->dispatch(epoch_program_);
}

void Session::end_epoch_() {
  if (machine_ == nullptr) return;
  {
    std::unique_lock<std::mutex> lock(stream_mu_);
    if (!epoch_active_) return;
    // Every queued ticket lands first; collected or not, tickets stay
    // redeemable after their epoch closes.
    stream_done_cv_.wait(lock, [&] {
      for (const auto& ticket : epoch_tickets_) {
        if (!ticket->done) return false;
      }
      return true;
    });
    epoch_closing_ = true;
    epoch_active_ = false;
  }
  stream_cv_.notify_all();
  // The workers never throw out of the node program (ticket errors are
  // stored on the ticket and surfaced by wait()), so join is clean.
  machine_->join_run();
  std::lock_guard<std::mutex> lock(stream_mu_);
  epoch_tickets_.clear();
  epoch_closing_ = false;
  epoch_failed_ = false;
  epoch_streaming_ = false;
  epoch_faulty_ = false;
  epoch_depth_ = 0;
  epoch_plan_.reset();
  epoch_program_ = nullptr;
}

Ticket Session::submit_(const RunOverrides& request, bool streaming) {
  const double submit_wall = support::wall_seconds();
  TicketParams params = resolve_(request);

  // A plan naming dead nodes runs degraded: remap before dispatch. Only
  // a *new* dead rank triggers the (epoch-quiescing) recovery, so
  // streamed submissions under a stable degraded plan keep overlapping.
  if (params.plan != nullptr && params.plan->active() &&
      !params.plan->dead_nodes.empty()) {
    bool pending = false;
    for (const int rank : params.plan->dead_nodes) {
      if (!std::binary_search(dead_nodes_.begin(), dead_nodes_.end(), rank)) {
        pending = true;
        break;
      }
    }
    if (pending) recover(params.plan->dead_nodes);
  }

  auto ticket = std::make_shared<StreamTicket>();
  ticket->id = next_ticket_id_++;
  ticket->params = std::move(params);
  ticket->submit_wall = submit_wall;
  const int nodes = program_->config.nodes;
  const std::size_t nfn = program_->config.functions.size();
  ticket->nodes.reserve(static_cast<std::size_t>(nodes));
  for (int r = 0; r < nodes; ++r) {
    auto& share = ticket->nodes.emplace_back(r);
    share.fn_busy.assign(nfn, 0.0);
    share.fn_calls.assign(nfn, 0.0);
  }

  // Surface recoveries applied since the last submission on this
  // ticket's trace (recorded pre-publication: the ticket is still
  // host-private). One event, attributed to the lowest surviving rank.
  if (ticket->params.trace) {
    for (const RecoveryReport& recovery : pending_recoveries_) {
      for (int r = 0; r < nodes; ++r) {
        if (std::binary_search(dead_nodes_.begin(), dead_nodes_.end(), r)) {
          continue;
        }
        viz::Event e;
        e.kind = viz::EventKind::kRecovery;
        e.label = "recover: moved " +
                  std::to_string(recovery.moved_threads) + " threads off " +
                  std::to_string(recovery.dead_nodes.size()) + " dead nodes";
        ticket->nodes[static_cast<std::size_t>(r)].events.record(e);
        break;
      }
    }
  }
  pending_recoveries_.clear();

  // Join the active epoch when compatible, else quiesce it and open a
  // fresh one. The compatibility check and the publication share one
  // lock scope, so a concurrent node failure cannot slip this ticket
  // into a dying epoch (its workers may already have exited).
  std::unique_lock<std::mutex> lock(stream_mu_);
  const bool join = streaming && epoch_active_ && !epoch_failed_ &&
                    epoch_streaming_ && epoch_depth_ == ticket->params.depth &&
                    epoch_plan_ == ticket->params.plan;
  if (!join) {
    lock.unlock();
    end_epoch_();
    // Synchronous runs always open a private epoch: the full
    // cold-equivalent reset is the run()/run_batch() contract.
    begin_epoch_(ticket->params, streaming);
    lock.lock();
  }
  ticket->index = epoch_tickets_.size();
  epoch_tickets_.push_back(ticket);
  tickets_[ticket->id] = ticket;
  lock.unlock();
  stream_cv_.notify_all();
  return Ticket{ticket->id};
}

RunStats Session::run(const RunOverrides& request) {
  SAGE_CHECK_AS(RuntimeError, !closed(), "Session::run on a closed session");
  return wait(submit_(request, /*streaming=*/false));
}

std::vector<RunStats> Session::run_batch(int runs, const RunOverrides& request) {
  SAGE_CHECK_AS(RuntimeError, runs > 0, "run_batch needs runs > 0, got ",
                runs);
  std::vector<RunStats> all;
  all.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) all.push_back(run(request));
  return all;
}

Ticket Session::submit(const RunOverrides& request) {
  SAGE_CHECK_AS(RuntimeError, !closed(),
                "Session::submit on a closed session");
  return submit_(request, /*streaming=*/true);
}

bool Session::poll(Ticket ticket) const {
  std::lock_guard<std::mutex> lock(stream_mu_);
  const auto it = tickets_.find(ticket.id);
  SAGE_CHECK_AS(RuntimeError, it != tickets_.end(),
                "Session::poll: unknown or already-collected ticket ",
                ticket.id);
  return it->second->done;
}

RunStats Session::wait(Ticket ticket) {
  SAGE_CHECK_AS(RuntimeError, !closed(), "Session::wait on a closed session");
  std::shared_ptr<StreamTicket> t;
  std::shared_ptr<const CompiledProgram> program;
  {
    std::unique_lock<std::mutex> lock(stream_mu_);
    const auto it = tickets_.find(ticket.id);
    SAGE_CHECK_AS(RuntimeError, it != tickets_.end(),
                  "Session::wait: unknown or already-collected ticket ",
                  ticket.id);
    t = it->second;
    stream_done_cv_.wait(lock, [&] { return t->done; });
    tickets_.erase(t->id);
    // Capture the program while stream_mu_ is held: a tuner-thread
    // swap_program() may retarget program_ between this ticket landing
    // and its collection. The function table is identical across swaps,
    // so collecting a pre-swap ticket against the successor program
    // yields the same stats.
    program = program_;
  }
  // `done` was set under stream_mu_ after the last node landed its
  // share, so the shares are quiescent and safely readable here.
  if (t->error) std::rethrow_exception(t->error);
  RunStats stats = collect_(*t, *program);
  stats.host_seconds = support::wall_seconds() - t->submit_wall;
  ++runs_completed_;
  return stats;
}

std::vector<RunStats> Session::drain() {
  std::vector<std::uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    ids.reserve(tickets_.size());
    for (const auto& [id, ticket] : tickets_) ids.push_back(id);
  }
  std::vector<RunStats> all;
  all.reserve(ids.size());
  for (const std::uint64_t id : ids) all.push_back(wait(Ticket{id}));
  return all;
}

int Session::in_flight() const {
  std::lock_guard<std::mutex> lock(stream_mu_);
  return static_cast<int>(tickets_.size());
}

void Session::stream_worker_(net::NodeContext& node) {
  const int rank = node.rank();
  const int node_count = static_cast<int>(states_.size());

  // Marks this node's share of `ticket` finished (stream_mu_ held). The
  // last node to land a ticket computes its completion facts -- tickets
  // complete in submission order, so the previous ticket's complete_vt
  // is already final -- and wakes the host. A real error from any rank
  // always outranks the generic poison placeholder: poison lands with
  // rank + node_count so the root cause is what wait() rethrows even
  // when a lower rank swept the ticket before the failing rank landed.
  const auto land = [&](StreamTicket& ticket, std::exception_ptr error,
                        bool poison = false) {
    auto& share = ticket.nodes[static_cast<std::size_t>(rank)];
    share.end_vt = node.now();
    if (error) {
      epoch_failed_ = true;
      const int error_rank = rank + (poison ? node_count : 0);
      if (ticket.error_rank < 0 || error_rank < ticket.error_rank) {
        ticket.error = std::move(error);
        ticket.error_rank = error_rank;
      }
    }
    if (++ticket.nodes_done == node_count) {
      support::VirtualSeconds complete = 0.0;
      for (const auto& s : ticket.nodes) {
        complete = std::max(complete, s.end_vt);
      }
      ticket.complete_vt = complete;
      if (ticket.index > 0) {
        ticket.stream_period =
            complete - epoch_tickets_[ticket.index - 1]->complete_vt;
      }
      ticket.done = true;
      stream_done_cv_.notify_all();
    }
  };

  std::size_t cursor = 0;
  for (;;) {
    std::shared_ptr<StreamTicket> ticket;
    {
      std::unique_lock<std::mutex> lock(stream_mu_);
      stream_cv_.wait(lock, [&] {
        return epoch_failed_ || epoch_closing_ ||
               cursor < epoch_tickets_.size();
      });
      if (epoch_failed_) {
        // A node died: poison every ticket this node never started so
        // completion bookkeeping converges, then leave the dispatch.
        // No further tickets can join a failed epoch (submit_ checks
        // under this mutex), so the sweep is complete.
        for (; cursor < epoch_tickets_.size(); ++cursor) {
          land(*epoch_tickets_[cursor],
               std::make_exception_ptr(RuntimeError(
                   "streaming epoch aborted by a node failure")),
               /*poison=*/true);
        }
        return;
      }
      if (cursor >= epoch_tickets_.size()) return;  // epoch closing
      ticket = epoch_tickets_[cursor++];
    }

    std::exception_ptr error;
    try {
      run_node_ticket_(node, *ticket);
    } catch (...) {
      error = std::current_exception();
    }

    std::lock_guard<std::mutex> lock(stream_mu_);
    land(*ticket, std::move(error));
    if (epoch_failed_) {
      for (; cursor < epoch_tickets_.size(); ++cursor) {
        land(*epoch_tickets_[cursor],
             std::make_exception_ptr(RuntimeError(
                 "streaming epoch aborted by a node failure")),
             /*poison=*/true);
      }
      stream_cv_.notify_all();  // wake peers into their poison sweep
      return;
    }
  }
}

RunStats Session::collect_(StreamTicket& ticket,
                           const CompiledProgram& program) {
  const TicketParams& params = ticket.params;
  const int iterations = params.iterations;

  RunStats stats;
  stats.ticket = ticket.id;
  stats.iterations = iterations;
  stats.makespan = ticket.complete_vt;
  stats.stream_period = ticket.stream_period;
  // Fabric and pool counters are epoch-cumulative at collection time:
  // exact per run on the synchronous path (one ticket per epoch over a
  // freshly reset fabric), cumulative-so-far under overlap.
  stats.fabric_messages = machine_->fabric().total_messages();
  stats.fabric_bytes = machine_->fabric().total_bytes();

  const net::FaultCounters fault_counters = machine_->fabric().fault_counters();
  stats.faults.injected_drops = fault_counters.drops;
  stats.faults.injected_corruptions = fault_counters.corruptions;
  stats.faults.injected_delays = fault_counters.delays;
  stats.faults.retries = fault_counters.retransmits;
  for (const auto& share : ticket.nodes) {
    stats.faults.timeouts += share.observed_timeouts;
    stats.faults.corruptions_detected += share.observed_corruptions;
    stats.faults.stalls += share.stalls;
  }
  stats.faults.degraded_nodes = static_cast<int>(dead_nodes_.size());

  for (const auto& share : ticket.nodes) {
    stats.data_plane.bytes_copied += share.bytes_copied;
    stats.data_plane.bytes_moved += share.bytes_moved;
  }
  const net::BufferPoolStats pool_stats = machine_->fabric().pool().stats();
  stats.data_plane.pool_hits = pool_stats.hits - pool_mark_.hits;
  stats.data_plane.pool_misses = pool_stats.misses - pool_mark_.misses;
  stats.data_plane.pool_blocks =
      pool_stats.blocks_live + pool_stats.blocks_pooled;
  stats.data_plane.pool_bytes_reserved = pool_stats.bytes_reserved;

  // Latency: min source start / max sink end per iteration.
  std::vector<double> starts(static_cast<std::size_t>(iterations), 0.0);
  std::vector<double> ends(static_cast<std::size_t>(iterations), 0.0);
  std::vector<bool> has_start(static_cast<std::size_t>(iterations), false);
  std::vector<bool> has_end(static_cast<std::size_t>(iterations), false);
  for (const auto& share : ticket.nodes) {
    for (std::size_t i = 0; i < share.iter_start.size() &&
                            i < static_cast<std::size_t>(iterations);
         ++i) {
      if (!has_start[i] || share.iter_start[i] < starts[i]) {
        starts[i] = share.iter_start[i];
        has_start[i] = true;
      }
    }
    // Sinks may record several ends per iteration (multiple threads);
    // they are appended in iteration order per node, so fold by index
    // modulo the per-node count per iteration.
    const std::size_t per_iter =
        share.iter_end.empty()
            ? 0
            : share.iter_end.size() / static_cast<std::size_t>(iterations);
    for (std::size_t i = 0; i < share.iter_end.size(); ++i) {
      if (per_iter == 0) break;
      const std::size_t iter = i / per_iter;
      if (iter >= static_cast<std::size_t>(iterations)) break;
      if (!has_end[iter] || share.iter_end[i] > ends[iter]) {
        ends[iter] = share.iter_end[i];
        has_end[iter] = true;
      }
    }
  }
  for (int i = 0; i < iterations; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (has_start[idx] && has_end[idx]) {
      stats.latencies.push_back(ends[idx] - starts[idx]);
    }
  }
  // Period: mean distance between consecutive completion times.
  int completed = 0;
  double first_end = 0.0;
  double last_end = 0.0;
  for (int i = 0; i < iterations; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (has_end[idx]) {
      if (completed == 0) first_end = ends[idx];
      last_end = ends[idx];
      ++completed;
    }
  }
  if (completed > 1) {
    stats.period = (last_end - first_end) / static_cast<double>(completed - 1);
  } else if (!stats.latencies.empty()) {
    stats.period = stats.latencies.front();
  }

  // Results: sum kernel-reported values per function per iteration.
  for (const auto& share : ticket.nodes) {
    for (const auto& [fn_id, iter, value] : share.results) {
      const std::string& name = program.config.function(fn_id).name;
      auto& series = stats.results[name];
      if (series.size() < static_cast<std::size_t>(iterations)) {
        series.resize(static_cast<std::size_t>(iterations), 0.0);
      }
      series[static_cast<std::size_t>(iter)] += value;
    }
  }

  // Per-stage occupancy over this ticket's span: kernel-busy virtual
  // seconds (all threads) / (span x thread count). The stage nearest
  // 1.0 is the one that sets the steady-state period.
  if (params.metrics) {
    support::VirtualSeconds span_start = ticket.nodes.empty()
                                             ? 0.0
                                             : ticket.nodes.front().start_vt;
    for (const auto& share : ticket.nodes) {
      span_start = std::min(span_start, share.start_vt);
    }
    const support::VirtualSeconds span = ticket.complete_vt - span_start;
    const GlueConfig& config = program.config;
    for (const FunctionConfig& fn : config.functions) {
      double busy = 0.0;
      for (const auto& share : ticket.nodes) {
        busy += share.fn_busy[static_cast<std::size_t>(fn.id)];
      }
      const double capacity = span * static_cast<double>(fn.threads);
      stats.occupancy[fn.name] = capacity > 0.0 ? busy / capacity : 0.0;
    }
  }

  if (params.trace) {
    std::vector<const viz::EventBuffer*> buffers;
    buffers.reserve(ticket.nodes.size());
    for (const auto& share : ticket.nodes) buffers.push_back(&share.events);
    stats.trace = viz::Trace::merge(buffers);
  }

  if (params.metrics) {
    // Fold the per-ticket kernel accumulators into the (quiescent --
    // workers never touch it) registry, reproducing exactly the shard
    // cells the node threads used to write inline: same shard, same
    // accumulation order, cells untouched where no call landed.
    metrics_.reset();
    for (std::size_t r = 0; r < ticket.nodes.size(); ++r) {
      const auto& share = ticket.nodes[r];
      for (std::size_t fn = 0; fn < share.fn_calls.size(); ++fn) {
        if (share.fn_calls[fn] == 0.0) continue;
        metrics_.add(static_cast<int>(r), fn_busy_ids_[fn],
                     share.fn_busy[fn]);
        metrics_.add(static_cast<int>(r), fn_calls_ids_[fn],
                     share.fn_calls[fn]);
      }
    }
    export_metrics_(stats, ticket, program);
  }

  return stats;
}

void Session::run_node_ticket_(net::NodeContext& node, StreamTicket& ticket) {
  const int rank = node.rank();
  NodeState& state = *states_[static_cast<std::size_t>(rank)];
  StreamTicket::NodeShare& share =
      ticket.nodes[static_cast<std::size_t>(rank)];
  const CompiledProgram& program = *program_;
  const GlueConfig& cfg = program.config;
  const TicketParams& params = ticket.params;
  const int iterations = params.iterations;
  const bool unique = params.policy == BufferPolicy::kUniquePerFunction;
  const bool trace = params.trace;
  const bool metrics = params.metrics;
  const double recv_timeout = options_.recv_timeout_s;

  share.start_vt = node.now();
  if (ticket.index > 0) {
    // Later tickets of an epoch re-create the staging image a warm
    // reset gives the first one: zeroed bytes (a host-side memset; the
    // virtual clock is untouched), so read-before-write kernels see the
    // same input whether data sets overlapped or ran back to back.
    for (auto& storage : state.staging) {
      std::fill(storage.begin(), storage.end(), std::byte{0});
    }
  }

  // Per-channel effective flow-control depth: an explicit epoch depth
  // wins; streamed epochs fall back to the compiler's static ring bound
  // (TransferOp::ring_depth); synchronous epochs leave credits off (0 =
  // unbounded), exactly the pre-streaming behaviour.
  const auto op_depth = [&](const TransferOp& op) {
    if (epoch_depth_ > 0) return epoch_depth_;
    return epoch_streaming_ ? op.ring_depth : 0;
  };

  // Fault mode: with an active plan, every remote transfer (data and
  // flow-control credits) travels framed over the reliable fabric path.
  // The happy path below is untouched when `faulty` is false -- that is
  // the bit-identical contract.
  const net::FaultPlan* plan = epoch_plan_.get();
  const bool faulty = epoch_faulty_;
  net::Fabric& fabric = node.fabric();
  net::BufferPool& pool = fabric.pool();

  // Cached flow-control credit payloads (content is constant, so one
  // pooled block serves every credit send of the run; the fabric's
  // copy-on-write keeps injected corruption off the shared block).
  net::Payload credit_payload;  // fault-free path: one zero byte
  net::Payload credit_frame;    // fault path: framed zero byte

  const auto record_fault = [&](int fn_id, int t, int iter, double start_vt,
                                std::uint64_t bytes, std::string label) {
    if (!trace) return;
    viz::Event e;
    e.kind = viz::EventKind::kFault;
    e.function_id = fn_id;
    e.thread = t;
    e.iteration = iter;
    e.start_vt = start_vt;
    e.end_vt = node.now();
    e.bytes = bytes;
    e.label = std::move(label);
    share.events.record(e);
  };

  /// Reliable framed send (fault mode only). The payload is a complete
  /// frame; the fabric resolves the whole retransmit exchange, the
  /// sender's clock joins the post-ARQ time, and each retransmit is
  /// surfaced as a kRetry event.
  const auto send_framed = [&](int dst_node, int tag, net::Payload frame,
                               std::size_t body_bytes, int fn_id, int t,
                               int iter, const std::string& label) {
    const double t_before = node.now();
    const net::SendReceipt receipt = fabric.send_reliable(
        rank, dst_node, tag, std::move(frame), node.now());
    node.clock().join(receipt.sender_after);
    if (trace) {
      for (int attempt = 1; attempt < receipt.attempts; ++attempt) {
        viz::Event e;
        e.kind = viz::EventKind::kRetry;
        e.function_id = fn_id;
        e.thread = t;
        e.iteration = iter;
        e.start_vt = t_before;
        e.end_vt = node.now();
        e.bytes = body_bytes;
        e.label = label;
        share.events.record(e);
      }
    }
  };

  /// Reliable framed receive (fault mode only): consumes deliveries in
  /// arrival order, counting drop tombstones (loss-detection timeouts)
  /// and rejecting invalid frames until a clean one lands. The frame
  /// checksum -- not the fabric's fault flag -- is the integrity oracle,
  /// so corruption whose flips cancel is rightly accepted. Returns the
  /// whole pooled frame (header included).
  const auto recv_framed = [&](int src_node, int tag, int fn_id, int t,
                               int iter,
                               const std::string& label) -> net::Payload {
    for (;;) {
      const double t_before = node.now();
      net::Message msg = fabric.recv(rank, src_node, tag, recv_timeout);
      node.clock().join(msg.arrival_vt);
      if (msg.fault == net::FaultKind::kDrop) {
        ++share.observed_timeouts;
        record_fault(fn_id, t, iter, t_before, 0, label + " [timeout]");
        continue;
      }
      bool valid = false;
      {
        support::ComputeScope scope(node.clock(), node.cpu_scale());
        valid = frame_valid(msg.payload);
      }
      if (!valid) {
        ++share.observed_corruptions;
        record_fault(fn_id, t, iter, t_before, msg.payload.size(),
                     label + " [corrupt]");
        continue;
      }
      if (msg.fault == net::FaultKind::kDelay) {
        record_fault(fn_id, t, iter, t_before, msg.payload.size(),
                     label + " [delay]");
      }
      return std::move(msg.payload);
    }
  };

  /// Returns a flow-control credit for a drained slot (1 payload byte;
  /// framed under an active plan).
  const auto send_credit = [&](int dst_node, int tag, int fn_id, int t,
                               int iter, const std::string& label) {
    if (faulty) {
      if (credit_frame.empty()) {
        credit_frame = pool.acquire(kFrameHeaderBytes + 1);
        const std::span<std::byte> frame = credit_frame.writable();
        frame[kFrameHeaderBytes] = std::byte{0};
        write_frame_header(
            frame, 1,
            fnv1a_accum(kFnvOffsetBasis, frame.data() + kFrameHeaderBytes, 1));
      }
      send_framed(dst_node, tag, credit_frame, 1, fn_id, t, iter, label);
    } else {
      if (credit_payload.empty()) {
        credit_payload = pool.acquire(1);
        credit_payload.writable()[0] = std::byte{0};
      }
      node.clock().join(
          fabric.send(rank, dst_node, tag, credit_payload, node.now()));
    }
  };

  /// Blocks until the consumer's credit for a free slot arrives.
  const auto wait_credit = [&](int src_node, int tag, int fn_id, int t,
                               int iter, const std::string& label) {
    if (faulty) {
      (void)recv_framed(src_node, tag, fn_id, t, iter, label);
    } else {
      const net::Message msg = fabric.recv(rank, src_node, tag, recv_timeout);
      node.clock().join(msg.arrival_vt);
    }
  };

  for (int iter = 0; iter < iterations; ++iter) {
    if (faulty) {
      // Modeled node hiccup entering this iteration (thermal event,
      // competing load, GC pause on the emulated host...).
      const double stall = plan->stall_vt(rank, iter);
      if (stall > 0) {
        const double t_before = node.now();
        node.clock().advance(stall);
        ++share.stalls;
        record_fault(-1, 0, iter, t_before, 0, "stall");
      }
    }
    if (state.hosts_source) {
      share.iter_start.push_back(node.now());
      if (trace) {
        viz::Event e;
        e.kind = viz::EventKind::kIterationStart;
        e.iteration = iter;
        e.start_vt = e.end_vt = node.now();
        e.label = "iteration";
        share.events.record(e);
      }
    }

    for (int fn_id : state.order) {
      const FunctionConfig& fn = cfg.function(fn_id);
      for (int t = 0; t < fn.threads; ++t) {
        if (fn.thread_nodes[static_cast<std::size_t>(t)] != rank) continue;
        const auto fti = static_cast<std::size_t>(
            program.fn_thread_base[static_cast<std::size_t>(fn_id)] + t);

        // --- 1. receive remote inputs -----------------------------------
        for (const int op_idx : program.recv_ops_of[fti]) {
          const TransferOp& op = program.ops[static_cast<std::size_t>(op_idx)];
          const PlannedBuffer& buf =
              program.buffers[static_cast<std::size_t>(op.buf)];
          const double t_before = node.now();
          net::Payload payload;
          std::span<const std::byte> body;
          if (faulty) {
            payload = recv_framed(op.src_node, op.tag, fn_id, t, iter,
                                  buf.label);
            body = payload.bytes().subspan(kFrameHeaderBytes);
          } else {
            net::Message msg =
                fabric.recv(rank, op.src_node, op.tag, recv_timeout);
            node.clock().join(msg.arrival_vt);
            payload = std::move(msg.payload);
            body = payload.bytes();
          }
          if (trace) {
            viz::Event e;
            e.kind = viz::EventKind::kReceive;
            e.function_id = fn_id;
            e.thread = t;
            e.iteration = iter;
            e.start_vt = t_before;
            e.end_vt = node.now();
            e.bytes = body.size();
            e.label = buf.label;
            share.events.record(e);
          }
          std::vector<std::byte>& dst_staging =
              state.staging[static_cast<std::size_t>(op.dst_slot)];
          {
            support::ComputeScope scope(node.clock(), node.cpu_scale());
            if (unique) {
              // Stage through the function's own logical buffer copy.
              std::vector<std::byte>& logical =
                  state.logical[static_cast<std::size_t>(op.logical_slot)];
              std::memcpy(logical.data(), body.data(), op.bytes);
              unpack_bytes(op.segs, logical, dst_staging);
            } else if (op.contiguous) {
              // Zero-copy landing: the pooled payload scatters straight
              // into the staging slice, one pass.
              std::memcpy(dst_staging.data() + op.segs.front().dst_off,
                          body.data(), op.bytes);
            } else {
              unpack_bytes(op.segs, body, dst_staging);
            }
          }
          share.bytes_copied += unique ? 2 * op.bytes : op.bytes;
          // Release the pooled block before the credit round-trip so the
          // producer's next payload can reuse it.
          payload.reset();
          if (op_depth(op) > 0) {
            send_credit(op.src_node, op.tag, fn_id, t, iter,
                        buf.label + " credit");
          }
        }

        // --- 2. execute the kernel ---------------------------------------
        KernelContext kctx(t, fn.threads, iter);
        kctx.params.insert(fn.params.begin(), fn.params.end());
        for (const PortBinding& b : program.bindings_of[fti]) {
          PortSlice slice;
          slice.name = b.name;
          slice.data = state.staging[static_cast<std::size_t>(b.slot)];
          slice.elem_bytes = b.elem_bytes;
          slice.local_dims = b.local_dims;
          slice.global_dims = b.global_dims;
          slice.runs = b.runs;
          if (b.is_input) {
            kctx.inputs.push_back(std::move(slice));
          } else {
            kctx.outputs.push_back(std::move(slice));
          }
        }

        const double exec_start = node.now();
        {
          support::ComputeScope scope(node.clock(), node.cpu_scale());
          kernels_[static_cast<std::size_t>(fn_id)](kctx);
        }
        if (metrics) {
          // Two fixed-slot accumulator writes, folded into the metrics
          // registry shards at collection (the registry stays host-only
          // while tickets overlap); like the probes, charged to host
          // time only.
          share.fn_busy[static_cast<std::size_t>(fn_id)] +=
              node.now() - exec_start;
          share.fn_calls[static_cast<std::size_t>(fn_id)] += 1.0;
        }
        if (trace && cfg.probed(fn_id)) {
          viz::Event start;
          start.kind = viz::EventKind::kFunctionStart;
          start.function_id = fn_id;
          start.thread = t;
          start.iteration = iter;
          start.start_vt = start.end_vt = exec_start;
          start.label = fn.name;
          share.events.record(start);
          viz::Event end = start;
          end.kind = viz::EventKind::kFunctionEnd;
          end.start_vt = end.end_vt = node.now();
          share.events.record(end);
        }
        if (kctx.has_result()) {
          share.results.emplace_back(fn_id, iter, kctx.result());
        }
        if (fn.role == "sink") {
          share.iter_end.push_back(node.now());
          if (trace) {
            viz::Event e;
            e.kind = viz::EventKind::kIterationEnd;
            e.iteration = iter;
            e.start_vt = e.end_vt = node.now();
            e.label = "iteration";
            share.events.record(e);
          }
        }

        // --- 3. send outputs ----------------------------------------------
        int last_group = -1;
        net::Payload group_payload;
        for (const int op_idx : program.send_ops_of[fti]) {
          const TransferOp& op = program.ops[static_cast<std::size_t>(op_idx)];
          const PlannedBuffer& buf =
              program.buffers[static_cast<std::size_t>(op.buf)];
          const std::vector<std::byte>& src_staging =
              state.staging[static_cast<std::size_t>(op.src_slot)];

          if (op.dst_node == rank) {
            // Local delivery straight into the consumer's staging.
            std::vector<std::byte>& dst_staging =
                state.staging[static_cast<std::size_t>(op.dst_slot)];
            const double t_before = node.now();
            {
              support::ComputeScope scope(node.clock(), node.cpu_scale());
              if (unique) {
                std::vector<std::byte>& logical =
                    state.logical[static_cast<std::size_t>(op.logical_slot)];
                pack_bytes(op.segs, src_staging, logical);
                unpack_bytes(op.segs, logical, dst_staging);
              } else {
                copy_bytes(op.segs, src_staging, dst_staging);
              }
            }
            share.bytes_copied += unique ? 2 * op.bytes : op.bytes;
            if (trace) {
              viz::Event e;
              e.kind = viz::EventKind::kBufferCopy;
              e.function_id = fn_id;
              e.thread = t;
              e.iteration = iter;
              e.start_vt = t_before;
              e.end_vt = node.now();
              e.bytes = op.bytes;
              e.label = buf.label;
              share.events.record(e);
            }
            continue;
          }

          const int depth = op_depth(op);
          if (depth > 0 &&
              state.sends_done[static_cast<std::size_t>(op_idx)] >=
                  static_cast<std::uint32_t>(depth)) {
            // Wait for a free slot in this channel's physical-buffer
            // ring: the consumer's credit for send (n - depth). The
            // counter is epoch-continuous, so a producer k tickets
            // ahead still respects the ring bound across data sets.
            wait_credit(op.dst_node, op.tag, fn_id, t, iter,
                        buf.label + " credit");
          }
          const double t_before = node.now();
          net::Payload payload;
          if (!unique && op.share_group >= 0 && op.share_group == last_group) {
            // Fan-out share: this destination receives the same bytes
            // the group leader packed -- send the handle, not a copy.
            payload = group_payload;
          } else {
            const std::size_t frame_off = faulty ? kFrameHeaderBytes : 0;
            payload = pool.acquire(frame_off + op.bytes);
            const std::span<std::byte> body =
                payload.writable().subspan(frame_off);
            if (faulty) {
              std::uint64_t checksum = 0;
              {
                support::ComputeScope scope(node.clock(), node.cpu_scale());
                if (unique) {
                  std::vector<std::byte>& logical =
                      state.logical[static_cast<std::size_t>(op.logical_slot)];
                  pack_bytes(op.segs, src_staging, logical);
                  std::memcpy(body.data(), logical.data(), op.bytes);
                  checksum = fnv1a_accum(kFnvOffsetBasis, body.data(),
                                         op.bytes);
                } else {
                  checksum = pack_bytes_hashed(op.segs, src_staging, body);
                }
              }
              write_frame_header(payload.writable(), op.bytes, checksum);
              share.bytes_copied += unique ? 2 * op.bytes : op.bytes;
            } else if (unique) {
              // The unique policy models an extra data access: stage
              // through the logical buffer, then into the payload --
              // both passes charged.
              support::ComputeScope scope(node.clock(), node.cpu_scale());
              std::vector<std::byte>& logical =
                  state.logical[static_cast<std::size_t>(op.logical_slot)];
              pack_bytes(op.segs, src_staging, logical);
              std::memcpy(body.data(), logical.data(), op.bytes);
              share.bytes_copied += 2 * op.bytes;
            } else if (op.contiguous) {
              // Zero-copy departure: borrow the staging slice into the
              // payload with a single pass, modeled as a DMA gather
              // (not charged to the node's compute clock).
              std::memcpy(body.data(),
                          src_staging.data() + op.segs.front().src_off,
                          op.bytes);
              share.bytes_copied += op.bytes;
            } else {
              support::ComputeScope scope(node.clock(), node.cpu_scale());
              pack_bytes(op.segs, src_staging, body);
              share.bytes_copied += op.bytes;
            }
            if (!unique && op.share_group >= 0) {
              last_group = op.share_group;
              group_payload = payload;
            }
          }
          if (faulty) {
            send_framed(op.dst_node, op.tag, std::move(payload), op.bytes,
                        fn_id, t, iter, buf.label);
          } else {
            node.clock().join(fabric.send(rank, op.dst_node, op.tag,
                                          std::move(payload), node.now()));
          }
          share.bytes_moved += op.bytes;
          ++state.sends_done[static_cast<std::size_t>(op_idx)];
          if (trace) {
            viz::Event e;
            e.kind = viz::EventKind::kSend;
            e.function_id = fn_id;
            e.thread = t;
            e.iteration = iter;
            e.start_vt = t_before;
            e.end_vt = node.now();
            e.bytes = op.bytes;
            e.label = buf.label;
            share.events.record(e);
          }
        }
      }
    }
  }
}

}  // namespace sage::runtime
