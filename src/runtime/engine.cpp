#include "runtime/engine.hpp"

namespace sage::runtime {

Engine::Engine(GlueConfig config, const FunctionRegistry& registry,
               ExecuteOptions options)
    : session_(std::make_unique<Session>(std::move(config), registry,
                                         std::move(options))) {}

RunStats Engine::run() { return session_->run(); }

}  // namespace sage::runtime
