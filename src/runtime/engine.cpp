#include "runtime/engine.hpp"

#include <algorithm>
#include <cstring>
#include <tuple>

#include "mpi/comm.hpp"
#include "support/error.hpp"

namespace sage::runtime {

std::string to_string(BufferPolicy policy) {
  switch (policy) {
    case BufferPolicy::kUniquePerFunction: return "unique-per-function";
    case BufferPolicy::kShared: return "shared";
  }
  return "?";
}

support::VirtualSeconds RunStats::mean_latency() const {
  if (latencies.empty()) return 0.0;
  support::VirtualSeconds total = 0.0;
  for (const auto lat : latencies) total += lat;
  return total / static_cast<double>(latencies.size());
}

namespace {

/// One logical buffer with its precomputed transfer plan.
struct PlannedBuffer {
  int id = -1;
  int src_function = -1;
  int dst_function = -1;
  std::string src_port;
  std::string dst_port;
  std::size_t elem_bytes = 0;
  StripeSpec src_spec;
  StripeSpec dst_spec;
  std::vector<ThreadPairTransfer> plan;
  std::string label;
};

}  // namespace

struct Engine::Prepared {
  std::vector<PlannedBuffer> buffers;
  /// Buffer indices feeding / fed by each function id.
  std::vector<std::vector<int>> in_of_fn;
  std::vector<std::vector<int>> out_of_fn;
};

Engine::Engine(GlueConfig config, const FunctionRegistry& registry,
               EngineOptions options)
    : config_(std::move(config)), options_(std::move(options)) {
  config_.validate();

  kernels_.reserve(config_.functions.size());
  for (const FunctionConfig& fn : config_.functions) {
    kernels_.push_back(registry.lookup(fn.kernel));  // throws when missing
  }

  auto prepared = std::make_shared<Prepared>();
  prepared->in_of_fn.resize(config_.functions.size());
  prepared->out_of_fn.resize(config_.functions.size());
  for (const BufferConfig& buf : config_.buffers) {
    const FunctionConfig& src_fn = config_.function(buf.src_function);
    const FunctionConfig& dst_fn = config_.function(buf.dst_function);
    const PortConfig& src_port = src_fn.port(buf.src_port);
    const PortConfig& dst_port = dst_fn.port(buf.dst_port);

    PlannedBuffer planned;
    planned.id = buf.id;
    planned.src_function = buf.src_function;
    planned.dst_function = buf.dst_function;
    planned.src_port = buf.src_port;
    planned.dst_port = buf.dst_port;
    planned.elem_bytes = src_port.elem_bytes;
    planned.src_spec = config_.stripe_spec(src_fn, src_port);
    planned.dst_spec = config_.stripe_spec(dst_fn, dst_port);
    planned.plan = build_transfer_plan(planned.src_spec, planned.dst_spec);
    planned.label = src_fn.name + "." + buf.src_port + "->" + dst_fn.name +
                    "." + buf.dst_port;
    prepared->buffers.push_back(std::move(planned));

    prepared->in_of_fn[static_cast<std::size_t>(buf.dst_function)].push_back(
        buf.id);
    prepared->out_of_fn[static_cast<std::size_t>(buf.src_function)].push_back(
        buf.id);
  }
  prepared_ = std::move(prepared);

  if (!options_.cpu_scales.empty()) {
    SAGE_CHECK_AS(ConfigError,
                  static_cast<int>(options_.cpu_scales.size()) ==
                      config_.nodes,
                  "cpu_scales size ", options_.cpu_scales.size(),
                  " != node count ", config_.nodes);
  }
}

namespace {

/// Message tag for one (buffer, src thread, dst thread) channel. The
/// validated limits (64 buffers, 8 threads) keep this below the user-tag
/// ceiling of 4096.
int transfer_tag(int buffer_id, int src_thread, int dst_thread) {
  return buffer_id * 64 + src_thread * 8 + dst_thread;
}

/// Node-local mutable state for one run.
struct NodeState {
  explicit NodeState(int node) : events(node) {}

  // (function id, thread, port name) -> staging storage.
  std::map<std::tuple<int, int, std::string>, std::vector<std::byte>> staging;
  // (buffer id, src thread, dst thread) -> logical-buffer storage
  // (kUniquePerFunction policy only).
  std::map<std::tuple<int, int, int>, std::vector<std::byte>> logical;
  viz::EventBuffer events;
  std::vector<std::tuple<int, int, double>> results;  // (fn, iter, value)
  std::vector<support::VirtualSeconds> iter_start;    // source nodes
  std::vector<support::VirtualSeconds> iter_end;      // sink nodes
};

std::vector<std::byte>& staging_of(NodeState& state, int fn, int thread,
                                   const std::string& port) {
  return state.staging[{fn, thread, port}];
}

/// Copies plan segments from a source slice into a contiguous pack
/// buffer (message layout == concatenated segments in plan order).
void pack_segments(const std::vector<Segment>& segments,
                   std::span<const std::byte> src, std::size_t elem_bytes,
                   std::span<std::byte> packed) {
  std::size_t cursor = 0;
  for (const Segment& seg : segments) {
    const std::size_t bytes = seg.length * elem_bytes;
    std::memcpy(packed.data() + cursor,
                src.data() + seg.src_offset * elem_bytes, bytes);
    cursor += bytes;
  }
}

/// Scatters a contiguous pack buffer into the destination slice.
void unpack_segments(const std::vector<Segment>& segments,
                     std::span<const std::byte> packed, std::size_t elem_bytes,
                     std::span<std::byte> dst) {
  std::size_t cursor = 0;
  for (const Segment& seg : segments) {
    const std::size_t bytes = seg.length * elem_bytes;
    std::memcpy(dst.data() + seg.dst_offset * elem_bytes,
                packed.data() + cursor, bytes);
    cursor += bytes;
  }
}

/// Direct segment copy between two slices (kShared local fast path).
void copy_segments(const std::vector<Segment>& segments,
                   std::span<const std::byte> src, std::size_t elem_bytes,
                   std::span<std::byte> dst) {
  for (const Segment& seg : segments) {
    std::memcpy(dst.data() + seg.dst_offset * elem_bytes,
                src.data() + seg.src_offset * elem_bytes,
                seg.length * elem_bytes);
  }
}

}  // namespace

RunStats Engine::run() {
  const int iterations =
      options_.iterations > 0 ? options_.iterations : config_.iterations_default;
  SAGE_CHECK_AS(RuntimeError, iterations > 0, "nothing to run: ", iterations,
                " iterations");

  std::unique_ptr<net::Machine> machine;
  if (options_.cpu_scales.empty()) {
    machine = std::make_unique<net::Machine>(config_.nodes, options_.fabric);
  } else {
    machine =
        std::make_unique<net::Machine>(options_.fabric, options_.cpu_scales);
  }

  std::vector<std::unique_ptr<NodeState>> states;
  states.reserve(static_cast<std::size_t>(config_.nodes));
  for (int r = 0; r < config_.nodes; ++r) {
    states.push_back(std::make_unique<NodeState>(r));
  }

  const Prepared& prep = *prepared_;
  const GlueConfig& cfg = config_;
  const EngineOptions& opt = options_;
  const std::vector<Kernel>& kernels = kernels_;

  auto node_program = [&](net::NodeContext& node) {
    const int rank = node.rank();
    NodeState& state = *states[static_cast<std::size_t>(rank)];
    mpi::Communicator comm(node);
    comm.set_recv_timeout(opt.recv_timeout_s);

    auto schedule_it = cfg.schedule.find(rank);
    const std::vector<int> empty_schedule;
    const std::vector<int>& order = schedule_it == cfg.schedule.end()
                                        ? empty_schedule
                                        : schedule_it->second;

    // Allocate staging for local function threads.
    bool hosts_source = false;
    for (const FunctionConfig& fn : cfg.functions) {
      for (int t = 0; t < fn.threads; ++t) {
        if (fn.thread_nodes[static_cast<std::size_t>(t)] != rank) continue;
        if (fn.role == "source") hosts_source = true;
        for (const PortConfig& port : fn.ports) {
          StripeSpec spec = cfg.stripe_spec(fn, port);
          staging_of(state, fn.id, t, port.name)
              .resize(spec.elems_per_thread() * port.elem_bytes);
        }
      }
    }

    std::vector<std::byte> message_scratch;

    for (int iter = 0; iter < iterations; ++iter) {
      if (hosts_source) {
        state.iter_start.push_back(node.now());
        if (opt.collect_trace) {
          viz::Event e;
          e.kind = viz::EventKind::kIterationStart;
          e.iteration = iter;
          e.start_vt = e.end_vt = node.now();
          e.label = "iteration";
          state.events.record(e);
        }
      }

      for (int fn_id : order) {
        const FunctionConfig& fn = cfg.function(fn_id);
        for (int t = 0; t < fn.threads; ++t) {
          if (fn.thread_nodes[static_cast<std::size_t>(t)] != rank) continue;

          // --- 1. receive remote inputs -----------------------------------
          for (int buf_id : prep.in_of_fn[static_cast<std::size_t>(fn_id)]) {
            const PlannedBuffer& buf =
                prep.buffers[static_cast<std::size_t>(buf_id)];
            const FunctionConfig& src_fn = cfg.function(buf.src_function);
            auto& dst_staging =
                staging_of(state, fn_id, t, buf.dst_port);
            for (const ThreadPairTransfer& pair : buf.plan) {
              if (pair.dst_thread != t) continue;
              const int src_node =
                  src_fn.thread_nodes[static_cast<std::size_t>(
                      pair.src_thread)];
              if (src_node == rank) continue;  // delivered locally already

              const int tag =
                  transfer_tag(buf.id, pair.src_thread, pair.dst_thread);
              const double t_before = node.now();
              std::vector<std::byte> payload =
                  comm.recv_any_bytes(src_node, tag);
              if (opt.collect_trace) {
                viz::Event e;
                e.kind = viz::EventKind::kReceive;
                e.function_id = fn_id;
                e.thread = t;
                e.iteration = iter;
                e.start_vt = t_before;
                e.end_vt = node.now();
                e.bytes = payload.size();
                e.label = buf.label;
                state.events.record(e);
              }
              {
                support::ComputeScope scope(node.clock(), node.cpu_scale());
                if (opt.buffer_policy == BufferPolicy::kUniquePerFunction) {
                  // Stage through the function's own logical buffer copy.
                  auto& logical = state.logical[{buf.id, pair.src_thread,
                                                 pair.dst_thread}];
                  logical.assign(payload.begin(), payload.end());
                  unpack_segments(pair.segments, logical, buf.elem_bytes,
                                  dst_staging);
                } else {
                  unpack_segments(pair.segments, payload, buf.elem_bytes,
                                  dst_staging);
                }
              }
              if (opt.buffer_depth > 0) {
                // Flow control: return a credit for the drained slot.
                const std::byte credit{};
                comm.send_bytes(std::span<const std::byte>(&credit, 1),
                                src_node, tag);
              }
            }
          }

          // --- 2. execute the kernel ---------------------------------------
          KernelContext kctx(t, fn.threads, iter);
          kctx.params.insert(fn.params.begin(), fn.params.end());
          for (const PortConfig& port : fn.ports) {
            PortSlice slice;
            slice.name = port.name;
            StripeSpec spec = cfg.stripe_spec(fn, port);
            slice.data = staging_of(state, fn_id, t, port.name);
            slice.elem_bytes = port.elem_bytes;
            slice.local_dims = spec.local_dims();
            slice.global_dims = port.dims;
            slice.runs = slice_runs(spec, t);
            if (port.direction == model::PortDirection::kIn) {
              kctx.inputs.push_back(std::move(slice));
            } else {
              kctx.outputs.push_back(std::move(slice));
            }
          }

          const double exec_start = node.now();
          {
            support::ComputeScope scope(node.clock(), node.cpu_scale());
            kernels[static_cast<std::size_t>(fn_id)](kctx);
          }
          if (opt.collect_trace && cfg.probed(fn_id)) {
            viz::Event start;
            start.kind = viz::EventKind::kFunctionStart;
            start.function_id = fn_id;
            start.thread = t;
            start.iteration = iter;
            start.start_vt = start.end_vt = exec_start;
            start.label = fn.name;
            state.events.record(start);
            viz::Event end = start;
            end.kind = viz::EventKind::kFunctionEnd;
            end.start_vt = end.end_vt = node.now();
            state.events.record(end);
          }
          if (kctx.has_result()) {
            state.results.emplace_back(fn_id, iter, kctx.result());
          }
          if (fn.role == "sink") {
            state.iter_end.push_back(node.now());
            if (opt.collect_trace) {
              viz::Event e;
              e.kind = viz::EventKind::kIterationEnd;
              e.iteration = iter;
              e.start_vt = e.end_vt = node.now();
              e.label = "iteration";
              state.events.record(e);
            }
          }

          // --- 3. send outputs ----------------------------------------------
          for (int buf_id : prep.out_of_fn[static_cast<std::size_t>(fn_id)]) {
            const PlannedBuffer& buf =
                prep.buffers[static_cast<std::size_t>(buf_id)];
            const FunctionConfig& dst_fn = cfg.function(buf.dst_function);
            const auto& src_staging =
                staging_of(state, fn_id, t, buf.src_port);
            for (const ThreadPairTransfer& pair : buf.plan) {
              if (pair.src_thread != t) continue;
              const int dst_node =
                  dst_fn.thread_nodes[static_cast<std::size_t>(
                      pair.dst_thread)];
              const std::size_t bytes =
                  pair.total_elems() * buf.elem_bytes;

              if (dst_node == rank) {
                // Local delivery straight into the consumer's staging.
                auto& dst_staging = staging_of(state, buf.dst_function,
                                               pair.dst_thread, buf.dst_port);
                const double t_before = node.now();
                {
                  support::ComputeScope scope(node.clock(), node.cpu_scale());
                  if (opt.buffer_policy == BufferPolicy::kUniquePerFunction) {
                    auto& logical = state.logical[{buf.id, pair.src_thread,
                                                   pair.dst_thread}];
                    logical.resize(bytes);
                    pack_segments(pair.segments, src_staging, buf.elem_bytes,
                                  logical);
                    unpack_segments(pair.segments, logical, buf.elem_bytes,
                                    dst_staging);
                  } else {
                    copy_segments(pair.segments, src_staging, buf.elem_bytes,
                                  dst_staging);
                  }
                }
                if (opt.collect_trace) {
                  viz::Event e;
                  e.kind = viz::EventKind::kBufferCopy;
                  e.function_id = fn_id;
                  e.thread = t;
                  e.iteration = iter;
                  e.start_vt = t_before;
                  e.end_vt = node.now();
                  e.bytes = bytes;
                  e.label = buf.label;
                  state.events.record(e);
                }
              } else {
                const int tag =
                    transfer_tag(buf.id, pair.src_thread, pair.dst_thread);
                if (opt.buffer_depth > 0 && iter >= opt.buffer_depth) {
                  // Wait for a free physical-buffer slot (credit from
                  // the consumer for iteration iter - depth).
                  std::byte credit{};
                  comm.recv_bytes(std::span<std::byte>(&credit, 1), dst_node,
                                  tag);
                }
                const double t_before = node.now();
                message_scratch.resize(bytes);
                {
                  support::ComputeScope scope(node.clock(), node.cpu_scale());
                  if (opt.buffer_policy == BufferPolicy::kUniquePerFunction) {
                    auto& logical = state.logical[{buf.id, pair.src_thread,
                                                   pair.dst_thread}];
                    logical.resize(bytes);
                    pack_segments(pair.segments, src_staging, buf.elem_bytes,
                                  logical);
                    std::memcpy(message_scratch.data(), logical.data(), bytes);
                  } else {
                    pack_segments(pair.segments, src_staging, buf.elem_bytes,
                                  message_scratch);
                  }
                }
                comm.send_bytes(message_scratch, dst_node, tag);
                if (opt.collect_trace) {
                  viz::Event e;
                  e.kind = viz::EventKind::kSend;
                  e.function_id = fn_id;
                  e.thread = t;
                  e.iteration = iter;
                  e.start_vt = t_before;
                  e.end_vt = node.now();
                  e.bytes = bytes;
                  e.label = buf.label;
                  state.events.record(e);
                }
              }
            }
          }
        }
      }
    }
  };

  const net::MachineReport report = machine->run(node_program);

  // --- aggregate ---------------------------------------------------------------
  RunStats stats;
  stats.iterations = iterations;
  stats.makespan = report.makespan();
  stats.fabric_messages = machine->fabric().total_messages();
  stats.fabric_bytes = machine->fabric().total_bytes();

  // Latency: min source start / max sink end per iteration.
  std::vector<double> starts(static_cast<std::size_t>(iterations), 0.0);
  std::vector<double> ends(static_cast<std::size_t>(iterations), 0.0);
  std::vector<bool> has_start(static_cast<std::size_t>(iterations), false);
  std::vector<bool> has_end(static_cast<std::size_t>(iterations), false);
  for (const auto& state : states) {
    for (std::size_t i = 0; i < state->iter_start.size() &&
                            i < static_cast<std::size_t>(iterations);
         ++i) {
      if (!has_start[i] || state->iter_start[i] < starts[i]) {
        starts[i] = state->iter_start[i];
        has_start[i] = true;
      }
    }
    // Sinks may record several ends per iteration (multiple threads);
    // they are appended in iteration order per node, so fold by index
    // modulo the per-node count per iteration.
    const std::size_t per_iter =
        state->iter_end.empty()
            ? 0
            : state->iter_end.size() / static_cast<std::size_t>(iterations);
    for (std::size_t i = 0; i < state->iter_end.size(); ++i) {
      if (per_iter == 0) break;
      const std::size_t iter = i / per_iter;
      if (iter >= static_cast<std::size_t>(iterations)) break;
      if (!has_end[iter] || state->iter_end[i] > ends[iter]) {
        ends[iter] = state->iter_end[i];
        has_end[iter] = true;
      }
    }
  }
  for (int i = 0; i < iterations; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (has_start[idx] && has_end[idx]) {
      stats.latencies.push_back(ends[idx] - starts[idx]);
    }
  }
  // Period: mean distance between consecutive completion times.
  int completed = 0;
  double first_end = 0.0;
  double last_end = 0.0;
  for (int i = 0; i < iterations; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (has_end[idx]) {
      if (completed == 0) first_end = ends[idx];
      last_end = ends[idx];
      ++completed;
    }
  }
  if (completed > 1) {
    stats.period = (last_end - first_end) / static_cast<double>(completed - 1);
  } else if (!stats.latencies.empty()) {
    stats.period = stats.latencies.front();
  }

  // Results: sum kernel-reported values per function per iteration.
  for (const auto& state : states) {
    for (const auto& [fn_id, iter, value] : state->results) {
      const std::string& name = config_.function(fn_id).name;
      auto& series = stats.results[name];
      if (series.size() < static_cast<std::size_t>(iterations)) {
        series.resize(static_cast<std::size_t>(iterations), 0.0);
      }
      series[static_cast<std::size_t>(iter)] += value;
    }
  }

  if (options_.collect_trace) {
    std::vector<const viz::EventBuffer*> buffers;
    buffers.reserve(states.size());
    for (const auto& state : states) buffers.push_back(&state->events);
    stats.trace = viz::Trace::merge(buffers);
  }
  return stats;
}

}  // namespace sage::runtime
