// openSAGE -- warm run-time sessions: the executor layer.
//
// The paper's run-time kernel is a long-lived resident service: "the
// SAGE run-time kernel is responsible for all sequencing of functions,
// data striping, and buffer management." A Session reproduces that
// shape -- but planning and execution are separate layers:
//
//   runtime::Compiler  lowers a GlueConfig + registry into an immutable
//                      runtime::CompiledProgram (one-time planning);
//   runtime::Session   executes a shared_ptr<const CompiledProgram>,
//                      owning only mutable state: staging buffers, the
//                      emulated machine (one parked host thread per
//                      node), metrics shards, and per-run parameters.
//
// N concurrent sessions can execute one program; the content-addressed
// plan cache (see compiler.hpp) lets a warm process restart skip the
// planner entirely. Repeated run() calls pay only a per-run state
// reset: node threads are woken instead of re-spawned, and buffer
// memory is reused instead of reallocated -- the separation of a
// one-time compile/allocate phase from cheap repeated invocations
// (cf. DaCe's stateful dataflow graphs).
//
// Buffer management policies reproduce the paper's observation that the
// runtime "assigns unique logical buffers to the data per function which
// can cause extra data access times":
//   kUniquePerFunction -- every transfer stages through the logical
//                         buffer's own storage (the shipped behaviour);
//   kShared            -- transfers move straight from producer staging
//                         to message/consumer staging (the planned
//                         "90% of hand-coded" improvement).
//
// Streaming: the paper's Table 1 separates *period* (time between data
// sets) from *latency* (time through the chain). Session::submit()
// opens that gap: consecutive submissions overlap inside one machine
// *epoch* -- one dispatch of the node threads spanning many tickets --
// with credit-based flow control (ring bounds computed by the compiler,
// see TransferOp::ring_depth) keeping every producer at most k
// iterations ahead of its consumers. The steady-state period is then
// set by the slowest stage, not the whole chain. run()/run_batch() are
// thin synchronous wrappers over submit()+wait().
//
// Lifecycle: create -> run()/submit()* -> close (or destruction). Each
// synchronous run is bit-equivalent to a cold engine run: virtual
// clocks restart at zero, the fabric is drained and its totals zeroed,
// trace buffers and result series are cleared, and staging memory is
// rezeroed. Overlapped submissions keep bit-identical *results*
// (checksums) -- flow-control traffic and virtual times may differ from
// the sequential schedule, and fabric/pool counters are epoch-cumulative
// at collection time.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "net/machine.hpp"
#include "runtime/glue_config.hpp"
#include "runtime/program.hpp"
#include "runtime/registry.hpp"
#include "support/error.hpp"
#include "viz/metrics.hpp"
#include "viz/trace.hpp"

namespace sage::runtime {

enum class BufferPolicy { kUniquePerFunction, kShared };

std::string to_string(BufferPolicy policy);

/// Online-tuning knobs, consumed by runtime::Tuner (tuner.hpp), which
/// closes the measure -> re-map -> hot-swap loop over a live Session.
/// Plain values only: the executor layer stays independent of the atot
/// mapper that interprets them.
struct TunerOptions {
  /// Master switch for CLI/bench drivers (the Tuner class itself works
  /// regardless of this flag).
  bool enabled = false;
  /// Seed for the per-step re-mapping GA. Together with the observed
  /// calibration profile it fully determines every tuning decision.
  std::uint64_t seed = 0x5A6E2000u;
  /// Minimum predicted objective gain ratio,
  /// (incumbent - candidate) / incumbent, before a hot-swap is worth
  /// its cost; smaller predicted wins hold the incumbent.
  double hysteresis = 0.05;
  /// GA size overrides for the per-step re-map (0: mapper defaults).
  int population = 0;
  int generations = 0;
};

/// The unified execution option set, shared by runtime::Session,
/// runtime::Engine, and the core::Project facade (which derives the
/// fabric model and CPU scales from the hardware model for any field
/// left unset).
struct ExecuteOptions {
  BufferPolicy buffer_policy = BufferPolicy::kUniquePerFunction;
  /// Iterations per run; -1 uses the config's iterations-default.
  int iterations = -1;
  /// Collect a Visualizer trace (small overhead in host time only; probe
  /// costs are excluded from virtual time).
  bool collect_trace = true;
  /// Collect the always-on metrics (per-function busy time and
  /// invocations, per-link fabric traffic, iteration latency histogram,
  /// fault counters) into RunStats::metrics. Cheaper than tracing --
  /// fixed-size shard cells instead of per-event records -- and like
  /// probes the cost lands in host time only, never in virtual time.
  bool collect_metrics = true;
  /// Latency threshold monitor: iterations whose end-to-end latency
  /// exceeds this are counted in the sage_latency_violations_total
  /// metric (the paper's "violated latency thresholds"). 0 disables.
  support::VirtualSeconds latency_threshold = 0.0;
  /// Interconnect model. Unset: the Project facade derives it from the
  /// hardware model; a bare Session/Engine falls back to the CSPI-like
  /// net::myrinet_fabric().
  std::optional<net::FabricModel> fabric;
  /// Per-node CPU scale (empty: the Project facade derives from the
  /// hardware model; a bare Session/Engine uses 1.0 everywhere).
  std::vector<double> cpu_scales;
  /// Which mechanism carries fabric messages (see net/transport.hpp):
  /// the in-process zero-copy path (default), shared-memory rings
  /// between forked node processes, or TCP loopback sockets. The
  /// compiled program, flow control, and fault verdicts are
  /// transport-blind -- results are bit-identical across backends.
  net::TransportOptions transport;
  /// Host wall-clock budget for each blocking receive; expired waits
  /// throw sage::CommError (schedule bugs surface as failures, not
  /// hangs).
  double recv_timeout_s = 60.0;
  /// Physical-buffer depth per logical-buffer channel: a producer may
  /// run at most this many iterations ahead of its consumer (credit
  /// flow control). For synchronous run()s, 0 = unbounded (pipelining
  /// limited only by the schedule); for streamed submissions, 0 = use
  /// each channel's compiler-computed static bound
  /// (TransferOp::ring_depth). Models the finite physical buffers the
  /// paper's runtime allocated per logical buffer.
  int buffer_depth = 0;
  /// Content-addressed plan-cache directory. Non-empty: Session::create
  /// (from a GlueConfig) consults `<dir>/<fingerprint>.plan` before
  /// compiling, and stores freshly compiled programs there. Empty (the
  /// default): compile directly, no disk access. Irrelevant when the
  /// session is constructed from an already-compiled program.
  std::string plan_cache_dir;
  /// Deterministic fault schedule (see net/fault.hpp). nullptr or an
  /// empty (inactive) plan leaves every run bit-identical to today's
  /// fault-free path. An active plan switches remote transfers --
  /// including flow-control credits -- onto the framed reliable path
  /// (checksummed frames, per-transfer loss detection, bounded
  /// retransmits with exponential virtual-time backoff); plans naming
  /// dead nodes trigger a degraded-mode remap before the run (see
  /// Session::recover()).
  std::shared_ptr<const net::FaultPlan> fault_plan;
  /// Online-tuning knobs (see TunerOptions). The session itself only
  /// carries them; runtime::Tuner and the sagec/bench drivers act on
  /// them.
  TunerOptions tune;
};

/// Fault-injection and recovery counters for one run. All counters are
/// deterministic for a given (config, plan, seed): they depend only on
/// the plan's counter-mode draws and the per-link message order, never
/// on host timing.
struct FaultStats {
  /// Faults injected by the fabric (sender side).
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_corruptions = 0;
  std::uint64_t injected_delays = 0;
  /// Retransmit attempts issued after a detected loss/corruption.
  std::uint64_t retries = 0;
  /// Loss-detection timeouts waited out by receivers (drop tombstones).
  std::uint64_t timeouts = 0;
  /// Frames rejected by receivers (corruption caught by checksum/flag).
  std::uint64_t corruptions_detected = 0;
  /// Modeled node stalls applied at iteration boundaries.
  std::uint64_t stalls = 0;
  /// Nodes the session is running without (degraded mode).
  int degraded_nodes = 0;

  bool operator==(const FaultStats&) const = default;
};

/// Data-plane accounting for one run. `bytes_copied`/`bytes_moved` are
/// derived from the compiled transfer program (which ops ran, at which
/// policy) and are fully deterministic; the buffer-pool counters depend
/// on host-thread interleaving, so they are reported here and as
/// time-based metrics but never enter the deterministic snapshot subset.
struct DataPlaneStats {
  /// Bytes memcpy'd on the host inside the data plane (packs, unpacks,
  /// logical-buffer stagings, local deliveries; each pass counted).
  std::uint64_t bytes_copied = 0;
  /// Payload bytes handed to the fabric by handle (the wire traffic the
  /// zero-copy path moves without extra host passes).
  std::uint64_t bytes_moved = 0;
  /// Buffer-pool activity during this run (per-run deltas).
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  /// Pool footprint at the end of the run (cumulative for the session).
  std::uint64_t pool_blocks = 0;
  std::uint64_t pool_bytes_reserved = 0;

  bool operator==(const DataPlaneStats&) const = default;
};

struct RunStats {
  int iterations = 0;
  /// Modeled end-to-end run time (max final node virtual time).
  support::VirtualSeconds makespan = 0.0;
  /// Per-iteration latency: source start -> sink end, virtual seconds.
  std::vector<support::VirtualSeconds> latencies;
  /// Mean time between consecutive iteration completions.
  support::VirtualSeconds period = 0.0;
  /// Sum of kernel-reported results per function per iteration
  /// (function name -> one value per iteration), e.g. sink checksums.
  std::map<std::string, std::vector<double>> results;
  /// Merged Visualizer trace (empty when collect_trace is false).
  viz::Trace trace;
  /// Merged metrics snapshot (empty when collect_metrics is false).
  /// Export with viz::prometheus_text / viz::metrics_csv / viz::report;
  /// metrics.deterministic_subset() is bit-identical across cold runs,
  /// warm re-runs, and fresh sessions.
  viz::MetricsSnapshot metrics;
  /// Fabric totals for the whole run (data messages + flow-control
  /// credits).
  std::uint64_t fabric_messages = 0;
  std::uint64_t fabric_bytes = 0;
  /// Host wall-clock cost of this run() call -- the cold-start vs
  /// warm-run comparison the bench harness reports. Virtual time is
  /// unaffected.
  double host_seconds = 0.0;
  /// Fault-injection and recovery counters (all zero without an active
  /// fault plan).
  FaultStats faults;
  /// Zero-copy data-plane accounting (see DataPlaneStats).
  DataPlaneStats data_plane;
  /// Ticket id this stats object answers (0 for pre-streaming callers
  /// that never see tickets -- run() fills it in too).
  std::uint64_t ticket = 0;
  /// Achieved streaming period: virtual time between this ticket's
  /// completion and the previous ticket's completion inside one epoch.
  /// 0 when the ticket opened its epoch (first submission, or any
  /// synchronous run()) -- the steady-state measure only exists once
  /// the pipeline is primed.
  support::VirtualSeconds stream_period = 0.0;
  /// Per-stage occupancy: each function's kernel-busy virtual seconds
  /// (summed over threads) divided by (ticket span x thread count) --
  /// the fraction of the stage's capacity this data set used. Near 1.0
  /// identifies the stage that sets the steady-state period.
  std::map<std::string, double> occupancy;

  support::VirtualSeconds mean_latency() const;
};

/// The per-run-overridable parameter subset, in optional form: a field
/// left unset inherits the session's ExecuteOptions value. One struct
/// serves both the streaming submit() surface and the synchronous
/// run()/run_batch() wrappers (RunRequest is the deprecated alias);
/// ExecuteOptions carries the same fields in plain resolved form.
struct RunOverrides {
  /// Iterations for this run; 0 inherits the session default.
  int iterations = 0;
  std::optional<BufferPolicy> buffer_policy;
  std::optional<bool> collect_trace;
  std::optional<bool> collect_metrics;
  std::optional<support::VirtualSeconds> latency_threshold;
  /// Per-submission flow-control depth; unset inherits the session's
  /// buffer_depth (see its streaming-vs-synchronous semantics).
  std::optional<int> buffer_depth;
  /// Per-run fault plan; unset inherits the session's plan, an explicit
  /// nullptr disables faults for this run.
  std::optional<std::shared_ptr<const net::FaultPlan>> fault_plan;
};

/// Deprecated spelling of RunOverrides, from when the struct was
/// specific to the synchronous run() path.
using RunRequest [[deprecated(
    "use sage::runtime::RunOverrides")]] = RunOverrides;

/// Handle to one streamed submission; redeem with Session::poll /
/// Session::wait. Value-semantic and cheap (an id).
struct Ticket {
  std::uint64_t id = 0;
};

/// What Session::recover() did.
struct RecoveryReport {
  /// Ranks excluded by this recovery call.
  std::vector<int> dead_nodes;
  /// Function threads moved off dead nodes onto survivors.
  int moved_threads = 0;
};

/// A persistent executor over the emulated machine, driving one
/// immutable CompiledProgram. Thread compatibility: drive one Session
/// from one host thread at a time; any number of Sessions may share one
/// program concurrently (the program is read-only).
class Session {
 public:
  /// Compatibility constructor, semantics unchanged from the monolithic
  /// Session: compiles `config` (consulting the plan cache when
  /// `options.plan_cache_dir` is set), binds every kernel, pre-allocates
  /// all buffers, and spawns the (parked) node threads; throws
  /// sage::ConfigError / sage::RuntimeError on inconsistency.
  Session(GlueConfig config, const FunctionRegistry& registry,
          ExecuteOptions options = {});

  /// Executor constructor: attach to an already-compiled program
  /// (shared; the session takes a reference, never a copy). Binds
  /// kernels against `registry` and builds only this session's mutable
  /// state.
  Session(std::shared_ptr<const CompiledProgram> program,
          const FunctionRegistry& registry, ExecuteOptions options = {});

  /// Non-throwing counterparts: config problems come back as an error
  /// message instead of an exception (for validators and CLIs).
  static Result<std::unique_ptr<Session>> create(
      GlueConfig config, const FunctionRegistry& registry,
      ExecuteOptions options = {});
  static Result<std::unique_ptr<Session>> create(
      std::shared_ptr<const CompiledProgram> program,
      const FunctionRegistry& registry, ExecuteOptions options = {});

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  ~Session();

  /// The program this session executes. After recover() this is a
  /// session-private recompile; until then it may be shared with other
  /// sessions.
  const CompiledProgram& program() const { return *program_; }
  std::shared_ptr<const CompiledProgram> program_ptr() const {
    return program_;
  }

  const GlueConfig& config() const { return program_->config; }
  const ExecuteOptions& options() const { return options_; }

  /// Executes one run on the warm machine and reports its stats.
  /// Synchronous wrapper over submit()+wait(): quiesces any in-flight
  /// streaming work first, so every run() stays bit-equivalent to a
  /// cold engine run.
  RunStats run(const RunOverrides& request = {});

  /// Deprecated convenience: `runs` consecutive (non-overlapped) warm
  /// runs, one RunStats each. Use submit()/wait() -- or drain() -- to
  /// overlap data sets instead of serializing them.
  [[deprecated(
      "use Session::submit/wait (streaming) or loop Session::run")]]
  std::vector<RunStats> run_batch(int runs, const RunOverrides& request = {});

  // --- streaming ------------------------------------------------------------
  /// Enqueues one data-set run and returns immediately with a ticket.
  /// Consecutive submissions overlap: all tickets of one epoch execute
  /// on a single machine dispatch with epoch-continuous virtual clocks,
  /// and credit flow control (explicit buffer_depth, or the compiled
  /// per-channel ring_depth when the resolved depth is 0) lets a
  /// producer run iteration i+k while its consumer finishes i. A new
  /// epoch starts -- with the full cold-equivalent reset -- whenever
  /// submit() finds the pipeline idle; a submission whose resolved
  /// fault plan or depth differs from the active epoch's quiesces the
  /// epoch first. Results are bit-identical to back-to-back run()s;
  /// fabric totals and pool counters in the returned stats are
  /// epoch-cumulative at collection time.
  Ticket submit(const RunOverrides& request = {});

  /// True when `ticket` has finished executing (wait() will not block).
  /// A ticket already redeemed by wait()/drain() is *collected*, not
  /// pending: polling it throws the same "unknown or already-collected
  /// ticket" sage::RuntimeError as wait() would (pinned in
  /// compat_test.cpp) -- completion state lives exactly as long as the
  /// ticket is redeemable.
  /// Throws sage::RuntimeError for unknown or already-collected ids.
  bool poll(Ticket ticket) const;

  /// Blocks until `ticket` completes and returns its stats. Each ticket
  /// is redeemable exactly once; node errors surface here (first
  /// erroring rank wins, matching Machine::run). Collect tickets in
  /// submission order for deterministic metrics snapshots.
  RunStats wait(Ticket ticket);

  /// Waits for every outstanding ticket, in submission order. With zero
  /// tickets in flight this is a documented no-op returning an empty
  /// vector -- it does not throw, block, or disturb the active epoch
  /// (the epoch stays open for further compatible submissions).
  std::vector<RunStats> drain();

  /// Submitted-but-not-yet-collected tickets.
  int in_flight() const;

  /// Number of completed (collected) runs since construction.
  int runs_completed() const { return runs_completed_; }

  /// Degraded-mode recovery: marks `dead_ranks` dead and deterministically
  /// moves every function thread mapped there onto the least-loaded
  /// surviving node (ties to the lowest rank), rebuilds the per-node
  /// schedules in function-id order (matching the code generator's
  /// emission), revalidates the config, compiles a session-private
  /// replacement program for the new placement (a shared program is
  /// immutable -- co-executors are unaffected), and reallocates
  /// node-local buffers. The emulated machine keeps its size; dead nodes
  /// simply receive no work. Idempotent per rank; throws
  /// sage::RuntimeError if no survivor would remain. Runs whose fault
  /// plan names dead nodes invoke this automatically.
  RecoveryReport recover(const std::vector<int>& dead_ranks);

  /// Ranks currently excluded by recover() (sorted).
  const std::vector<int>& dead_nodes() const { return dead_nodes_; }

  /// Online-tuning hot-swap: replaces the executing program with `next`,
  /// which must describe the same application on the same machine --
  /// identical node count and an identical function table (names,
  /// kernels, thread counts, ids) -- differing only in placement
  /// (thread_nodes / schedules / transfer program). Placements naming
  /// ranks recover() has marked dead are rejected. Uses the same
  /// quiesce-and-swap machinery as recover(): the active epoch drains
  /// (every queued ticket lands; uncollected tickets stay redeemable
  /// across the swap), node-local staging is reallocated, and the
  /// buffer pool is re-prewarmed for the new placement. Kernel bindings
  /// and metric series carry over (both are keyed by function id).
  ///
  /// Unlike the rest of the Session surface this call MAY come from a
  /// second thread (the tuner thread): while a swap is in flight the
  /// owning host thread must limit itself to poll()/wait()/drain() --
  /// submit()/run()/recover() may only resume after the swap returns.
  void swap_program(std::shared_ptr<const CompiledProgram> next);

  /// The live fabric under this session (test hook: transport kind and
  /// node_pid for kill -9 drills). Throws sage::RuntimeError once
  /// closed.
  net::Fabric& fabric();

  /// Parks down the emulated machine (joins node threads). Further run()
  /// calls throw sage::RuntimeError. Idempotent; the destructor closes
  /// implicitly.
  void close();
  bool closed() const { return machine_ == nullptr; }

 private:
  struct NodeState;
  struct StreamTicket;
  /// Per-ticket resolved execution parameters (RunOverrides folded over
  /// ExecuteOptions; the single resolution point for both surfaces).
  struct TicketParams {
    int iterations = 0;
    BufferPolicy policy = BufferPolicy::kUniquePerFunction;
    bool trace = true;
    bool metrics = true;
    support::VirtualSeconds threshold = 0.0;
    int depth = 0;  // resolved explicit depth (0: ring bounds / off)
    std::shared_ptr<const net::FaultPlan> plan;
  };

  TicketParams resolve_(const RunOverrides& request) const;
  Ticket submit_(const RunOverrides& request, bool streaming);
  void begin_epoch_(const TicketParams& params, bool streaming);
  /// Waits for all queued tickets, parks the epoch, and joins the
  /// machine dispatch. Uncollected tickets stay redeemable.
  void end_epoch_();
  /// One node's worker loop for an epoch: pulls tickets in submission
  /// order and executes this node's share of each.
  void stream_worker_(net::NodeContext& node);
  void run_node_ticket_(net::NodeContext& node, StreamTicket& ticket);
  /// Host-side collection: aggregates a completed ticket into RunStats
  /// (latencies, results, trace merge, metrics fold + snapshot). Reads
  /// the program through the caller-captured pointer, never program_
  /// directly: a tuner-thread swap_program() may retarget program_
  /// while the host thread is still collecting a pre-swap ticket.
  RunStats collect_(StreamTicket& ticket, const CompiledProgram& program);
  void reset_between_runs_();
  void allocate_states_();
  /// Tops the fabric's buffer pool up to the steady-state working set of
  /// the compiled program, so even a first run stays allocation-free on
  /// credit-bounded channels.
  void prewarm_pool_();
  void define_metrics_();
  /// Folds iteration latencies, fault counters, and the fabric's
  /// per-link totals into the registry and snapshots it into `stats`.
  void export_metrics_(RunStats& stats, const StreamTicket& ticket,
                       const CompiledProgram& program);
  /// Ids of the four per-link series for (src, dst), defining them on
  /// first sight (ids persist across warm runs; values reset).
  const std::array<int, 4>& link_metric_ids_(int src, int dst);

  /// The immutable plan this executor drives. Replaced only by
  /// recover() (private recompile) and swap_program() (online tuning);
  /// everything else reads through it. Writes and the host-side read in
  /// wait() happen under stream_mu_ because swap_program() may run on a
  /// tuner thread.
  std::shared_ptr<const CompiledProgram> program_;
  ExecuteOptions options_;
  std::vector<Kernel> kernels_;  // by function id

  std::unique_ptr<net::Machine> machine_;
  std::vector<std::unique_ptr<NodeState>> states_;

  // Always-on metrics. Definitions are made once (construction for the
  // static set, first sight for per-link series) so series ids -- and
  // therefore snapshot order -- are stable across warm runs; values are
  // zeroed by reset_between_runs_(). One shard per node, written
  // lock-free by that node's thread (the EventBuffer threading model).
  viz::MetricsRegistry metrics_;
  std::vector<int> fn_busy_ids_;   // by function id
  std::vector<int> fn_calls_ids_;  // by function id
  std::vector<int> fn_occupancy_ids_;  // by function id (streaming)
  int stream_period_id_ = -1;
  int iterations_id_ = -1;
  int latency_hist_id_ = -1;
  int violations_id_ = -1;
  int threshold_id_ = -1;
  int makespan_id_ = -1;
  int fault_drop_id_ = -1;
  int fault_corrupt_id_ = -1;
  int fault_delay_id_ = -1;
  int fault_retries_id_ = -1;
  int fault_timeouts_id_ = -1;
  int fault_frames_id_ = -1;
  int fault_stalls_id_ = -1;
  int degraded_id_ = -1;
  int bytes_copied_id_ = -1;
  int bytes_moved_id_ = -1;
  int pool_hits_id_ = -1;
  int pool_misses_id_ = -1;
  int pool_blocks_id_ = -1;
  int compile_seconds_id_ = -1;
  int cache_lookup_id_ = -1;  // -1 when the plan cache was not consulted
  // (src, dst) -> {messages, bytes, retransmits, busy seconds} ids.
  std::map<std::pair<int, int>, std::array<int, 4>> link_ids_;
  /// Pool counters at epoch start (collection-time deltas for
  /// DataPlaneStats; exact per run on the synchronous path, cumulative
  /// under overlap).
  net::BufferPoolStats pool_mark_;

  // --- streaming epoch state ------------------------------------------------
  // One epoch = one Machine::dispatch spanning >= 1 tickets. The host
  // thread (submit/wait/drain -- Sessions stay single-host-threaded)
  // owns epoch boundaries; node workers and the host meet on stream_mu_.
  mutable std::mutex stream_mu_;
  std::condition_variable stream_cv_;       // workers: new ticket / close
  std::condition_variable stream_done_cv_;  // host: ticket completion
  std::vector<std::shared_ptr<StreamTicket>> epoch_tickets_;
  std::map<std::uint64_t, std::shared_ptr<StreamTicket>> tickets_;
  net::Machine::NodeProgram epoch_program_;  // alive across the dispatch
  bool epoch_active_ = false;
  bool epoch_closing_ = false;
  bool epoch_failed_ = false;
  /// Epoch-wide execution parameters (fabric-level state that cannot
  /// change between overlapped tickets).
  bool epoch_streaming_ = false;  // ring-depth defaults + period stats
  bool epoch_faulty_ = false;
  int epoch_depth_ = 0;
  std::shared_ptr<const net::FaultPlan> epoch_plan_;
  std::uint64_t next_ticket_id_ = 1;

  // Degraded-mode state: ranks excluded by recover(), and a pending
  // report to surface as kRecovery trace events on the next run.
  std::vector<int> dead_nodes_;
  std::vector<RecoveryReport> pending_recoveries_;

  int runs_completed_ = 0;
};

}  // namespace sage::runtime
