#include "runtime/registry.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace sage::runtime {

std::size_t PortSlice::global_of_local(std::size_t local_index) const {
  std::size_t cursor = 0;
  for (const Run& run : runs) {
    if (local_index < cursor + run.length) {
      return run.global_offset + (local_index - cursor);
    }
    cursor += run.length;
  }
  raise<RuntimeError>("local index ", local_index,
                      " out of range for port slice '", name, "'");
}

const PortSlice& KernelContext::in(std::string_view port) const {
  for (const PortSlice& slice : inputs) {
    if (slice.name == port) return slice;
  }
  raise<RuntimeError>("kernel asked for missing in-port '", std::string(port),
                      "'");
}

PortSlice& KernelContext::out(std::string_view port) {
  for (PortSlice& slice : outputs) {
    if (slice.name == port) return slice;
  }
  raise<RuntimeError>("kernel asked for missing out-port '",
                      std::string(port), "'");
}

bool KernelContext::has_in(std::string_view port) const {
  return std::any_of(inputs.begin(), inputs.end(),
                     [&](const PortSlice& s) { return s.name == port; });
}

bool KernelContext::has_out(std::string_view port) const {
  return std::any_of(outputs.begin(), outputs.end(),
                     [&](const PortSlice& s) { return s.name == port; });
}

double KernelContext::param_or(std::string_view key, double fallback) const {
  auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

void FunctionRegistry::add(std::string name, Kernel kernel) {
  SAGE_CHECK_AS(RuntimeError, kernel != nullptr, "null kernel for '", name,
                "'");
  const auto [it, inserted] =
      kernels_.insert_or_assign(std::move(name), std::move(kernel));
  (void)it;
  (void)inserted;
}

bool FunctionRegistry::contains(std::string_view name) const {
  return kernels_.find(name) != kernels_.end();
}

const Kernel& FunctionRegistry::lookup(std::string_view name) const {
  auto it = kernels_.find(name);
  if (it == kernels_.end()) {
    raise<RuntimeError>("no kernel registered for '", std::string(name),
                        "' -- is the function library linked?");
  }
  return it->second;
}

std::vector<std::string> FunctionRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(kernels_.size());
  for (const auto& [name, kernel] : kernels_) out.push_back(name);
  return out;
}

double block_checksum(std::span<const std::complex<float>> data) {
  double acc = 0.0;
  for (const auto& v : data) {
    acc += static_cast<double>(v.real()) + static_cast<double>(v.imag());
  }
  return acc;
}

}  // namespace sage::runtime
