// openSAGE -- the striping engine.
//
// "Striped ports represent data-flow communications in which the data is
// sliced or divided evenly among the threads of the host function." The
// runtime turns the striping declarations of a logical buffer's two
// endpoints into an explicit transfer plan: for every (producer thread,
// consumer thread) pair, the list of (src offset, dst offset, length)
// segments to move. Offsets are thread-local element offsets; the plan is
// precomputed once at load time and reused every iteration.
//
// A striped port slices dimension `stripe_dim` of the port's dims evenly
// over the function's threads; the thread-local layout enumerates the
// slice's elements in increasing global offset (so a dim-0 stripe is one
// contiguous run, a dim-1 stripe of a 2D array is `rows` runs of
// `cols/threads` elements -- exactly the packed column block a corner
// turn operates on). A replicated port gives every thread the whole
// array.
#pragma once

#include <cstddef>
#include <vector>

#include "model/app.hpp"

namespace sage::runtime {

/// A contiguous run of elements within the global index space.
struct Run {
  std::size_t global_offset = 0;
  std::size_t length = 0;

  bool operator==(const Run&) const = default;
};

/// One side of a logical buffer: how the global array is split over the
/// endpoint function's threads.
struct StripeSpec {
  std::vector<std::size_t> dims;
  model::Striping striping = model::Striping::kStriped;
  int stripe_dim = 0;
  int threads = 1;

  std::size_t total_elems() const;
  /// Elements owned by one thread (== total for replicated ports).
  std::size_t elems_per_thread() const;
  /// Thread-local dims: dims with the striped dimension divided.
  std::vector<std::size_t> local_dims() const;
  /// Throws sage::RuntimeError unless the striped dimension divides
  /// evenly by the thread count.
  void validate() const;
};

/// The runs of the global index space owned by `thread`, in increasing
/// global offset (which is also the thread-local storage order).
std::vector<Run> slice_runs(const StripeSpec& spec, int thread);

/// One copy/transfer segment between two thread-local buffers.
struct Segment {
  std::size_t src_offset = 0;  // elements, into the producer thread's slice
  std::size_t dst_offset = 0;  // elements, into the consumer thread's slice
  std::size_t length = 0;

  bool operator==(const Segment&) const = default;
};

/// All segments a (src thread, dst thread) pair must move.
struct ThreadPairTransfer {
  int src_thread = 0;
  int dst_thread = 0;
  std::vector<Segment> segments;

  std::size_t total_elems() const;
};

/// The full transfer plan of a logical buffer. Empty pairs are omitted.
/// Both specs must describe the same total element count.
std::vector<ThreadPairTransfer> build_transfer_plan(const StripeSpec& src,
                                                    const StripeSpec& dst);

}  // namespace sage::runtime
