// openSAGE -- the compiled program: the durable artifact between the
// glue-code compiler and the run-time executor.
//
// The paper's generator separates *what the runtime executes* (function
// table, logical buffer definitions, transfer schedules) from *the act
// of executing it*. CompiledProgram is that artifact in lowered form:
// the validated glue configuration plus everything runtime::Compiler
// derives from it -- planned buffers, interned staging slot ids, the
// flat index-addressed transfer program, and the precomputed kernel
// port bindings. It is immutable after construction and carries no
// execution state, so any number of runtime::Session executors can
// share one program concurrently through shared_ptr<const
// CompiledProgram> (cf. DaCe's compiled SDFG objects, reused across
// invocations).
//
// A program also has a stable binary form (serialize()/deserialize())
// keyed by a content-addressed fingerprint, which is what the on-disk
// plan cache stores: a warm process restart deserializes the lowered
// arrays instead of re-running the planner.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/glue_config.hpp"
#include "runtime/striping.hpp"

namespace sage::runtime {

/// One logical buffer with its precomputed transfer plan.
struct PlannedBuffer {
  int id = -1;
  int src_function = -1;
  int dst_function = -1;
  std::string src_port;
  std::string dst_port;
  std::size_t elem_bytes = 0;
  StripeSpec src_spec;
  StripeSpec dst_spec;
  std::vector<ThreadPairTransfer> plan;
  std::string label;
};

/// One copy segment of a compiled transfer, byte-scaled so the run loop
/// never multiplies by elem_bytes. `packed_off` is the segment's offset
/// in the packed wire layout (concatenated segments in plan order).
struct ByteSeg {
  std::size_t src_off = 0;
  std::size_t dst_off = 0;
  std::size_t packed_off = 0;
  std::size_t len = 0;
};

/// One (buffer, src thread, dst thread) transfer, fully resolved at
/// compile time: integer slot ids instead of string-keyed map lookups,
/// byte offsets instead of element offsets, contiguity and
/// fan-out-share classification precomputed. Placement-dependent fields
/// (src_node/dst_node, share groups) make a program specific to one
/// thread->node assignment; degraded-mode recovery compiles a fresh
/// program for the remapped placement.
struct TransferOp {
  int buf = -1;  // index into CompiledProgram::buffers (== buffer id)
  int tag = 0;
  int src_function = -1;
  int dst_function = -1;
  int src_thread = 0;
  int dst_thread = 0;
  int src_node = 0;
  int dst_node = 0;
  std::size_t bytes = 0;
  /// Single-segment transfer: the wire layout equals one contiguous
  /// slice of the source staging (and lands as one contiguous slice of
  /// the destination staging), so the zero-copy fast paths apply.
  bool contiguous = false;
  std::vector<ByteSeg> segs;
  int src_slot = -1;  // staging slot on the producer node
  int dst_slot = -1;  // staging slot on the consumer node
  /// Per-op logical-buffer storage (kUniquePerFunction staging copy).
  int logical_slot = -1;
  /// Fan-out share group: remote ops of one producer thread whose packed
  /// bytes are identical (same gather signature) share one pooled
  /// payload under kShared -- the fabric's copy-on-write protects the
  /// sharers from injected corruption. -1 when not shared.
  int share_group = -1;
  /// Static ring bound for this logical channel: how many iterations the
  /// producer may run ahead of the consumer before credit flow control
  /// parks it. Computed by the compiler from the topological level
  /// distance between producer and consumer functions (cf. SDF buffer
  /// bounds); streaming submissions use it when no explicit
  /// buffer_depth override is given.
  int ring_depth = 2;
};

/// Precomputed kernel port slice for one (function, thread): everything
/// KernelContext needs except the live data span, so the run loop does
/// no stripe_spec()/slice_runs() work per invocation.
struct PortBinding {
  std::string name;
  int slot = -1;
  std::size_t elem_bytes = 0;
  std::vector<std::size_t> local_dims;
  std::vector<std::size_t> global_dims;
  std::vector<Run> runs;
  bool is_input = true;
};

/// How a program reached this process (provenance for the compile-cost
/// metrics and the `sagec` report lines; never serialized).
enum class PlanCacheOutcome : std::uint8_t {
  kNotConsulted,  // compiled directly, no cache configured
  kHit,           // deserialized from the content-addressed plan cache
  kMiss,          // cache consulted, entry absent; compiled and stored
};

const char* to_string(PlanCacheOutcome outcome);

/// The immutable lowered artifact. Built by runtime::Compiler (or
/// deserialized from a plan blob) and shared read-only by executors;
/// nothing in here changes after construction.
struct CompiledProgram {
  /// The validated glue configuration the program was lowered from
  /// (function table, buffer definitions, per-node schedules, probes).
  GlueConfig config;

  /// Planned logical buffers, indexed by buffer id.
  std::vector<PlannedBuffer> buffers;
  /// Buffer ids feeding / fed by each function id (graph adjacency).
  std::vector<std::vector<int>> in_of_fn;
  std::vector<std::vector<int>> out_of_fn;

  /// The flat transfer program.
  std::vector<TransferOp> ops;
  /// Staging-slot base per function id: slot = slot_base[fn] +
  /// thread * ports + port_index (dense replacement for a string-keyed
  /// staging map).
  std::vector<int> slot_base;
  int total_staging_slots = 0;
  int total_logical_slots = 0;
  /// (function, thread) -> flat index: fn_thread_base[fn] + thread.
  std::vector<int> fn_thread_base;
  /// Per (function, thread): indices into `ops` for the remote receives
  /// and all sends, in the exact order the executor issues them.
  std::vector<std::vector<int>> recv_ops_of;
  std::vector<std::vector<int>> send_ops_of;
  /// Per (function, thread): precomputed kernel port slices.
  std::vector<std::vector<PortBinding>> bindings_of;

  // --- provenance (not part of the serialized form) ------------------------
  /// Content-addressed cache key: FNV-1a over the serialized glue
  /// config, the registry fingerprint, and the plan format version.
  /// Zero for programs compiled outside the cache path (e.g. the
  /// private recompile after degraded-mode recovery).
  std::uint64_t fingerprint = 0;
  /// Wall seconds spent producing this program in this process: the
  /// full lowering on a compile, the blob load on a cache hit.
  double compile_seconds = 0.0;
  PlanCacheOutcome cache_outcome = PlanCacheOutcome::kNotConsulted;

  bool from_cache() const { return cache_outcome == PlanCacheOutcome::kHit; }

  int thread_count(int function_id) const {
    return config.function(function_id).threads;
  }

  /// Binary plan blob: versioned header (magic, format version,
  /// fingerprint), the canonical glue text, the lowered arrays, and a
  /// trailing whole-blob FNV-1a checksum. Deterministic: equal programs
  /// serialize to equal bytes (the round-trip property the plan cache
  /// and the golden test rely on).
  std::string serialize() const;

  /// Parses a plan blob; throws sage::RuntimeError on a bad magic,
  /// unsupported format version, truncation, or checksum mismatch --
  /// corrupt cache entries must never reach an executor.
  static std::shared_ptr<const CompiledProgram> deserialize(
      std::string_view blob);
};

/// Plan blob format version; bump on any layout change so stale cache
/// entries are rejected (and re-keyed: the version is folded into the
/// fingerprint).
inline constexpr std::uint32_t kPlanFormatVersion = 2;

}  // namespace sage::runtime
