// openSAGE -- the glue configuration: what the Alter glue-code generator
// emits and the run-time kernel executes.
//
// On the original system the generator emitted C source (function table,
// logical buffer definitions) compiled with the application libraries
// and the SAGE run-time. Here the generated artifact is a text
// configuration with exactly that content; the runtime parses it and
// binds kernel names against the function registry at load. Nothing
// reaches the engine except through this format, so the generation loop
// stays closed: a generator bug is an execution failure.
//
// Format (line-oriented, '#' comments):
//   sage-glue 1
//   application <name>
//   hardware <name>
//   nodes <count>
//   iterations-default <count>
//   function <id> name=<n> kernel=<k> threads=<t> role=<r>
//   thread <function-id> <thread-index> node=<rank>
//   port <function-id> name=<n> dir=<in|out> striping=<s> stripe_dim=<d>
//        elem_bytes=<b> dims=<d0>x<d1>...
//   buffer <id> src=<fn-id>.<port> dst=<fn-id>.<port>
//   schedule <rank> <fn-id>[,<fn-id>...]
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "model/app.hpp"
#include "runtime/striping.hpp"

namespace sage::runtime {

/// Hard limits imposed by the message tag encoding (see engine.cpp).
inline constexpr int kMaxFunctionThreads = 8;
inline constexpr int kMaxLogicalBuffers = 64;

struct PortConfig {
  std::string name;
  model::PortDirection direction = model::PortDirection::kIn;
  model::Striping striping = model::Striping::kStriped;
  int stripe_dim = 0;
  std::size_t elem_bytes = 0;
  std::vector<std::size_t> dims;

  std::size_t total_elems() const;
  std::size_t total_bytes() const { return total_elems() * elem_bytes; }
};

struct FunctionConfig {
  int id = -1;
  std::string name;
  std::string kernel;
  std::string role = "compute";  // source | compute | sink
  int threads = 1;
  /// Node rank per thread (size == threads).
  std::vector<int> thread_nodes;
  std::vector<PortConfig> ports;
  /// Kernel parameters (serialized as p_<key>=<value> fields).
  std::map<std::string, double> params;

  const PortConfig& port(std::string_view name) const;
  bool has_port(std::string_view name) const;
};

struct BufferConfig {
  int id = -1;
  int src_function = -1;
  std::string src_port;
  int dst_function = -1;
  std::string dst_port;
};

struct GlueConfig {
  int version = 1;
  std::string application;
  std::string hardware;
  int nodes = 0;
  int iterations_default = 1;
  std::vector<FunctionConfig> functions;   // indexed by id
  std::vector<BufferConfig> buffers;       // indexed by id
  /// Execution order per node rank (function-table ids).
  std::map<int, std::vector<int>> schedule;
  /// Instrumentation probes the generator placed (function ids). Empty
  /// means "instrument everything" (the default configuration); a
  /// non-empty list restricts function start/end events to these ids,
  /// mirroring the Visualizer's configurable probe placement.
  std::vector<int> probes;

  bool probed(int function_id) const;

  const FunctionConfig& function(int id) const;
  const BufferConfig& buffer(int id) const;

  /// Builds the stripe spec for one side of a buffer.
  StripeSpec stripe_spec(const FunctionConfig& fn, const PortConfig& port) const;

  /// Consistency checks: ids dense, endpoints resolve, port directions
  /// and sizes/types match per buffer, thread nodes within range,
  /// schedule covers exactly the functions with threads on that node,
  /// limits respected. Throws sage::ConfigError on the first failure.
  void validate() const;
};

/// Serializes to the textual format above (what the generator emits).
std::string serialize(const GlueConfig& config);

/// Parses the textual format; throws sage::ConfigError on malformed input.
GlueConfig parse_glue_config(std::string_view text);

}  // namespace sage::runtime
