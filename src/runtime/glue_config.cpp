#include "runtime/glue_config.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace sage::runtime {

using support::split;
using support::split_ws;
using support::trim;

std::size_t PortConfig::total_elems() const {
  std::size_t total = 1;
  for (std::size_t d : dims) total *= d;
  return total;
}

const PortConfig& FunctionConfig::port(std::string_view port_name) const {
  for (const PortConfig& p : ports) {
    if (p.name == port_name) return p;
  }
  raise<ConfigError>("function '", name, "' has no port '",
                     std::string(port_name), "'");
}

bool FunctionConfig::has_port(std::string_view port_name) const {
  return std::any_of(ports.begin(), ports.end(),
                     [&](const PortConfig& p) { return p.name == port_name; });
}

const FunctionConfig& GlueConfig::function(int id) const {
  SAGE_CHECK_AS(ConfigError, id >= 0 && id < static_cast<int>(functions.size()),
                "function id ", id, " out of range");
  return functions[static_cast<std::size_t>(id)];
}

const BufferConfig& GlueConfig::buffer(int id) const {
  SAGE_CHECK_AS(ConfigError, id >= 0 && id < static_cast<int>(buffers.size()),
                "buffer id ", id, " out of range");
  return buffers[static_cast<std::size_t>(id)];
}

bool GlueConfig::probed(int function_id) const {
  return probes.empty() ||
         std::find(probes.begin(), probes.end(), function_id) != probes.end();
}

StripeSpec GlueConfig::stripe_spec(const FunctionConfig& fn,
                                   const PortConfig& port) const {
  StripeSpec spec;
  spec.dims = port.dims;
  spec.striping = port.striping;
  spec.stripe_dim = port.stripe_dim;
  spec.threads = fn.threads;
  return spec;
}

void GlueConfig::validate() const {
  SAGE_CHECK_AS(ConfigError, version == 1, "unsupported glue version ",
                version);
  SAGE_CHECK_AS(ConfigError, nodes > 0, "glue config has no nodes");
  SAGE_CHECK_AS(ConfigError, !functions.empty(),
                "glue config has no functions");
  SAGE_CHECK_AS(ConfigError,
                static_cast<int>(buffers.size()) <= kMaxLogicalBuffers,
                "too many logical buffers (", buffers.size(), " > ",
                kMaxLogicalBuffers, ")");

  for (std::size_t i = 0; i < functions.size(); ++i) {
    const FunctionConfig& fn = functions[i];
    SAGE_CHECK_AS(ConfigError, fn.id == static_cast<int>(i),
                  "function ids must be dense 0..N-1; slot ", i, " holds id ",
                  fn.id);
    SAGE_CHECK_AS(ConfigError, !fn.kernel.empty(), "function '", fn.name,
                  "' has no kernel");
    SAGE_CHECK_AS(ConfigError,
                  fn.threads >= 1 && fn.threads <= kMaxFunctionThreads,
                  "function '", fn.name, "': thread count ", fn.threads,
                  " outside [1, ", kMaxFunctionThreads, "]");
    SAGE_CHECK_AS(ConfigError,
                  static_cast<int>(fn.thread_nodes.size()) == fn.threads,
                  "function '", fn.name, "': ", fn.thread_nodes.size(),
                  " thread placements for ", fn.threads, " threads");
    for (int node : fn.thread_nodes) {
      SAGE_CHECK_AS(ConfigError, node >= 0 && node < nodes,
                    "function '", fn.name, "': thread node ", node,
                    " out of range");
    }
    for (const PortConfig& port : fn.ports) {
      SAGE_CHECK_AS(ConfigError, port.elem_bytes > 0, "port '", fn.name, ".",
                    port.name, "': zero element size");
      StripeSpec spec = stripe_spec(fn, port);
      spec.validate();  // throws RuntimeError; wrap
    }
  }

  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const BufferConfig& buf = buffers[i];
    SAGE_CHECK_AS(ConfigError, buf.id == static_cast<int>(i),
                  "buffer ids must be dense 0..N-1");
    const FunctionConfig& src_fn = function(buf.src_function);
    const FunctionConfig& dst_fn = function(buf.dst_function);
    const PortConfig& src = src_fn.port(buf.src_port);
    const PortConfig& dst = dst_fn.port(buf.dst_port);
    SAGE_CHECK_AS(ConfigError, src.direction == model::PortDirection::kOut,
                  "buffer ", buf.id, ": source must be an out-port");
    SAGE_CHECK_AS(ConfigError, dst.direction == model::PortDirection::kIn,
                  "buffer ", buf.id, ": destination must be an in-port");
    SAGE_CHECK_AS(ConfigError, src.elem_bytes == dst.elem_bytes,
                  "buffer ", buf.id, ": element size mismatch");
    SAGE_CHECK_AS(ConfigError, src.total_elems() == dst.total_elems(),
                  "buffer ", buf.id, ": element count mismatch (",
                  src.total_elems(), " vs ", dst.total_elems(), ")");
  }

  for (int id : probes) {
    (void)function(id);  // range check
  }

  // Schedule: per node, exactly the functions with a thread on the node,
  // in a valid order (we only check coverage here; the engine follows the
  // schedule as given -- wrong orders deadlock and fail the recv timeout).
  for (const auto& [rank, order] : schedule) {
    SAGE_CHECK_AS(ConfigError, rank >= 0 && rank < nodes,
                  "schedule for out-of-range node ", rank);
    std::set<int> seen;
    for (int id : order) {
      (void)function(id);
      SAGE_CHECK_AS(ConfigError, seen.insert(id).second,
                    "node ", rank, " schedules function ", id, " twice");
    }
  }
  for (const FunctionConfig& fn : functions) {
    for (int t = 0; t < fn.threads; ++t) {
      const int node = fn.thread_nodes[static_cast<std::size_t>(t)];
      auto it = schedule.find(node);
      SAGE_CHECK_AS(ConfigError, it != schedule.end(),
                    "function '", fn.name, "' thread ", t, " on node ", node,
                    " but that node has no schedule");
      SAGE_CHECK_AS(ConfigError,
                    std::find(it->second.begin(), it->second.end(), fn.id) !=
                        it->second.end(),
                    "function '", fn.name, "' missing from node ", node,
                    " schedule");
    }
  }
}

namespace {

std::string dims_to_string(const std::vector<std::size_t>& dims) {
  std::string out;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i) out += 'x';
    out += std::to_string(dims[i]);
  }
  return out;
}

std::vector<std::size_t> dims_from_string(std::string_view text) {
  std::vector<std::size_t> dims;
  for (const std::string& part : split(text, 'x')) {
    dims.push_back(static_cast<std::size_t>(support::parse_int(part)));
  }
  return dims;
}

/// key=value fields after the positional head of a config line.
std::map<std::string, std::string> parse_fields(
    const std::vector<std::string>& tokens, std::size_t start) {
  std::map<std::string, std::string> fields;
  for (std::size_t i = start; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    SAGE_CHECK_AS(ConfigError, eq != std::string::npos,
                  "malformed field '", tokens[i], "' (want key=value)");
    fields[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
  }
  return fields;
}

const std::string& field(const std::map<std::string, std::string>& fields,
                         const std::string& key) {
  auto it = fields.find(key);
  SAGE_CHECK_AS(ConfigError, it != fields.end(), "missing field '", key, "'");
  return it->second;
}

}  // namespace

std::string serialize(const GlueConfig& config) {
  std::ostringstream os;
  os << "# SAGE glue configuration (generated)\n";
  os << "sage-glue " << config.version << "\n";
  os << "application " << config.application << "\n";
  os << "hardware " << config.hardware << "\n";
  os << "nodes " << config.nodes << "\n";
  os << "iterations-default " << config.iterations_default << "\n";

  os << "\n# function table (executed by table id)\n";
  for (const FunctionConfig& fn : config.functions) {
    os << "function " << fn.id << " name=" << fn.name
       << " kernel=" << fn.kernel << " threads=" << fn.threads
       << " role=" << fn.role;
    for (const auto& [key, value] : fn.params) {
      os << " p_" << key << "=" << value;
    }
    os << "\n";
    for (int t = 0; t < fn.threads; ++t) {
      os << "thread " << fn.id << " " << t
         << " node=" << fn.thread_nodes[static_cast<std::size_t>(t)] << "\n";
    }
    for (const PortConfig& port : fn.ports) {
      os << "port " << fn.id << " name=" << port.name
         << " dir=" << model::to_string(port.direction)
         << " striping=" << model::to_string(port.striping)
         << " stripe_dim=" << port.stripe_dim
         << " elem_bytes=" << port.elem_bytes
         << " dims=" << dims_to_string(port.dims) << "\n";
    }
  }

  os << "\n# logical buffers\n";
  for (const BufferConfig& buf : config.buffers) {
    os << "buffer " << buf.id << " src=" << buf.src_function << "."
       << buf.src_port << " dst=" << buf.dst_function << "." << buf.dst_port
       << "\n";
  }

  if (!config.probes.empty()) {
    os << "\n# instrumentation probes\n";
    for (int id : config.probes) {
      os << "probe " << id << "\n";
    }
  }

  os << "\n# per-node schedules\n";
  for (const auto& [rank, order] : config.schedule) {
    os << "schedule " << rank << " ";
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (i) os << ",";
      os << order[i];
    }
    os << "\n";
  }
  return os.str();
}

GlueConfig parse_glue_config(std::string_view text) {
  GlueConfig config;
  bool saw_header = false;
  int line_number = 0;

  for (const std::string& raw_line : split(text, '\n')) {
    ++line_number;
    const std::string_view line = trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> tokens = split_ws(line);
    const std::string& head = tokens[0];

    try {
      if (head == "sage-glue") {
        config.version = static_cast<int>(support::parse_int(tokens.at(1)));
        saw_header = true;
      } else if (head == "application") {
        config.application = tokens.at(1);
      } else if (head == "hardware") {
        config.hardware = tokens.at(1);
      } else if (head == "nodes") {
        config.nodes = static_cast<int>(support::parse_int(tokens.at(1)));
      } else if (head == "iterations-default") {
        config.iterations_default =
            static_cast<int>(support::parse_int(tokens.at(1)));
      } else if (head == "function") {
        FunctionConfig fn;
        fn.id = static_cast<int>(support::parse_int(tokens.at(1)));
        const auto fields = parse_fields(tokens, 2);
        fn.name = field(fields, "name");
        fn.kernel = field(fields, "kernel");
        fn.threads = static_cast<int>(support::parse_int(field(fields, "threads")));
        fn.role = field(fields, "role");
        for (const auto& [key, value] : fields) {
          if (support::starts_with(key, "p_")) {
            fn.params[key.substr(2)] = support::parse_double(value);
          }
        }
        fn.thread_nodes.assign(static_cast<std::size_t>(std::max(fn.threads, 0)),
                               -1);
        SAGE_CHECK_AS(ConfigError,
                      fn.id == static_cast<int>(config.functions.size()),
                      "function ids must appear in order");
        config.functions.push_back(std::move(fn));
      } else if (head == "thread") {
        const int fn_id = static_cast<int>(support::parse_int(tokens.at(1)));
        const int t = static_cast<int>(support::parse_int(tokens.at(2)));
        const auto fields = parse_fields(tokens, 3);
        SAGE_CHECK_AS(ConfigError,
                      fn_id >= 0 &&
                          fn_id < static_cast<int>(config.functions.size()),
                      "thread line before its function");
        FunctionConfig& fn = config.functions[static_cast<std::size_t>(fn_id)];
        SAGE_CHECK_AS(ConfigError, t >= 0 && t < fn.threads,
                      "thread index out of range");
        fn.thread_nodes[static_cast<std::size_t>(t)] =
            static_cast<int>(support::parse_int(field(fields, "node")));
      } else if (head == "port") {
        const int fn_id = static_cast<int>(support::parse_int(tokens.at(1)));
        const auto fields = parse_fields(tokens, 2);
        SAGE_CHECK_AS(ConfigError,
                      fn_id >= 0 &&
                          fn_id < static_cast<int>(config.functions.size()),
                      "port line before its function");
        PortConfig port;
        port.name = field(fields, "name");
        port.direction = model::port_direction_from_string(field(fields, "dir"));
        port.striping = model::striping_from_string(field(fields, "striping"));
        port.stripe_dim =
            static_cast<int>(support::parse_int(field(fields, "stripe_dim")));
        port.elem_bytes = static_cast<std::size_t>(
            support::parse_int(field(fields, "elem_bytes")));
        port.dims = dims_from_string(field(fields, "dims"));
        config.functions[static_cast<std::size_t>(fn_id)].ports.push_back(
            std::move(port));
      } else if (head == "buffer") {
        BufferConfig buf;
        buf.id = static_cast<int>(support::parse_int(tokens.at(1)));
        const auto fields = parse_fields(tokens, 2);
        const auto parse_endpoint = [](const std::string& spec, int& fn_id,
                                       std::string& port_name) {
          const auto dot = spec.find('.');
          SAGE_CHECK_AS(ConfigError, dot != std::string::npos,
                        "endpoint '", spec, "' must be <fn-id>.<port>");
          fn_id = static_cast<int>(support::parse_int(spec.substr(0, dot)));
          port_name = spec.substr(dot + 1);
        };
        parse_endpoint(field(fields, "src"), buf.src_function, buf.src_port);
        parse_endpoint(field(fields, "dst"), buf.dst_function, buf.dst_port);
        SAGE_CHECK_AS(ConfigError,
                      buf.id == static_cast<int>(config.buffers.size()),
                      "buffer ids must appear in order");
        config.buffers.push_back(std::move(buf));
      } else if (head == "probe") {
        config.probes.push_back(
            static_cast<int>(support::parse_int(tokens.at(1))));
      } else if (head == "schedule") {
        const int rank = static_cast<int>(support::parse_int(tokens.at(1)));
        std::vector<int> order;
        if (tokens.size() > 2) {
          for (const std::string& part : split(tokens.at(2), ',')) {
            if (!part.empty()) {
              order.push_back(static_cast<int>(support::parse_int(part)));
            }
          }
        }
        config.schedule[rank] = std::move(order);
      } else {
        raise<ConfigError>("unknown directive '", head, "'");
      }
    } catch (const ConfigError&) {
      throw;
    } catch (const Error& e) {
      raise<ConfigError>("glue config line ", line_number, ": ", e.what());
    } catch (const std::out_of_range&) {
      raise<ConfigError>("glue config line ", line_number,
                         ": missing positional token");
    }
  }

  SAGE_CHECK_AS(ConfigError, saw_header,
                "not a glue configuration (no sage-glue header)");
  return config;
}

}  // namespace sage::runtime
