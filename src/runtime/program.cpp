// Binary serialization of CompiledProgram (the plan-cache blob format).
//
// Layout: 8-byte magic, u32 format version, u64 fingerprint, the
// canonical glue text, the lowered arrays, and a trailing FNV-1a
// checksum over every preceding byte. Scalar fields are written
// little-endian at fixed width; the bulky arrays (segments, runs, dims)
// are trivially-copyable structs written with one memcpy per vector,
// which is what makes a cache hit cheaper than re-running the planner.
// The format is host-specific (size_t width, endianness) -- the plan
// cache is a local artifact, not an interchange format -- but it is
// deterministic: equal programs produce equal bytes.
#include "runtime/program.hpp"

#include <cstring>
#include <type_traits>

#include "support/error.hpp"

namespace sage::runtime {

namespace {

constexpr char kMagic[8] = {'S', 'A', 'G', 'E', 'P', 'L', 'A', 'N'};

constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = kFnvOffsetBasis;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

class Writer {
 public:
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int64_t v) { u32(static_cast<std::uint32_t>(v)); }
  void sz(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }
  void b8(bool v) { const std::uint8_t b = v ? 1 : 0; raw(&b, 1); }

  void str(const std::string& s) {
    sz(s.size());
    raw(s.data(), s.size());
  }

  void ints(const std::vector<int>& v) {
    sz(v.size());
    for (const int x : v) i32(x);
  }

  void int_lists(const std::vector<std::vector<int>>& v) {
    sz(v.size());
    for (const auto& inner : v) ints(inner);
  }

  /// One-memcpy write of a trivially-copyable, padding-free element
  /// vector (Segment, ByteSeg, Run, std::size_t).
  template <typename T>
  void pods(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    sz(v.size());
    raw(v.data(), v.size() * sizeof(T));
  }

  const std::string& bytes() const { return out_; }

 private:
  void raw(const void* data, std::size_t len) {
    out_.append(static_cast<const char*>(data), len);
  }

  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view blob) : blob_(blob) {}

  std::uint32_t u32() { std::uint32_t v; raw(&v, sizeof v); return v; }
  std::uint64_t u64() { std::uint64_t v; raw(&v, sizeof v); return v; }
  int i32() { return static_cast<std::int32_t>(u32()); }
  std::size_t sz() { return static_cast<std::size_t>(u64()); }
  bool b8() { std::uint8_t b; raw(&b, 1); return b != 0; }

  std::string str() {
    const std::size_t len = count(1);
    std::string s(blob_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  std::vector<int> ints() {
    const std::size_t n = count(4);
    std::vector<int> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(i32());
    return v;
  }

  std::vector<std::vector<int>> int_lists() {
    const std::size_t n = count(8);
    std::vector<std::vector<int>> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(ints());
    return v;
  }

  template <typename T>
  std::vector<T> pods() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t n = count(sizeof(T));
    std::vector<T> v(n);
    raw(v.data(), n * sizeof(T));
    return v;
  }

  std::size_t pos() const { return pos_; }

 private:
  /// Element count whose payload must still fit in the blob -- rejects
  /// corrupt lengths before any allocation is attempted.
  std::size_t count(std::size_t elem_size) {
    const std::size_t n = sz();
    SAGE_CHECK_AS(RuntimeError,
                  elem_size == 0 || n <= (blob_.size() - pos_) / elem_size,
                  "compiled-program blob truncated (length field ", n,
                  " overruns ", blob_.size() - pos_, " remaining bytes)");
    return n;
  }

  void raw(void* data, std::size_t len) {
    SAGE_CHECK_AS(RuntimeError, len <= blob_.size() - pos_,
                  "compiled-program blob truncated (need ", len,
                  " bytes at offset ", pos_, ", have ", blob_.size() - pos_,
                  ")");
    std::memcpy(data, blob_.data() + pos_, len);
    pos_ += len;
  }

  std::string_view blob_;
  std::size_t pos_ = 0;
};

static_assert(sizeof(Segment) == 3 * sizeof(std::size_t),
              "Segment must stay padding-free for the bulk blob path");
static_assert(sizeof(ByteSeg) == 4 * sizeof(std::size_t),
              "ByteSeg must stay padding-free for the bulk blob path");
static_assert(sizeof(Run) == 2 * sizeof(std::size_t),
              "Run must stay padding-free for the bulk blob path");

void write_spec(Writer& w, const StripeSpec& spec) {
  w.pods(spec.dims);
  w.u32(static_cast<std::uint32_t>(spec.striping));
  w.i32(spec.stripe_dim);
  w.i32(spec.threads);
}

StripeSpec read_spec(Reader& r) {
  StripeSpec spec;
  spec.dims = r.pods<std::size_t>();
  spec.striping = static_cast<model::Striping>(r.u32());
  spec.stripe_dim = r.i32();
  spec.threads = r.i32();
  return spec;
}

}  // namespace

const char* to_string(PlanCacheOutcome outcome) {
  switch (outcome) {
    case PlanCacheOutcome::kNotConsulted: return "off";
    case PlanCacheOutcome::kHit: return "hit";
    case PlanCacheOutcome::kMiss: return "miss";
  }
  return "?";
}

std::string CompiledProgram::serialize() const {
  std::string out(kMagic, sizeof kMagic);

  Writer body;
  body.u32(kPlanFormatVersion);
  body.u64(fingerprint);
  // The config travels as its canonical glue text: the parser is the
  // inverse of the serializer (pinned by glue_config_test), and the
  // text is tiny next to the lowered arrays.
  body.str(runtime::serialize(config));

  body.sz(buffers.size());
  for (const PlannedBuffer& buf : buffers) {
    body.i32(buf.id);
    body.i32(buf.src_function);
    body.i32(buf.dst_function);
    body.str(buf.src_port);
    body.str(buf.dst_port);
    body.sz(buf.elem_bytes);
    write_spec(body, buf.src_spec);
    write_spec(body, buf.dst_spec);
    body.sz(buf.plan.size());
    for (const ThreadPairTransfer& pair : buf.plan) {
      body.i32(pair.src_thread);
      body.i32(pair.dst_thread);
      body.pods(pair.segments);
    }
    body.str(buf.label);
  }
  body.int_lists(in_of_fn);
  body.int_lists(out_of_fn);

  body.sz(ops.size());
  for (const TransferOp& op : ops) {
    body.i32(op.buf);
    body.i32(op.tag);
    body.i32(op.src_function);
    body.i32(op.dst_function);
    body.i32(op.src_thread);
    body.i32(op.dst_thread);
    body.i32(op.src_node);
    body.i32(op.dst_node);
    body.sz(op.bytes);
    body.b8(op.contiguous);
    body.pods(op.segs);
    body.i32(op.src_slot);
    body.i32(op.dst_slot);
    body.i32(op.logical_slot);
    body.i32(op.share_group);
    body.i32(op.ring_depth);
  }

  body.ints(slot_base);
  body.i32(total_staging_slots);
  body.i32(total_logical_slots);
  body.ints(fn_thread_base);
  body.int_lists(recv_ops_of);
  body.int_lists(send_ops_of);

  body.sz(bindings_of.size());
  for (const std::vector<PortBinding>& binds : bindings_of) {
    body.sz(binds.size());
    for (const PortBinding& b : binds) {
      body.str(b.name);
      body.i32(b.slot);
      body.sz(b.elem_bytes);
      body.pods(b.local_dims);
      body.pods(b.global_dims);
      body.pods(b.runs);
      body.b8(b.is_input);
    }
  }

  out += body.bytes();
  Writer tail;
  tail.u64(fnv1a(out));
  out += tail.bytes();
  return out;
}

std::shared_ptr<const CompiledProgram> CompiledProgram::deserialize(
    std::string_view blob) {
  SAGE_CHECK_AS(RuntimeError,
                blob.size() >= sizeof kMagic + sizeof(std::uint64_t),
                "compiled-program blob truncated (", blob.size(), " bytes)");
  SAGE_CHECK_AS(RuntimeError,
                std::memcmp(blob.data(), kMagic, sizeof kMagic) == 0,
                "not a compiled-program blob (bad magic)");
  // Whole-blob checksum first: a flipped byte anywhere -- header,
  // lengths, array payloads -- is rejected before any field is trusted.
  const std::string_view body = blob.substr(0, blob.size() - 8);
  std::uint64_t stored = 0;
  std::memcpy(&stored, blob.data() + body.size(), sizeof stored);
  SAGE_CHECK_AS(RuntimeError, fnv1a(body) == stored,
                "compiled-program blob corrupt (checksum mismatch)");

  Reader r(body.substr(sizeof kMagic));
  const std::uint32_t version = r.u32();
  SAGE_CHECK_AS(RuntimeError, version == kPlanFormatVersion,
                "compiled-program blob has format version ", version,
                "; this build reads version ", kPlanFormatVersion);

  auto program = std::make_shared<CompiledProgram>();
  program->fingerprint = r.u64();
  program->config = parse_glue_config(r.str());

  const std::size_t nbuf = r.sz();
  program->buffers.reserve(nbuf);
  for (std::size_t i = 0; i < nbuf; ++i) {
    PlannedBuffer buf;
    buf.id = r.i32();
    buf.src_function = r.i32();
    buf.dst_function = r.i32();
    buf.src_port = r.str();
    buf.dst_port = r.str();
    buf.elem_bytes = r.sz();
    buf.src_spec = read_spec(r);
    buf.dst_spec = read_spec(r);
    const std::size_t npair = r.sz();
    buf.plan.reserve(npair);
    for (std::size_t p = 0; p < npair; ++p) {
      ThreadPairTransfer pair;
      pair.src_thread = r.i32();
      pair.dst_thread = r.i32();
      pair.segments = r.pods<Segment>();
      buf.plan.push_back(std::move(pair));
    }
    buf.label = r.str();
    program->buffers.push_back(std::move(buf));
  }
  program->in_of_fn = r.int_lists();
  program->out_of_fn = r.int_lists();

  const std::size_t nops = r.sz();
  program->ops.reserve(nops);
  for (std::size_t i = 0; i < nops; ++i) {
    TransferOp op;
    op.buf = r.i32();
    op.tag = r.i32();
    op.src_function = r.i32();
    op.dst_function = r.i32();
    op.src_thread = r.i32();
    op.dst_thread = r.i32();
    op.src_node = r.i32();
    op.dst_node = r.i32();
    op.bytes = r.sz();
    op.contiguous = r.b8();
    op.segs = r.pods<ByteSeg>();
    op.src_slot = r.i32();
    op.dst_slot = r.i32();
    op.logical_slot = r.i32();
    op.share_group = r.i32();
    op.ring_depth = r.i32();
    program->ops.push_back(std::move(op));
  }

  program->slot_base = r.ints();
  program->total_staging_slots = r.i32();
  program->total_logical_slots = r.i32();
  program->fn_thread_base = r.ints();
  program->recv_ops_of = r.int_lists();
  program->send_ops_of = r.int_lists();

  const std::size_t nfti = r.sz();
  program->bindings_of.reserve(nfti);
  for (std::size_t i = 0; i < nfti; ++i) {
    const std::size_t nbind = r.sz();
    std::vector<PortBinding> binds;
    binds.reserve(nbind);
    for (std::size_t b = 0; b < nbind; ++b) {
      PortBinding bind;
      bind.name = r.str();
      bind.slot = r.i32();
      bind.elem_bytes = r.sz();
      bind.local_dims = r.pods<std::size_t>();
      bind.global_dims = r.pods<std::size_t>();
      bind.runs = r.pods<Run>();
      bind.is_input = r.b8();
      binds.push_back(std::move(bind));
    }
    program->bindings_of.push_back(std::move(binds));
  }

  SAGE_CHECK_AS(RuntimeError, r.pos() == body.size() - sizeof kMagic,
                "compiled-program blob has ",
                body.size() - sizeof kMagic - r.pos(), " trailing bytes");
  return program;
}

}  // namespace sage::runtime
