// openSAGE -- the SAGE run-time kernel.
//
// "The SAGE run-time kernel is responsible for all sequencing of
// functions, data striping, and buffer management." The Engine loads a
// glue configuration, binds kernels from the function registry, builds
// the transfer plans from the logical-buffer striping declarations, and
// executes the data-flow graph on the emulated machine: each node runs
// its schedule per iteration, moving data between thread-local staging
// buffers through logical buffers (local copies or fabric messages).
//
// Buffer management policies reproduce the paper's observation that the
// runtime "assigns unique logical buffers to the data per function which
// can cause extra data access times":
//   kUniquePerFunction -- every transfer stages through the logical
//                         buffer's own storage (the shipped behaviour);
//   kShared            -- transfers move straight from producer staging
//                         to message/consumer staging (the planned
//                         "90% of hand-coded" improvement).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/machine.hpp"
#include "runtime/glue_config.hpp"
#include "runtime/registry.hpp"
#include "viz/trace.hpp"

namespace sage::runtime {

enum class BufferPolicy { kUniquePerFunction, kShared };

std::string to_string(BufferPolicy policy);

struct EngineOptions {
  BufferPolicy buffer_policy = BufferPolicy::kUniquePerFunction;
  /// -1 uses the config's iterations-default.
  int iterations = -1;
  /// Collect a Visualizer trace (small overhead in host time only; probe
  /// costs are excluded from virtual time).
  bool collect_trace = true;
  /// Interconnect model; callers usually take it from the hardware model.
  net::FabricModel fabric = net::myrinet_fabric();
  /// Per-node CPU scale (empty: 1.0 everywhere).
  std::vector<double> cpu_scales;
  /// Host wall-clock budget for each blocking receive; expired waits
  /// throw sage::CommError (schedule bugs surface as failures, not
  /// hangs).
  double recv_timeout_s = 60.0;
  /// Physical-buffer depth per logical-buffer channel: a producer may
  /// run at most this many iterations ahead of its consumer (credit
  /// flow control). 0 = unbounded (pipelining limited only by the
  /// schedule). Models the finite physical buffers the paper's runtime
  /// allocated per logical buffer.
  int buffer_depth = 0;
};

struct RunStats {
  int iterations = 0;
  /// Modeled end-to-end run time (max final node virtual time).
  support::VirtualSeconds makespan = 0.0;
  /// Per-iteration latency: source start -> sink end, virtual seconds.
  std::vector<support::VirtualSeconds> latencies;
  /// Mean time between consecutive iteration completions.
  support::VirtualSeconds period = 0.0;
  /// Sum of kernel-reported results per function per iteration
  /// (function name -> one value per iteration), e.g. sink checksums.
  std::map<std::string, std::vector<double>> results;
  /// Merged Visualizer trace (empty when collect_trace is false).
  viz::Trace trace;
  /// Fabric totals for the whole run (data messages + flow-control
  /// credits).
  std::uint64_t fabric_messages = 0;
  std::uint64_t fabric_bytes = 0;

  support::VirtualSeconds mean_latency() const;
};

class Engine {
 public:
  /// Validates the config and resolves every kernel name; throws
  /// sage::ConfigError / sage::RuntimeError on inconsistency.
  Engine(GlueConfig config, const FunctionRegistry& registry,
         EngineOptions options = {});

  const GlueConfig& config() const { return config_; }
  const EngineOptions& options() const { return options_; }

  /// Executes the configured number of iterations and reports stats.
  RunStats run();

 private:
  struct Prepared;  // per-buffer transfer plans etc. (engine.cpp)

  GlueConfig config_;
  EngineOptions options_;
  std::vector<Kernel> kernels_;  // by function id
  std::shared_ptr<const Prepared> prepared_;
};

}  // namespace sage::runtime
