// openSAGE -- the SAGE run-time kernel (compat entry point).
//
// "The SAGE run-time kernel is responsible for all sequencing of
// functions, data striping, and buffer management." The execution core
// now lives in runtime::Session (see session.hpp): a persistent context
// that keeps the emulated machine and all buffer memory warm across
// runs. Engine remains as the original one-shot entry point -- a thin
// wrapper that owns a private Session and forwards run() to it, which
// since the streaming redesign is itself a synchronous wrapper over
// Session::submit()+wait() (one single-ticket epoch per call). Each
// Engine::run() is bit-equivalent to a cold run (clocks, fabric totals,
// traces all reset); only host-side setup cost is amortized.
//
// New code should use runtime::Session (or core::Project::open_session)
// directly.
#pragma once

#include <memory>

#include "runtime/session.hpp"

namespace sage::runtime {

/// Deprecated name for the unified option struct; kept so existing
/// call sites keep compiling.
using EngineOptions [[deprecated(
    "use sage::runtime::ExecuteOptions")]] = ExecuteOptions;

class Engine {
 public:
  /// Validates the config and resolves every kernel name; throws
  /// sage::ConfigError / sage::RuntimeError on inconsistency.
  Engine(GlueConfig config, const FunctionRegistry& registry,
         ExecuteOptions options = {});

  const GlueConfig& config() const { return session_->config(); }
  const ExecuteOptions& options() const { return session_->options(); }

  /// Executes the configured number of iterations and reports stats.
  /// Repeated calls reuse the warm session but stay cold-equivalent.
  RunStats run();

 private:
  std::unique_ptr<Session> session_;
};

}  // namespace sage::runtime
